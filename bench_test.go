// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its table/figure and prints the
// rows/series the paper reports (once per run).
//
//	go test -bench=. -benchmem
package compisa

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"compisa/internal/check"
	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/encoding"
	"compisa/internal/explore"
	"compisa/internal/isa"
	"compisa/internal/jit"
	"compisa/internal/mem"
	"compisa/internal/perfmodel"
	"compisa/internal/power"
	"compisa/internal/workload"
)

var (
	benchOnce sync.Once
	benchDB   *explore.DB
	benchS    *explore.Searcher
	benchErr  error

	fig9Once sync.Once
	fig9Res  *explore.Fig9Result
	fig9Err  error

	fig14Once sync.Once
	fig14Res  *explore.Fig14Result
	fig14Err  error
)

func harness(b *testing.B) (*explore.DB, *explore.Searcher) {
	b.Helper()
	benchOnce.Do(func() {
		benchDB = explore.NewDB()
		benchS, benchErr = explore.NewSearcher(context.Background(), benchDB)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDB, benchS
}

func fig9(b *testing.B) *explore.Fig9Result {
	b.Helper()
	_, s := harness(b)
	fig9Once.Do(func() { fig9Res, fig9Err = s.Fig9FeatureSensitivity(context.Background()) })
	if fig9Err != nil {
		b.Fatal(fig9Err)
	}
	return fig9Res
}

func fig14(b *testing.B) *explore.Fig14Result {
	b.Helper()
	db, _ := harness(b)
	fig14Once.Do(func() { fig14Res, fig14Err = explore.Fig14DowngradeCost(context.Background(), db.Regions) })
	if fig14Err != nil {
		b.Fatal(fig14Err)
	}
	return fig14Res
}

func printOnce(b *testing.B, s string) {
	b.Helper()
	if b.N > 0 {
		fmt.Println(s)
	}
}

func BenchmarkSec3CodegenDeltas(b *testing.B) {
	db, _ := harness(b)
	var out string
	for i := 0; i < b.N; i++ {
		d, err := explore.Sec3CodegenDeltas(context.Background(), db)
		if err != nil {
			b.Fatal(err)
		}
		out = d.Format()
	}
	printOnce(b, out)
}

func BenchmarkFig2InstructionMix(b *testing.B) {
	db, _ := harness(b)
	var out string
	for i := 0; i < b.N; i++ {
		f, err := explore.Fig2InstructionMix(context.Background(), db)
		if err != nil {
			b.Fatal(err)
		}
		out = f.Format()
	}
	printOnce(b, out)
}

func sweepBench(b *testing.B, obj explore.Objective, budgets []explore.Budget, title string) {
	_, s := harness(b)
	var out string
	for i := 0; i < b.N; i++ {
		r, err := s.Sweep(context.Background(), obj, budgets)
		if err != nil {
			b.Fatal(err)
		}
		out = r.Format(title)
	}
	printOnce(b, out)
}

func BenchmarkFig5MultiprogrammedThroughput(b *testing.B) {
	budgets := append(append([]explore.Budget{}, explore.MPPowerBudgets...), explore.AreaBudgets...)
	sweepBench(b, explore.ObjMPThroughput, budgets,
		"Figure 5: multi-programmed throughput (relative to homogeneous; higher is better)")
}

func BenchmarkFig6MultiprogrammedEDP(b *testing.B) {
	budgets := append(append([]explore.Budget{}, explore.MPPowerBudgets...), explore.AreaBudgets...)
	sweepBench(b, explore.ObjMPEDP, budgets,
		"Figure 6: multi-programmed EDP (relative to homogeneous; lower is better)")
}

func BenchmarkFig7SingleThreadPower(b *testing.B) {
	sweepBench(b, explore.ObjSTPerf, explore.STPowerBudgets,
		"Figure 7a: single-thread performance under peak power budgets")
}

func BenchmarkFig7SingleThreadPowerEDP(b *testing.B) {
	sweepBench(b, explore.ObjSTEDP, explore.STPowerBudgets,
		"Figure 7b: single-thread EDP under peak power budgets (lower is better)")
}

func BenchmarkFig8SingleThreadArea(b *testing.B) {
	sweepBench(b, explore.ObjSTPerf, explore.AreaBudgets,
		"Figure 8a: single-thread performance under area budgets")
}

func BenchmarkFig8SingleThreadAreaEDP(b *testing.B) {
	sweepBench(b, explore.ObjSTEDP, explore.AreaBudgets,
		"Figure 8b: single-thread EDP under area budgets (lower is better)")
}

func BenchmarkTable3ThroughputDesigns(b *testing.B) {
	_, s := harness(b)
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.OptimalDesignTable(context.Background(), explore.ObjMPThroughput, explore.MPPowerBudgets)
		if err != nil {
			b.Fatal(err)
		}
		out = t
	}
	printOnce(b, out)
}

func BenchmarkTable4EDPDesigns(b *testing.B) {
	_, s := harness(b)
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.OptimalDesignTable(context.Background(), explore.ObjMPEDP, explore.MPPowerBudgets)
		if err != nil {
			b.Fatal(err)
		}
		out = t
	}
	printOnce(b, out)
}

func BenchmarkFig9FeatureConstraints(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = fig9(b).Format()
	}
	printOnce(b, out)
}

func BenchmarkFig10TransistorInvestment(b *testing.B) {
	r := fig9(b)
	var out string
	for i := 0; i < b.N; i++ {
		var rows []explore.StageBreakdown
		for _, row := range r.Rows {
			if row.CMP.Cores[0] == nil {
				continue
			}
			rows = append(rows, explore.AreaBreakdown(row.Constraint, row.CMP))
		}
		rows = append(rows, explore.AreaBreakdown("full diversity", r.Unconstrained))
		out = explore.FormatBreakdowns(
			"Figure 10: transistor investment by processor area (normalized, caches excluded)", rows)
	}
	printOnce(b, out)
}

func BenchmarkFig11EnergyBreakdown(b *testing.B) {
	db, _ := harness(b)
	r := fig9(b)
	var out string
	for i := 0; i < b.N; i++ {
		var rows []explore.StageBreakdown
		for _, row := range r.Rows {
			if row.CMP.Cores[0] == nil {
				continue
			}
			br, err := explore.EnergyBreakdown(context.Background(), row.Constraint, row.CMP, db)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, br)
		}
		br, err := explore.EnergyBreakdown(context.Background(), "full diversity", r.Unconstrained, db)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, br)
		out = explore.FormatBreakdowns(
			"Figure 11: processor energy breakdown (normalized, caches excluded)", rows)
	}
	printOnce(b, out)
}

func BenchmarkFig12AffinitySingleThread(b *testing.B) {
	_, s := harness(b)
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.Fig12AffinitySingleThread(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		out = a.Format()
	}
	printOnce(b, out)
}

func BenchmarkFig13AffinityMultiprogrammed(b *testing.B) {
	_, s := harness(b)
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.Fig13AffinityMultiprogrammed(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		out = a.Format()
	}
	printOnce(b, out)
}

func BenchmarkFig14DowngradeCost(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = fig14(b).Format()
	}
	printOnce(b, out)
}

func BenchmarkFig15MigrationOverhead(b *testing.B) {
	_, s := harness(b)
	costs := fig14(b)
	var out string
	for i := 0; i < b.N; i++ {
		r, err := s.Fig15MigrationOverhead(context.Background(), explore.Budget{AreaMM2: 48}, costs)
		if err != nil {
			b.Fatal(err)
		}
		out = r.Format()
	}
	printOnce(b, out)
}

// BenchmarkDecoderModel exercises the Section V decoder-delta constants:
// peak power and area of the superset, x86-64, and microx86-32 decoders.
func BenchmarkDecoderModel(b *testing.B) {
	cfg := explore.ReferenceConfig()
	var out string
	for i := 0; i < b.N; i++ {
		x := power.Peak(power.Traits{FS: isa.X8664}, cfg)
		sSet := power.Peak(power.Traits{FS: isa.Superset}, cfg)
		m := power.Peak(power.Traits{FS: isa.MicroX86Min}, cfg)
		ax := power.Area(power.Traits{FS: isa.X8664}, cfg)
		as := power.Area(power.Traits{FS: isa.Superset}, cfg)
		am := power.Area(power.Traits{FS: isa.MicroX86Min}, cfg)
		out = fmt.Sprintf(
			"Decoder deltas vs x86-64 (core-level):\n"+
				"  superset decoder:    %+.2f%% peak power, %+.2f%% area (paper +0.3%%, +0.46%%)\n"+
				"  microx86-32 decoder: %+.2f%% peak power, %+.2f%% area (paper -0.66%%, -1.12%%)\n",
			100*(sSet.Decode-x.Decode)/x.Total(), 100*(as.Decode-ax.Decode)/ax.Total(),
			100*(m.Decode-x.Decode)/x.Total(), 100*(am.Decode-ax.Decode)/ax.Total())
	}
	printOnce(b, out)
}

// BenchmarkAblationParetoK sweeps the candidate-pruning cap of the multicore
// search, the tractability concession DESIGN.md calls out.
func BenchmarkAblationParetoK(b *testing.B) {
	db, s := harness(b)
	cands, err := s.Candidates(context.Background(), explore.OrgCompositeFull)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		var lines string
		for _, k := range []int{60, 150, 300} {
			cmp, err := explore.Search(context.Background(), explore.SearchSpec{
				Candidates:    cands,
				Budget:        explore.Budget{AreaMM2: 64},
				Objective:     explore.ObjMPThroughput,
				MaxCandidates: k,
			}, db.Regions)
			if err != nil {
				b.Fatal(err)
			}
			lines += fmt.Sprintf("  K=%3d -> score %.4f\n", k, cmp.Score)
		}
		out = "Ablation: candidate-set cap vs search quality (MP throughput @64mm2)\n" + lines
	}
	printOnce(b, out)
}

// BenchmarkAblationUopCache quantifies the micro-op cache's role: the same
// region with and without it, on the detailed simulator.
func BenchmarkAblationUopCache(b *testing.B) {
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "sjeng.2" { // largest code footprint
			reg = r
		}
	}
	cfg := explore.ReferenceConfig()
	var out string
	for i := 0; i < b.N; i++ {
		var res [2]int64
		for v, on := range []bool{true, false} {
			c := cfg
			c.UopCache = on
			f, m, err := reg.Build(64)
			if err != nil {
				b.Fatal(err)
			}
			prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
			if err != nil {
				b.Fatal(err)
			}
			_, tr, err := cpu.RunTimed(prog, cpu.NewState(m), c, 50_000_000)
			if err != nil {
				b.Fatal(err)
			}
			res[v] = tr.Cycles
		}
		out = fmt.Sprintf("Ablation: micro-op cache on sjeng.2 (big code): with %d cycles, without %d (%+.1f%%)\n",
			res[0], res[1], 100*(float64(res[1])/float64(res[0])-1))
	}
	printOnce(b, out)
}

// BenchmarkProfilePass measures the cost of one (region, feature set)
// profiling pass — the unit of work behind the 26x49 sweep.
func BenchmarkProfilePass(b *testing.B) {
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "gobmk.0" {
			reg = r
		}
	}
	for i := 0; i < b.N; i++ {
		f, m, err := reg.Build(64)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := cpu.CollectProfile(prog, m, 40_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// jitHotLoopProg hand-builds the JIT benchmark workload: a two-level loop
// summing and writing back an 8192-qword array for 160 passes (~8M retired
// instructions of loads, stores, ALU, compares, and taken branches). Suite
// regions retire well under 100k instructions, so a profile pass over them
// is dominated by event modeling, not execution; this loop is the regime
// the executor's speed actually governs. The array is materialized in
// memory up front so the engine's data window covers it.
func jitHotLoopProg(b *testing.B) (*code.Program, *mem.Memory) {
	b.Helper()
	const elems, passes = 8192, 160
	ins := func(op code.Op, sz uint8) code.Instr {
		return code.Instr{Op: op, Sz: sz, Dst: code.NoReg, Src1: code.NoReg, Src2: code.NoReg,
			Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
	}
	movImm := func(dst code.Reg, v int64) code.Instr {
		in := ins(code.MOV, 8)
		in.Dst = dst
		in.HasImm, in.Imm = true, v
		return in
	}
	alu := func(op code.Op, dst, src2 code.Reg) code.Instr {
		in := ins(op, 8)
		in.Dst, in.Src1, in.Src2 = dst, dst, src2
		return in
	}
	arr := func(op code.Op) code.Instr {
		in := ins(op, 8)
		in.HasMem = true
		in.Mem = code.Mem{Base: 8, Index: 1, Scale: 8}
		return in
	}
	ld := arr(code.LD)
	ld.Dst = 3
	st := arr(code.ST)
	st.Src1 = 0
	cmpIN := ins(code.CMP, 8)
	cmpIN.Src1, cmpIN.Src2 = 1, 2
	cmpOUT := ins(code.CMP, 8)
	cmpOUT.Src1, cmpOUT.Src2 = 4, 5
	jlt := func(target int32) code.Instr {
		in := ins(code.JCC, 0)
		in.CC, in.Target = code.CCLT, target
		return in
	}
	ret := ins(code.RET, 0)
	ret.Src1 = 0
	p := &code.Program{Name: "jit-hot-loop", FS: isa.X8664, Instrs: []code.Instr{
		movImm(8, int64(code.DataBase)), // 0: base
		movImm(2, elems),               // 1
		movImm(6, 1),                   // 2: constant one
		movImm(0, 0),                   // 3: sum
		movImm(4, 0),                   // 4: pass
		movImm(5, passes),              // 5
		movImm(1, 0),                   // 6: i = 0 (outer loop head)
		ld,                             // 7: r3 = a[i] (inner loop head)
		alu(code.ADD, 0, 3),            // 8: sum += r3
		st,                             // 9: a[i] = sum
		alu(code.ADD, 1, 6),            // 10: i++
		cmpIN,                          // 11
		jlt(7),                         // 12
		alu(code.ADD, 4, 6),            // 13: pass++
		cmpOUT,                         // 14
		jlt(6),                         // 15
		ret,                            // 16
	}}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	if err := encoding.Layout(p, code.CodeBase); err != nil {
		b.Fatal(err)
	}
	m := mem.New()
	for i := uint64(0); i < elems; i++ {
		m.Write(code.DataBase+8*i, 8, i)
	}
	return p, m
}

// jitColdExec measures one cold execution of the hot-loop workload through
// cpu.RunPredecoded — the seam -jit plugs into. Memory cloning, state
// setup, and (on the JIT side) engine construction are untimed, so the JIT
// iterations pay native compilation plus native execution against the
// interpreter's execution alone.
func jitColdExec(b *testing.B, useJIT bool) {
	if useJIT && !jit.Available() {
		b.Skip("jit: native execution unavailable on this platform")
	}
	p, m := jitHotLoopProg(b)
	pd := cpu.Predecode(p)
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := cpu.NewState(m.Clone())
		opts := cpu.RunOptions{MaxInstrs: 100_000_000}
		var eng *jit.Engine
		if useJIT {
			eng = jit.New(jit.Config{}) // fresh engine: every iteration compiles cold
			opts.JIT = eng
		}
		b.StartTimer()
		res, err := cpu.RunPredecoded(pd, st, opts, nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instrs
		if eng != nil {
			if s := eng.Stats(); s.Runs != 1 || s.Deopts != 0 {
				b.Fatalf("benchmark workload not served natively deopt-free: %+v", s)
			}
		}
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkJITCold is the headline number for the -jit flag: a cold run
// of the hot-loop workload through the template JIT, including native
// compilation. Compare against BenchmarkJITColdInterp — the same run on
// the interpreter — for the speedup the flag buys; the committed baseline
// records the native side at least 5x faster.
func BenchmarkJITCold(b *testing.B) { jitColdExec(b, true) }

// BenchmarkJITColdInterp is BenchmarkJITCold's interpreter companion: the
// identical execution with no engine wired.
func BenchmarkJITColdInterp(b *testing.B) { jitColdExec(b, false) }

// BenchmarkJITCompile isolates template compilation: translating one
// predecoded region to native code, cold each iteration. Two programs
// alternate through a one-entry cache so every Compile both recompiles
// cold and promptly unmaps the evicted module.
func BenchmarkJITCompile(b *testing.B) {
	if !jit.Available() {
		b.Skip("jit: native execution unavailable on this platform")
	}
	var pds [2]*cpu.Predecoded
	for i, name := range []string{"gobmk.0", "hmmer.0"} {
		var reg workload.Region
		for _, r := range workload.Regions() {
			if r.Name == name {
				reg = r
			}
		}
		f, _, err := reg.Build(64)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
		if err != nil {
			b.Fatal(err)
		}
		prog.Name = name
		pds[i] = cpu.Predecode(prog)
	}
	eng := jit.New(jit.Config{CacheEntries: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compile(pds[i%2]); err != nil {
			b.Fatal(err)
		}
	}
	if s := eng.Stats(); s.CacheHits > 0 {
		b.Fatalf("compiles were not cold: %+v", s)
	}
}

// BenchmarkAnalyzeRegion measures the analysis engine (CFG recovery,
// dominators, natural loops, both abstract interpretations, Facts
// derivation) over one compiled region — the cost eval pays per (region,
// ISA) pair when Facts collection or verification is enabled.
func BenchmarkAnalyzeRegion(b *testing.B) {
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "gobmk.0" {
			reg = r
		}
	}
	f, _, err := reg.Build(64)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.X8664, compiler.Options{Verify: compiler.VerifyOff})
	if err != nil {
		b.Fatal(err)
	}
	prog.Name = reg.Name
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := check.Analyze(prog); len(rep.Findings) != 0 {
			b.Fatalf("clean region produced findings: %v", rep.Findings)
		}
		if _, err := check.ComputeFacts(prog); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	hotOnce sync.Once
	hotProg *struct {
		prog *cpu.Predecoded
		prof *cpu.Profile
	}
	hotErr error
)

// hotPath compiles and profiles gobmk.0 once, for the hot-path
// micro-benchmarks that measure one stage (predecode, scoring, codec) in
// isolation rather than the whole pass.
func hotPath(b *testing.B) (*cpu.Predecoded, *cpu.Profile) {
	b.Helper()
	hotOnce.Do(func() {
		var reg workload.Region
		for _, r := range workload.Regions() {
			if r.Name == "gobmk.0" {
				reg = r
			}
		}
		f, m, err := reg.Build(64)
		if err != nil {
			hotErr = err
			return
		}
		prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
		if err != nil {
			hotErr = err
			return
		}
		prog.Name = reg.Name
		prof, _, err := cpu.CollectProfile(prog, m, 40_000_000)
		if err != nil {
			hotErr = err
			return
		}
		hotProg = &struct {
			prog *cpu.Predecoded
			prof *cpu.Profile
		}{cpu.Predecode(prog), prof}
	})
	if hotErr != nil {
		b.Fatal(hotErr)
	}
	return hotProg.prog, hotProg.prof
}

// BenchmarkPredecode measures building the predecoded program form — the
// per-program cost amortized across every profiling and timing pass.
func BenchmarkPredecode(b *testing.B) {
	pd, _ := hotPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Predecode(pd.P)
	}
}

// BenchmarkPredecodeAlpha64 measures predecode over the fixed-length
// alpha64 encoding of the same region: decode is one-step (constant
// 4-byte stride, no length parsing), so this bounds the decode-side cost
// of the vendor baseline's measured Alpha design points.
func BenchmarkPredecodeAlpha64(b *testing.B) {
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "gobmk.0" {
			reg = r
		}
	}
	fs := isa.X86izedAlpha
	f, _, err := reg.Build(fs.Width)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{Target: "alpha64"})
	if err != nil {
		b.Fatal(err)
	}
	prog.Name = reg.Name
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Predecode(prog)
	}
}

// BenchmarkBatchScore measures scoring one profile across the full
// exploration configuration grid through the batch Scorer.
func BenchmarkBatchScore(b *testing.B) {
	_, prof := hotPath(b)
	cfgs := explore.Configs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perfmodel.CyclesBatch(prof, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileEncode measures one binary encode/decode roundtrip of a
// profile — the unit cost of checkpointing a sweep's profile cache.
func BenchmarkProfileEncode(b *testing.B) {
	_, prof := hotPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := prof.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var back cpu.Profile
		if err := back.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetailedSim measures the detailed cycle simulator's throughput.
func BenchmarkDetailedSim(b *testing.B) {
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "bzip2.0" {
			reg = r
		}
	}
	cfg := explore.ReferenceConfig()
	var instrs int64
	for i := 0; i < b.N; i++ {
		f, m, err := reg.Build(64)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
		if err != nil {
			b.Fatal(err)
		}
		exec, _, err := cpu.RunTimed(prog, cpu.NewState(m), cfg, 40_000_000)
		if err != nil {
			b.Fatal(err)
		}
		instrs += exec.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkAblationGreenfieldEncoding quantifies the paper's Section V.A
// remark that a from-scratch superset ISA "would allow much tighter encoding
// of these options": the same superset-ISA region laid out under the
// x86-compatible encoding vs. single-byte REXBC/predicate prefixes.
func BenchmarkAblationGreenfieldEncoding(b *testing.B) {
	names := []string{"hmmer.0", "sjeng.2", "gobmk.0"}
	var out string
	for i := 0; i < b.N; i++ {
		var lines string
		for _, name := range names {
			var reg workload.Region
			for _, r := range workload.Regions() {
				if r.Name == name {
					reg = r
				}
			}
			fs := isa.Superset
			f1, m1, err := reg.Build(fs.Width)
			if err != nil {
				b.Fatal(err)
			}
			legacy, err := compiler.Compile(f1, fs, compiler.Options{})
			if err != nil {
				b.Fatal(err)
			}
			f2, m2, err := reg.Build(fs.Width)
			if err != nil {
				b.Fatal(err)
			}
			compact, err := compiler.Compile(f2, fs, compiler.Options{CompactEncoding: true})
			if err != nil {
				b.Fatal(err)
			}
			cfg := explore.ReferenceConfig()
			_, trL, err := cpu.RunTimed(legacy, cpu.NewState(m1), cfg, 50_000_000)
			if err != nil {
				b.Fatal(err)
			}
			_, trC, err := cpu.RunTimed(compact, cpu.NewState(m2), cfg, 50_000_000)
			if err != nil {
				b.Fatal(err)
			}
			lines += fmt.Sprintf("  %-10s code %6dB -> %6dB (%.1f%% denser); cycles %8d -> %8d (%+.1f%%)\n",
				name, legacy.Size, compact.Size, 100*(1-float64(compact.Size)/float64(legacy.Size)),
				trL.Cycles, trC.Cycles, 100*(float64(trC.Cycles)/float64(trL.Cycles)-1))
		}
		out = "Ablation: from-scratch superset encoding (1-byte REXBC/pred prefixes) on the superset ISA\n" + lines
	}
	printOnce(b, out)
}
