module compisa

go 1.22
