// Migrationcost demonstrates process migration across composite-ISA cores:
// it compiles a register-hungry region for a deep-register feature set,
// binary-translates it for progressively narrower cores (feature
// downgrades), and reports the emulation cost of each (Figure 14 in
// miniature) — plus the free upgrade path back.
package main

import (
	"fmt"
	"log"

	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/migrate"
	"compisa/internal/workload"
)

func main() {
	// hmmer's Viterbi region: the paper's heaviest register-depth user.
	var region workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "hmmer.0" {
			region = r
		}
	}

	src := isa.MustNew(isa.MicroX86, 32, 64, isa.FullPredication)
	f, _, err := region.Build(src.Width)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := compiler.Compile(f, src, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prog.Name = region.Name

	cfg := cpu.CoreConfig{
		OoO: true, Width: 2, Predictor: cpu.PredTournament,
		IQ: 32, ROB: 64, PRFInt: 96, PRFFP: 64,
		IntALU: 3, IntMul: 1, FPALU: 2, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: true, Fusion: true,
	}
	run := func(p *code.Program) (uint64, int64) {
		_, m, err := region.Build(src.Width)
		if err != nil {
			log.Fatal(err)
		}
		exec, timing, err := cpu.RunTimed(p, cpu.NewState(m), cfg, 40_000_000)
		if err != nil {
			log.Fatal(err)
		}
		return exec.Ret, timing.Cycles
	}

	baseSum, baseCycles := run(prog)
	fmt.Printf("compiled %s for %s: %d instrs, checksum %#x, %d cycles\n\n",
		region.Name, src.Name(), len(prog.Instrs), baseSum, baseCycles)

	targets := []isa.FeatureSet{
		isa.MustNew(isa.MicroX86, 32, 32, isa.FullPredication),    // depth 64->32
		isa.MustNew(isa.MicroX86, 32, 16, isa.FullPredication),    // depth 64->16
		isa.MustNew(isa.MicroX86, 32, 32, isa.PartialPredication), // + reverse if-conversion
		isa.MicroX86Min, // everything down
	}
	fmt.Println("feature downgrades (binary translation, same core):")
	for _, dst := range targets {
		trans, err := migrate.Translate(prog, dst)
		if err != nil {
			log.Fatal(err)
		}
		sum, cycles := run(trans)
		if sum != baseSum {
			log.Fatalf("translated checksum mismatch: %#x vs %#x", sum, baseSum)
		}
		fmt.Printf("  -> %-28s %5d instrs, %8d cycles (%+.1f%%)\n",
			dst.Name(), len(trans.Instrs), cycles, 100*(float64(cycles)/float64(baseCycles)-1))
	}

	fmt.Println("\nupgrade migration (no translation): code for", isa.MicroX86Min.Name())
	f2, _, err := region.Build(32)
	if err != nil {
		log.Fatal(err)
	}
	small, err := compiler.Compile(f2, isa.MicroX86Min, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	up, err := migrate.Translate(small, isa.Superset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  microx86-8D-32W binary runs natively on the superset core: %v\n", up == small)
}
