// Featureaffinity sweeps every benchmark across a few contrasting composite
// feature sets on a fixed microarchitecture, exposing the per-application
// ISA affinity the paper exploits (Section VII.C / Figure 12).
package main

import (
	"context"
	"fmt"
	"log"

	"compisa/internal/explore"
	"compisa/internal/isa"
	"compisa/internal/perfmodel"
	"compisa/internal/workload"
)

func main() {
	db := explore.NewDB()
	cfg := explore.ReferenceConfig()
	sets := []isa.FeatureSet{
		isa.MicroX86Min, // Thumb-like
		isa.MustNew(isa.MicroX86, 32, 64, isa.PartialPredication),
		isa.MustNew(isa.MicroX86, 32, 32, isa.FullPredication),
		isa.X8664,    // x86-64 + SSE
		isa.Superset, // everything on
	}

	// Per-benchmark weighted cycles for each set, normalized to x86-64.
	cycles := map[string]map[string]float64{}
	for _, fs := range sets {
		ps, err := db.Profiles(context.Background(), explore.ISAChoice{FS: fs})
		if err != nil {
			log.Fatal(err)
		}
		for ri, r := range db.Regions {
			res, err := perfmodel.Cycles(ps[ri], cfg)
			if err != nil {
				log.Fatal(err)
			}
			if cycles[r.Benchmark] == nil {
				cycles[r.Benchmark] = map[string]float64{}
			}
			cycles[r.Benchmark][fs.ShortName()] += r.Weight * res.Cycles
		}
	}

	fmt.Printf("%-8s", "bench")
	for _, fs := range sets {
		fmt.Printf(" %16s", fs.ShortName())
	}
	fmt.Println("   (runtime relative to x86-64; lower is better)")
	for _, b := range workload.Names() {
		base := cycles[b][isa.X8664.ShortName()]
		fmt.Printf("%-8s", b)
		bestFS, bestV := "", 1e18
		for _, fs := range sets {
			v := cycles[b][fs.ShortName()] / base
			fmt.Printf(" %16.3f", v)
			if v < bestV {
				bestV, bestFS = v, fs.ShortName()
			}
		}
		fmt.Printf("   best: %s\n", bestFS)
	}
	fmt.Println("\nExpected affinities: hmmer -> deep registers/x86, sjeng/gobmk -> full")
	fmt.Println("predication, lbm/milc -> SSE (x86), mcf -> 32-bit pointers + predication.")
}
