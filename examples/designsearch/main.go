// Designsearch runs a small end-to-end design-space exploration: it finds
// the optimal 4-core CMP for each organization under one power budget and
// prints the chosen architectures (a single row of Figure 5 plus the
// matching Table III entry).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"compisa/internal/explore"
)

func main() {
	power := flag.Float64("power", 40, "peak power budget in watts (0 = unlimited)")
	area := flag.Float64("area", 0, "area budget in mm2 (0 = unlimited)")
	flag.Parse()

	ctx := context.Background()
	budget := explore.Budget{PeakW: *power, AreaMM2: *area}
	db := explore.NewDB()
	s, err := explore.NewSearcher(ctx, db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("multi-programmed throughput search under %s\n\n", budget)
	var homogeneous float64
	for _, org := range explore.Organizations() {
		cmp, err := s.Search(ctx, org, explore.ObjMPThroughput, budget)
		if err != nil {
			fmt.Printf("%-55s infeasible (%v)\n", org, err)
			continue
		}
		if org == explore.OrgHomogeneous {
			homogeneous = cmp.Score
		}
		rel := 0.0
		if homogeneous > 0 {
			rel = cmp.Score / homogeneous
		}
		fmt.Printf("%-55s score %.4f (%.2fx homogeneous), %.1fW, %.1fmm2\n",
			org, cmp.Score, rel, cmp.TotalPeak(), cmp.TotalArea())
		for i, c := range cmp.Cores {
			fmt.Printf("   %s\n", explore.TableRow(i, c))
		}
		fmt.Println()
	}
}
