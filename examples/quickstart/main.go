// Quickstart: derive a composite feature set, compile a kernel for it,
// execute it on a simulated core, and report performance and energy.
package main

import (
	"fmt"
	"log"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/ir"
	"compisa/internal/isa"
	"compisa/internal/mem"
	"compisa/internal/perfmodel"
	"compisa/internal/power"
)

// buildKernel writes a small IR region: sum of squares over an array.
func buildKernel(n int64) (*ir.Func, *mem.Memory) {
	m := mem.New()
	base := uint64(0x0800_0000)
	for i := int64(0); i < n; i++ {
		m.Write(base+uint64(i)*4, 4, uint64(i%97))
	}
	b := ir.NewBuilder("sumsq")
	header, body, exit := b.Block("header"), b.Block("body"), b.Block("exit")
	p := b.Const(ir.Ptr, int64(base))
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, n)
	acc := b.Const(ir.I32, 0)
	b.Br(header)
	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, exit, 0.99)
	b.SetBlock(body)
	v := b.Load(ir.I32, p, i, 4, 0)
	sq := b.Bin(ir.Mul, ir.I32, v, v)
	b.Assign(acc, ir.Add, ir.I32, acc, sq)
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

func main() {
	// 1. Pick a composite feature set: the paper derives 26 of them from
	// the superset ISA; here, a 32-bit microx86 with 16 registers.
	fs := isa.MustNew(isa.MicroX86, 32, 16, isa.PartialPredication)
	fmt.Printf("feature set: %s (one of %d derived from the superset ISA)\n",
		fs.Name(), len(isa.Derive()))

	// 2. Compile a kernel for it.
	f, m := buildKernel(4096)
	prog, err := compiler.Compile(f, fs, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions, %d bytes (%d spill refills, %d folded loads)\n",
		len(prog.Instrs), prog.Size, prog.Stats.RefillLoads, prog.Stats.FoldedLoads)

	// 3. Run it on a detailed core model.
	cfg := cpu.CoreConfig{
		OoO: true, Width: 2, Predictor: cpu.PredTournament,
		IQ: 32, ROB: 64, PRFInt: 96, PRFFP: 64,
		IntALU: 3, IntMul: 1, FPALU: 2, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: true, Fusion: true,
	}
	exec, timing, err := cpu.RunTimed(prog, cpu.NewState(m.Clone()), cfg, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: checksum %#x, %d instrs, %d cycles, IPC %.2f, MPKI %.2f\n",
		exec.Ret, exec.Instrs, timing.Cycles, timing.IPC(), timing.MPKI())

	// 4. Profile once and predict any configuration analytically.
	prof, _, err := cpu.CollectProfile(prog, m, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := perfmodel.Cycles(prof, cfg)
	if err != nil {
		log.Fatal(err)
	}
	en := power.Energy(power.Traits{FS: fs}, cfg, prof, pred)
	fmt.Printf("interval model: %.0f cycles (sim %d); energy %.2f uJ over %.1f us\n",
		pred.Cycles, timing.Cycles, en.Total*1e6, en.Time*1e6)
	fmt.Printf("core: %.1f mm2, %.1f W peak\n",
		power.Area(power.Traits{FS: fs}, cfg).Total(),
		power.Peak(power.Traits{FS: fs}, cfg).Total())
}
