GO ?= go

.PHONY: check build vet test race fault-smoke bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (worker pools, metrics counters,
# profile cache singleflight, candidate cache, parallel search seeds).
race:
	$(GO) test -race ./internal/par/ ./internal/metrics/ ./internal/eval/ ./internal/explore/ ./internal/fault/ ./internal/cpu/

# Fault-tolerance smoke: the TestFault* suite exercises injection, retry,
# quarantine, cancellation, determinism, and checkpoint/resume.
fault-smoke:
	$(GO) test -run Fault -v ./internal/eval/ ./internal/explore/ ./internal/fault/ ./internal/cpu/

bench:
	$(GO) test -bench=. -benchmem

# One cheap end-to-end benchmark iteration: catches pipeline regressions
# that unit tests miss without paying for the full bench sweep.
bench-smoke:
	$(GO) test -bench 'Fig5' -benchtime 1x -run '^$$'

check: vet build test race fault-smoke
