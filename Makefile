GO ?= go

.PHONY: check build vet vettool lint test race fault-smoke chaos conformance bench bench-smoke \
	bench-baseline bench-diff serve-smoke fuzz cover jit-diff cross-build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet: the repo-local multichecker (faultwrap
# error-chain preservation + mapdeterminism map-order leaks) always runs;
# staticcheck runs when installed (CI installs it; containers without
# network skip it). CI additionally drives the same multichecker through
# `go vet -vettool` (see vettool target) for build-graph-accurate file sets.
lint: vet
	$(GO) run ./tools/analyzers/cmd/vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Run the repo-local analyzers the way CI does: as a go vet tool, so the
# analyzed file set is exactly what the build graph compiles.
vettool:
	$(GO) build -o /tmp/compisa-bin/compisa-vet ./tools/analyzers/cmd/vet
	$(GO) vet -vettool=/tmp/compisa-bin/compisa-vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (worker pools, metrics counters,
# profile cache singleflight, candidate cache, parallel search seeds,
# store appends and the store circuit breaker).
race:
	$(GO) test -race ./internal/par/ ./internal/metrics/ ./internal/eval/ ./internal/explore/ ./internal/fault/ ./internal/cpu/ ./internal/serve/ ./internal/store/

# The JIT equivalence gate, locally (the CI jit-differential job): the
# native executor must match the interpreter byte for byte across the
# full region matrix, every deopt guard, and the eval-pipeline wiring —
# under the race detector, since one engine is shared across workers.
jit-diff:
	$(GO) test -race ./internal/jit/
	$(GO) test -race -run 'TestJIT' ./internal/eval/

# Prove platforms without the native emitter still build (the CI
# cross-build job): these link the pure-Go JIT fallback.
cross-build:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=darwin GOARCH=arm64 $(GO) build ./...

# Fault-tolerance smoke: the TestFault* suite exercises injection, retry,
# quarantine, cancellation, determinism, and checkpoint/resume.
fault-smoke:
	$(GO) test -run Fault -v ./internal/eval/ ./internal/explore/ ./internal/fault/ ./internal/cpu/

# Crash-safety chaos suite: kill a store-writing child process at every
# mutating operation (appends, fsyncs, compaction writes, renames) and
# prove recovery — no acked-and-synced record lost, torn tails discarded,
# reopen never fails. CHAOS_REPORT=<path> writes the recovery report JSON.
chaos:
	$(GO) test -run 'TestChaos' -v ./internal/store/

# Conformance smoke: prove the compiler emits only feature-set-legal code
# (zero findings over 26 feature sets x 49 regions, plain and compact
# encodings) and that the verifier catches every seeded mutation class.
conformance:
	$(GO) run ./cmd/compose-lint -quiet
	$(GO) run ./cmd/compose-lint -quiet -compact
	$(GO) run ./cmd/compose-lint -quiet -target alpha64
	$(GO) run ./cmd/compose-lint -mutate -quiet -region hmmer.0
	$(GO) run ./cmd/compose-lint -mutate -quiet -region hmmer.0 -target alpha64
	$(GO) test -run 'TestMutationDetection|TestCleanCompilerOutput' ./internal/check/

bench:
	$(GO) test -bench=. -benchmem

# One cheap end-to-end benchmark iteration: catches pipeline regressions
# that unit tests miss without paying for the full bench sweep.
bench-smoke:
	$(GO) test -bench 'Fig5' -benchtime 1x -run '^$$'

# Refresh the committed benchmark baseline (run this when a change is
# intentionally slower, and say so in the commit).
bench-baseline:
	$(GO) test -bench . -benchtime 3x -benchmem -run '^$$' -timeout 30m | tee /tmp/bench.txt
	$(GO) run ./tools/benchdiff -write -baseline BENCH_baseline.json /tmp/bench.txt

# Compare a fresh benchmark run against the committed baseline (the CI
# bench-regression gate, locally). -benchmem feeds the allocs/op gate.
bench-diff:
	$(GO) test -bench . -benchtime 3x -benchmem -run '^$$' -timeout 30m | tee /tmp/bench.txt
	$(GO) run ./tools/benchdiff -baseline BENCH_baseline.json -threshold 0.15 /tmp/bench.txt

# Boot the evaluation service on an ephemeral port, drive it with the
# closed-loop load generator, and gate on cache-hit rate and 5xx count —
# the CI serve-smoke job, locally.
serve-smoke:
	$(GO) build -o /tmp/compisa-bin/ ./cmd/compose-serve ./cmd/compose-load
	@rm -f /tmp/compisa-bin/serve.log
	/tmp/compisa-bin/compose-serve -addr 127.0.0.1:0 -regions 8 -warm 2>/tmp/compisa-bin/serve.log & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do \
		ADDR=$$(sed -n 's/^listening on \(http:[^ ]*\).*/\1/p' /tmp/compisa-bin/serve.log); \
		[ -n "$$ADDR" ] && curl -fsS "$$ADDR/healthz" >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	[ -n "$$ADDR" ] || { echo "compose-serve did not come up"; cat /tmp/compisa-bin/serve.log; kill $$SERVE_PID; exit 1; }; \
	/tmp/compisa-bin/compose-load -addr "$$ADDR" -requests 200 -concurrency 8 -points 3 -seed 7 \
		-min-hit-rate 0.5 -max-5xx 0 -out BENCH_serve.json; \
	STATUS=$$?; kill -TERM $$SERVE_PID; wait $$SERVE_PID 2>/dev/null; exit $$STATUS

# 30-second fuzz pass over the superset instruction codec (the CI fuzz
# step, locally).
fuzz:
	$(GO) test -fuzz 'FuzzEncodeDecodeVerify$$' -fuzztime 30s -run '^$$' ./internal/encoding/
	$(GO) test -fuzz 'FuzzEncodeDecodeVerifyAlpha64$$' -fuzztime 30s -run '^$$' ./internal/encoding/

cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	$(GO) tool cover -func=coverage.out | tail -1

check: lint build test race fault-smoke chaos
