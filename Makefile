GO ?= go

.PHONY: check build vet test race fault-smoke bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (profile cache singleflight, parallel
# candidate evaluation, parallel search seeds).
race:
	$(GO) test -race ./internal/explore/ ./internal/fault/ ./internal/cpu/

# Fault-tolerance smoke: the TestFault* suite exercises injection, retry,
# quarantine, cancellation, determinism, and checkpoint/resume.
fault-smoke:
	$(GO) test -run Fault -v ./internal/explore/ ./internal/fault/ ./internal/cpu/

bench:
	$(GO) test -bench=. -benchmem

check: vet build test race fault-smoke
