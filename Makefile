GO ?= go

.PHONY: check build vet lint test race fault-smoke conformance bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet: the repo-local faultwrap pass (error-chain
# preservation at the internal/fault boundary) always runs; staticcheck runs
# when installed (CI installs it; containers without network skip it).
lint: vet
	$(GO) run ./tools/analyzers/faultwrap ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Race-check the concurrent packages (worker pools, metrics counters,
# profile cache singleflight, candidate cache, parallel search seeds).
race:
	$(GO) test -race ./internal/par/ ./internal/metrics/ ./internal/eval/ ./internal/explore/ ./internal/fault/ ./internal/cpu/

# Fault-tolerance smoke: the TestFault* suite exercises injection, retry,
# quarantine, cancellation, determinism, and checkpoint/resume.
fault-smoke:
	$(GO) test -run Fault -v ./internal/eval/ ./internal/explore/ ./internal/fault/ ./internal/cpu/

# Conformance smoke: prove the compiler emits only feature-set-legal code
# (zero findings over 26 feature sets x 49 regions, plain and compact
# encodings) and that the verifier catches every seeded mutation class.
conformance:
	$(GO) run ./cmd/compose-lint -quiet
	$(GO) run ./cmd/compose-lint -quiet -compact
	$(GO) run ./cmd/compose-lint -mutate -quiet -region hmmer.0
	$(GO) test -run 'TestMutationDetection|TestCleanCompilerOutput' ./internal/check/

bench:
	$(GO) test -bench=. -benchmem

# One cheap end-to-end benchmark iteration: catches pipeline regressions
# that unit tests miss without paying for the full bench sweep.
bench-smoke:
	$(GO) test -bench 'Fig5' -benchtime 1x -run '^$$'

check: lint build test race fault-smoke
