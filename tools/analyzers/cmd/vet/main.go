// Command vet is the repository's multichecker: it runs every repo-local
// analyzer (faultwrap, mapdeterminism) over Go source, in either of two
// modes.
//
// Standalone, walking files and directories directly (no go/packages, no
// type checking — both analyzers are purely syntactic):
//
//	go run ./tools/analyzers/cmd/vet ./...
//	go run ./tools/analyzers/cmd/vet internal/eval tools/benchdiff/main.go
//
// Or as a vettool, speaking enough of the cmd/go unitchecker protocol
// (-V=full version handshake, -flags enumeration, per-package vet.cfg
// invocation) for `go vet -vettool` to drive it with full build-graph
// awareness:
//
//	go build -o /tmp/compisa-vet ./tools/analyzers/cmd/vet
//	go vet -vettool=/tmp/compisa-vet ./...
//
// Diagnostics go to stderr as file:line:col: [analyzer] message. Exit
// status: 0 clean, 1 (standalone) or 2 (vettool) on findings, 2 on usage
// or parse errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"compisa/tools/analyzers/faultwrap"
	"compisa/tools/analyzers/mapdeterminism"
)

// diagnostic is one analyzer finding with its source position resolved.
type diagnostic struct {
	pos      token.Position
	analyzer string
	msg      string
}

// runAnalyzers applies every registered analyzer to one parsed file.
func runAnalyzers(fset *token.FileSet, f *ast.File) []diagnostic {
	var diags []diagnostic
	for _, fd := range faultwrap.CheckFile(f) {
		diags = append(diags, diagnostic{fset.Position(fd.Pos), faultwrap.Name, fd.Msg})
	}
	for _, fd := range mapdeterminism.CheckFile(f) {
		diags = append(diags, diagnostic{fset.Position(fd.Pos), mapdeterminism.Name, fd.Msg})
	}
	return diags
}

func main() {
	// The unitchecker handshake must be handled before flag.Parse would
	// reject cmd/go's probing flags.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// cmd/go fingerprints vettools by the trailing buildID= token
			// (cache invalidation when the tool binary changes), so hash
			// the executable itself, as x/tools' unitchecker does.
			fmt.Printf("%s version devel buildID=%s\n", os.Args[0], selfHash())
			return
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags are exposed; cmd/go requires valid JSON.
			fmt.Println("[]")
			return
		}
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vet [files, dirs, dir/... patterns] | vet <path>/vet.cfg\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// selfHash fingerprints the running executable for the -V=full handshake;
// any stable token suffices when the binary cannot be read.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// standalone walks the argument files/dirs/... patterns, printing findings
// to stderr; exit 1 when any are reported.
func standalone(args []string) int {
	fset := token.NewFileSet()
	var diags []diagnostic
	for _, arg := range args {
		ds, err := checkPath(fset, arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vet: %v\n", err)
			return 2
		}
		diags = append(diags, ds...)
	}
	report(diags)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func report(diags []diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.pos, d.analyzer, d.msg)
	}
}

// checkPath analyzes one argument: a file, a directory, or a recursive
// dir/... pattern.
func checkPath(fset *token.FileSet, arg string) ([]diagnostic, error) {
	recursive := false
	if strings.HasSuffix(arg, "/...") {
		recursive = true
		arg = strings.TrimSuffix(arg, "/...")
		if arg == "" {
			arg = "."
		}
	}
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return checkFile(fset, arg)
	}
	var diags []diagnostic
	walk := func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != arg && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if path != arg && !recursive {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		ds, ferr := checkFile(fset, path)
		if ferr != nil {
			return ferr
		}
		diags = append(diags, ds...)
		return nil
	}
	if err := filepath.WalkDir(arg, walk); err != nil {
		return nil, err
	}
	return diags, nil
}

func checkFile(fset *token.FileSet, path string) ([]diagnostic, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return runAnalyzers(fset, f), nil
}

// vetConfig is the subset of cmd/go's vet.cfg this tool consumes; the
// full config carries type-checking inputs (ImportMap, PackageFile) that
// purely syntactic analyzers never need.
type vetConfig struct {
	ID         string
	Dir        string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
	Succeed    bool `json:"SucceedOnTypecheckFailure"`
}

// unitcheck runs one per-package unitchecker invocation: parse the
// package's files, report diagnostics to stderr, and write the (empty)
// facts file cmd/go expects at VetxOutput. Exit 2 signals findings, the
// unitchecker convention.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vet: %s: %v\n", cfgPath, err)
		return 2
	}
	// Dependencies are analyzed only for facts; these analyzers produce
	// none, so an empty vetx file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "vet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var diags []diagnostic
	for _, gf := range cfg.GoFiles {
		if !filepath.IsAbs(gf) && cfg.Dir != "" {
			gf = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.SkipObjectResolution)
		if err != nil {
			if cfg.Succeed {
				continue
			}
			fmt.Fprintf(os.Stderr, "vet: %v\n", err)
			return 2
		}
		diags = append(diags, runAnalyzers(fset, f)...)
	}
	report(diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}
