package faultwrap

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFile(f)
}

func TestFlagsStringifiedError(t *testing.T) {
	for _, src := range []string{
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %v", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %s", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %q", err) }`,
		`package p; import "fmt"; func f(buildErr error) error { return fmt.Errorf("x: %v", buildErr) }`,
		`package p; import "fmt"; import "context"; func f(ctx context.Context) error { return fmt.Errorf("x: %v", ctx.Err()) }`,
		`package p; import "fmt"; type s struct{ err error }; func f(x s) error { return fmt.Errorf("x: %v", x.err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("%s at %d: %v", "f", 3, err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("%*d: %v", 4, 3, err) }`,
	} {
		if got := check(t, src); len(got) != 1 {
			t.Errorf("want 1 finding, got %d for %s", len(got), src)
		}
	}
}

func TestAcceptsWrappedAndNonErrors(t *testing.T) {
	for _, src := range []string{
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %w", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %w: %w", err, err) }`,
		`package p; import "fmt"; func f(err error) string { return fmt.Sprintf("x: %v", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %s", err.Error()) }`,
		`package p; import "fmt"; func f(n int) error { return fmt.Errorf("x: %v", n) }`,
		`package p; import "fmt"; func f(name string) error { return fmt.Errorf("100%% of %s", name) }`,
		`package p; func f() {}`,
	} {
		if got := check(t, src); len(got) != 0 {
			t.Errorf("want 0 findings, got %d for %s", len(got), src)
		}
	}
}

// TestMultiLineErrorf: calls whose arguments span lines, and calls whose
// format string is assembled from concatenated literals across lines, are
// analyzed like single-line ones.
func TestMultiLineErrorf(t *testing.T) {
	const flagged = `package p

import "fmt"

func f(compileErr error, region string, attempt int) error {
	return fmt.Errorf(
		"profile %s (attempt %d): "+
			"compile stage: %v",
		region,
		attempt,
		compileErr,
	)
}
`
	got := check(t, flagged)
	if len(got) != 1 {
		t.Fatalf("multi-line concatenated format: want 1 finding, got %d", len(got))
	}
	if !strings.Contains(got[0].Msg, "compileErr") {
		t.Errorf("finding should name the flagged argument: %s", got[0].Msg)
	}

	const clean = `package p

import "fmt"

func f(compileErr error, region string) error {
	return fmt.Errorf(
		"profile %s: "+
			"compile stage: %w",
		region,
		compileErr,
	)
}
`
	if got := check(t, clean); len(got) != 0 {
		t.Errorf("multi-line %%w wrap: want 0 findings, got %d", len(got))
	}

	// A format built from a non-constant piece cannot be analyzed; stay
	// silent rather than guess.
	const dynamic = `package p
import "fmt"
func f(prefix string, err error) error { return fmt.Errorf(prefix+": %v", err) }
`
	if got := check(t, dynamic); len(got) != 0 {
		t.Errorf("dynamic format: want 0 findings, got %d", len(got))
	}
}

// TestErrorsJoin: an errors.Join(...) argument is an error chain even
// though its name matches neither err nor *Err, and a renamed errors
// import is resolved; a foreign package named errors is not.
func TestErrorsJoin(t *testing.T) {
	src := `package p; import "errors"; import "fmt"; func f(a, b error) error { return fmt.Errorf("x: %v", errors.Join(a, b)) }`
	if got := check(t, src); len(got) != 1 {
		t.Fatalf("errors.Join via %%v: want 1 finding, got %d", len(got))
	}
	src = `package p; import "errors"; import "fmt"; func f(a, b error) error { return fmt.Errorf("x: %w", errors.Join(a, b)) }`
	if got := check(t, src); len(got) != 0 {
		t.Errorf("errors.Join via %%w: want 0 findings, got %d", len(got))
	}
	src = `package p; import stderrors "errors"; import "fmt"; func f(a, b error) error { return fmt.Errorf("x: %v", stderrors.Join(a, b)) }`
	if got := check(t, src); len(got) != 1 {
		t.Errorf("renamed errors import: want 1 finding, got %d", len(got))
	}
	src = `package p; import errors "example.com/noterrors"; import "fmt"; func f(a, b error) error { return fmt.Errorf("x: %v", errors.Join(a, b)) }`
	if got := check(t, src); len(got) != 0 {
		t.Errorf("foreign errors package: want 0 findings, got %d", len(got))
	}
	src = `package p; import "fmt"; type j struct{}; func (j) Join(e ...error) error { return nil }; func f(x j, a error) error { return fmt.Errorf("x: %v", x.Join(a)) }`
	if got := check(t, src); len(got) != 0 {
		t.Errorf("non-errors Join method without errors import: want 0 findings, got %d", len(got))
	}
}

func TestRespectsImportRenaming(t *testing.T) {
	// A renamed fmt import is still the real fmt.Errorf...
	src := `package p; import f "fmt"; func g(err error) error { return f.Errorf("x: %v", err) }`
	if got := check(t, src); len(got) != 1 {
		t.Errorf("renamed fmt import: want 1 finding, got %d", len(got))
	}
	// ...and a foreign package that happens to be called fmt is not.
	src = `package p; import fmt "example.com/notfmt"; func g(err error) error { return fmt.Errorf("x: %v", err) }`
	if got := check(t, src); len(got) != 0 {
		t.Errorf("shadowed fmt package: want 0 findings, got %d", len(got))
	}
}

func TestFindingMessageNamesVerb(t *testing.T) {
	src := `package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %q", err) }`
	got := check(t, src)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "%q") || !strings.Contains(got[0].Msg, "%w") {
		t.Fatalf("finding must name the offending verb and suggest %%w: %+v", got)
	}
}

func TestFormatVerbs(t *testing.T) {
	for _, tc := range []struct {
		format string
		want   string
	}{
		{"%v", "v"},
		{"%s: %d: %w", "sdw"},
		{"%%", ""},
		{"%-8s %+d %#x", "sdx"},
		{"%*d", "*d"},
		{"%.2f%%", "f"},
		{"trailing %", ""},
	} {
		if got := string(formatVerbs(tc.format)); got != tc.want {
			t.Errorf("formatVerbs(%q) = %q, want %q", tc.format, got, tc.want)
		}
	}
}
