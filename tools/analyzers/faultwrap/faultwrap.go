// Package faultwrap is a repository-local vet pass enforcing error-chain
// preservation at the internal/fault boundary: every fmt.Errorf that
// formats an error value must use %w, not %v/%s/%q.
//
// The evaluation pipeline's retry/quarantine machinery classifies failures
// by walking error chains (errors.Is(err, fault.ErrInjected),
// errors.As(&fault.Error{}), fault.IsTransient). A fmt.Errorf("...: %v",
// err) anywhere between the failure site and the classifier flattens the
// chain to a string and silently turns a classified fault into an opaque
// one, so the check is enforced repo-wide.
//
// The pass is intentionally syntactic (stdlib go/parser only, no type
// information): an argument is treated as an error when its terminal name
// is "err" or ends in "err"/"Err" — matching this repository's naming
// convention — or when it is a call to errors.Join (resolving a renamed
// errors import). Deliberate stringification via err.Error() is not
// flagged.
//
// The pass runs under the tools/analyzers/cmd/vet multichecker:
//
//	go run ./tools/analyzers/cmd/vet ./...
package faultwrap

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Name is the analyzer's diagnostic prefix.
const Name = "faultwrap"

// Finding is one %v/%s/%q-formats-an-error diagnostic.
type Finding struct {
	Pos token.Pos
	Msg string
}

// CheckFile reports every fmt.Errorf call in the file that formats an
// error-named argument with a stringifying verb instead of %w.
func CheckFile(f *ast.File) []Finding {
	// Resolve the local names bound to the real fmt and errors packages,
	// so renamed imports are followed and foreign packages that happen to
	// share the name are ignored.
	fmtName, errorsName := "", ""
	for _, imp := range f.Imports {
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		}
		switch imp.Path.Value {
		case `"fmt"`:
			fmtName = "fmt"
			if local != "" {
				fmtName = local
			}
		case `"errors"`:
			errorsName = "errors"
			if local != "" {
				errorsName = local
			}
		}
	}
	if fmtName == "" || fmtName == "_" || fmtName == "." {
		return nil
	}
	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Errorf" {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != fmtName || len(call.Args) < 2 {
			return true
		}
		format, ok := constantString(call.Args[0])
		if !ok {
			return true
		}
		verbs := formatVerbs(format)
		for i, verb := range verbs {
			if i+1 >= len(call.Args) {
				break // malformed call; go vet reports arity
			}
			arg := call.Args[i+1]
			if (verb == 'v' || verb == 's' || verb == 'q') && isErrorExpr(arg, errorsName) {
				findings = append(findings, Finding{
					Pos: arg.Pos(),
					Msg: fmt.Sprintf("fmt.Errorf formats error %q with %%%c; use %%w so the fault classifier can walk the chain",
						exprName(arg), verb),
				})
			}
		}
		return true
	})
	return findings
}

// constantString evaluates a string literal or a (possibly multi-line)
// concatenation of string literals; multi-line fmt.Errorf calls routinely
// split long format strings with +.
func constantString(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.ParenExpr:
		return constantString(e.X)
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, ok := constantString(e.X)
		if !ok {
			return "", false
		}
		r, ok := constantString(e.Y)
		if !ok {
			return "", false
		}
		return l + r, true
	}
	return "", false
}

// formatVerbs extracts the verb letter for each argument-consuming
// directive in a Printf-style format string, in argument order. A '*'
// width/precision consumes an argument of its own and is emitted as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] != '%' { // "%%" consumes no argument
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

// isErrorExpr reports whether an expression syntactically names an error:
// its terminal identifier is "err" or ends in "err"/"Err", or it is a call
// to errors.Join (errorsName is the file-local name of the errors import;
// "" when errors is not imported). Calls like ctx.Err() qualify through
// their method name; err.Error() does not — stringifying through Error()
// is the explicit opt-out.
func isErrorExpr(e ast.Expr, errorsName string) bool {
	if call, ok := e.(*ast.CallExpr); ok && errorsName != "" {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Join" {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == errorsName {
				return true
			}
		}
	}
	name := exprName(e)
	return name == "err" || strings.HasSuffix(name, "err") || strings.HasSuffix(name, "Err")
}

// exprName returns the terminal name of an identifier, selector, or call
// expression ("" when the shape is anything else).
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun)
	}
	return ""
}
