// Command faultwrap is a repository-local vet pass enforcing error-chain
// preservation at the internal/fault boundary: every fmt.Errorf that
// formats an error value must use %w, not %v/%s/%q.
//
// The evaluation pipeline's retry/quarantine machinery classifies failures
// by walking error chains (errors.Is(err, fault.ErrInjected),
// errors.As(&fault.Error{}), fault.IsTransient). A fmt.Errorf("...: %v",
// err) anywhere between the failure site and the classifier flattens the
// chain to a string and silently turns a classified fault into an opaque
// one, so the check is enforced repo-wide.
//
// The pass is intentionally syntactic (stdlib go/parser only, no type
// information): an argument is treated as an error when its terminal name
// is "err" or ends in "err"/"Err" — matching this repository's naming
// convention — which keeps the analyzer dependency-free in containers
// without golang.org/x/tools. Deliberate stringification via err.Error()
// is not flagged.
//
// Usage:
//
//	go run ./tools/analyzers/faultwrap ./...
//
// Exit status 1 if any finding is reported, 0 when clean.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	fset := token.NewFileSet()
	var findings []Finding
	for _, arg := range args {
		fs, err := checkPath(fset, arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultwrap: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", fset.Position(f.Pos), f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "faultwrap: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// checkPath analyzes one argument: a file, a directory, or a recursive
// dir/... pattern.
func checkPath(fset *token.FileSet, arg string) ([]Finding, error) {
	recursive := false
	if strings.HasSuffix(arg, "/...") {
		recursive = true
		arg = strings.TrimSuffix(arg, "/...")
		if arg == "" {
			arg = "."
		}
	}
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return checkFile(fset, arg)
	}
	var findings []Finding
	walk := func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != arg && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if path != arg && !recursive {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fs, ferr := checkFile(fset, path)
		if ferr != nil {
			return ferr
		}
		findings = append(findings, fs...)
		return nil
	}
	if err := filepath.WalkDir(arg, walk); err != nil {
		return nil, err
	}
	return findings, nil
}

func checkFile(fset *token.FileSet, path string) ([]Finding, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return CheckFile(f), nil
}

// Finding is one %v/%s/%q-formats-an-error diagnostic.
type Finding struct {
	Pos token.Pos
	Msg string
}

// CheckFile reports every fmt.Errorf call in the file that formats an
// error-named argument with a stringifying verb instead of %w.
func CheckFile(f *ast.File) []Finding {
	// Resolve the local name bound to the real fmt package, so renamed
	// imports are followed and a foreign package named "fmt" is ignored.
	fmtName := ""
	for _, imp := range f.Imports {
		if imp.Path.Value == `"fmt"` {
			fmtName = "fmt"
			if imp.Name != nil {
				fmtName = imp.Name.Name
			}
		}
	}
	if fmtName == "" || fmtName == "_" || fmtName == "." {
		return nil
	}
	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Errorf" {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != fmtName || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		verbs := formatVerbs(format)
		for i, verb := range verbs {
			if i+1 >= len(call.Args) {
				break // malformed call; go vet reports arity
			}
			arg := call.Args[i+1]
			if (verb == 'v' || verb == 's' || verb == 'q') && isErrorExpr(arg) {
				findings = append(findings, Finding{
					Pos: arg.Pos(),
					Msg: fmt.Sprintf("fmt.Errorf formats error %q with %%%c; use %%w so the fault classifier can walk the chain",
						exprName(arg), verb),
				})
			}
		}
		return true
	})
	return findings
}

// formatVerbs extracts the verb letter for each argument-consuming
// directive in a Printf-style format string, in argument order. A '*'
// width/precision consumes an argument of its own and is emitted as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] != '%' { // "%%" consumes no argument
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

// isErrorExpr reports whether an expression syntactically names an error:
// its terminal identifier is "err" or ends in "err"/"Err". Calls like
// ctx.Err() qualify through their method name; err.Error() does not —
// stringifying through Error() is the explicit opt-out.
func isErrorExpr(e ast.Expr) bool {
	name := exprName(e)
	return name == "err" || strings.HasSuffix(name, "err") || strings.HasSuffix(name, "Err")
}

// exprName returns the terminal name of an identifier, selector, or call
// expression ("" when the shape is anything else).
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun)
	}
	return ""
}
