package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFile(f)
}

func TestFlagsStringifiedError(t *testing.T) {
	for _, src := range []string{
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %v", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %s", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %q", err) }`,
		`package p; import "fmt"; func f(buildErr error) error { return fmt.Errorf("x: %v", buildErr) }`,
		`package p; import "fmt"; import "context"; func f(ctx context.Context) error { return fmt.Errorf("x: %v", ctx.Err()) }`,
		`package p; import "fmt"; type s struct{ err error }; func f(x s) error { return fmt.Errorf("x: %v", x.err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("%s at %d: %v", "f", 3, err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("%*d: %v", 4, 3, err) }`,
	} {
		if got := check(t, src); len(got) != 1 {
			t.Errorf("want 1 finding, got %d for %s", len(got), src)
		}
	}
}

func TestAcceptsWrappedAndNonErrors(t *testing.T) {
	for _, src := range []string{
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %w", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %w: %w", err, err) }`,
		`package p; import "fmt"; func f(err error) string { return fmt.Sprintf("x: %v", err) }`,
		`package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %s", err.Error()) }`,
		`package p; import "fmt"; func f(n int) error { return fmt.Errorf("x: %v", n) }`,
		`package p; import "fmt"; func f(name string) error { return fmt.Errorf("100%% of %s", name) }`,
		`package p; func f() {}`,
	} {
		if got := check(t, src); len(got) != 0 {
			t.Errorf("want 0 findings, got %d for %s", len(got), src)
		}
	}
}

func TestRespectsImportRenaming(t *testing.T) {
	// A renamed fmt import is still the real fmt.Errorf...
	src := `package p; import f "fmt"; func g(err error) error { return f.Errorf("x: %v", err) }`
	if got := check(t, src); len(got) != 1 {
		t.Errorf("renamed fmt import: want 1 finding, got %d", len(got))
	}
	// ...and a foreign package that happens to be called fmt is not.
	src = `package p; import fmt "example.com/notfmt"; func g(err error) error { return fmt.Errorf("x: %v", err) }`
	if got := check(t, src); len(got) != 0 {
		t.Errorf("shadowed fmt package: want 0 findings, got %d", len(got))
	}
}

func TestFindingMessageNamesVerb(t *testing.T) {
	src := `package p; import "fmt"; func f(err error) error { return fmt.Errorf("x: %q", err) }`
	got := check(t, src)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "%q") || !strings.Contains(got[0].Msg, "%w") {
		t.Fatalf("finding must name the offending verb and suggest %%w: %+v", got)
	}
}

func TestFormatVerbs(t *testing.T) {
	for _, tc := range []struct {
		format string
		want   string
	}{
		{"%v", "v"},
		{"%s: %d: %w", "sdw"},
		{"%%", ""},
		{"%-8s %+d %#x", "sdx"},
		{"%*d", "*d"},
		{"%.2f%%", "f"},
		{"trailing %", ""},
	} {
		if got := string(formatVerbs(tc.format)); got != tc.want {
			t.Errorf("formatVerbs(%q) = %q, want %q", tc.format, got, tc.want)
		}
	}
}
