package mapdeterminism

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFile(f)
}

func TestFlagsOrderedSinks(t *testing.T) {
	for _, tc := range []struct {
		name, src string
	}{
		{"append", `package p
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`},
		{"append-key-value", `package p
func f(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}`},
		{"builder", `package p
import "strings"
func f(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k)
	}
	return sb.String()
}`},
		{"string-concat", `package p
func f(m map[string]int) string {
	s := ""
	for k := range m {
		s += k + ","
	}
	return s
}`},
		{"print", `package p
import "fmt"
func f(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}`},
		{"make-map", `package p
func f(keys []string) []string {
	m := make(map[string]bool)
	for _, k := range keys {
		m[k] = true
	}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`},
		{"var-decl-map", `package p
func f() []int {
	var m map[int]int
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}`},
	} {
		if got := check(t, tc.src); len(got) != 1 {
			t.Errorf("%s: want 1 finding, got %d", tc.name, len(got))
		}
	}
}

func TestAcceptsUnorderedAndSorted(t *testing.T) {
	for _, tc := range []struct {
		name, src string
	}{
		{"collect-then-sort", `package p
import "sort"
func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}`},
		{"sort-slice", `package p
import "sort"
func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}`},
		{"slices-sortfunc", `package p
import "slices"
func f(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b int) int { return a - b })
	return keys
}`},
		{"commutative-sum", `package p
func f(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}`},
		{"map-to-map", `package p
func f(m map[string]int) map[int]string {
	inv := map[int]string{}
	for k, v := range m {
		inv[v] = k
	}
	return inv
}`},
		{"range-slice", `package p
func f(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}`},
		{"delete-only", `package p
func f(m map[string]int) {
	for k := range m {
		if len(k) == 0 {
			delete(m, k)
		}
	}
}`},
	} {
		if got := check(t, tc.src); len(got) != 0 {
			t.Errorf("%s: want 0 findings, got %d: %+v", tc.name, len(got), got)
		}
	}
}

// TestCatchesRevertedVectorizerBug parses the seeded reverted copy of the
// PR 6 vectorizer splat-insertion bug and asserts the analyzer reports the
// `for src := range splats` loop at its exact line.
func TestCatchesRevertedVectorizerBug(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "testdata/vectorize_regressed.go", nil,
		parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the marker comment so the assertion survives edits above it.
	wantLine := 0
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "want: iteration over map") {
				wantLine = fset.Position(c.Pos()).Line
			}
		}
	}
	if wantLine == 0 {
		t.Fatal("testdata marker comment not found")
	}
	got := CheckFile(f)
	if len(got) != 1 {
		t.Fatalf("want exactly 1 finding in reverted vectorizer, got %d: %+v", len(got), got)
	}
	pos := fset.Position(got[0].Pos)
	if pos.Line != wantLine {
		t.Errorf("finding at line %d, want line %d (the range statement)", pos.Line, wantLine)
	}
	if !strings.Contains(got[0].Msg, `"splats"`) || !strings.Contains(got[0].Msg, "preheader.Instrs") {
		t.Errorf("finding should name the map and the sink: %s", got[0].Msg)
	}
}
