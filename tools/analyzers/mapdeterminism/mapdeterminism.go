// Package mapdeterminism is a repository-local vet pass flagging map
// iteration that feeds ordered output. Go randomizes map iteration order,
// so a `for k := range m` loop that appends to a slice, writes into a
// strings.Builder, concatenates strings, or prints, produces a different
// sequence on every run — the exact bug class PR 6 caught at runtime in
// the vectorizer, where splat instructions were inserted into the loop
// preheader in map order and recompiles emitted different programs. In a
// pipeline whose artifacts are content-addressed (profile codec, Facts
// JSON, design-point store), any such loop is a determinism landmine, so
// the pass runs repo-wide in `make lint` and CI.
//
// The pass is intentionally syntactic (stdlib go/parser only, no type
// information), like faultwrap: a variable counts as a map when the
// function declares or assigns it a literal map type (`m := map[K]V{}`,
// `make(map[K]V)`, `var m map[K]V`, or a map-typed parameter). A loop is
// exempt when the slice it appends to is passed to a sort call anywhere in
// the same function — sorting re-establishes a deterministic order, and
// the collect-then-sort idiom is the standard fix.
//
// The pass runs under the tools/analyzers/cmd/vet multichecker:
//
//	go run ./tools/analyzers/cmd/vet ./...
package mapdeterminism

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Name is the analyzer's diagnostic prefix.
const Name = "mapdeterminism"

// Finding is one map-iteration-feeds-ordered-output diagnostic, positioned
// at the offending range statement.
type Finding struct {
	Pos token.Pos
	Msg string
}

// CheckFile reports every range-over-map loop in the file whose body feeds
// ordered output and whose collected result is never sorted.
func CheckFile(f *ast.File) []Finding {
	var findings []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		findings = append(findings, checkFunc(fd)...)
	}
	return findings
}

func checkFunc(fd *ast.FuncDecl) []Finding {
	maps := mapIdents(fd)
	if len(maps) == 0 {
		return nil
	}
	sorted := sortedIdents(fd.Body)
	var findings []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rng.X.(*ast.Ident)
		if !ok || !maps[id.Name] {
			return true
		}
		for _, sink := range orderedSinks(rng.Body) {
			if sink.target != "" && sorted[sink.target] {
				continue // collect-then-sort idiom: order is re-established
			}
			findings = append(findings, Finding{
				Pos: rng.For,
				Msg: fmt.Sprintf("iteration over map %q feeds ordered output (%s); map order is randomized — record keys in discovery order or sort before emitting",
					id.Name, sink.desc),
			})
			break // one finding per loop, not per sink
		}
		return true
	})
	return findings
}

// mapIdents collects names the function syntactically binds to a map:
// map-typed parameters, `var x map[K]V`, and assignments from a map
// composite literal or make(map[K]V).
func mapIdents(fd *ast.FuncDecl) map[string]bool {
	maps := map[string]bool{}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if _, ok := p.Type.(*ast.MapType); ok {
				for _, name := range p.Names {
					maps[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isMapExpr(rhs) {
					maps[id.Name] = true
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				_, typed := vs.Type.(*ast.MapType)
				for i, name := range vs.Names {
					if typed || (i < len(vs.Values) && isMapExpr(vs.Values[i])) {
						maps[name.Name] = true
					}
				}
			}
		}
		return true
	})
	return maps
}

// isMapExpr reports whether an expression syntactically produces a map: a
// map composite literal or a make(map[K]V) call.
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) >= 1 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// sortedIdents collects names passed to a sort-like call anywhere in the
// function body (sort.Slice(x, ...), sort.Strings(x), slices.Sort(x),
// slices.SortFunc(x, ...)). The scan is deliberately function-wide rather
// than statements-after-the-loop: once the collected slice is sorted
// anywhere, map order cannot leak through it.
func sortedIdents(body *ast.BlockStmt) map[string]bool {
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !strings.HasPrefix(name, "Sort") && !strings.HasPrefix(name, "Strings") &&
			!strings.HasPrefix(name, "Ints") && name != "Slice" && name != "SliceStable" {
			return true
		}
		for _, arg := range call.Args {
			if path := exprPath(arg); path != "" {
				sorted[path] = true
			}
		}
		return true
	})
	return sorted
}

// sink is one ordered-output operation inside a range body: desc names it
// for the diagnostic; target is the appended-to identifier when the sink
// is an append (the name the sorted-suppression keys on), "" otherwise.
type sink struct {
	desc   string
	target string
}

// orderedSinks scans a range body for operations whose result depends on
// iteration order: append to a slice, strings.Builder/io.Writer writes,
// string concatenation, and printing.
func orderedSinks(body *ast.BlockStmt) []sink {
	var sinks []sink
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Rhs) == 1 && isStringy(n.Rhs[0]) {
				sinks = append(sinks, sink{desc: "string += concatenation"})
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
					target := exprPath(call.Args[0])
					if target == "" && i < len(n.Lhs) {
						target = exprPath(n.Lhs[i])
					}
					sinks = append(sinks, sink{desc: fmt.Sprintf("append to %q", target), target: target})
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			switch {
			case name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune":
				if _, ok := n.Fun.(*ast.SelectorExpr); ok {
					sinks = append(sinks, sink{desc: name + " into a writer"})
				}
			case strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint"):
				sinks = append(sinks, sink{desc: name + " output"})
			}
		}
		return true
	})
	return sinks
}

// isStringy reports whether an expression plausibly produces a string: it
// contains a string literal or a Sprint-family call. Keeps `n += m[k]`
// accumulation (order-insensitive for commutative ops) out of the sink
// set without type information.
func isStringy(e ast.Expr) bool {
	stringy := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.STRING {
				stringy = true
			}
		case *ast.CallExpr:
			if strings.HasPrefix(calleeName(n), "Sprint") {
				stringy = true
			}
		}
		return !stringy
	})
	return stringy
}

// exprPath flattens an identifier or selector chain to a dotted path
// ("preheader.Instrs"); "" for any other expression shape.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

// calleeName returns the terminal name of a call's function expression.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
