// Package testdata holds a reverted copy of the PR 6 vectorizer
// map-iteration bug: splat instructions are inserted into the loop
// preheader by ranging over the `splats` map directly, so recompiles of
// the same function emit the preheader instructions in a different order.
// The shipped fix records discovery order in a `splatOrder []ir.VReg`
// slice and ranges over that. The mapdeterminism test asserts the
// analyzer reports the `for src := range splats` loop at its exact line.
//
// The file only needs to parse, not compile; the stub declarations below
// stand in for internal/compiler's ir package.
package testdata

type vreg int

type instr struct {
	Op  int
	Dst vreg
	A   vreg
}

type block struct {
	Instrs []instr
}

const opSplat = 42

func newVReg() vreg { return 0 }

// insertSplats is the reverted hunk of vectorizeLoop's commit phase.
func insertSplats(preheader *block, splats map[vreg]bool) map[vreg]vreg {
	splatOf := map[vreg]vreg{}
	// Insert splats at the end of the preheader, before its terminator.
	for src := range splats { // want: iteration over map "splats" feeds ordered output
		v := newVReg()
		sp := instr{Op: opSplat, Dst: v, A: src}
		pos := len(preheader.Instrs) - 1
		preheader.Instrs = append(preheader.Instrs, instr{})
		copy(preheader.Instrs[pos+1:], preheader.Instrs[pos:])
		preheader.Instrs[pos] = sp
		splatOf[src] = v
	}
	return splatOf
}
