// Command benchdiff compares a `go test -bench` run against a committed
// baseline and fails on performance regressions — the comparator behind
// the CI bench-regression gate.
//
// Two modes:
//
//	benchdiff -write -baseline BENCH_baseline.json bench.txt
//	    parse a benchmark run and write it as the new baseline
//	benchdiff -baseline BENCH_baseline.json [-threshold 0.15] bench.txt
//	    compare a run against the baseline; exit 1 on regression or on a
//	    baseline benchmark missing from the run
//
// Committed baselines are recorded on one machine and checked on another,
// so absolute ns/op differences mostly measure the hardware. Calibration
// (default on) removes that: each benchmark's new/old ratio is divided by
// the median ratio across all benchmarks, so a uniform machine-speed shift
// cancels out and only benchmarks that moved relative to the rest of the
// suite can trip the threshold. -calibrate=false compares absolutes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed artifact: benchmark name -> ns/op.
type Baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// timingRE matches the measurement part of a benchmark line: iteration
// count, then ns/op. The repo's benchmarks log tables to stdout, so the
// timing usually lands on its own line after the log output rather than on
// the name line; both forms parse.
var timingRE = regexp.MustCompile(`^\s*\d+\s+([0-9.]+) ns/op`)

// nameRE matches a benchmark name at line start, with the optional
// -GOMAXPROCS suffix Go appends on parallel runs.
var nameRE = regexp.MustCompile(`^(Benchmark[\w/]+?)(?:-\d+)?(\s|$)`)

// parseBench extracts name -> ns/op pairs from `go test -bench` output,
// associating each timing line with the most recent benchmark name.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	var current string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := nameRE.FindStringSubmatch(line); m != nil {
			current = m[1]
			line = strings.TrimPrefix(line, m[0])
		} else if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			// Log output resets nothing, but PASS/ok/FAIL end the stream's
			// benchmark section; keep scanning anyway (harmless).
			line = strings.TrimSpace(line)
			if line == "PASS" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "FAIL") {
				current = ""
			}
			continue
		}
		if current == "" {
			continue
		}
		if m := timingRE.FindStringSubmatch(strings.TrimLeft(line, " \t")); m != nil {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad ns/op on %q: %w", line, err)
			}
			out[current] = v
			current = ""
		}
	}
	return out, sc.Err()
}

// median of a non-empty slice (sorted copy; even length averages the pair).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	write := flag.Bool("write", false, "write the parsed run as the new baseline instead of comparing")
	threshold := flag.Float64("threshold", 0.15, "fail when a benchmark regresses more than this fraction")
	calibrate := flag.Bool("calibrate", true, "normalize by the median new/old ratio to cancel machine-speed differences")
	note := flag.String("note", "go test -bench . -benchtime 3x", "note recorded in a written baseline")
	out := flag.String("out", "", "also write the parsed run as JSON to this file (artifact upload)")
	flag.Parse()
	log.SetFlags(0)

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	run, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(run) == 0 {
		log.Fatal("benchdiff: no benchmarks found in input")
	}

	if *out != "" || *write {
		data, err := json.MarshalIndent(Baseline{Note: *note, Benchmarks: run}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		paths := []string{}
		if *out != "" {
			paths = append(paths, *out)
		}
		if *write {
			paths = append(paths, *baselinePath)
		}
		for _, p := range paths {
			if err := os.WriteFile(p, data, 0o644); err != nil {
				log.Fatal(err)
			}
		}
		if *write {
			fmt.Printf("wrote %d benchmarks to %s\n", len(run), *baselinePath)
			return
		}
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("benchdiff: %s: %v", *baselinePath, err)
	}
	failures := compare(os.Stdout, base.Benchmarks, run, *threshold, *calibrate)
	if failures > 0 {
		fmt.Printf("\nFAIL: %d benchmark(s) regressed beyond %.0f%% (or went missing)\n", failures, *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("\nok: %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), *threshold*100)
}

// compare prints a per-benchmark table and returns the number of failures:
// regressions beyond the threshold plus baseline benchmarks missing from
// the run. New benchmarks absent from the baseline are reported but never
// fail (they gate once the baseline is refreshed).
func compare(w io.Writer, base, run map[string]float64, threshold float64, calibrate bool) int {
	names := make([]string, 0, len(base))
	ratios := make([]float64, 0, len(base))
	for name, old := range base {
		names = append(names, name)
		if v, ok := run[name]; ok && old > 0 {
			ratios = append(ratios, v/old)
		}
	}
	sort.Strings(names)
	scale := 1.0
	if calibrate && len(ratios) > 0 {
		scale = median(ratios)
		fmt.Fprintf(w, "calibration: median new/old ratio %.3f (machine-speed factor, divided out)\n", scale)
	}

	failures := 0
	fmt.Fprintf(w, "%-42s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		old := base[name]
		v, ok := run[name]
		if !ok {
			fmt.Fprintf(w, "%-42s %14.0f %14s %9s  MISSING\n", name, old, "-", "-")
			failures++
			continue
		}
		delta := v/old/scale - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "%-42s %14.0f %14.0f %+8.1f%%%s\n", name, old, v, delta*100, mark)
	}
	extra := make([]string, 0)
	for name := range run {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "%-42s %14s %14.0f %9s  (new, not gated)\n", name, "-", run[name], "-")
	}
	return failures
}
