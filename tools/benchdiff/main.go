// Command benchdiff compares a `go test -bench` run against a committed
// baseline and fails on performance regressions — the comparator behind
// the CI bench-regression gate.
//
// Two modes:
//
//	benchdiff -write -baseline BENCH_baseline.json bench.txt
//	    parse a benchmark run and write it as the new baseline
//	benchdiff -baseline BENCH_baseline.json [-threshold 0.15] bench.txt
//	    compare a run against the baseline; exit 1 on regression or on a
//	    baseline benchmark missing from the run
//
// Benchmarks present in the run but absent from the baseline cannot gate
// regressions; they are listed with a warning so a stale baseline is visible
// in the comparison output instead of silently shrinking coverage. With
// -require-baseline (CI's mode) they fail the comparison outright, forcing a
// re-baseline whenever a benchmark is added.
//
// Committed baselines are recorded on one machine and checked on another,
// so absolute ns/op differences mostly measure the hardware. Calibration
// (default on) removes that: each benchmark's new/old ratio is divided by
// the median ratio across all benchmarks, so a uniform machine-speed shift
// cancels out and only benchmarks that moved relative to the rest of the
// suite can trip the threshold. -calibrate=false compares absolutes.
//
// Runs recorded with -benchmem also gate allocs/op. Allocation counts are
// machine-independent (no calibration applies): a benchmark fails when its
// count grows past the threshold fraction AND by more than two allocations,
// so tiny fixed counts don't flap on a single extra allocation. A run
// without -benchmem skips the allocation gate with a warning.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed artifact: benchmark name -> ns/op, plus
// (for runs recorded with -benchmem) benchmark name -> allocs/op. Allocs is
// omitted from older baselines; decoding either shape works.
type Baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
	Allocs     map[string]float64 `json:"allocs,omitempty"`
}

// timingRE matches the measurement part of a benchmark line: iteration
// count, then ns/op. The repo's benchmarks log tables to stdout, so the
// timing usually lands on its own line after the log output rather than on
// the name line; both forms parse.
var timingRE = regexp.MustCompile(`^\s*\d+\s+([0-9.]+) ns/op`)

// allocsRE matches the -benchmem allocation count, which follows ns/op (and
// any custom ReportMetric fields) on the same measurement line.
var allocsRE = regexp.MustCompile(`\s([0-9]+) allocs/op`)

// nameRE matches a benchmark name at line start, with the optional
// -GOMAXPROCS suffix Go appends on parallel runs.
var nameRE = regexp.MustCompile(`^(Benchmark[\w/]+?)(?:-\d+)?(\s|$)`)

// parseBench extracts name -> ns/op (and, when the run used -benchmem,
// name -> allocs/op) from `go test -bench` output, associating each timing
// line with the most recent benchmark name.
func parseBench(r io.Reader) (ns, allocs map[string]float64, err error) {
	ns = map[string]float64{}
	allocs = map[string]float64{}
	var current string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := nameRE.FindStringSubmatch(line); m != nil {
			current = m[1]
			line = strings.TrimPrefix(line, m[0])
		} else if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			// Log output resets nothing, but PASS/ok/FAIL end the stream's
			// benchmark section; keep scanning anyway (harmless).
			line = strings.TrimSpace(line)
			if line == "PASS" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "FAIL") {
				current = ""
			}
			continue
		}
		if current == "" {
			continue
		}
		if m := timingRE.FindStringSubmatch(strings.TrimLeft(line, " \t")); m != nil {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchdiff: bad ns/op on %q: %w", line, err)
			}
			ns[current] = v
			if am := allocsRE.FindStringSubmatch(line); am != nil {
				a, err := strconv.ParseFloat(am[1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("benchdiff: bad allocs/op on %q: %w", line, err)
				}
				allocs[current] = a
			}
			current = ""
		}
	}
	return ns, allocs, sc.Err()
}

// median of a non-empty slice (sorted copy; even length averages the pair).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	write := flag.Bool("write", false, "write the parsed run as the new baseline instead of comparing")
	threshold := flag.Float64("threshold", 0.15, "fail when a benchmark regresses more than this fraction")
	calibrate := flag.Bool("calibrate", true, "normalize by the median new/old ratio to cancel machine-speed differences")
	requireBaseline := flag.Bool("require-baseline", false, "fail when the run contains benchmarks absent from the baseline (instead of warning)")
	note := flag.String("note", "go test -bench . -benchtime 3x", "note recorded in a written baseline")
	out := flag.String("out", "", "also write the parsed run as JSON to this file (artifact upload)")
	flag.Parse()
	log.SetFlags(0)

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	run, runAllocs, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(run) == 0 {
		log.Fatal("benchdiff: no benchmarks found in input")
	}

	if *out != "" || *write {
		data, err := json.MarshalIndent(Baseline{Note: *note, Benchmarks: run, Allocs: runAllocs}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		paths := []string{}
		if *out != "" {
			paths = append(paths, *out)
		}
		if *write {
			paths = append(paths, *baselinePath)
		}
		for _, p := range paths {
			if err := os.WriteFile(p, data, 0o644); err != nil {
				log.Fatal(err)
			}
		}
		if *write {
			fmt.Printf("wrote %d benchmarks to %s\n", len(run), *baselinePath)
			return
		}
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("benchdiff: %s: %v", *baselinePath, err)
	}
	failures := compare(os.Stdout, base.Benchmarks, run, *threshold, *calibrate, *requireBaseline)
	failures += compareAllocs(os.Stdout, base.Allocs, runAllocs, *threshold)
	if failures > 0 {
		fmt.Printf("\nFAIL: %d benchmark(s) regressed beyond %.0f%%, went missing, or lack a baseline\n", failures, *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("\nok: %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), *threshold*100)
}

// compare prints a per-benchmark table and returns the number of failures:
// regressions beyond the threshold plus baseline benchmarks missing from
// the run. Run benchmarks absent from the baseline are listed with a warning
// — they cannot gate until the baseline is refreshed — and additionally
// count as failures when requireBaseline is set.
func compare(w io.Writer, base, run map[string]float64, threshold float64, calibrate, requireBaseline bool) int {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	ratios := make([]float64, 0, len(base))
	for _, name := range names {
		if v, ok := run[name]; ok && base[name] > 0 {
			ratios = append(ratios, v/base[name])
		}
	}
	scale := 1.0
	if calibrate && len(ratios) > 0 {
		scale = median(ratios)
		fmt.Fprintf(w, "calibration: median new/old ratio %.3f (machine-speed factor, divided out)\n", scale)
	}

	failures := 0
	fmt.Fprintf(w, "%-42s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		old := base[name]
		v, ok := run[name]
		if !ok {
			fmt.Fprintf(w, "%-42s %14.0f %14s %9s  MISSING\n", name, old, "-", "-")
			failures++
			continue
		}
		delta := v/old/scale - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "%-42s %14.0f %14.0f %+8.1f%%%s\n", name, old, v, delta*100, mark)
	}
	extra := make([]string, 0)
	for name := range run {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	mark := "  (new, not gated)"
	if requireBaseline {
		mark = "  NO BASELINE"
		failures += len(extra)
	}
	for _, name := range extra {
		fmt.Fprintf(w, "%-42s %14s %14.0f %9s%s\n", name, "-", run[name], "-", mark)
	}
	if len(extra) > 0 {
		verb := "warning: not gated against the baseline"
		if requireBaseline {
			verb = "failing (-require-baseline)"
		}
		fmt.Fprintf(w, "%d new benchmark(s) %s — re-baseline to gate them: %s\n",
			len(extra), verb, strings.Join(extra, ", "))
	}
	return failures
}

// compareAllocs gates allocs/op. Counts are machine-independent, so no
// calibration applies; a benchmark fails when its count both exceeds the
// threshold fraction and grows by more than two allocations (absolute slack
// keeps tiny fixed counts from flapping). An empty run side means the run
// was not collected with -benchmem: the gate is skipped with a warning
// rather than failed, so local runs without -benchmem still compare timings.
func compareAllocs(w io.Writer, base, run map[string]float64, threshold float64) int {
	if len(base) == 0 {
		return 0
	}
	if len(run) == 0 {
		fmt.Fprintf(w, "\nallocs: baseline has allocation counts but the run has none (no -benchmem?); allocation gate skipped\n")
		return 0
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	fmt.Fprintf(w, "\n%-42s %14s %14s %9s\n", "benchmark", "old allocs/op", "new allocs/op", "delta")
	for _, name := range names {
		old := base[name]
		v, ok := run[name]
		if !ok {
			fmt.Fprintf(w, "%-42s %14.0f %14s %9s  MISSING\n", name, old, "-", "-")
			failures++
			continue
		}
		delta := 0.0
		if old > 0 {
			delta = v/old - 1
		}
		mark := ""
		if v > old*(1+threshold) && v-old > 2 {
			mark = "  REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "%-42s %14.0f %14.0f %+8.1f%%%s\n", name, old, v, delta*100, mark)
	}
	return failures
}
