package main

import (
	"io"
	"strings"
	"testing"
)

// sample mirrors the repo's real bench output: names followed by logged
// tables, with the timing line arriving separately — plus the same-line
// form and a unit suffix.
const sample = `BenchmarkSec3CodegenDeltas             	Section III code-generation deltas (measured vs paper)
  depth 32->16: stores (spills)                    +61.3%   (paper +3.7%)
20W                         1.000                  1.009

       3	     56496 ns/op
BenchmarkFig2InstructionMix            	Figure 2: dynamic micro-op mix
astar       2.07    5.03    1.17    1.00    0.00    1.37

       3	     56182 ns/op
BenchmarkProfilePass                   	       3	  20039359 ns/op	 3456784 B/op	   12345 allocs/op
BenchmarkDetailedSim-8                 	       3	   5054703 ns/op	   9324335 instrs/s	  262144 B/op	     987 allocs/op
PASS
ok  	compisa	264.289s
`

func TestParseBench(t *testing.T) {
	got, gotAllocs, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSec3CodegenDeltas":  56496,
		"BenchmarkFig2InstructionMix": 56182,
		"BenchmarkProfilePass":        20039359,
		"BenchmarkDetailedSim":        5054703,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
	// allocs/op parses only from -benchmem lines, including lines carrying
	// custom ReportMetric fields between ns/op and the memory columns.
	wantAllocs := map[string]float64{
		"BenchmarkProfilePass": 12345,
		"BenchmarkDetailedSim": 987,
	}
	if len(gotAllocs) != len(wantAllocs) {
		t.Fatalf("parsed %d alloc counts, want %d: %v", len(gotAllocs), len(wantAllocs), gotAllocs)
	}
	for name, v := range wantAllocs {
		if gotAllocs[name] != v {
			t.Errorf("allocs %s = %v, want %v", name, gotAllocs[name], v)
		}
	}
}

func TestCompareCalibrated(t *testing.T) {
	base := map[string]float64{"A": 1000, "B": 2000, "C": 4000}
	// Machine uniformly 2x slower, but C also regressed 50% on top.
	run := map[string]float64{"A": 2000, "B": 4000, "C": 12000}
	if f := compare(io.Discard, base, run, 0.15, true, false); f != 1 {
		t.Errorf("calibrated compare flagged %d failures, want 1 (only C)", f)
	}
	// Without calibration the uniform slowdown trips everything.
	if f := compare(io.Discard, base, run, 0.15, false, false); f != 3 {
		t.Errorf("absolute compare flagged %d failures, want 3", f)
	}
	// A clean uniform shift passes calibrated.
	clean := map[string]float64{"A": 2000, "B": 4000, "C": 8000}
	if f := compare(io.Discard, base, clean, 0.15, true, false); f != 0 {
		t.Errorf("uniform shift flagged %d failures, want 0", f)
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := map[string]float64{"A": 1000, "B": 2000}
	run := map[string]float64{"A": 1000, "New": 5}
	if f := compare(io.Discard, base, run, 0.15, false, false); f != 1 {
		t.Errorf("missing benchmark flagged %d failures, want 1", f)
	}
}

func TestCompareRequireBaseline(t *testing.T) {
	base := map[string]float64{"A": 1000}
	run := map[string]float64{"A": 1000, "New1": 5, "New2": 7}
	// Default mode: new benchmarks warn but never fail.
	var lax strings.Builder
	if f := compare(&lax, base, run, 0.15, false, false); f != 0 {
		t.Errorf("lax compare flagged %d failures, want 0", f)
	}
	if !strings.Contains(lax.String(), "warning: not gated") ||
		!strings.Contains(lax.String(), "New1, New2") {
		t.Errorf("lax compare did not warn-and-list the new benchmarks:\n%s", lax.String())
	}
	// Strict mode: each baseline-less benchmark is a failure.
	var strict strings.Builder
	if f := compare(&strict, base, run, 0.15, false, true); f != 2 {
		t.Errorf("strict compare flagged %d failures, want 2", f)
	}
	if !strings.Contains(strict.String(), "NO BASELINE") {
		t.Errorf("strict compare did not mark baseline-less benchmarks:\n%s", strict.String())
	}
}

func TestCompareAllocs(t *testing.T) {
	base := map[string]float64{"Big": 10000, "Tiny": 3, "Zero": 0}
	// Big regressed 20% (2000 extra allocations): fails. Tiny grew 67% but
	// only by 2 allocations: absolute slack keeps it passing. Zero gained
	// one allocation: passes on slack too.
	run := map[string]float64{"Big": 12000, "Tiny": 5, "Zero": 1}
	if f := compareAllocs(io.Discard, base, run, 0.15); f != 1 {
		t.Errorf("alloc compare flagged %d failures, want 1 (only Big)", f)
	}
	// A baseline benchmark missing from the run fails, matching the timing
	// gate's MISSING behavior.
	delete(run, "Big")
	if f := compareAllocs(io.Discard, base, run, 0.15); f != 1 {
		t.Errorf("missing alloc count flagged %d failures, want 1", f)
	}
	// A run without -benchmem (no counts at all) skips the gate.
	if f := compareAllocs(io.Discard, base, map[string]float64{}, 0.15); f != 0 {
		t.Errorf("benchmem-less run flagged %d failures, want 0", f)
	}
	// No baseline counts (old baseline): nothing to gate.
	if f := compareAllocs(io.Discard, nil, run, 0.15); f != 0 {
		t.Errorf("alloc-less baseline flagged %d failures, want 0", f)
	}
}
