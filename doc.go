// Package compisa is a Go reproduction of "Composite-ISA Cores: Enabling
// Multi-ISA Heterogeneity Using a Single ISA" (HPCA 2019): a superset-ISA
// model with 26 derivable composite feature sets, an optimizing compiler
// backend, in-order/out-of-order core simulators with a McPAT-style
// power/area model, a binary translator for feature-downgrade migration, and
// the full design-space exploration behind every table and figure of the
// paper's evaluation. See README.md, DESIGN.md, and EXPERIMENTS.md.
package compisa
