// Package workload provides the benchmark suite: eight synthetic programs
// modeled on the SPEC CPU2006 benchmarks the paper evaluates (astar, bzip2,
// gobmk, hmmer, lbm, mcf, milc, sjeng), split into the paper's 49 SimPoint
// regions. Each region is an IR generator plus a deterministic data
// initializer; the per-benchmark execution characteristics the paper reports
// (hmmer's extreme register pressure, sjeng/gobmk's irregular branches,
// lbm/milc's vector activity, mcf's pointer chasing) are produced
// mechanistically by the generated code, so feature affinity emerges from
// compilation and execution rather than from dialed-in constants.
package workload

import (
	"fmt"

	"compisa/internal/ir"
	"compisa/internal/mem"
)

// Region is one compilable, independently schedulable code region (the unit
// a SimPoint represents). Build is deterministic and parameterized by the
// target register width, because pointer size changes data layout.
type Region struct {
	// Benchmark is the owning benchmark name.
	Benchmark string
	// Name identifies the region, e.g. "hmmer.viterbi2".
	Name string
	// Index is the region's position within its benchmark.
	Index int
	// Weight is the region's SimPoint weight within the benchmark
	// (weights sum to 1 per benchmark).
	Weight float64
	// Build generates the region's IR and initial memory image. It fails
	// (typed *OverflowError) if the generator exhausts the data region.
	Build func(width int) (*ir.Func, *mem.Memory, error)
}

// Benchmark is a named sequence of regions.
type Benchmark struct {
	Name    string
	Regions []Region
}

// Suite returns the eight benchmarks with all 49 regions, in deterministic
// order.
func Suite() []Benchmark {
	bs := []Benchmark{
		astar(), bzip2(), gobmk(), hmmer(), lbm(), mcf(), milc(), sjeng(),
	}
	for bi := range bs {
		total := 0.0
		for ri := range bs[bi].Regions {
			r := &bs[bi].Regions[ri]
			r.Benchmark = bs[bi].Name
			r.Index = ri
			r.Name = fmt.Sprintf("%s.%d", bs[bi].Name, ri)
			total += r.Weight
		}
		// Normalize weights defensively.
		for ri := range bs[bi].Regions {
			bs[bi].Regions[ri].Weight /= total
		}
	}
	return bs
}

// Regions flattens the suite into all 49 regions.
func Regions() []Region {
	var out []Region
	for _, b := range Suite() {
		out = append(out, b.Regions...)
	}
	return out
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the benchmark names in suite order.
func Names() []string {
	return []string{"astar", "bzip2", "gobmk", "hmmer", "lbm", "mcf", "milc", "sjeng"}
}
