package workload

import (
	"compisa/internal/ir"
	"compisa/internal/mem"
)

// region builds a Region from a generator body.
func region(weight float64, seed uint32, body func(g *gen) ir.VReg) Region {
	return Region{
		Weight: weight,
		Build: func(width int) (*ir.Func, *mem.Memory, error) {
			g := newGen("region", width, seed)
			return g.finish(body(g))
		},
	}
}

// combine xors a second kernel's checksum into the first.
func combine(g *gen, a, b ir.VReg) ir.VReg {
	g.b.Assign(a, ir.Xor, ir.I32, a, b)
	return a
}

// astar: grid path search — neighborhood minima through CMOVs, moderately
// biased improvement branches, pointer-y auxiliary structures. Footprints
// range from L1-resident to L2-resident.
func astar() Benchmark {
	return Benchmark{Name: "astar", Regions: []Region{
		region(0.24, 101, func(g *gen) ir.VReg { return gridKernel(g, 64, 2500) }),
		region(0.20, 102, func(g *gen) ir.VReg { return gridKernel(g, 128, 2500) }),
		region(0.16, 103, func(g *gen) ir.VReg { return gridKernel(g, 256, 2200) }),
		region(0.14, 104, func(g *gen) ir.VReg { return chaseKernel(g, 2048, 3500, 0.3) }),
		region(0.14, 105, func(g *gen) ir.VReg { return scanKernel(g, 4096, 2500, 3) }),
		region(0.12, 106, func(g *gen) ir.VReg {
			return diamondStormKernel(g, 2, 3, 16384, true, 800, 2)
		}),
	}}
}

// bzip2: byte-stream compression — table-driven byte processing with biased
// branches, one very register-hungry block-sort region (the paper observes
// exactly one bzip2 phase compiled at register depth 64), and bit packing.
func bzip2() Benchmark {
	return Benchmark{Name: "bzip2", Regions: []Region{
		region(0.16, 201, func(g *gen) ir.VReg { return byteTableKernel(g, 4096, 3000, 0.70) }),
		region(0.14, 202, func(g *gen) ir.VReg { return byteTableKernel(g, 16384, 3000, 0.80) }),
		region(0.12, 203, func(g *gen) ir.VReg { return byteTableKernel(g, 65536, 2600, 0.60) }),
		region(0.14, 204, func(g *gen) ir.VReg { return dpKernel(g, 34, 170) }),
		region(0.12, 205, func(g *gen) ir.VReg { return dpKernel(g, 18, 320) }),
		region(0.12, 206, func(g *gen) ir.VReg { return byteTableKernel(g, 8192, 3200, 0.92) }),
		region(0.10, 207, func(g *gen) ir.VReg { return byteTableKernel(g, 2048, 3200, 0.94) }),
		region(0.10, 208, func(g *gen) ir.VReg { return bitPackKernel(g, 5000) }),
	}}
}

// gobmk: go-playing — long chains of small data-dependent diamonds over
// board tables (irregular branch behavior the paper reports preferring full
// predication), plus board-scanning regions.
func gobmk() Benchmark {
	return Benchmark{Name: "gobmk", Regions: []Region{
		region(0.18, 301, func(g *gen) ir.VReg { return diamondStormKernel(g, 5, 2, 32768, false, 700, 14) }),
		region(0.16, 302, func(g *gen) ir.VReg { return diamondStormKernel(g, 6, 2, 32768, false, 650, 10) }),
		region(0.15, 303, func(g *gen) ir.VReg { return diamondStormKernel(g, 4, 3, 16384, false, 700, 16) }),
		region(0.14, 304, func(g *gen) ir.VReg { return diamondStormKernel(g, 8, 2, 65536, false, 500, 10) }),
		region(0.13, 305, func(g *gen) ir.VReg { return diamondStormKernel(g, 3, 10, 32768, true, 600, 4) }),
		region(0.13, 306, func(g *gen) ir.VReg { return gridKernel(g, 128, 2300) }),
		region(0.11, 307, func(g *gen) ir.VReg { return diamondStormKernel(g, 7, 2, 65536, false, 520, 14) }),
	}}
}

// hmmer: profile HMM search — the P7Viterbi recurrence with dozens of
// simultaneously live DP cells: the register-pressure extreme of the suite
// (the paper finds hmmer consistently compiled to use all 64 registers).
func hmmer() Benchmark {
	return Benchmark{Name: "hmmer", Regions: []Region{
		region(0.30, 401, func(g *gen) ir.VReg { return dpKernel(g, 36, 170) }),
		region(0.22, 402, func(g *gen) ir.VReg { return dpKernel(g, 32, 190) }),
		region(0.18, 403, func(g *gen) ir.VReg { return dpKernel(g, 30, 200) }),
		region(0.16, 404, func(g *gen) ir.VReg { return dpKernel(g, 34, 180) }),
		region(0.14, 405, func(g *gen) ir.VReg { return dpKernel(g, 26, 230) }),
	}}
}

// lbm: lattice-Boltzmann — streaming data-parallel f32 kernels
// (vectorizable), one scalar double-precision collision step, low register
// pressure (the paper observes lbm prefers a register depth of 16).
func lbm() Benchmark {
	return Benchmark{Name: "lbm", Regions: []Region{
		region(0.30, 501, func(g *gen) ir.VReg { return streamKernel(g, 2048, 2, false) }),
		region(0.26, 502, func(g *gen) ir.VReg { return streamKernel(g, 2048, 2, true) }),
		region(0.24, 503, func(g *gen) ir.VReg { return streamKernel(g, 16384, 1, false) }),
		region(0.20, 504, func(g *gen) ir.VReg { return fp64Kernel(g, 1024, 2600) }),
	}}
}

// mcf: min-cost flow — pointer chasing over node graphs whose footprint
// doubles under 64-bit pointers, plus sequential arc scans where x86's
// complex addressing pays off.
func mcf() Benchmark {
	return Benchmark{Name: "mcf", Regions: []Region{
		region(0.20, 601, func(g *gen) ir.VReg { return chaseKernel(g, 1024, 4000, 0.5) }),
		region(0.18, 602, func(g *gen) ir.VReg { return chaseKernel(g, 8192, 5000, 0.5) }),
		region(0.18, 603, func(g *gen) ir.VReg { return chaseKernel(g, 65536, 5000, 0.4) }),
		region(0.16, 604, func(g *gen) ir.VReg { return scanKernel(g, 4096, 2600, 4) }),
		region(0.15, 605, func(g *gen) ir.VReg { return scanKernel(g, 16384, 2400, 6) }),
		region(0.13, 606, func(g *gen) ir.VReg { return chaseKernel(g, 512, 4500, 0.8) }),
	}}
}

// milc: lattice QCD — data-parallel f32 field kernels plus clipping phases
// with unbiased branches; the paper reports the compiler predicating four of
// milc's six regions.
func milc() Benchmark {
	return Benchmark{Name: "milc", Regions: []Region{
		region(0.20, 701, func(g *gen) ir.VReg { return streamKernel(g, 1536, 2, false) }),
		region(0.18, 702, func(g *gen) ir.VReg {
			a := streamKernel(g, 1024, 1, false)
			b := diamondStormKernel(g, 3, 2, 4096, false, 500, 1)
			return combine(g, a, b)
		}),
		region(0.17, 703, func(g *gen) ir.VReg {
			a := streamKernel(g, 1024, 1, true)
			b := diamondStormKernel(g, 4, 2, 8192, false, 450, 1)
			return combine(g, a, b)
		}),
		region(0.16, 704, func(g *gen) ir.VReg { return diamondStormKernel(g, 4, 2, 8192, false, 650, 2) }),
		region(0.15, 705, func(g *gen) ir.VReg { return streamKernel(g, 4096, 2, true) }),
		region(0.14, 706, func(g *gen) ir.VReg { return byteTableKernel(g, 4096, 2800, 0.9) }),
	}}
}

// sjeng: chess search — magic-style hashed table probes with effectively
// random small diamonds (prefers full predication and, under register
// pressure, x86's memory operands).
func sjeng() Benchmark {
	return Benchmark{Name: "sjeng", Regions: []Region{
		region(0.18, 801, func(g *gen) ir.VReg { return diamondStormKernel(g, 5, 2, 65536, false, 650, 16) }),
		region(0.16, 802, func(g *gen) ir.VReg { return diamondStormKernel(g, 4, 2, 262144, false, 600, 14) }),
		region(0.15, 803, func(g *gen) ir.VReg { return diamondStormKernel(g, 6, 3, 131072, false, 520, 20) }),
		region(0.14, 804, func(g *gen) ir.VReg { return diamondStormKernel(g, 3, 2, 32768, false, 800, 10) }),
		region(0.13, 805, func(g *gen) ir.VReg {
			a := diamondStormKernel(g, 4, 2, 65536, false, 400, 6)
			b := scanKernel(g, 8192, 1200, 5)
			return combine(g, a, b)
		}),
		region(0.12, 806, func(g *gen) ir.VReg { return scanKernel(g, 8192, 2400, 5) }),
		region(0.12, 807, func(g *gen) ir.VReg { return dpKernel(g, 20, 260) }),
	}}
}
