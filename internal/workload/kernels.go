package workload

import (
	"compisa/internal/ir"
)

// This file contains the kernel archetypes the benchmarks are assembled
// from. Each returns the checksum register; callers pass it to gen.finish.

// dpKernel is a Viterbi-style dynamic-programming recurrence that keeps K
// state cells live in virtual registers across the outer loop — the paper's
// register-pressure archetype (hmmer). Per outer iteration each cell is
// updated from its neighbor and a table element; max is computed with
// selects (CMOV), so the kernel is essentially branch-free, exactly like
// hmmer's P7Viterbi.
func dpKernel(g *gen, k int, iters int64) ir.VReg {
	b := g.b
	tm := g.arrayI32(64+k, func(i int) uint32 { return g.rand() % 512 })
	ti := g.arrayI32(64+k, func(i int) uint32 { return g.rand() % 512 })
	tmBase := b.Const(ir.Ptr, int64(tm))
	tiBase := b.Const(ir.Ptr, int64(ti))
	cells := make([]ir.VReg, k)
	for i := range cells {
		cells[i] = b.Const(ir.I32, int64(g.rand()%97))
	}
	acc := b.Const(ir.I32, 1)
	mask := b.Const(ir.I32, 63)
	g.loop(iters, func(i ir.VReg) {
		idx := b.Bin(ir.And, ir.I32, i, mask)
		for c := 0; c < k; c++ {
			prev := cells[(c+k-1)%k]
			tmv := b.Load(ir.I32, tmBase, idx, 4, int64(c*4))
			tiv := b.Load(ir.I32, tiBase, idx, 4, int64(c*4))
			p1 := b.Bin(ir.Add, ir.I32, prev, tmv)
			p2 := b.Bin(ir.Add, ir.I32, cells[c], tiv)
			cge := b.Cmp(ir.GE, ir.I32, p1, p2)
			mustSelect(b, cge, p1, p2, cells[c])
		}
		g.mix32(acc, cells[k-1])
	})
	for _, c := range cells {
		b.Assign(acc, ir.Xor, ir.I32, acc, c)
	}
	return acc
}

// mustSelect writes "dst = cond ? a : b" into an existing register via a
// fresh select and a copy, returning dst for convenience.
func mustSelect(b *ir.Builder, cond, a, bv, dst ir.VReg) ir.VReg {
	s := b.Select(ir.I32, cond, a, bv)
	b.Copy(dst, s)
	return dst
}

// byteTableKernel processes a byte stream through a small table with a
// biased branch — the bzip2 archetype (MTF / RLE inner loops).
func byteTableKernel(g *gen, streamLen int, iters int64, pTaken float64) ir.VReg {
	b := g.b
	stream := g.bytesArr(streamLen, func(i int) byte { return byte(g.rand()) })
	table := g.bytesArr(256, func(i int) byte { return byte(i) })
	sBase := b.Const(ir.Ptr, int64(stream))
	tBase := b.Const(ir.Ptr, int64(table))
	acc := b.Const(ir.I32, 0)
	mask := b.Const(ir.I32, int64(streamLen-1))
	threshold := b.Const(ir.I32, int64(256*pTaken))
	one := b.Const(ir.I32, 1)
	g.loop(iters, func(i ir.VReg) {
		idx := b.Bin(ir.And, ir.I32, i, mask)
		v := b.LoadByte(sBase, idx, 1, 0)
		tv := b.LoadByte(tBase, v, 1, 0)
		c := b.Cmp(ir.LT, ir.I32, tv, threshold)
		g.ifThenElse(c, pTaken, func() {
			nv := b.Bin(ir.Add, ir.I32, tv, one)
			b.StoreByte(nv, tBase, v, 1, 0)
			g.mix32(acc, nv)
		}, func() {
			b.Assign(acc, ir.Add, ir.I32, acc, tv)
		})
	})
	return acc
}

// diamondStormKernel is the irregular-branch archetype (sjeng/gobmk): a
// chain of small data-dependent diamonds per iteration whose conditions come
// from table bits. When predictable is false the conditions are effectively
// random, punishing every branch predictor — the code the paper reports
// migrating to fully predicated feature sets.
// diamondStormKernel's unroll parameter replicates the diamond chain into
// distinct static code copies, modeling the large instruction footprints of
// gobmk/sjeng: the hot code exceeds the micro-op cache's reach (and at high
// unroll pressures the I-cache), so instruction-set density starts to
// matter — full x86's folded memory operands encode the same work in fewer,
// denser instructions.
func diamondStormKernel(g *gen, nDiamonds, armOps int, tableBytes int, predictable bool, iters int64, unroll int) ir.VReg {
	if unroll < 1 {
		unroll = 1
	}
	iters = iters / int64(unroll)
	b := g.b
	tbl := g.bytesArr(tableBytes, func(i int) byte {
		if predictable {
			return byte(i % 16) // biased, patterned
		}
		// High LCG bits: the low bits of an LCG are themselves
		// patterned and would make the branches learnable.
		return byte(g.rand() >> 16)
	})
	tBase := b.Const(ir.Ptr, int64(tbl))
	// Word table: board-style lookups whose values feed the arms'
	// arithmetic; on full x86 these fold into memory-operand ALU ops.
	wtbl := g.arrayI32(tableBytes/4+64, func(i int) uint32 { return g.rand() >> 8 })
	wBase := b.Const(ir.Ptr, int64(wtbl))
	wMask := b.Const(ir.I32, int64(tableBytes/4-1))
	acc := b.Const(ir.I32, 0x12345)
	mask := b.Const(ir.I32, int64(tableBytes-1))
	// One temporary per hammock, as real if-converted code has: the
	// diamonds stay independent of each other within an iteration.
	xs := make([]ir.VReg, nDiamonds)
	for d := range xs {
		xs[d] = b.Const(ir.I32, int64(d))
	}
	prob := 0.5
	if predictable {
		prob = 0.9
	}
	g.loop(iters, func(i ir.VReg) {
		for u := 0; u < unroll; u++ {
			// Scramble the loop counter so the probe sequence walks
			// the whole table aperiodically: the branch outcome
			// stream is as random as the table contents, which no
			// predictor's tables can capture.
			h := b.Bin(ir.Mul, ir.I32, i, b.Const(ir.I32, 0x9E3779B1-1<<32))
			if u > 0 {
				h = b.Bin(ir.Xor, ir.I32, h, b.Const(ir.I32, int64(u)*0x45d9f3b))
			}
			h2 := b.Shift(ir.Shr, ir.I32, h, 11)
			h3 := b.Bin(ir.Xor, ir.I32, h, h2)
			idx := b.Bin(ir.And, ir.I32, h3, mask)
			bits := b.LoadByte(tBase, idx, 1, 0)
			for d := 0; d < nDiamonds; d++ {
				x := xs[d]
				bit := b.Shift(ir.Shr, ir.I32, bits, int64(d%8))
				bit1 := b.Bin(ir.And, ir.I32, bit, b.Const(ir.I32, 1))
				var c ir.VReg
				if predictable {
					// Compare against the patterned low nibble: biased.
					nib := b.Bin(ir.And, ir.I32, bits, b.Const(ir.I32, 15))
					c = b.Cmp(ir.LT, ir.I32, nib, b.Const(ir.I32, 14))
				} else {
					c = b.Cmp(ir.NE, ir.I32, bit1, b.Const(ir.I32, 0))
				}
				idxw := b.Bin(ir.And, ir.I32, h3, wMask)
				g.ifThenElse(c, prob, func() {
					wv := b.Load(ir.I32, wBase, idxw, 4, int64(d*4))
					b.Assign(x, ir.Add, ir.I32, bits, wv)
					for a := 1; a < armOps; a++ {
						b.Assign(x, ir.Add, ir.I32, x, bit)
					}
				}, func() {
					b.Assign(x, ir.Xor, ir.I32, bits, h3)
					for a := 1; a < armOps; a++ {
						b.Assign(x, ir.Xor, ir.I32, x, bits)
					}
				})
				b.Assign(acc, ir.Xor, ir.I32, acc, x)
			}
			g.mix32(acc, bits)
		}
	})
	return acc
}

// streamKernel is the data-parallel archetype (lbm/milc): one or more
// vectorizable passes of c[i] = a[i]*k1 + b[i]*k2 (optionally a 3-point
// stencil) over f32 arrays, followed by an integer checksum reduction. On
// feature sets without SIMD the loops run in their scalarized form.
func streamKernel(g *gen, elems int, passes int, stencil bool) ir.VReg {
	b := g.b
	mkArr := func() uint64 {
		return g.arrayF32(elems+2, func(i int) float32 {
			return float32(g.rand()%1000) / 64
		})
	}
	aArr, bArr, cArr := mkArr(), mkArr(), mkArr()
	// +4 so stencil's i-1 access stays in bounds.
	pa := b.Const(ir.Ptr, int64(aArr)+4)
	pb := b.Const(ir.Ptr, int64(bArr)+4)
	pc := b.Const(ir.Ptr, int64(cArr)+4)
	k1 := b.FConst(ir.F32, 1.25)
	k2 := b.FConst(ir.F32, 0.75)
	for p := 0; p < passes; p++ {
		g.vecLoop(int64(elems), func(i ir.VReg) {
			var av ir.VReg
			if stencil {
				l := b.Load(ir.F32, pa, i, 4, -4)
				r := b.Load(ir.F32, pa, i, 4, 4)
				av = b.Bin(ir.FAdd, ir.F32, l, r)
			} else {
				av = b.Load(ir.F32, pa, i, 4, 0)
			}
			bv := b.Load(ir.F32, pb, i, 4, 0)
			t1 := b.Bin(ir.FMul, ir.F32, av, k1)
			t2 := b.Bin(ir.FMul, ir.F32, bv, k2)
			s := b.Bin(ir.FAdd, ir.F32, t1, t2)
			b.Store(ir.F32, s, pc, i, 4, 0)
		})
		// Feed the result back for the next pass.
		pa, pc = pc, pa
	}
	// Integer checksum over result bits (order-independent across
	// vector/scalar compilation).
	acc := b.Const(ir.I32, 0)
	src := pa // last-written array
	g.loop(int64(elems), func(i ir.VReg) {
		w := b.Load(ir.I32, src, i, 4, 0)
		b.Assign(acc, ir.Xor, ir.I32, acc, w)
	})
	return acc
}

// chaseKernel is the pointer-chasing archetype (mcf): traverse a randomized
// cycle of nodes whose layout depends on the pointer size — 64-bit pointers
// inflate the node stride and the cache footprint, exactly the effect the
// paper attributes to 32-bit feature sets' cache efficiency. A biased
// diamond conditionally updates node costs.
func chaseKernel(g *gen, nodes int, steps int64, updateProb float64) ir.VReg {
	b := g.b
	pb := g.ptrBytes()
	// Node: 4 pointers + 2 int32 fields, padded: 32B at 32-bit pointers,
	// 64B at 64-bit.
	stride := uint64(32)
	costOff := int64(4 * pb)
	if pb == 8 {
		stride = 64
	}
	base := g.alloc(uint64(nodes)*stride, 64)
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := nodes - 1; i > 0; i-- {
		j := int(g.rand()) % (i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Chain the permutation into one cycle: node perm[i] -> perm[i+1].
	for i := 0; i < nodes; i++ {
		from := base + uint64(perm[i])*stride
		to := base + uint64(perm[(i+1)%nodes])*stride
		g.m.Write(from, pb, to)
		g.m.Write(from+uint64(costOff), 4, uint64(g.rand()%1000))
		g.m.Write(from+uint64(costOff)+4, 4, uint64(g.rand()%256))
	}
	p := b.Const(ir.Ptr, int64(base))
	acc := b.Const(ir.I32, 0)
	limit := b.Const(ir.I32, 800)
	one := b.Const(ir.I32, 1)
	g.loop(steps, func(i ir.VReg) {
		cost := b.Load(ir.I32, p, ir.NoReg, 1, costOff)
		cap_ := b.Load(ir.I32, p, ir.NoReg, 1, costOff+4)
		c := b.Cmp(ir.LT, ir.I32, cost, limit)
		g.ifThenElse(c, updateProb, func() {
			nc := b.Bin(ir.Add, ir.I32, cost, one)
			b.Store(ir.I32, nc, p, ir.NoReg, 1, costOff)
			b.Assign(acc, ir.Add, ir.I32, acc, cap_)
		}, nil)
		g.mix32(acc, cost)
		nxt := b.Load(ir.Ptr, p, ir.NoReg, 1, 0)
		b.Copy(p, nxt)
	})
	return acc
}

// scanKernel is the sequential record-scan archetype (mcf's arc scan, parts
// of astar): walk a struct array with multi-field accesses that fold into
// x86 complex addressing, and a biased branch.
func scanKernel(g *gen, records int, iters int64, fieldOps int) ir.VReg {
	b := g.b
	const stride = 32
	base := g.alloc(uint64(records)*stride, 64)
	for i := 0; i < records; i++ {
		for f := 0; f < 4; f++ {
			g.m.Write(base+uint64(i)*stride+uint64(f)*4, 4, uint64(g.rand()%4096))
		}
	}
	pbase := b.Const(ir.Ptr, int64(base))
	acc := b.Const(ir.I32, 0)
	mask := b.Const(ir.I32, int64(records-1))
	g.loop(iters, func(i ir.VReg) {
		ridx := b.Bin(ir.And, ir.I32, i, mask)
		off := b.Bin(ir.Mul, ir.I32, ridx, b.Const(ir.I32, stride))
		for f := 0; f < fieldOps; f++ {
			v := b.Load(ir.I32, pbase, off, 1, int64((f%4)*4))
			b.Assign(acc, ir.Add, ir.I32, acc, v)
		}
		thr := b.Const(ir.I32, 3500)
		v0 := b.Load(ir.I32, pbase, off, 1, 0)
		c := b.Cmp(ir.LT, ir.I32, v0, thr)
		g.ifThenElse(c, 0.85, func() {
			nv := b.Bin(ir.Xor, ir.I32, v0, acc)
			b.Store(ir.I32, nv, pbase, off, 1, 12)
		}, nil)
	})
	return acc
}

// gridKernel is the astar archetype: evaluate grid-cell neighborhoods with
// CMOV minima and a moderately-biased improvement branch.
func gridKernel(g *gen, side int, iters int64) ir.VReg {
	b := g.b
	n := side * side
	grid := g.arrayI32(n, func(i int) uint32 { return g.rand() % 10000 })
	gBase := b.Const(ir.Ptr, int64(grid))
	acc := b.Const(ir.I32, 0)
	mask := b.Const(ir.I32, int64(n-1))
	rowOff := int64(side * 4)
	g.loop(iters, func(i ir.VReg) {
		h := b.Bin(ir.Mul, ir.I32, i, b.Const(ir.I32, 2654435761-1<<32))
		idx0 := b.Bin(ir.And, ir.I32, h, mask)
		// Clamp away from edges so neighbor loads stay in bounds.
		idx := b.Bin(ir.Or, ir.I32, idx0, b.Const(ir.I32, int64(side+1)))
		idx2 := b.Bin(ir.And, ir.I32, idx, b.Const(ir.I32, int64(n-side-2)))
		cur := b.Load(ir.I32, gBase, idx2, 4, 0)
		left := b.Load(ir.I32, gBase, idx2, 4, -4)
		right := b.Load(ir.I32, gBase, idx2, 4, 4)
		up := b.Load(ir.I32, gBase, idx2, 4, -rowOff)
		down := b.Load(ir.I32, gBase, idx2, 4, rowOff)
		m1c := b.Cmp(ir.LE, ir.I32, left, right)
		m1 := b.Select(ir.I32, m1c, left, right)
		m2c := b.Cmp(ir.LE, ir.I32, up, down)
		m2 := b.Select(ir.I32, m2c, up, down)
		mc := b.Cmp(ir.LE, ir.I32, m1, m2)
		best := b.Select(ir.I32, mc, m1, m2)
		inc := b.Bin(ir.Add, ir.I32, best, b.Const(ir.I32, 37))
		better := b.Cmp(ir.LT, ir.I32, inc, cur)
		g.ifThenElse(better, 0.3, func() {
			b.Store(ir.I32, inc, gBase, idx2, 4, 0)
			g.mix32(acc, inc)
		}, func() {
			b.Assign(acc, ir.Add, ir.I32, acc, cur)
		})
	})
	return acc
}

// bitPackKernel is the bzip2 bit-packing archetype: long shift/mask chains
// with good ILP and little memory traffic.
func bitPackKernel(g *gen, iters int64) ir.VReg {
	b := g.b
	src := g.arrayI32(256, func(i int) uint32 { return g.rand() })
	sBase := b.Const(ir.Ptr, int64(src))
	acc := b.Const(ir.I32, 0)
	mask := b.Const(ir.I32, 255)
	g.loop(iters, func(i ir.VReg) {
		idx := b.Bin(ir.And, ir.I32, i, mask)
		v := b.Load(ir.I32, sBase, idx, 4, 0)
		a1 := b.Shift(ir.Shl, ir.I32, v, 7)
		a2 := b.Shift(ir.Shr, ir.I32, v, 11)
		a3 := b.Bin(ir.Xor, ir.I32, a1, a2)
		a4 := b.Shift(ir.Shl, ir.I32, a3, 3)
		a5 := b.Bin(ir.Or, ir.I32, a3, a4)
		a6 := b.Shift(ir.Shr, ir.I32, a5, 5)
		a7 := b.Bin(ir.Add, ir.I32, a5, a6)
		b.Assign(acc, ir.Xor, ir.I32, acc, a7)
	})
	return acc
}

// fp64Kernel is a scalar double-precision kernel (lbm's collision step):
// multiply-add chains with an occasional divide; not vectorizable in this
// implementation's SSE model.
func fp64Kernel(g *gen, elems int, iters int64) ir.VReg {
	b := g.b
	arr := g.arrayF64(elems, func(i int) float64 { return 1.0 + float64(g.rand()%1000)/256 })
	base := b.Const(ir.Ptr, int64(arr))
	facc := b.FConst(ir.F64, 1.0)
	k1 := b.FConst(ir.F64, 0.98)
	k2 := b.FConst(ir.F64, 1.02)
	mask := b.Const(ir.I32, int64(elems-1))
	g.loop(iters, func(i ir.VReg) {
		idx := b.Bin(ir.And, ir.I32, i, mask)
		v := b.Load(ir.F64, base, idx, 8, 0)
		t1 := b.Bin(ir.FMul, ir.F64, v, k1)
		t2 := b.Bin(ir.FAdd, ir.F64, t1, k2)
		t3 := b.Bin(ir.FDiv, ir.F64, t2, k2)
		b.Assign(facc, ir.FAdd, ir.F64, facc, t3)
		b.Store(ir.F64, t3, base, idx, 8, 0)
	})
	// Quantize the deterministic scalar F64 sum into the i32 checksum.
	return b.Unary(ir.FPToSI, ir.I32, facc)
}
