package workload

import (
	"testing"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/ir"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// mustBuild builds a region, failing the test on generator errors.
func mustBuild(t *testing.T, r Region, width int) (*ir.Func, *mem.Memory) {
	t.Helper()
	f, m, err := r.Build(width)
	if err != nil {
		t.Fatalf("%s (w%d): %v", r.Name, width, err)
	}
	return f, m
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("expected 8 benchmarks, got %d", len(suite))
	}
	total := 0
	for _, b := range suite {
		total += len(b.Regions)
		sum := 0.0
		for _, r := range b.Regions {
			sum += r.Weight
			if r.Benchmark != b.Name {
				t.Errorf("%s: region labeled %q", b.Name, r.Benchmark)
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: weights sum to %f", b.Name, sum)
		}
	}
	if total != 49 {
		t.Fatalf("suite has %d regions, paper uses 49", total)
	}
}

func TestRegionsVerifyAndInterpret(t *testing.T) {
	for _, r := range Regions() {
		for _, width := range []int{32, 64} {
			f, m := mustBuild(t, r, width)
			if err := f.Verify(); err != nil {
				t.Fatalf("%s (w%d): %v", r.Name, width, err)
			}
			res, err := ir.Interp(f, m, width/8, 20_000_000)
			if err != nil {
				t.Fatalf("%s (w%d): %v", r.Name, width, err)
			}
			if res.Steps < 5_000 {
				t.Errorf("%s (w%d): only %d IR steps; regions should do real work", r.Name, width, res.Steps)
			}
			if res.Steps > 3_000_000 {
				t.Errorf("%s (w%d): %d IR steps; too heavy for the DSE", r.Name, width, res.Steps)
			}
		}
	}
}

func TestRegionsDeterministic(t *testing.T) {
	for _, r := range Regions()[:10] {
		f1, m1 := mustBuild(t, r, 64)
		f2, m2 := mustBuild(t, r, 64)
		r1, err1 := ir.Interp(f1, m1, 8, 20_000_000)
		r2, err2 := ir.Interp(f2, m2, 8, 20_000_000)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1.Ret != r2.Ret {
			t.Errorf("%s: nondeterministic build", r.Name)
		}
	}
}

// TestChecksumAcrossFeatureSets compiles a sample of regions for every
// derived feature set and checks the executed checksum against the IR
// reference — the suite-level version of the compiler's differential test.
func TestChecksumAcrossFeatureSets(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-ISA sweep in long mode only")
	}
	sample := []int{0, 6, 14, 19, 25, 28, 30, 35, 40, 44, 48} // across benchmarks
	regions := Regions()
	for _, ri := range sample {
		r := regions[ri]
		var want [2]uint64
		for wi, width := range []int{32, 64} {
			f, m := mustBuild(t, r, width)
			res, err := ir.Interp(f, m, width/8, 30_000_000)
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			want[wi] = res.Ret & 0xffffffff
		}
		for _, fs := range isa.Derive() {
			f, m := mustBuild(t, r, fs.Width)
			prog, err := compiler.Compile(f, fs, compiler.Options{})
			if err != nil {
				t.Fatalf("%s for %s: %v", r.Name, fs.ShortName(), err)
			}
			st := cpu.NewState(m)
			res, err := cpu.Run(prog, st, 30_000_000, nil)
			if err != nil {
				t.Fatalf("%s for %s: %v", r.Name, fs.ShortName(), err)
			}
			w := want[1]
			if fs.Width == 32 {
				w = want[0]
			}
			if res.Ret&0xffffffff != w {
				t.Errorf("%s on %s: checksum %#x want %#x", r.Name, fs.ShortName(), res.Ret, w)
			}
		}
	}
}

// TestBenchmarkCharacteristics verifies the paper's per-benchmark traits
// hold mechanistically in the generated code.
func TestBenchmarkCharacteristics(t *testing.T) {
	pressure := func(name string) int {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, r := range b.Regions {
			f, _ := mustBuild(t, r, 64)
			if p := f.MaxLivePressure(false); p > max {
				max = p
			}
		}
		return max
	}
	if hp, lp := pressure("hmmer"), pressure("lbm"); hp <= lp+10 {
		t.Errorf("hmmer (%d live) must have far higher register pressure than lbm (%d)", hp, lp)
	}
	if pressure("hmmer") < 32 {
		t.Errorf("hmmer pressure %d should exceed 32 registers", pressure("hmmer"))
	}

	// lbm/milc must vectorize; sjeng/gobmk must not.
	vecLoops := func(name string) int {
		b, _ := ByName(name)
		n := 0
		for _, r := range b.Regions {
			f, _ := mustBuild(t, r, 64)
			prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
			if err != nil {
				t.Fatal(err)
			}
			n += prog.Stats.VectorLoops
		}
		return n
	}
	if vecLoops("lbm") == 0 || vecLoops("milc") == 0 {
		t.Error("lbm and milc must contain vectorizable loops")
	}
	if vecLoops("sjeng") != 0 {
		t.Error("sjeng should not vectorize")
	}

	// sjeng/gobmk: full predication removes branches in most regions.
	ifconv := func(name string) int {
		b, _ := ByName(name)
		n := 0
		for _, r := range b.Regions {
			f, _ := mustBuild(t, r, 64)
			prog, err := compiler.Compile(f, isa.Superset, compiler.Options{})
			if err != nil {
				t.Fatal(err)
			}
			n += prog.Stats.IfConversions
		}
		return n
	}
	if ifconv("sjeng") < 3 || ifconv("gobmk") < 3 {
		t.Errorf("sjeng/gobmk should if-convert: %d / %d", ifconv("sjeng"), ifconv("gobmk"))
	}
	if ifconv("hmmer") != 0 {
		t.Errorf("hmmer is branch-free DP; got %d if-conversions", ifconv("hmmer"))
	}
}

// TestMcfFootprintDependsOnWidth: 64-bit pointers must inflate mcf's
// resident data set (Section III's cache working set effect).
func TestMcfFootprintDependsOnWidth(t *testing.T) {
	b, _ := ByName("mcf")
	r := b.Regions[2] // large chase
	_, m32 := mustBuild(t, r, 32)
	_, m64 := mustBuild(t, r, 64)
	if m64.Pages() <= m32.Pages() {
		t.Errorf("64-bit mcf image (%d pages) should exceed 32-bit (%d pages)",
			m64.Pages(), m32.Pages())
	}
}
