package workload

import (
	"fmt"

	"compisa/internal/ir"
	"compisa/internal/mem"
)

// RandomRegion builds a random-but-valid region from a seed: straight-line
// integer arithmetic (32- and 64-bit), memory traffic into scratch arrays,
// data-dependent diamonds, selects over every condition code, and a counted
// loop — everything defined before use, shifts in range, addresses in
// bounds. It exists for differential fuzzing: the checksum must be identical
// across all 26 feature sets and after every binary-translation downgrade.
func RandomRegion(seed uint64) Region {
	return Region{
		Benchmark: "random",
		Name:      fmt.Sprintf("random.%d", seed),
		Weight:    1,
		Build: func(width int) (*ir.Func, *mem.Memory, error) {
			f, m := buildRandom(seed)
			return f, m, nil
		},
	}
}

type lcg64 struct{ state uint64 }

func (g *lcg64) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state >> 11
}

func (g *lcg64) intn(n int) int { return int(g.next() % uint64(n)) }

func buildRandom(seed uint64) (*ir.Func, *mem.Memory) {
	g := &lcg64{state: seed*2654435761 + 12345}
	m := mem.New()
	const base = uint64(0x0800_0000)
	const words = 256
	for i := 0; i < words; i++ {
		m.Write(base+uint64(i)*4, 4, g.next()&0xffffffff)
		m.Write(base+0x1000+uint64(i)*8, 8, g.next())
	}

	b := ir.NewBuilder("fuzz")
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")

	p32 := b.Const(ir.Ptr, int64(base))
	p64 := b.Const(ir.Ptr, int64(base)+0x1000)
	mask := b.Const(ir.I32, words-1)

	var vals32, vals64 []ir.VReg
	for i := 0; i < 4+g.intn(6); i++ {
		vals32 = append(vals32, b.Const(ir.I32, int64(g.next()&0xffff)))
	}
	for i := 0; i < 3+g.intn(4); i++ {
		vals64 = append(vals64, b.Const(ir.I64, int64(g.next())))
	}
	i := b.Const(ir.I32, 0)
	trip := b.Const(ir.I32, int64(8+g.intn(40)))
	acc := b.Const(ir.I32, 1)
	b.Br(header)

	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, trip)
	b.CondBr(c, body, exit, 0.9)

	b.SetBlock(body)
	pick32 := func() ir.VReg { return vals32[g.intn(len(vals32))] }
	pick64 := func() ir.VReg { return vals64[g.intn(len(vals64))] }
	binops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor}
	n := 6 + g.intn(14)
	for k := 0; k < n; k++ {
		switch g.intn(10) {
		case 0, 1, 2:
			op := binops[g.intn(len(binops))]
			vals32 = append(vals32, b.Bin(op, ir.I32, pick32(), pick32()))
		case 3:
			op := binops[g.intn(len(binops))]
			if op == ir.Mul {
				op = ir.Add // 64-bit multiply is not emulatable on w32
			}
			vals64 = append(vals64, b.Bin(op, ir.I64, pick64(), pick64()))
		case 4:
			op := []ir.Op{ir.Shl, ir.Shr, ir.Sar}[g.intn(3)]
			if g.intn(2) == 0 {
				vals32 = append(vals32, b.Shift(op, ir.I32, pick32(), int64(1+g.intn(30))))
			} else {
				vals64 = append(vals64, b.Shift(op, ir.I64, pick64(), int64(1+g.intn(30))))
			}
		case 5:
			idx := b.Bin(ir.And, ir.I32, pick32(), mask)
			vals32 = append(vals32, b.Load(ir.I32, p32, idx, 4, 0))
		case 6:
			idx := b.Bin(ir.And, ir.I32, pick32(), mask)
			if g.intn(2) == 0 {
				vals64 = append(vals64, b.Load(ir.I64, p64, idx, 8, 0))
			} else {
				b.Store(ir.I64, pick64(), p64, idx, 8, 0)
			}
		case 7:
			idx := b.Bin(ir.And, ir.I32, pick32(), mask)
			b.Store(ir.I32, pick32(), p32, idx, 4, 0)
			cc := []ir.Cond{ir.EQ, ir.NE, ir.LT, ir.GE, ir.ULT, ir.UGE}[g.intn(6)]
			cv := b.Cmp(cc, ir.I32, pick32(), pick32())
			vals32 = append(vals32, b.Select(ir.I32, cv, pick32(), pick32()))
		case 8:
			cc := []ir.Cond{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE, ir.ULT, ir.ULE, ir.UGT, ir.UGE}[g.intn(10)]
			cv := b.Cmp(cc, ir.I64, pick64(), pick64())
			vals64 = append(vals64, b.Select(ir.I64, cv, pick64(), pick64()))
		case 9:
			cc := []ir.Cond{ir.EQ, ir.NE, ir.LT, ir.GE}[g.intn(4)]
			cv := b.Cmp(cc, ir.I32, pick32(), pick32())
			tArm := b.Block("t")
			fArm := b.Block("f")
			join := b.Block("j")
			x, y := pick32(), pick32()
			b.CondBr(cv, tArm, fArm, 0.5)
			b.SetBlock(tArm)
			b.Assign(acc, ir.Add, ir.I32, acc, x)
			b.Br(join)
			b.SetBlock(fArm)
			b.Assign(acc, ir.Xor, ir.I32, acc, y)
			b.Br(join)
			b.SetBlock(join)
		}
	}
	b.Assign(acc, ir.Xor, ir.I32, acc, vals32[len(vals32)-1])
	lo := b.Unary(ir.Trunc, ir.I32, vals64[len(vals64)-1])
	b.Assign(acc, ir.Add, ir.I32, acc, lo)
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)

	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}
