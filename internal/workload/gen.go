package workload

import (
	"fmt"
	"math"

	"compisa/internal/code"
	"compisa/internal/ir"
	"compisa/internal/mem"
)

// OverflowError reports a region generator exhausting the data region.
// It is returned (not panicked) from Region.Build so a single oversized
// generator degrades that one evaluation instead of killing the process.
type OverflowError struct {
	// Next is the allocation cursor after the failed request; Limit is
	// the end of the data region.
	Next, Limit uint64
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("workload: data region overflow (cursor %#x past limit %#x)", e.Next, e.Limit)
}

// gen is the common scaffolding for region generators: an IR builder, a
// memory image, a bump allocator for data placement, and a deterministic
// PRNG for data initialization.
type gen struct {
	b     *ir.Builder
	m     *mem.Memory
	width int
	next  uint64
	state uint32
	// err is the first allocation failure; it makes Build fail instead of
	// panicking while letting the generator body run to completion.
	err error
}

func newGen(name string, width int, seed uint32) *gen {
	return &gen{
		b:     ir.NewBuilder(name),
		m:     mem.New(),
		width: width,
		next:  uint64(code.DataBase),
		state: seed*2654435761 + 1,
	}
}

// rand returns the next PRNG value.
func (g *gen) rand() uint32 {
	g.state = g.state*1664525 + 1013904223
	return g.state
}

// alloc reserves n bytes with the given alignment and returns the address.
// On overflow it records a sticky OverflowError (surfaced by finish) and
// hands back the region base so the generator body can complete harmlessly.
func (g *gen) alloc(n uint64, align uint64) uint64 {
	g.next = (g.next + align - 1) &^ (align - 1)
	a := g.next
	g.next += n
	if g.next >= uint64(code.DataLimit) {
		if g.err == nil {
			g.err = &OverflowError{Next: g.next, Limit: uint64(code.DataLimit)}
		}
		g.next = a // stop advancing; the build fails at finish
		return uint64(code.DataBase)
	}
	return a
}

// arrayI32 allocates and fills an int32 array.
func (g *gen) arrayI32(n int, f func(i int) uint32) uint64 {
	a := g.alloc(uint64(n)*4, 64)
	for i := 0; i < n; i++ {
		g.m.Write(a+uint64(i)*4, 4, uint64(f(i)))
	}
	return a
}

// arrayF32 allocates and fills a float32 array.
func (g *gen) arrayF32(n int, f func(i int) float32) uint64 {
	a := g.alloc(uint64(n)*4, 64)
	for i := 0; i < n; i++ {
		g.m.Write(a+uint64(i)*4, 4, uint64(math.Float32bits(f(i))))
	}
	return a
}

// arrayF64 allocates and fills a float64 array.
func (g *gen) arrayF64(n int, f func(i int) float64) uint64 {
	a := g.alloc(uint64(n)*8, 64)
	for i := 0; i < n; i++ {
		g.m.Write(a+uint64(i)*8, 8, math.Float64bits(f(i)))
	}
	return a
}

// bytesArr allocates and fills a byte array.
func (g *gen) bytesArr(n int, f func(i int) byte) uint64 {
	a := g.alloc(uint64(n), 64)
	for i := 0; i < n; i++ {
		g.m.Store8(a+uint64(i), f(i))
	}
	return a
}

// ptrBytes is the pointer size of the target.
func (g *gen) ptrBytes() int { return g.width / 8 }

// finish returns the generated function and memory, or the first
// allocation error recorded during generation.
func (g *gen) finish(ret ir.VReg) (*ir.Func, *mem.Memory, error) {
	g.b.Ret(ret)
	if g.err != nil {
		return nil, nil, g.err
	}
	return g.b.F, g.m, nil
}

// loop emits `for (i = 0; i < n; i++) { body(i) }` with the standard
// header/body/exit shape; the builder continues in the exit block. The
// returned block is the loop body (for vectorization annotations).
func (g *gen) loop(n int64, body func(i ir.VReg)) *ir.Block {
	b := g.b
	header := b.Block("header")
	bodyBlk := b.Block("body")
	exit := b.Block("exit")
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, n)
	b.Br(header)
	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, bodyBlk, exit, loopProb(n))
	b.SetBlock(bodyBlk)
	body(i)
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)
	b.SetBlock(exit)
	return bodyBlk
}

// vecLoop emits a canonical counted loop annotated as vectorizable; its body
// must stay element-wise (loads/stores indexed by i with scale 4).
func (g *gen) vecLoop(n int64, body func(i ir.VReg)) {
	b := g.b
	header := b.Block("vheader")
	bodyBlk := b.Block("vbody")
	exit := b.Block("vexit")
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, n)
	b.Br(header)
	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, bodyBlk, exit, loopProb(n))
	b.SetBlock(bodyBlk)
	body(i)
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)
	bodyBlk.VecLoop = &ir.VecLoopInfo{IndVar: i, Limit: lim, Lanes: 4}
	b.SetBlock(exit)
}

func loopProb(n int64) float64 {
	if n <= 1 {
		return 0.5
	}
	return float64(n-1) / float64(n)
}

// ifThenElse emits a diamond: if (cond) { then() } else { otherwise() }.
// prob is the probability cond holds. Either arm may be nil (triangle).
// The builder continues in the join block.
func (g *gen) ifThenElse(cond ir.VReg, prob float64, then, otherwise func()) {
	b := g.b
	tArm := b.Block("then")
	var fArm *ir.Block
	join := b.Block("join")
	if otherwise != nil {
		fArm = b.Block("else")
		b.CondBr(cond, tArm, fArm, prob)
	} else {
		b.CondBr(cond, tArm, join, prob)
	}
	b.SetBlock(tArm)
	if then != nil {
		then()
	}
	b.Br(join)
	if otherwise != nil {
		b.SetBlock(fArm)
		otherwise()
		b.Br(join)
	}
	b.SetBlock(join)
}

// mix32 folds v into acc with a cheap integer hash step.
func (g *gen) mix32(acc, v ir.VReg) {
	b := g.b
	b.Assign(acc, ir.Xor, ir.I32, acc, v)
	s := b.Shift(ir.Shl, ir.I32, acc, 5)
	b.Assign(acc, ir.Add, ir.I32, acc, s)
}
