package eval

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"compisa/internal/store"
)

// recordingPersister captures write-throughs and optionally fails them.
type recordingPersister struct {
	keys []string
	err  error
}

func (p *recordingPersister) PutCandidate(key string, c *Candidate) error {
	if p.err != nil {
		return p.err
	}
	p.keys = append(p.keys, key)
	return nil
}

// TestPersistWriteThrough: each cacheable evaluation reaches the Persister
// exactly once — cache hits and repeated sweeps never re-persist.
func TestPersistWriteThrough(t *testing.T) {
	db := smallDB(2, nil)
	p := &recordingPersister{}
	db.Persist = p
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	if _, err := db.Evaluate(ctx, dp, ref); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Evaluate(ctx, dp, ref); err != nil {
		t.Fatal(err)
	}
	// Exactly one persist: the reference evaluation runs with a nil ref
	// (uncacheable) and the second Evaluate of dp is a cache hit, so only
	// dp's first evaluation writes through.
	if len(p.keys) != 1 || p.keys[0] != dp.CacheKey() {
		t.Fatalf("persisted keys = %v, want [%s]", p.keys, dp.CacheKey())
	}
	if got := db.Stats.Persisted.Load(); got != 1 {
		t.Fatalf("Stats.Persisted = %d, want 1", got)
	}

	// Foreign-ref evaluations bypass the cache and must not persist either.
	foreign := append([]Metric{}, ref...)
	if _, err := db.Evaluate(ctx, dp, foreign); err != nil {
		t.Fatal(err)
	}
	if len(p.keys) != 1 {
		t.Fatalf("foreign-ref evaluation persisted: keys = %v", p.keys)
	}
}

// TestPersistFailureNeverFailsEvaluation: a dead Persister degrades
// durability, not correctness — evaluations succeed, the error counter
// moves, the result is still cached in memory.
func TestPersistFailureNeverFailsEvaluation(t *testing.T) {
	db := smallDB(2, nil)
	db.Persist = &recordingPersister{err: errors.New("disk gone")}
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	c, err := db.Evaluate(ctx, dp, ref)
	if err != nil {
		t.Fatalf("evaluation must survive persist failure: %v", err)
	}
	if c == nil {
		t.Fatal("nil candidate")
	}
	if got := db.Stats.PersistErrors.Load(); got == 0 {
		t.Fatal("Stats.PersistErrors did not move")
	}
	if db.Stats.Persisted.Load() != 0 {
		t.Fatal("Stats.Persisted moved despite failures")
	}
	c2, err := db.Evaluate(ctx, dp, ref)
	if err != nil || c2 != c {
		t.Fatalf("in-memory cache must still serve the candidate: %v", err)
	}
}

// TestCandidateStoreRoundtrip: evaluate against a real store, then
// warm-start a fresh DB from the log — the restored candidates serve cache
// hits without re-running the model stage.
func TestCandidateStoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cands.log")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := smallDB(2, nil)
	db.Persist = &CandidateStore{S: st}
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	if _, err := db.Evaluate(ctx, dp, ref); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	db2 := smallDB(2, nil)
	loaded, skipped, err := (&CandidateStore{S: st2}).LoadInto(db2)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d records on a clean log", skipped)
	}
	if loaded != 1 { // only dp: the reference evaluation is uncacheable
		t.Fatalf("loaded = %d, want 1", loaded)
	}
	ref2, err := db2.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	evals := db2.Stats.ModelEvals.Load()
	if _, err := db2.Evaluate(ctx, dp, ref2); err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats.ModelEvals.Load(); got != evals {
		t.Fatalf("warm-started evaluation re-ran the model stage (%d -> %d)", evals, got)
	}
	if db2.Stats.CandidateHits.Load() != 1 {
		t.Fatalf("CandidateHits = %d, want 1", db2.Stats.CandidateHits.Load())
	}
}
