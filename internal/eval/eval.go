// Package eval is the evaluation layer of the design-space-exploration
// pipeline (par → eval → explore; see DESIGN.md, "Pipeline layering"). It
// owns the two expensive stages the domain layer builds on:
//
//   - the profiling stage: one functional execution per (region, ISA
//     choice) pair, with bounded retry, quarantine-on-failure, and a
//     singleflight profile cache;
//   - the scoring stage: perfmodel + power evaluation of (ISA choice,
//     configuration) design points against the reference core, with a
//     memoized candidate cache so each of the 4680 design points is
//     computed once and shared across budgets, organizations, experiment
//     drivers, and (via the checkpoint) processes.
//
// Both stages run on internal/par worker pools and are instrumented
// through internal/metrics (DB.Stats).
package eval

import (
	"context"
	"errors"
	"time"

	"compisa/internal/cpu"
)

// MaxRegionInstrs bounds each region's functional execution; the domain
// layer reuses the same watchdog budget for its own direct profiling runs.
const MaxRegionInstrs = 40_000_000

// runawayInstrs is the tiny instruction budget applied under an injected
// runaway fault: far below any region's real dynamic count, so the
// instruction-budget watchdog fires through the ordinary execution path.
const runawayInstrs = 10_000

// Policy tunes the evaluation pipeline's fault handling. The zero value
// selects the defaults documented per field.
type Policy struct {
	// MaxAttempts bounds evaluation attempts per (region, ISA) pair
	// (default 3). Only transient faults are retried.
	MaxAttempts int
	// Backoff is the delay before the first retry, doubled on each
	// subsequent attempt (default 1ms).
	Backoff time.Duration
	// SpeedupPenalty is the speedup recorded for a quarantined (region,
	// ISA) pair (default 0.25): the pair scores as running 4x slower than
	// the reference, so searches steer away from — but survive — failures.
	SpeedupPenalty float64
	// EDPPenalty is the normalized EDP recorded for a quarantined pair
	// (default 4.0, the EDP dual of SpeedupPenalty).
	EDPPenalty float64
}

// WithDefaults fills unset fields with the documented defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.SpeedupPenalty <= 0 {
		p.SpeedupPenalty = 0.25
	}
	if p.EDPPenalty <= 0 {
		p.EDPPenalty = 4.0
	}
	return p
}

// Evaluator is the seam between the evaluation layer and the domain layer:
// everything the searches and experiment drivers need from the pipeline.
// *DB is the canonical implementation; tests substitute lightweight fakes.
type Evaluator interface {
	// Profiles returns per-region profiles for an ISA choice (nil slots
	// mark quarantined pairs).
	Profiles(ctx context.Context, c ISAChoice) ([]*cpu.Profile, error)
	// ReferenceMetrics returns the memoized normalization baseline.
	ReferenceMetrics(ctx context.Context) ([]Metric, error)
	// Evaluate scores one design point against ref.
	Evaluate(ctx context.Context, dp DesignPoint, ref []Metric) (*Candidate, error)
	// Candidates scores the cross product of choices and configurations.
	Candidates(ctx context.Context, choices []ISAChoice, cfgs []cpu.CoreConfig, ref []Metric) ([]*Candidate, error)
}

var _ Evaluator = (*DB)(nil)

// isCtxErr reports whether err stems from context cancellation or deadline
// expiry (the two failures graceful degradation must not swallow).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
