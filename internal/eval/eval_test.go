package eval

import (
	"context"
	"testing"

	"compisa/internal/cpu"
)

// TestCandidateCacheHit: re-evaluating a design point against the DB's own
// reference returns the identical cached candidate without re-running the
// model stage.
func TestCandidateCacheHit(t *testing.T) {
	db := smallDB(3, nil)
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	c1, err := db.Evaluate(ctx, dp, ref)
	if err != nil {
		t.Fatal(err)
	}
	evals := db.Stats.ModelEvals.Load()
	c2, err := db.Evaluate(ctx, dp, ref)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("second Evaluate returned a distinct candidate; cache missed")
	}
	if got := db.Stats.ModelEvals.Load(); got != evals {
		t.Errorf("second Evaluate re-ran the model stage: %d -> %d evals", evals, got)
	}
	if db.Stats.CandidateHits.Load() != 1 || db.Stats.CandidateMisses.Load() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1",
			db.Stats.CandidateHits.Load(), db.Stats.CandidateMisses.Load())
	}
	if db.CachedCandidates() != 1 {
		t.Errorf("CachedCandidates = %d, want 1", db.CachedCandidates())
	}
}

// TestCandidateCacheForeignRefBypass: an evaluation normalized against a ref
// slice that is not the DB's own memoized reference must bypass the cache —
// caching it would bind the stored speedups to a foreign normalization
// basis.
func TestCandidateCacheForeignRefBypass(t *testing.T) {
	db := smallDB(3, nil)
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	foreign := append([]Metric{}, ref...) // equal values, different identity
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	c1, err := db.Evaluate(ctx, dp, foreign)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := db.Evaluate(ctx, dp, foreign)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("foreign-ref evaluations shared a candidate; cache must be bypassed")
	}
	if db.Stats.CandidateHits.Load() != 0 || db.Stats.CandidateMisses.Load() != 0 {
		t.Errorf("cache counters moved (%d/%d) on uncacheable evaluations",
			db.Stats.CandidateHits.Load(), db.Stats.CandidateMisses.Load())
	}
	if db.CachedCandidates() != 0 {
		t.Errorf("CachedCandidates = %d, want 0", db.CachedCandidates())
	}
}

// TestCandidatesSharedAcrossCalls: a second Candidates sweep over the same
// choices and configurations is served entirely from the candidate cache.
func TestCandidatesSharedAcrossCalls(t *testing.T) {
	db := smallDB(2, nil)
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	choices := XIzedChoices()
	small := ReferenceConfig()
	small.Width, small.IntALU = 2, 3
	cfgs := []cpu.CoreConfig{ReferenceConfig(), small}
	cs1, err := db.Candidates(ctx, choices, cfgs, ref)
	if err != nil {
		t.Fatal(err)
	}
	evals := db.Stats.ModelEvals.Load()
	cs2, err := db.Candidates(ctx, choices, cfgs, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Stats.ModelEvals.Load(); got != evals {
		t.Errorf("second sweep re-ran the model stage: %d -> %d evals", evals, got)
	}
	for i := range cs1 {
		if cs1[i] != cs2[i] {
			t.Fatalf("candidate %d not shared across sweeps", i)
		}
	}
}

// TestStateRoundtrip: Export → Import into a fresh DB restores both cache
// tiers, the quarantine list, and the stats; existing entries win.
func TestStateRoundtrip(t *testing.T) {
	db1 := smallDB(3, nil)
	ctx := context.Background()
	ref, err := db1.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	c1, err := db1.Evaluate(ctx, dp, ref)
	if err != nil {
		t.Fatal(err)
	}
	st := db1.Export()
	if len(st.Profiles) == 0 || len(st.Candidates) == 0 || st.Stats.IsZero() {
		t.Fatalf("export missing state: %d profiles, %d candidates, zero stats %v",
			len(st.Profiles), len(st.Candidates), st.Stats.IsZero())
	}

	db2 := smallDB(3, nil)
	db2.Import(st)
	if db2.CachedCandidates() != len(st.Candidates) {
		t.Fatalf("imported %d candidates, want %d", db2.CachedCandidates(), len(st.Candidates))
	}
	if db2.Stats.ModelEvals.Load() != st.Stats.ModelEvals {
		t.Errorf("imported ModelEvals = %d, want %d", db2.Stats.ModelEvals.Load(), st.Stats.ModelEvals)
	}
	// The restored candidate serves Evaluate without recomputation once the
	// reference is re-established (ReferenceMetrics itself reuses the
	// restored profiles and candidate).
	ref2, err := db2.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	evals := db2.Stats.ModelEvals.Load()
	c2, err := db2.Evaluate(ctx, dp, ref2)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats.ModelEvals.Load(); got != evals {
		t.Errorf("restored candidate did not serve the evaluation: %d -> %d evals", evals, got)
	}
	if c2.DP.CacheKey() != c1.DP.CacheKey() {
		t.Error("restored candidate keyed differently")
	}

	// A candidate whose region count mismatches the suite is skipped.
	db3 := smallDB(2, nil)
	db3.Import(st)
	if db3.CachedCandidates() != 0 {
		t.Errorf("mismatched-suite import kept %d candidates, want 0", db3.CachedCandidates())
	}
}

// TestCoverageDeterministic: the quarantine list comes back in the same
// (ISA, region) order on every call.
func TestCoverageDeterministic(t *testing.T) {
	db := smallDB(3, nil)
	db.quarantine = map[string]string{
		"r2|isaB": "x", "r1|isaB": "x", "r9|isaA": "x", "r0|isaC": "x",
	}
	first := db.Coverage()
	for i := 0; i < 10; i++ {
		again := db.Coverage()
		for j := range first.Quarantined {
			if first.Quarantined[j] != again.Quarantined[j] {
				t.Fatalf("call %d: order changed at %d: %+v vs %+v",
					i, j, first.Quarantined[j], again.Quarantined[j])
			}
		}
	}
	want := []QuarantinedPair{
		{"r9", "isaA", "x"}, {"r1", "isaB", "x"}, {"r2", "isaB", "x"}, {"r0", "isaC", "x"},
	}
	for i, q := range first.Quarantined {
		if q != want[i] {
			t.Fatalf("Quarantined[%d] = %+v, want %+v (ISA then region order)", i, q, want[i])
		}
	}
}
