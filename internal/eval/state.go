package eval

import (
	"fmt"
	"sort"
	"strings"

	"compisa/internal/cpu"
)

// QuarantinedPair is one excluded (region, ISA) evaluation.
type QuarantinedPair struct {
	Region, ISA, Reason string
}

// Coverage summarizes evaluation completeness over every (region, ISA) pair
// attempted so far.
type Coverage struct {
	Evaluated, Total int
	Quarantined      []QuarantinedPair
}

func (c Coverage) String() string {
	return fmt.Sprintf("%d/%d profiles evaluated, %d quarantined", c.Evaluated, c.Total, len(c.Quarantined))
}

// Coverage reports how many (region, ISA) profiles were evaluated versus
// quarantined, with the quarantine list in deterministic order (ISA, then
// region).
func (db *DB) Coverage() Coverage {
	db.mu.Lock()
	defer db.mu.Unlock()
	cov := Coverage{Total: len(db.profiles) * len(db.Regions)}
	for key, reason := range db.quarantine {
		region, isaKey, _ := strings.Cut(key, "|")
		cov.Quarantined = append(cov.Quarantined, QuarantinedPair{Region: region, ISA: isaKey, Reason: reason})
	}
	sort.Slice(cov.Quarantined, func(i, j int) bool {
		a, b := cov.Quarantined[i], cov.Quarantined[j]
		if a.ISA != b.ISA {
			return a.ISA < b.ISA
		}
		return a.Region < b.Region
	})
	cov.Evaluated = cov.Total - len(cov.Quarantined)
	return cov
}

// State is the serializable slice of a DB: both cache tiers plus the
// quarantine list and pipeline stats. It is what checkpoints persist.
type State struct {
	// Profiles maps ISA key → per-region profiles (nil slot = quarantined).
	Profiles map[string][]*cpu.Profile `json:"profiles"`
	// Quarantine maps "region|isaKey" → failure reason.
	Quarantine map[string]string `json:"quarantine,omitempty"`
	// Candidates is the candidate cache tier; keys are re-derived from each
	// candidate's design point on import.
	Candidates []*Candidate `json:"candidates,omitempty"`
	// Ref is the memoized normalization basis (the x86-64 reference metrics).
	// Persisting it lets a warm-started process serve cached candidates
	// without first re-running the reference's model stage; it stays valid
	// across processes because evaluation is deterministic.
	Ref []Metric `json:"ref,omitempty"`
	// Stats accumulates pipeline statistics across checkpoint lineages.
	Stats StatsSnapshot `json:"stats,omitzero"`
}

// StatsSnapshot returns the pipeline counters with the native executor's
// own counters folded in when a JIT engine is wired: the engine keeps the
// live atomics (it may be shared beyond this DB), while the Stats fields
// carry only history merged from resumed checkpoints.
func (db *DB) StatsSnapshot() StatsSnapshot {
	sn := db.Stats.Snapshot()
	if db.JIT != nil {
		js := db.JIT.Stats()
		sn.JITRegions += js.Regions
		sn.JITRuns += js.Runs
		sn.JITDeopts += js.Deopts
		sn.JITBailouts += js.Bailouts
	}
	return sn
}

// Export copies both cache tiers, the quarantine list, and the stats for
// checkpointing.
func (db *DB) Export() State {
	db.mu.Lock()
	st := State{
		Profiles:   make(map[string][]*cpu.Profile, len(db.profiles)),
		Quarantine: make(map[string]string, len(db.quarantine)),
		Candidates: make([]*Candidate, 0, len(db.cands)),
	}
	for k, v := range db.profiles {
		st.Profiles[k] = v
	}
	for k, v := range db.quarantine {
		st.Quarantine[k] = v
	}
	// Deterministic order keeps checkpoint files diffable.
	keys := make([]string, 0, len(db.cands))
	for k := range db.cands {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st.Candidates = append(st.Candidates, db.cands[k])
	}
	st.Ref = db.ref
	db.mu.Unlock()
	st.Stats = db.StatsSnapshot()
	return st
}

// Import seeds the caches from a checkpoint and merges its stats into the
// live counters. Existing entries win so a live computation is never
// clobbered, and entries whose shape does not match the DB's region suite
// are skipped (a checkpoint from a different suite cannot poison the
// caches). Restored candidates stay valid across processes because
// evaluation is deterministic: the reference metrics they were normalized
// against are recomputed identically.
func (db *DB) Import(st State) {
	db.mu.Lock()
	for k, v := range st.Profiles {
		if _, ok := db.profiles[k]; !ok && len(v) == len(db.Regions) {
			db.profiles[k] = v
		}
	}
	for k, v := range st.Quarantine {
		if _, ok := db.quarantine[k]; !ok {
			db.quarantine[k] = v
		}
	}
	for _, c := range st.Candidates {
		if c == nil || len(c.M) != len(db.Regions) {
			continue
		}
		key := c.DP.CacheKey()
		if _, ok := db.cands[key]; !ok {
			db.cands[key] = c
		}
	}
	if db.ref == nil && len(st.Ref) == len(db.Regions) {
		db.ref = st.Ref
	}
	db.mu.Unlock()
	db.Stats.Merge(st.Stats)
}

// CachedCandidates reports the size of the candidate cache tier.
func (db *DB) CachedCandidates() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.cands)
}

// CandidateKeys returns the cache keys of every cached candidate, sorted.
// A serving layer warm-started from a checkpoint uses them to account
// requests for restored points as cache hits.
func (db *DB) CandidateKeys() []string {
	db.mu.Lock()
	keys := make([]string, 0, len(db.cands))
	for k := range db.cands {
		keys = append(keys, k)
	}
	db.mu.Unlock()
	sort.Strings(keys)
	return keys
}
