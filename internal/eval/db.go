package eval

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"compisa/internal/check"
	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/fault"
	"compisa/internal/jit"
	"compisa/internal/par"
	"compisa/internal/workload"
)

// DB caches per-(region, ISA) profiles and evaluated design points, and
// evaluates candidates against the whole workload suite. All methods are
// safe for concurrent use after construction; Inject/Policy/Log must be
// configured before the first evaluation.
//
// Two cache tiers back the pipeline:
//
//   - profiles: ISA key → per-region profiles (the expensive functional
//     executions), singleflighted so concurrent callers share one
//     computation;
//   - candidates: (ISA key, canonical config) → evaluated design point,
//     normalized against the DB's own reference metrics, so the 4680-point
//     scoring stage runs once per process (and once per checkpoint
//     lineage) no matter how many budgets, organizations, or experiment
//     drivers consume it.
//
// Failure model: a failing (region, ISA) evaluation is retried (bounded,
// with backoff) while it looks transient, then quarantined — its profile
// slot stays nil and every design point using that ISA scores the region
// at the documented Policy penalties instead of aborting the run. The
// x86-64 reference ISA is exempt from injection and strict about failures,
// because a failed reference would invalidate every normalized metric.
type DB struct {
	Regions []workload.Region

	// Inject deterministically injects faults into non-reference profile
	// evaluations (nil = no injection).
	Inject *fault.Injector
	// Verify runs the static conformance verifier (internal/check) on every
	// freshly compiled program before execution; violations become
	// StageVerify faults handled by the retry/quarantine machinery.
	// NewDB enables it — the stage costs well under a millisecond per
	// region and turns silent bad codegen into a classified fault.
	Verify bool
	// Facts additionally records the analysis engine's per-region Facts
	// (loop structure, dominators, guardable branches, constant facts)
	// for every freshly compiled (region, ISA) pair, retrievable via
	// RegionFacts. Off by default: the artifact is for tooling that wants
	// the static analysis alongside the evaluation, not for scoring.
	Facts bool
	// Policy tunes retries and degradation penalties.
	Policy Policy
	// Log, if set, receives fault-tolerance events (retries, quarantines,
	// degraded evaluations).
	Log func(format string, args ...any)
	// Persist, if set, receives every freshly evaluated cacheable candidate
	// (write-through durability; see Persister). Persist failures degrade
	// durability, never the evaluation.
	Persist Persister
	// Stats instruments the pipeline's stages and cache tiers.
	Stats Stats
	// JIT, when set, offers each region's functional execution to the
	// native-code executor first (internal/jit). The interpreter stays the
	// semantic oracle — native runs reproduce it bit for bit and anything
	// unsupported deopts back — so profiles are identical either way; the
	// engine merely makes the cold exec stage several times faster. One
	// engine is safely shared by all par.Map workers. StatsSnapshot folds
	// the engine's counters into the pipeline stats.
	JIT *jit.Engine

	// persistDown tracks the durable tier's health for edge-triggered
	// logging (a dead disk must not flood the log per evaluation).
	persistDown atomic.Bool

	mu         sync.Mutex
	profiles   map[string][]*cpu.Profile // ISA key -> per-region profiles (nil slot = quarantined)
	inflight   map[string]*inflightProfiles
	quarantine map[string]string       // "region|isaKey" -> reason
	cands      map[string]*Candidate   // DesignPoint.CacheKey() -> candidate
	facts      map[string]*check.Facts // "region|isaKey" -> analysis Facts (Facts opt-in)
	ref        []Metric                // memoized reference metrics (normalization basis)
}

// inflightProfiles is one in-progress per-ISA profile computation; duplicate
// callers wait on done instead of recomputing (per-key singleflight).
type inflightProfiles struct {
	done chan struct{}
	ps   []*cpu.Profile
	err  error
}

// NewDB builds an evaluation database over the full 49-region suite.
func NewDB() *DB {
	return &DB{
		Regions:  workload.Regions(),
		Verify:   true,
		profiles: make(map[string][]*cpu.Profile, 32),
		inflight: make(map[string]*inflightProfiles, 32),
		// quarantine is keyed per (region, ISA) pair; size for a handful of
		// bad pairs, not the cross product.
		quarantine: make(map[string]string, 8),
		// cands holds the full sweep: ~26 choices x ~180 configurations.
		cands: make(map[string]*Candidate, 4096),
	}
}

func (db *DB) logf(format string, args ...any) {
	if db.Log != nil {
		db.Log(format, args...)
	}
}

// isReference reports whether a choice is the normalization baseline
// (plain x86-64): exempt from fault injection and strict about failures.
func isReference(c ISAChoice) bool {
	return c.Vendor == nil && c.Key() == X8664Choice().Key()
}

func pairKey(region, isaKey string) string { return region + "|" + isaKey }

// RegionFacts returns the analysis-engine Facts recorded for a (region,
// ISA-choice key) pair, or nil when Facts collection is disabled, the pair
// has not been profiled yet, or the pair was quarantined.
func (db *DB) RegionFacts(region, isaKey string) *check.Facts {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.facts[pairKey(region, isaKey)]
}

// Profiles returns (computing on first use) the per-region profiles for an
// ISA choice. Vendor choices reuse their x86-ized feature set's compiled
// code, then apply the vendor's code-density traits. Quarantined (region,
// ISA) pairs yield nil slots; see Evaluate for how they are scored.
// Concurrent callers for the same ISA share one computation.
func (db *DB) Profiles(ctx context.Context, c ISAChoice) ([]*cpu.Profile, error) {
	key := c.Key()
	db.mu.Lock()
	if ps, ok := db.profiles[key]; ok {
		db.mu.Unlock()
		db.Stats.ProfileHits.Inc()
		return ps, nil
	}
	if call, ok := db.inflight[key]; ok {
		db.mu.Unlock()
		// Joining an in-flight computation counts as a hit: the work is
		// shared, not repeated.
		db.Stats.ProfileHits.Inc()
		select {
		case <-call.done:
			return call.ps, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &inflightProfiles{done: make(chan struct{})}
	db.inflight[key] = call
	db.mu.Unlock()
	db.Stats.ProfileMisses.Inc()

	ps, err := db.computeProfiles(ctx, c)
	db.mu.Lock()
	if err == nil {
		db.profiles[key] = ps
	}
	delete(db.inflight, key)
	db.mu.Unlock()
	call.ps, call.err = ps, err
	close(call.done)
	return ps, err
}

// computeProfiles profiles every region for one ISA on the par pool,
// applying the retry/quarantine policy. It uses par.MapAll because the
// policy triages each region's failure individually instead of aborting
// on the first one.
func (db *DB) computeProfiles(ctx context.Context, c ISAChoice) ([]*cpu.Profile, error) {
	ps, errs := par.MapAll(ctx, len(db.Regions), 0, func(i int) (*cpu.Profile, error) {
		return db.profileWithRetry(ctx, db.Regions[i], c)
	})
	strict := isReference(c)
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCtxErr(err) {
			return nil, err
		}
		if strict {
			return nil, fmt.Errorf("eval: reference ISA failed (all normalized metrics depend on it): %w", err)
		}
	}
	// Quarantine only once the set is known to complete, so a canceled or
	// reference-failed computation leaves no partial quarantine entries.
	for i, err := range errs {
		if err == nil {
			continue
		}
		key := pairKey(db.Regions[i].Name, c.Key())
		db.mu.Lock()
		db.quarantine[key] = err.Error()
		db.mu.Unlock()
		db.Stats.Quarantines.Inc()
		db.logf("eval: quarantined %s: %v", key, err)
		ps[i] = nil
	}
	return ps, nil
}

// profileWithRetry runs one (region, ISA) evaluation with bounded retries
// for transient faults.
func (db *DB) profileWithRetry(ctx context.Context, r workload.Region, c ISAChoice) (*cpu.Profile, error) {
	pol := db.Policy.WithDefaults()
	var err error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			db.Stats.Retries.Inc()
			db.logf("eval: retrying %s for %s (attempt %d): %v", r.Name, c.Key(), attempt+1, err)
			t := time.NewTimer(pol.Backoff << (attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		var p *cpu.Profile
		p, err = db.profileOnce(ctx, r, c, attempt)
		if err == nil {
			return p, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !fault.IsTransient(err) {
			return nil, err
		}
	}
	return nil, err
}

// profileOnce is one attempt at profiling (region, ISA): build, compile,
// execute, vendor-adjust. Injected faults are applied here so they exercise
// the real failure paths (compiler error return, watchdog, decode error).
// A panic anywhere in the attempt is recovered into a *fault.Error.
func (db *DB) profileOnce(ctx context.Context, r workload.Region, c ISAChoice, attempt int) (p *cpu.Profile, err error) {
	key := pairKey(r.Name, c.Key())
	defer func() {
		if rec := recover(); rec != nil {
			p = nil
			err = &fault.Error{
				Stage: fault.StageExec, Region: r.Name, ISA: c.Key(),
				Err: fmt.Errorf("recovered panic: %v", rec),
			}
		}
	}()
	var d fault.Decision
	if !isReference(c) {
		d = db.Inject.Decide(key, attempt)
	}
	// classify wraps an organic or injected failure into the taxonomy;
	// injected failures inherit the decision's transience.
	classify := func(stage fault.Stage, cause error) error {
		transient := d.Kind != fault.KindNone && d.Transient
		var fe *fault.Error
		if errors.As(cause, &fe) {
			return cause
		}
		return &fault.Error{Stage: stage, Region: r.Name, ISA: c.Key(), Transient: transient, Err: cause}
	}
	if d.Delay > 0 {
		// KindSlow delays without failing, exercising deadline handling.
		t := time.NewTimer(d.Delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	compileStart := time.Now()
	db.Stats.Compiles.Inc()
	f, m, err := r.Build(c.FS.Width)
	if err != nil {
		return nil, classify(fault.StageCompile, err)
	}
	// The pipeline has its own verification stage below (with fault
	// classification and stats); skip the compiler's internal gate so the
	// work isn't done twice and failures carry the right stage.
	copts := compiler.Options{Verify: compiler.VerifyOff}
	if c.Vendor != nil {
		// Vendors with a real encoding backend compile through it: the
		// profile's code bytes, instruction lengths, and I-side cache
		// behavior are measured from the target's encoder instead of being
		// scaled by the analytic CodeDensity fallback below.
		copts.Target = c.Vendor.Target
	}
	if d.Kind == fault.KindCompile {
		copts.FaultHook = func() error { return d.Errorf() }
	}
	prog, err := compiler.Compile(f, c.FS, copts)
	if err != nil {
		return nil, classify(fault.StageCompile, err)
	}
	db.Stats.CompileTime.Since(compileStart)
	prog.Name = r.Name
	if d.Kind == fault.KindBadCode {
		// Seed illegal codegen through the real mutation harness: the
		// static verification stage (not the executor) must catch it.
		check.Mutate(prog, check.RuleUDef, db.Inject.Seed())
	}
	if db.Verify {
		verifyStart := time.Now()
		db.Stats.Verifies.Inc()
		rep := check.Analyze(prog)
		db.Stats.VerifyTime.Since(verifyStart)
		if n := rep.Errors(); n > 0 {
			db.Stats.VerifyFindings.Add(int64(n))
			verr := rep.Err()
			if d.Kind == fault.KindBadCode {
				verr = fmt.Errorf("%w: %w", fault.ErrInjected, verr)
			}
			return nil, classify(fault.StageVerify, verr)
		}
	}
	if db.Facts {
		// Facts describe the static program, so they are recorded once the
		// code has passed verification, independent of execution outcome.
		if fx, ferr := check.ComputeFacts(prog); ferr == nil {
			db.Stats.FactsComputed.Inc()
			db.mu.Lock()
			if db.facts == nil {
				db.facts = make(map[string]*check.Facts, 64)
			}
			db.facts[key] = fx
			db.mu.Unlock()
		}
	}
	ropts := cpu.RunOptions{MaxInstrs: MaxRegionInstrs, Interrupt: ctx.Err}
	if db.JIT != nil {
		ropts.JIT = db.JIT
	}
	switch d.Kind {
	case fault.KindRunaway:
		ropts.MaxInstrs = runawayInstrs
	case fault.KindCorrupt:
		// An opcode outside the ISA: decode hits ErrUnimplementedOp on the
		// first executed instruction, through the real decode path.
		prog.Instrs[0].Op = 0xEF
	}
	execStart := time.Now()
	db.Stats.Execs.Inc()
	p, _, err = cpu.CollectProfileOpts(prog, m, ropts)
	if err != nil {
		if d.Kind == fault.KindRunaway || d.Kind == fault.KindCorrupt {
			err = fmt.Errorf("%w: %w", fault.ErrInjected, err)
		}
		return nil, classify(fault.StageExec, err)
	}
	db.Stats.ExecTime.Since(execStart)
	if c.Vendor != nil && !c.Vendor.HasBackend() {
		p = vendorAdjust(p, c)
	}
	return p, nil
}

// vendorAdjust applies a vendor ISA's encoding traits to a profile built
// from its x86-ized equivalent. It is the documented analytic FALLBACK for
// vendors without a real encoding backend (today only Thumb, whose
// compressed target does not exist yet): code density scales the static and
// dynamic code footprint (Thumb: 0.70), which shifts I-cache misses and
// micro-op cache reach; fixed-length decode is handled by the power model.
// Vendors with a backend (x86-64, Alpha) never reach this path — their
// profiles carry measured code bytes from the target's encoder.
func vendorAdjust(p *cpu.Profile, c ISAChoice) *cpu.Profile {
	v := c.Vendor
	q := *p
	q.CodeBytes = int(float64(p.CodeBytes) * v.CodeDensity)
	q.AvgInstrLen = p.AvgInstrLen * v.CodeDensity
	for i := range q.Mem {
		for d := range q.Mem[i] {
			for l := range q.Mem[i][d] {
				m := p.Mem[i][d][l]
				m.L1IMisses = int64(float64(m.L1IMisses) * v.CodeDensity)
				q.Mem[i][d][l] = m
			}
		}
	}
	// Denser code covers more of the micro-op cache's reach.
	if v.CodeDensity < 1 {
		q.UopCacheHitRate = p.UopCacheHitRate + (1-p.UopCacheHitRate)*(1-v.CodeDensity)
	}
	return &q
}
