package eval

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"compisa/internal/check"
	"compisa/internal/cpu"
	"compisa/internal/fault"
)

// injector builds a deterministic fault injector or fails the test.
func injector(t *testing.T, cfg fault.Config) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// smallDB shrinks the suite to its first n regions so fault-path tests stay
// fast; the fault machinery is region-count agnostic.
func smallDB(n int, in *fault.Injector) *DB {
	db := NewDB()
	db.Regions = db.Regions[:n]
	db.Inject = in
	return db
}

// injectable returns a non-reference composite choice (subject to injection).
func injectable(t *testing.T) ISAChoice {
	t.Helper()
	for _, c := range CompositeChoices() {
		if !isReference(c) {
			return c
		}
	}
	t.Fatal("no injectable composite choice")
	return ISAChoice{}
}

// TestFaultCompileQuarantine: persistent compile faults quarantine every
// (region, ISA) pair instead of failing Profiles, and each quarantine reason
// names the region and the ISA.
func TestFaultCompileQuarantine(t *testing.T) {
	in := injector(t, fault.Config{Seed: 7, Rate: 1, Kinds: []fault.Kind{fault.KindCompile}})
	db := smallDB(3, in)
	c := injectable(t)
	ps, err := db.Profiles(context.Background(), c)
	if err != nil {
		t.Fatalf("Profiles must degrade, not fail: %v", err)
	}
	for i, p := range ps {
		if p != nil {
			t.Errorf("region %d: expected quarantined nil slot", i)
		}
	}
	cov := db.Coverage()
	if len(cov.Quarantined) != 3 || cov.Evaluated != 0 {
		t.Fatalf("coverage %s, want 0/3 with 3 quarantined", cov)
	}
	for _, q := range cov.Quarantined {
		if !strings.Contains(q.Reason, q.Region) || !strings.Contains(q.Reason, c.Key()) {
			t.Errorf("reason %q should name region %q and ISA %q", q.Reason, q.Region, c.Key())
		}
		if !strings.Contains(q.Reason, "compile") {
			t.Errorf("reason %q should identify the compile stage", q.Reason)
		}
	}
	if got := db.Stats.Quarantines.Load(); got != 3 {
		t.Errorf("Stats.Quarantines = %d, want 3", got)
	}
}

// TestFaultReferenceExempt: the x86-64 reference ISA ignores the injector —
// a 100% fault rate still yields a complete reference profile set.
func TestFaultReferenceExempt(t *testing.T) {
	in := injector(t, fault.Config{Seed: 7, Rate: 1})
	db := smallDB(3, in)
	ps, err := db.Profiles(context.Background(), X8664Choice())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if p == nil {
			t.Fatalf("reference region %d quarantined despite exemption", i)
		}
	}
	if cov := db.Coverage(); len(cov.Quarantined) != 0 {
		t.Fatalf("reference run quarantined pairs: %s", cov)
	}
}

// TestFaultTransientRetry: faults marked transient clear on retry, so a 100%
// injection rate with TransientFrac=1 still completes with zero quarantines.
func TestFaultTransientRetry(t *testing.T) {
	in := injector(t, fault.Config{Seed: 11, Rate: 1, TransientFrac: 1,
		Kinds: []fault.Kind{fault.KindCompile, fault.KindRunaway, fault.KindCorrupt}})
	db := smallDB(3, in)
	ps, err := db.Profiles(context.Background(), injectable(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if p == nil {
			t.Errorf("region %d quarantined; transient faults must clear on retry", i)
		}
	}
	if db.Stats.Retries.Load() == 0 {
		t.Error("expected at least one counted retry under 100% injection")
	}
}

// TestFaultKindsExerciseRealPaths: runaway and corruption faults surface
// through the CPU's genuine watchdog and decode errors, tagged as injected.
func TestFaultKindsExerciseRealPaths(t *testing.T) {
	cases := []struct {
		kind fault.Kind
		want error
	}{
		{fault.KindRunaway, cpu.ErrInstrBudget},
		{fault.KindCorrupt, cpu.ErrUnimplementedOp},
	}
	for _, tc := range cases {
		in := injector(t, fault.Config{Seed: 3, Rate: 1, Kinds: []fault.Kind{tc.kind}})
		db := smallDB(1, in)
		_, err := db.profileWithRetry(context.Background(), db.Regions[0], injectable(t))
		if err == nil {
			t.Fatalf("%v: expected an error", tc.kind)
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%v: error %v should wrap %v", tc.kind, err, tc.want)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("%v: error %v should be tagged injected", tc.kind, err)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) || fe.Stage != fault.StageExec {
			t.Errorf("%v: error %v should classify as an exec-stage fault", tc.kind, err)
		}
	}
}

// TestFaultDegradedScoring: quarantined pairs score at exactly the documented
// Policy penalties rather than aborting Evaluate.
func TestFaultDegradedScoring(t *testing.T) {
	in := injector(t, fault.Config{Seed: 7, Rate: 1, Kinds: []fault.Kind{fault.KindCompile}})
	db := smallDB(3, in)
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	c, err := db.Evaluate(ctx, dp, ref)
	if err != nil {
		t.Fatalf("Evaluate must degrade, not fail: %v", err)
	}
	pol := db.Policy.WithDefaults()
	for r := range db.Regions {
		if !c.Degraded[r] {
			t.Fatalf("region %d: expected degraded evaluation", r)
		}
		if c.Speedup[r] != pol.SpeedupPenalty || c.NormEDP[r] != pol.EDPPenalty {
			t.Errorf("region %d: speedup %v edp %v, want penalties %v / %v",
				r, c.Speedup[r], c.NormEDP[r], pol.SpeedupPenalty, pol.EDPPenalty)
		}
	}
	if got := db.Stats.DegradedRegions.Load(); got != int64(len(db.Regions)) {
		t.Errorf("Stats.DegradedRegions = %d, want %d", got, len(db.Regions))
	}
}

// TestFaultSeedDeterminism: the same seed yields identical quarantine lists
// and identical degraded scores across independent runs.
func TestFaultSeedDeterminism(t *testing.T) {
	cfg := fault.Config{Seed: 42, Rate: 0.5}
	run := func() (Coverage, []float64) {
		db := smallDB(4, injector(t, cfg))
		ctx := context.Background()
		ref, err := db.ReferenceMetrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var speedups []float64
		for _, ch := range XIzedChoices() {
			c, err := db.Evaluate(ctx, DesignPoint{ISA: ch, Cfg: ReferenceConfig()}, ref)
			if err != nil {
				t.Fatal(err)
			}
			speedups = append(speedups, c.Speedup...)
		}
		return db.Coverage(), speedups
	}
	cov1, sp1 := run()
	cov2, sp2 := run()
	if cov1.String() != cov2.String() {
		t.Fatalf("coverage differs across runs: %s vs %s", cov1, cov2)
	}
	for i := range cov1.Quarantined {
		if cov1.Quarantined[i] != cov2.Quarantined[i] {
			t.Errorf("quarantine entry %d differs: %+v vs %+v", i, cov1.Quarantined[i], cov2.Quarantined[i])
		}
	}
	for i := range sp1 {
		if sp1[i] != sp2[i] {
			t.Errorf("speedup %d differs: %v vs %v", i, sp1[i], sp2[i])
		}
	}
	// A different seed must not reproduce the same fault pattern (with 4
	// regions x 3 ISAs at 50% rate, identical lists are vanishingly unlikely).
	db3 := smallDB(4, injector(t, fault.Config{Seed: 43, Rate: 0.5}))
	ctx := context.Background()
	if _, err := db3.ReferenceMetrics(ctx); err != nil {
		t.Fatal(err)
	}
	for _, ch := range XIzedChoices() {
		if _, err := db3.Profiles(ctx, ch); err != nil {
			t.Fatal(err)
		}
	}
	same := len(db3.Coverage().Quarantined) == len(cov1.Quarantined)
	if same {
		for i, q := range db3.Coverage().Quarantined {
			if q != cov1.Quarantined[i] {
				same = false
				break
			}
		}
	}
	if same && len(cov1.Quarantined) > 0 {
		t.Error("different seeds produced identical quarantine lists")
	}
}

// TestFaultProfilesSingleflight: concurrent Profiles calls for one ISA share
// a single computation (no cache stampede).
func TestFaultProfilesSingleflight(t *testing.T) {
	db := smallDB(3, nil)
	c := injectable(t)
	const callers = 16
	results := make([][]*cpu.Profile, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps, err := db.Profiles(context.Background(), c)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = ps
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if len(results[i]) == 0 || results[i][0] != results[0][0] {
			t.Fatalf("caller %d received a distinct computation; stampede not deduplicated", i)
		}
	}
	if db.Stats.ProfileMisses.Load() != 1 {
		t.Errorf("ProfileMisses = %d, want 1 (singleflight)", db.Stats.ProfileMisses.Load())
	}
	if db.Stats.ProfileHits.Load() != callers-1 {
		t.Errorf("ProfileHits = %d, want %d (joiners count as hits)", db.Stats.ProfileHits.Load(), callers-1)
	}
}

// TestFaultBadCodeVerifyStage: injected illegal codegen (KindBadCode) is
// caught by the static verification stage before execution, classified as a
// StageVerify fault tagged injected, and counted in the verify stats. With
// verification disabled the same mutant executes "successfully" (it only
// reads a zero-initialized register), which is exactly the silent-bad-code
// hazard the stage exists to close.
func TestFaultBadCodeVerifyStage(t *testing.T) {
	cfg := fault.Config{Seed: 5, Rate: 1, Kinds: []fault.Kind{fault.KindBadCode}}
	db := smallDB(1, injector(t, cfg))
	_, err := db.profileWithRetry(context.Background(), db.Regions[0], injectable(t))
	if err == nil {
		t.Fatal("expected a verify-stage fault")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Stage != fault.StageVerify {
		t.Fatalf("error %v should classify as a verify-stage fault", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("error %v should be tagged injected", err)
	}
	if !strings.Contains(err.Error(), check.RuleUDef) {
		t.Errorf("error %v should carry the %q rule ID", err, check.RuleUDef)
	}
	if db.Stats.Verifies.Load() == 0 || db.Stats.VerifyFindings.Load() == 0 {
		t.Errorf("verify stats not recorded: %d checks, %d findings",
			db.Stats.Verifies.Load(), db.Stats.VerifyFindings.Load())
	}

	off := smallDB(1, injector(t, cfg))
	off.Verify = false
	p, err := off.profileWithRetry(context.Background(), off.Regions[0], injectable(t))
	if err != nil || p == nil {
		t.Fatalf("with verification off the mutant must execute: %v", err)
	}
	if off.Stats.Verifies.Load() != 0 {
		t.Errorf("Verify=false must not run the stage (%d checks)", off.Stats.Verifies.Load())
	}
}

// TestFaultBadCodeQuarantine: a persistent badcode fault degrades into
// quarantine like any other stage failure, with the reason naming the
// verify stage.
func TestFaultBadCodeQuarantine(t *testing.T) {
	db := smallDB(2, injector(t, fault.Config{Seed: 9, Rate: 1, Kinds: []fault.Kind{fault.KindBadCode}}))
	ps, err := db.Profiles(context.Background(), injectable(t))
	if err != nil {
		t.Fatalf("Profiles must degrade, not fail: %v", err)
	}
	for i, p := range ps {
		if p != nil {
			t.Errorf("region %d: expected quarantined nil slot", i)
		}
	}
	cov := db.Coverage()
	if len(cov.Quarantined) != 2 {
		t.Fatalf("want 2 quarantined pairs, got %d", len(cov.Quarantined))
	}
	for _, q := range cov.Quarantined {
		if !strings.Contains(q.Reason, "verify") {
			t.Errorf("reason %q should identify the verify stage", q.Reason)
		}
	}
}
