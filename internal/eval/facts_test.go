package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// factsDB builds a small DB with Facts collection on and profiles one
// composite choice, returning the DB and the choice.
func factsDB(t *testing.T, n int) (*DB, ISAChoice) {
	t.Helper()
	db := NewDB()
	db.Regions = db.Regions[:n]
	db.Facts = true
	c := CompositeChoices()[0]
	if _, err := db.Profiles(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	return db, c
}

// TestFactsStoredAlongsideProfiles: with DB.Facts enabled, every profiled
// (region, ISA) pair records a Facts artifact retrievable via RegionFacts,
// and the FactsComputed counter matches.
func TestFactsStoredAlongsideProfiles(t *testing.T) {
	const n = 3
	db, c := factsDB(t, n)
	for _, r := range db.Regions {
		f := db.RegionFacts(r.Name, c.Key())
		if f == nil {
			t.Fatalf("RegionFacts(%q, %q) = nil, want Facts", r.Name, c.Key())
		}
		if f.Program != r.Name {
			t.Errorf("Facts.Program = %q, want %q", f.Program, r.Name)
		}
		if len(f.Blocks) == 0 {
			t.Errorf("%s: Facts has no blocks", r.Name)
		}
	}
	if got := db.Stats.FactsComputed.Load(); got != n {
		t.Errorf("Stats.FactsComputed = %d, want %d", got, n)
	}
	if f := db.RegionFacts("nosuch.0", c.Key()); f != nil {
		t.Errorf("RegionFacts for unknown region = %+v, want nil", f)
	}
}

// TestFactsDisabledByDefault: a DB without Facts opted in records nothing.
func TestFactsDisabledByDefault(t *testing.T) {
	db := NewDB()
	db.Regions = db.Regions[:1]
	c := CompositeChoices()[0]
	if _, err := db.Profiles(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if f := db.RegionFacts(db.Regions[0].Name, c.Key()); f != nil {
		t.Fatalf("Facts recorded without opt-in: %+v", f)
	}
	if got := db.Stats.FactsComputed.Load(); got != 0 {
		t.Errorf("Stats.FactsComputed = %d, want 0", got)
	}
}

// TestFactsDeterministic: two fresh DBs profiling the same choice produce
// byte-identical Facts JSON — the artifact is safe to content-address.
func TestFactsDeterministic(t *testing.T) {
	db1, c := factsDB(t, 2)
	db2, _ := factsDB(t, 2)
	for _, r := range db1.Regions {
		j1, err := json.Marshal(db1.RegionFacts(r.Name, c.Key()))
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(db2.RegionFacts(r.Name, c.Key()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Errorf("%s: Facts JSON differs across fresh DBs:\n%s\n%s", r.Name, j1, j2)
		}
	}
}
