package eval

import (
	"context"
	"testing"

	"compisa/internal/jit"
)

// TestJITPipelineEquivalence is the pipeline-level leg of the JIT's
// differential suite (internal/jit holds the exhaustive one): profiling the
// same ISA choice with and without a wired engine must produce identical
// profiles, and the engine's counters must surface through StatsSnapshot.
func TestJITPipelineEquivalence(t *testing.T) {
	ctx := context.Background()

	ref := NewDB()
	ref.Regions = ref.Regions[:6]
	jd := NewDB()
	jd.Regions = jd.Regions[:6]
	jd.JIT = jit.New(jit.Config{})

	choice := X8664Choice()
	want, err := ref.Profiles(ctx, choice)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jd.Profiles(ctx, choice)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] == nil || got[i] == nil {
			t.Fatalf("region %s quarantined", ref.Regions[i].Name)
		}
		wb, err := want[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		gb, err := got[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Errorf("region %s: profile diverges with the JIT wired", ref.Regions[i].Name)
		}
	}

	sn := jd.StatsSnapshot()
	js := jd.JIT.Stats()
	if js.Runs+js.Bailouts == 0 {
		t.Fatal("the engine was never offered a run")
	}
	if jit.Available() && js.Runs == 0 {
		t.Fatalf("native execution available but never used: %+v", js)
	}
	if sn.JITRuns != js.Runs || sn.JITRegions != js.Regions ||
		sn.JITDeopts != js.Deopts || sn.JITBailouts != js.Bailouts {
		t.Fatalf("StatsSnapshot does not mirror the engine: %+v vs %+v", sn, js)
	}

	// The counters must survive a checkpoint round trip: Export folds them
	// into the serialized stats, Import merges them into a fresh DB.
	cold := NewDB()
	cold.Regions = cold.Regions[:6]
	cold.Import(jd.Export())
	if got := cold.StatsSnapshot().JITRuns; got != js.Runs {
		t.Fatalf("checkpointed JIT runs = %d, want %d", got, js.Runs)
	}
}
