package eval

import (
	"fmt"

	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/power"
)

// ISAChoice is the instruction set of one core: a composite feature set, or
// a vendor ISA (for the heterogeneous-ISA baseline), which carries extra
// traits a composite set cannot express (Thumb's code compression, fixed-
// length decoding).
type ISAChoice struct {
	FS     isa.FeatureSet
	Vendor *isa.VendorISA
}

// Key identifies the choice for caching and display.
func (c ISAChoice) Key() string {
	if c.Vendor != nil {
		return "vendor:" + c.Vendor.Name
	}
	return c.FS.ShortName()
}

// Traits returns the hardware-model traits. For vendors with a real
// encoding backend, fixed-length decode is derived from the target
// descriptor (one-step decode drops the ILD from the power model); the
// VendorISA.FixedLength scalar remains only for backend-less vendors.
func (c ISAChoice) Traits() power.Traits {
	t := power.Traits{FS: c.FS}
	if c.Vendor != nil {
		if tgt, ok := isa.TargetByName(c.Vendor.Target); ok && c.Vendor.HasBackend() {
			t.FixedLength = tgt.OneStepDecode
		} else {
			t.FixedLength = c.Vendor.FixedLength
		}
	}
	return t
}

// DesignPoint is one single-core design: an ISA choice plus a
// microarchitectural configuration.
type DesignPoint struct {
	ISA ISAChoice
	Cfg cpu.CoreConfig
}

func (d DesignPoint) String() string {
	return fmt.Sprintf("%s @ %s", d.ISA.Key(), d.Cfg.Name())
}

// CacheKey canonically identifies the design point for the candidate cache
// tier. cpu.CoreConfig.Name() abbreviates (it omits fields that are coupled
// within the pruned 180-config space), so the key spells out every
// configuration field instead — explicitly, field by field, rather than
// through reflective formatting. The key is a cross-process identity:
// checkpoints written by one binary (compose-explore) warm-start another
// (compose-serve), so its derivation must depend only on field values —
// never on map iteration, pointer formatting, or struct declaration order —
// and any change to it must bump the checkpoint version.
func (d DesignPoint) CacheKey() string {
	c := d.Cfg
	return fmt.Sprintf("%s|ooo=%t,w=%d,bp=%s,iq=%d,rob=%d,prfi=%d,prff=%d,alu=%d,mul=%d,fpu=%d,lsq=%d,l1i=%s,l1d=%s,l2=%s,uop=%t,fuse=%t",
		d.ISA.Key(), c.OoO, c.Width, c.Predictor.ShortString(), c.IQ, c.ROB,
		c.PRFInt, c.PRFFP, c.IntALU, c.IntMul, c.FPALU, c.LSQ,
		cacheCfgKey(c.L1I), cacheCfgKey(c.L1D), cacheCfgKey(c.L2), c.UopCache, c.Fusion)
}

// cacheCfgKey canonically renders one cache configuration for CacheKey.
func cacheCfgKey(c cpu.CacheCfg) string {
	return fmt.Sprintf("%dk/%d/%d", c.SizeKB, c.Assoc, c.Banks)
}

// Area returns the core's total area (mm², including cache shares).
func (d DesignPoint) Area() float64 {
	return power.Area(d.ISA.Traits(), d.Cfg).Total()
}

// Peak returns the core's peak power (W): the core plus its private caches.
// The shared L2's power is not charged against per-core peak budgets (only
// one L2 exists per CMP).
func (d DesignPoint) Peak() float64 {
	b := power.Peak(d.ISA.Traits(), d.Cfg)
	return b.Total() - b.L2
}

// CompositeChoices returns the 26 composite feature sets as ISA choices.
func CompositeChoices() []ISAChoice {
	var out []ISAChoice
	for _, fs := range isa.Derive() {
		out = append(out, ISAChoice{FS: fs})
	}
	return out
}

// XIzedChoices returns the three x86-ized fixed feature sets (limited-
// diversity composite baseline).
func XIzedChoices() []ISAChoice {
	var out []ISAChoice
	for _, fs := range isa.XIzedFixedSets() {
		out = append(out, ISAChoice{FS: fs})
	}
	return out
}

// VendorChoices returns the heterogeneous-ISA baseline's vendor ISAs.
func VendorChoices() []ISAChoice {
	vs := isa.VendorISAs()
	out := make([]ISAChoice, len(vs))
	for i := range vs {
		v := vs[i]
		out[i] = ISAChoice{FS: v.Features, Vendor: &v}
	}
	return out
}

// X8664Choice is the single-ISA baseline.
func X8664Choice() ISAChoice { return ISAChoice{FS: isa.X8664} }

// AllChoices enumerates every ISA choice the pipeline can evaluate, in
// deterministic order: the x86-64 reference, the 26 composite feature sets,
// the x86-ized fixed sets, and the vendor ISAs.
func AllChoices() []ISAChoice {
	out := []ISAChoice{X8664Choice()}
	out = append(out, CompositeChoices()...)
	out = append(out, XIzedChoices()...)
	out = append(out, VendorChoices()...)
	return out
}

// ChoiceByKey resolves an ISA key (as produced by ISAChoice.Key, e.g.
// "x86-16D-64W-P" or "vendor:thumb") back to its choice. It is the parsing
// seam of the serving layer: requests name ISAs by key, and the key
// vocabulary is exactly the enumerable choice space.
func ChoiceByKey(key string) (ISAChoice, bool) {
	for _, c := range AllChoices() {
		if c.Key() == key {
			return c, true
		}
	}
	return ISAChoice{}, false
}

// ChoiceKeys lists every valid ISA key in AllChoices order, duplicates
// (the x86-ized sets overlap the composites) removed.
func ChoiceKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for _, c := range AllChoices() {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// ReferenceConfig is the normalization core: the largest out-of-order
// configuration with 64KB caches and the 8MB L2.
func ReferenceConfig() cpu.CoreConfig {
	return cpu.CoreConfig{
		OoO: true, Width: 4, Predictor: cpu.PredTournament,
		IQ: 64, ROB: 128, PRFInt: 192, PRFFP: 160,
		IntALU: 6, IntMul: 2, FPALU: 4, LSQ: 32,
		L1I: cpu.L1Cfg64k, L1D: cpu.L1Cfg64k, L2: cpu.L2Cfg8M,
		UopCache: true, Fusion: true,
	}
}
