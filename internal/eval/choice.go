package eval

import (
	"fmt"

	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/power"
)

// ISAChoice is the instruction set of one core: a composite feature set, or
// a vendor ISA (for the heterogeneous-ISA baseline), which carries extra
// traits a composite set cannot express (Thumb's code compression, fixed-
// length decoding).
type ISAChoice struct {
	FS     isa.FeatureSet
	Vendor *isa.VendorISA
}

// Key identifies the choice for caching and display.
func (c ISAChoice) Key() string {
	if c.Vendor != nil {
		return "vendor:" + c.Vendor.Name
	}
	return c.FS.ShortName()
}

// Traits returns the hardware-model traits.
func (c ISAChoice) Traits() power.Traits {
	t := power.Traits{FS: c.FS}
	if c.Vendor != nil {
		t.FixedLength = c.Vendor.FixedLength
	}
	return t
}

// DesignPoint is one single-core design: an ISA choice plus a
// microarchitectural configuration.
type DesignPoint struct {
	ISA ISAChoice
	Cfg cpu.CoreConfig
}

func (d DesignPoint) String() string {
	return fmt.Sprintf("%s @ %s", d.ISA.Key(), d.Cfg.Name())
}

// CacheKey canonically identifies the design point for the candidate cache
// tier. cpu.CoreConfig.Name() abbreviates (it omits fields that are coupled
// within the pruned 180-config space), so the key spells out every
// configuration field instead.
func (d DesignPoint) CacheKey() string {
	return d.ISA.Key() + "|" + fmt.Sprintf("%+v", d.Cfg)
}

// Area returns the core's total area (mm², including cache shares).
func (d DesignPoint) Area() float64 {
	return power.Area(d.ISA.Traits(), d.Cfg).Total()
}

// Peak returns the core's peak power (W): the core plus its private caches.
// The shared L2's power is not charged against per-core peak budgets (only
// one L2 exists per CMP).
func (d DesignPoint) Peak() float64 {
	b := power.Peak(d.ISA.Traits(), d.Cfg)
	return b.Total() - b.L2
}

// CompositeChoices returns the 26 composite feature sets as ISA choices.
func CompositeChoices() []ISAChoice {
	var out []ISAChoice
	for _, fs := range isa.Derive() {
		out = append(out, ISAChoice{FS: fs})
	}
	return out
}

// XIzedChoices returns the three x86-ized fixed feature sets (limited-
// diversity composite baseline).
func XIzedChoices() []ISAChoice {
	var out []ISAChoice
	for _, fs := range isa.XIzedFixedSets() {
		out = append(out, ISAChoice{FS: fs})
	}
	return out
}

// VendorChoices returns the heterogeneous-ISA baseline's vendor ISAs.
func VendorChoices() []ISAChoice {
	vs := isa.VendorISAs()
	out := make([]ISAChoice, len(vs))
	for i := range vs {
		v := vs[i]
		out[i] = ISAChoice{FS: v.Features, Vendor: &v}
	}
	return out
}

// X8664Choice is the single-ISA baseline.
func X8664Choice() ISAChoice { return ISAChoice{FS: isa.X8664} }

// ReferenceConfig is the normalization core: the largest out-of-order
// configuration with 64KB caches and the 8MB L2.
func ReferenceConfig() cpu.CoreConfig {
	return cpu.CoreConfig{
		OoO: true, Width: 4, Predictor: cpu.PredTournament,
		IQ: 64, ROB: 128, PRFInt: 192, PRFFP: 160,
		IntALU: 6, IntMul: 2, FPALU: 4, LSQ: 32,
		L1I: cpu.L1Cfg64k, L1D: cpu.L1Cfg64k, L2: cpu.L2Cfg8M,
		UopCache: true, Fusion: true,
	}
}
