package eval

import (
	"context"
	"math"
	"testing"
)

// TestAlphaMeasuredCodeDensity is the regression gate for the measured
// vendor-profile path: the Alpha vendor's code footprint now comes from the
// alpha64 encoder, not the old analytic CodeDensity constant (1.05). The
// measured suite-wide density ratio versus the x86 encoding of the same
// feature set must land in a sane band around that constant — far enough
// that we know the measurement is real (fixed 4-byte words plus ld-imm
// splitting are not a 5% scalar), close enough that the Table II modeling
// assumption (Alpha code is mildly less dense than x86) still holds.
func TestAlphaMeasuredCodeDensity(t *testing.T) {
	db := NewDB()
	if testing.Short() {
		db.Regions = db.Regions[:8]
	}
	ctx := context.Background()
	alpha := VendorChoices()[1]
	if alpha.Vendor.Name != "Alpha" {
		t.Fatalf("unexpected vendor order: %s", alpha.Vendor.Name)
	}
	ap, err := db.Profiles(ctx, alpha)
	if err != nil {
		t.Fatal(err)
	}
	xp, err := db.Profiles(ctx, ISAChoice{FS: alpha.FS})
	if err != nil {
		t.Fatal(err)
	}
	logSum, n := 0.0, 0
	for i := range ap {
		if ap[i] == nil || xp[i] == nil {
			t.Fatalf("region %s quarantined", db.Regions[i].Name)
		}
		if ap[i].AvgInstrLen != 4 {
			t.Errorf("%s: alpha64 profile avg instr len %.2f, want the fixed 4",
				db.Regions[i].Name, ap[i].AvgInstrLen)
		}
		d := float64(ap[i].CodeBytes) / float64(xp[i].CodeBytes)
		t.Logf("%-16s alpha64 %6d B  x86 %6d B  density %.3f",
			db.Regions[i].Name, ap[i].CodeBytes, xp[i].CodeBytes, d)
		logSum += math.Log(d)
		n++
	}
	geo := math.Exp(logSum / float64(n))
	t.Logf("geomean density %.3f (analytic constant was 1.05)", geo)
	// Band: the fixed-length encoding must cost something over x86's
	// variable-length bytes (>1.0) but stay under 1.8x — the regime real
	// fixed-length RISC code lives in versus x86 (the current measurement is
	// ~1.54: 4-byte words against x86's ~2.7-byte average, plus ld-imm
	// splitting and spill-base materialization). Outside the band, either
	// the encoder or the legalizer is emitting pathological code — or
	// someone reverted to the analytic 1.05 scalar, which the lower bound
	// alone cannot catch, hence the AvgInstrLen == 4 assertion above.
	if geo < 1.0 || geo > 1.8 {
		t.Errorf("measured alpha64 geomean density %.3f outside the sane band [1.0, 1.8]", geo)
	}
}
