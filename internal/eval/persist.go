package eval

import (
	"encoding/json"
	"fmt"

	"compisa/internal/store"
)

// Persister receives every freshly evaluated cacheable candidate: the
// write-through durability hook. Evaluations become durable incrementally
// as they complete, not only at checkpoint time, so a killed process loses
// at most the records its store had not yet group-committed.
//
// A persist failure never fails the evaluation — the result is already
// correct in memory; only its durability degraded. The DB counts the
// failure (Stats.PersistErrors), logs the edge transitions, and keeps
// serving. *CandidateStore is the production implementation;
// serve.StoreBreaker wraps one with circuit breaking.
type Persister interface {
	PutCandidate(key string, c *Candidate) error
}

// persist write-throughs one freshly won cache entry, with edge-triggered
// logging so a dead disk does not flood the log at evaluation rate.
func (db *DB) persist(key string, c *Candidate) {
	if db.Persist == nil {
		return
	}
	if err := db.Persist.PutCandidate(key, c); err != nil {
		db.Stats.PersistErrors.Inc()
		if !db.persistDown.Swap(true) {
			db.logf("eval: persist %s: %v (degrading to memory-only; further persist errors suppressed)", key, err)
		}
		return
	}
	db.Stats.Persisted.Inc()
	if db.persistDown.Swap(false) {
		db.logf("eval: persistence recovered")
	}
}

// CandidateStore adapts a *store.Store into the Persister seam: candidates
// serialize to JSON keyed by their cross-host DesignPoint.CacheKey, so any
// process (compose-explore, compose-serve, a future fleet of replicas) can
// warm-start from any other's log.
type CandidateStore struct {
	S *store.Store
}

// PutCandidate appends one evaluated candidate to the log.
func (cs *CandidateStore) PutCandidate(key string, c *Candidate) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("eval: marshal candidate %s: %w", key, err)
	}
	return cs.S.Put(key, data)
}

// LoadInto warm-starts a DB from the store: every decodable record joins
// the candidate cache tier (Import's shape checks still apply, so a log
// written against a different region suite cannot poison the caches).
// Undecodable values are counted and skipped — record checksums make them
// near-impossible, but recovery must never abort a warm start.
func (cs *CandidateStore) LoadInto(db *DB) (loaded, skipped int, err error) {
	var cands []*Candidate
	err = cs.S.Range(func(key string, val []byte) error {
		var c Candidate
		if jerr := json.Unmarshal(val, &c); jerr != nil {
			skipped++
			db.logf("eval: store record %s undecodable, skipping: %v", key, jerr)
			return nil
		}
		cands = append(cands, &c)
		return nil
	})
	if err != nil {
		return 0, skipped, err
	}
	before := db.CachedCandidates()
	db.Import(State{Candidates: cands})
	return db.CachedCandidates() - before, skipped, nil
}
