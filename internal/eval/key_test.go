package eval

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCacheKeyStable pins the candidate-tier key format. The key is a
// cross-process identity — checkpoints written by compose-explore must
// warm-start compose-serve on another host — so its derivation may depend
// only on field values (no map iteration, no pointer formatting, no
// reflective struct dumps whose output shifts with declaration order). Any
// intentional format change must update this golden and bump the
// checkpoint version.
func TestCacheKeyStable(t *testing.T) {
	dp := DesignPoint{ISA: X8664Choice(), Cfg: ReferenceConfig()}
	const want = "x86-16D-64W-P|ooo=true,w=4,bp=T,iq=64,rob=128,prfi=192,prff=160,alu=6,mul=2,fpu=4,lsq=32,l1i=64k/4/0,l1d=64k/4/0,l2=8192k/8/4,uop=true,fuse=true"
	if got := dp.CacheKey(); got != want {
		t.Errorf("CacheKey drifted:\n got %s\nwant %s", got, want)
	}

	// A JSON round trip (the checkpoint boundary) must preserve the key.
	data, err := json.Marshal(dp)
	if err != nil {
		t.Fatal(err)
	}
	var back DesignPoint
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CacheKey() != dp.CacheKey() {
		t.Errorf("key changed across JSON: %s -> %s", dp.CacheKey(), back.CacheKey())
	}

	// Vendor choices key by vendor name, and distinct design points must
	// never collide.
	seen := map[string]string{}
	for _, c := range AllChoices() {
		k := DesignPoint{ISA: c, Cfg: ReferenceConfig()}.CacheKey()
		if prev, ok := seen[k]; ok && prev != c.Key() {
			t.Errorf("key collision: %s and %s share %q", prev, c.Key(), k)
		}
		seen[k] = c.Key()
	}
}

// TestChoiceByKey: every enumerable choice's key parses back to an
// equivalent choice, and junk keys are rejected.
func TestChoiceByKey(t *testing.T) {
	for _, c := range AllChoices() {
		got, ok := ChoiceByKey(c.Key())
		if !ok {
			t.Fatalf("ChoiceByKey(%q) not found", c.Key())
		}
		if got.Key() != c.Key() {
			t.Errorf("ChoiceByKey(%q) resolved to %q", c.Key(), got.Key())
		}
	}
	if _, ok := ChoiceByKey("x86-99D-64W-P"); ok {
		t.Error("invalid key resolved")
	}
	if keys := ChoiceKeys(); len(keys) < 27 {
		t.Errorf("ChoiceKeys returned %d keys, want >= 27 (reference + 26 composites)", len(keys))
	}
}

// TestStateCrossProcessRoundtrip drives the checkpoint warm-start path the
// way two different binaries would: the state crosses a real JSON file (not
// an in-memory Export/Import handoff), and the importing DB must serve both
// the reference metrics and the cached candidate without a single new model
// evaluation — the property compose-serve's warm start depends on.
func TestStateCrossProcessRoundtrip(t *testing.T) {
	ctx := context.Background()
	db1 := smallDB(3, nil)
	ref, err := db1.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	c1, err := db1.Evaluate(ctx, dp, ref)
	if err != nil {
		t.Fatal(err)
	}

	// Process boundary: serialize to a file, read it back fresh.
	path := filepath.Join(t.TempDir(), "state.json")
	data, err := json.Marshal(db1.Export())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Ref) != 3 {
		t.Fatalf("exported state carries %d reference metrics, want 3", len(st.Ref))
	}

	db2 := smallDB(3, nil)
	db2.Import(st)
	ref2, err := db2.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats.ModelEvals.Load(); got != st.Stats.ModelEvals {
		t.Errorf("warm reference ran %d new model evals, want 0", got-st.Stats.ModelEvals)
	}
	for i := range ref2 {
		if ref2[i].Cycles != ref[i].Cycles || ref2[i].Energy != ref[i].Energy {
			t.Errorf("restored reference metric %d differs: %+v vs %+v", i, ref2[i], ref[i])
		}
	}
	evals := db2.Stats.ModelEvals.Load()
	c2, err := db2.Evaluate(ctx, dp, ref2)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats.ModelEvals.Load(); got != evals {
		t.Errorf("restored candidate did not serve across the file boundary: %d new evals", got-evals)
	}
	if c2.DP.CacheKey() != c1.DP.CacheKey() {
		t.Errorf("candidate keyed differently across the file boundary: %s vs %s",
			c2.DP.CacheKey(), c1.DP.CacheKey())
	}
	if c2.MeanSpeedup() != c1.MeanSpeedup() {
		t.Errorf("restored candidate scores differently: %v vs %v", c2.MeanSpeedup(), c1.MeanSpeedup())
	}
}
