package eval

import (
	"fmt"
	"strings"

	"compisa/internal/metrics"
)

// Stats instruments the evaluation pipeline: per-stage work counters and
// duration histograms, plus hit/miss counters for both cache tiers. All
// fields are lock-free and safe for concurrent use; a DB carries one Stats
// and must not be copied.
type Stats struct {
	// Profiling stage.
	Compiles metrics.Counter // region builds + backend compilations attempted
	Verifies metrics.Counter // static-conformance verifications run
	Execs    metrics.Counter // functional executions attempted
	// VerifyFindings counts conformance violations the verification stage
	// found (every one turns the evaluation into a StageVerify fault, so a
	// non-zero count on a clean compiler is a codegen bug).
	VerifyFindings metrics.Counter
	// FactsComputed counts analysis-engine Facts artifacts recorded (only
	// when DB.Facts is enabled).
	FactsComputed metrics.Counter
	// Scoring stage.
	ModelEvals metrics.Counter // perfmodel evaluations (one per live region per design point)
	// Cache tiers.
	ProfileHits, ProfileMisses     metrics.Counter // profile tier (ISA key)
	CandidateHits, CandidateMisses metrics.Counter // candidate tier (ISA key, canonical config)
	// Fault handling.
	Retries         metrics.Counter
	Quarantines     metrics.Counter
	DegradedRegions metrics.Counter // regions scored at the Policy penalties
	// Durable tier (the write-through Persist hook).
	Persisted     metrics.Counter // candidates written through to the store
	PersistErrors metrics.Counter // write-throughs that failed (durability degraded)
	// Native-code executor (internal/jit). The engine owns the live
	// atomics; these counters hold history merged from resumed checkpoints,
	// and DB.StatsSnapshot folds the live engine values on top.
	JITRegions  metrics.Counter // programs compiled to native code
	JITRuns     metrics.Counter // executions served natively
	JITDeopts   metrics.Counter // instructions bounced to the interpreter mid-run
	JITBailouts metrics.Counter // executions declined entirely (interpreter ran)
	// Stage timings.
	CompileTime metrics.Histogram // successful build+compile passes
	VerifyTime  metrics.Histogram // static-conformance verification passes
	ExecTime    metrics.Histogram // successful functional executions
	ModelTime   metrics.Histogram // per-candidate scoring passes (all regions)
}

// StatsSnapshot is a point-in-time, serializable copy of Stats; it rides in
// checkpoint files so pipeline statistics accumulate across resumed runs.
type StatsSnapshot struct {
	Compiles        int64 `json:"compiles"`
	Verifies        int64 `json:"verifies,omitempty"`
	VerifyFindings  int64 `json:"verify_findings,omitempty"`
	FactsComputed   int64 `json:"facts_computed,omitempty"`
	Execs           int64 `json:"execs"`
	ModelEvals      int64 `json:"model_evals"`
	ProfileHits     int64 `json:"profile_hits"`
	ProfileMisses   int64 `json:"profile_misses"`
	CandidateHits   int64 `json:"candidate_hits"`
	CandidateMisses int64 `json:"candidate_misses"`
	Retries         int64 `json:"retries"`
	Quarantines     int64 `json:"quarantines"`
	DegradedRegions int64 `json:"degraded_regions"`
	Persisted       int64 `json:"persisted,omitempty"`
	PersistErrors   int64 `json:"persist_errors,omitempty"`
	JITRegions      int64 `json:"jit_regions,omitempty"`
	JITRuns         int64 `json:"jit_runs,omitempty"`
	JITDeopts       int64 `json:"jit_deopts,omitempty"`
	JITBailouts     int64 `json:"jit_bailouts,omitempty"`

	CompileTime metrics.HistogramSnapshot `json:"compile_time"`
	VerifyTime  metrics.HistogramSnapshot `json:"verify_time,omitempty"`
	ExecTime    metrics.HistogramSnapshot `json:"exec_time"`
	ModelTime   metrics.HistogramSnapshot `json:"model_time"`
}

// Snapshot copies the current counters and histograms.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Compiles:        s.Compiles.Load(),
		Verifies:        s.Verifies.Load(),
		VerifyFindings:  s.VerifyFindings.Load(),
		FactsComputed:   s.FactsComputed.Load(),
		Execs:           s.Execs.Load(),
		ModelEvals:      s.ModelEvals.Load(),
		ProfileHits:     s.ProfileHits.Load(),
		ProfileMisses:   s.ProfileMisses.Load(),
		CandidateHits:   s.CandidateHits.Load(),
		CandidateMisses: s.CandidateMisses.Load(),
		Retries:         s.Retries.Load(),
		Quarantines:     s.Quarantines.Load(),
		DegradedRegions: s.DegradedRegions.Load(),
		Persisted:       s.Persisted.Load(),
		PersistErrors:   s.PersistErrors.Load(),
		JITRegions:      s.JITRegions.Load(),
		JITRuns:         s.JITRuns.Load(),
		JITDeopts:       s.JITDeopts.Load(),
		JITBailouts:     s.JITBailouts.Load(),
		CompileTime:     s.CompileTime.Snapshot(),
		VerifyTime:      s.VerifyTime.Snapshot(),
		ExecTime:        s.ExecTime.Snapshot(),
		ModelTime:       s.ModelTime.Snapshot(),
	}
}

// Merge adds a snapshot's counts into the live stats (checkpoint resume).
func (s *Stats) Merge(sn StatsSnapshot) {
	s.Compiles.Add(sn.Compiles)
	s.Verifies.Add(sn.Verifies)
	s.VerifyFindings.Add(sn.VerifyFindings)
	s.FactsComputed.Add(sn.FactsComputed)
	s.Execs.Add(sn.Execs)
	s.ModelEvals.Add(sn.ModelEvals)
	s.ProfileHits.Add(sn.ProfileHits)
	s.ProfileMisses.Add(sn.ProfileMisses)
	s.CandidateHits.Add(sn.CandidateHits)
	s.CandidateMisses.Add(sn.CandidateMisses)
	s.Retries.Add(sn.Retries)
	s.Quarantines.Add(sn.Quarantines)
	s.DegradedRegions.Add(sn.DegradedRegions)
	s.Persisted.Add(sn.Persisted)
	s.PersistErrors.Add(sn.PersistErrors)
	s.JITRegions.Add(sn.JITRegions)
	s.JITRuns.Add(sn.JITRuns)
	s.JITDeopts.Add(sn.JITDeopts)
	s.JITBailouts.Add(sn.JITBailouts)
	s.CompileTime.Merge(sn.CompileTime)
	s.VerifyTime.Merge(sn.VerifyTime)
	s.ExecTime.Merge(sn.ExecTime)
	s.ModelTime.Merge(sn.ModelTime)
}

// IsZero reports whether the snapshot records no activity at all (used to
// keep empty stats out of checkpoint files).
func (sn StatsSnapshot) IsZero() bool {
	return sn.Compiles == 0 && sn.Verifies == 0 && sn.VerifyFindings == 0 &&
		sn.FactsComputed == 0 &&
		sn.Execs == 0 && sn.ModelEvals == 0 &&
		sn.ProfileHits == 0 && sn.ProfileMisses == 0 &&
		sn.CandidateHits == 0 && sn.CandidateMisses == 0 &&
		sn.Retries == 0 && sn.Quarantines == 0 && sn.DegradedRegions == 0 &&
		sn.Persisted == 0 && sn.PersistErrors == 0 &&
		sn.JITRuns == 0 && sn.JITBailouts == 0 &&
		sn.CompileTime.Count == 0 && sn.ExecTime.Count == 0 && sn.ModelTime.Count == 0
}

// Format renders the snapshot for `compose-explore -stats`: per-stage
// counts and timings plus cache hit rates per tier.
func (sn StatsSnapshot) Format() string {
	var sb strings.Builder
	sb.WriteString("evaluation pipeline stats\n")
	fmt.Fprintf(&sb, "  compile stage:    %8d passes   %s\n", sn.Compiles, sn.CompileTime)
	if sn.Verifies > 0 {
		fmt.Fprintf(&sb, "  verify stage:     %8d checks   %s  (%d findings)\n",
			sn.Verifies, sn.VerifyTime, sn.VerifyFindings)
	}
	fmt.Fprintf(&sb, "  exec stage:       %8d runs     %s\n", sn.Execs, sn.ExecTime)
	fmt.Fprintf(&sb, "  model stage:      %8d evals    %s\n", sn.ModelEvals, sn.ModelTime)
	fmt.Fprintf(&sb, "  profile cache:    %8d hits %8d misses  (%s hit rate)\n",
		sn.ProfileHits, sn.ProfileMisses, metrics.Rate(sn.ProfileHits, sn.ProfileMisses))
	fmt.Fprintf(&sb, "  candidate cache:  %8d hits %8d misses  (%s hit rate)\n",
		sn.CandidateHits, sn.CandidateMisses, metrics.Rate(sn.CandidateHits, sn.CandidateMisses))
	fmt.Fprintf(&sb, "  fault handling:   %8d retries %6d quarantines %6d degraded regions\n",
		sn.Retries, sn.Quarantines, sn.DegradedRegions)
	if sn.Persisted > 0 || sn.PersistErrors > 0 {
		fmt.Fprintf(&sb, "  durable store:    %8d persisted %6d persist errors\n",
			sn.Persisted, sn.PersistErrors)
	}
	if sn.JITRuns > 0 || sn.JITBailouts > 0 {
		fmt.Fprintf(&sb, "  jit executor:     %8d native runs %4d compiled %6d deopts %6d bailouts\n",
			sn.JITRuns, sn.JITRegions, sn.JITDeopts, sn.JITBailouts)
	}
	return sb.String()
}
