package eval

import (
	"context"
	"reflect"
	"testing"

	"compisa/internal/cpu"
	"compisa/internal/fault"
)

// batchCfgs returns a configuration spread that exercises every term the
// Scorer precomputes: both issue disciplines, all predictor organizations,
// both fusion/uop-cache settings, and every profiled cache option.
func batchCfgs() []cpu.CoreConfig {
	base := ReferenceConfig()
	narrow := base
	narrow.Width, narrow.IntALU, narrow.Predictor = 2, 3, cpu.PredGShare
	inord := base
	inord.OoO, inord.Width, inord.Predictor = false, 2, cpu.PredLocal
	inord.UopCache, inord.Fusion = false, false
	bigmem := base
	bigmem.L1I, bigmem.L1D, bigmem.L2 = cpu.L1Cfg64k, cpu.L1Cfg64k, cpu.L2Cfg8M
	tiny := inord
	tiny.Width, tiny.IntALU, tiny.FPALU = 1, 1, 1
	return []cpu.CoreConfig{base, narrow, inord, bigmem, tiny}
}

// TestEvaluateBatchMatchesOracle: EvaluateBatch must be bit-identical to the
// retained per-configuration oracle (evaluate) for every (choice, config)
// pair — same metrics, speedups, EDPs, and degradation flags, down to the
// float bit pattern.
func TestEvaluateBatchMatchesOracle(t *testing.T) {
	db := smallDB(3, nil)
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := batchCfgs()
	for _, choice := range []ISAChoice{X8664Choice(), injectable(t)} {
		batch, err := db.EvaluateBatch(ctx, choice, cfgs, ref)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			dp := DesignPoint{ISA: choice, Cfg: cfg}
			oracle, err := db.evaluate(ctx, dp, ref)
			if err != nil {
				t.Fatal(err)
			}
			got := batch[i]
			if got.AreaMM2 != oracle.AreaMM2 || got.PeakW != oracle.PeakW {
				t.Errorf("%s cfg %d: area/peak %v/%v, oracle %v/%v",
					choice.Key(), i, got.AreaMM2, got.PeakW, oracle.AreaMM2, oracle.PeakW)
			}
			if !reflect.DeepEqual(got.M, oracle.M) {
				t.Errorf("%s cfg %d: metrics diverge from oracle:\nbatch  %+v\noracle %+v",
					choice.Key(), i, got.M, oracle.M)
			}
			if !reflect.DeepEqual(got.Speedup, oracle.Speedup) ||
				!reflect.DeepEqual(got.NormEDP, oracle.NormEDP) ||
				!reflect.DeepEqual(got.Degraded, oracle.Degraded) {
				t.Errorf("%s cfg %d: speedup/EDP/degraded diverge from oracle",
					choice.Key(), i)
			}
		}
	}
}

// TestEvaluateBatchMatchesOracleDegraded: with every non-reference compile
// quarantined, the batch path must degrade exactly like the oracle —
// penalties, placeholder metrics, and Degraded flags all identical.
func TestEvaluateBatchMatchesOracleDegraded(t *testing.T) {
	in := injector(t, fault.Config{Seed: 11, Rate: 1, Kinds: []fault.Kind{fault.KindCompile}})
	db := smallDB(2, in)
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx) // reference ISA is injection-exempt
	if err != nil {
		t.Fatal(err)
	}
	choice := injectable(t)
	cfgs := batchCfgs()[:2]
	batch, err := db.EvaluateBatch(ctx, choice, cfgs, ref)
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for i, cfg := range cfgs {
		oracle, err := db.evaluate(ctx, DesignPoint{ISA: choice, Cfg: cfg}, ref)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if !reflect.DeepEqual(got.M, oracle.M) ||
			!reflect.DeepEqual(got.Speedup, oracle.Speedup) ||
			!reflect.DeepEqual(got.NormEDP, oracle.NormEDP) ||
			!reflect.DeepEqual(got.Degraded, oracle.Degraded) {
			t.Errorf("cfg %d: degraded batch diverges from oracle:\nbatch  %+v\noracle %+v",
				i, got, oracle)
		}
		for _, d := range got.Degraded {
			sawDegraded = sawDegraded || d
		}
	}
	if !sawDegraded {
		t.Fatal("injector quarantined nothing; degraded path not exercised")
	}
}
