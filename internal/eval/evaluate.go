package eval

import (
	"context"
	"fmt"
	"time"

	"compisa/internal/cpu"
	"compisa/internal/fault"
	"compisa/internal/par"
	"compisa/internal/perfmodel"
	"compisa/internal/power"
)

// Metric is the evaluated outcome of one region on one design point.
type Metric struct {
	Cycles float64
	Energy float64 // joules
	Perf   perfmodel.Result
}

// Candidate is a fully evaluated single-core design point. Candidates are
// immutable once evaluated: the candidate cache and every search share the
// same pointers.
type Candidate struct {
	DP      DesignPoint
	AreaMM2 float64
	PeakW   float64
	// Per-region metrics, indexed like DB.Regions.
	M []Metric
	// Speedup[r] = reference cycles / candidate cycles for region r.
	Speedup []float64
	// NormEDP[r] = candidate E*D / reference E*D.
	NormEDP []float64
	// Degraded[r] marks regions scored at the Policy penalties because the
	// (region, ISA) pair is quarantined (or its model evaluation failed).
	Degraded []bool
}

// MeanSpeedup is the arithmetic-mean speedup across regions (region weights
// applied by the schedulers, not here).
func (c *Candidate) MeanSpeedup() float64 {
	s := 0.0
	for _, v := range c.Speedup {
		s += v
	}
	return s / float64(len(c.Speedup))
}

// ReferenceMetrics evaluates the normalization core (x86-64 on the reference
// configuration) over all regions, computing once and memoizing: the result
// is the identity the candidate cache is keyed against. It is strict: the
// reference ISA is injection-exempt, and any failure here is fatal because
// every normalized metric depends on it.
func (db *DB) ReferenceMetrics(ctx context.Context) ([]Metric, error) {
	db.mu.Lock()
	ref := db.ref
	db.mu.Unlock()
	if ref != nil {
		return ref, nil
	}
	dp := DesignPoint{ISA: X8664Choice(), Cfg: ReferenceConfig()}
	c, err := db.Evaluate(ctx, dp, nil)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	if db.ref == nil {
		db.ref = c.M
	}
	ref = db.ref
	db.mu.Unlock()
	return ref, nil
}

// isOwnRef reports whether ref is the DB's memoized reference slice; only
// evaluations normalized against it are cacheable (a foreign ref would bind
// cached speedups to a different normalization basis).
func (db *DB) isOwnRef(ref []Metric) bool {
	if len(ref) == 0 {
		return false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ref != nil && &db.ref[0] == &ref[0]
}

// Evaluate computes a candidate for one design point, normalized against the
// reference metrics (see ReferenceMetrics). Evaluations against the DB's own
// reference are memoized in the candidate cache tier, keyed by
// DesignPoint.CacheKey, so repeated sweeps over overlapping design points
// (different budgets, organizations, experiment drivers) share one scoring
// pass. Quarantined regions degrade to the Policy penalties (Speedup =
// SpeedupPenalty, NormEDP = EDPPenalty, with Cycles/Energy back-derived from
// the reference) instead of failing; with a nil ref (the reference
// evaluation itself) any failure is an error.
func (db *DB) Evaluate(ctx context.Context, dp DesignPoint, ref []Metric) (*Candidate, error) {
	cs, err := db.EvaluateBatch(ctx, dp.ISA, []cpu.CoreConfig{dp.Cfg}, ref)
	if err != nil {
		return nil, err
	}
	return cs[0], nil
}

// EvaluateBatch evaluates every configuration of one ISA choice in a single
// pass: one profile fetch and one perfmodel.Scorer per region are shared
// across the whole configuration set, so the configuration-independent terms
// of the interval model (micro-op mix fractions, mispredict volumes, naive
// stall sums) are computed once instead of ~180 times per profile. It is the
// batch counterpart of Evaluate — same candidate cache tier, same degradation
// policy, same stats — and bit-identical to the per-configuration path (see
// the evaluate oracle below and TestEvaluateBatchMatchesOracle). The returned
// slice is indexed like cfgs.
func (db *DB) EvaluateBatch(ctx context.Context, choice ISAChoice, cfgs []cpu.CoreConfig, ref []Metric) ([]*Candidate, error) {
	out := make([]*Candidate, len(cfgs))
	cacheable := db.isOwnRef(ref)
	var keys []string
	missing := make([]int, 0, len(cfgs))
	if cacheable {
		keys = make([]string, len(cfgs))
		db.mu.Lock()
		for i := range cfgs {
			keys[i] = DesignPoint{ISA: choice, Cfg: cfgs[i]}.CacheKey()
			if c, ok := db.cands[keys[i]]; ok {
				out[i] = c
			} else {
				missing = append(missing, i)
			}
		}
		db.mu.Unlock()
		db.Stats.CandidateHits.Add(int64(len(cfgs) - len(missing)))
		db.Stats.CandidateMisses.Add(int64(len(missing)))
		if len(missing) == 0 {
			return out, nil
		}
	} else {
		for i := range cfgs {
			missing = append(missing, i)
		}
	}

	ps, err := db.Profiles(ctx, choice)
	if err != nil {
		return nil, err
	}
	pol := db.Policy.WithDefaults()
	n := len(db.Regions)
	tr := choice.Traits()

	// One scorer per region, built once for the whole configuration set. A
	// construction error (empty profile) is a model error for every
	// configuration and is surfaced per region below, exactly where the
	// per-configuration path would hit it.
	scorers := make([]*perfmodel.Scorer, n)
	scorerErrs := make([]error, n)
	for r := 0; r < n; r++ {
		if ps[r] == nil {
			continue
		}
		scorers[r], scorerErrs[r] = perfmodel.NewScorer(ps[r])
	}

	modelStart := time.Now()
	for _, i := range missing {
		dp := DesignPoint{ISA: choice, Cfg: cfgs[i]}
		c := &Candidate{
			DP:       dp,
			AreaMM2:  dp.Area(),
			PeakW:    dp.Peak(),
			M:        make([]Metric, n),
			Speedup:  make([]float64, n),
			NormEDP:  make([]float64, n),
			Degraded: make([]bool, n),
		}
		degrade := func(r int) {
			db.Stats.DegradedRegions.Inc()
			c.Degraded[r] = true
			c.Speedup[r] = pol.SpeedupPenalty
			c.NormEDP[r] = pol.EDPPenalty
			// Back-derive placeholder metrics consistent with the penalties:
			// D = refD/SpeedupPenalty and E*D = EDPPenalty*refE*refD.
			c.M[r] = Metric{
				Cycles: ref[r].Cycles / pol.SpeedupPenalty,
				Energy: ref[r].Energy * pol.EDPPenalty * pol.SpeedupPenalty,
			}
		}
		for r := 0; r < n; r++ {
			if ps[r] == nil {
				if ref == nil {
					return nil, fmt.Errorf("eval: reference region %s unavailable", db.Regions[r].Name)
				}
				degrade(r)
				continue
			}
			db.Stats.ModelEvals.Inc()
			var perf perfmodel.Result
			perr := scorerErrs[r]
			if perr == nil {
				perf, perr = scorers[r].Cycles(dp.Cfg)
			}
			if perr != nil {
				merr := fault.Wrap(fault.StageModel, db.Regions[r].Name, dp.ISA.Key(), perr)
				if ref == nil {
					return nil, merr
				}
				db.logf("eval: degrading %s on %s: %v", db.Regions[r].Name, dp, merr)
				degrade(r)
				continue
			}
			en := power.Energy(tr, dp.Cfg, ps[r], perf)
			c.M[r] = Metric{Cycles: perf.Cycles, Energy: en.Total, Perf: perf}
			if ref != nil {
				c.Speedup[r] = ref[r].Cycles / perf.Cycles
				c.NormEDP[r] = (en.Total * perf.Cycles) / (ref[r].Energy * ref[r].Cycles)
			}
		}
		if cacheable {
			db.mu.Lock()
			// Existing entries win so concurrent evaluations of one design
			// point converge on a single shared candidate.
			won := false
			if prev, ok := db.cands[keys[i]]; ok {
				c = prev
			} else {
				db.cands[keys[i]] = c
				won = true
			}
			db.mu.Unlock()
			// Write-through the winning entry only: the durable log gets each
			// evaluated point once, as soon as it exists.
			if won {
				db.persist(keys[i], c)
			}
		}
		out[i] = c
	}
	db.Stats.ModelTime.Since(modelStart)
	return out, nil
}

// evaluate is the per-configuration scoring stage the batch path replaced.
// It is kept verbatim as the differential oracle: it calls perfmodel.Cycles
// directly (no precomputed Scorer terms) and skips the candidate cache, so
// tests can prove the batch path bit-identical against it.
func (db *DB) evaluate(ctx context.Context, dp DesignPoint, ref []Metric) (*Candidate, error) {
	ps, err := db.Profiles(ctx, dp.ISA)
	if err != nil {
		return nil, err
	}
	pol := db.Policy.WithDefaults()
	n := len(db.Regions)
	c := &Candidate{
		DP:       dp,
		AreaMM2:  dp.Area(),
		PeakW:    dp.Peak(),
		M:        make([]Metric, n),
		Speedup:  make([]float64, n),
		NormEDP:  make([]float64, n),
		Degraded: make([]bool, n),
	}
	tr := dp.ISA.Traits()
	degrade := func(r int) {
		db.Stats.DegradedRegions.Inc()
		c.Degraded[r] = true
		c.Speedup[r] = pol.SpeedupPenalty
		c.NormEDP[r] = pol.EDPPenalty
		// Back-derive placeholder metrics consistent with the penalties:
		// D = refD/SpeedupPenalty and E*D = EDPPenalty*refE*refD.
		c.M[r] = Metric{
			Cycles: ref[r].Cycles / pol.SpeedupPenalty,
			Energy: ref[r].Energy * pol.EDPPenalty * pol.SpeedupPenalty,
		}
	}
	modelStart := time.Now()
	for r := 0; r < n; r++ {
		if ps[r] == nil {
			if ref == nil {
				return nil, fmt.Errorf("eval: reference region %s unavailable", db.Regions[r].Name)
			}
			degrade(r)
			continue
		}
		db.Stats.ModelEvals.Inc()
		perf, err := perfmodel.Cycles(ps[r], dp.Cfg)
		if err != nil {
			merr := fault.Wrap(fault.StageModel, db.Regions[r].Name, dp.ISA.Key(), err)
			if ref == nil {
				return nil, merr
			}
			db.logf("eval: degrading %s on %s: %v", db.Regions[r].Name, dp, merr)
			degrade(r)
			continue
		}
		en := power.Energy(tr, dp.Cfg, ps[r], perf)
		c.M[r] = Metric{Cycles: perf.Cycles, Energy: en.Total, Perf: perf}
		if ref != nil {
			c.Speedup[r] = ref[r].Cycles / perf.Cycles
			c.NormEDP[r] = (en.Total * perf.Cycles) / (ref[r].Energy * ref[r].Cycles)
		}
	}
	db.Stats.ModelTime.Since(modelStart)
	return c, nil
}

// Candidates evaluates every (ISA choice, configuration) pair on the par
// pool, one EvaluateBatch per choice: profiling parallelizes across choices
// (the singleflight cache dedupes concurrent interest in one ISA) while each
// choice's full configuration set is scored in a single batch pass. The
// result is choice-major, configuration-minor — the same order the per-point
// version produced.
func (db *DB) Candidates(ctx context.Context, choices []ISAChoice, cfgs []cpu.CoreConfig, ref []Metric) ([]*Candidate, error) {
	perChoice, err := par.Map(ctx, len(choices), 0, func(i int) ([]*Candidate, error) {
		return db.EvaluateBatch(ctx, choices[i], cfgs, ref)
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Candidate, 0, len(choices)*len(cfgs))
	for _, cs := range perChoice {
		out = append(out, cs...)
	}
	return out, nil
}
