package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapResultsInOrder(t *testing.T) {
	got, err := Map(context.Background(), 100, 4, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(i int) (int, error) {
		t.Error("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestMapFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(context.Background(), 50, 2, func(i int) (int, error) {
		if i == 7 || i == 30 {
			return 0, fmt.Errorf("index %d: %w", i, sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want wrapped sentinel", err)
	}
	// The reported error is the lowest-index failure among the calls that
	// ran; with indices handed out in order, index 7 always runs.
	if want := "index 7"; err == nil || err.Error()[:len(want)] != want {
		t.Fatalf("got %q, want the lowest-index error (index 7)", err)
	}
}

func TestMapFailFastStopsUnstartedWork(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(context.Background(), 10_000, 1, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("fail immediately")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	// With one worker failing on the first index, nearly all of the 10k
	// indices must be skipped (a small scheduling margin is fine).
	if n := calls.Load(); n > 10 {
		t.Fatalf("%d calls ran after the first failure; fail-fast did not stop work", n)
	}
}

func TestMapPanicRecovered(t *testing.T) {
	_, err := Map(context.Background(), 8, 4, func(i int) (int, error) {
		if i == 3 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Index != 3 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Index: %d, Value: %v, Stack: %d bytes}", pe.Index, pe.Value, len(pe.Stack))
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		<-started
		cancel()
	}()
	_, err := Map(ctx, 1000, 2, func(i int) (int, error) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), 64, limit, func(i int) (int, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEach(context.Background(), 10, 2, func(i int) error {
		if i == 4 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if err := ForEach(context.Background(), 10, 2, func(i int) error { return nil }); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestMapAllRunsEverything(t *testing.T) {
	sentinel := errors.New("boom")
	var calls atomic.Int64
	res, errs := MapAll(context.Background(), 20, 4, func(i int) (int, error) {
		calls.Add(1)
		if i%3 == 0 {
			return 0, fmt.Errorf("%d: %w", i, sentinel)
		}
		return i * 2, nil
	})
	if calls.Load() != 20 {
		t.Fatalf("%d calls, want 20 (no fail-fast)", calls.Load())
	}
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			if !errors.Is(errs[i], sentinel) {
				t.Errorf("errs[%d] = %v, want sentinel", i, errs[i])
			}
		} else if errs[i] != nil || res[i] != i*2 {
			t.Errorf("index %d: res %d errs %v, want %d nil", i, res[i], errs[i], i*2)
		}
	}
}

func TestMapAllCancellationMarksRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any work starts
	res, errs := MapAll(ctx, 10, 2, func(i int) (int, error) {
		return i, nil
	})
	if len(res) != 10 || len(errs) != 10 {
		t.Fatalf("lengths %d/%d, want 10/10", len(res), len(errs))
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}

func TestMapAllPanicPerIndex(t *testing.T) {
	_, errs := MapAll(context.Background(), 5, 2, func(i int) (int, error) {
		if i == 2 {
			panic(i)
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(errs[2], &pe) || pe.Index != 2 {
		t.Fatalf("errs[2] = %v, want *PanicError at index 2", errs[2])
	}
	for i, err := range errs {
		if i != 2 && err != nil {
			t.Errorf("errs[%d] = %v, want nil", i, err)
		}
	}
}
