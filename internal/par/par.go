// Package par is the parallelism layer under the evaluation pipeline
// (par → eval → explore; see DESIGN.md, "Pipeline layering"): a generic
// bounded, context-aware parallel map with panic recovery and first-error
// propagation. It replaces the hand-rolled semaphore+WaitGroup pools that
// used to be copied across the exploration code.
//
// All entry points share the same worker model: indices [0, n) are handed
// out in order from an atomic counter to at most `limit` workers, so work
// starts in index order and the concurrency bound is exact. A panic inside
// the callback is recovered into a *PanicError instead of crashing the
// process, and context cancellation stops unstarted work promptly.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultLimit is the worker bound used when a caller passes limit <= 0:
// one worker per available CPU.
func DefaultLimit() int { return runtime.GOMAXPROCS(0) }

// PanicError wraps a panic recovered inside a worker callback, preserving
// the panicking index, value, and stack.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: recovered panic at index %d: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map evaluates fn(i) for every i in [0, n) with at most limit calls in
// flight (limit <= 0 uses DefaultLimit) and returns the results. The first
// failure stops unstarted work and is returned (the lowest-index error
// among the calls that ran); on a clean run every result slot is valid.
// Cancelling ctx aborts unstarted work and surfaces ctx.Err(). A panic in
// fn is returned as a *PanicError.
func Map[T any](ctx context.Context, n, limit int, fn func(i int) (T, error)) ([]T, error) {
	res := make([]T, n)
	errs := run(ctx, n, limit, true, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		res[i] = v
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ForEach is Map without results: it runs fn over [0, n) with bounded
// concurrency and returns the lowest-index error, if any.
func ForEach(ctx context.Context, n, limit int, fn func(i int) error) error {
	_, err := Map(ctx, n, limit, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// MapAll is Map without fail-fast: every index runs to completion (unless
// ctx is cancelled, which marks the remaining slots with ctx.Err()), and
// the per-index errors are returned alongside the results so callers can
// triage failures individually — the retry/quarantine policy of the
// evaluation pipeline needs to know exactly which pairs failed, not just
// that one did. Panics are recovered into *PanicError like Map.
func MapAll[T any](ctx context.Context, n, limit int, fn func(i int) (T, error)) ([]T, []error) {
	res := make([]T, n)
	errs := run(ctx, n, limit, false, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		res[i] = v
		return nil
	})
	return res, errs
}

// run is the shared worker pool. With failFast set, the first error (or
// cancellation) prevents unstarted indices from running; their error slots
// stay nil, which is safe because a slot can only be skipped after some
// lower-or-equal pulled index recorded a real error.
func run(ctx context.Context, n, limit int, failFast bool, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if limit <= 0 {
		limit = DefaultLimit()
	}
	if limit > n {
		limit = n
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(i)
	}
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failFast && stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					if failFast {
						stop.Store(true)
						return
					}
					continue
				}
				if err := call(i); err != nil {
					errs[i] = err
					if failFast {
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return errs
}
