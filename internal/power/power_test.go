package power

import (
	"testing"

	"compisa/internal/cpu"
	"compisa/internal/isa"
)

func refConfig() cpu.CoreConfig {
	return cpu.CoreConfig{
		OoO: true, Width: 2, Predictor: cpu.PredTournament,
		IQ: 32, ROB: 64, PRFInt: 96, PRFFP: 64,
		IntALU: 3, IntMul: 1, FPALU: 2, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: true, Fusion: true,
	}
}

func tr(fs isa.FeatureSet) Traits { return Traits{FS: fs} }

func TestSIMDRemovalSavings(t *testing.T) {
	cfg := refConfig()
	x86 := isa.MustNew(isa.FullX86, 64, 16, isa.PartialPredication)
	micro := isa.MustNew(isa.MicroX86, 64, 16, isa.PartialPredication)
	aX, aU := Area(tr(x86), cfg), Area(tr(micro), cfg)
	pX, pU := Peak(tr(x86), cfg), Peak(tr(micro), cfg)
	// Paper: no-SSE cores save ~7.4% peak power and ~17.3% area
	// (core-level; microx86 also drops the complex decoder).
	areaSave := 1 - aU.Total()/aX.Total()
	powerSave := 1 - pU.Total()/pX.Total()
	if areaSave < 0.05 || areaSave > 0.30 {
		t.Errorf("microx86 area saving %.1f%% out of plausible range (paper ~17.3%%)", 100*areaSave)
	}
	if powerSave < 0.02 || powerSave > 0.15 {
		t.Errorf("microx86 power saving %.1f%% out of plausible range (paper ~7.4-9.8%%)", 100*powerSave)
	}
}

func TestWidthPowerCost(t *testing.T) {
	cfg := refConfig()
	w32 := isa.MustNew(isa.MicroX86, 32, 32, isa.PartialPredication)
	w64 := isa.MustNew(isa.MicroX86, 64, 32, isa.PartialPredication)
	p32, p64 := Peak(tr(w32), cfg), Peak(tr(w64), cfg)
	// Paper: doubling register width costs up to ~6.4% power.
	cost := p64.Total()/p32.Total() - 1
	if cost <= 0 || cost > 0.12 {
		t.Errorf("64-bit power cost %.1f%% out of plausible range (paper up to 6.4%%)", 100*cost)
	}
}

func TestDecoderRTLDeltas(t *testing.T) {
	cfg := refConfig()
	x8664 := Peak(tr(isa.X8664), cfg)
	superset := Peak(tr(isa.Superset), cfg)
	micro32 := Peak(tr(isa.MicroX86Min), cfg)
	// Superset decoder costs more than x86-64's; microx86-32's costs less.
	if superset.Decode <= x8664.Decode {
		t.Error("superset decoder must cost more peak power than x86-64's")
	}
	if micro32.Decode >= x8664.Decode {
		t.Error("microx86-32 decoder must cost less than x86-64's")
	}
	// Both deltas are small fractions of the core (paper: +0.3%/-0.66%
	// peak power, +0.46%/-1.12% area, ILD +0.87%/+0.65%).
	if d := (superset.Decode - x8664.Decode) / x8664.Total(); d > 0.05 {
		t.Errorf("superset decode delta %.2f%% of core too large", 100*d)
	}
	aX, aS, aM := Area(tr(isa.X8664), cfg), Area(tr(isa.Superset), cfg), Area(tr(isa.MicroX86Min), cfg)
	if aS.Decode <= aX.Decode || aM.Decode >= aX.Decode {
		t.Error("decoder area ordering: superset > x86-64 > microx86-32")
	}
}

func TestFixedLengthDropsILD(t *testing.T) {
	cfg := refConfig()
	varlen := Traits{FS: isa.X86izedAlpha}
	fixed := Traits{FS: isa.X86izedAlpha, FixedLength: true}
	if Peak(fixed, cfg).Decode >= Peak(varlen, cfg).Decode {
		t.Error("fixed-length ISAs must save the ILD's power")
	}
	if Area(fixed, cfg).Decode >= Area(varlen, cfg).Decode {
		t.Error("fixed-length ISAs must save the ILD's area")
	}
}

func TestRegisterDepthCostsDecodeAndRF(t *testing.T) {
	cfg := refConfig()
	d16 := isa.MustNew(isa.MicroX86, 64, 16, isa.PartialPredication)
	d64 := isa.MustNew(isa.MicroX86, 64, 64, isa.PartialPredication)
	a16, a64 := Area(tr(d16), cfg), Area(tr(d64), cfg)
	if a64.Decode <= a16.Decode {
		t.Error("REXBC support must cost decoder area")
	}
	if a64.RegFile <= a16.RegFile {
		t.Error("deeper architectural state must cost register-file area")
	}
}

func TestBiggerConfigsCostMore(t *testing.T) {
	small := cpu.CoreConfig{
		OoO: false, Width: 1, Predictor: cpu.PredLocal,
		IQ: 32, ROB: 64, PRFInt: 64, PRFFP: 16,
		IntALU: 1, IntMul: 1, FPALU: 1, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: false, Fusion: true,
	}
	big := cpu.CoreConfig{
		OoO: true, Width: 4, Predictor: cpu.PredTournament,
		IQ: 64, ROB: 128, PRFInt: 192, PRFFP: 160,
		IntALU: 6, IntMul: 2, FPALU: 4, LSQ: 32,
		L1I: cpu.L1Cfg64k, L1D: cpu.L1Cfg64k, L2: cpu.L2Cfg8M,
		UopCache: true, Fusion: true,
	}
	fs := isa.X8664
	if Area(tr(fs), big).Total() <= Area(tr(fs), small).Total()*1.5 {
		t.Error("big OoO core should be much larger than little in-order core")
	}
	if Peak(tr(fs), big).Total() <= Peak(tr(fs), small).Total()*1.5 {
		t.Error("big OoO core should draw much more peak power")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{Fetch: 1, Decode: 2, BranchPred: 3, Scheduler: 4, RegFile: 5,
		FU: 6, LSQ: 7, L1I: 8, L1D: 9, L2: 10}
	if b.Core() != 28 {
		t.Errorf("Core() = %f", b.Core())
	}
	if b.Total() != 55 {
		t.Errorf("Total() = %f", b.Total())
	}
}
