// Package power implements the analytic area, peak-power, and energy model
// standing in for the paper's McPAT + Synopsys RTL synthesis flow. Per-core
// area and peak power are sums of per-structure terms parameterized by the
// microarchitectural configuration and the composite feature set; runtime
// energy is activity-based, accumulated from a profile and a predicted cycle
// count, with the per-stage breakdown of Figures 10/11.
//
// The decoder terms are calibrated to the paper's published RTL deltas
// (Section V.B): the superset decoder costs +0.3% core peak power and +0.46%
// core area over the x86-64 decoder, the microx86-32 decoder saves 0.66% and
// 1.12%, and the ILD customizations cost +0.87% and +0.65%. Removing the
// SIMD units saves ~7.4% peak power and ~17.3% area (Section III), and
// 64-bit register files cost up to ~6.4% power over 32-bit.
package power

import (
	"compisa/internal/cpu"
	"compisa/internal/isa"
)

// Breakdown is a per-structure decomposition of area (mm²), peak power (W),
// or energy (J).
type Breakdown struct {
	Fetch      float64 // fetch pipe + micro-op cache
	Decode     float64 // ILD + decoders + MSROM
	BranchPred float64
	Scheduler  float64 // rename, IQ, ROB (and scoreboard on in-order)
	RegFile    float64
	FU         float64
	LSQ        float64
	L1I        float64
	L1D        float64
	L2         float64 // per-core share of the shared L2
}

// Core sums the processor structures, excluding the caches — the quantity
// Figure 10 plots ("combined core area, without caches").
func (b Breakdown) Core() float64 {
	return b.Fetch + b.Decode + b.BranchPred + b.Scheduler + b.RegFile + b.FU + b.LSQ
}

// Total sums everything including caches.
func (b Breakdown) Total() float64 { return b.Core() + b.L1I + b.L1D + b.L2 }

// Traits captures the ISA properties the hardware model depends on; vendor
// ISAs override FixedLength (no instruction-length decoder needed).
type Traits struct {
	FS          isa.FeatureSet
	FixedLength bool
}

// decoderCounts returns the simple (1:1) and complex (1:4) decoder counts
// for a feature set at a fetch width (Table I: 1-3 1:1 decoders, one 1:4
// decoder, MSROM). microx86 replaces the complex decoder with another simple
// one and forgoes the microsequencing ROM (Section V.B).
func decoderCounts(tr Traits, width int) (simple, complex int, msrom bool) {
	n := 1
	if width >= 2 {
		n = 2
	}
	if width >= 4 {
		n = 3
	}
	if tr.FS.Complexity == isa.MicroX86 {
		return n, 0, false
	}
	return n - 1, 1, true
}

// cacheArea returns mm² for a cache level.
func cacheArea(c cpu.CacheCfg, shared bool) float64 {
	kb := float64(c.SizeKB)
	if shared {
		kb /= 4 // per-core share of the 4-core CMP's L2
	}
	// ~0.0035 mm²/KB for L2-class SRAM, small overhead per cache.
	if shared {
		return 0.20 + kb*0.0033
	}
	return 0.15 + kb*0.020
}

// Area returns the per-structure area of a core in mm².
func Area(tr Traits, cfg cpu.CoreConfig) Breakdown {
	fs := tr.FS
	var b Breakdown
	w := float64(cfg.Width)
	w64 := 0.0
	if fs.Width == 64 {
		w64 = 1.0
	}

	b.Fetch = 0.55 + 0.16*w
	if cfg.UopCache {
		b.Fetch += 0.5
	}

	simple, cplx, msrom := decoderCounts(tr, cfg.Width)
	b.Decode = 0.20*float64(simple) + 0.48*float64(cplx)
	if msrom {
		b.Decode += 0.38
	}
	if !tr.FixedLength {
		b.Decode += 0.30 + 0.05*w // instruction length decoder
		if fs.Depth > 16 || fs.Predication == isa.FullPredication {
			b.Decode += 0.10 // wider length/valid-begin muxes (REXBC, pred)
		}
	}
	if fs.Depth > 16 {
		b.Decode += 0.045 // REXBC prefix decode comparators
	}
	if fs.Predication == isa.FullPredication {
		b.Decode += 0.035 // predicate prefix decode
	}

	switch cfg.Predictor {
	case cpu.PredLocal:
		b.BranchPred = 0.40
	case cpu.PredGShare:
		b.BranchPred = 0.36
	default:
		b.BranchPred = 0.78
	}

	if cfg.OoO {
		b.Scheduler = 0.40 + 0.20*w + 0.010*float64(cfg.IQ) + 0.007*float64(cfg.ROB)
	} else {
		b.Scheduler = 0.22 + 0.09*w
	}

	intBits := float64(cfg.PRFInt * fs.Width)
	fpBits := float64(cfg.PRFFP * 64)
	if fs.HasSIMD() {
		fpBits = float64(cfg.PRFFP * 128)
	}
	b.RegFile = (intBits + fpBits) * 0.00011
	// The architectural state scales with register depth even with
	// renaming (rename map, retirement state).
	b.RegFile += float64(fs.Depth*fs.Width) * 0.00006

	alu := 0.22 + 0.10*w64
	b.FU = float64(cfg.IntALU)*alu + float64(cfg.IntMul)*0.42 + float64(cfg.FPALU)*0.52
	if fs.HasSIMD() {
		b.FU += float64(cfg.FPALU) * 0.85 // 128-bit SIMD datapaths
	}

	b.LSQ = 0.16 + 0.011*float64(cfg.LSQ)

	b.L1I = cacheArea(cfg.L1I, false)
	b.L1D = cacheArea(cfg.L1D, false)
	b.L2 = cacheArea(cfg.L2, true)
	return b
}

// Peak returns the per-structure peak power of a core in watts.
func Peak(tr Traits, cfg cpu.CoreConfig) Breakdown {
	fs := tr.FS
	var b Breakdown
	w := float64(cfg.Width)
	w64 := 0.0
	if fs.Width == 64 {
		w64 = 1.0
	}

	b.Fetch = 0.38 + 0.26*w
	if cfg.UopCache {
		b.Fetch += 0.20
	}

	simple, cplx, msrom := decoderCounts(tr, cfg.Width)
	b.Decode = 0.16*float64(simple) + 0.18*float64(cplx)
	if msrom {
		b.Decode += 0.03
	}
	if !tr.FixedLength {
		b.Decode += 0.26 + 0.06*w
		if fs.Depth > 16 || fs.Predication == isa.FullPredication {
			b.Decode += 0.10 // ILD customization (+0.87% core)
		}
	}
	if fs.Depth > 16 {
		b.Decode += 0.022
	}
	if fs.Predication == isa.FullPredication {
		b.Decode += 0.015
	}

	switch cfg.Predictor {
	case cpu.PredLocal:
		b.BranchPred = 0.30
	case cpu.PredGShare:
		b.BranchPred = 0.27
	default:
		b.BranchPred = 0.56
	}

	if cfg.OoO {
		b.Scheduler = 0.55 + 1.05*w + 0.012*float64(cfg.IQ) + 0.009*float64(cfg.ROB)
	} else {
		b.Scheduler = 0.18 + 0.09*w
	}

	intBits := float64(cfg.PRFInt * fs.Width)
	fpBits := float64(cfg.PRFFP * 64)
	if fs.HasSIMD() {
		fpBits = float64(cfg.PRFFP * 128)
	}
	b.RegFile = (intBits+fpBits)*0.00009 + (0.04+0.11*w64)*float64(fs.Depth)/64
	b.RegFile += 0.10 * w

	// ISA-dependent datapath costs scale with machine width: a 1-wide
	// in-order core's SIMD unit and 64-bit datapaths cost far less than a
	// 4-wide core's.
	isaScale := 0.4 + 0.15*w
	alu := 0.30 + 0.12*w64*isaScale
	b.FU = float64(cfg.IntALU)*alu + float64(cfg.IntMul)*0.30 + float64(cfg.FPALU)*0.45
	if fs.HasSIMD() {
		b.FU += float64(cfg.FPALU) * 0.28 * isaScale
	}

	b.LSQ = 0.08 + 0.009*float64(cfg.LSQ)

	b.L1I = 0.16 + float64(cfg.L1I.SizeKB)*0.008
	b.L1D = 0.18 + float64(cfg.L1D.SizeKB)*0.009
	b.L2 = 0.25 + float64(cfg.L2.PerCoreKB())*0.00045
	return b
}
