package power

import (
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/perfmodel"
)

// Clock frequency assumed for converting cycles to seconds: 2 GHz.
const FreqHz = 2e9

// Per-event dynamic energies in joules.
const (
	pJ = 1e-12

	eFetchSlot     = 6 * pJ // per instruction through the fetch pipe
	eUopCache      = 3 * pJ // per micro-op-cache lookup
	eILDPerByte    = 1.4 * pJ
	eDecodeSimple  = 7 * pJ  // per macro-op through a 1:1 decoder
	eDecodeComplex = 16 * pJ // per macro-op through the 1:4 decoder + MSROM
	ePredictor     = 4 * pJ
	eSchedulerOoO  = 9 * pJ // per uop through rename/IQ/ROB
	eSchedulerIO   = 3 * pJ
	eRegFileAccess = 1.1 * pJ // per register-bit-word(64) access
	eIntOp         = 7 * pJ
	eMulOp         = 18 * pJ
	eFPOp          = 22 * pJ
	eSIMDOp        = 40 * pJ
	eLSQ           = 5 * pJ
	eL1Access      = 22 * pJ
	eL2Access      = 160 * pJ
	eMemAccess     = 2000 * pJ

	// Leakage per mm² of structure area.
	leakWPerMM2 = 0.035
)

// EnergyResult is the outcome of the energy model for one region run.
type EnergyResult struct {
	// Joules per structure (the Figure 11 breakdown lives in Breakdown;
	// cache energies are reported separately).
	Dynamic Breakdown
	Leakage float64
	// Total energy in joules.
	Total float64
	// Seconds of execution at FreqHz.
	Time float64
}

// Energy estimates the energy of executing the profiled region on the given
// core for the predicted cycle count.
func Energy(tr Traits, cfg cpu.CoreConfig, p *cpu.Profile, perf perfmodel.Result) EnergyResult {
	fs := tr.FS
	var d Breakdown
	instrs := float64(p.Instrs)
	uops := float64(p.Uops)

	// Fetch: every instruction, plus micro-op cache lookups.
	d.Fetch = instrs * eFetchSlot
	if cfg.UopCache {
		d.Fetch += instrs * eUopCache
	}

	// Decode: only legacy-decode activations pay ILD + decoder energy;
	// with a micro-op cache the pipeline is off on hits (Section V /
	// Figure 11 discussion).
	missFrac := 1.0
	if cfg.UopCache {
		missFrac = 1 - p.UopCacheHitRate
	}
	decoded := instrs * missFrac
	bytesDecoded := decoded * p.AvgInstrLen
	if !tr.FixedLength {
		d.Decode += bytesDecoded * eILDPerByte
	}
	if fs.Complexity == isa.FullX86 {
		// Multi-uop macro-ops use the complex decoder.
		cplxFrac := float64(p.MemALUOps) / float64(maxI64(p.Instrs, 1))
		d.Decode += decoded * ((1-cplxFrac)*eDecodeSimple + cplxFrac*eDecodeComplex)
	} else {
		d.Decode += decoded * eDecodeSimple
	}

	d.BranchPred = float64(p.Branches) * ePredictor
	if cfg.Predictor == cpu.PredTournament {
		d.BranchPred *= 1.8
	}

	if cfg.OoO {
		d.Scheduler = uops * eSchedulerOoO
	} else {
		d.Scheduler = uops * eSchedulerIO
	}

	// Register file: ~2 reads + 1 write per uop, scaled by width.
	widthScale := float64(fs.Width) / 64
	fpScale := 1.0
	if fs.HasSIMD() {
		fpScale = 2.0
	}
	intUops := uops - float64(p.UopsByClass[cpu.UcFP]+p.UopsByClass[cpu.UcFDiv])
	fpUops := float64(p.UopsByClass[cpu.UcFP] + p.UopsByClass[cpu.UcFDiv])
	d.RegFile = intUops*3*eRegFileAccess*widthScale + fpUops*3*eRegFileAccess*fpScale

	vecUops := float64(0)
	// SIMD ops are FP-class uops on SIMD-capable cores; approximate the
	// vector fraction by the profile's packed operations via class FP
	// when the feature set has SIMD and the region vectorized.
	if fs.HasSIMD() && p.Stats.VectorLoops > 0 {
		vecUops = fpUops * 0.7
	}
	d.FU = float64(p.UopsByClass[cpu.UcInt])*eIntOp +
		float64(p.UopsByClass[cpu.UcMul])*eMulOp +
		(fpUops-vecUops)*eFPOp + vecUops*eSIMDOp +
		float64(p.UopsByClass[cpu.UcBranch])*eIntOp

	memUops := float64(p.UopsByClass[cpu.UcLoad] + p.UopsByClass[cpu.UcStore])
	d.LSQ = memUops * eLSQ

	d.L1I = instrs / 3 * eL1Access // fetch reads a line per ~3 instrs
	d.L1D = memUops * eL1Access
	d.L2 = (perf.L1DMisses + perf.L1IMisses) * eL2Access
	// Memory energy folded into L2 bucket for the breakdown.
	d.L2 += perf.L2Misses * eMemAccess

	area := Area(tr, cfg)
	time := perf.Cycles / FreqHz
	leak := area.Total() * leakWPerMM2 * time

	return EnergyResult{
		Dynamic: d,
		Leakage: leak,
		Total:   d.Total() + leak,
		Time:    time,
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
