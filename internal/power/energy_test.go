package power

import (
	"testing"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/perfmodel"
	"compisa/internal/workload"
)

func profileFor(t *testing.T, name string, fs isa.FeatureSet) (*cpu.Profile, perfmodel.Result, cpu.CoreConfig) {
	t.Helper()
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == name {
			reg = r
		}
	}
	f, m, err := reg.Build(fs.Width)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := cpu.CollectProfile(prog, m, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := refConfig()
	res, err := perfmodel.Cycles(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return prof, res, cfg
}

func TestEnergyPositiveAndDecomposed(t *testing.T) {
	prof, res, cfg := profileFor(t, "bzip2.0", isa.X8664)
	en := Energy(tr(isa.X8664), cfg, prof, res)
	if en.Total <= 0 || en.Leakage <= 0 || en.Time <= 0 {
		t.Fatalf("degenerate energy: %+v", en)
	}
	d := en.Dynamic
	if d.Fetch <= 0 || d.Scheduler <= 0 || d.RegFile <= 0 || d.FU <= 0 {
		t.Errorf("stage energies must be positive: %+v", d)
	}
	if en.Total < d.Total() {
		t.Error("total must include leakage")
	}
}

func TestEnergyUopCacheSavesDecode(t *testing.T) {
	prof, res, cfg := profileFor(t, "bzip2.0", isa.X8664)
	withUC := Energy(tr(isa.X8664), cfg, prof, res)
	cfgNo := cfg
	cfgNo.UopCache = false
	noUC := Energy(tr(isa.X8664), cfgNo, prof, res)
	if withUC.Dynamic.Decode >= noUC.Dynamic.Decode {
		t.Errorf("micro-op cache must gate decode energy: %.3g vs %.3g uJ",
			withUC.Dynamic.Decode*1e6, noUC.Dynamic.Decode*1e6)
	}
}

func TestEnergyFixedLengthSavesILD(t *testing.T) {
	prof, res, cfg := profileFor(t, "sjeng.0", isa.X86izedAlpha)
	varlen := Energy(Traits{FS: isa.X86izedAlpha}, cfg, prof, res)
	fixed := Energy(Traits{FS: isa.X86izedAlpha, FixedLength: true}, cfg, prof, res)
	if fixed.Dynamic.Decode >= varlen.Dynamic.Decode {
		t.Error("fixed-length decode must skip ILD energy")
	}
}

func TestEnergyLeakageScalesWithTime(t *testing.T) {
	prof, res, cfg := profileFor(t, "astar.0", isa.X8664)
	slow := res
	slow.Cycles *= 2
	e1 := Energy(tr(isa.X8664), cfg, prof, res)
	e2 := Energy(tr(isa.X8664), cfg, prof, slow)
	if e2.Leakage <= e1.Leakage {
		t.Error("leakage must grow with execution time")
	}
	if e2.Dynamic.Total() != e1.Dynamic.Total() {
		t.Error("dynamic energy depends on activity, not time")
	}
}

func TestEnergyBranchHeavyRegionSpendsOnPredictor(t *testing.T) {
	profB, resB, cfg := profileFor(t, "gobmk.0", isa.X8664)
	profD, resD, _ := profileFor(t, "hmmer.0", isa.X8664)
	enB := Energy(tr(isa.X8664), cfg, profB, resB)
	enD := Energy(tr(isa.X8664), cfg, profD, resD)
	fracB := enB.Dynamic.BranchPred / enB.Dynamic.Total()
	fracD := enD.Dynamic.BranchPred / enD.Dynamic.Total()
	if fracB <= fracD {
		t.Errorf("gobmk must spend a larger predictor-energy share than hmmer: %.4f vs %.4f", fracB, fracD)
	}
}
