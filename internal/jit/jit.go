// Package jit is a region-granular template JIT for the composite-ISA
// functional executor: it translates Predecoded programs (any guest target —
// x86 or alpha64 — since both lower to the same superset-ISA instruction
// stream) into native amd64 machine code, executed in chunks behind the
// cpu.RunOptions.JIT seam.
//
// The interpreter remains the semantic oracle. Native code reproduces the
// interpreter bit for bit — the event stream, the architectural state, the
// ExecResult counters, and the error values — and anything the templates do
// not cover exits through a guard:
//
//   - unsupported opcode / operand shape: the template is a static deopt
//     that hands the instruction to the interpreter (cpu.StepOne) and
//     resumes natively at the successor;
//   - memory-window violation: guest addresses outside the aliased
//     data/spill/context/pool windows deopt the same way, and the sparse
//     memory image stays coherent because the windows are views into it
//     (mem.Memory.Alias);
//   - instruction-budget expiry and fault-injection/interrupt polling:
//     native chunks are sized so they can never cross a budget or poll
//     boundary, making watchdog and cancellation errors byte-identical;
//   - stale code (self-modified or re-predecoded programs): the code cache
//     is keyed by a content fingerprint over every execution-relevant
//     field, so mutated programs can never reuse stale native code.
//
// On platforms other than linux/amd64 the package compiles to a pure-Go
// stub (jit_unsupported.go) whose engine declines every execution, so the
// interpreter runs everywhere and behavior is identical by construction.
package jit

import (
	"sync"
	"sync/atomic"

	"compisa/internal/cpu"
)

// Config tunes an Engine. The zero value is ready to use.
type Config struct {
	// Threshold is the number of RunJIT offers for a given program before
	// it is compiled (default 1: compile on first sight — region programs
	// are built once and evaluated once per process, so there is no warm
	// second chance to wait for).
	Threshold int
	// CacheEntries caps the number of resident native modules; beyond it
	// the least-recently-used module is evicted and its pages unmapped
	// once the last running user releases it. Default 128.
	CacheEntries int
}

// Snapshot is a point-in-time copy of an Engine's counters.
type Snapshot struct {
	// Regions is the number of programs compiled to native code.
	Regions int64
	// Runs counts executions served natively (possibly with deopts).
	Runs int64
	// Deopts counts single instructions bounced to the interpreter.
	Deopts int64
	// DeoptUnsupported/DeoptMemWindow split Deopts by guard kind.
	DeoptUnsupported int64
	DeoptMemWindow   int64
	// Bailouts counts executions declined entirely (unsupported platform,
	// below the hotness threshold, or compile failure): the interpreter
	// ran instead.
	Bailouts int64
	// CacheHits counts native runs served from an already-compiled module.
	CacheHits int64
	// Evictions counts modules dropped from the code cache.
	Evictions int64
}

type stats struct {
	regions, runs, deopts      atomic.Int64
	deoptUnsup, deoptMem       atomic.Int64
	bailouts, hits, evictions  atomic.Int64
}

// Engine compiles and caches native modules and implements cpu.JITRunner.
// It is safe for concurrent use by multiple goroutines (the evaluation
// pipeline shares one engine across par.Map workers).
type Engine struct {
	cfg   Config
	stats stats

	mu  sync.Mutex
	hot map[progKey]int64

	arch archEngine
}

var _ cpu.JITRunner = (*Engine)(nil)

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	e := &Engine{cfg: cfg, hot: make(map[progKey]int64)}
	e.arch.init()
	return e
}

// Available reports whether native execution is possible on this platform.
// When false, RunJIT declines every offer and the interpreter runs.
func Available() bool { return archAvailable() }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Snapshot {
	return Snapshot{
		Regions:          e.stats.regions.Load(),
		Runs:             e.stats.runs.Load(),
		Deopts:           e.stats.deopts.Load(),
		DeoptUnsupported: e.stats.deoptUnsup.Load(),
		DeoptMemWindow:   e.stats.deoptMem.Load(),
		Bailouts:         e.stats.bailouts.Load(),
		CacheHits:        e.stats.hits.Load(),
		Evictions:        e.stats.evictions.Load(),
	}
}

// Compile ensures pd's native module is resident in the code cache,
// compiling it if necessary; ok reports whether native execution is
// possible on this platform. RunJIT compiles on demand, so this entry is
// only needed to warm the cache up front or to measure compilation apart
// from execution.
func (e *Engine) Compile(pd *cpu.Predecoded) (ok bool, err error) { return e.compile(pd) }

// RunJIT implements cpu.JITRunner: it either executes the whole program
// natively (ok=true) with interpreter-identical results, or declines
// (ok=false) without touching st or memory.
func (e *Engine) RunJIT(pd *cpu.Predecoded, st *cpu.State, opts cpu.RunOptions, consume func(*cpu.Event)) (cpu.ExecResult, bool, error) {
	if !archAvailable() {
		e.stats.bailouts.Add(1)
		return cpu.ExecResult{}, false, nil
	}
	key := fingerprint(pd)
	e.mu.Lock()
	if len(e.hot) > 1<<14 {
		// The hotness table only gates compilation; shedding it under
		// adversarial program churn merely delays compiling by Threshold
		// runs again.
		e.hot = make(map[progKey]int64)
	}
	e.hot[key]++
	seen := e.hot[key]
	e.mu.Unlock()
	if seen < int64(e.cfg.Threshold) {
		e.stats.bailouts.Add(1)
		return cpu.ExecResult{}, false, nil
	}
	return e.runNative(key, pd, st, opts, consume)
}

// progKey is the stable identity of a program's executable content.
type progKey struct {
	hash  uint64
	n     int32
	width uint8
}

// fingerprint hashes every field that influences execution or the event
// stream: the instructions, the laid-out PCs and encoded lengths (which
// differ per guest target), micro-op counts, and the feature-set width.
// The constant pool is deliberately excluded — it lives in memory, not in
// the generated code. Content hashing is what makes the cache safe against
// self-modified or re-predecoded programs: any mutation changes the key.
func fingerprint(pd *cpu.Predecoded) progKey {
	p := pd.P
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	w(uint64(p.FS.Width))
	w(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		w(uint64(in.Op) | uint64(in.Sz)<<8 | uint64(in.Dst)<<16 | uint64(in.Src1)<<24 |
			uint64(in.Src2)<<32 | uint64(in.CC)<<40 | uint64(in.Pred)<<48)
		w(uint64(in.Imm))
		var bits uint64
		if in.HasImm {
			bits |= 1
		}
		if in.HasMem {
			bits |= 2
		}
		if in.PredSense {
			bits |= 4
		}
		w(bits | uint64(in.Mem.Base)<<8 | uint64(in.Mem.Index)<<16 | uint64(in.Mem.Scale)<<24 |
			uint64(uint32(in.Mem.Disp))<<32)
		w(uint64(uint32(in.Target)) | uint64(p.PC[i])<<32)
		w(uint64(pd.InstrLen(i)) | uint64(pd.UopCount(i))<<8)
	}
	return progKey{hash: h, n: int32(len(p.Instrs)), width: uint8(p.FS.Width)}
}
