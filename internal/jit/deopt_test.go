// Table test over every deopt guard kind: each case drives a program that
// trips exactly one guard and asserts (a) the interpreter and the JIT agree
// on every observable — proving the deopt handed the instruction to the
// interpreter and resumed with identical architectural state — and (b) the
// engine's counters attribute the exit to the right guard.

package jit

import (
	"errors"
	"testing"

	"compisa/internal/code"
	"compisa/internal/cpu"
	"compisa/internal/encoding"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

func TestJITDeoptGuards(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}

	// loopProg counts r0 down from n with a backward branch — enough
	// dynamic instructions to cross chunk, budget, and poll boundaries.
	loopProg := func(t *testing.T, n int64, extra ...code.Instr) *code.Program {
		dec := ci(code.SUB, 8)
		dec.Dst, dec.Src1 = 0, 0
		dec.HasImm, dec.Imm = true, 1
		jne := ci(code.JCC, 0)
		jne.CC, jne.Target = code.CCNE, 1
		instrs := append([]code.Instr{movImm(0, n, 8)}, extra...)
		jne.Target = int32(1 + len(extra))
		instrs = append(instrs, dec, jne, retR(0))
		return mkProg(t, isa.Superset, instrs...)
	}

	// opts is a constructor so cases with stateful Interrupt closures get a
	// fresh one per executor side.
	cases := []struct {
		name  string
		prog  func(t *testing.T) *code.Program
		opts  func() cpu.RunOptions
		check func(t *testing.T, before, after Snapshot, errJ error)
	}{
		{
			// szMask(2) quirk: 16-bit ALU has no template, so every
			// iteration deopts through the unsupported-opcode guard and
			// resumes natively.
			name: "unsupported operand shape",
			prog: func(t *testing.T) *code.Program {
				w := ci(code.ADD, 2)
				w.Dst, w.Src1, w.Src2 = 1, 1, 0
				return loopProg(t, 50, w)
			},
			opts: func() cpu.RunOptions { return cpu.RunOptions{MaxInstrs: 10_000} },
			check: func(t *testing.T, before, after Snapshot, errJ error) {
				if errJ != nil {
					t.Fatalf("unexpected error: %v", errJ)
				}
				if after.DeoptUnsupported <= before.DeoptUnsupported {
					t.Fatalf("unsupported-opcode guard not attributed: %+v", after)
				}
			},
		},
		{
			// A corrupted opcode byte (the eval pipeline's fault-injection
			// KindCorrupt) has no interpreter handler either: the deopt
			// reproduces ErrUnimplementedOp identically.
			name: "unsupported opcode (corrupt)",
			prog: func(t *testing.T) *code.Program {
				p := loopProg(t, 5)
				p.Instrs[1].Op = code.Op(0xEF)
				// Re-layout after mutation, as the fault injector does.
				if err := encoding.Layout(p, code.CodeBase); err != nil {
					t.Fatal(err)
				}
				return p
			},
			opts: func() cpu.RunOptions { return cpu.RunOptions{MaxInstrs: 10_000} },
			check: func(t *testing.T, before, after Snapshot, errJ error) {
				if !errors.Is(errJ, cpu.ErrUnimplementedOp) {
					t.Fatalf("got %v, want ErrUnimplementedOp", errJ)
				}
				if after.DeoptUnsupported <= before.DeoptUnsupported {
					t.Fatalf("corrupt opcode not attributed to the unsupported guard: %+v", after)
				}
			},
		},
		{
			// Predicated-off unsupported instruction: the static deopt
			// fires before the predication gate, so StepOne must apply the
			// gate — a pred-off unimplemented op does NOT error.
			name: "unsupported under predication",
			prog: func(t *testing.T) *code.Program {
				w := ci(code.ADD, 2)
				w.Dst, w.Src1, w.Src2 = 1, 1, 0
				w.Pred, w.PredSense = 2, true // r2 == 0 -> predicated off
				return loopProg(t, 20, w)
			},
			opts: func() cpu.RunOptions { return cpu.RunOptions{MaxInstrs: 10_000} },
			check: func(t *testing.T, before, after Snapshot, errJ error) {
				if errJ != nil {
					t.Fatalf("unexpected error: %v", errJ)
				}
				if after.DeoptUnsupported <= before.DeoptUnsupported {
					t.Fatalf("predicated unsupported op not deopted: %+v", after)
				}
			},
		},
		{
			// Budget expiry across many native chunks (the watchdog that
			// backs the eval pipeline's KindRunaway fault): the error and
			// the retired-instruction count must match the interpreter.
			name: "budget expiry",
			prog: func(t *testing.T) *code.Program { return loopProg(t, 1_000_000) },
			opts: func() cpu.RunOptions { return cpu.RunOptions{MaxInstrs: 3*chunkCap + 17} },
			check: func(t *testing.T, before, after Snapshot, errJ error) {
				if !errors.Is(errJ, cpu.ErrInstrBudget) {
					t.Fatalf("got %v, want ErrInstrBudget", errJ)
				}
			},
		},
		{
			// Interrupt polling (fault-injection / cancellation hook):
			// chunks must stop exactly at the poll stride so the abort
			// fires after the same retired prefix as the interpreter.
			name: "fault injection interrupt",
			prog: func(t *testing.T) *code.Program { return loopProg(t, 1_000_000) },
			opts: func() cpu.RunOptions {
				polls := 0
				return cpu.RunOptions{
					MaxInstrs:      10_000_000,
					InterruptEvery: 100,
					Interrupt: func() error {
						polls++
						if polls >= 5 {
							return errors.New("injected fault")
						}
						return nil
					},
				}
			},
			check: func(t *testing.T, before, after Snapshot, errJ error) {
				if !errors.Is(errJ, cpu.ErrInterrupted) {
					t.Fatalf("got %v, want ErrInterrupted", errJ)
				}
			},
		},
		{
			// Memory-window violation: an access far outside every aliased
			// window deopts; the interpreter serves it from the same sparse
			// image, so values and events stay identical.
			name: "memory window",
			prog: func(t *testing.T) *code.Program {
				st := ci(code.ST, 8)
				st.Src1 = 0
				st.HasMem = true
				st.Mem = code.Mem{Base: 9, Index: code.NoReg, Scale: 1, Disp: 0}
				ld := ci(code.LD, 8)
				ld.Dst = 1
				ld.HasMem = true
				ld.Mem = code.Mem{Base: 9, Index: code.NoReg, Scale: 1, Disp: 0}
				add := alu(code.ADD, 1, 1, 8)
				return loopProg(t, 30, movImm(9, 0x0200_0000, 8), st, ld, add)
			},
			opts: func() cpu.RunOptions { return cpu.RunOptions{MaxInstrs: 10_000} },
			check: func(t *testing.T, before, after Snapshot, errJ error) {
				if errJ != nil {
					t.Fatalf("unexpected error: %v", errJ)
				}
				if after.DeoptMemWindow <= before.DeoptMemWindow {
					t.Fatalf("memory-window guard not attributed: %+v", after)
				}
			},
		},
		{
			// Out-of-range branch target: native code hands the bad pc back
			// to the driver, which reports the interpreter's exact error.
			name: "pc out of range",
			prog: func(t *testing.T) *code.Program {
				cmp := ci(code.CMP, 8)
				cmp.Src1, cmp.Src2 = 0, 0 // sets ZF
				j := ci(code.JCC, 0)
				j.CC, j.Target = code.CCEQ, 3
				p := mkProg(t, isa.Superset, movImm(0, 0, 8), cmp, j, retR(0))
				// Corrupt the target after layout (Layout rejects it).
				p.Instrs[2].Target = 99
				return p
			},
			opts: func() cpu.RunOptions { return cpu.RunOptions{MaxInstrs: 10_000} },
			check: func(t *testing.T, before, after Snapshot, errJ error) {
				if !errors.Is(errJ, cpu.ErrPCOutOfRange) {
					t.Fatalf("got %v, want ErrPCOutOfRange", errJ)
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := New(Config{})
			before := eng.Stats()
			p := tc.prog(t)

			var evI []cpu.Event
			stI := cpu.NewState(mem.New())
			resI, errI := cpu.RunPredecoded(cpu.Predecode(p), stI, tc.opts(), func(ev *cpu.Event) { evI = append(evI, *ev) })

			jopts := tc.opts()
			jopts.JIT = eng
			var evJ []cpu.Event
			stJ := cpu.NewState(mem.New())
			resJ, errJ := cpu.RunPredecoded(cpu.Predecode(p), stJ, jopts, func(ev *cpu.Event) { evJ = append(evJ, *ev) })

			checkSame(t, resI, resJ, evI, evJ, stI, stJ, errI, errJ)
			after := eng.Stats()
			if after.Runs == 0 {
				t.Fatalf("jit declined the run: %+v", after)
			}
			tc.check(t, before, after, errJ)
		})
	}
}

// The interrupt case above runs the interpreter with one Interrupt closure
// and the JIT with the same closure continuing to count — so it needs its
// own differential pass with fresh closures per side.
func TestJITInterruptPrefixIdentical(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	mk := func() cpu.RunOptions {
		polls := 0
		return cpu.RunOptions{
			MaxInstrs:      10_000_000,
			InterruptEvery: 100,
			Interrupt: func() error {
				polls++
				if polls >= 5 {
					return errors.New("injected fault")
				}
				return nil
			},
		}
	}
	dec := ci(code.SUB, 8)
	dec.Dst, dec.Src1, dec.HasImm, dec.Imm = 0, 0, true, 1
	jne := ci(code.JCC, 0)
	jne.CC, jne.Target = code.CCNE, 1
	p := mkProg(t, isa.Superset, movImm(0, 1_000_000, 8), dec, jne, retR(0))

	var evI []cpu.Event
	stI := cpu.NewState(mem.New())
	resI, errI := cpu.RunPredecoded(cpu.Predecode(p), stI, mk(), func(ev *cpu.Event) { evI = append(evI, *ev) })

	eng := New(Config{})
	jopts := mk()
	jopts.JIT = eng
	var evJ []cpu.Event
	stJ := cpu.NewState(mem.New())
	resJ, errJ := cpu.RunPredecoded(cpu.Predecode(p), stJ, jopts, func(ev *cpu.Event) { evJ = append(evJ, *ev) })

	checkSame(t, resI, resJ, evI, evJ, stI, stJ, errI, errJ)
	if !errors.Is(errJ, cpu.ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", errJ)
	}
}

// TestJITSelfModifyRepredecode mutates a program after a native run and
// re-predecodes, as the fault injector and re-layout paths do: the
// content-hashed cache key must miss, forcing a fresh compile, and both
// versions must execute correctly.
func TestJITSelfModifyRepredecode(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	eng := New(Config{})
	p := mkProg(t, isa.Superset,
		movImm(0, 40, 8),
		movImm(1, 2, 8),
		alu(code.ADD, 0, 1, 8),
		retR(0),
	)
	run := func(want uint64) {
		t.Helper()
		st := cpu.NewState(mem.New())
		res, err := cpu.RunPredecoded(cpu.Predecode(p), st, cpu.RunOptions{MaxInstrs: 1000, JIT: eng}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != want {
			t.Fatalf("ret %d, want %d", res.Ret, want)
		}
	}
	run(42)
	s1 := eng.Stats()
	if s1.Regions != 1 {
		t.Fatalf("regions %d, want 1", s1.Regions)
	}

	// Self-modify: change the immediate, re-layout, re-predecode. Stale
	// native code would still return 42.
	p.Instrs[1].Imm = 60
	if err := encoding.Layout(p, code.CodeBase); err != nil {
		t.Fatal(err)
	}
	run(100)
	s2 := eng.Stats()
	if s2.Regions != 2 {
		t.Fatalf("mutated program reused stale code: regions %d, want 2 (%+v)", s2.Regions, s2)
	}

	// The original content hashes back to the first module: cache hit.
	p.Instrs[1].Imm = 2
	if err := encoding.Layout(p, code.CodeBase); err != nil {
		t.Fatal(err)
	}
	run(42)
	s3 := eng.Stats()
	if s3.CacheHits <= s2.CacheHits {
		t.Fatalf("expected a cache hit on the reverted program: %+v", s3)
	}
}

// TestJITCacheEvictionLRU pins the eviction policy: with CacheEntries=2,
// compiling a third program evicts the least-recently-used module, and a
// later run of the evicted program recompiles and still agrees with the
// interpreter.
func TestJITCacheEvictionLRU(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	eng := New(Config{CacheEntries: 2})
	mk := func(k int64) *code.Program {
		return mkProg(t, isa.Superset,
			movImm(0, k, 8),
			movImm(1, 3, 8),
			alu(code.IMUL, 0, 1, 8),
			retR(0),
		)
	}
	progs := []*code.Program{mk(10), mk(20), mk(30)}
	for _, p := range progs {
		diffOne(t, eng, p, cpu.RunOptions{MaxInstrs: 100})
	}
	s := eng.Stats()
	if s.Regions != 3 || s.Evictions != 1 {
		t.Fatalf("regions %d evictions %d, want 3 and 1 (%+v)", s.Regions, s.Evictions, s)
	}
	// progs[0] was the LRU victim: running it again recompiles.
	diffOne(t, eng, progs[0], cpu.RunOptions{MaxInstrs: 100})
	s = eng.Stats()
	if s.Regions != 4 || s.Evictions != 2 {
		t.Fatalf("evicted program not recompiled: %+v", s)
	}
}

// TestJITHotnessThreshold pins the cold-program bailout: below the
// threshold the engine declines (the interpreter runs, results unchanged),
// at the threshold it compiles.
func TestJITHotnessThreshold(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	eng := New(Config{Threshold: 3})
	p := mkProg(t, isa.Superset,
		movImm(0, 7, 8),
		retR(0),
	)
	for i := 1; i <= 4; i++ {
		st := cpu.NewState(mem.New())
		res, err := cpu.RunPredecoded(cpu.Predecode(p), st, cpu.RunOptions{MaxInstrs: 100, JIT: eng}, nil)
		if err != nil || res.Ret != 7 {
			t.Fatalf("run %d: res %+v err %v", i, res, err)
		}
	}
	s := eng.Stats()
	if s.Bailouts != 2 {
		t.Fatalf("bailouts %d, want 2 (below threshold twice)", s.Bailouts)
	}
	if s.Regions != 1 || s.Runs != 2 {
		t.Fatalf("regions %d runs %d, want 1 and 2 (%+v)", s.Regions, s.Runs, s)
	}
}
