//go:build amd64 && linux

package jit

import (
	"fmt"
	"math"

	"compisa/internal/code"
	"compisa/internal/cpu"
)

// The template emitter: one native code block per instruction, laid out in
// program order so fallthrough is free, driven by the same predecoded
// tables the interpreter dispatches on. Every template follows the same
// skeleton:
//
//	refill guard   (chunk allowance in rbx exhausted -> exitResume)
//	event prewrite (Idx/PC/Len/Uops stored, mem/taken fields zeroed)
//	predicate gate (skip to a PredOff commit when the predicate fails)
//	semantics      (may exit through the deopt stub before any side effect)
//	commit         (advance the event cursor, decrement the allowance)
//
// Deopt discipline: a template either commits exactly one event slot and
// all of its architectural effects, or exits with no effects at all. That
// is what lets the driver hand the instruction to cpu.StepOne and resume
// natively with nothing to roll back.

// module is one compiled program: executable pages plus per-instruction
// entry offsets. Modules are immutable after compile; refs/dead implement
// cache eviction without unmapping pages under a running user.
type module struct {
	key    progKey
	pages  *execPages
	entry  uintptr
	off    []int32
	static []bool // statically-deopt templates (unsupported shape)
}

type emitter struct {
	a       asm
	pd      *cpu.Predecoded
	p       *code.Program
	n       int
	ins     []*label // n+1: per-instruction entries plus the off-the-end exit
	refill  *label   // exitResume stub; expects the resume index in eax
	deopt   *label   // exitDeopt stub; expects the instruction index in eax
	epi     *label
	static  []bool
	width32 bool
	events  bool // record event slots (false: tally counters only)
}

func szMaskOf(sz uint8) uint64 {
	switch sz {
	case 1:
		return 0xff
	case 4:
		return math.MaxUint32
	default:
		return math.MaxUint64
	}
}

func aluWidth(sz uint8) opsz {
	switch sz {
	case 1:
		return sz8b
	case 4:
		return sz32
	default:
		return sz64
	}
}

func intDisp(r code.Reg) int32 { return int32(r) * 8 }

func fpDisp(r code.Reg) int32 { return fpOff + int32(r)*16 }

// compileProgram translates pd into a native module. With events=false the
// templates skip every event-slot store (prewrite, taken/pred bytes, memory
// fields) and keep only the tally counters — the variant the driver runs
// when no event consumer is attached.
func compileProgram(key progKey, pd *cpu.Predecoded, events bool) (*module, error) {
	p := pd.P
	n := len(p.Instrs)
	e := &emitter{
		pd: pd, p: p, n: n,
		ins:     make([]*label, n+1),
		refill:  newLabel(),
		deopt:   newLabel(),
		epi:     newLabel(),
		static:  make([]bool, n),
		width32: p.FS.Width == 32,
		events:  events,
	}
	for i := range e.ins {
		e.ins[i] = newLabel()
	}
	for i := 0; i < n; i++ {
		e.static[i] = !e.supported(i)
	}

	e.emitEntry()
	for i := 0; i < n; i++ {
		e.emitInstr(i)
	}
	// Falling off the end (or branching to index n) resumes the driver,
	// which reports the interpreter's pc-out-of-range error.
	e.a.bind(e.ins[n])
	e.a.movRI(rax, uint64(uint32(n)))
	e.a.jmp(e.refill)
	e.emitStubs()

	for i := 0; i <= n; i++ {
		if e.ins[i].pos < 0 || len(e.ins[i].refs) != 0 {
			return nil, fmt.Errorf("jit: unbound label for instruction %d", i)
		}
	}
	pages, err := newExecPages(e.a.b)
	if err != nil {
		return nil, err
	}
	off := make([]int32, n)
	for i := 0; i < n; i++ {
		off[i] = e.ins[i].pos
	}
	return &module{key: key, pages: pages, entry: pages.base(), off: off, static: e.static}, nil
}

// emitEntry emits the entry thunk at offset 0: load the pinned registers
// from the jitCtx (in rdi, placed there by the trampoline) and jump to the
// resume address.
func (e *emitter) emitEntry() {
	a := &e.a
	a.movRR(rbp, rdi)
	a.movRM(sz64, r15, rbp, ctxOff.state)
	a.movRM(sz64, r14, rbp, ctxOff.events)
	a.movRM(sz64, rbx, rbp, ctxOff.remaining)
	a.movRM(sz64, r13, rbp, ctxOff.dataHost)
	a.movRM(sz64, r12, rbp, ctxOff.spillHost)
	a.jmpM(rbp, ctxOff.resume)
}

func (e *emitter) emitStubs() {
	a := &e.a
	a.bind(e.refill)
	a.movMR(sz32, rbp, ctxOff.exitIdx, rax)
	a.movMI32(false, rbp, ctxOff.exitKind, exitResume)
	a.jmp(e.epi)
	a.bind(e.deopt)
	a.movMR(sz32, rbp, ctxOff.exitIdx, rax)
	a.movMI32(false, rbp, ctxOff.exitKind, exitDeopt)
	a.bind(e.epi)
	a.movMR(sz64, rbp, ctxOff.remaining, rbx)
	a.movMR(sz64, rbp, ctxOff.events, r14)
	a.retn()
}

// supported reports whether instruction i has a native template; anything
// else becomes a static deopt (the unsupported-opcode guard).
func (e *emitter) supported(i int) bool {
	in := &e.p.Instrs[i]
	if !e.pd.Interpretable(i) {
		return false
	}
	vi := func(r code.Reg) bool { return r < 64 }
	vf := func(r code.Reg) bool { return r < 16 }
	if in.Pred != code.NoReg && !vi(in.Pred) {
		return false
	}
	vm := func() bool {
		if !in.HasMem {
			return false
		}
		if in.Mem.Base != code.NoReg && !vi(in.Mem.Base) {
			return false
		}
		if in.Mem.Index != code.NoReg && !vi(in.Mem.Index) {
			return false
		}
		return true
	}
	isz := func(ok ...uint8) bool {
		for _, s := range ok {
			if in.Sz == s {
				return true
			}
		}
		return false
	}
	// The second integer operand of an ALU-class op.
	op2 := func() bool {
		switch {
		case in.HasImm:
			return true
		case in.MemSrcALU():
			return vm() && isz(1, 4, 8)
		default:
			return vi(in.Src2)
		}
	}
	switch in.Op {
	case code.NOP:
		return true
	case code.MOV:
		return vi(in.Dst) && (in.HasImm || vi(in.Src1)) && isz(1, 4, 8)
	case code.MOVSX:
		return vi(in.Dst) && vi(in.Src1)
	case code.LEA:
		return vi(in.Dst) && vm() && isz(1, 4, 8)
	case code.LD:
		return vi(in.Dst) && vm() && isz(1, 2, 4, 8)
	case code.ST:
		return vi(in.Src1) && vm() && isz(1, 2, 4, 8)
	case code.ADD, code.ADC, code.SUB, code.SBB, code.AND, code.OR, code.XOR, code.IMUL:
		return vi(in.Dst) && vi(in.Src1) && isz(1, 4, 8) && op2()
	case code.SHL, code.SHR, code.SAR:
		if !vi(in.Dst) || !vi(in.Src1) || !isz(1, 4, 8) {
			return false
		}
		// Counts the hardware would mask differently from Go deopt.
		lim := int64(32)
		if in.Sz == 8 {
			lim = 64
		}
		return in.Imm >= 0 && in.Imm < lim
	case code.CMP:
		return vi(in.Src1) && isz(1, 4, 8) && op2()
	case code.TEST:
		return vi(in.Src1) && isz(1, 4, 8) && op2()
	case code.SETCC:
		return vi(in.Dst)
	case code.CMOVCC:
		if !vi(in.Dst) {
			return false
		}
		if in.HasMem {
			return vm() && isz(1, 2, 4, 8)
		}
		return vi(in.Src1) && isz(1, 4, 8)
	case code.JCC, code.JMP:
		return true
	case code.RET:
		return in.Src1 == code.NoReg || vi(in.Src1)
	case code.FMOV:
		return vf(in.Dst) && vf(in.Src1)
	case code.FLD:
		return vf(in.Dst) && vm() && isz(4, 8)
	case code.FST:
		return vf(in.Src1) && vm() && isz(4, 8)
	case code.FADD, code.FSUB, code.FMUL, code.FDIV:
		if !vf(in.Dst) || !vf(in.Src1) || !isz(4, 8) {
			return false
		}
		if in.MemSrcALU() {
			return vm()
		}
		return vf(in.Src2)
	case code.FCMP:
		return vf(in.Src1) && vf(in.Src2) && isz(4, 8)
	case code.CVTIF:
		return vf(in.Dst) && vi(in.Src1) && isz(4, 8)
	case code.CVTFI:
		return vi(in.Dst) && vf(in.Src1) && isz(4, 8)
	case code.VLD:
		return vf(in.Dst) && vm()
	case code.VST:
		return vf(in.Src1) && vm()
	case code.VADDF, code.VSUBF, code.VMULF, code.VADDI, code.VSUBI, code.VMULI:
		if !vf(in.Dst) || !vf(in.Src1) {
			return false
		}
		if in.MemSrcALU() {
			return vm() && in.Sz == 16
		}
		return vf(in.Src2)
	case code.VSPLAT, code.VRSUM:
		return vf(in.Dst) && vf(in.Src1)
	}
	return false
}

// ---- template building blocks ----

// commit retires instruction i: it bumps the chunk tally counters every
// committed path shares (micro-ops always; branches for every committed
// JCC, predicated-off or not, matching the interpreter's loop bottom),
// advances the event cursor one slot, and burns one unit of chunk
// allowance.
func (e *emitter) commit(i int) {
	e.a.aluMI(0, rbp, ctxOff.uops, int32(e.pd.UopCount(i)))
	if e.p.Instrs[i].Op == code.JCC {
		e.a.aluMI(0, rbp, ctxOff.branches, 1)
	}
	if e.events {
		e.a.aluRI(0, sz64, r14, evOff.size) // add r14, 32
	}
	e.a.decR(rbx)
}

// exitTo loads idx into eax and jumps to the given stub.
func (e *emitter) exitTo(stub *label, idx int32) {
	e.a.movRI(rax, uint64(uint32(idx)))
	e.a.jmp(stub)
}

// jmpTarget transfers to instruction t, or resumes the driver for an
// out-of-range target so it reports the interpreter's pc error.
func (e *emitter) jmpTarget(t int32) {
	if t >= 0 && int(t) <= e.n {
		e.a.jmp(e.ins[t])
		return
	}
	e.exitTo(e.refill, t)
}

// loadInt fetches guest integer register r into dst.
func (e *emitter) loadInt(dst gpr, r code.Reg) { e.a.movRM(sz64, dst, r15, intDisp(r)) }

// storeInt writes dst's full 64 bits to guest integer register r.
func (e *emitter) storeInt(r code.Reg, src gpr) { e.a.movMR(sz64, r15, intDisp(r), src) }

// maskTo truncates reg to sz with x86 zero-extension semantics.
func (e *emitter) maskTo(sz uint8, r gpr) {
	switch sz {
	case 1:
		e.a.movzxBRR(r, r)
	case 4:
		e.a.mov32RR(r, r)
	}
}

// emitEA computes the effective address of in.Mem into rdx (clobbers rax).
func (e *emitter) emitEA(m code.Mem) {
	a := &e.a
	if m.Base != code.NoReg {
		e.loadInt(rdx, m.Base)
	} else {
		a.aluRR(opXOR, sz32, rdx, rdx)
	}
	if m.Index != code.NoReg {
		e.loadInt(rax, m.Index)
		if m.Scale != 1 {
			a.imulRRI(rax, rax, int32(m.Scale))
		}
		a.aluRR(opADD, sz64, rdx, rax)
	}
	if m.Disp != 0 {
		a.aluRI(0, sz64, rdx, m.Disp)
	}
	if e.width32 {
		a.mov32RR(rdx, rdx)
	}
}

// translate maps the guest address in rdx to a host address in rax via the
// four aliased windows; a miss deopts instruction i (memory-window guard).
// rdx is preserved.
func (e *emitter) translate(i int) {
	a := &e.a
	done := newLabel()
	leg := func(base uint32, maxOff int32, addHost func()) *label {
		miss := newLabel()
		a.movRR(rax, rdx)
		a.aluRI(5, sz64, rax, int32(base)) // sub rax, window base
		a.aluRM(opCMP, sz64, rax, rbp, maxOff)
		a.jcc(hwA, miss)
		addHost()
		a.jmp(done)
		a.bind(miss)
		return miss
	}
	leg(code.DataBase, ctxOff.dataMax, func() { a.aluRR(opADD, sz64, rax, r13) })
	leg(code.SpillBase, ctxOff.spillMax, func() { a.aluRR(opADD, sz64, rax, r12) })
	leg(code.ContextBase, ctxOff.ctxbMax, func() { a.aluRM(opADD, sz64, rax, rbp, ctxOff.ctxbHost) })
	leg(code.PoolBase, ctxOff.poolMax, func() { a.aluRM(opADD, sz64, rax, rbp, ctxOff.poolHost) })
	e.exitTo(e.deopt, int32(i))
	a.bind(done)
}

// evMem records the event's memory-access fields — address from rdx, size
// and load/store truth as immediates — and bumps the matching tally. The
// tally is safe to bump here because evMem always follows the body's only
// translate guard: once it runs, the event is guaranteed to commit.
func (e *emitter) evMem(isStore bool, sz uint8) {
	if isStore {
		e.a.aluMI(0, rbp, ctxOff.stores, 1)
	} else {
		e.a.aluMI(0, rbp, ctxOff.loads, 1)
	}
	if !e.events {
		return
	}
	e.a.movMR(sz64, r14, evOff.memAddr, rdx)
	v := uint32(sz)
	if isStore {
		v |= 1 << 16
	} else {
		v |= 1 << 8
	}
	e.a.movMI32(true, r14, evOff.memSz, v)
}

// loadSized loads sz bytes from [rax] into dst, zero-extended.
func (e *emitter) loadSized(dst gpr, sz uint8) {
	switch sz {
	case 1:
		e.a.movzxBRM(dst, rax, 0)
	case 2:
		e.a.movzxWRM(dst, rax, 0)
	case 4:
		e.a.movRM(sz32, dst, rax, 0)
	default:
		e.a.movRM(sz64, dst, rax, 0)
	}
}

// storeSized stores the low sz bytes of src to [rax].
func (e *emitter) storeSized(sz uint8, src gpr) {
	switch sz {
	case 1:
		e.a.movMR(sz8b, rax, 0, src)
	case 2:
		e.a.movMR16(rax, 0, src)
	case 4:
		e.a.movMR(sz32, rax, 0, src)
	default:
		e.a.movMR(sz64, rax, 0, src)
	}
}

// intOp2 materializes the second integer operand into rcx, masked to sz
// (immediate, folded memory load — which records event fields — or
// register).
func (e *emitter) intOp2(i int, in *code.Instr) {
	switch {
	case in.HasImm:
		e.a.movRI(rcx, uint64(in.Imm)&szMaskOf(in.Sz))
	case in.MemSrcALU():
		e.emitEA(in.Mem)
		e.translate(i)
		e.evMem(false, in.Sz)
		e.loadSized(rcx, in.Sz)
	default:
		e.loadInt(rcx, in.Src2)
		e.maskTo(in.Sz, rcx)
	}
}

// loadOp1 materializes the first operand into rax, masked to sz.
func (e *emitter) loadOp1(in *code.Instr) {
	e.loadInt(rax, in.Src1)
	e.maskTo(in.Sz, rax)
}

// Flag byte displacements within the jitCtx.
func (e *emitter) zfD() int32 { return ctxOff.flags + 0 }
func (e *emitter) sfD() int32 { return ctxOff.flags + 1 }
func (e *emitter) ofD() int32 { return ctxOff.flags + 2 }
func (e *emitter) cfD() int32 { return ctxOff.flags + 3 }

// flagsHW captures the hardware flags of the last flag-setting op into the
// guest flag bytes (matching setAddFlags/setSubFlags exactly, since those
// replicate hardware formulas).
func (e *emitter) flagsHW() {
	e.a.setccM(hwE, rbp, e.zfD())
	e.a.setccM(hwS, rbp, e.sfD())
	e.a.setccM(hwO, rbp, e.ofD())
	e.a.setccM(hwB, rbp, e.cfD())
}

// logicFlags sets guest flags from the value in rax at width sz with
// CF=OF=0 (the interpreter's setLogicFlags): a TEST refreshes ZF/SF and
// clears CF/OF in one go.
func (e *emitter) logicFlags(sz uint8) {
	e.a.testRR(aluWidth(sz), rax, rax)
	e.flagsHW()
}

// condToAL materializes the guest condition cc as 0/1 in al.
func (e *emitter) condToAL(cc code.CC) {
	a := &e.a
	ld := func(d int32) { a.movRM(sz8b, rax, rbp, d) }
	xor1 := func() { a.aluRI8only(6, rax, 1) }
	switch cc {
	case code.CCEQ:
		ld(e.zfD())
	case code.CCNE:
		ld(e.zfD())
		xor1()
	case code.CCLT:
		ld(e.sfD())
		a.aluRM(opXOR, sz8b, rax, rbp, e.ofD())
	case code.CCGE:
		ld(e.sfD())
		a.aluRM(opXOR, sz8b, rax, rbp, e.ofD())
		xor1()
	case code.CCLE:
		ld(e.sfD())
		a.aluRM(opXOR, sz8b, rax, rbp, e.ofD())
		a.aluRM(opOR, sz8b, rax, rbp, e.zfD())
	case code.CCGT:
		ld(e.sfD())
		a.aluRM(opXOR, sz8b, rax, rbp, e.ofD())
		a.aluRM(opOR, sz8b, rax, rbp, e.zfD())
		xor1()
	case code.CCB:
		ld(e.cfD())
	case code.CCAE:
		ld(e.cfD())
		xor1()
	case code.CCBE:
		ld(e.cfD())
		a.aluRM(opOR, sz8b, rax, rbp, e.zfD())
	case code.CCA:
		ld(e.cfD())
		a.aluRM(opOR, sz8b, rax, rbp, e.zfD())
		xor1()
	default:
		// Unknown condition: the interpreter's cond() returns false.
		a.aluRR(opXOR, sz32, rax, rax)
	}
}

// writeIntResult masks rax to sz and stores it to guest register dst
// (x86 writeInt semantics: narrow writes zero-extend).
func (e *emitter) writeIntResult(dst code.Reg, sz uint8) {
	e.maskTo(sz, rax)
	e.storeInt(dst, rax)
}

// storeFPScalar writes {rax, 0} to FP register dst.
func (e *emitter) storeFPScalar(dst code.Reg) {
	e.a.movMR(sz64, r15, fpDisp(dst), rax)
	e.a.movMI32(true, r15, fpDisp(dst)+8, 0)
}

// emitInstr emits the full template for instruction i.
func (e *emitter) emitInstr(i int) {
	a := &e.a
	in := &e.p.Instrs[i]
	a.bind(e.ins[i])

	// Refill guard: out of chunk allowance, resume the driver here.
	body := newLabel()
	a.testRR(sz64, rbx, rbx)
	a.jcc(hwNE, body)
	e.exitTo(e.refill, int32(i))
	a.bind(body)

	if e.static[i] {
		// Unsupported-opcode guard: no event, no effects.
		e.exitTo(e.deopt, int32(i))
		return
	}

	// Event prewrite. The qword stores at +8/+16/+24 also zero Taken,
	// MemAddr, MemSz/IsLoad/IsStore/PredOff and the struct padding, so a
	// committed slot never carries stale bytes from a previous chunk.
	if e.events {
		a.movMI32(false, r14, evOff.idx, uint32(i))
		a.movMI32(false, r14, evOff.pc, e.p.PC[i])
		a.movMI32(true, r14, evOff.length, uint32(e.pd.InstrLen(i))|uint32(e.pd.UopCount(i))<<8)
		a.movMI32(true, r14, evOff.memAddr, 0)
		a.movMI32(true, r14, evOff.memSz, 0)
	}

	// Predication gate.
	var predOff *label
	if in.Pred != code.NoReg {
		predOff = newLabel()
		a.movRM(sz32, rax, r15, intDisp(in.Pred))
		a.testRR(sz32, rax, rax)
		if in.PredSense {
			a.jcc(hwE, predOff) // active iff nonzero
		} else {
			a.jcc(hwNE, predOff)
		}
	}

	switch in.Op {
	case code.JCC:
		e.condToAL(in.CC)
		a.testRR(sz8b, rax, rax)
		taken := newLabel()
		a.jcc(hwNE, taken)
		e.commit(i) // fall-through: untaken
		a.jmp(e.ins[i+1])
		a.bind(taken)
		if e.events {
			a.movMI8(r14, evOff.taken, 1)
		}
		a.aluMI(0, rbp, ctxOff.taken, 1)
		e.commit(i)
		e.jmpTarget(in.Target)
		e.endPredOff(i, predOff)
		return

	case code.JMP:
		// Taken is recorded in the event but not tallied: the driver's
		// Taken counter only covers conditional branches.
		if e.events {
			a.movMI8(r14, evOff.taken, 1)
		}
		e.commit(i)
		e.jmpTarget(in.Target)
		e.endPredOff(i, predOff)
		return

	case code.RET:
		if in.Src1 != code.NoReg {
			e.loadInt(rax, in.Src1)
		} else {
			a.aluRR(opXOR, sz32, rax, rax)
		}
		a.movMR(sz64, rbp, ctxOff.ret, rax)
		if e.events {
			a.movMI8(r14, evOff.taken, 1)
		}
		e.commit(i)
		a.movMI32(false, rbp, ctxOff.exitKind, exitDone)
		a.jmp(e.epi)
		e.endPredOff(i, predOff)
		return
	}

	// Straight-line ops: body, then shared commit with the predicated-off
	// path.
	e.emitBody(i, in)
	if predOff != nil {
		past := newLabel()
		a.jmp(past)
		a.bind(predOff)
		if e.events {
			a.movMI8(r14, evOff.pred, 1)
		}
		a.aluMI(0, rbp, ctxOff.predoff, 1)
		a.bind(past)
	}
	e.commit(i)
}

// endPredOff closes a control-flow template: the predicated-off path
// commits its event and falls through to the next template.
func (e *emitter) endPredOff(i int, predOff *label) {
	if predOff == nil {
		return
	}
	e.a.bind(predOff)
	if e.events {
		e.a.movMI8(r14, evOff.pred, 1)
	}
	e.a.aluMI(0, rbp, ctxOff.predoff, 1)
	e.commit(i)
	// Fallthrough to e.ins[i+1], which is bound immediately after.
}

// emitBody emits the semantics of a straight-line instruction.
func (e *emitter) emitBody(i int, in *code.Instr) {
	a := &e.a
	sz := in.Sz
	switch in.Op {
	case code.NOP:

	case code.MOV:
		if in.HasImm {
			a.movRI(rax, uint64(in.Imm)&szMaskOf(sz))
		} else {
			e.loadInt(rax, in.Src1)
			e.maskTo(sz, rax)
		}
		e.writeIntResult(in.Dst, sz)

	case code.MOVSX:
		a.movsxdRM(rax, r15, intDisp(in.Src1))
		e.storeInt(in.Dst, rax)

	case code.LEA:
		e.emitEA(in.Mem)
		e.maskTo(sz, rdx)
		e.storeInt(in.Dst, rdx)

	case code.LD:
		e.emitEA(in.Mem)
		e.translate(i)
		e.evMem(false, sz)
		e.loadSized(rax, sz)
		e.storeInt(in.Dst, rax) // loads zero-extend to full width

	case code.ST:
		e.emitEA(in.Mem)
		e.translate(i)
		e.evMem(true, sz)
		e.loadInt(rcx, in.Src1)
		e.storeSized(sz, rcx)

	case code.ADD, code.ADC, code.SUB, code.SBB:
		w := aluWidth(sz)
		e.intOp2(i, in)
		e.loadOp1(in)
		switch in.Op {
		case code.ADD:
			a.aluRR(opADD, w, rax, rcx)
		case code.SUB:
			a.aluRR(opSUB, w, rax, rcx)
		case code.ADC, code.SBB:
			// Materialize the guest carry into hardware CF: dl is 0/1, so
			// dl+0xff carries out exactly when dl==1.
			a.movRM(sz8b, rdx, rbp, e.cfD())
			a.aluRI8only(0, rdx, 0xff)
			if in.Op == code.ADC {
				a.aluRR(opADC, w, rax, rcx)
			} else {
				a.aluRR(opSBB, w, rax, rcx)
			}
		}
		e.flagsHW()
		e.writeIntResult(in.Dst, sz)

	case code.AND, code.OR, code.XOR:
		w := aluWidth(sz)
		e.intOp2(i, in)
		e.loadOp1(in)
		switch in.Op {
		case code.AND:
			a.aluRR(opAND, w, rax, rcx)
		case code.OR:
			a.aluRR(opOR, w, rax, rcx)
		default:
			a.aluRR(opXOR, w, rax, rcx)
		}
		// Logic ops clear hardware CF/OF, matching setLogicFlags.
		e.flagsHW()
		e.writeIntResult(in.Dst, sz)

	case code.IMUL:
		e.intOp2(i, in)
		e.loadOp1(in)
		switch sz {
		case 8:
			a.imulRR(sz64, rax, rcx)
		default:
			// sz 1 and 4 both compute in 32 bits on zero-extended
			// operands; the low sz bytes match the interpreter's
			// (a*b)&szMask.
			a.imulRR(sz32, rax, rcx)
		}
		e.maskTo(sz, rax)
		e.logicFlags(sz) // IMUL's real CF/OF differ; the oracle uses setLogicFlags
		e.writeIntResult(in.Dst, sz)

	case code.SHL, code.SHR, code.SAR:
		k := byte(in.Imm)
		var ext byte
		switch in.Op {
		case code.SHL:
			ext = 4
		case code.SHR:
			ext = 5
		default:
			ext = 7
		}
		e.loadOp1(in)
		switch sz {
		case 8:
			a.shiftRI(ext, sz64, rax, k)
		case 4:
			a.shiftRI(ext, sz32, rax, k)
		default:
			// Byte shifts run at 32 bits on the zero-extended value: SAR
			// then matches Go's arithmetic shift of a positive value, and
			// counts 8..31 correctly produce 0 after masking.
			a.shiftRI(ext, sz32, rax, k)
		}
		e.maskTo(sz, rax)
		e.logicFlags(sz) // shift CF/OF differ in hardware; oracle uses setLogicFlags
		e.writeIntResult(in.Dst, sz)

	case code.CMP:
		e.intOp2(i, in)
		e.loadOp1(in)
		a.aluRR(opCMP, aluWidth(sz), rax, rcx)
		e.flagsHW()

	case code.TEST:
		e.intOp2(i, in)
		e.loadOp1(in)
		a.testRR(aluWidth(sz), rax, rcx)
		e.flagsHW()

	case code.SETCC:
		e.condToAL(in.CC)
		a.movzxBRR(rax, rax)
		e.storeInt(in.Dst, rax)

	case code.CMOVCC:
		if in.HasMem {
			// The load always happens, even when the move does not.
			e.emitEA(in.Mem)
			e.translate(i)
			e.evMem(false, sz)
			e.loadSized(rcx, sz)
		} else {
			e.loadInt(rcx, in.Src1)
			e.maskTo(sz, rcx)
		}
		e.condToAL(in.CC)
		a.testRR(sz8b, rax, rax)
		skip := newLabel()
		a.jcc(hwE, skip)
		e.storeInt(in.Dst, rcx)
		a.bind(skip)

	case code.FMOV:
		a.movRM(sz64, rax, r15, fpDisp(in.Src1))
		a.movMR(sz64, r15, fpDisp(in.Dst), rax)
		a.movRM(sz64, rax, r15, fpDisp(in.Src1)+8)
		a.movMR(sz64, r15, fpDisp(in.Dst)+8, rax)

	case code.FLD:
		e.emitEA(in.Mem)
		e.translate(i)
		e.evMem(false, sz)
		e.loadSized(rax, sz)
		e.storeFPScalar(in.Dst)

	case code.FST:
		e.emitEA(in.Mem)
		e.translate(i)
		e.evMem(true, sz)
		a.movRM(sz64, rcx, r15, fpDisp(in.Src1))
		e.storeSized(sz, rcx)

	case code.FADD, code.FSUB, code.FMUL, code.FDIV:
		pre := byte(0xF3)
		if sz == 8 {
			pre = 0xF2
		}
		a.sseXM(pre, 0x10, xmm0, r15, fpDisp(in.Src1))
		if in.MemSrcALU() {
			e.emitEA(in.Mem)
			e.translate(i)
			e.evMem(false, sz)
			a.sseXM(pre, 0x10, xmm1, rax, 0)
		} else {
			a.sseXM(pre, 0x10, xmm1, r15, fpDisp(in.Src2))
		}
		var opb byte
		switch in.Op {
		case code.FADD:
			opb = 0x58
		case code.FSUB:
			opb = 0x5C
		case code.FMUL:
			opb = 0x59
		default:
			opb = 0x5E
		}
		a.sseXX(pre, opb, xmm0, xmm1)
		if sz == 4 {
			a.movdRX(rax, xmm0)
		} else {
			a.movqRX(rax, xmm0)
		}
		e.storeFPScalar(in.Dst)

	case code.FCMP:
		if sz == 4 {
			a.sseXM(0xF3, 0x10, xmm0, r15, fpDisp(in.Src1))
			a.sseXM(0, 0x2E, xmm0, r15, fpDisp(in.Src2)) // ucomiss
		} else {
			a.sseXM(0xF2, 0x10, xmm0, r15, fpDisp(in.Src1))
			a.sseXM(0x66, 0x2E, xmm0, r15, fpDisp(in.Src2)) // ucomisd
		}
		// Unordered sets ZF=PF=CF=1 in hardware, but the oracle's
		// x==y / x<y are false on NaN: mask ZF/CF with NOT PF.
		a.setccR(hwNP, rax)
		a.setccR(hwE, rcx)
		a.setccR(hwB, rdx)
		a.aluRR(opAND, sz8b, rcx, rax)
		a.aluRR(opAND, sz8b, rdx, rax)
		a.movMR(sz8b, rbp, e.zfD(), rcx)
		a.movMI8(rbp, e.sfD(), 0)
		a.movMI8(rbp, e.ofD(), 0)
		a.movMR(sz8b, rbp, e.cfD(), rdx)

	case code.CVTIF:
		a.movsxdRM(rax, r15, intDisp(in.Src1))
		if sz == 4 {
			a.cvtsi2x(0xF3, xmm0, rax)
			a.movdRX(rax, xmm0)
		} else {
			a.cvtsi2x(0xF2, xmm0, rax)
			a.movqRX(rax, xmm0)
		}
		e.storeFPScalar(in.Dst)

	case code.CVTFI:
		if sz == 4 {
			a.cvttx2si(0xF3, rax, r15, fpDisp(in.Src1))
		} else {
			a.cvttx2si(0xF2, rax, r15, fpDisp(in.Src1))
		}
		// cvtt leaves a 32-bit result; the store zero-extends, matching
		// writeInt(uint64(uint32(int32(f))), 4).
		e.storeInt(in.Dst, rax)

	case code.VLD:
		e.emitEA(in.Mem)
		e.translate(i)
		e.evMem(false, 16)
		a.sseXM(0, 0x10, xmm0, rax, 0) // movups
		a.sseXM(0, 0x11, xmm0, r15, fpDisp(in.Dst))

	case code.VST:
		e.emitEA(in.Mem)
		e.translate(i)
		e.evMem(true, 16)
		a.sseXM(0, 0x10, xmm0, r15, fpDisp(in.Src1))
		a.sseXM(0, 0x11, xmm0, rax, 0)

	case code.VADDF, code.VSUBF, code.VMULF, code.VADDI, code.VSUBI:
		a.sseXM(0, 0x10, xmm0, r15, fpDisp(in.Src1))
		if in.MemSrcALU() {
			e.emitEA(in.Mem)
			e.translate(i)
			e.evMem(false, 16)
			a.sseXM(0, 0x10, xmm1, rax, 0)
		} else {
			a.sseXM(0, 0x10, xmm1, r15, fpDisp(in.Src2))
		}
		switch in.Op {
		case code.VADDF:
			a.sseXX(0, 0x58, xmm0, xmm1) // addps
		case code.VSUBF:
			a.sseXX(0, 0x5C, xmm0, xmm1)
		case code.VMULF:
			a.sseXX(0, 0x59, xmm0, xmm1)
		case code.VADDI:
			a.sseXX(0x66, 0xFE, xmm0, xmm1) // paddd
		default:
			a.sseXX(0x66, 0xFA, xmm0, xmm1) // psubd
		}
		a.sseXM(0, 0x11, xmm0, r15, fpDisp(in.Dst))

	case code.VMULI:
		// PMULLD is SSE4.1; compute the four 32-bit lane products in
		// scalar registers instead, reading lane l of both sources before
		// writing lane l of the destination (safe under aliasing).
		base, disp := r15, fpDisp(in.Src2)
		if in.MemSrcALU() {
			e.emitEA(in.Mem)
			e.translate(i)
			e.evMem(false, 16)
			base, disp = rax, 0
		}
		for l := int32(0); l < 4; l++ {
			a.movRM(sz32, rcx, r15, fpDisp(in.Src1)+4*l)
			a.imulRM(rcx, base, disp+4*l)
			a.movMR(sz32, r15, fpDisp(in.Dst)+4*l, rcx)
		}

	case code.VSPLAT:
		a.movRM(sz32, rax, r15, fpDisp(in.Src1))
		for l := int32(0); l < 4; l++ {
			a.movMR(sz32, r15, fpDisp(in.Dst)+4*l, rax)
		}

	case code.VRSUM:
		a.sseXX(0, 0x57, xmm0, xmm0) // xorps: exact +0 accumulator
		for l := int32(0); l < 4; l++ {
			a.sseXM(0xF3, 0x58, xmm0, r15, fpDisp(in.Src1)+4*l) // addss
		}
		a.movdRX(rax, xmm0)
		e.storeFPScalar(in.Dst)
	}
}
