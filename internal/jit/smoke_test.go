package jit

import (
	"testing"

	"compisa/internal/code"
	"compisa/internal/cpu"
	"compisa/internal/encoding"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// Hand-program helpers mirroring the cpu package's test builders.

func ci(op code.Op, sz uint8) code.Instr {
	return code.Instr{Op: op, Sz: sz, Dst: code.NoReg, Src1: code.NoReg,
		Src2: code.NoReg, Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
}

func movImm(dst code.Reg, v int64, sz uint8) code.Instr {
	in := ci(code.MOV, sz)
	in.Dst = dst
	in.HasImm, in.Imm = true, v
	return in
}

func alu(op code.Op, dst, src2 code.Reg, sz uint8) code.Instr {
	in := ci(op, sz)
	in.Dst, in.Src1, in.Src2 = dst, dst, src2
	return in
}

func retR(r code.Reg) code.Instr {
	in := ci(code.RET, 0)
	in.Src1 = r
	return in
}

func mkProg(t testing.TB, fs isa.FeatureSet, instrs ...code.Instr) *code.Program {
	t.Helper()
	p := &code.Program{Name: "hand", FS: fs, Instrs: instrs}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := encoding.Layout(p, code.CodeBase); err != nil {
		t.Fatal(err)
	}
	return p
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// runBoth executes p against the interpreter and the JIT on independent
// clones of the same initial memory, returning both outcomes.
func runBoth(t testing.TB, p *code.Program, m *mem.Memory, opts cpu.RunOptions) (resI, resJ cpu.ExecResult, evI, evJ []cpu.Event, stI, stJ *cpu.State, errI, errJ error) {
	t.Helper()
	if m == nil {
		m = mem.New()
	}
	stI = cpu.NewState(m.Clone())
	resI, errI = cpu.RunPredecoded(cpu.Predecode(p), stI, opts, func(ev *cpu.Event) { evI = append(evI, *ev) })

	eng := New(Config{})
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	jopts := opts
	jopts.JIT = eng
	stJ = cpu.NewState(m.Clone())
	resJ, errJ = cpu.RunPredecoded(cpu.Predecode(p), stJ, jopts, func(ev *cpu.Event) { evJ = append(evJ, *ev) })
	if s := eng.Stats(); s.Runs == 0 {
		t.Fatalf("jit declined the run: %+v", s)
	}
	return
}

// checkSame asserts every observable matches between the two executions.
func checkSame(t testing.TB, resI, resJ cpu.ExecResult, evI, evJ []cpu.Event, stI, stJ *cpu.State, errI, errJ error) {
	t.Helper()
	if errString(errI) != errString(errJ) {
		t.Fatalf("error mismatch:\ninterp %v\njit    %v", errI, errJ)
	}
	if resI != resJ {
		t.Fatalf("ExecResult mismatch:\ninterp %+v\njit    %+v", resI, resJ)
	}
	if len(evI) != len(evJ) {
		t.Fatalf("event count mismatch: interp %d, jit %d", len(evI), len(evJ))
	}
	for j := range evI {
		if evI[j] != evJ[j] {
			t.Fatalf("event %d mismatch:\ninterp %+v\njit    %+v", j, evI[j], evJ[j])
		}
	}
	if stI.Int != stJ.Int {
		for r := range stI.Int {
			if stI.Int[r] != stJ.Int[r] {
				t.Errorf("r%d: interp %#x, jit %#x", r, stI.Int[r], stJ.Int[r])
			}
		}
		t.Fatal("integer state mismatch")
	}
	if stI.FP != stJ.FP {
		t.Fatal("fp state mismatch")
	}
	zi, si, oi, ci := stI.CondFlags()
	zj, sj, oj, cj := stJ.CondFlags()
	if zi != zj || si != sj || oi != oj || ci != cj {
		t.Fatalf("flag mismatch: interp %v%v%v%v, jit %v%v%v%v", zi, si, oi, ci, zj, sj, oj, cj)
	}
}

func TestJITSmokeArith(t *testing.T) {
	p := mkProg(t, isa.Superset,
		movImm(0, 10, 8),
		movImm(1, 3, 8),
		alu(code.SUB, 0, 1, 8),  // 7
		alu(code.IMUL, 0, 1, 8), // 21
		retR(0),
	)
	resI, resJ, evI, evJ, stI, stJ, errI, errJ := runBoth(t, p, nil, cpu.RunOptions{MaxInstrs: 1000})
	checkSame(t, resI, resJ, evI, evJ, stI, stJ, errI, errJ)
	if resJ.Ret != 21 {
		t.Fatalf("ret %d, want 21", resJ.Ret)
	}
}

func TestJITSmokeMemLoop(t *testing.T) {
	// Sum an array of 64 qwords via a backward branch, exercising the data
	// window, flags, and JCC templates.
	instrs := []code.Instr{
		movImm(8, int64(code.DataBase), 8), // base
		movImm(0, 0, 8),                    // sum
		movImm(1, 0, 8),                    // i
		movImm(2, 64, 8),                   // n
	}
	st := ci(code.ST, 8)
	st.Src1 = 1
	st.HasMem = true
	st.Mem = code.Mem{Base: 8, Index: 1, Scale: 8, Disp: 0}
	ld := ci(code.LD, 8)
	ld.Dst = 3
	ld.HasMem = true
	ld.Mem = code.Mem{Base: 8, Index: 1, Scale: 8, Disp: 0}
	cmp := ci(code.CMP, 8)
	cmp.Src1, cmp.Src2 = 1, 2
	jlt := ci(code.JCC, 0)
	jlt.CC, jlt.Target = code.CCLT, 4
	instrs = append(instrs,
		st,                      // 4: a[i] = i
		ld,                      // 5: r3 = a[i]
		alu(code.ADD, 0, 3, 8),  // 6: sum += r3
		movImm(3, 1, 8),         // 7
		alu(code.ADD, 1, 3, 8),  // 8: i++
		cmp,                     // 9
		jlt,                     // 10
		retR(0),
	)
	p := mkProg(t, isa.Superset, instrs...)
	resI, resJ, evI, evJ, stI, stJ, errI, errJ := runBoth(t, p, nil, cpu.RunOptions{MaxInstrs: 10000})
	checkSame(t, resI, resJ, evI, evJ, stI, stJ, errI, errJ)
	if want := uint64(64 * 63 / 2); resJ.Ret != want {
		t.Fatalf("ret %d, want %d", resJ.Ret, want)
	}
}

// TestJITDeclineLeavesInterpreterIntact runs on every platform: when the
// engine declines (unsupported platform stub, or any bailout), RunPredecoded
// must fall through to the interpreter with results unchanged.
func TestJITDeclineLeavesInterpreterIntact(t *testing.T) {
	eng := New(Config{Threshold: 1 << 30}) // never hot: always a bailout
	p := mkProg(t, isa.Superset,
		movImm(0, 5, 8),
		movImm(1, 4, 8),
		alu(code.IMUL, 0, 1, 8),
		retR(0),
	)
	st := cpu.NewState(mem.New())
	res, err := cpu.RunPredecoded(cpu.Predecode(p), st, cpu.RunOptions{MaxInstrs: 100, JIT: eng}, nil)
	if err != nil || res.Ret != 20 {
		t.Fatalf("res %+v err %v, want ret 20", res, err)
	}
	if s := eng.Stats(); s.Bailouts != 1 || s.Runs != 0 {
		t.Fatalf("expected one bailout and no native runs: %+v", s)
	}
}
