//go:build amd64 && linux

#include "textflag.h"

// func jitcall(entry uintptr, ctx *jitCtx)
//
// Transfers control to a generated module with the jitCtx pointer in DI.
// Generated code clobbers the scratch registers freely and pins BP, BX and
// R12-R15, so everything callee-saved under the Go internal ABI is
// preserved around the call. The module's exit stubs end in RET, which
// returns here. Generated code pushes nothing (besides this CALL's return
// address) and never calls back into Go, so NOSPLIT's guard headroom is
// ample.
TEXT ·jitcall(SB), NOSPLIT|NOFRAME, $0-16
	MOVQ entry+0(FP), AX
	MOVQ ctx+8(FP), DI
	PUSHQ BP
	PUSHQ BX
	PUSHQ R12
	PUSHQ R13
	PUSHQ R14
	PUSHQ R15
	CALL AX
	POPQ R15
	POPQ R14
	POPQ R13
	POPQ R12
	POPQ BX
	POPQ BP
	RET
