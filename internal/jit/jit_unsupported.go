//go:build !(amd64 && linux)

package jit

import "compisa/internal/cpu"

// archEngine is the no-op backend for platforms without a native emitter:
// every RunJIT offer is declined, so execution falls through to the
// interpreter and behavior is identical to a build without the JIT.
type archEngine struct{}

func (*archEngine) init() {}

func archAvailable() bool { return false }

func (e *Engine) runNative(progKey, *cpu.Predecoded, *cpu.State, cpu.RunOptions, func(*cpu.Event)) (cpu.ExecResult, bool, error) {
	e.stats.bailouts.Add(1)
	return cpu.ExecResult{}, false, nil
}

func (e *Engine) compile(*cpu.Predecoded) (bool, error) { return false, nil }
