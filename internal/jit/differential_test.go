// Differential equivalence suite for the template JIT: executed behind the
// cpu.RunOptions.JIT seam, it must reproduce the interpreter bit for bit —
// event streams, architectural state, ExecResult counters, profile
// encodings, and error values — across the full feature-set x region
// matrix, both guest targets (x86 variable-length and alpha64
// fixed-length), and a deterministic fuzz corpus. Every deopt guard kind is
// exercised explicitly in deopt_test.go.

package jit

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/mem"
	"compisa/internal/par"
	"compisa/internal/workload"
)

// matrixBudget truncates each (feature set, region) run, mirroring the cpu
// package's interpreter differential matrix.
const matrixBudget = 15_000

// buildRegion compiles one region for one feature set and guest target,
// exactly as the evaluation pipeline does.
func buildRegion(t testing.TB, r workload.Region, fs isa.FeatureSet, target string) (*code.Program, *mem.Memory) {
	t.Helper()
	f, m, err := r.Build(fs.Width)
	if err != nil {
		t.Fatalf("%s: build: %v", r.Name, err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{Verify: compiler.VerifyOff, Target: target})
	if err != nil {
		t.Fatalf("%s: compile: %v", r.Name, err)
	}
	prog.Name = r.Name
	return prog, m
}

// diffProfiles collects profiles through the interpreter and through the
// JIT over independent builds of the same region and demands byte-identical
// encodings, identical ExecResults, and identical errors.
func diffProfiles(t *testing.T, name string, eng *Engine, r workload.Region, fs isa.FeatureSet, target string) {
	t.Helper()
	prog1, m1 := buildRegion(t, r, fs, target)
	prog2, m2 := buildRegion(t, r, fs, target)

	opts := cpu.RunOptions{MaxInstrs: matrixBudget}
	pI, resI, errI := cpu.CollectProfileOpts(prog1, m1, opts)

	opts.JIT = eng
	pJ, resJ, errJ := cpu.CollectProfileOpts(prog2, m2, opts)

	if errString(errI) != errString(errJ) {
		t.Fatalf("%s: error mismatch:\ninterp %v\njit    %v", name, errI, errJ)
	}
	if resI != resJ {
		t.Fatalf("%s: ExecResult mismatch:\ninterp %+v\njit    %+v", name, resI, resJ)
	}
	if errI != nil {
		return // both aborted identically; no profiles to compare
	}
	bI, err := pI.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: encode interp: %v", name, err)
	}
	bJ, err := pJ.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: encode jit: %v", name, err)
	}
	if !bytes.Equal(bI, bJ) {
		t.Fatalf("%s: profile encodings differ:\ninterp %+v\njit    %+v", name, pI, pJ)
	}
}

// TestJITDifferentialProfileMatrix proves JIT/interpreter equivalence over
// every derived feature set crossed with every suite region.
func TestJITDifferentialProfileMatrix(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	sets := isa.Derive()
	regions := workload.Regions()
	if testing.Short() {
		sets = sets[:4]
		regions = regions[:8]
	}
	for _, fs := range sets {
		fs := fs
		t.Run(fs.ShortName(), func(t *testing.T) {
			t.Parallel()
			eng := New(Config{})
			for _, r := range regions {
				diffProfiles(t, r.Name, eng, r, fs, "")
			}
			if s := eng.Stats(); s.Runs == 0 {
				t.Fatalf("matrix never ran natively: %+v", s)
			}
		})
	}
}

// TestJITDifferentialAlpha64 runs the fixed-length alpha64 guest target
// through the same differential harness: encoded lengths and PCs differ
// from the x86 lowering, so this proves the templates take both from the
// predecode tables rather than assuming a target.
func TestJITDifferentialAlpha64(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	eng := New(Config{})
	regions := workload.Regions()
	if testing.Short() {
		regions = regions[:8]
	}
	for _, r := range regions {
		diffProfiles(t, r.Name, eng, r, isa.X86izedAlpha, "alpha64")
	}
	if s := eng.Stats(); s.Runs == 0 {
		t.Fatalf("alpha64 leg never ran natively: %+v", s)
	}
}

// fuzzProg assembles one pseudo-random but valid superset-ISA program with
// wider op coverage than the interpreter's own fuzz corpus: every ALU op at
// sizes 1/4/8, flag producers and consumers, predication on both senses,
// loads/stores of all sizes, memory-operand ALU, scalar and packed FP, the
// int/float converters, and forward conditional branches (so the program
// always terminates).
func fuzzProg(t testing.TB, rng *rand.Rand) *code.Program {
	t.Helper()
	n := 30 + rng.Intn(50)
	instrs := make([]code.Instr, 0, n+8)
	// r8 anchors the data region; r0..r7 are working registers.
	instrs = append(instrs, movImm(8, int64(code.DataBase), 8))
	for i := 0; i < 4; i++ {
		instrs = append(instrs, movImm(code.Reg(i), rng.Int63n(1<<32)-1<<31, 8))
	}
	// f0..f3 seeded from integer registers.
	for i := 0; i < 4; i++ {
		cv := ci(code.CVTIF, 8)
		cv.Dst, cv.Src1 = code.Reg(i), code.Reg(i)
		instrs = append(instrs, cv)
	}
	reg := func() code.Reg { return code.Reg(rng.Intn(8)) }
	freg := func() code.Reg { return code.Reg(rng.Intn(4)) }
	sz := func() uint8 {
		switch rng.Intn(3) {
		case 0:
			return 1
		case 1:
			return 4
		}
		return 8
	}
	fsz := func() uint8 {
		if rng.Intn(2) == 0 {
			return 4
		}
		return 8
	}
	memOp := func() code.Mem {
		return code.Mem{Base: 8, Index: code.NoReg, Scale: 1, Disp: int32(8 * rng.Intn(64))}
	}
	ccs := []code.CC{code.CCEQ, code.CCNE, code.CCLT, code.CCLE, code.CCGT, code.CCGE, code.CCB, code.CCBE, code.CCA, code.CCAE}
	pred := func(in *code.Instr) {
		if rng.Intn(4) == 0 {
			in.Pred, in.PredSense = reg(), rng.Intn(2) == 0
		}
	}
	for len(instrs) < n {
		switch rng.Intn(16) {
		case 0, 1, 2: // two-operand ALU at any width
			ops := []code.Op{code.ADD, code.SUB, code.AND, code.OR, code.XOR, code.IMUL, code.ADC, code.SBB}
			in := alu(ops[rng.Intn(len(ops))], reg(), reg(), sz())
			pred(&in)
			instrs = append(instrs, in)
		case 3: // immediate ALU
			ops := []code.Op{code.ADD, code.SUB, code.AND, code.OR, code.XOR}
			in := ci(ops[rng.Intn(len(ops))], sz())
			r := reg()
			in.Dst, in.Src1 = r, r
			in.HasImm, in.Imm = true, rng.Int63n(1<<16)-1<<15
			instrs = append(instrs, in)
		case 4: // immediate shift, including byte-width SAR
			ops := []code.Op{code.SHL, code.SHR, code.SAR}
			s := sz()
			in := ci(ops[rng.Intn(len(ops))], s)
			r := reg()
			in.Dst, in.Src1 = r, r
			lim := 31
			if s == 8 {
				lim = 63
			}
			in.HasImm, in.Imm = true, int64(1+rng.Intn(lim))
			instrs = append(instrs, in)
		case 5: // CMP or TEST to refresh flags
			op := code.CMP
			if rng.Intn(2) == 0 {
				op = code.TEST
			}
			in := ci(op, sz())
			in.Src1, in.Src2 = reg(), reg()
			instrs = append(instrs, in)
		case 6: // SETCC / CMOVCC
			if rng.Intn(2) == 0 {
				in := ci(code.SETCC, 4)
				in.Dst, in.CC = reg(), ccs[rng.Intn(len(ccs))]
				instrs = append(instrs, in)
			} else {
				in := ci(code.CMOVCC, 8)
				in.Dst, in.Src1 = reg(), reg()
				in.CC = ccs[rng.Intn(len(ccs))]
				if rng.Intn(3) == 0 {
					in.HasMem, in.Mem = true, memOp()
				}
				instrs = append(instrs, in)
			}
		case 7: // load of any size
			in := ci(code.LD, []uint8{1, 2, 4, 8}[rng.Intn(4)])
			in.Dst = reg()
			in.HasMem, in.Mem = true, memOp()
			pred(&in)
			instrs = append(instrs, in)
		case 8: // store of any size
			in := ci(code.ST, []uint8{1, 2, 4, 8}[rng.Intn(4)])
			in.Src1 = reg()
			in.HasMem, in.Mem = true, memOp()
			pred(&in)
			instrs = append(instrs, in)
		case 9: // memory-operand ALU
			ops := []code.Op{code.ADD, code.SUB, code.AND, code.XOR, code.IMUL}
			in := ci(ops[rng.Intn(len(ops))], sz())
			r := reg()
			in.Dst, in.Src1 = r, r
			in.HasMem, in.Mem = true, memOp()
			instrs = append(instrs, in)
		case 10: // MOV / MOVSX / LEA
			switch rng.Intn(3) {
			case 0:
				in := ci(code.MOV, sz())
				in.Dst, in.Src1 = reg(), reg()
				pred(&in)
				instrs = append(instrs, in)
			case 1:
				in := ci(code.MOVSX, 8)
				in.Dst, in.Src1 = reg(), reg()
				instrs = append(instrs, in)
			default:
				in := ci(code.LEA, 8)
				in.Dst = reg()
				in.HasMem = true
				in.Mem = code.Mem{Base: 8, Index: reg(), Scale: uint8(1 << rng.Intn(3)), Disp: int32(rng.Intn(256))}
				instrs = append(instrs, in)
			}
		case 11: // scalar FP arithmetic
			ops := []code.Op{code.FADD, code.FSUB, code.FMUL, code.FDIV}
			in := ci(ops[rng.Intn(len(ops))], fsz())
			in.Dst, in.Src1, in.Src2 = freg(), freg(), freg()
			instrs = append(instrs, in)
		case 12: // FP compare + FMOV
			in := ci(code.FCMP, fsz())
			in.Src1, in.Src2 = freg(), freg()
			instrs = append(instrs, in)
			mv := ci(code.FMOV, 8)
			mv.Dst, mv.Src1 = freg(), freg()
			instrs = append(instrs, mv)
		case 13: // FP memory traffic
			if rng.Intn(2) == 0 {
				in := ci(code.FLD, fsz())
				in.Dst = freg()
				in.HasMem, in.Mem = true, memOp()
				instrs = append(instrs, in)
			} else {
				in := ci(code.FST, fsz())
				in.Src1 = freg()
				in.HasMem, in.Mem = true, memOp()
				instrs = append(instrs, in)
			}
		case 14: // converters
			if rng.Intn(2) == 0 {
				in := ci(code.CVTIF, fsz())
				in.Dst, in.Src1 = freg(), reg()
				instrs = append(instrs, in)
			} else {
				in := ci(code.CVTFI, fsz())
				in.Dst, in.Src1 = reg(), freg()
				instrs = append(instrs, in)
			}
		case 15: // packed vector ops
			ops := []code.Op{code.VADDF, code.VSUBF, code.VMULF, code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM}
			in := ci(ops[rng.Intn(len(ops))], 16)
			in.Dst, in.Src1, in.Src2 = freg(), freg(), freg()
			instrs = append(instrs, in)
			if rng.Intn(3) == 0 {
				vl := ci(code.VLD, 16)
				vl.Dst = freg()
				vl.HasMem, vl.Mem = true, memOp()
				vs := ci(code.VST, 16)
				vs.Src1 = freg()
				vs.HasMem, vs.Mem = true, memOp()
				instrs = append(instrs, vl, vs)
			}
		}
	}
	// A couple of forward branches over the straight-line body, then RET.
	for i := 0; i < 2; i++ {
		at := 9 + rng.Intn(len(instrs)-10)
		target := at + 1 + rng.Intn(len(instrs)-at)
		jcc := ci(code.JCC, 0)
		jcc.CC = ccs[rng.Intn(len(ccs))]
		jcc.Target = int32(target)
		instrs = append(instrs[:at], append([]code.Instr{jcc}, instrs[at:]...)...)
		for j := range instrs {
			if instrs[j].Op == code.JCC && instrs[j].Target > int32(at) {
				instrs[j].Target++
			}
		}
	}
	instrs = append(instrs, retR(0))
	return mkProg(t, isa.Superset, instrs...)
}

// diffOne runs one program through both executors and demands identical
// event streams, results, errors, and architectural state.
func diffOne(t testing.TB, eng *Engine, p *code.Program, opts cpu.RunOptions) {
	t.Helper()
	var evI []cpu.Event
	stI := cpu.NewState(mem.New())
	resI, errI := cpu.RunPredecoded(cpu.Predecode(p), stI, opts, func(ev *cpu.Event) { evI = append(evI, *ev) })

	jopts := opts
	jopts.JIT = eng
	var evJ []cpu.Event
	stJ := cpu.NewState(mem.New())
	resJ, errJ := cpu.RunPredecoded(cpu.Predecode(p), stJ, jopts, func(ev *cpu.Event) { evJ = append(evJ, *ev) })

	checkSame(t, resI, resJ, evI, evJ, stI, stJ, errI, errJ)
}

// TestJITDifferentialExecFuzz drives both executors over a deterministic
// fuzz corpus and demands identical observables, including the budget-abort
// path.
func TestJITDifferentialExecFuzz(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	rng := rand.New(rand.NewSource(0xc0de))
	eng := New(Config{})
	corpus := 200
	if testing.Short() {
		corpus = 30
	}
	for i := 0; i < corpus; i++ {
		p := fuzzProg(t, rng)
		opts := cpu.RunOptions{MaxInstrs: 10_000}
		if i%7 == 0 {
			opts.MaxInstrs = 10 // budget-abort path, differentially
		}
		diffOne(t, eng, p, opts)
	}
	if s := eng.Stats(); s.Runs == 0 {
		t.Fatalf("fuzz corpus never ran natively: %+v", s)
	}
}

// FuzzJITDifferential is the native fuzz target (run at length in the
// nightly workflow): the seed picks a deterministic program and budget, and
// interpreter and JIT must agree on every observable.
func FuzzJITDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, int64(10_000))
	}
	f.Add(int64(99), int64(10)) // budget abort
	if !Available() {
		f.Skip("jit unavailable on this platform")
	}
	eng := New(Config{})
	f.Fuzz(func(t *testing.T, seed, budget int64) {
		if budget <= 0 || budget > 1_000_000 {
			budget = 10_000
		}
		rng := rand.New(rand.NewSource(seed))
		p := fuzzProg(t, rng)
		diffOne(t, eng, p, cpu.RunOptions{MaxInstrs: budget})
	})
}

// TestJITConcurrentWorkers shares one engine (and therefore one code cache)
// across par.Map workers, the way the evaluation pipeline does: under
// -race this proves the cache's hit/insert/evict paths and the per-run
// window aliasing are worker-safe.
func TestJITConcurrentWorkers(t *testing.T) {
	if !Available() {
		t.Skip("jit unavailable on this platform")
	}
	eng := New(Config{CacheEntries: 4}) // force eviction churn under load
	rng := rand.New(rand.NewSource(7))
	progs := make([]*code.Program, 12)
	for i := range progs {
		progs[i] = fuzzProg(t, rng)
	}
	const rounds = 48
	err := par.ForEach(context.Background(), rounds, 8, func(i int) error {
		p := progs[i%len(progs)]
		opts := cpu.RunOptions{MaxInstrs: 10_000, JIT: eng}
		st := cpu.NewState(mem.New())
		_, err := cpu.RunPredecoded(cpu.Predecode(p), st, opts, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Runs == 0 {
		t.Fatalf("no native runs: %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("cache eviction never exercised: %+v", s)
	}
	// Re-run one evicted program: correctness must survive eviction.
	diffOne(t, eng, progs[0], cpu.RunOptions{MaxInstrs: 10_000})
}
