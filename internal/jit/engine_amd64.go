//go:build amd64 && linux

package jit

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"compisa/internal/code"
	"compisa/internal/cpu"
	"compisa/internal/mem"
)

// chunkCap bounds how many instructions one native entry may retire; it is
// also the capacity of the pooled event buffer (32 bytes per slot).
const chunkCap = 8192

var eventPool = sync.Pool{New: func() any {
	b := make([]cpu.Event, chunkCap)
	return &b
}}

// cachedMod is a module plus its cache bookkeeping. refs counts running
// users; dead marks eviction from the cache; freed is CAS-guarded so the
// evictor and the last releaser cannot both unmap the pages.
type cachedMod struct {
	mod   *module
	refs  atomic.Int64
	dead  atomic.Bool
	freed atomic.Bool
	stamp int64 // LRU clock, guarded by archEngine.mu
}

func (cm *cachedMod) release() {
	if cm.refs.Add(-1) == 0 && cm.dead.Load() {
		cm.tryFree()
	}
}

func (cm *cachedMod) tryFree() {
	if cm.refs.Load() == 0 && cm.dead.Load() && cm.freed.CompareAndSwap(false, true) {
		cm.mod.pages.free()
	}
}

// modKey is a code-cache key: the program's content fingerprint plus the
// template variant (event-recording or tally-only). A program evaluated
// both with and without a consumer occupies two cache slots.
type modKey struct {
	key    progKey
	events bool
}

// archEngine is the native backend: an LRU code cache of compiled modules.
type archEngine struct {
	mu    sync.Mutex
	cache map[modKey]*cachedMod
	clock int64
}

func (ae *archEngine) init() { ae.cache = make(map[modKey]*cachedMod) }

// acquire returns a referenced module for key, compiling pd if it is not
// resident. Compilation happens outside the lock; a racing insert keeps the
// resident module and frees ours.
func (ae *archEngine) acquire(e *Engine, key modKey, pd *cpu.Predecoded) (*cachedMod, error) {
	ae.mu.Lock()
	if cm := ae.cache[key]; cm != nil {
		cm.refs.Add(1)
		ae.clock++
		cm.stamp = ae.clock
		ae.mu.Unlock()
		e.stats.hits.Add(1)
		return cm, nil
	}
	ae.mu.Unlock()

	mod, err := compileProgram(key.key, pd, key.events)
	if err != nil {
		return nil, err
	}
	cm := &cachedMod{mod: mod}
	cm.refs.Add(1)

	ae.mu.Lock()
	if old := ae.cache[key]; old != nil {
		old.refs.Add(1)
		ae.clock++
		old.stamp = ae.clock
		ae.mu.Unlock()
		mod.pages.free()
		e.stats.hits.Add(1)
		return old, nil
	}
	ae.clock++
	cm.stamp = ae.clock
	ae.cache[key] = cm
	var evicted []*cachedMod
	for len(ae.cache) > e.cfg.CacheEntries {
		var vk modKey
		var vm *cachedMod
		for k, c := range ae.cache {
			if c == cm {
				continue
			}
			if vm == nil || c.stamp < vm.stamp {
				vk, vm = k, c
			}
		}
		if vm == nil {
			break
		}
		delete(ae.cache, vk)
		vm.dead.Store(true)
		evicted = append(evicted, vm)
	}
	ae.mu.Unlock()
	e.stats.regions.Add(1)
	for _, v := range evicted {
		e.stats.evictions.Add(1)
		v.tryFree()
	}
	return cm, nil
}

// Guest memory windows aliased for native access. Sizes are in mem.PageSize
// units; every window is at least one page, so max = len-16 is always a
// valid non-negative bound.
const (
	winSlack    = 16 * mem.PageSize // headroom past the resident extent
	dataWinMin  = 4 * mem.PageSize
	dataWinMax  = 64 << 20
	spillWinLen = 17 * mem.PageSize
	ctxbWinLen  = 2 * mem.PageSize
	poolWinMin  = 2 * mem.PageSize
)

func clampWin(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func flagsToCtx(st *cpu.State, ctx *jitCtx) {
	zf, sf, of, cf := st.CondFlags()
	ctx.flags = [4]byte{b2u(zf), b2u(sf), b2u(of), b2u(cf)}
}

func flagsToState(ctx *jitCtx, st *cpu.State) {
	st.SetCondFlags(ctx.flags[0] != 0, ctx.flags[1] != 0, ctx.flags[2] != 0, ctx.flags[3] != 0)
}

// compile ensures pd's module is resident, without executing anything. It
// warms the event-recording variant — the one the evaluation pipeline runs,
// since profiling always attaches a consumer.
func (e *Engine) compile(pd *cpu.Predecoded) (bool, error) {
	cm, err := e.arch.acquire(e, modKey{key: fingerprint(pd), events: true}, pd)
	if err != nil {
		return true, err
	}
	cm.release()
	return true, nil
}

// runNative executes pd natively, reproducing the interpreter's results
// exactly. It returns handled=false only on a bailout that left no trace
// (compile failure), in which case the interpreter runs instead.
func (e *Engine) runNative(key progKey, pd *cpu.Predecoded, st *cpu.State, opts cpu.RunOptions, consume func(*cpu.Event)) (cpu.ExecResult, bool, error) {
	cm, cerr := e.arch.acquire(e, modKey{key: key, events: consume != nil}, pd)
	if cerr != nil {
		e.stats.bailouts.Add(1)
		return cpu.ExecResult{}, false, nil
	}
	defer cm.release()
	mod := cm.mod
	e.stats.runs.Add(1)

	p := pd.P
	n := len(p.Instrs)
	m := st.Mem
	cpu.InstallPool(p, m)

	// Alias the guest memory windows onto flat buffers the generated code
	// addresses directly. Accesses outside the windows deopt to the
	// interpreter, which reads the same sparse image — so sizing is purely
	// a performance decision, never a correctness one.
	dataLen := clampWin(m.Extent(code.DataBase, code.DataLimit)-code.DataBase+winSlack,
		dataWinMin, dataWinMax)
	poolLen := clampWin(m.Extent(code.PoolBase, code.SpillBase)-code.PoolBase+winSlack,
		poolWinMin, code.SpillBase-code.PoolBase)
	dataBuf := make([]byte, dataLen)
	spillBuf := make([]byte, spillWinLen)
	ctxbBuf := make([]byte, ctxbWinLen)
	poolBuf := make([]byte, poolLen)
	m.Alias(code.DataBase, dataBuf)
	m.Alias(code.SpillBase, spillBuf)
	m.Alias(code.ContextBase, ctxbBuf)
	m.Alias(code.PoolBase, poolBuf)

	// The event buffer only exists when someone consumes it; the tally-only
	// module variant never stores through the event cursor.
	var evbuf []cpu.Event
	if consume != nil {
		bufp := eventPool.Get().(*[]cpu.Event)
		defer eventPool.Put(bufp)
		evbuf = *bufp
	}

	// The ctx carries host addresses as uintptr (native stores into it must
	// not need write barriers); the real references stay live in this frame.
	ctx := &jitCtx{
		state:     uintptr(unsafe.Pointer(&st.Int[0])),
		dataHost:  uintptr(unsafe.Pointer(&dataBuf[0])),
		spillHost: uintptr(unsafe.Pointer(&spillBuf[0])),
		ctxbHost:  uintptr(unsafe.Pointer(&ctxbBuf[0])),
		poolHost:  uintptr(unsafe.Pointer(&poolBuf[0])),
		dataMax:   dataLen - 16,
		spillMax:  spillWinLen - 16,
		ctxbMax:   ctxbWinLen - 16,
		poolMax:   poolLen - 16,
	}
	flagsToCtx(st, ctx)
	defer func() {
		flagsToState(ctx, st)
		runtime.KeepAlive(st)
		runtime.KeepAlive(dataBuf)
		runtime.KeepAlive(spillBuf)
		runtime.KeepAlive(ctxbBuf)
		runtime.KeepAlive(poolBuf)
		runtime.KeepAlive(mod)
	}()

	var res cpu.ExecResult
	stride := opts.InterruptEvery
	if stride <= 0 {
		stride = 65536
	}
	nextPoll := stride
	idx := 0
	for {
		// Loop-top checks mirror the interpreter's order exactly: pc range,
		// then budget, then interrupt poll.
		if idx < 0 || idx >= n {
			return res, true, fmt.Errorf("cpu: %s: pc %d: %w", p.Name, idx, cpu.ErrPCOutOfRange)
		}
		if res.Instrs >= opts.MaxInstrs {
			return res, true, fmt.Errorf("cpu: %s after %d instructions: %w", p.Name, opts.MaxInstrs, cpu.ErrInstrBudget)
		}
		if opts.Interrupt != nil && res.Instrs >= nextPoll {
			nextPoll = res.Instrs + stride
			if err := opts.Interrupt(); err != nil {
				return res, true, fmt.Errorf("cpu: %s: %w: %w", p.Name, cpu.ErrInterrupted, err)
			}
		}

		// Size the chunk so native code can never overrun the budget or a
		// poll boundary: both checks re-run at this loop top with the same
		// instruction counts the interpreter would see.
		allowance := opts.MaxInstrs - res.Instrs
		if allowance > chunkCap {
			allowance = chunkCap
		}
		if opts.Interrupt != nil && nextPoll-res.Instrs < allowance {
			allowance = nextPoll - res.Instrs
		}

		if consume != nil {
			ctx.events = uintptr(unsafe.Pointer(&evbuf[0]))
		}
		ctx.remaining = allowance
		ctx.uops, ctx.predoff, ctx.branches = 0, 0, 0
		ctx.taken, ctx.loads, ctx.stores = 0, 0, 0
		ctx.resume = mod.entry + uintptr(mod.off[idx])
		jitcall(mod.entry, ctx)

		// Every committed event slot is one retired instruction. The
		// generated code tallied the chunk as it committed (the counts the
		// interpreter's loop bottom derives per event), so the driver only
		// walks the event buffer when someone is consuming it.
		executed := allowance - ctx.remaining
		res.Instrs += executed
		res.Uops += ctx.uops
		res.PredOff += ctx.predoff
		res.Branches += ctx.branches
		res.Taken += ctx.taken
		res.Loads += ctx.loads
		res.Stores += ctx.stores
		if consume != nil {
			for k := int64(0); k < executed; k++ {
				consume(&evbuf[k])
			}
		}

		switch ctx.exitKind {
		case exitDone:
			res.Ret = ctx.ret
			return res, true, nil

		case exitDeopt:
			// One instruction bounced to the interpreter. The loop-top
			// checks for it already passed: the refill guard guarantees
			// remaining >= 1 here, so executed < allowance and the budget
			// and poll boundaries are not yet reached.
			i := int(ctx.exitIdx)
			e.stats.deopts.Add(1)
			if mod.static[i] {
				e.stats.deoptUnsup.Add(1)
			} else {
				e.stats.deoptMem.Add(1)
			}
			flagsToState(ctx, st)
			var ev cpu.Event
			next, done, ret, serr := cpu.StepOne(pd, st, i, &ev)
			// The interpreter counts the instruction before dispatching it,
			// so a failing instruction is still counted.
			res.Instrs++
			res.Uops += int64(ev.Uops)
			flagsToCtx(st, ctx)
			if serr != nil {
				return res, true, serr
			}
			if done {
				res.Ret = ret
				if consume != nil {
					consume(&ev)
				}
				return res, true, nil
			}
			if ev.PredOff {
				res.PredOff++
			}
			if p.Instrs[ev.Idx].Op == code.JCC {
				res.Branches++
				if ev.Taken {
					res.Taken++
				}
			}
			if ev.IsLoad {
				res.Loads++
			}
			if ev.IsStore {
				res.Stores++
			}
			if consume != nil {
				consume(&ev)
			}
			idx = next

		default: // exitResume: refill or branch out of range
			idx = int(ctx.exitIdx)
		}
	}
}
