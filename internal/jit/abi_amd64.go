//go:build amd64 && linux

package jit

import (
	"unsafe"

	"compisa/internal/cpu"
)

// jitCtx is the shared frame between the Go driver and generated code. The
// entry thunk loads the pinned registers from it, the exit stubs store the
// cursor state back, and guest condition flags live in its flags bytes so a
// deopt can rebuild cpu.State.Flags exactly.
//
// Host addresses are held as uintptr on purpose: generated code writes some
// of these fields without write barriers, so nothing in here may be the
// only reference keeping a Go object alive. The driver keeps the real
// references in its frame for the duration of the run.
//
// Register plan while native code runs:
//
//	rbp  = &jitCtx            rbx = remaining chunk allowance
//	r15  = &State.Int[0]      r14 = event cursor
//	r13  = data window host   r12 = spill window host
//	rax, rcx, rdx, rsi, rdi, r8-r11, xmm0-xmm2 = scratch
type jitCtx struct {
	state     uintptr // &State.Int[0]; State.FP at +fpOff
	events    uintptr // event cursor, advanced 32 bytes per commit
	remaining int64   // chunk allowance countdown
	resume    uintptr // native address to enter at
	dataHost  uintptr // host base of the aliased data window
	spillHost uintptr
	ctxbHost  uintptr // binary-translator register-context window
	poolHost  uintptr
	// Window bounds for the translate cascade: (guestAddr - base) must be
	// <= bound, where bound = windowLen-16 so any access size up to 16
	// bytes stays inside the aliased buffer.
	dataMax  uint64
	spillMax uint64
	ctxbMax  uint64
	poolMax  uint64
	// Per-chunk tally counters, bumped by generated code on committed
	// events only (a deopted instruction leaves them untouched, so the
	// interpreter's StepOne accounting never double-counts). They let the
	// driver fill ExecResult without touching the event buffer at all when
	// no consumer is attached.
	uops     int64
	predoff  int64
	branches int64
	taken    int64
	loads    int64
	stores   int64
	ret      uint64 // RET checksum on exitDone
	exitIdx  int32
	exitKind int32
	flags    [4]byte // zf, sf, of, cf as 0/1 bytes
}

// Native exit kinds (ctx.exitKind).
const (
	exitResume = 0 // re-enter the driver loop at exitIdx (refill/branch-out)
	exitDeopt  = 1 // instruction exitIdx needs the interpreter
	exitDone   = 2 // RET committed; ctx.ret holds the checksum
)

// ctxOff holds jitCtx field offsets for the emitter.
var ctxOff = struct {
	state, events, remaining, resume           int32
	dataHost, spillHost, ctxbHost, poolHost    int32
	dataMax, spillMax, ctxbMax, poolMax        int32
	uops, predoff, branches, taken             int32
	loads, stores                              int32
	ret, exitIdx, exitKind, flags              int32
}{
	state:     int32(unsafe.Offsetof(jitCtx{}.state)),
	events:    int32(unsafe.Offsetof(jitCtx{}.events)),
	remaining: int32(unsafe.Offsetof(jitCtx{}.remaining)),
	resume:    int32(unsafe.Offsetof(jitCtx{}.resume)),
	dataHost:  int32(unsafe.Offsetof(jitCtx{}.dataHost)),
	spillHost: int32(unsafe.Offsetof(jitCtx{}.spillHost)),
	ctxbHost:  int32(unsafe.Offsetof(jitCtx{}.ctxbHost)),
	poolHost:  int32(unsafe.Offsetof(jitCtx{}.poolHost)),
	dataMax:   int32(unsafe.Offsetof(jitCtx{}.dataMax)),
	spillMax:  int32(unsafe.Offsetof(jitCtx{}.spillMax)),
	ctxbMax:   int32(unsafe.Offsetof(jitCtx{}.ctxbMax)),
	poolMax:   int32(unsafe.Offsetof(jitCtx{}.poolMax)),
	uops:      int32(unsafe.Offsetof(jitCtx{}.uops)),
	predoff:   int32(unsafe.Offsetof(jitCtx{}.predoff)),
	branches:  int32(unsafe.Offsetof(jitCtx{}.branches)),
	taken:     int32(unsafe.Offsetof(jitCtx{}.taken)),
	loads:     int32(unsafe.Offsetof(jitCtx{}.loads)),
	stores:    int32(unsafe.Offsetof(jitCtx{}.stores)),
	ret:       int32(unsafe.Offsetof(jitCtx{}.ret)),
	exitIdx:   int32(unsafe.Offsetof(jitCtx{}.exitIdx)),
	exitKind:  int32(unsafe.Offsetof(jitCtx{}.exitKind)),
	flags:     int32(unsafe.Offsetof(jitCtx{}.flags)),
}

// evOff holds cpu.Event field offsets; templates store event slots with the
// exact memory layout the interpreter's consumers see.
var evOff = struct {
	idx, pc, length, uops, taken          int32
	memAddr, memSz, isLoad, isStore, pred int32
	size                                  int32
}{
	idx:     int32(unsafe.Offsetof(cpu.Event{}.Idx)),
	pc:      int32(unsafe.Offsetof(cpu.Event{}.PC)),
	length:  int32(unsafe.Offsetof(cpu.Event{}.Len)),
	uops:    int32(unsafe.Offsetof(cpu.Event{}.Uops)),
	taken:   int32(unsafe.Offsetof(cpu.Event{}.Taken)),
	memAddr: int32(unsafe.Offsetof(cpu.Event{}.MemAddr)),
	memSz:   int32(unsafe.Offsetof(cpu.Event{}.MemSz)),
	isLoad:  int32(unsafe.Offsetof(cpu.Event{}.IsLoad)),
	isStore: int32(unsafe.Offsetof(cpu.Event{}.IsStore)),
	pred:    int32(unsafe.Offsetof(cpu.Event{}.PredOff)),
	size:    int32(unsafe.Sizeof(cpu.Event{})),
}

// fpOff is the byte offset of State.FP relative to &State.Int[0].
var fpOff = int32(unsafe.Offsetof(cpu.State{}.FP) - unsafe.Offsetof(cpu.State{}.Int))

// layoutOK gates the whole backend on the struct layouts the emitter bakes
// into generated code. If the compiler ever lays cpu.Event out differently,
// the engine declines every run instead of miscompiling.
var layoutOK = evOff.idx == 0 && evOff.pc == 4 && evOff.length == 8 &&
	evOff.uops == 9 && evOff.taken == 10 && evOff.memAddr == 16 &&
	evOff.memSz == 24 && evOff.isLoad == 25 && evOff.isStore == 26 &&
	evOff.pred == 27 && evOff.size == 32 &&
	unsafe.Offsetof(cpu.State{}.Int) == 0

func archAvailable() bool { return layoutOK }

// jitcall transfers control to generated code with ctx in DI, saving the
// callee-saved registers the templates pin. Implemented in
// jitcall_amd64.s.
//
//go:noescape
func jitcall(entry uintptr, ctx *jitCtx)
