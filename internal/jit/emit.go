//go:build amd64 && linux

package jit

import (
	"encoding/binary"
	"fmt"
	"syscall"
	"unsafe"
)

// This file is the shared emit layer: a small amd64 assembler (just the
// encodings the templates need), rel32 label fixups, and the W^X lifecycle
// of executable pages — code is assembled into a Go buffer, copied into a
// PROT_READ|PROT_WRITE mapping, and the mapping is flipped to
// PROT_READ|PROT_EXEC before anything may jump to it. Pages are unmapped
// when the owning module leaves the code cache and its last user releases
// it.

// gpr numbers an amd64 general-purpose register (encoding order).
type gpr uint8

const (
	rax gpr = iota
	rcx
	rdx
	rbx
	rsp
	rbp
	rsi
	rdi
	r8
	r9
	r10
	r11
	r12
	r13
	r14
	r15
)

// xmm numbers an SSE register. Only xmm0-xmm7 are used, so no REX.R.
type xmm uint8

const (
	xmm0 xmm = iota
	xmm1
)

// label is a jump target with rel32 fixups.
type label struct {
	pos  int32 // byte offset once bound, -1 before
	refs []int32
}

func newLabel() *label { return &label{pos: -1} }

type asm struct {
	b []byte
}

func (a *asm) here() int32 { return int32(len(a.b)) }

func (a *asm) u8(v byte)  { a.b = append(a.b, v) }
func (a *asm) u32(v uint32) {
	a.b = append(a.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (a *asm) u64(v uint64) {
	a.u32(uint32(v))
	a.u32(uint32(v >> 32))
}

// bind places l at the current position and patches prior references.
func (a *asm) bind(l *label) {
	l.pos = a.here()
	for _, site := range l.refs {
		binary.LittleEndian.PutUint32(a.b[site:], uint32(l.pos-(site+4)))
	}
	l.refs = l.refs[:0]
}

// rel32 emits a 4-byte relative displacement to l (to be patched if l is
// unbound).
func (a *asm) rel32(l *label) {
	if l.pos >= 0 {
		a.u32(uint32(l.pos - (a.here() + 4)))
		return
	}
	l.refs = append(l.refs, a.here())
	a.u32(0)
}

// rex emits a REX prefix when any bit is needed; force emits 0x40 even
// without bits (required to address sil/dil/bpl/spl — unused here, but it
// keeps the helper honest for 8-bit ops).
func (a *asm) rex(w bool, rext, xext, bext, force bool) {
	var v byte = 0x40
	if w {
		v |= 8
	}
	if rext {
		v |= 4
	}
	if xext {
		v |= 2
	}
	if bext {
		v |= 1
	}
	if v != 0x40 || force {
		a.u8(v)
	}
}

// mrm emits a ModRM (+SIB) byte sequence for [base+disp] with the given
// /reg field (low 3 bits only; REX.R is the caller's job).
func (a *asm) mrm(regField byte, base gpr, disp int32) {
	b := byte(base) & 7
	sib := b == 4 // rsp/r12 demand a SIB byte
	var mod byte
	switch {
	case disp == 0 && b != 5:
		mod = 0
	case disp >= -128 && disp <= 127:
		mod = 1
	default:
		mod = 2
	}
	rm := b
	if sib {
		rm = 4
	}
	a.u8(mod<<6 | regField<<3 | rm)
	if sib {
		a.u8(0x20 | b) // scale=1, index=none, base
	}
	switch mod {
	case 1:
		a.u8(byte(disp))
	case 2:
		a.u32(uint32(disp))
	}
}

// opsz is the operand width of an integer instruction.
type opsz uint8

const (
	sz8b opsz = 1 // byte
	sz32 opsz = 4
	sz64 opsz = 8
)

// aluRM emits "op reg, [base+disp]" using the register-destination opcode
// base (e.g. 0x03 for ADD): opbase-1 is the 8-bit form.
func (a *asm) aluRM(opbase byte, sz opsz, dst gpr, base gpr, disp int32) {
	a.rex(sz == sz64, dst >= r8, false, base >= r8, false)
	if sz == sz8b {
		a.u8(opbase - 1)
	} else {
		a.u8(opbase)
	}
	a.mrm(byte(dst)&7, base, disp)
}

// aluRR emits "op dst, src" (register forms of the classic ALU group).
func (a *asm) aluRR(opbase byte, sz opsz, dst, src gpr) {
	a.rex(sz == sz64, dst >= r8, false, src >= r8, false)
	if sz == sz8b {
		a.u8(opbase - 1)
	} else {
		a.u8(opbase)
	}
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
}

// Classic ALU opcode bases (register-destination form).
const (
	opADD = 0x03
	opOR  = 0x0B
	opADC = 0x13
	opSBB = 0x1B
	opAND = 0x23
	opSUB = 0x2B
	opXOR = 0x33
	opCMP = 0x3B
)

// testRR emits "test r1, r2" at the given width.
func (a *asm) testRR(sz opsz, r1, r2 gpr) {
	a.rex(sz == sz64, r2 >= r8, false, r1 >= r8, false)
	if sz == sz8b {
		a.u8(0x84)
	} else {
		a.u8(0x85)
	}
	a.u8(0xC0 | (byte(r2)&7)<<3 | byte(r1)&7)
}

// movRM loads reg from [base+disp] at the given width (8-bit loads should
// use movzxBRM instead; this 8-bit form merges into the low byte).
func (a *asm) movRM(sz opsz, dst gpr, base gpr, disp int32) {
	a.rex(sz == sz64, dst >= r8, false, base >= r8, false)
	if sz == sz8b {
		a.u8(0x8A)
	} else {
		a.u8(0x8B)
	}
	a.mrm(byte(dst)&7, base, disp)
}

// movMR stores reg to [base+disp] at the given width.
func (a *asm) movMR(sz opsz, base gpr, disp int32, src gpr) {
	a.rex(sz == sz64, src >= r8, false, base >= r8, false)
	if sz == sz8b {
		a.u8(0x88)
	} else {
		a.u8(0x89)
	}
	a.mrm(byte(src)&7, base, disp)
}

// movMR16 stores the low 16 bits of src to [base+disp].
func (a *asm) movMR16(base gpr, disp int32, src gpr) {
	a.u8(0x66)
	a.rex(false, src >= r8, false, base >= r8, false)
	a.u8(0x89)
	a.mrm(byte(src)&7, base, disp)
}

// movRR copies a 64-bit register.
func (a *asm) movRR(dst, src gpr) {
	a.rex(true, dst >= r8, false, src >= r8, false)
	a.u8(0x8B)
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
}

// movzxBRM zero-extends a byte load into a 64-bit register.
func (a *asm) movzxBRM(dst gpr, base gpr, disp int32) {
	a.rex(false, dst >= r8, false, base >= r8, false)
	a.u8(0x0F)
	a.u8(0xB6)
	a.mrm(byte(dst)&7, base, disp)
}

// movzxWRM zero-extends a 16-bit load into a 64-bit register.
func (a *asm) movzxWRM(dst gpr, base gpr, disp int32) {
	a.rex(false, dst >= r8, false, base >= r8, false)
	a.u8(0x0F)
	a.u8(0xB7)
	a.mrm(byte(dst)&7, base, disp)
}

// movzxBRR zero-extends the low byte of src into dst (32-bit dest zeroes
// the upper half).
func (a *asm) movzxBRR(dst, src gpr) {
	a.rex(false, dst >= r8, false, src >= r8, false)
	a.u8(0x0F)
	a.u8(0xB6)
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
}

// mov32RR truncates src to 32 bits in dst ("mov dst32, src32"), zeroing the
// upper half.
func (a *asm) mov32RR(dst, src gpr) {
	a.rex(false, dst >= r8, false, src >= r8, false)
	a.u8(0x8B)
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
}

// movsxdRM sign-extends a 32-bit load into a 64-bit register.
func (a *asm) movsxdRM(dst gpr, base gpr, disp int32) {
	a.rex(true, dst >= r8, false, base >= r8, false)
	a.u8(0x63)
	a.mrm(byte(dst)&7, base, disp)
}

// movRI loads a 64-bit immediate, shrinking the encoding when possible.
func (a *asm) movRI(dst gpr, v uint64) {
	switch {
	case v <= 0xFFFF_FFFF:
		// 32-bit mov zero-extends.
		a.rex(false, false, false, dst >= r8, false)
		a.u8(0xB8 + byte(dst)&7)
		a.u32(uint32(v))
	case int64(v) == int64(int32(v)):
		a.rex(true, false, false, dst >= r8, false)
		a.u8(0xC7)
		a.u8(0xC0 | byte(dst)&7)
		a.u32(uint32(v))
	default:
		a.rex(true, false, false, dst >= r8, false)
		a.u8(0xB8 + byte(dst)&7)
		a.u64(v)
	}
}

// movMI32 stores a 32-bit immediate to [base+disp]; with w=true the
// immediate is sign-extended to 64 bits.
func (a *asm) movMI32(w bool, base gpr, disp int32, v uint32) {
	a.rex(w, false, false, base >= r8, false)
	a.u8(0xC7)
	a.mrm(0, base, disp)
	a.u32(v)
}

// movMI8 stores a byte immediate to [base+disp].
func (a *asm) movMI8(base gpr, disp int32, v byte) {
	a.rex(false, false, false, base >= r8, false)
	a.u8(0xC6)
	a.mrm(0, base, disp)
	a.u8(v)
}

// aluRI emits "op reg, imm32" with the /ext group-1 extension (ADD=0,
// OR=1, ADC=2, SBB=3, AND=4, SUB=5, XOR=6, CMP=7) at 32- or 64-bit width.
func (a *asm) aluRI(ext byte, sz opsz, r gpr, v int32) {
	a.rex(sz == sz64, false, false, r >= r8, false)
	if v >= -128 && v <= 127 {
		a.u8(0x83)
		a.u8(0xC0 | ext<<3 | byte(r)&7)
		a.u8(byte(v))
		return
	}
	a.u8(0x81)
	a.u8(0xC0 | ext<<3 | byte(r)&7)
	a.u32(uint32(v))
}

// aluMI emits "op qword [base+disp], imm" with the /ext group-1 extension
// (the tally-counter RMW form).
func (a *asm) aluMI(ext byte, base gpr, disp int32, v int32) {
	a.rex(true, false, false, base >= r8, false)
	if v >= -128 && v <= 127 {
		a.u8(0x83)
		a.mrm(ext, base, disp)
		a.u8(byte(v))
		return
	}
	a.u8(0x81)
	a.mrm(ext, base, disp)
	a.u32(uint32(v))
}

// aluRI8only emits the 8-bit "op reg8, imm8" form (e.g. add dl, 0xff for
// carry materialization).
func (a *asm) aluRI8only(ext byte, r gpr, v byte) {
	a.rex(false, false, false, r >= r8, false)
	a.u8(0x80)
	a.u8(0xC0 | ext<<3 | byte(r)&7)
	a.u8(v)
}

// shiftRI emits "shl/shr/sar reg, imm8" (ext: SHL=4, SHR=5, SAR=7).
func (a *asm) shiftRI(ext byte, sz opsz, r gpr, k byte) {
	a.rex(sz == sz64, false, false, r >= r8, false)
	if sz == sz8b {
		a.u8(0xC0)
	} else {
		a.u8(0xC1)
	}
	a.u8(0xC0 | ext<<3 | byte(r)&7)
	a.u8(k)
}

// imulRR emits "imul dst, src" (0F AF) at 32- or 64-bit width.
func (a *asm) imulRR(sz opsz, dst, src gpr) {
	a.rex(sz == sz64, dst >= r8, false, src >= r8, false)
	a.u8(0x0F)
	a.u8(0xAF)
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
}

// imulRM emits "imul dst32, [base+disp]".
func (a *asm) imulRM(dst gpr, base gpr, disp int32) {
	a.rex(false, dst >= r8, false, base >= r8, false)
	a.u8(0x0F)
	a.u8(0xAF)
	a.mrm(byte(dst)&7, base, disp)
}

// imulRRI emits "imul dst, src, imm32".
func (a *asm) imulRRI(dst, src gpr, v int32) {
	a.rex(true, dst >= r8, false, src >= r8, false)
	a.u8(0x69)
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
	a.u32(uint32(v))
}

// x86 condition encodings for Jcc/SETcc (low nibble of the opcode).
const (
	hwO  = 0x0
	hwB  = 0x2 // below (CF)
	hwAE = 0x3
	hwE  = 0x4 // equal (ZF)
	hwNE = 0x5
	hwBE = 0x6
	hwA  = 0x7
	hwS  = 0x8
	hwP  = 0xA
	hwNP = 0xB
	hwL  = 0xC
	hwGE = 0xD
	hwLE = 0xE
	hwG  = 0xF
)

// jcc emits a rel32 conditional jump to l.
func (a *asm) jcc(cc byte, l *label) {
	a.u8(0x0F)
	a.u8(0x80 | cc)
	a.rel32(l)
}

// jmp emits a rel32 unconditional jump to l.
func (a *asm) jmp(l *label) {
	a.u8(0xE9)
	a.rel32(l)
}

// jmpM emits an indirect jump through [base+disp].
func (a *asm) jmpM(base gpr, disp int32) {
	a.rex(false, false, false, base >= r8, false)
	a.u8(0xFF)
	a.mrm(4, base, disp)
}

// setccR emits "setcc reg8" (reg must be rax..rbx to avoid REX rules).
func (a *asm) setccR(cc byte, r gpr) {
	a.u8(0x0F)
	a.u8(0x90 | cc)
	a.u8(0xC0 | byte(r)&7)
}

// setccM emits "setcc byte [base+disp]".
func (a *asm) setccM(cc byte, base gpr, disp int32) {
	a.rex(false, false, false, base >= r8, false)
	a.u8(0x0F)
	a.u8(0x90 | cc)
	a.mrm(0, base, disp)
}

// cmpMI8 emits "cmp byte [base+disp], imm8".
func (a *asm) cmpMI8(base gpr, disp int32, v byte) {
	a.rex(false, false, false, base >= r8, false)
	a.u8(0x80)
	a.mrm(7, base, disp)
	a.u8(v)
}

// decR emits "dec reg64".
func (a *asm) decR(r gpr) {
	a.rex(true, false, false, r >= r8, false)
	a.u8(0xFF)
	a.u8(0xC8 | byte(r)&7)
}

// retn emits a near return.
func (a *asm) retn() { a.u8(0xC3) }

// SSE helpers. prefix is 0 (none), 0x66, 0xF2 or 0xF3; the REX (if any)
// must sit between the prefix and the 0F escape.

func (a *asm) sseXM(prefix byte, op byte, x xmm, base gpr, disp int32) {
	if prefix != 0 {
		a.u8(prefix)
	}
	a.rex(false, false, false, base >= r8, false)
	a.u8(0x0F)
	a.u8(op)
	a.mrm(byte(x)&7, base, disp)
}

func (a *asm) sseXX(prefix byte, op byte, dst, src xmm) {
	if prefix != 0 {
		a.u8(prefix)
	}
	a.u8(0x0F)
	a.u8(op)
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
}

// movdRX moves the low 32 bits of an xmm into a GPR (zero-extended).
func (a *asm) movdRX(dst gpr, src xmm) {
	a.u8(0x66)
	a.rex(false, false, false, dst >= r8, false)
	a.u8(0x0F)
	a.u8(0x7E)
	a.u8(0xC0 | (byte(src)&7)<<3 | byte(dst)&7)
}

// movqRX moves the low 64 bits of an xmm into a GPR.
func (a *asm) movqRX(dst gpr, src xmm) {
	a.u8(0x66)
	a.rex(true, false, false, dst >= r8, false)
	a.u8(0x0F)
	a.u8(0x7E)
	a.u8(0xC0 | (byte(src)&7)<<3 | byte(dst)&7)
}

// cvtsi2x converts a 64-bit integer register to scalar float: prefix 0xF3
// for ss, 0xF2 for sd.
func (a *asm) cvtsi2x(prefix byte, dst xmm, src gpr) {
	a.u8(prefix)
	a.rex(true, false, false, src >= r8, false)
	a.u8(0x0F)
	a.u8(0x2A)
	a.u8(0xC0 | (byte(dst)&7)<<3 | byte(src)&7)
}

// cvttx2si truncates a scalar float at [base+disp] to a 32-bit integer.
func (a *asm) cvttx2si(prefix byte, dst gpr, base gpr, disp int32) {
	a.u8(prefix)
	a.rex(false, dst >= r8, false, base >= r8, false)
	a.u8(0x0F)
	a.u8(0x2C)
	a.mrm(byte(dst)&7, base, disp)
}

// execPages is a finished code mapping.
type execPages struct {
	buf []byte // the live mapping (RX after seal)
}

// newExecPages copies code into a fresh RW anonymous mapping and flips it
// to RX (the W^X discipline: no page is ever writable and executable at
// once).
func newExecPages(codeBytes []byte) (*execPages, error) {
	n := (len(codeBytes) + syscall.Getpagesize() - 1) &^ (syscall.Getpagesize() - 1)
	if n == 0 {
		n = syscall.Getpagesize()
	}
	m, err := syscall.Mmap(-1, 0, n, syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("jit: mmap code pages: %w", err)
	}
	copy(m, codeBytes)
	if err := syscall.Mprotect(m, syscall.PROT_READ|syscall.PROT_EXEC); err != nil {
		syscall.Munmap(m)
		return nil, fmt.Errorf("jit: mprotect RX: %w", err)
	}
	return &execPages{buf: m}, nil
}

// base returns the executable base address.
func (p *execPages) base() uintptr { return uintptr(unsafe.Pointer(&p.buf[0])) }

// free unmaps the pages. The caller must guarantee no thread can still be
// executing in them (the module refcount does).
func (p *execPages) free() {
	if p.buf != nil {
		syscall.Munmap(p.buf)
		p.buf = nil
	}
}
