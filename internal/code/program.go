package code

import (
	"fmt"
	"strings"

	"compisa/internal/isa"
)

// CompileStats records code-generation statistics the paper reports in
// Section III (spill/refill/rematerialization counts are *static*; dynamic
// counts come from execution).
type CompileStats struct {
	SpillStores   int // stores inserted by the register allocator
	RefillLoads   int // reloads inserted by the register allocator
	ElidedReloads int // redundant reloads removed by the emit peephole
	Remats        int // rematerialized constants instead of reloads
	IfConversions int // branches removed by if-conversion
	VectorLoops   int // loops vectorized to SSE
	ScalarLoops   int // vectorizable loops left scalar (no SIMD)
	FoldedLoads   int // loads folded into ALU memory operands (x86 only)
	StaticInstrs  int
	CodeBytes     int
}

// Memory-map conventions shared by the compiler, executor, and binary
// translator. Workload data lives below DataLimit; the compiler's constant
// pool and the register-context / spill block live in reserved regions
// addressable with absolute 32-bit displacements.
const (
	// CodeBase is the virtual address programs are laid out at. Workload
	// data must live in [DataBase, DataLimit).
	CodeBase = 0x0100_0000
	// DataBase is the lowest address workload data may use.
	DataBase = 0x0800_0000
	// DataLimit is the exclusive upper bound for workload data addresses.
	DataLimit = 0x6000_0000
	// PoolBase is where each program's constant pool is placed.
	PoolBase = 0x6f00_0000
	// SpillBase is the base of the register allocator's spill area.
	SpillBase = 0x7000_0000
	// ContextBase is the base of the binary translator's register context
	// block (used to emulate registers beyond a core's register depth).
	ContextBase = 0x7100_0000
)

// PoolConst is one constant-pool entry: Size (4 or 8) bytes holding Bits at
// absolute address Addr. The runtime writes the pool into memory before
// executing the program.
type PoolConst struct {
	Addr uint32
	Size uint8
	Bits uint64
}

// Program is one compiled region: machine code plus layout.
type Program struct {
	Name string
	// FS is the feature set the region was compiled for.
	FS isa.FeatureSet
	// Target names the guest-ISA encoding the program is laid out and
	// encoded for (isa.TargetByName); empty means the default variable-
	// length x86 encoding. Execution semantics are target-independent —
	// only layout, encoding, and operand legality differ.
	Target string
	Instrs []Instr
	// PC is the byte address of each instruction after layout; Size is
	// the total code size. Filled by encoding.Layout.
	PC   []uint32
	Size int
	// Base is the virtual address the code is laid out at.
	Base uint32
	// Pool holds FP constants the code loads with absolute addressing.
	Pool []PoolConst
	// CompactEncoding selects the hypothetical from-scratch superset ISA
	// encoding the paper sketches ("a new superset ISA would allow much
	// tighter encoding of these options"): the REXBC and predicate
	// prefixes shrink to one byte each. Decode/execution semantics are
	// unchanged; only code density (and therefore I-cache and micro-op
	// cache behavior) differs.
	CompactEncoding bool
	Stats           CompileStats
}

// String disassembles the program for debugging and golden tests.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s for %s (%d instrs, %d bytes)\n", p.Name, p.FS.ShortName(), len(p.Instrs), p.Size)
	for i := range p.Instrs {
		if len(p.PC) == len(p.Instrs) {
			fmt.Fprintf(&sb, "%6x: ", p.PC[i])
		} else {
			fmt.Fprintf(&sb, "%6d: ", i)
		}
		sb.WriteString(FormatInstr(&p.Instrs[i]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatInstr renders one instruction in an AT&T-free, readable syntax.
func FormatInstr(in *Instr) string {
	var sb strings.Builder
	if in.Predicated() {
		sense := ""
		if !in.PredSense {
			sense = "!"
		}
		fmt.Fprintf(&sb, "(%sr%d) ", sense, in.Pred)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case JCC, SETCC, CMOVCC:
		sb.WriteString(in.CC.String())
	}
	if in.Sz != 0 && in.Sz != 4 {
		fmt.Fprintf(&sb, ".%d", in.Sz)
	}
	regName := func(r Reg) string {
		if in.Op.IsFP() || in.Op == FST || in.Op == VST || in.Op == FCMP {
			return fmt.Sprintf("x%d", r)
		}
		return fmt.Sprintf("r%d", r)
	}
	var ops []string
	if in.Dst != NoReg {
		if in.Op.IsFP() {
			ops = append(ops, fmt.Sprintf("x%d", in.Dst))
		} else {
			ops = append(ops, fmt.Sprintf("r%d", in.Dst))
		}
	}
	if in.Src1 != NoReg {
		ops = append(ops, regName(in.Src1))
	}
	if in.Src2 != NoReg {
		ops = append(ops, regName(in.Src2))
	}
	if in.HasImm {
		ops = append(ops, fmt.Sprintf("$%d", in.Imm))
	}
	if in.HasMem {
		m := in.Mem
		s := fmt.Sprintf("[r%d", m.Base)
		if m.Index != NoReg {
			s += fmt.Sprintf("+r%d*%d", m.Index, m.Scale)
		}
		if m.Disp != 0 {
			s += fmt.Sprintf("%+d", m.Disp)
		}
		ops = append(ops, s+"]")
	}
	if in.Op == JCC || in.Op == JMP {
		ops = append(ops, fmt.Sprintf("@%d", in.Target))
	}
	if len(ops) > 0 {
		sb.WriteByte(' ')
		sb.WriteString(strings.Join(ops, ", "))
	}
	return sb.String()
}

// Validate checks that the program conforms to its feature set: register
// numbers within the register depth, operand sizes within the register
// width, memory-operand ALU instructions only under full x86 complexity,
// predication and SIMD only where the feature set provides them, and branch
// targets in range. This is the contract every compiler and binary-translator
// output must satisfy.
func (p *Program) Validate() error {
	fs := p.FS
	tgt, ok := isa.TargetByName(p.Target)
	if !ok {
		return fmt.Errorf("%s: unknown target %q", p.Name, p.Target)
	}
	var iregs, fregs []Reg
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := TargetCheck(in, tgt); err != nil {
			return fmt.Errorf("%s[%d] %s: %w", p.Name, i, FormatInstr(in), err)
		}
		iregs = in.IntRegs(iregs[:0])
		for _, r := range iregs {
			if int(r) >= fs.Depth {
				return fmt.Errorf("%s[%d] %s: integer register r%d exceeds depth %d",
					p.Name, i, FormatInstr(in), r, fs.Depth)
			}
		}
		fregs = in.FPRegs(fregs[:0])
		for _, r := range fregs {
			if int(r) >= fs.FPRegs() {
				return fmt.Errorf("%s[%d] %s: fp register x%d exceeds %d",
					p.Name, i, FormatInstr(in), r, fs.FPRegs())
			}
		}
		if in.Sz == 8 && !in.Op.IsFP() && fs.Width == 32 {
			switch in.Op {
			case FST, FCMP, CVTFI:
				// 8-byte FP scalar data is fine on 32-bit cores (SSE).
			default:
				return fmt.Errorf("%s[%d] %s: 64-bit integer operation on 32-bit feature set",
					p.Name, i, FormatInstr(in))
			}
		}
		if in.MemSrcALU() && fs.Complexity == isa.MicroX86 {
			return fmt.Errorf("%s[%d] %s: memory-operand ALU op under microx86",
				p.Name, i, FormatInstr(in))
		}
		if in.Predicated() {
			if fs.Predication != isa.FullPredication {
				return fmt.Errorf("%s[%d] %s: predicate prefix without full predication",
					p.Name, i, FormatInstr(in))
			}
			if in.Op.IsBranch() {
				return fmt.Errorf("%s[%d] %s: branches cannot be predicated", p.Name, i, FormatInstr(in))
			}
		}
		if in.Op.IsVector() && !fs.HasSIMD() {
			return fmt.Errorf("%s[%d] %s: SSE op without SIMD support", p.Name, i, FormatInstr(in))
		}
		if in.Op == JCC || in.Op == JMP {
			if in.Target < 0 || int(in.Target) >= len(p.Instrs) {
				return fmt.Errorf("%s[%d]: branch target %d out of range", p.Name, i, in.Target)
			}
		}
		if in.HasImm && in.Src2 != NoReg {
			return fmt.Errorf("%s[%d] %s: both immediate and Src2", p.Name, i, FormatInstr(in))
		}
	}
	n := len(p.Instrs)
	if n == 0 {
		return fmt.Errorf("%s: empty program", p.Name)
	}
	hasRet := false
	for i := range p.Instrs {
		if p.Instrs[i].Op == RET {
			hasRet = true
			break
		}
	}
	if !hasRet {
		return fmt.Errorf("%s: program has no RET", p.Name)
	}
	// Execution must not fall off the end: the final instruction has to
	// redirect control unconditionally.
	if last := p.Instrs[n-1].Op; last != RET && last != JMP {
		return fmt.Errorf("%s: program may fall off the end (last op %v)", p.Name, last)
	}
	return nil
}
