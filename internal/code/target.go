package code

import (
	"fmt"

	"compisa/internal/isa"
)

// Target legality: per-instruction checks against an isa.Target descriptor.
// For the default x86 target these return nil/true — x86 legality predates
// the target seam and is governed by the feature-set rules in Validate and
// internal/check. Restricted targets (alpha64) add the encoding-level
// constraints a fixed 32-bit word imposes.

// ImmOK reports whether an inline immediate is encodable on the target.
// Shift counts and logical immediates are zero-extended from the target's
// immediate field; arithmetic immediates (and MOV) are sign-extended.
func ImmOK(op Op, imm int64, t *isa.Target) bool {
	if t.Default() || t.ImmBits >= 32 {
		return true
	}
	switch op {
	case SHL, SHR, SAR:
		return imm >= 0 && imm < 64
	case AND, OR, XOR, TEST:
		return imm >= 0 && imm < 1<<uint(t.ImmBits)
	default:
		lim := int64(1) << uint(t.ImmBits-1)
		return imm >= -lim && imm < lim
	}
}

// DispOK reports whether a memory displacement is encodable on the target.
func DispOK(disp int32, t *isa.Target) bool {
	if t.Default() || t.DispBits >= 32 {
		return true
	}
	lim := int32(1) << uint(t.DispBits-1)
	return disp >= -lim && disp < lim
}

// TargetShapeOK verifies one instruction's structural legality on the
// target: addressing modes, operand forms, and register-file geometry.
// Immediate/displacement ranges are checked separately by ImmOK/DispOK so
// the conformance rules can attribute violations to the right rule class.
func TargetShapeOK(in *Instr, t *isa.Target) error {
	if t.Default() {
		return nil
	}
	if !t.Vector && in.Op.IsVector() {
		return fmt.Errorf("target %s has no vector encodings", t.Name)
	}
	if !t.Predication && in.Predicated() {
		return fmt.Errorf("target %s has no predicate field", t.Name)
	}
	if t.TwoAddress && in.Op.TwoAddress() && in.Src1 != in.Dst {
		return fmt.Errorf("target %s requires destructive form (dst=%d src1=%d)", t.Name, in.Dst, in.Src1)
	}
	if in.HasMem {
		if !t.MemOperands {
			switch in.Op {
			case LD, ST, FLD, FST:
			default:
				return fmt.Errorf("target %s is load/store only (%v with memory operand)", t.Name, in.Op)
			}
		}
		if !t.MemAbsolute && in.Mem.Base == NoReg {
			return fmt.Errorf("target %s has no absolute addressing", t.Name)
		}
		if !t.MemIndex && in.Mem.Index != NoReg {
			return fmt.Errorf("target %s has no indexed addressing", t.Name)
		}
	}
	var iregs, fregs []Reg
	for _, r := range in.IntRegs(iregs) {
		if int(r) >= t.IntRegs {
			return fmt.Errorf("target %s: integer register r%d exceeds the %d-register file", t.Name, r, t.IntRegs)
		}
	}
	for _, r := range in.FPRegs(fregs) {
		if int(r) >= t.FPRegs {
			return fmt.Errorf("target %s: fp register x%d exceeds the %d-register file", t.Name, r, t.FPRegs)
		}
	}
	return nil
}

// TargetCheck verifies one instruction against the target's full
// encoding-level legality: shape plus immediate/displacement widths. It
// returns nil for default x86 targets.
func TargetCheck(in *Instr, t *isa.Target) error {
	if t.Default() {
		return nil
	}
	if err := TargetShapeOK(in, t); err != nil {
		return err
	}
	if in.HasMem && !DispOK(in.Mem.Disp, t) {
		return fmt.Errorf("target %s: displacement %d exceeds %d bits", t.Name, in.Mem.Disp, t.DispBits)
	}
	if in.HasImm && !ImmOK(in.Op, in.Imm, t) {
		return fmt.Errorf("target %s: immediate %d exceeds %d bits", t.Name, in.Imm, t.ImmBits)
	}
	return nil
}
