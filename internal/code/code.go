// Package code defines the machine-code representation shared by the
// compiler backend (which produces it), the encoder (which lays it out), the
// functional executor and timing simulators (which run it), and the binary
// translator (which rewrites it during feature downgrades).
//
// The instruction set is the superset ISA of the paper: x86-like macro-ops
// with optional memory source operands and complex addressing (full x86
// complexity), a load-compute-store subset (microx86), SSE scalar/vector
// operations, CMOV partial predication, and full predication of any
// instruction on any general-purpose register via the predicate prefix.
package code

import "fmt"

// Reg names an architectural register. Integer registers are r0..r63 and
// FP/SIMD registers are x0..x15; the register class is implied by the
// instruction operand slot. NoReg marks an absent operand.
type Reg uint8

// NoReg is the absent-register marker.
const NoReg Reg = 0xff

// Op enumerates superset-ISA machine operations.
type Op uint8

const (
	NOP Op = iota

	// Integer moves and address arithmetic.
	MOV   // Dst = Src1 | Imm
	MOVSX // Dst(64) = sign-extended Src1(32) (movsxd)
	LEA   // Dst = effective address of Mem
	LD    // Dst = mem[ea] (Sz bytes, zero-extended if narrower than width)
	ST    // mem[ea] = Src1 (Sz bytes)

	// Integer ALU. With a memory source operand (HasMem, full x86 only)
	// the instruction reads mem[ea] as the second operand and decodes
	// into load+op micro-ops.
	ADD
	SUB
	IMUL
	AND
	OR
	XOR
	SHL // shift counts come from Imm
	SHR
	SAR
	ADC // add with carry (64-on-32 lowering)
	SBB // subtract with borrow

	// Flag producers/consumers.
	CMP    // set flags from Src1 - Src2/Imm/mem
	TEST   // set flags from Src1 & Src2
	SETCC  // Dst = CC(flags) ? 1 : 0
	CMOVCC // Dst = CC(flags) ? Src1 : Dst (partial predication)

	// Control flow. Targets are instruction indices in the program.
	JCC // conditional jump on CC(flags)
	JMP
	RET // region end; Src1 holds the checksum result

	// Scalar FP (SSE scalar: xmm registers, Sz 4 or 8).
	FMOV // FDst = FSrc1
	FLD  // FDst = mem[ea]
	FST  // mem[ea] = FSrc1
	FADD // with optional memory source operand on full x86
	FSUB
	FMUL
	FDIV
	FCMP  // UCOMISS/SD: set integer flags from FP compare
	CVTIF // FDst = float(Src1)  (cvtsi2ss/sd)
	CVTFI // Dst = int(FSrc1), truncating (cvttss/sd2si)

	// Packed SSE (128-bit, four 32-bit lanes; Sz = 16).
	VLD   // FDst = mem[ea..ea+15]
	VST   // mem[ea..ea+15] = FSrc1
	VADDF // lane-wise float32
	VSUBF
	VMULF
	VADDI // lane-wise int32 (PADDD)
	VSUBI
	VMULI  // PMULLD
	VSPLAT // FDst = broadcast of FSrc1's low lane (shufps; 2 micro-ops)
	VRSUM  // FDst = horizontal sum of FSrc1's four float lanes (3 micro-ops)
)

var opNames = [...]string{
	NOP: "nop", MOV: "mov", MOVSX: "movsx", LEA: "lea", LD: "ld", ST: "st",
	ADD: "add", SUB: "sub", IMUL: "imul", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SAR: "sar", ADC: "adc", SBB: "sbb",
	CMP: "cmp", TEST: "test", SETCC: "setcc", CMOVCC: "cmov",
	JCC: "jcc", JMP: "jmp", RET: "ret",
	FMOV: "fmov", FLD: "fld", FST: "fst",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FCMP: "fcmp",
	CVTIF: "cvtif", CVTFI: "cvtfi",
	VLD: "vld", VST: "vst",
	VADDF: "vaddf", VSUBF: "vsubf", VMULF: "vmulf",
	VADDI: "vaddi", VSUBI: "vsubi", VMULI: "vmuli",
	VSPLAT: "vsplat", VRSUM: "vrsum",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsFP reports whether the destination register (if any) is an FP/SIMD
// register.
func (o Op) IsFP() bool {
	switch o {
	case FMOV, FLD, FADD, FSUB, FMUL, FDIV, CVTIF, VLD, VADDF, VSUBF, VMULF, VADDI, VSUBI, VMULI, VSPLAT, VRSUM:
		return true
	}
	return false
}

// IsVector reports whether the op is a 128-bit packed SSE operation.
func (o Op) IsVector() bool { return o >= VLD }

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool { return o == JCC || o == JMP || o == RET }

// ReadsFlags reports whether the op consumes condition flags.
func (o Op) ReadsFlags() bool {
	switch o {
	case SETCC, CMOVCC, JCC, ADC, SBB:
		return true
	}
	return false
}

// WritesFlags reports whether the op produces condition flags.
func (o Op) WritesFlags() bool {
	switch o {
	case ADD, SUB, ADC, SBB, AND, OR, XOR, SHL, SHR, SAR, IMUL, CMP, TEST, FCMP:
		return true
	}
	return false
}

// TwoAddress reports whether the op uses the destructive two-address form
// (Dst == Src1): both the x86 and alpha64 encoders carry no separate
// first-source field for these, so the encodings imply Src1 = Dst.
func (o Op) TwoAddress() bool {
	switch o {
	case ADD, SUB, IMUL, AND, OR, XOR, SHL, SHR, SAR, ADC, SBB,
		FADD, FSUB, FMUL, FDIV,
		VADDF, VSUBF, VMULF, VADDI, VSUBI, VMULI:
		return true
	}
	return false
}

// CC is an x86-style condition code evaluated against the flags register.
type CC uint8

const (
	CCEQ CC = iota // ZF
	CCNE
	CCLT // signed: SF != OF
	CCLE
	CCGT
	CCGE
	CCB // unsigned below: CF
	CCBE
	CCA
	CCAE
)

func (c CC) String() string {
	return [...]string{"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae"}[c]
}

// Negate returns the opposite condition.
func (c CC) Negate() CC {
	switch c {
	case CCEQ:
		return CCNE
	case CCNE:
		return CCEQ
	case CCLT:
		return CCGE
	case CCLE:
		return CCGT
	case CCGT:
		return CCLE
	case CCGE:
		return CCLT
	case CCB:
		return CCAE
	case CCBE:
		return CCA
	case CCA:
		return CCBE
	case CCAE:
		return CCB
	}
	return c
}

// Mem is a base + index*scale + disp memory operand. Base/Index are integer
// registers; Index may be NoReg. Scale is 1, 2, 4, or 8.
type Mem struct {
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int32
}

// Instr is one superset-ISA macro-op.
type Instr struct {
	Op   Op
	Sz   uint8 // operand size in bytes: 1, 4, 8, or 16 (packed)
	Dst  Reg   // destination register (class implied by Op), NoReg if none
	Src1 Reg
	Src2 Reg
	Imm  int64
	// HasImm marks an immediate second operand (Src2 must be NoReg).
	HasImm bool
	// HasMem marks a memory operand: the address source for LD/ST/FLD/
	// FST/VLD/VST/LEA, or a memory *source* operand folded into an ALU op
	// (full-x86 complexity only).
	HasMem bool
	Mem    Mem
	CC     CC
	// Target is the branch-target instruction index (JCC/JMP).
	Target int32
	// Pred predicates the instruction on integer register Pred: it
	// commits its result only when (rPred != 0) == PredSense. Requires
	// full predication in the feature set.
	Pred      Reg
	PredSense bool
	// TakenProb is compiler profile metadata on JCC (for tests/stats).
	TakenProb float32
}

// Predicated reports whether the instruction carries a predicate prefix.
func (in *Instr) Predicated() bool { return in.Pred != NoReg }

// MemSrcALU reports whether the instruction is an ALU op with a folded
// memory source operand (the 1:n decode case that microx86 excludes).
func (in *Instr) MemSrcALU() bool {
	if !in.HasMem {
		return false
	}
	switch in.Op {
	case LD, ST, FLD, FST, VLD, VST, LEA:
		return false
	}
	return true
}

// NumUops returns the number of micro-ops the macro-op decodes into.
func (in *Instr) NumUops() int {
	switch in.Op {
	case VSPLAT:
		return 2 // movss + shufps
	case VRSUM:
		return 3 // haddps x2 + extract
	}
	if in.MemSrcALU() {
		return 2 // load + compute
	}
	return 1
}

// IntRegs appends every integer register the instruction references
// (including predicate and address registers) to dst.
func (in *Instr) IntRegs(dst []Reg) []Reg {
	fp := in.Op.IsFP()
	if in.Dst != NoReg && !fp {
		dst = append(dst, in.Dst)
	}
	// Src registers share the class of the op except for cross-class
	// converts and FP stores, whose sources are handled explicitly.
	switch in.Op {
	case CVTIF:
		if in.Src1 != NoReg {
			dst = append(dst, in.Src1)
		}
	case FST, VST, FMOV, FLD, VLD, FADD, FSUB, FMUL, FDIV, FCMP, CVTFI,
		VADDF, VSUBF, VMULF, VADDI, VSUBI, VMULI, VSPLAT, VRSUM:
		// FP-class sources; no integer sources besides address/pred.
	default:
		if in.Src1 != NoReg {
			dst = append(dst, in.Src1)
		}
		if in.Src2 != NoReg {
			dst = append(dst, in.Src2)
		}
	}
	if in.HasMem {
		if in.Mem.Base != NoReg {
			dst = append(dst, in.Mem.Base)
		}
		if in.Mem.Index != NoReg {
			dst = append(dst, in.Mem.Index)
		}
	}
	if in.Pred != NoReg {
		dst = append(dst, in.Pred)
	}
	return dst
}

// FPRegs appends every FP/SIMD register the instruction references to dst.
func (in *Instr) FPRegs(dst []Reg) []Reg {
	if in.Op.IsFP() && in.Dst != NoReg {
		dst = append(dst, in.Dst)
	}
	switch in.Op {
	case FMOV, FADD, FSUB, FMUL, FDIV, FCMP, CVTFI, VADDF, VSUBF, VMULF, VADDI, VSUBI, VMULI, VSPLAT, VRSUM, FST, VST:
		if in.Src1 != NoReg {
			dst = append(dst, in.Src1)
		}
		if in.Src2 != NoReg {
			dst = append(dst, in.Src2)
		}
	}
	return dst
}
