package code

import (
	"strings"
	"testing"

	"compisa/internal/isa"
)

func prog(fs isa.FeatureSet, instrs ...Instr) *Program {
	return &Program{Name: "t", FS: fs, Instrs: instrs}
}

func ret() Instr { return Instr{Op: RET, Dst: NoReg, Src1: 0, Src2: NoReg, Pred: NoReg} }

func TestValidateDepth(t *testing.T) {
	fs := isa.MustNew(isa.MicroX86, 32, 8, isa.PartialPredication)
	p := prog(fs,
		Instr{Op: ADD, Sz: 4, Dst: 9, Src1: 1, Src2: 2, Pred: NoReg},
		ret(),
	)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("want depth violation, got %v", err)
	}
	p.Instrs[0].Dst = 7
	if err := p.Validate(); err != nil {
		t.Fatalf("r7 is valid at depth 8: %v", err)
	}
}

func TestValidateWidth(t *testing.T) {
	fs := isa.MustNew(isa.MicroX86, 32, 16, isa.PartialPredication)
	p := prog(fs,
		Instr{Op: ADD, Sz: 8, Dst: 1, Src1: 1, Src2: 2, Pred: NoReg},
		ret(),
	)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "64-bit") {
		t.Fatalf("want width violation, got %v", err)
	}
}

func TestValidateComplexity(t *testing.T) {
	micro := isa.MustNew(isa.MicroX86, 64, 16, isa.PartialPredication)
	in := Instr{Op: ADD, Sz: 4, Dst: 1, Src1: 1, Src2: NoReg, HasMem: true,
		Mem: Mem{Base: 2, Index: NoReg, Scale: 1}, Pred: NoReg}
	p := prog(micro, in, ret())
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "microx86") {
		t.Fatalf("want complexity violation, got %v", err)
	}
	full := isa.MustNew(isa.FullX86, 64, 16, isa.PartialPredication)
	p.FS = full
	if err := p.Validate(); err != nil {
		t.Fatalf("memory-operand ALU is legal on full x86: %v", err)
	}
}

func TestValidatePredication(t *testing.T) {
	partial := isa.MustNew(isa.FullX86, 64, 16, isa.PartialPredication)
	in := Instr{Op: ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: 3, PredSense: true}
	p := prog(partial, in, ret())
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "predicat") {
		t.Fatalf("want predication violation, got %v", err)
	}
	fullp := isa.MustNew(isa.FullX86, 64, 16, isa.FullPredication)
	p.FS = fullp
	if err := p.Validate(); err != nil {
		t.Fatalf("predication legal on full-predication set: %v", err)
	}
}

func TestValidateSIMD(t *testing.T) {
	micro := isa.MustNew(isa.MicroX86, 64, 16, isa.PartialPredication)
	in := Instr{Op: VADDF, Sz: 16, Dst: 0, Src1: 1, Src2: 2, Pred: NoReg}
	p := prog(micro, in, ret())
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "SIMD") {
		t.Fatalf("want SIMD violation, got %v", err)
	}
}

func TestValidateBranchTarget(t *testing.T) {
	fs := isa.X8664
	p := prog(fs, Instr{Op: JMP, Dst: NoReg, Src1: NoReg, Src2: NoReg, Target: 5, Pred: NoReg}, ret())
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "target") {
		t.Fatalf("want target violation, got %v", err)
	}
}

func TestValidateNoPredicatedBranch(t *testing.T) {
	fs := isa.Superset
	p := prog(fs, Instr{Op: JMP, Dst: NoReg, Src1: NoReg, Src2: NoReg, Target: 1, Pred: 2, PredSense: true}, ret())
	if err := p.Validate(); err == nil {
		t.Fatal("predicated branches must be rejected")
	}
}

func TestValidateRequiresRET(t *testing.T) {
	p := prog(isa.X8664, Instr{Op: NOP, Dst: NoReg, Src1: NoReg, Src2: NoReg, Pred: NoReg})
	if err := p.Validate(); err == nil {
		t.Fatal("program without RET must be rejected")
	}
}

func TestNumUops(t *testing.T) {
	memALU := Instr{Op: ADD, Sz: 4, Dst: 1, Src1: 1, HasMem: true,
		Mem: Mem{Base: 2, Index: NoReg}, Src2: NoReg, Pred: NoReg}
	if memALU.NumUops() != 2 {
		t.Error("memory-source ALU must decode to 2 uops")
	}
	ld := Instr{Op: LD, Sz: 4, Dst: 1, HasMem: true, Mem: Mem{Base: 2, Index: NoReg}, Src1: NoReg, Src2: NoReg, Pred: NoReg}
	if ld.NumUops() != 1 {
		t.Error("plain load is 1 uop")
	}
	add := Instr{Op: ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: NoReg}
	if add.NumUops() != 1 {
		t.Error("reg-reg ALU is 1 uop")
	}
}

func TestFlagsProperties(t *testing.T) {
	if !CMP.WritesFlags() || !JCC.ReadsFlags() || !ADC.ReadsFlags() {
		t.Error("flag metadata wrong")
	}
	if MOV.WritesFlags() || LD.ReadsFlags() {
		t.Error("flag metadata wrong for moves/loads")
	}
	if !FCMP.WritesFlags() {
		t.Error("fcmp writes flags")
	}
}

func TestCCNegate(t *testing.T) {
	all := []CC{CCEQ, CCNE, CCLT, CCLE, CCGT, CCGE, CCB, CCBE, CCA, CCAE}
	for _, c := range all {
		if c.Negate().Negate() != c || c.Negate() == c {
			t.Errorf("negate broken for %v", c)
		}
	}
}

func TestRegCollection(t *testing.T) {
	in := Instr{Op: ADD, Sz: 4, Dst: 1, Src1: 2, Src2: 3, HasMem: false, Pred: 4, PredSense: true}
	regs := in.IntRegs(nil)
	if len(regs) != 4 {
		t.Fatalf("want 4 int regs, got %v", regs)
	}
	fin := Instr{Op: FADD, Sz: 4, Dst: 1, Src1: 2, Src2: 3, Pred: NoReg}
	if n := len(fin.FPRegs(nil)); n != 3 {
		t.Errorf("fadd references 3 fp regs, got %d", n)
	}
	if n := len(fin.IntRegs(nil)); n != 0 {
		t.Errorf("fadd references 0 int regs, got %d", n)
	}
	cvt := Instr{Op: CVTIF, Sz: 4, Dst: 1, Src1: 2, Src2: NoReg, Pred: NoReg}
	if n := len(cvt.IntRegs(nil)); n != 1 {
		t.Errorf("cvtif reads 1 int reg, got %d", n)
	}
	if n := len(cvt.FPRegs(nil)); n != 1 {
		t.Errorf("cvtif writes 1 fp reg, got %d", n)
	}
	st := Instr{Op: FST, Sz: 4, Dst: NoReg, Src1: 5, Src2: NoReg, HasMem: true,
		Mem: Mem{Base: 2, Index: 3, Scale: 4}, Pred: NoReg}
	if n := len(st.IntRegs(nil)); n != 2 {
		t.Errorf("fst references base+index int regs, got %d", n)
	}
	if n := len(st.FPRegs(nil)); n != 1 {
		t.Errorf("fst stores 1 fp reg, got %d", n)
	}
}

func TestFormatInstr(t *testing.T) {
	in := Instr{Op: ADD, Sz: 4, Dst: 1, Src1: 1, Src2: NoReg, HasImm: true, Imm: 42, Pred: 3, PredSense: false}
	s := FormatInstr(&in)
	for _, want := range []string{"add", "r1", "$42", "(!r3)"} {
		if !strings.Contains(s, want) {
			t.Errorf("format %q missing %q", s, want)
		}
	}
}
