package cpu

import (
	"sync"

	"compisa/internal/code"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// ILPWindows are the idealized window sizes profiled; perfmodel
// interpolates between them. IPCWindow is indexed positionally: entry i
// corresponds to ILPWindows[i].
var ILPWindows = [NumILPWindows]int{16, 32, 64, 128, 256}

const (
	// NumILPWindows is the number of profiled window sizes.
	NumILPWindows = 5
	// NumPredictors is the number of predictor organizations (PredictorKind).
	NumPredictors = 3

	// ilpRefWindow is the index of the 128-uop reference window in
	// ILPWindows, used by the memory-overlap measurement.
	ilpRefWindow = 3
)

// Profile captures everything the mechanistic performance model
// (internal/perfmodel) needs to predict any microarchitectural
// configuration's cycle count for one (region, feature set) pair. It is
// collected in a single functional execution that simultaneously simulates
// every cache configuration, every branch predictor, the micro-op cache,
// and dependence-limited ILP at every window size — the trick that makes the
// paper's 4680-design-point sweep tractable on one machine.
//
// The layout is struct-of-arrays: the ILP curve and mispredict rates are
// fixed-size arrays indexed positionally (ILPWindows / PredictorKind), not
// maps, so batch scoring walks them without hashing and the binary codec
// (profile_codec.go) serializes them deterministically.
type Profile struct {
	Name string

	Instrs, Uops                   int64
	Loads, Stores, Branches, Taken int64
	PredOffUops                    int64
	MemALUOps                      int64
	UopsByClass                    [NumUopClasses]int64

	StaticInstrs int
	CodeBytes    int
	AvgInstrLen  float64

	// FusedBranches counts dynamic CMP/TEST+JCC pairs eligible for
	// macro-op fusion; with MemALUOps (micro-fused load+op pairs) they
	// reduce dispatch slots on full-x86 cores with fusion enabled.
	FusedBranches int64
	// X86Complexity records whether the profiled code is full-x86 (fusion
	// applies) or microx86 (1:1, no fusion).
	X86Complexity bool

	// IPCWindow[i] is the dependence-limited micro-ops/cycle achievable
	// with an idealized window of ILPWindows[i] in-flight micro-ops and
	// unbounded width/units; IPCInOrder is the same with strict
	// program-order issue.
	IPCWindow  [NumILPWindows]float64
	IPCInOrder float64

	// MispredictRate[k] is the per-branch misprediction rate of predictor
	// organization PredictorKind(k).
	MispredictRate [NumPredictors]float64

	// Mem[i][d][l] profiles the hierarchy with L1I option i, L1D option d,
	// L2 option l (options indexed by CacheOptions).
	Mem [2][2][2]MemProfile

	// UopCacheHitRate is the fraction of instruction deliveries served by
	// the micro-op cache.
	UopCacheHitRate float64

	// MemExposedCycles is the measured dependence-aware memory stall at a
	// 128-uop window on the reference hierarchy (32KB L1s, 4MB L2): the
	// horizon difference between a timestamp chain using real cache
	// latencies and one using fixed L1 latency. It captures how much of
	// the miss latency the window can actually hide given the program's
	// dependence structure (pointer chases expose everything; streaming
	// hides almost all of it).
	MemExposedCycles float64
	// NaiveStallRef is the reference hierarchy's naive stall sum
	// (l1miss*l2lat + l2miss*memlat), used to scale MemExposedCycles to
	// other cache configurations.
	NaiveStallRef float64

	// Compile-time statistics of the program profiled.
	Stats code.CompileStats
}

// MemProfile summarizes one cache hierarchy's behavior.
type MemProfile struct {
	L1IMisses int64
	L1DMisses int64
	L2Misses  int64
	// DataMLP estimates the average number of overlappable outstanding
	// data misses (cluster size with gaps under half a ROB).
	DataMLP float64
}

// CacheOptions enumerates the per-level options of Table I, indexed by the
// Mem array dimensions.
var (
	L1IOptions = [2]CacheCfg{L1Cfg32k, L1Cfg64k}
	L1DOptions = [2]CacheCfg{L1Cfg32k, L1Cfg64k}
	L2Options  = [2]CacheCfg{L2Cfg4M, L2Cfg8M}
)

// Timestamp-lane layout of the flat profiler: one lane per ILP window, one
// for the strict in-order chain, one for the real-latency chain. All lane
// state (register ready times, granule store times) lives in flat arrays
// indexed dep*numLanes+lane, replacing the per-window slices and the
// map[uint64][]int64 of the legacy profiler.
const (
	numLanes  = NumILPWindows + 2
	laneInOrd = NumILPWindows     // strict in-order chain
	laneReal  = NumILPWindows + 1 // real-latency chain (reference hierarchy)

	ringRealLen = 128 // real chain models a 128-uop window
	ringRealOff = 496 // 16+32+64+128+256
	ringTotal   = ringRealOff + ringRealLen
)

// ringOff[i] is the offset of window i's completion ring inside the
// concatenated ring array; the ring length is ILPWindows[i] (a power of
// two, so position is seq & (len-1)).
var ringOff = [NumILPWindows]int{0, 16, 48, 112, 240}

// profiler accumulates the profile during one functional run. Instances are
// pooled (see profilerPool): all scratch — eight cache hierarchies, three
// predictors, the micro-op cache, the timestamp lanes, and the granule
// table — is reset in place between runs instead of reallocated, which
// removes the dominant allocation cost of a profiling pass.
type profiler struct {
	pd   *Predecoded
	p    *code.Program
	prof *Profile

	preds [3]Predictor
	// Cache scratch. Hierarchies that share an L1 option see the identical
	// access stream, so one L1I per i-option and one L1D per d-option stand
	// for all eight (i, d, l) hierarchies bit-exactly; only the L2s — whose
	// miss streams depend on both L1 options — stay per-hierarchy.
	l1i           [2]*Cache
	l1d           [2]*Cache
	l2            [2][2][2]*Cache
	uc            *UopCache
	missPos       [2][2][2]int64 // last data-miss uop position per hierarchy
	missGrp       [2][2][2]int64 // miss groups per hierarchy
	lastFetchLine uint64         // shared fetch-stream filter: every
	// hierarchy sees the identical fetch stream, so one filter decides the
	// line transition for all eight

	// ILP tracking, one timestamp lane per window + in-order + real.
	regReady [numDeps * numLanes]int64
	rings    [ringTotal]int64
	gran     *granTab // store completion per 8-byte granule, per lane

	inorderT   int64
	seq        int64
	totalLen   int64
	mispredict [3]int64
	prevCmp    bool
	prevIdx    int32
	lastLat    int64 // data-access latency on the reference hierarchy
}

// profilerPool recycles profiler scratch across profiling passes — the
// "profile pool" that lets par.Map workers in eval reuse buffers.
var profilerPool = sync.Pool{}

// newProfiler builds (or recycles) the profiling consumer for one
// predecoded program. granHint is the expected number of distinct 8-byte
// memory granules (region footprint / 8); it sizes the granule table on
// first construction.
func newProfiler(pd *Predecoded, granHint int) *profiler {
	pr, _ := profilerPool.Get().(*profiler)
	if pr == nil {
		pr = &profiler{}
		for k := 0; k < 3; k++ {
			pr.preds[k] = NewPredictor(PredictorKind(k))
		}
		for i := 0; i < 2; i++ {
			pr.l1i[i] = NewCache(L1IOptions[i])
			pr.l1d[i] = NewCache(L1DOptions[i])
		}
		for i := 0; i < 2; i++ {
			for d := 0; d < 2; d++ {
				for l := 0; l < 2; l++ {
					pr.l2[i][d][l] = NewCache(L2Options[l])
				}
			}
		}
		pr.uc = NewUopCache()
		pr.gran = newGranTab(numLanes, granHint)
	} else {
		for k := 0; k < 3; k++ {
			resetPredictor(pr.preds[k])
		}
		for i := 0; i < 2; i++ {
			pr.l1i[i].Reset()
			pr.l1d[i].Reset()
		}
		for i := 0; i < 2; i++ {
			for d := 0; d < 2; d++ {
				for l := 0; l < 2; l++ {
					pr.l2[i][d][l].Reset()
				}
			}
		}
		pr.uc.Reset()
		pr.gran.reset()
		clear(pr.regReady[:])
		clear(pr.rings[:])
		pr.lastFetchLine = 0
		pr.inorderT, pr.seq, pr.totalLen = 0, 0, 0
		pr.mispredict = [3]int64{}
		pr.prevCmp, pr.prevIdx, pr.lastLat = false, 0, 0
	}
	for i := 0; i < 2; i++ {
		for d := 0; d < 2; d++ {
			for l := 0; l < 2; l++ {
				pr.missPos[i][d][l] = -1 << 40
				pr.missGrp[i][d][l] = 0
			}
		}
	}
	pr.pd = pd
	pr.p = pd.P
	pr.prof = &Profile{
		Name:          pd.P.Name,
		X86Complexity: pd.P.FS.Complexity == isa.FullX86,
		Stats:         pd.P.Stats,
		StaticInstrs:  len(pd.P.Instrs),
		CodeBytes:     pd.P.Size,
	}
	return pr
}

// release returns the profiler's scratch to the pool. The finished Profile
// is independent of the scratch and stays valid.
func (pr *profiler) release() {
	pr.pd, pr.p, pr.prof = nil, nil, nil
	profilerPool.Put(pr)
}

// Consume feeds one executed instruction.
func (pr *profiler) Consume(ev *Event) {
	in := &pr.p.Instrs[ev.Idx]
	prof := pr.prof
	prof.Instrs++
	prof.Uops += int64(ev.Uops)
	pr.totalLen += int64(ev.Len)
	if ev.IsLoad {
		prof.Loads++
	}
	if ev.IsStore {
		prof.Stores++
	}
	if in.MemSrcALU() {
		prof.MemALUOps++
	}

	// Caches: fetch side per line transition, data side per access. The
	// fetch-line filter is hoisted out of the hierarchy loop — all eight
	// hierarchies see the same stream, so the transition test is shared.
	fetchLine := uint64(ev.PC) / cacheLineBytes
	newLine := fetchLine != pr.lastFetchLine
	pr.lastFetchLine = fetchLine
	dataAccess := (ev.IsLoad || ev.IsStore) && !ev.PredOff
	if newLine || dataAccess {
		// One lookup per distinct L1 option decides the hit for every
		// hierarchy sharing it; the L2s still see their own per-hierarchy
		// streams (instruction access before data access, as before).
		var hitI, hitD [2]bool
		if newLine {
			hitI[0] = pr.l1i[0].Access(uint64(ev.PC))
			hitI[1] = pr.l1i[1].Access(uint64(ev.PC))
		}
		if dataAccess {
			hitD[0] = pr.l1d[0].Access(ev.MemAddr)
			hitD[1] = pr.l1d[1].Access(ev.MemAddr)
		}
		for i := 0; i < 2; i++ {
			for d := 0; d < 2; d++ {
				for l := 0; l < 2; l++ {
					mp := &prof.Mem[i][d][l]
					if newLine && !hitI[i] {
						mp.L1IMisses++
						pr.l2[i][d][l].Access(uint64(ev.PC))
					}
					if dataAccess {
						if hitD[d] {
							if i == 0 && d == 0 && l == 0 {
								pr.lastLat = LatL1
							}
						} else {
							mp.L1DMisses++
							if pr.l2[i][d][l].Access(ev.MemAddr) {
								if i == 0 && d == 0 && l == 0 {
									pr.lastLat = LatL2
								}
							} else {
								mp.L2Misses++
								if i == 0 && d == 0 && l == 0 {
									pr.lastLat = LatMem
								}
							}
							// Miss clustering for MLP.
							if prof.Uops-pr.missPos[i][d][l] > 64 {
								pr.missGrp[i][d][l]++
							}
							pr.missPos[i][d][l] = prof.Uops
						}
					}
				}
			}
		}
	}

	// Micro-op cache (hit/miss accounting lives in the cache itself).
	pr.uc.Access(ev.PC, int(ev.Uops))

	// Branch predictors (and macro-fusion pairing).
	if in.Op == code.JCC {
		if pr.prevCmp && ev.Idx == pr.prevIdx+1 {
			prof.FusedBranches++
		}
		prof.Branches++
		if ev.Taken {
			prof.Taken++
		}
		for k := 0; k < 3; k++ {
			if pr.preds[k].Predict(ev.PC) != ev.Taken {
				pr.mispredict[k]++
			}
			pr.preds[k].Update(ev.PC, ev.Taken)
		}
	}

	pr.prevCmp = in.Op == code.CMP || in.Op == code.TEST
	pr.prevIdx = ev.Idx

	// Dependence-limited ILP at each window size.
	var buf [3]uopSpec
	uops := pr.pd.expand(ev, buf[:0])
	for ui := range uops {
		u := &uops[ui]
		prof.UopsByClass[u.class]++
		if ev.PredOff {
			prof.PredOffUops++
		}
		lat := int64(latOf(u.class))
		if u.isLoad {
			lat = LatL1
		}
		// Memory dependences (store-to-load, e.g. spill traffic). Granule
		// chunks hold one timestamp per lane; ensure every granule before
		// fetching any chunk, because an insert may grow the table and
		// move previously fetched blocks.
		memTracked := (u.isLoad || u.isStore) && !ev.PredOff
		var grans [3]uint64
		var chunks [3][]int64
		ngran := 0
		if memTracked {
			forEachGranule(u.addr, u.msz, func(g uint64) {
				grans[ngran] = g
				ngran++
				pr.gran.ensure(g)
			})
			for gi := 0; gi < ngran; gi++ {
				chunks[gi] = pr.gran.find(grans[gi])
			}
		}
		memLoad := memTracked && u.isLoad
		memStore := memTracked && u.isStore
		// Operand-ready time per lane. A dep's lanes are contiguous in
		// regReady, so one pass per source folds all seven lanes at once;
		// lanes touch disjoint state, so reading them all before any lane
		// writes is equivalent to the per-lane interleaving.
		var tl, comp [numLanes]int64
		tl[laneInOrd] = pr.inorderT // in-order chain starts at program order
		for i := 0; i < u.nsrcs; i++ {
			b := int(u.srcs[i]) * numLanes
			for ln := 0; ln < numLanes; ln++ {
				if r := pr.regReady[b+ln]; r > tl[ln] {
					tl[ln] = r
				}
			}
		}
		if memLoad {
			for gi := 0; gi < ngran; gi++ {
				ch := chunks[gi]
				for ln := 0; ln < numLanes; ln++ {
					if r := ch[ln]; r > tl[ln] {
						tl[ln] = r
					}
				}
			}
		}
		for wi := 0; wi < NumILPWindows; wi++ {
			t := tl[wi]
			// Window constraint: the uop W back must have completed.
			slot := ringOff[wi] + int(pr.seq&int64(ILPWindows[wi]-1))
			if old := pr.rings[slot]; old > t {
				t = old
			}
			c := t + lat
			pr.rings[slot] = c
			comp[wi] = c
		}
		// Strict in-order issue (scoreboard): ready ∩ program order.
		comp[laneInOrd] = tl[laneInOrd] + lat
		pr.inorderT = tl[laneInOrd] // next uop may issue same cycle (width modeled later)
		// Real-latency chain at a 128-uop window on the reference
		// hierarchy, for the dependence-aware memory-overlap measure.
		{
			rlat := lat
			if u.isLoad && !ev.PredOff {
				rlat = pr.lastLat
			}
			t := tl[laneReal]
			slot := ringRealOff + int(pr.seq&(ringRealLen-1))
			if old := pr.rings[slot]; old > t {
				t = old
			}
			rcomp := t + rlat
			pr.rings[slot] = rcomp
			comp[laneReal] = rcomp
		}
		if u.dst >= 0 {
			b := int(u.dst) * numLanes
			copy(pr.regReady[b:b+numLanes], comp[:])
		}
		if u.dstFlag {
			copy(pr.regReady[depFlags*numLanes:(depFlags+1)*numLanes], comp[:])
		}
		if memStore {
			for gi := 0; gi < ngran; gi++ {
				copy(chunks[gi], comp[:])
			}
		}
		pr.seq++
	}
}

// Finish finalizes the profile.
func (pr *profiler) Finish() *Profile {
	prof := pr.prof
	if prof.Instrs > 0 {
		prof.AvgInstrLen = float64(pr.totalLen) / float64(prof.Instrs)
	}
	for k := 0; k < 3; k++ {
		rate := 0.0
		if prof.Branches > 0 {
			rate = float64(pr.mispredict[k]) / float64(prof.Branches)
		}
		prof.MispredictRate[k] = rate
	}
	for wi := range ILPWindows {
		// Completion horizon = max entry in the ring.
		maxT := int64(1)
		for _, t := range pr.rings[ringOff[wi] : ringOff[wi]+ILPWindows[wi]] {
			if t > maxT {
				maxT = t
			}
		}
		prof.IPCWindow[wi] = float64(prof.Uops) / float64(maxT)
	}
	// In-order horizon: max regReady on the in-order lane.
	maxT := pr.inorderT + 1
	for r := 0; r < numDeps; r++ {
		if t := pr.regReady[r*numLanes+laneInOrd]; t > maxT {
			maxT = t
		}
	}
	prof.IPCInOrder = float64(prof.Uops) / float64(maxT)
	if pr.uc.Accesses > 0 {
		prof.UopCacheHitRate = pr.uc.HitRate()
	}
	// Memory-overlap measurement: real-latency horizon minus the fixed-L1
	// horizon of the same (128-uop) window.
	realMax := int64(1)
	for _, t := range pr.rings[ringRealOff : ringRealOff+ringRealLen] {
		if t > realMax {
			realMax = t
		}
	}
	l1Horizon := float64(prof.Uops) / prof.IPCWindow[ilpRefWindow]
	exposed := float64(realMax) - l1Horizon
	if exposed < 0 {
		exposed = 0
	}
	prof.MemExposedCycles = exposed
	ref := prof.Mem[0][0][0]
	prof.NaiveStallRef = float64(ref.L1DMisses-ref.L2Misses)*float64(LatL2-LatL1) +
		float64(ref.L2Misses)*float64(LatMem-LatL1)
	for i := 0; i < 2; i++ {
		for d := 0; d < 2; d++ {
			for l := 0; l < 2; l++ {
				mp := &prof.Mem[i][d][l]
				if pr.missGrp[i][d][l] > 0 {
					mp.DataMLP = float64(mp.L1DMisses) / float64(pr.missGrp[i][d][l])
					if mp.DataMLP < 1 {
						mp.DataMLP = 1
					}
				} else {
					mp.DataMLP = 1
				}
			}
		}
	}
	return prof
}

// CollectProfile runs the program functionally and returns its profile.
func CollectProfile(p *code.Program, m *mem.Memory, maxInstrs int64) (*Profile, ExecResult, error) {
	return CollectProfileOpts(p, m, RunOptions{MaxInstrs: maxInstrs})
}

// CollectProfileOpts is CollectProfile with watchdog and interrupt control,
// so profile collection honors deadlines and cancellation mid-execution.
func CollectProfileOpts(p *code.Program, m *mem.Memory, opts RunOptions) (*Profile, ExecResult, error) {
	pd := Predecode(p)
	granHint := m.Pages() * mem.PageSize / 8
	pr := newProfiler(pd, granHint)
	defer pr.release()
	st := NewState(m)
	res, err := RunPredecoded(pd, st, opts, pr.Consume)
	if err != nil {
		return nil, res, err
	}
	return pr.Finish(), res, nil
}
