// Differential equivalence suite for the flattened hot path: the
// table-driven executor (RunPredecoded + stepTab), the predecoded micro-op
// templates, and the pooled struct-of-arrays profiler must be bit-identical
// to the frozen pre-refactor oracles (runLegacy's switch dispatch, expand(),
// and the map-based legacyProfiler) — over a deterministic fuzz corpus and
// the full feature-set x region matrix. Profiles are compared through the
// binary codec, which also proves the encoding roundtrips byte-identically.

package cpu

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/isa"
	"compisa/internal/mem"
	"compisa/internal/workload"
)

// matrixBudget truncates each (feature set, region) run: the differential
// property holds at any prefix of the event stream, so a bounded budget
// keeps the 26x49 matrix fast while still exercising every region's code.
const matrixBudget = 15_000

// buildRegion compiles one region for one feature set, exactly as the
// evaluation pipeline does.
func buildRegion(t *testing.T, r workload.Region, fs isa.FeatureSet) (*code.Program, *mem.Memory) {
	t.Helper()
	f, m, err := r.Build(fs.Width)
	if err != nil {
		t.Fatalf("%s: build: %v", r.Name, err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{Verify: compiler.VerifyOff})
	if err != nil {
		t.Fatalf("%s: compile: %v", r.Name, err)
	}
	prog.Name = r.Name
	return prog, m
}

// errString tolerates nil.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// profileBoth runs the legacy oracle and the fast path over two independent
// builds of the same program and returns both outcomes. Finish is called
// even after a budget abort: the profiles must agree at any truncation
// point, since both sides consumed the same event prefix.
func profileBoth(prog1 *code.Program, m1 *mem.Memory, prog2 *code.Program, m2 *mem.Memory, opts RunOptions) (pL, pF *Profile, resL, resF ExecResult, errL, errF error) {
	prL := newLegacyProfiler(prog1)
	resL, errL = runLegacy(prog1, NewState(m1), opts, prL.Consume)
	pL = prL.Finish()

	pd := Predecode(prog2)
	prF := newProfiler(pd, m2.Pages()*mem.PageSize/8)
	defer prF.release()
	resF, errF = RunPredecoded(pd, NewState(m2), opts, prF.Consume)
	pF = prF.Finish()
	return
}

// TestDifferentialProfileMatrix proves executor and profiler equivalence
// over every derived feature set crossed with every suite region: identical
// ExecResults, identical errors, and byte-identical profile encodings —
// which also exercises the pooled profiler's in-place reset across hundreds
// of reuses per goroutine.
func TestDifferentialProfileMatrix(t *testing.T) {
	sets := isa.Derive()
	regions := workload.Regions()
	if testing.Short() {
		sets = sets[:4]
		regions = regions[:8]
	}
	for _, fs := range sets {
		fs := fs
		t.Run(fs.ShortName(), func(t *testing.T) {
			t.Parallel()
			opts := RunOptions{MaxInstrs: matrixBudget}
			for _, r := range regions {
				prog1, m1 := buildRegion(t, r, fs)
				prog2, m2 := buildRegion(t, r, fs)
				pL, pF, resL, resF, errL, errF := profileBoth(prog1, m1, prog2, m2, opts)
				if errString(errL) != errString(errF) {
					t.Fatalf("%s: error mismatch: legacy %v, fast %v", r.Name, errL, errF)
				}
				if resL != resF {
					t.Fatalf("%s: ExecResult mismatch:\nlegacy %+v\nfast   %+v", r.Name, resL, resF)
				}
				bL, err := pL.MarshalBinary()
				if err != nil {
					t.Fatalf("%s: encode legacy: %v", r.Name, err)
				}
				bF, err := pF.MarshalBinary()
				if err != nil {
					t.Fatalf("%s: encode fast: %v", r.Name, err)
				}
				if !bytes.Equal(bL, bF) {
					t.Fatalf("%s: profile encodings differ:\nlegacy %+v\nfast   %+v", r.Name, pL, pF)
				}
				// Decode/re-encode roundtrip is byte-identical.
				var back Profile
				if err := back.UnmarshalBinary(bF); err != nil {
					t.Fatalf("%s: decode: %v", r.Name, err)
				}
				b2, err := back.MarshalBinary()
				if err != nil {
					t.Fatalf("%s: re-encode: %v", r.Name, err)
				}
				if !bytes.Equal(bF, b2) {
					t.Fatalf("%s: codec roundtrip not byte-identical", r.Name)
				}
			}
		})
	}
}

// TestDifferentialTimingSubset proves the timing walk is unchanged by the
// predecoded micro-op templates and the table-driven event stream: the
// oracle (legacyExpand decomposition fed by runLegacy) and the fast path
// (RunTimed) produce identical TimingResults, out-of-order and in-order.
func TestDifferentialTimingSubset(t *testing.T) {
	cfgs := []CoreConfig{
		baseCfg(),
		{
			OoO: false, Width: 2, Predictor: PredGShare,
			IntALU: 2, IntMul: 1, FPALU: 1, LSQ: 8,
			L1I: L1Cfg32k, L1D: L1Cfg32k, L2: L2Cfg4M,
		},
	}
	sets := append(isa.XIzedFixedSets(), isa.MicroX86Min)
	regions := workload.Regions()[:6]
	if testing.Short() {
		sets = sets[:2]
		regions = regions[:2]
	}
	opts := RunOptions{MaxInstrs: matrixBudget}
	for _, fs := range sets {
		for _, r := range regions {
			for ci, cfg := range cfgs {
				prog1, m1 := buildRegion(t, r, fs)
				prog2, m2 := buildRegion(t, r, fs)

				tl := NewTiming(prog1, cfg)
				tl.legacyExpand = true
				resL, errL := runLegacy(prog1, NewState(m1), opts, tl.Consume)
				trL := tl.Result()

				pd := Predecode(prog2)
				tf := newTimingPre(pd, cfg)
				resF, errF := RunPredecoded(pd, NewState(m2), opts, tf.Consume)
				trF := tf.Result()

				if errString(errL) != errString(errF) {
					t.Fatalf("%s/%s/cfg%d: error mismatch: %v vs %v", fs.ShortName(), r.Name, ci, errL, errF)
				}
				if resL != resF {
					t.Fatalf("%s/%s/cfg%d: ExecResult mismatch", fs.ShortName(), r.Name, ci)
				}
				if trL != trF {
					t.Fatalf("%s/%s/cfg%d: TimingResult mismatch:\nlegacy %+v\nfast   %+v",
						fs.ShortName(), r.Name, ci, trL, trF)
				}
			}
		}
	}
}

// fuzzProg assembles one pseudo-random but valid superset-ISA program:
// ALU/flag traffic (including the carry-consuming ADC/SBB and CC consumers
// SETCC/CMOVCC), loads/stores and memory-operand ALU against the data
// region, occasional predication, and forward conditional branches (so the
// program always terminates).
func fuzzProg(t *testing.T, rng *rand.Rand) *code.Program {
	t.Helper()
	n := 24 + rng.Intn(40)
	instrs := make([]code.Instr, 0, n+4)
	// r8 anchors the data region; r0..r7 are working registers.
	instrs = append(instrs, movImm(8, int64(code.DataBase), 8))
	for i := 0; i < 4; i++ {
		instrs = append(instrs, movImm(code.Reg(i), rng.Int63n(1<<32)-1<<31, 8))
	}
	reg := func() code.Reg { return code.Reg(rng.Intn(8)) }
	sz := func() uint8 {
		if rng.Intn(2) == 0 {
			return 4
		}
		return 8
	}
	ccs := []code.CC{code.CCEQ, code.CCNE, code.CCLT, code.CCLE, code.CCGT, code.CCGE, code.CCB, code.CCBE, code.CCA, code.CCAE}
	for len(instrs) < n {
		switch rng.Intn(12) {
		case 0, 1, 2: // two-operand ALU
			ops := []code.Op{code.ADD, code.SUB, code.AND, code.OR, code.XOR, code.IMUL, code.ADC, code.SBB}
			in := alu(ops[rng.Intn(len(ops))], reg(), reg(), sz())
			instrs = append(instrs, in)
		case 3: // immediate shift
			ops := []code.Op{code.SHL, code.SHR, code.SAR}
			in := ci(ops[rng.Intn(len(ops))], sz())
			r := reg()
			in.Dst, in.Src1 = r, r
			in.HasImm, in.Imm = true, int64(1+rng.Intn(31))
			instrs = append(instrs, in)
		case 4: // CMP or TEST to refresh flags
			op := code.CMP
			if rng.Intn(2) == 0 {
				op = code.TEST
			}
			in := ci(op, sz())
			in.Src1, in.Src2 = reg(), reg()
			instrs = append(instrs, in)
		case 5: // SETCC
			in := ci(code.SETCC, 4)
			in.Dst, in.CC = reg(), ccs[rng.Intn(len(ccs))]
			instrs = append(instrs, in)
		case 6: // CMOVCC
			in := ci(code.CMOVCC, 8)
			r := reg()
			in.Dst, in.Src1, in.Src2 = r, r, reg()
			in.CC = ccs[rng.Intn(len(ccs))]
			instrs = append(instrs, in)
		case 7: // load
			in := ci(code.LD, 8)
			in.Dst = reg()
			in.HasMem = true
			in.Mem = code.Mem{Base: 8, Index: code.NoReg, Scale: 1, Disp: int32(8 * rng.Intn(64))}
			instrs = append(instrs, in)
		case 8: // store
			in := ci(code.ST, 8)
			in.Src1 = reg()
			in.HasMem = true
			in.Mem = code.Mem{Base: 8, Index: code.NoReg, Scale: 1, Disp: int32(8 * rng.Intn(64))}
			if rng.Intn(4) == 0 { // occasionally predicated
				in.Pred, in.PredSense = reg(), rng.Intn(2) == 0
			}
			instrs = append(instrs, in)
		case 9: // memory-operand ALU (load+op micro-fusion path)
			in := ci(code.ADD, 4)
			r := reg()
			in.Dst, in.Src1 = r, r
			in.HasMem = true
			in.Mem = code.Mem{Base: 8, Index: code.NoReg, Scale: 1, Disp: int32(8 * rng.Intn(64))}
			instrs = append(instrs, in)
		case 10: // register MOV, sometimes predicated
			in := ci(code.MOV, 8)
			in.Dst, in.Src1 = reg(), reg()
			if rng.Intn(3) == 0 {
				in.Pred, in.PredSense = reg(), rng.Intn(2) == 0
			}
			instrs = append(instrs, in)
		case 11: // LEA
			in := ci(code.LEA, 8)
			in.Dst = reg()
			in.HasMem = true
			in.Mem = code.Mem{Base: 8, Index: reg(), Scale: uint8(1 << rng.Intn(3)), Disp: int32(rng.Intn(256))}
			instrs = append(instrs, in)
		}
	}
	// A couple of forward branches over the straight-line body, then RET.
	for i := 0; i < 2; i++ {
		at := 5 + rng.Intn(len(instrs)-6)
		target := at + 1 + rng.Intn(len(instrs)-at)
		jcc := ci(code.JCC, 0)
		jcc.CC = ccs[rng.Intn(len(ccs))]
		jcc.Target = int32(target)
		instrs = append(instrs[:at], append([]code.Instr{jcc}, instrs[at:]...)...)
		// The insert shifted everything at/after `at` down by one.
		for j := range instrs {
			if instrs[j].Op == code.JCC && instrs[j].Target > int32(at) {
				instrs[j].Target++
			}
		}
	}
	instrs = append(instrs, retR(0))
	return mkProg(t, isa.Superset, instrs...)
}

// TestDifferentialExecFuzz drives both executors over a deterministic fuzz
// corpus and demands identical event streams, architectural state, and
// results — the strongest executor-equivalence check, since every decoded
// field of every event must match.
func TestDifferentialExecFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	corpus := 150
	if testing.Short() {
		corpus = 25
	}
	for i := 0; i < corpus; i++ {
		p := fuzzProg(t, rng)
		opts := RunOptions{MaxInstrs: 10_000}
		if i%7 == 0 {
			// Exercise the budget-abort path differentially too.
			opts.MaxInstrs = 10
		}

		var evL []Event
		stL := NewState(mem.New())
		resL, errL := runLegacy(p, stL, opts, func(ev *Event) { evL = append(evL, *ev) })

		var evF []Event
		stF := NewState(mem.New())
		resF, errF := RunPredecoded(Predecode(p), stF, opts, func(ev *Event) { evF = append(evF, *ev) })

		if errString(errL) != errString(errF) {
			t.Fatalf("prog %d: error mismatch: %v vs %v", i, errL, errF)
		}
		if resL != resF {
			t.Fatalf("prog %d: ExecResult mismatch:\nlegacy %+v\nfast   %+v", i, resL, resF)
		}
		if len(evL) != len(evF) {
			t.Fatalf("prog %d: event count mismatch: %d vs %d", i, len(evL), len(evF))
		}
		for j := range evL {
			if evL[j] != evF[j] {
				t.Fatalf("prog %d: event %d mismatch:\nlegacy %+v\nfast   %+v", i, j, evL[j], evF[j])
			}
		}
		if stL.Int != stF.Int || stL.FP != stF.FP || stL.Flags != stF.Flags {
			t.Fatalf("prog %d: architectural state mismatch", i)
		}
	}
}

// TestProfileCodecFieldCount pins the Profile shape: adding or removing a
// field must be accompanied by a codec update (and a version bump if the
// layout changes), or this fails before a silent encoding skew can ship.
func TestProfileCodecFieldCount(t *testing.T) {
	if n := reflect.TypeOf(Profile{}).NumField(); n != 23 {
		t.Fatalf("Profile has %d fields, codec encodes 23: update profile_codec.go (and bump profileCodecVersion on layout changes), then this count", n)
	}
	if n := reflect.TypeOf(Profile{}).FieldByIndex([]int{22}).Type.NumField(); n != 10 {
		t.Fatalf("CompileStats has %d fields, codec encodes 10: update profile_codec.go, then this count", n)
	}
}

// TestProfileCodecErrors pins the decoder's rejection paths.
func TestProfileCodecErrors(t *testing.T) {
	var p Profile
	p.Name = "x"
	p.Uops = 7
	good, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Profile
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("nope"), good[4:]...),
		"version":   append([]byte("cpf1\xff"), good[5:]...),
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte{}, good...), 0),
	}
	for name, blob := range cases {
		if err := q.UnmarshalBinary(blob); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	if err := q.UnmarshalBinary(good); err != nil {
		t.Fatalf("good blob failed: %v", err)
	}
	if q.Name != "x" || q.Uops != 7 {
		t.Fatalf("roundtrip lost fields: %+v", q)
	}
}
