// Package cpu implements the execution substrate: a functional executor for
// superset-ISA machine code that produces a dynamic micro-op trace, branch
// predictor models (2-level local, gshare, tournament), set-associative
// caches, micro-op cache and decode-pipeline models, and in-order and
// out-of-order timing simulators covering every structure of the paper's
// microarchitectural exploration space (Table I).
package cpu

import (
	"errors"
	"fmt"
	"math"

	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/mem"
)

// Typed execution failures. Run wraps them with program context, so callers
// classify with errors.Is (e.g. errors.Is(err, cpu.ErrInstrBudget)).
var (
	// ErrPCOutOfRange reports a control transfer outside the program.
	ErrPCOutOfRange = errors.New("pc out of range")
	// ErrInstrBudget reports that the runaway-execution watchdog fired.
	ErrInstrBudget = errors.New("instruction budget exceeded")
	// ErrUnimplementedOp reports an opcode the executor cannot decode
	// (corrupted or hostile encodings).
	ErrUnimplementedOp = errors.New("unimplemented op")
	// ErrInterrupted reports that RunOptions.Interrupt aborted execution;
	// the interrupt's cause is wrapped alongside it.
	ErrInterrupted = errors.New("execution interrupted")
)

// Event is one dynamically executed macro-instruction, streamed to trace
// consumers (profiler, timing simulators, basic-block-vector collectors).
type Event struct {
	// Idx is the instruction's index in the program.
	Idx int32
	// PC and Len come from the code layout.
	PC  uint32
	Len uint8
	// Uops is the number of micro-ops the macro-op decodes into.
	Uops uint8
	// Taken is the branch outcome for JCC (JMP/RET always "taken").
	Taken bool
	// MemAddr/MemSz describe the data access, if any (loads, stores, and
	// memory-operand ALU instructions).
	MemAddr uint64
	MemSz   uint8
	IsLoad  bool
	IsStore bool
	// PredOff marks a predicated instruction whose predicate did not
	// hold: it flows through the pipeline but commits no result.
	PredOff bool
}

// ExecResult summarizes a functional execution.
type ExecResult struct {
	// Ret is the region checksum from RET.
	Ret uint64
	// Dynamic instruction counts.
	Instrs   int64
	Uops     int64
	Loads    int64
	Stores   int64
	Branches int64 // conditional branches executed
	Taken    int64
	PredOff  int64 // predicated-off instructions
}

// flags is the condition-code state.
type flags struct {
	zf, sf, of, cf bool
}

// State is the architectural state of a composite-ISA core.
type State struct {
	Int   [64]uint64
	FP    [16][2]uint64
	Flags flags
	Mem   *mem.Memory
}

// NewState returns a zeroed state over the given memory.
func NewState(m *mem.Memory) *State { return &State{Mem: m} }

// InstallPool writes the program's constant pool into memory. Run calls it
// automatically.
func InstallPool(p *code.Program, m *mem.Memory) {
	for _, pc := range p.Pool {
		m.Write(uint64(pc.Addr), int(pc.Size), pc.Bits)
	}
}

// RunOptions bounds and interrupts a functional execution.
type RunOptions struct {
	// MaxInstrs bounds runaway execution; exceeding it fails with
	// ErrInstrBudget.
	MaxInstrs int64
	// Interrupt, if non-nil, is polled every InterruptEvery executed
	// instructions; a non-nil return aborts execution with that error
	// wrapped together with ErrInterrupted. This is how context
	// cancellation reaches the inner execution loop.
	Interrupt func() error
	// InterruptEvery is the polling stride (default 65536 instructions).
	InterruptEvery int64
	// JIT, if non-nil, is offered the execution before the interpreter
	// runs (see JITRunner). A nil or declining runner costs one interface
	// check; the interpreter path is otherwise unchanged.
	JIT JITRunner
}

// Run executes the program functionally from instruction 0 until RET,
// streaming one Event per executed macro-instruction to consume (which may
// be nil). maxInstrs bounds runaway execution.
func Run(p *code.Program, st *State, maxInstrs int64, consume func(*Event)) (ExecResult, error) {
	return RunOpts(p, st, RunOptions{MaxInstrs: maxInstrs}, consume)
}

// RunOpts is Run with watchdog and interrupt control. It predecodes the
// program and runs the table-driven loop; callers executing the same program
// repeatedly should Predecode once and use RunPredecoded directly.
func RunOpts(p *code.Program, st *State, opts RunOptions, consume func(*Event)) (ExecResult, error) {
	return RunPredecoded(Predecode(p), st, opts, consume)
}

// runLegacy is the original switch-dispatch run loop, kept verbatim as the
// differential-test oracle for the table-driven executor.
func runLegacy(p *code.Program, st *State, opts RunOptions, consume func(*Event)) (ExecResult, error) {
	var res ExecResult
	InstallPool(p, st.Mem)
	width := p.FS.Width
	var addrMask uint64 = math.MaxUint64
	if width == 32 {
		addrMask = math.MaxUint32
	}
	stride := opts.InterruptEvery
	if stride <= 0 {
		stride = 65536
	}
	nextPoll := stride
	idx := 0
	n := len(p.Instrs)
	var ev Event
	for {
		if idx < 0 || idx >= n {
			return res, fmt.Errorf("cpu: %s: pc %d: %w", p.Name, idx, ErrPCOutOfRange)
		}
		if res.Instrs >= opts.MaxInstrs {
			return res, fmt.Errorf("cpu: %s after %d instructions: %w", p.Name, opts.MaxInstrs, ErrInstrBudget)
		}
		if opts.Interrupt != nil && res.Instrs >= nextPoll {
			nextPoll = res.Instrs + stride
			if err := opts.Interrupt(); err != nil {
				return res, fmt.Errorf("cpu: %s: %w: %w", p.Name, ErrInterrupted, err)
			}
		}
		in := &p.Instrs[idx]
		res.Instrs++
		nuops := in.NumUops()
		res.Uops += int64(nuops)

		ev = Event{Idx: int32(idx), PC: p.PC[idx], Len: uint8(encoding.Length(p, idx)), Uops: uint8(nuops)}

		// Predication gate.
		active := true
		if in.Pred != code.NoReg {
			pv := uint32(st.Int[in.Pred]) != 0
			active = pv == in.PredSense
			if !active {
				ev.PredOff = true
				res.PredOff++
			}
		}

		next := idx + 1
		if active {
			var err error
			next, err = st.step(p, idx, in, &ev, addrMask, &res)
			if err != nil {
				return res, err
			}
			if in.Op == code.RET {
				res.Ret = ev.MemAddr // stashed return value
				ev.MemAddr, ev.MemSz = 0, 0
				ev.Taken = true
				if consume != nil {
					consume(&ev)
				}
				return res, nil
			}
		}
		if in.Op == code.JCC {
			res.Branches++
			if ev.Taken {
				res.Taken++
			}
		}
		if ev.IsLoad {
			res.Loads++
		}
		if ev.IsStore {
			res.Stores++
		}
		if consume != nil {
			consume(&ev)
		}
		idx = next
	}
}

// writeInt stores v into an integer register honoring x86 width semantics:
// 32-bit (and narrower) writes zero-extend into the full register.
func (st *State) writeInt(r code.Reg, v uint64, sz uint8) {
	switch sz {
	case 1:
		v &= 0xff
	case 4:
		v &= math.MaxUint32
	}
	st.Int[r] = v
}

func szMask(sz uint8) uint64 {
	switch sz {
	case 1:
		return 0xff
	case 4:
		return math.MaxUint32
	default:
		return math.MaxUint64
	}
}

func signBit(v uint64, sz uint8) bool {
	switch sz {
	case 1:
		return v&0x80 != 0
	case 4:
		return v&0x8000_0000 != 0
	default:
		return v&(1<<63) != 0
	}
}

// setAddFlags sets flags for r = a + b (+carry) at width sz.
func (st *State) setAddFlags(a, b, r uint64, carryIn bool, sz uint8) {
	m := szMask(sz)
	a, b, r = a&m, b&m, r&m
	st.Flags.zf = r == 0
	st.Flags.sf = signBit(r, sz)
	cin := uint64(0)
	if carryIn {
		cin = 1
	}
	if sz == 8 {
		s1 := a + b
		st.Flags.cf = s1 < a || s1+cin < s1
	} else {
		st.Flags.cf = (a+b+cin)&^m != 0
	}
	// Classic hardware formula; exact including carry-in.
	st.Flags.of = signBit(^(a^b)&(a^r), sz)
}

// setSubFlags sets flags for r = a - b (-borrow) at width sz.
func (st *State) setSubFlags(a, b, r uint64, borrowIn bool, sz uint8) {
	m := szMask(sz)
	a, b, r = a&m, b&m, r&m
	st.Flags.zf = r == 0
	st.Flags.sf = signBit(r, sz)
	if borrowIn {
		st.Flags.cf = a <= b // borrows iff a < b + 1
	} else {
		st.Flags.cf = a < b
	}
	// Classic hardware formula; exact including borrow-in.
	st.Flags.of = signBit((a^b)&(a^r), sz)
}

func (st *State) setLogicFlags(r uint64, sz uint8) {
	m := szMask(sz)
	r &= m
	st.Flags.zf = r == 0
	st.Flags.sf = signBit(r, sz)
	st.Flags.cf = false
	st.Flags.of = false
}

// cond evaluates an x86 condition code against the flags.
func (st *State) cond(cc code.CC) bool {
	f := st.Flags
	switch cc {
	case code.CCEQ:
		return f.zf
	case code.CCNE:
		return !f.zf
	case code.CCLT:
		return f.sf != f.of
	case code.CCGE:
		return f.sf == f.of
	case code.CCLE:
		return f.zf || f.sf != f.of
	case code.CCGT:
		return !f.zf && f.sf == f.of
	case code.CCB:
		return f.cf
	case code.CCAE:
		return !f.cf
	case code.CCBE:
		return f.cf || f.zf
	case code.CCA:
		return !f.cf && !f.zf
	}
	return false
}

// ea computes the effective address of a memory operand.
func (st *State) ea(m code.Mem, addrMask uint64) uint64 {
	var a uint64
	if m.Base != code.NoReg {
		a = st.Int[m.Base]
	}
	if m.Index != code.NoReg {
		a += st.Int[m.Index] * uint64(m.Scale)
	}
	return (a + uint64(int64(m.Disp))) & addrMask
}

func f32of(bits uint64) float32 { return math.Float32frombits(uint32(bits)) }
func f32to(f float32) uint64    { return uint64(math.Float32bits(f)) }
func f64of(bits uint64) float64 { return math.Float64frombits(bits) }
func f64to(f float64) uint64    { return math.Float64bits(f) }
func lane(r [2]uint64, l int) uint32 {
	w := r[l/2]
	if l%2 == 1 {
		w >>= 32
	}
	return uint32(w)
}
func packLanes(l [4]uint32) [2]uint64 {
	return [2]uint64{uint64(l[0]) | uint64(l[1])<<32, uint64(l[2]) | uint64(l[3])<<32}
}

// step executes one active instruction and returns the next index.
func (st *State) step(p *code.Program, idx int, in *code.Instr, ev *Event, addrMask uint64, res *ExecResult) (int, error) {
	sz := in.Sz
	// Resolve the second integer operand (register, immediate, or memory).
	intOp2 := func() uint64 {
		switch {
		case in.HasImm:
			return uint64(in.Imm) & szMask(sz)
		case in.MemSrcALU():
			a := st.ea(in.Mem, addrMask)
			ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
			return st.Mem.Read(a, int(sz))
		default:
			return st.Int[in.Src2] & szMask(sz)
		}
	}
	fpOp2 := func() [2]uint64 {
		if in.MemSrcALU() {
			a := st.ea(in.Mem, addrMask)
			ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
			if sz == 16 {
				lo, hi := st.Mem.Read128(a)
				return [2]uint64{lo, hi}
			}
			return [2]uint64{st.Mem.Read(a, int(sz)), 0}
		}
		return st.FP[in.Src2]
	}

	switch in.Op {
	case code.NOP:

	case code.MOV:
		var v uint64
		if in.HasImm {
			v = uint64(in.Imm)
		} else {
			v = st.Int[in.Src1]
		}
		st.writeInt(in.Dst, v&szMask(sz), sz)

	case code.MOVSX:
		st.Int[in.Dst] = uint64(int64(int32(uint32(st.Int[in.Src1]))))

	case code.LEA:
		st.writeInt(in.Dst, st.ea(in.Mem, addrMask), sz)

	case code.LD:
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
		st.writeInt(in.Dst, st.Mem.Read(a, int(sz)), 8 /* loads zero-extend */)

	case code.ST:
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsStore = a, sz, true
		st.Mem.Write(a, int(sz), st.Int[in.Src1])

	case code.ADD, code.ADC:
		a := st.Int[in.Src1] & szMask(sz)
		b := intOp2()
		cin := in.Op == code.ADC && st.Flags.cf
		r := a + b
		if cin {
			r++
		}
		st.setAddFlags(a, b, r, cin, sz)
		st.writeInt(in.Dst, r&szMask(sz), sz)

	case code.SUB, code.SBB:
		a := st.Int[in.Src1] & szMask(sz)
		b := intOp2()
		bin := in.Op == code.SBB && st.Flags.cf
		r := a - b
		if bin {
			r--
		}
		st.setSubFlags(a, b, r, bin, sz)
		st.writeInt(in.Dst, r&szMask(sz), sz)

	case code.IMUL:
		a := st.Int[in.Src1] & szMask(sz)
		b := intOp2()
		r := (a * b) & szMask(sz)
		// x86 IMUL leaves ZF/SF undefined and sets CF/OF on overflow;
		// nothing downstream consumes them in generated code.
		st.setLogicFlags(r, sz)
		st.writeInt(in.Dst, r, sz)

	case code.AND, code.OR, code.XOR:
		a := st.Int[in.Src1] & szMask(sz)
		b := intOp2()
		var r uint64
		switch in.Op {
		case code.AND:
			r = a & b
		case code.OR:
			r = a | b
		default:
			r = a ^ b
		}
		st.setLogicFlags(r, sz)
		st.writeInt(in.Dst, r, sz)

	case code.SHL, code.SHR, code.SAR:
		a := st.Int[in.Src1] & szMask(sz)
		k := uint(in.Imm)
		var r uint64
		switch in.Op {
		case code.SHL:
			r = a << k
		case code.SHR:
			r = a >> k
		default:
			if sz == 4 {
				r = uint64(uint32(int32(uint32(a)) >> k))
			} else {
				r = uint64(int64(a) >> k)
			}
		}
		r &= szMask(sz)
		st.setLogicFlags(r, sz)
		st.writeInt(in.Dst, r, sz)

	case code.CMP:
		a := st.Int[in.Src1] & szMask(sz)
		b := intOp2()
		st.setSubFlags(a, b, a-b, false, sz)

	case code.TEST:
		a := st.Int[in.Src1] & szMask(sz)
		b := intOp2()
		st.setLogicFlags(a&b, sz)

	case code.SETCC:
		var v uint64
		if st.cond(in.CC) {
			v = 1
		}
		st.writeInt(in.Dst, v, 4)

	case code.CMOVCC:
		var v uint64
		if in.HasMem {
			// CMOV with a memory source always performs the load.
			a := st.ea(in.Mem, addrMask)
			ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
			v = st.Mem.Read(a, int(sz))
		} else {
			v = st.Int[in.Src1] & szMask(sz)
		}
		if st.cond(in.CC) {
			st.writeInt(in.Dst, v, sz)
		}

	case code.JCC:
		if st.cond(in.CC) {
			ev.Taken = true
			return int(in.Target), nil
		}
		return idx + 1, nil

	case code.JMP:
		ev.Taken = true
		return int(in.Target), nil

	case code.RET:
		var v uint64
		if in.Src1 != code.NoReg {
			v = st.Int[in.Src1]
		}
		ev.MemAddr = v // stashed; Run extracts it
		return idx, nil

	case code.FMOV:
		st.FP[in.Dst] = st.FP[in.Src1]

	case code.FLD:
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
		st.FP[in.Dst] = [2]uint64{st.Mem.Read(a, int(sz)), 0}

	case code.FST:
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsStore = a, sz, true
		st.Mem.Write(a, int(sz), st.FP[in.Src1][0])

	case code.FADD, code.FSUB, code.FMUL, code.FDIV:
		a := st.FP[in.Src1]
		b := fpOp2()
		var r uint64
		if sz == 4 {
			x, y := f32of(a[0]), f32of(b[0])
			var f float32
			switch in.Op {
			case code.FADD:
				f = x + y
			case code.FSUB:
				f = x - y
			case code.FMUL:
				f = x * y
			default:
				f = x / y
			}
			r = f32to(f)
		} else {
			x, y := f64of(a[0]), f64of(b[0])
			var f float64
			switch in.Op {
			case code.FADD:
				f = x + y
			case code.FSUB:
				f = x - y
			case code.FMUL:
				f = x * y
			default:
				f = x / y
			}
			r = f64to(f)
		}
		st.FP[in.Dst] = [2]uint64{r, 0}

	case code.FCMP:
		var x, y float64
		if sz == 4 {
			x, y = float64(f32of(st.FP[in.Src1][0])), float64(f32of(st.FP[in.Src2][0]))
		} else {
			x, y = f64of(st.FP[in.Src1][0]), f64of(st.FP[in.Src2][0])
		}
		// UCOMISS/SD: ZF = equal, CF = below; SF/OF cleared.
		st.Flags = flags{zf: x == y, cf: x < y}

	case code.CVTIF:
		s := int64(int32(uint32(st.Int[in.Src1])))
		if sz == 4 {
			st.FP[in.Dst] = [2]uint64{f32to(float32(s)), 0}
		} else {
			st.FP[in.Dst] = [2]uint64{f64to(float64(s)), 0}
		}

	case code.CVTFI:
		var f float64
		if sz == 4 {
			f = float64(f32of(st.FP[in.Src1][0]))
		} else {
			f = f64of(st.FP[in.Src1][0])
		}
		st.writeInt(in.Dst, uint64(uint32(int32(f))), 4)

	case code.VLD:
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsLoad = a, 16, true
		lo, hi := st.Mem.Read128(a)
		st.FP[in.Dst] = [2]uint64{lo, hi}

	case code.VST:
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsStore = a, 16, true
		st.Mem.Write128(a, st.FP[in.Src1][0], st.FP[in.Src1][1])

	case code.VADDF, code.VSUBF, code.VMULF:
		a := st.FP[in.Src1]
		b := fpOp2()
		var out [4]uint32
		for l := 0; l < 4; l++ {
			x, y := math.Float32frombits(lane(a, l)), math.Float32frombits(lane(b, l))
			var f float32
			switch in.Op {
			case code.VADDF:
				f = x + y
			case code.VSUBF:
				f = x - y
			default:
				f = x * y
			}
			out[l] = math.Float32bits(f)
		}
		st.FP[in.Dst] = packLanes(out)

	case code.VADDI, code.VSUBI, code.VMULI:
		a := st.FP[in.Src1]
		b := fpOp2()
		var out [4]uint32
		for l := 0; l < 4; l++ {
			x, y := lane(a, l), lane(b, l)
			switch in.Op {
			case code.VADDI:
				out[l] = x + y
			case code.VSUBI:
				out[l] = x - y
			default:
				out[l] = x * y
			}
		}
		st.FP[in.Dst] = packLanes(out)

	case code.VSPLAT:
		v := lane(st.FP[in.Src1], 0)
		st.FP[in.Dst] = packLanes([4]uint32{v, v, v, v})

	case code.VRSUM:
		a := st.FP[in.Src1]
		var s float32
		for l := 0; l < 4; l++ {
			s += math.Float32frombits(lane(a, l))
		}
		st.FP[in.Dst] = [2]uint64{f32to(s), 0}

	default:
		return 0, fmt.Errorf("cpu: op %d: %w", uint8(in.Op), ErrUnimplementedOp)
	}
	return idx + 1, nil
}
