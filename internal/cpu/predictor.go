package cpu

// PredictorKind selects one of the three predictor organizations of Table I.
type PredictorKind uint8

const (
	// PredLocal is a 2-level local-history predictor.
	PredLocal PredictorKind = iota
	// PredGShare is a global-history gshare predictor.
	PredGShare
	// PredTournament combines local and gshare under a chooser.
	PredTournament
)

func (k PredictorKind) String() string {
	switch k {
	case PredLocal:
		return "2-level local"
	case PredGShare:
		return "gshare"
	default:
		return "tournament"
	}
}

// ShortString returns the one-letter code used in the paper's tables.
func (k PredictorKind) ShortString() string {
	return [...]string{"L", "G", "T"}[k]
}

// Predictor is a conditional-branch direction predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint32) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint32, taken bool)
}

// NewPredictor builds a predictor of the given kind.
func NewPredictor(k PredictorKind) Predictor {
	switch k {
	case PredLocal:
		return newLocal()
	case PredGShare:
		return newGShare()
	default:
		return &tournament{local: newLocal(), gshare: newGShare(), choice: newCounterTable(4096)}
	}
}

// counterTable is a table of 2-bit saturating counters.
type counterTable struct {
	c    []uint8
	mask uint32
}

func newCounterTable(n int) *counterTable {
	t := &counterTable{c: make([]uint8, n), mask: uint32(n - 1)}
	for i := range t.c {
		t.c[i] = 1 // weakly not-taken
	}
	return t
}

func (t *counterTable) reset() {
	for i := range t.c {
		t.c[i] = 1
	}
}

func (t *counterTable) taken(idx uint32) bool { return t.c[idx&t.mask] >= 2 }

func (t *counterTable) update(idx uint32, taken bool) {
	i := idx & t.mask
	if taken {
		if t.c[i] < 3 {
			t.c[i]++
		}
	} else if t.c[i] > 0 {
		t.c[i]--
	}
}

// local is a 2-level predictor: 1024 10-bit local histories indexing a
// 1024-entry pattern history table.
type local struct {
	hist []uint16
	pht  *counterTable
}

func newLocal() *local {
	return &local{hist: make([]uint16, 1024), pht: newCounterTable(1024)}
}

func (p *local) reset() {
	clear(p.hist)
	p.pht.reset()
}

func (p *local) idx(pc uint32) (uint32, uint32) {
	h := uint32(pc>>2) & 1023
	return h, uint32(p.hist[h]) & 1023
}

func (p *local) Predict(pc uint32) bool {
	_, pi := p.idx(pc)
	return p.pht.taken(pi)
}

func (p *local) Update(pc uint32, taken bool) {
	hi, pi := p.idx(pc)
	p.pht.update(pi, taken)
	p.hist[hi] = (p.hist[hi] << 1) & 1023
	if taken {
		p.hist[hi] |= 1
	}
}

// gshare xors a 12-bit global history with the PC.
type gshare struct {
	ghr uint32
	pht *counterTable
}

func newGShare() *gshare { return &gshare{pht: newCounterTable(4096)} }

func (p *gshare) reset() {
	p.ghr = 0
	p.pht.reset()
}

func (p *gshare) idx(pc uint32) uint32 { return (pc >> 2) ^ p.ghr }

func (p *gshare) Predict(pc uint32) bool { return p.pht.taken(p.idx(pc)) }

func (p *gshare) Update(pc uint32, taken bool) {
	p.pht.update(p.idx(pc), taken)
	p.ghr = (p.ghr << 1) & 4095
	if taken {
		p.ghr |= 1
	}
}

// tournament keeps both predictors and a chooser trained toward whichever
// component was right.
type tournament struct {
	local  *local
	gshare *gshare
	choice *counterTable
}

func (p *tournament) reset() {
	p.local.reset()
	p.gshare.reset()
	p.choice.reset()
}

func (p *tournament) Predict(pc uint32) bool {
	if p.choice.taken(pc >> 2) {
		return p.gshare.Predict(pc)
	}
	return p.local.Predict(pc)
}

func (p *tournament) Update(pc uint32, taken bool) {
	lp := p.local.Predict(pc)
	gp := p.gshare.Predict(pc)
	if lp != gp {
		p.choice.update(pc>>2, gp == taken)
	}
	p.local.Update(pc, taken)
	p.gshare.Update(pc, taken)
}

// resetPredictor returns a pooled predictor to its as-constructed state.
func resetPredictor(p Predictor) {
	switch t := p.(type) {
	case *local:
		t.reset()
	case *gshare:
		t.reset()
	case *tournament:
		t.reset()
	}
}
