package cpu

import (
	"compisa/internal/code"
	"compisa/internal/encoding"
)

// uopTmpl is the static part of one micro-op of a macro-op: everything
// expand() derives from the instruction alone. The per-event fields
// (addresses, dynamic load/store truth) are filled in at instantiation time
// according to memKind.
type uopTmpl struct {
	class   UopClass
	srcs    [5]int16
	nsrcs   int8
	dst     int16
	dstFlag bool
	memKind uint8
}

const (
	tmplMemNone = iota // no memory operand
	tmplMemFold        // the folded load of a load+op pair: always a load
	tmplMemDyn         // load/store truth comes from the event (LD under
	// predication commits nothing, so IsLoad is dynamic)
)

// Predecoded is a program plus everything the run loop and timing walk would
// otherwise recompute per dynamic instruction: instruction lengths, micro-op
// counts, resolved step handlers, and micro-op decomposition templates.
// Build it once with Predecode and share it between the executor and any
// number of timing/profiling consumers; it is immutable after construction.
type Predecoded struct {
	P *code.Program

	len   []uint8
	nuops []uint8
	step  []stepFn

	tmplOff []int32
	tmplCnt []uint8
	tmpls   []uopTmpl
}

// Predecode derives the dense per-instruction tables for p. Unimplemented
// opcodes get a nil handler and fail only if executed, preserving the lazy
// error semantics of the switch path.
func Predecode(p *code.Program) *Predecoded {
	n := len(p.Instrs)
	pd := &Predecoded{
		P:       p,
		len:     make([]uint8, n),
		nuops:   make([]uint8, n),
		step:    make([]stepFn, n),
		tmplOff: make([]int32, n),
		tmplCnt: make([]uint8, n),
		tmpls:   make([]uopTmpl, 0, n+n/4),
	}
	var zero Event
	var buf [3]uopSpec
	// Instruction lengths come from the program's target decoder: the
	// variable-length x86 layout or a fixed-length one-step-decode word.
	// The micro-op executor, timing walk, and profiler below are
	// target-independent — only fetch geometry differs between encodings.
	coder := encoding.ForProgram(p)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		pd.len[i] = uint8(coder.InstrLen(p, i))
		pd.nuops[i] = uint8(in.NumUops())
		pd.step[i] = stepTab[in.Op]

		// Derive the micro-op templates by running the oracle decomposition
		// against a zeroed event: everything it reads from the event is
		// exactly what instantiation must re-supply.
		uops := expand(in, &zero, buf[:0])
		pd.tmplOff[i] = int32(len(pd.tmpls))
		pd.tmplCnt[i] = uint8(len(uops))
		dyn := in.HasMem && !in.MemSrcALU()
		for ui := range uops {
			u := &uops[ui]
			tm := uopTmpl{
				class:   u.class,
				srcs:    u.srcs,
				nsrcs:   int8(u.nsrcs),
				dst:     u.dst,
				dstFlag: u.dstFlag,
			}
			switch {
			case u.isLoad:
				// Only the folded load of a load+op pair is statically a
				// load under a zero event.
				tm.memKind = tmplMemFold
			case dyn && ui == len(uops)-1:
				tm.memKind = tmplMemDyn
			}
			pd.tmpls = append(pd.tmpls, tm)
		}
	}
	return pd
}

// expand instantiates the micro-op decomposition of the instruction at
// ev.Idx into buf, bit-identical to the oracle expand() in timing.go.
func (pd *Predecoded) expand(ev *Event, buf []uopSpec) []uopSpec {
	buf = buf[:0]
	off := int(pd.tmplOff[ev.Idx])
	cnt := int(pd.tmplCnt[ev.Idx])
	for i := 0; i < cnt; i++ {
		tm := &pd.tmpls[off+i]
		u := uopSpec{
			class:   tm.class,
			srcs:    tm.srcs,
			nsrcs:   int(tm.nsrcs),
			dst:     tm.dst,
			dstFlag: tm.dstFlag,
		}
		switch tm.memKind {
		case tmplMemFold:
			u.isLoad = true
			u.addr, u.msz = ev.MemAddr, ev.MemSz
		case tmplMemDyn:
			u.isLoad, u.isStore = ev.IsLoad, ev.IsStore
			u.addr, u.msz = ev.MemAddr, ev.MemSz
		}
		buf = append(buf, u)
	}
	return buf
}
