package cpu

import (
	"fmt"
	"math"

	"compisa/internal/code"
)

// stepFn executes one active instruction and returns the next index. The
// table-driven executor resolves each instruction's stepFn once at predecode
// time; step's switch ladder remains in exec.go as the differential oracle.
type stepFn func(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error)

// stepTab maps code.Op to its handler. Unhandled opcodes stay nil and fail
// with ErrUnimplementedOp only if actually executed, matching the lazy-error
// semantics of the switch path.
var stepTab [256]stepFn

func init() {
	stepTab[code.NOP] = stepNOP
	stepTab[code.MOV] = stepMOV
	stepTab[code.MOVSX] = stepMOVSX
	stepTab[code.LEA] = stepLEA
	stepTab[code.LD] = stepLD
	stepTab[code.ST] = stepST
	stepTab[code.ADD] = stepADD
	stepTab[code.ADC] = stepADC
	stepTab[code.SUB] = stepSUB
	stepTab[code.SBB] = stepSBB
	stepTab[code.IMUL] = stepIMUL
	stepTab[code.AND] = stepAND
	stepTab[code.OR] = stepOR
	stepTab[code.XOR] = stepXOR
	stepTab[code.SHL] = stepSHL
	stepTab[code.SHR] = stepSHR
	stepTab[code.SAR] = stepSAR
	stepTab[code.CMP] = stepCMP
	stepTab[code.TEST] = stepTEST
	stepTab[code.SETCC] = stepSETCC
	stepTab[code.CMOVCC] = stepCMOVCC
	stepTab[code.JCC] = stepJCC
	stepTab[code.JMP] = stepJMP
	stepTab[code.RET] = stepRET
	stepTab[code.FMOV] = stepFMOV
	stepTab[code.FLD] = stepFLD
	stepTab[code.FST] = stepFST
	stepTab[code.FADD] = stepFArith
	stepTab[code.FSUB] = stepFArith
	stepTab[code.FMUL] = stepFArith
	stepTab[code.FDIV] = stepFArith
	stepTab[code.FCMP] = stepFCMP
	stepTab[code.CVTIF] = stepCVTIF
	stepTab[code.CVTFI] = stepCVTFI
	stepTab[code.VLD] = stepVLD
	stepTab[code.VST] = stepVST
	stepTab[code.VADDF] = stepVArithF
	stepTab[code.VSUBF] = stepVArithF
	stepTab[code.VMULF] = stepVArithF
	stepTab[code.VADDI] = stepVArithI
	stepTab[code.VSUBI] = stepVArithI
	stepTab[code.VMULI] = stepVArithI
	stepTab[code.VSPLAT] = stepVSPLAT
	stepTab[code.VRSUM] = stepVRSUM
}

// intOp2 resolves the second integer operand (register, immediate, or
// memory) — the method form of step's closure.
func (st *State) intOp2(in *code.Instr, ev *Event, addrMask uint64, sz uint8) uint64 {
	switch {
	case in.HasImm:
		return uint64(in.Imm) & szMask(sz)
	case in.MemSrcALU():
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
		return st.Mem.Read(a, int(sz))
	default:
		return st.Int[in.Src2] & szMask(sz)
	}
}

func (st *State) fpOp2(in *code.Instr, ev *Event, addrMask uint64, sz uint8) [2]uint64 {
	if in.MemSrcALU() {
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
		if sz == 16 {
			lo, hi := st.Mem.Read128(a)
			return [2]uint64{lo, hi}
		}
		return [2]uint64{st.Mem.Read(a, int(sz)), 0}
	}
	return st.FP[in.Src2]
}

func stepNOP(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	return idx + 1, nil
}

func stepMOV(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	var v uint64
	if in.HasImm {
		v = uint64(in.Imm)
	} else {
		v = st.Int[in.Src1]
	}
	st.writeInt(in.Dst, v&szMask(in.Sz), in.Sz)
	return idx + 1, nil
}

func stepMOVSX(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	st.Int[in.Dst] = uint64(int64(int32(uint32(st.Int[in.Src1]))))
	return idx + 1, nil
}

func stepLEA(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	st.writeInt(in.Dst, st.ea(in.Mem, addrMask), in.Sz)
	return idx + 1, nil
}

func stepLD(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.ea(in.Mem, addrMask)
	ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
	st.writeInt(in.Dst, st.Mem.Read(a, int(sz)), 8 /* loads zero-extend */)
	return idx + 1, nil
}

func stepST(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.ea(in.Mem, addrMask)
	ev.MemAddr, ev.MemSz, ev.IsStore = a, sz, true
	st.Mem.Write(a, int(sz), st.Int[in.Src1])
	return idx + 1, nil
}

func stepADD(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	r := a + b
	st.setAddFlags(a, b, r, false, sz)
	st.writeInt(in.Dst, r&szMask(sz), sz)
	return idx + 1, nil
}

func stepADC(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	cin := st.Flags.cf
	r := a + b
	if cin {
		r++
	}
	st.setAddFlags(a, b, r, cin, sz)
	st.writeInt(in.Dst, r&szMask(sz), sz)
	return idx + 1, nil
}

func stepSUB(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	r := a - b
	st.setSubFlags(a, b, r, false, sz)
	st.writeInt(in.Dst, r&szMask(sz), sz)
	return idx + 1, nil
}

func stepSBB(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	bin := st.Flags.cf
	r := a - b
	if bin {
		r--
	}
	st.setSubFlags(a, b, r, bin, sz)
	st.writeInt(in.Dst, r&szMask(sz), sz)
	return idx + 1, nil
}

func stepIMUL(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	r := (a * b) & szMask(sz)
	// x86 IMUL leaves ZF/SF undefined and sets CF/OF on overflow;
	// nothing downstream consumes them in generated code.
	st.setLogicFlags(r, sz)
	st.writeInt(in.Dst, r, sz)
	return idx + 1, nil
}

func stepAND(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	r := a & b
	st.setLogicFlags(r, sz)
	st.writeInt(in.Dst, r, sz)
	return idx + 1, nil
}

func stepOR(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	r := a | b
	st.setLogicFlags(r, sz)
	st.writeInt(in.Dst, r, sz)
	return idx + 1, nil
}

func stepXOR(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	r := a ^ b
	st.setLogicFlags(r, sz)
	st.writeInt(in.Dst, r, sz)
	return idx + 1, nil
}

func stepSHL(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	r := (a << uint(in.Imm)) & szMask(sz)
	st.setLogicFlags(r, sz)
	st.writeInt(in.Dst, r, sz)
	return idx + 1, nil
}

func stepSHR(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	r := (a >> uint(in.Imm)) & szMask(sz)
	st.setLogicFlags(r, sz)
	st.writeInt(in.Dst, r, sz)
	return idx + 1, nil
}

func stepSAR(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	k := uint(in.Imm)
	var r uint64
	if sz == 4 {
		r = uint64(uint32(int32(uint32(a)) >> k))
	} else {
		r = uint64(int64(a) >> k)
	}
	r &= szMask(sz)
	st.setLogicFlags(r, sz)
	st.writeInt(in.Dst, r, sz)
	return idx + 1, nil
}

func stepCMP(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	st.setSubFlags(a, b, a-b, false, sz)
	return idx + 1, nil
}

func stepTEST(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.Int[in.Src1] & szMask(sz)
	b := st.intOp2(in, ev, addrMask, sz)
	st.setLogicFlags(a&b, sz)
	return idx + 1, nil
}

func stepSETCC(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	var v uint64
	if st.cond(in.CC) {
		v = 1
	}
	st.writeInt(in.Dst, v, 4)
	return idx + 1, nil
}

func stepCMOVCC(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	var v uint64
	if in.HasMem {
		// CMOV with a memory source always performs the load.
		a := st.ea(in.Mem, addrMask)
		ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
		v = st.Mem.Read(a, int(sz))
	} else {
		v = st.Int[in.Src1] & szMask(sz)
	}
	if st.cond(in.CC) {
		st.writeInt(in.Dst, v, sz)
	}
	return idx + 1, nil
}

func stepJCC(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	if st.cond(in.CC) {
		ev.Taken = true
		return int(in.Target), nil
	}
	return idx + 1, nil
}

func stepJMP(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	ev.Taken = true
	return int(in.Target), nil
}

func stepRET(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	var v uint64
	if in.Src1 != code.NoReg {
		v = st.Int[in.Src1]
	}
	ev.MemAddr = v // stashed; the run loop extracts it
	return idx, nil
}

func stepFMOV(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	st.FP[in.Dst] = st.FP[in.Src1]
	return idx + 1, nil
}

func stepFLD(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.ea(in.Mem, addrMask)
	ev.MemAddr, ev.MemSz, ev.IsLoad = a, sz, true
	st.FP[in.Dst] = [2]uint64{st.Mem.Read(a, int(sz)), 0}
	return idx + 1, nil
}

func stepFST(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.ea(in.Mem, addrMask)
	ev.MemAddr, ev.MemSz, ev.IsStore = a, sz, true
	st.Mem.Write(a, int(sz), st.FP[in.Src1][0])
	return idx + 1, nil
}

func stepFArith(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	sz := in.Sz
	a := st.FP[in.Src1]
	b := st.fpOp2(in, ev, addrMask, sz)
	var r uint64
	if sz == 4 {
		x, y := f32of(a[0]), f32of(b[0])
		var f float32
		switch in.Op {
		case code.FADD:
			f = x + y
		case code.FSUB:
			f = x - y
		case code.FMUL:
			f = x * y
		default:
			f = x / y
		}
		r = f32to(f)
	} else {
		x, y := f64of(a[0]), f64of(b[0])
		var f float64
		switch in.Op {
		case code.FADD:
			f = x + y
		case code.FSUB:
			f = x - y
		case code.FMUL:
			f = x * y
		default:
			f = x / y
		}
		r = f64to(f)
	}
	st.FP[in.Dst] = [2]uint64{r, 0}
	return idx + 1, nil
}

func stepFCMP(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	var x, y float64
	if in.Sz == 4 {
		x, y = float64(f32of(st.FP[in.Src1][0])), float64(f32of(st.FP[in.Src2][0]))
	} else {
		x, y = f64of(st.FP[in.Src1][0]), f64of(st.FP[in.Src2][0])
	}
	// UCOMISS/SD: ZF = equal, CF = below; SF/OF cleared.
	st.Flags = flags{zf: x == y, cf: x < y}
	return idx + 1, nil
}

func stepCVTIF(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	s := int64(int32(uint32(st.Int[in.Src1])))
	if in.Sz == 4 {
		st.FP[in.Dst] = [2]uint64{f32to(float32(s)), 0}
	} else {
		st.FP[in.Dst] = [2]uint64{f64to(float64(s)), 0}
	}
	return idx + 1, nil
}

func stepCVTFI(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	var f float64
	if in.Sz == 4 {
		f = float64(f32of(st.FP[in.Src1][0]))
	} else {
		f = f64of(st.FP[in.Src1][0])
	}
	st.writeInt(in.Dst, uint64(uint32(int32(f))), 4)
	return idx + 1, nil
}

func stepVLD(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	a := st.ea(in.Mem, addrMask)
	ev.MemAddr, ev.MemSz, ev.IsLoad = a, 16, true
	lo, hi := st.Mem.Read128(a)
	st.FP[in.Dst] = [2]uint64{lo, hi}
	return idx + 1, nil
}

func stepVST(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	a := st.ea(in.Mem, addrMask)
	ev.MemAddr, ev.MemSz, ev.IsStore = a, 16, true
	st.Mem.Write128(a, st.FP[in.Src1][0], st.FP[in.Src1][1])
	return idx + 1, nil
}

func stepVArithF(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	a := st.FP[in.Src1]
	b := st.fpOp2(in, ev, addrMask, in.Sz)
	var out [4]uint32
	for l := 0; l < 4; l++ {
		x, y := math.Float32frombits(lane(a, l)), math.Float32frombits(lane(b, l))
		var f float32
		switch in.Op {
		case code.VADDF:
			f = x + y
		case code.VSUBF:
			f = x - y
		default:
			f = x * y
		}
		out[l] = math.Float32bits(f)
	}
	st.FP[in.Dst] = packLanes(out)
	return idx + 1, nil
}

func stepVArithI(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	a := st.FP[in.Src1]
	b := st.fpOp2(in, ev, addrMask, in.Sz)
	var out [4]uint32
	for l := 0; l < 4; l++ {
		x, y := lane(a, l), lane(b, l)
		switch in.Op {
		case code.VADDI:
			out[l] = x + y
		case code.VSUBI:
			out[l] = x - y
		default:
			out[l] = x * y
		}
	}
	st.FP[in.Dst] = packLanes(out)
	return idx + 1, nil
}

func stepVSPLAT(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	v := lane(st.FP[in.Src1], 0)
	st.FP[in.Dst] = packLanes([4]uint32{v, v, v, v})
	return idx + 1, nil
}

func stepVRSUM(st *State, in *code.Instr, ev *Event, addrMask uint64, idx int) (int, error) {
	a := st.FP[in.Src1]
	var s float32
	for l := 0; l < 4; l++ {
		s += math.Float32frombits(lane(a, l))
	}
	st.FP[in.Dst] = [2]uint64{f32to(s), 0}
	return idx + 1, nil
}

// RunPredecoded is the table-driven run loop over a predecoded program. It
// is semantically identical to runLegacy (the switch-dispatch oracle kept
// in exec.go), but reads instruction length, micro-op count, and handler
// from the predecode arrays instead of recomputing them per dynamic
// instruction.
func RunPredecoded(pd *Predecoded, st *State, opts RunOptions, consume func(*Event)) (ExecResult, error) {
	if opts.JIT != nil {
		// Offer the execution to the native-code engine. The inner options
		// drop the runner so deoptimized interpreter steps (and the
		// full-interpreter fallback on bailout) cannot recurse.
		inner := opts
		inner.JIT = nil
		if res, ok, err := opts.JIT.RunJIT(pd, st, inner, consume); ok {
			return res, err
		}
	}
	var res ExecResult
	p := pd.P
	InstallPool(p, st.Mem)
	var addrMask uint64 = math.MaxUint64
	if p.FS.Width == 32 {
		addrMask = math.MaxUint32
	}
	stride := opts.InterruptEvery
	if stride <= 0 {
		stride = 65536
	}
	nextPoll := stride
	idx := 0
	n := len(p.Instrs)
	var ev Event
	for {
		if idx < 0 || idx >= n {
			return res, fmt.Errorf("cpu: %s: pc %d: %w", p.Name, idx, ErrPCOutOfRange)
		}
		if res.Instrs >= opts.MaxInstrs {
			return res, fmt.Errorf("cpu: %s after %d instructions: %w", p.Name, opts.MaxInstrs, ErrInstrBudget)
		}
		if opts.Interrupt != nil && res.Instrs >= nextPoll {
			nextPoll = res.Instrs + stride
			if err := opts.Interrupt(); err != nil {
				return res, fmt.Errorf("cpu: %s: %w: %w", p.Name, ErrInterrupted, err)
			}
		}
		in := &p.Instrs[idx]
		res.Instrs++
		nuops := pd.nuops[idx]
		res.Uops += int64(nuops)

		ev = Event{Idx: int32(idx), PC: p.PC[idx], Len: pd.len[idx], Uops: nuops}

		// Predication gate.
		active := true
		if in.Pred != code.NoReg {
			pv := uint32(st.Int[in.Pred]) != 0
			active = pv == in.PredSense
			if !active {
				ev.PredOff = true
				res.PredOff++
			}
		}

		next := idx + 1
		if active {
			fn := pd.step[idx]
			if fn == nil {
				return res, fmt.Errorf("cpu: op %d: %w", uint8(in.Op), ErrUnimplementedOp)
			}
			var err error
			next, err = fn(st, in, &ev, addrMask, idx)
			if err != nil {
				return res, err
			}
			if in.Op == code.RET {
				res.Ret = ev.MemAddr // stashed return value
				ev.MemAddr, ev.MemSz = 0, 0
				ev.Taken = true
				if consume != nil {
					consume(&ev)
				}
				return res, nil
			}
		}
		if in.Op == code.JCC {
			res.Branches++
			if ev.Taken {
				res.Taken++
			}
		}
		if ev.IsLoad {
			res.Loads++
		}
		if ev.IsStore {
			res.Stores++
		}
		if consume != nil {
			consume(&ev)
		}
		idx = next
	}
}
