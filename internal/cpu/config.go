package cpu

import "fmt"

// CoreConfig is one microarchitectural configuration from the exploration
// space of Table I. Together with an isa.FeatureSet it forms a single-core
// design point.
type CoreConfig struct {
	// OoO selects out-of-order execution; false is an in-order core.
	OoO bool
	// Width is the fetch/issue width (1, 2, or 4).
	Width int
	// Predictor selects the branch predictor organization.
	Predictor PredictorKind
	// IQ and ROB sizes (ROB meaningful for OoO only).
	IQ, ROB int
	// PRFInt/PRFFP are physical register file sizes (OoO).
	PRFInt, PRFFP int
	// Functional units.
	IntALU, IntMul, FPALU int
	// LSQ is the load/store queue size.
	LSQ int
	// Caches.
	L1I, L1D, L2 CacheCfg
	// UopCache enables the decoded micro-op cache.
	UopCache bool
	// Fusion enables macro-op fusion (CMP+JCC) and micro-op fusion of
	// load+op pairs. Not applicable to microx86 code, which is 1:1.
	Fusion bool
}

// FrontendDepth is the number of front-end stages between fetch and
// dispatch; a branch misprediction refills it.
const FrontendDepth = 12

// Validate rejects configurations outside the design space.
func (c CoreConfig) Validate() error {
	switch c.Width {
	case 1, 2, 4:
	default:
		return fmt.Errorf("cpu: invalid width %d", c.Width)
	}
	if c.IntALU < 1 || c.FPALU < 1 || c.IntMul < 1 {
		return fmt.Errorf("cpu: cores need at least one unit of each kind")
	}
	if c.OoO && (c.ROB < 1 || c.IQ < 1 || c.PRFInt < 1) {
		return fmt.Errorf("cpu: out-of-order cores need ROB/IQ/PRF")
	}
	if c.LSQ < 1 {
		return fmt.Errorf("cpu: LSQ required")
	}
	return nil
}

// Name returns a compact identifier, e.g. "ooo4-T-rob128".
func (c CoreConfig) Name() string {
	k := "io"
	if c.OoO {
		k = "ooo"
	}
	return fmt.Sprintf("%s%d-%s-iq%d-rob%d-a%df%d-lsq%d-l1%d/%d-l2%d",
		k, c.Width, c.Predictor.ShortString(), c.IQ, c.ROB, c.IntALU, c.FPALU,
		c.LSQ, c.L1I.SizeKB, c.L1D.SizeKB, c.L2.SizeKB/1024)
}

// uop execution classes.
type UopClass uint8

const (
	UcInt UopClass = iota
	UcMul
	UcFP
	UcFDiv
	UcLoad
	UcStore
	UcBranch
	NumUopClasses
)

// latOf returns the execution latency of a class (loads add cache time).
func latOf(c UopClass) int {
	switch c {
	case UcInt, UcBranch, UcStore:
		return 1
	case UcMul:
		return 3
	case UcFP:
		return 4
	case UcFDiv:
		return 12
	case UcLoad:
		return 0 // cache latency dominates
	}
	return 1
}
