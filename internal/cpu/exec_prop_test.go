package cpu

import (
	"testing"
	"testing/quick"

	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// evalBinop runs "r0 = a; r1 = b; r0 = r0 OP r1; ret r0" and returns r0.
func evalBinop(t *testing.T, op code.Op, sz uint8, a, b uint64) uint64 {
	t.Helper()
	loadA := ci(code.MOV, 8)
	loadA.Dst, loadA.HasImm, loadA.Imm = 0, true, int64(a)
	loadB := ci(code.MOV, 8)
	loadB.Dst, loadB.HasImm, loadB.Imm = 1, true, int64(b)
	o := ci(op, sz)
	o.Dst, o.Src1, o.Src2 = 0, 0, 1
	p := mkProg(t, isa.X8664, loadA, loadB, o, retR(0))
	res, _ := run(t, p)
	return res.Ret
}

func TestExecIntSemanticsQuick(t *testing.T) {
	type opcase struct {
		op code.Op
		f  func(a, b uint64) uint64
	}
	cases64 := []opcase{
		{code.ADD, func(a, b uint64) uint64 { return a + b }},
		{code.SUB, func(a, b uint64) uint64 { return a - b }},
		{code.AND, func(a, b uint64) uint64 { return a & b }},
		{code.OR, func(a, b uint64) uint64 { return a | b }},
		{code.XOR, func(a, b uint64) uint64 { return a ^ b }},
		{code.IMUL, func(a, b uint64) uint64 { return a * b }},
	}
	for _, c := range cases64 {
		c := c
		f := func(a, b uint64) bool {
			return evalBinop(t, c.op, 8, a, b) == c.f(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%v (64-bit): %v", c.op, err)
		}
		f32 := func(a, b uint32) bool {
			return evalBinop(t, c.op, 4, uint64(a), uint64(b)) == uint64(uint32(c.f(uint64(a), uint64(b))))
		}
		if err := quick.Check(f32, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%v (32-bit zero-extension): %v", c.op, err)
		}
	}
}

func TestExecShiftSemanticsQuick(t *testing.T) {
	shift := func(op code.Op, sz uint8, a uint64, k int64) uint64 {
		loadA := ci(code.MOV, 8)
		loadA.Dst, loadA.HasImm, loadA.Imm = 0, true, int64(a)
		o := ci(op, sz)
		o.Dst, o.Src1 = 0, 0
		o.HasImm, o.Imm = true, k
		p := mkProg(t, isa.X8664, loadA, o, retR(0))
		res, _ := run(t, p)
		return res.Ret
	}
	f := func(a uint64, kk uint8) bool {
		k := int64(kk%31) + 1
		if shift(code.SHL, 8, a, k) != a<<uint(k) {
			return false
		}
		if shift(code.SHR, 8, a, k) != a>>uint(k) {
			return false
		}
		if shift(code.SAR, 8, a, k) != uint64(int64(a)>>uint(k)) {
			return false
		}
		a32 := uint32(a)
		if shift(code.SAR, 4, uint64(a32), k) != uint64(uint32(int32(a32)>>uint(k))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestExecSetccMatchesGoComparisons: CMP+SETcc over every condition code
// agrees with Go's comparison operators at both widths.
func TestExecSetccMatchesGoComparisons(t *testing.T) {
	eval := func(cc code.CC, sz uint8, a, b uint64) uint64 {
		la := ci(code.MOV, 8)
		la.Dst, la.HasImm, la.Imm = 0, true, int64(a)
		lb := ci(code.MOV, 8)
		lb.Dst, lb.HasImm, lb.Imm = 1, true, int64(b)
		cmp := ci(code.CMP, sz)
		cmp.Src1, cmp.Src2 = 0, 1
		set := ci(code.SETCC, 4)
		set.Dst, set.CC = 2, cc
		p := mkProg(t, isa.X8664, la, lb, cmp, set, retR(2))
		res, _ := run(t, p)
		return res.Ret
	}
	b2u := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	f := func(a, b uint64) bool {
		// 64-bit signed and unsigned.
		sa, sb := int64(a), int64(b)
		checks := []struct {
			cc   code.CC
			want bool
		}{
			{code.CCEQ, a == b}, {code.CCNE, a != b},
			{code.CCLT, sa < sb}, {code.CCLE, sa <= sb},
			{code.CCGT, sa > sb}, {code.CCGE, sa >= sb},
			{code.CCB, a < b}, {code.CCBE, a <= b},
			{code.CCA, a > b}, {code.CCAE, a >= b},
		}
		for _, c := range checks {
			if eval(c.cc, 8, a, b) != b2u(c.want) {
				return false
			}
		}
		// 32-bit signed.
		a32, b32 := uint32(a), uint32(b)
		if eval(code.CCLT, 4, uint64(a32), uint64(b32)) != b2u(int32(a32) < int32(b32)) {
			return false
		}
		if eval(code.CCB, 4, uint64(a32), uint64(b32)) != b2u(a32 < b32) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestExecAdcSbbPairQuick: the 32-bit ADD/ADC (SUB/SBB) pair computes exact
// 64-bit sums/differences — the foundation of 64-on-32 lowering.
func TestExecAdcSbbPairQuick(t *testing.T) {
	pair := func(lo1, hi1, lo2, hi2 uint32, sub bool) (uint32, uint32) {
		mk := func(r code.Reg, v uint32) code.Instr {
			m := ci(code.MOV, 4)
			m.Dst, m.HasImm, m.Imm = r, true, int64(v)
			return m
		}
		op1, op2 := code.ADD, code.ADC
		if sub {
			op1, op2 = code.SUB, code.SBB
		}
		o1 := ci(op1, 4)
		o1.Dst, o1.Src1, o1.Src2 = 0, 0, 2
		o2 := ci(op2, 4)
		o2.Dst, o2.Src1, o2.Src2 = 1, 1, 3
		// Pack results: r0 = lo, r1 = hi; return via memory.
		st1 := ci(code.ST, 4)
		st1.Src1 = 0
		st1.HasMem, st1.Mem = true, code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: 0x08000000}
		st2 := ci(code.ST, 4)
		st2.Src1 = 1
		st2.HasMem, st2.Mem = true, code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: 0x08000004}
		fs := isa.MustNew(isa.FullX86, 32, 16, isa.PartialPredication)
		p := mkProg(t, fs, mk(0, lo1), mk(1, hi1), mk(2, lo2), mk(3, hi2), o1, o2, st1, st2, retR(0))
		st := NewState(mem.New())
		if _, err := Run(p, st, 1000, nil); err != nil {
			t.Fatal(err)
		}
		return uint32(st.Mem.Read(0x08000000, 4)), uint32(st.Mem.Read(0x08000004, 4))
	}
	f := func(a, b uint64) bool {
		lo, hi := pair(uint32(a), uint32(a>>32), uint32(b), uint32(b>>32), false)
		if uint64(lo)|uint64(hi)<<32 != a+b {
			return false
		}
		lo, hi = pair(uint32(a), uint32(a>>32), uint32(b), uint32(b>>32), true)
		return uint64(lo)|uint64(hi)<<32 == a-b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEventLengthsMatchLayout: the executor's reported instruction lengths
// must equal the encoder's layout.
func TestEventLengthsMatchLayout(t *testing.T) {
	p := loopProg(t, 50, 3)
	var ok = true
	consume := func(ev *Event) {
		if int(ev.Len) != encoding.Length(p, int(ev.Idx)) {
			ok = false
		}
	}
	if _, err := Run(p, NewState(mem.New()), 1_000_000, consume); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("event lengths disagree with layout")
	}
}
