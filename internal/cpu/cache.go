package cpu

// CacheCfg describes one cache of the exploration space (Table I).
type CacheCfg struct {
	SizeKB int
	Assoc  int
	Banks  int // >1 only for the shared L2
}

// Standard options from Table I.
var (
	L1Cfg32k = CacheCfg{SizeKB: 32, Assoc: 4}
	L1Cfg64k = CacheCfg{SizeKB: 64, Assoc: 4}
	// Per-CMP shared L2 options; a 4-core CMP gives each core a quarter
	// of the capacity on average, which is what the paper's per-core
	// tables list as 1MB/4 and 2MB/8.
	L2Cfg4M = CacheCfg{SizeKB: 4096, Assoc: 4, Banks: 4}
	L2Cfg8M = CacheCfg{SizeKB: 8192, Assoc: 8, Banks: 4}
)

// PerCoreKB returns the per-core share of a shared cache in a 4-core CMP.
func (c CacheCfg) PerCoreKB() int {
	if c.Banks > 1 {
		return c.SizeKB / 4
	}
	return c.SizeKB
}

const cacheLineBytes = 64

// Cache is a set-associative LRU cache model. Reset invalidates it in O(1)
// by bumping an epoch floor instead of clearing the (megabyte-scale, for the
// L2 options) tag and stamp arrays, which is what makes pooling profiler
// scratch across passes cheap: a line is live only while its use stamp is
// above the floor.
type Cache struct {
	sets  int
	assoc int
	mask  uint64   // sets-1 when sets is a power of two, else 0
	tags  []uint64 // sets*assoc, 0 = invalid (tag stored +1)
	lru   []uint32 // per-line last-use stamp
	stamp uint32
	base  uint32 // epoch floor: entries with lru <= base are stale

	Accesses int64
	Misses   int64
}

// NewCache builds a cache with 64-byte lines.
func NewCache(cfg CacheCfg) *Cache {
	lines := cfg.SizeKB * 1024 / cacheLineBytes
	sets := lines / cfg.Assoc
	if sets < 1 {
		sets = 1
	}
	c := &Cache{
		sets:  sets,
		assoc: cfg.Assoc,
		tags:  make([]uint64, sets*cfg.Assoc),
		lru:   make([]uint32, sets*cfg.Assoc),
	}
	if sets&(sets-1) == 0 {
		c.mask = uint64(sets - 1)
	}
	return c
}

// Reset invalidates every line and zeroes the counters without touching the
// backing arrays. Amortized O(1): only when the 32-bit stamp space is half
// used does it fall back to a full clear.
func (c *Cache) Reset() {
	c.Accesses, c.Misses = 0, 0
	if c.stamp >= 1<<31 {
		clear(c.tags)
		clear(c.lru)
		c.stamp, c.base = 0, 0
		return
	}
	c.base = c.stamp
}

// Access looks up addr, fills on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.stamp++
	line := addr / cacheLineBytes
	var set int
	if c.mask != 0 {
		set = int(line & c.mask)
	} else {
		set = int(line % uint64(c.sets))
	}
	tag := line + 1
	base := set * c.assoc
	epoch := c.base
	// Hit scan first: the common case touches only tags and use stamps.
	// tag >= 1 always, so a tag match implies the slot is not empty.
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == tag && c.lru[i] > epoch {
			c.lru[i] = c.stamp
			return true
		}
	}
	// Miss: pick the victim exactly as the combined scan did — the last
	// invalid way if any, else the first way with the strictly smallest
	// use stamp.
	victim := base
	oldest := c.lru[base]
	if c.tags[base] == 0 || c.lru[base] <= epoch {
		oldest = 0
	}
	for w := 0; w < c.assoc; w++ {
		i := base + w
		valid := c.tags[i] != 0 && c.lru[i] > epoch
		eff := uint32(0)
		if valid {
			eff = c.lru[i]
		}
		if eff < oldest || !valid {
			if !valid {
				victim, oldest = i, 0
			} else {
				victim, oldest = i, eff
			}
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.lru[victim] = c.stamp
	return false
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy is one core's view of the memory system: private L1I/L1D and a
// (possibly shared) L2.
type Hierarchy struct {
	L1I, L1D *Cache
	L2       *Cache

	lastFetchLine uint64 // fetch-stream line filter used by the profiler
}

// NewHierarchy builds a single-core hierarchy.
func NewHierarchy(l1i, l1d, l2 CacheCfg) *Hierarchy {
	return &Hierarchy{L1I: NewCache(l1i), L1D: NewCache(l1d), L2: NewCache(l2)}
}

// Reset invalidates all three levels and the fetch-stream filter, returning
// the hierarchy to its as-constructed state without reallocating.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.lastFetchLine = 0
}

// Latencies of the memory system in cycles.
const (
	LatL1  = 3
	LatL2  = 14
	LatL3  = 0 // no L3 in the design space
	LatMem = 140
)

// DataAccess performs a data access and returns its latency in cycles.
func (h *Hierarchy) DataAccess(addr uint64) int {
	if h.L1D.Access(addr) {
		return LatL1
	}
	if h.L2.Access(addr) {
		return LatL2
	}
	return LatMem
}

// FetchAccess performs an instruction-fetch access and returns its latency.
func (h *Hierarchy) FetchAccess(addr uint64) int {
	if h.L1I.Access(addr) {
		return 0 // pipelined hit
	}
	if h.L2.Access(addr) {
		return LatL2
	}
	return LatMem
}

// UopCache models the decoded micro-op cache (Section V, [106]-[108]): 32
// sets x 8 ways of up to 6 micro-ops per 32-byte fetch window. A hit streams
// micro-ops without activating the ILD and legacy decoders.
type UopCache struct {
	sets, ways, perLine int
	tags                []uint64
	lru                 []uint32
	stamp               uint32
	base                uint32 // epoch floor, as in Cache

	// Last-window memo: instruction streams run sequentially within a
	// 32-byte fetch window, so most accesses repeat the previous window.
	// After a hit or a fill, the window's slot holds the newest stamp, so
	// nothing can evict it before the next access — a repeat is always a
	// hit at the same slot and can skip the scan. lastTag == 0 means no
	// memo (tags are stored +1, so 0 never matches).
	lastTag  uint64
	lastSlot int

	Accesses int64
	Misses   int64
}

// NewUopCache builds the standard 1.5K-uop cache.
func NewUopCache() *UopCache {
	return &UopCache{sets: 32, ways: 8, perLine: 6,
		tags: make([]uint64, 32*8), lru: make([]uint32, 32*8)}
}

// Reset invalidates every window and zeroes the counters in O(1) by bumping
// the epoch floor (see Cache.Reset).
func (u *UopCache) Reset() {
	u.Accesses, u.Misses = 0, 0
	u.lastTag, u.lastSlot = 0, 0
	if u.stamp >= 1<<31 {
		clear(u.tags)
		clear(u.lru)
		u.stamp, u.base = 0, 0
		return
	}
	u.base = u.stamp
}

const uopWindowBytes = 32

// Access looks up the fetch window containing pc, and reports whether
// decoded micro-ops can stream from the cache. nuops is the window's
// micro-op count contribution used to model capacity (windows needing more
// than 6 micro-ops cannot be cached, as on real hardware).
func (u *UopCache) Access(pc uint32, nuops int) bool {
	u.Accesses++
	u.stamp++
	if nuops > u.perLine {
		u.Misses++
		return false
	}
	win := uint64(pc / uopWindowBytes)
	tag := win + 1
	if tag == u.lastTag {
		u.lru[u.lastSlot] = u.stamp
		return true
	}
	set := int(win % uint64(u.sets))
	base := set * u.ways
	epoch := u.base
	// Hit scan first, as in Cache.Access; tag >= 1, so a match implies a
	// live slot.
	for i := base; i < base+u.ways; i++ {
		if u.tags[i] == tag && u.lru[i] > epoch {
			u.lru[i] = u.stamp
			u.lastTag, u.lastSlot = tag, i
			return true
		}
	}
	victim, oldest := base, u.lru[base]
	if u.tags[base] == 0 || u.lru[base] <= epoch {
		oldest = 0
	}
	for w := 0; w < u.ways; w++ {
		i := base + w
		valid := u.tags[i] != 0 && u.lru[i] > epoch
		if !valid {
			victim, oldest = i, 0
		} else if u.lru[i] < oldest {
			victim, oldest = i, u.lru[i]
		}
	}
	u.Misses++
	u.tags[victim] = tag
	u.lru[victim] = u.stamp
	u.lastTag, u.lastSlot = tag, victim
	return false
}

// HitRate returns the fraction of window accesses served from the cache.
func (u *UopCache) HitRate() float64 {
	if u.Accesses == 0 {
		return 0
	}
	return 1 - float64(u.Misses)/float64(u.Accesses)
}
