package cpu

// CacheCfg describes one cache of the exploration space (Table I).
type CacheCfg struct {
	SizeKB int
	Assoc  int
	Banks  int // >1 only for the shared L2
}

// Standard options from Table I.
var (
	L1Cfg32k = CacheCfg{SizeKB: 32, Assoc: 4}
	L1Cfg64k = CacheCfg{SizeKB: 64, Assoc: 4}
	// Per-CMP shared L2 options; a 4-core CMP gives each core a quarter
	// of the capacity on average, which is what the paper's per-core
	// tables list as 1MB/4 and 2MB/8.
	L2Cfg4M = CacheCfg{SizeKB: 4096, Assoc: 4, Banks: 4}
	L2Cfg8M = CacheCfg{SizeKB: 8192, Assoc: 8, Banks: 4}
)

// PerCoreKB returns the per-core share of a shared cache in a 4-core CMP.
func (c CacheCfg) PerCoreKB() int {
	if c.Banks > 1 {
		return c.SizeKB / 4
	}
	return c.SizeKB
}

const cacheLineBytes = 64

// Cache is a set-associative LRU cache model.
type Cache struct {
	sets  int
	assoc int
	tags  []uint64 // sets*assoc, 0 = invalid (tag stored +1)
	lru   []uint32 // per-line last-use stamp
	stamp uint32

	Accesses int64
	Misses   int64
}

// NewCache builds a cache with 64-byte lines.
func NewCache(cfg CacheCfg) *Cache {
	lines := cfg.SizeKB * 1024 / cacheLineBytes
	sets := lines / cfg.Assoc
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		sets:  sets,
		assoc: cfg.Assoc,
		tags:  make([]uint64, sets*cfg.Assoc),
		lru:   make([]uint32, sets*cfg.Assoc),
	}
}

// Access looks up addr, fills on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.stamp++
	line := addr / cacheLineBytes
	set := int(line % uint64(c.sets))
	tag := line + 1
	base := set * c.assoc
	victim := base
	oldest := c.lru[base]
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.lru[i] = c.stamp
			return true
		}
		if c.lru[i] < oldest || c.tags[i] == 0 {
			if c.tags[i] == 0 {
				victim, oldest = i, 0
			} else {
				victim, oldest = i, c.lru[i]
			}
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.lru[victim] = c.stamp
	return false
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy is one core's view of the memory system: private L1I/L1D and a
// (possibly shared) L2.
type Hierarchy struct {
	L1I, L1D *Cache
	L2       *Cache

	lastFetchLine uint64 // fetch-stream line filter used by the profiler
}

// NewHierarchy builds a single-core hierarchy.
func NewHierarchy(l1i, l1d, l2 CacheCfg) *Hierarchy {
	return &Hierarchy{L1I: NewCache(l1i), L1D: NewCache(l1d), L2: NewCache(l2)}
}

// Latencies of the memory system in cycles.
const (
	LatL1  = 3
	LatL2  = 14
	LatL3  = 0 // no L3 in the design space
	LatMem = 140
)

// DataAccess performs a data access and returns its latency in cycles.
func (h *Hierarchy) DataAccess(addr uint64) int {
	if h.L1D.Access(addr) {
		return LatL1
	}
	if h.L2.Access(addr) {
		return LatL2
	}
	return LatMem
}

// FetchAccess performs an instruction-fetch access and returns its latency.
func (h *Hierarchy) FetchAccess(addr uint64) int {
	if h.L1I.Access(addr) {
		return 0 // pipelined hit
	}
	if h.L2.Access(addr) {
		return LatL2
	}
	return LatMem
}

// UopCache models the decoded micro-op cache (Section V, [106]-[108]): 32
// sets x 8 ways of up to 6 micro-ops per 32-byte fetch window. A hit streams
// micro-ops without activating the ILD and legacy decoders.
type UopCache struct {
	sets, ways, perLine int
	tags                []uint64
	lru                 []uint32
	stamp               uint32

	Accesses int64
	Misses   int64
}

// NewUopCache builds the standard 1.5K-uop cache.
func NewUopCache() *UopCache {
	return &UopCache{sets: 32, ways: 8, perLine: 6,
		tags: make([]uint64, 32*8), lru: make([]uint32, 32*8)}
}

const uopWindowBytes = 32

// Access looks up the fetch window containing pc, and reports whether
// decoded micro-ops can stream from the cache. nuops is the window's
// micro-op count contribution used to model capacity (windows needing more
// than 6 micro-ops cannot be cached, as on real hardware).
func (u *UopCache) Access(pc uint32, nuops int) bool {
	u.Accesses++
	u.stamp++
	if nuops > u.perLine {
		u.Misses++
		return false
	}
	win := uint64(pc / uopWindowBytes)
	set := int(win % uint64(u.sets))
	tag := win + 1
	base := set * u.ways
	victim, oldest := base, u.lru[base]
	for w := 0; w < u.ways; w++ {
		i := base + w
		if u.tags[i] == tag {
			u.lru[i] = u.stamp
			return true
		}
		if u.tags[i] == 0 {
			victim, oldest = i, 0
		} else if u.lru[i] < oldest {
			victim, oldest = i, u.lru[i]
		}
	}
	u.Misses++
	u.tags[victim] = tag
	u.lru[victim] = u.stamp
	return false
}

// HitRate returns the fraction of window accesses served from the cache.
func (u *UopCache) HitRate() float64 {
	if u.Accesses == 0 {
		return 0
	}
	return 1 - float64(u.Misses)/float64(u.Accesses)
}
