package cpu

import (
	"compisa/internal/code"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// legacyProfiler is the pre-refactor map-and-slice profiler, kept verbatim
// (modulo the Profile struct-of-arrays change in Finish) as the differential
// oracle for the pooled flat-table profiler in profile.go. It allocates
// fresh hierarchies, predictors, and per-granule map entries every run.
type legacyProfiler struct {
	p    *code.Program
	prof *Profile

	preds   [3]Predictor
	hier    [2][2][2]*Hierarchy
	uc      *UopCache
	missPos [2][2][2]int64 // last data-miss uop position per hierarchy
	missGrp [2][2][2]int64 // miss groups per hierarchy

	// ILP tracking.
	regReady   [numDeps][]int64   // per window (+ in-order at index len-1)
	ring       [][]int64          // completion ring per window
	memDep     map[uint64][]int64 // store completion per granule, per window
	inorderT   int64
	seq        int64
	totalLen   int64
	mispredict [3]int64
	prevCmp    bool
	prevIdx    int32

	// Real-latency chain (reference hierarchy, 128-uop window) for the
	// dependence-aware memory-overlap measurement.
	regReadyReal [numDeps]int64
	ringReal     []int64
	memDepReal   map[uint64]int64
	lastLat      int64 // data-access latency on the reference hierarchy
}

// newLegacyProfiler builds the oracle profiling consumer for one program.
func newLegacyProfiler(p *code.Program) *legacyProfiler {
	pr := &legacyProfiler{p: p, prof: &Profile{
		Name:          p.Name,
		X86Complexity: p.FS.Complexity == isa.FullX86,
		Stats:         p.Stats,
		StaticInstrs:  len(p.Instrs),
		CodeBytes:     p.Size,
	}}
	for k := 0; k < 3; k++ {
		pr.preds[k] = NewPredictor(PredictorKind(k))
	}
	for i := 0; i < 2; i++ {
		for d := 0; d < 2; d++ {
			for l := 0; l < 2; l++ {
				pr.hier[i][d][l] = NewHierarchy(L1IOptions[i], L1DOptions[d], L2Options[l])
				pr.missPos[i][d][l] = -1 << 40
			}
		}
	}
	pr.uc = NewUopCache()
	nw := NumILPWindows
	for r := range pr.regReady {
		pr.regReady[r] = make([]int64, nw+1)
	}
	pr.ring = make([][]int64, nw)
	for wi, w := range ILPWindows {
		pr.ring[wi] = make([]int64, w)
	}
	pr.memDep = make(map[uint64][]int64)
	pr.ringReal = make([]int64, 128)
	pr.memDepReal = make(map[uint64]int64)
	return pr
}

// Consume feeds one executed instruction.
func (pr *legacyProfiler) Consume(ev *Event) {
	in := &pr.p.Instrs[ev.Idx]
	prof := pr.prof
	prof.Instrs++
	prof.Uops += int64(ev.Uops)
	pr.totalLen += int64(ev.Len)
	if ev.IsLoad {
		prof.Loads++
	}
	if ev.IsStore {
		prof.Stores++
	}
	if in.MemSrcALU() {
		prof.MemALUOps++
	}

	// Caches: fetch side per line transition, data side per access.
	fetchLine := uint64(ev.PC) / cacheLineBytes
	for i := 0; i < 2; i++ {
		for d := 0; d < 2; d++ {
			for l := 0; l < 2; l++ {
				h := pr.hier[i][d][l]
				if fetchLine != h.lastFetchLine {
					h.lastFetchLine = fetchLine
					if !h.L1I.Access(uint64(ev.PC)) {
						pr.prof.Mem[i][d][l].L1IMisses++
						h.L2.Access(uint64(ev.PC))
					}
				}
				if (ev.IsLoad || ev.IsStore) && !ev.PredOff {
					if h.L1D.Access(ev.MemAddr) {
						if i == 0 && d == 0 && l == 0 {
							pr.lastLat = LatL1
						}
					} else {
						mp := &pr.prof.Mem[i][d][l]
						mp.L1DMisses++
						if h.L2.Access(ev.MemAddr) {
							if i == 0 && d == 0 && l == 0 {
								pr.lastLat = LatL2
							}
						} else {
							mp.L2Misses++
							if i == 0 && d == 0 && l == 0 {
								pr.lastLat = LatMem
							}
						}
						// Miss clustering for MLP.
						if prof.Uops-pr.missPos[i][d][l] > 64 {
							pr.missGrp[i][d][l]++
						}
						pr.missPos[i][d][l] = prof.Uops
					}
				}
			}
		}
	}

	// Micro-op cache (hit/miss accounting lives in the cache itself).
	pr.uc.Access(ev.PC, int(ev.Uops))

	// Branch predictors (and macro-fusion pairing).
	if in.Op == code.JCC {
		if pr.prevCmp && ev.Idx == pr.prevIdx+1 {
			prof.FusedBranches++
		}
		prof.Branches++
		if ev.Taken {
			prof.Taken++
		}
		for k := 0; k < 3; k++ {
			if pr.preds[k].Predict(ev.PC) != ev.Taken {
				pr.mispredict[k]++
			}
			pr.preds[k].Update(ev.PC, ev.Taken)
		}
	}

	pr.prevCmp = in.Op == code.CMP || in.Op == code.TEST
	pr.prevIdx = ev.Idx

	// Dependence-limited ILP at each window size.
	var buf [3]uopSpec
	uops := expand(in, ev, buf[:0])
	nw := NumILPWindows
	for ui := range uops {
		u := &uops[ui]
		prof.UopsByClass[u.class]++
		if ev.PredOff {
			prof.PredOffUops++
		}
		lat := int64(latOf(u.class))
		if u.isLoad {
			lat = LatL1
		}
		// Memory dependences (store-to-load, e.g. spill traffic).
		memTracked := (u.isLoad || u.isStore) && !ev.PredOff
		if memTracked {
			forEachGranule(u.addr, u.msz, func(g uint64) {
				if pr.memDep[g] == nil {
					pr.memDep[g] = make([]int64, nw+1)
				}
			})
		}
		for wi := 0; wi < nw; wi++ {
			t := int64(0)
			for i := 0; i < u.nsrcs; i++ {
				if r := pr.regReady[u.srcs[i]][wi]; r > t {
					t = r
				}
			}
			if memTracked && u.isLoad {
				forEachGranule(u.addr, u.msz, func(g uint64) {
					if r := pr.memDep[g][wi]; r > t {
						t = r
					}
				})
			}
			// Window constraint: the uop W back must have completed.
			if old := pr.ring[wi][pr.seq%int64(len(pr.ring[wi]))]; old > t {
				t = old
			}
			comp := t + lat
			pr.ring[wi][pr.seq%int64(len(pr.ring[wi]))] = comp
			if u.dst >= 0 {
				pr.regReady[u.dst][wi] = comp
			}
			if u.dstFlag {
				pr.regReady[depFlags][wi] = comp
			}
			if memTracked && u.isStore {
				forEachGranule(u.addr, u.msz, func(g uint64) {
					pr.memDep[g][wi] = comp
				})
			}
		}
		// Strict in-order issue (scoreboard): ready ∩ program order.
		t := pr.inorderT
		for i := 0; i < u.nsrcs; i++ {
			if r := pr.regReady[u.srcs[i]][nw]; r > t {
				t = r
			}
		}
		if memTracked && u.isLoad {
			forEachGranule(u.addr, u.msz, func(g uint64) {
				if r := pr.memDep[g][nw]; r > t {
					t = r
				}
			})
		}
		comp := t + lat
		pr.inorderT = t // next uop may issue same cycle (width modeled later)
		if u.dst >= 0 {
			pr.regReady[u.dst][nw] = comp
		}
		if u.dstFlag {
			pr.regReady[depFlags][nw] = comp
		}
		if memTracked && u.isStore {
			forEachGranule(u.addr, u.msz, func(g uint64) {
				pr.memDep[g][nw] = comp
			})
		}
		// Real-latency chain at a 128-uop window on the reference
		// hierarchy, for the dependence-aware memory-overlap measure.
		{
			rlat := lat
			if u.isLoad && !ev.PredOff {
				rlat = pr.lastLat
			}
			t := int64(0)
			for i := 0; i < u.nsrcs; i++ {
				if r := pr.regReadyReal[u.srcs[i]]; r > t {
					t = r
				}
			}
			if memTracked && u.isLoad {
				forEachGranule(u.addr, u.msz, func(g uint64) {
					if r := pr.memDepReal[g]; r > t {
						t = r
					}
				})
			}
			if old := pr.ringReal[pr.seq%int64(len(pr.ringReal))]; old > t {
				t = old
			}
			rcomp := t + rlat
			pr.ringReal[pr.seq%int64(len(pr.ringReal))] = rcomp
			if u.dst >= 0 {
				pr.regReadyReal[u.dst] = rcomp
			}
			if u.dstFlag {
				pr.regReadyReal[depFlags] = rcomp
			}
			if memTracked && u.isStore {
				forEachGranule(u.addr, u.msz, func(g uint64) {
					pr.memDepReal[g] = rcomp
				})
			}
		}
		pr.seq++
	}
}

// Finish finalizes the profile.
func (pr *legacyProfiler) Finish() *Profile {
	prof := pr.prof
	if prof.Instrs > 0 {
		prof.AvgInstrLen = float64(pr.totalLen) / float64(prof.Instrs)
	}
	for k := 0; k < 3; k++ {
		rate := 0.0
		if prof.Branches > 0 {
			rate = float64(pr.mispredict[k]) / float64(prof.Branches)
		}
		prof.MispredictRate[k] = rate
	}
	for wi := range ILPWindows {
		// Completion horizon = max entry in the ring.
		maxT := int64(1)
		for _, t := range pr.ring[wi] {
			if t > maxT {
				maxT = t
			}
		}
		prof.IPCWindow[wi] = float64(prof.Uops) / float64(maxT)
	}
	// In-order horizon: max regReady at the in-order index.
	maxT := pr.inorderT + 1
	for r := range pr.regReady {
		if t := pr.regReady[r][NumILPWindows]; t > maxT {
			maxT = t
		}
	}
	prof.IPCInOrder = float64(prof.Uops) / float64(maxT)
	if pr.uc.Accesses > 0 {
		prof.UopCacheHitRate = pr.uc.HitRate()
	}
	// Memory-overlap measurement: real-latency horizon minus the fixed-L1
	// horizon of the same (128-uop) window.
	realMax := int64(1)
	for _, t := range pr.ringReal {
		if t > realMax {
			realMax = t
		}
	}
	l1Horizon := float64(prof.Uops) / prof.IPCWindow[ilpRefWindow]
	exposed := float64(realMax) - l1Horizon
	if exposed < 0 {
		exposed = 0
	}
	prof.MemExposedCycles = exposed
	ref := prof.Mem[0][0][0]
	prof.NaiveStallRef = float64(ref.L1DMisses-ref.L2Misses)*float64(LatL2-LatL1) +
		float64(ref.L2Misses)*float64(LatMem-LatL1)
	for i := 0; i < 2; i++ {
		for d := 0; d < 2; d++ {
			for l := 0; l < 2; l++ {
				mp := &prof.Mem[i][d][l]
				if pr.missGrp[i][d][l] > 0 {
					mp.DataMLP = float64(mp.L1DMisses) / float64(pr.missGrp[i][d][l])
					if mp.DataMLP < 1 {
						mp.DataMLP = 1
					}
				} else {
					mp.DataMLP = 1
				}
			}
		}
	}
	return prof
}

// collectProfileLegacy runs the switch-dispatch executor over the oracle
// profiler — the frozen pre-refactor path differential tests compare
// against.
func collectProfileLegacy(p *code.Program, m *mem.Memory, opts RunOptions) (*Profile, ExecResult, error) {
	pr := newLegacyProfiler(p)
	st := NewState(m)
	res, err := runLegacy(p, st, opts, pr.Consume)
	if err != nil {
		return nil, res, err
	}
	return pr.Finish(), res, nil
}
