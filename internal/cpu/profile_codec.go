package cpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary profile encoding: a compact, deterministic, little-endian layout
// (no maps, no reflection) so identical profiles encode to identical bytes
// on any host — the property sharded exploration needs to content-address
// and exchange profiles. The field order is fixed; bump profileCodecVersion
// on any Profile shape change (TestProfileCodecFieldCount pins the count).
const (
	profileCodecMagic   = "cpf1"
	profileCodecVersion = 2
)

// ErrProfileCodec reports an undecodable profile blob.
var ErrProfileCodec = errors.New("cpu: bad profile encoding")

type profEnc struct{ b []byte }

func (e *profEnc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *profEnc) i64(v int64)   { e.u64(uint64(v)) }
func (e *profEnc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *profEnc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *profEnc) str(s string) {
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(len(s)))
	e.b = append(e.b, s...)
}

type profDec struct {
	b   []byte
	off int
	err error
}

func (d *profDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.err = fmt.Errorf("%w: truncated at %d", ErrProfileCodec, d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *profDec) i64() int64   { return int64(d.u64()) }
func (d *profDec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *profDec) boolean() bool {
	if d.err != nil {
		return false
	}
	if d.off+1 > len(d.b) {
		d.err = fmt.Errorf("%w: truncated at %d", ErrProfileCodec, d.off)
		return false
	}
	v := d.b[d.off] != 0
	d.off++
	return v
}
func (d *profDec) str() string {
	if d.err != nil {
		return ""
	}
	if d.off+4 > len(d.b) {
		d.err = fmt.Errorf("%w: truncated at %d", ErrProfileCodec, d.off)
		return ""
	}
	n := int(binary.LittleEndian.Uint32(d.b[d.off:]))
	d.off += 4
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("%w: truncated string at %d", ErrProfileCodec, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// MarshalBinary encodes the profile deterministically.
func (p *Profile) MarshalBinary() ([]byte, error) {
	e := &profEnc{b: make([]byte, 0, 512+len(p.Name))}
	e.b = append(e.b, profileCodecMagic...)
	e.b = append(e.b, profileCodecVersion)
	e.str(p.Name)
	e.i64(p.Instrs)
	e.i64(p.Uops)
	e.i64(p.Loads)
	e.i64(p.Stores)
	e.i64(p.Branches)
	e.i64(p.Taken)
	e.i64(p.PredOffUops)
	e.i64(p.MemALUOps)
	for _, v := range p.UopsByClass {
		e.i64(v)
	}
	e.i64(int64(p.StaticInstrs))
	e.i64(int64(p.CodeBytes))
	e.f64(p.AvgInstrLen)
	e.i64(p.FusedBranches)
	e.boolean(p.X86Complexity)
	for _, v := range p.IPCWindow {
		e.f64(v)
	}
	e.f64(p.IPCInOrder)
	for _, v := range p.MispredictRate {
		e.f64(v)
	}
	for i := 0; i < 2; i++ {
		for d := 0; d < 2; d++ {
			for l := 0; l < 2; l++ {
				mp := &p.Mem[i][d][l]
				e.i64(mp.L1IMisses)
				e.i64(mp.L1DMisses)
				e.i64(mp.L2Misses)
				e.f64(mp.DataMLP)
			}
		}
	}
	e.f64(p.UopCacheHitRate)
	e.f64(p.MemExposedCycles)
	e.f64(p.NaiveStallRef)
	e.i64(int64(p.Stats.SpillStores))
	e.i64(int64(p.Stats.RefillLoads))
	e.i64(int64(p.Stats.ElidedReloads))
	e.i64(int64(p.Stats.Remats))
	e.i64(int64(p.Stats.IfConversions))
	e.i64(int64(p.Stats.VectorLoops))
	e.i64(int64(p.Stats.ScalarLoops))
	e.i64(int64(p.Stats.FoldedLoads))
	e.i64(int64(p.Stats.StaticInstrs))
	e.i64(int64(p.Stats.CodeBytes))
	return e.b, nil
}

// UnmarshalBinary decodes a blob produced by MarshalBinary, verifying full
// consumption.
func (p *Profile) UnmarshalBinary(b []byte) error {
	if len(b) < len(profileCodecMagic)+1 || string(b[:4]) != profileCodecMagic {
		return fmt.Errorf("%w: bad magic", ErrProfileCodec)
	}
	if b[4] != profileCodecVersion {
		return fmt.Errorf("%w: version %d", ErrProfileCodec, b[4])
	}
	d := &profDec{b: b, off: 5}
	p.Name = d.str()
	p.Instrs = d.i64()
	p.Uops = d.i64()
	p.Loads = d.i64()
	p.Stores = d.i64()
	p.Branches = d.i64()
	p.Taken = d.i64()
	p.PredOffUops = d.i64()
	p.MemALUOps = d.i64()
	for i := range p.UopsByClass {
		p.UopsByClass[i] = d.i64()
	}
	p.StaticInstrs = int(d.i64())
	p.CodeBytes = int(d.i64())
	p.AvgInstrLen = d.f64()
	p.FusedBranches = d.i64()
	p.X86Complexity = d.boolean()
	for i := range p.IPCWindow {
		p.IPCWindow[i] = d.f64()
	}
	p.IPCInOrder = d.f64()
	for i := range p.MispredictRate {
		p.MispredictRate[i] = d.f64()
	}
	for i := 0; i < 2; i++ {
		for dd := 0; dd < 2; dd++ {
			for l := 0; l < 2; l++ {
				mp := &p.Mem[i][dd][l]
				mp.L1IMisses = d.i64()
				mp.L1DMisses = d.i64()
				mp.L2Misses = d.i64()
				mp.DataMLP = d.f64()
			}
		}
	}
	p.UopCacheHitRate = d.f64()
	p.MemExposedCycles = d.f64()
	p.NaiveStallRef = d.f64()
	p.Stats.SpillStores = int(d.i64())
	p.Stats.RefillLoads = int(d.i64())
	p.Stats.ElidedReloads = int(d.i64())
	p.Stats.Remats = int(d.i64())
	p.Stats.IfConversions = int(d.i64())
	p.Stats.VectorLoops = int(d.i64())
	p.Stats.ScalarLoops = int(d.i64())
	p.Stats.FoldedLoads = int(d.i64())
	p.Stats.StaticInstrs = int(d.i64())
	p.Stats.CodeBytes = int(d.i64())
	if d.err != nil {
		return d.err
	}
	if d.off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProfileCodec, len(b)-d.off)
	}
	return nil
}
