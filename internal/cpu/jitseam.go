package cpu

import (
	"fmt"
	"math"

	"compisa/internal/code"
)

// JITRunner is the seam through which a native-code executor (internal/jit)
// plugs into the run loop. RunJIT either executes the whole program —
// returning (result, true, err) with semantics bit-identical to the
// interpreter, including the event stream and error wrapping — or declines
// with ok=false having left st and the memory image untouched, in which case
// the interpreter runs as usual (a "bailout": cold program below the hotness
// threshold, unsupported platform, stale code cache entry, ...).
type JITRunner interface {
	RunJIT(pd *Predecoded, st *State, opts RunOptions, consume func(*Event)) (res ExecResult, ok bool, err error)
}

// StepOne executes exactly one instruction at idx against the interpreter,
// filling ev exactly as the run loop would (predication gate included) and
// returning the next instruction index. It is the deoptimization primitive:
// when native code hits a guard (unsupported opcode, memory-window
// violation) the JIT driver retires that one instruction here and resumes
// natively at next.
//
// done reports a RET: ret carries the region checksum, ev.Taken is set and
// ev.MemAddr/MemSz are cleared, mirroring the run loop. StepOne performs no
// budget, interrupt, or PC-range checks — those belong to the caller's loop,
// which must also account res.Instrs/res.Uops for the instruction even when
// err != nil (the run loop counts before dispatching).
func StepOne(pd *Predecoded, st *State, idx int, ev *Event) (next int, done bool, ret uint64, err error) {
	p := pd.P
	var addrMask uint64 = math.MaxUint64
	if p.FS.Width == 32 {
		addrMask = math.MaxUint32
	}
	in := &p.Instrs[idx]
	*ev = Event{Idx: int32(idx), PC: p.PC[idx], Len: pd.len[idx], Uops: pd.nuops[idx]}

	active := true
	if in.Pred != code.NoReg {
		pv := uint32(st.Int[in.Pred]) != 0
		active = pv == in.PredSense
		if !active {
			ev.PredOff = true
		}
	}
	next = idx + 1
	if active {
		fn := pd.step[idx]
		if fn == nil {
			return 0, false, 0, fmt.Errorf("cpu: op %d: %w", uint8(in.Op), ErrUnimplementedOp)
		}
		next, err = fn(st, in, ev, addrMask, idx)
		if err != nil {
			return 0, false, 0, err
		}
		if in.Op == code.RET {
			ret = ev.MemAddr // stashed return value
			ev.MemAddr, ev.MemSz = 0, 0
			ev.Taken = true
			return idx, true, ret, nil
		}
	}
	return next, false, 0, nil
}

// InstrLen returns the predecoded encoding length of instruction i.
func (pd *Predecoded) InstrLen(i int) uint8 { return pd.len[i] }

// UopCount returns the predecoded micro-op count of instruction i.
func (pd *Predecoded) UopCount(i int) uint8 { return pd.nuops[i] }

// Interpretable reports whether instruction i has an interpreter step
// handler; executing an instruction without one fails with
// ErrUnimplementedOp on both paths.
func (pd *Predecoded) Interpretable(i int) bool { return pd.step[i] != nil }

// CondFlags returns the architectural condition flags (ZF, SF, OF, CF).
// Exported for the JIT driver, which materializes flags outside State while
// native code runs.
func (st *State) CondFlags() (zf, sf, of, cf bool) {
	f := st.Flags
	return f.zf, f.sf, f.of, f.cf
}

// SetCondFlags replaces the architectural condition flags.
func (st *State) SetCondFlags(zf, sf, of, cf bool) {
	st.Flags = flags{zf: zf, sf: sf, of: of, cf: cf}
}