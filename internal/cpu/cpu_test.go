package cpu

import (
	"testing"

	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// hand-assembled helpers -----------------------------------------------------

func ci(op code.Op, sz uint8) code.Instr {
	return code.Instr{Op: op, Sz: sz, Dst: code.NoReg, Src1: code.NoReg,
		Src2: code.NoReg, Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
}

func movImm(dst code.Reg, v int64, sz uint8) code.Instr {
	in := ci(code.MOV, sz)
	in.Dst = dst
	in.HasImm, in.Imm = true, v
	return in
}

func alu(op code.Op, dst, src2 code.Reg, sz uint8) code.Instr {
	in := ci(op, sz)
	in.Dst, in.Src1, in.Src2 = dst, dst, src2
	return in
}

func mkProg(t *testing.T, fs isa.FeatureSet, instrs ...code.Instr) *code.Program {
	t.Helper()
	p := &code.Program{Name: "hand", FS: fs, Instrs: instrs}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := encoding.Layout(p, code.CodeBase); err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, p *code.Program) (ExecResult, *State) {
	t.Helper()
	st := NewState(mem.New())
	res, err := Run(p, st, 1_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

func retR(r code.Reg) code.Instr {
	in := ci(code.RET, 0)
	in.Src1 = r
	return in
}

// executor semantics ----------------------------------------------------------

func TestExecArith(t *testing.T) {
	p := mkProg(t, isa.X8664,
		movImm(0, 10, 8),
		movImm(1, 3, 8),
		alu(code.SUB, 0, 1, 8),  // 7
		alu(code.IMUL, 0, 1, 8), // 21
		retR(0),
	)
	res, _ := run(t, p)
	if res.Ret != 21 {
		t.Errorf("got %d want 21", res.Ret)
	}
}

func TestExec32BitZeroExtends(t *testing.T) {
	p := mkProg(t, isa.X8664,
		movImm(0, -1, 8), // all ones
		movImm(1, 1, 4),  // 32-bit write must clear upper half
		alu(code.ADD, 1, 1, 4),
		retR(1),
	)
	res, _ := run(t, p)
	if res.Ret != 2 {
		t.Errorf("32-bit ops must zero-extend: got %#x", res.Ret)
	}
}

func TestExecAdcCarryChain(t *testing.T) {
	// 0xffffffff + 1 at 32 bits sets CF; ADC propagates into the high word.
	p := mkProg(t, isa.MustNew(isa.FullX86, 32, 16, isa.PartialPredication),
		movImm(0, -1, 4), // lo a
		movImm(1, 0, 4),  // hi a
		movImm(2, 1, 4),  // lo b
		movImm(3, 0, 4),  // hi b
		alu(code.ADD, 0, 2, 4),
		alu(code.ADC, 1, 3, 4),
		retR(1),
	)
	res, _ := run(t, p)
	if res.Ret != 1 {
		t.Errorf("carry not propagated: hi=%d", res.Ret)
	}
}

func TestExecSbbCompareTrick(t *testing.T) {
	// 64-bit signed compare via CMP lo / SBB hi: (-1 as i64) < 1?
	cmp := ci(code.CMP, 4)
	cmp.Src1, cmp.Src2 = 0, 2
	sbb := alu(code.SBB, 1, 3, 4)
	set := ci(code.SETCC, 4)
	set.Dst, set.CC = 4, code.CCLT
	p := mkProg(t, isa.MustNew(isa.FullX86, 32, 16, isa.PartialPredication),
		movImm(0, -1, 4), // a = 0xffffffff_ffffffff = -1
		movImm(1, -1, 4),
		movImm(2, 1, 4), // b = 1
		movImm(3, 0, 4),
		cmp, sbb, set,
		retR(4),
	)
	res, _ := run(t, p)
	if res.Ret != 1 {
		t.Error("-1 < 1 must hold via CMP/SBB trick")
	}
}

func TestExecPredication(t *testing.T) {
	fs := isa.Superset
	addT := alu(code.ADD, 0, 1, 8)
	addT.Pred, addT.PredSense = 2, true
	addF := alu(code.ADD, 0, 1, 8)
	addF.Pred, addF.PredSense = 2, false
	p := mkProg(t, fs,
		movImm(0, 100, 8),
		movImm(1, 11, 8),
		movImm(2, 1, 8), // predicate true
		addT,            // executes: 111
		addF,            // predicated off
		retR(0),
	)
	res, _ := run(t, p)
	if res.Ret != 111 {
		t.Errorf("predication wrong: got %d want 111", res.Ret)
	}
	if res.PredOff != 1 {
		t.Errorf("expected 1 predicated-off instr, got %d", res.PredOff)
	}
}

func TestExecPredicatedStoreSuppressed(t *testing.T) {
	fs := isa.Superset
	st := ci(code.ST, 8)
	st.Src1 = 0
	st.HasMem = true
	st.Mem = code.Mem{Base: 1, Index: code.NoReg, Scale: 1}
	st.Pred, st.PredSense = 2, true // predicate is 0 -> suppressed
	ld := ci(code.LD, 8)
	ld.Dst = 3
	ld.HasMem = true
	ld.Mem = code.Mem{Base: 1, Index: code.NoReg, Scale: 1}
	p := mkProg(t, fs,
		movImm(0, 42, 8),
		movImm(1, int64(code.DataBase), 8),
		movImm(2, 0, 8),
		st,
		ld,
		retR(3),
	)
	res, _ := run(t, p)
	if res.Ret != 0 {
		t.Errorf("suppressed store leaked: %d", res.Ret)
	}
}

func TestExecMemOperandALU(t *testing.T) {
	add := ci(code.ADD, 4)
	add.Dst, add.Src1 = 0, 0
	add.HasMem = true
	add.Mem = code.Mem{Base: 1, Index: code.NoReg, Scale: 1, Disp: 4}
	p := mkProg(t, isa.X8664,
		movImm(0, 5, 4),
		movImm(1, int64(code.DataBase), 8),
		add,
		retR(0),
	)
	st := NewState(mem.New())
	st.Mem.Write(uint64(code.DataBase)+4, 4, 37)
	res, err := Run(p, st, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Errorf("mem-operand add: got %d", res.Ret)
	}
	if res.Loads != 1 {
		t.Errorf("mem-operand ALU must count as a load, got %d", res.Loads)
	}
}

// predictors ------------------------------------------------------------------

func TestPredictorsLearnLoopBranch(t *testing.T) {
	for _, k := range []PredictorKind{PredLocal, PredGShare, PredTournament} {
		p := NewPredictor(k)
		pc := uint32(0x1000)
		correct := 0
		for i := 0; i < 1000; i++ {
			taken := i%10 != 9 // 9 taken, 1 not, repeating
			if p.Predict(pc) == taken {
				correct++
			}
			p.Update(pc, taken)
		}
		if correct < 850 {
			t.Errorf("%v: only %d/1000 correct on a loop branch", k, correct)
		}
	}
}

func TestLocalBeatsGshareOnShortPeriodicPattern(t *testing.T) {
	// A per-branch periodic pattern is exactly what local history captures.
	score := func(k PredictorKind) int {
		p := NewPredictor(k)
		correct := 0
		pat := []bool{true, true, false, true, false, false}
		// Interfering second branch to pollute global history.
		for i := 0; i < 3000; i++ {
			taken := pat[i%len(pat)]
			if p.Predict(0x4000) == taken {
				correct++
			}
			p.Update(0x4000, taken)
			p.Update(0x8000+uint32(i%64)*4, i%3 == 0)
		}
		return correct
	}
	l := score(PredLocal)
	if l < 2500 {
		t.Errorf("local predictor should learn the period-6 pattern, got %d/3000", l)
	}
}

func TestTournamentAtLeastAsGoodAsComponents(t *testing.T) {
	run := func(k PredictorKind, seed uint32) int {
		p := NewPredictor(k)
		s := seed
		correct := 0
		for i := 0; i < 4000; i++ {
			s = s*1664525 + 1013904223
			pc := 0x100 + (s%16)*8
			taken := (s>>16)%4 != 0 // biased taken
			if p.Predict(uint32(pc)) == taken {
				correct++
			}
			p.Update(uint32(pc), taken)
		}
		return correct
	}
	tr := run(PredTournament, 5)
	lo := run(PredLocal, 5)
	gs := run(PredGShare, 5)
	min := lo
	if gs < min {
		min = gs
	}
	if tr < min-200 {
		t.Errorf("tournament %d far below components (local %d, gshare %d)", tr, lo, gs)
	}
}

// caches ----------------------------------------------------------------------

func TestCacheBasics(t *testing.T) {
	c := NewCache(CacheCfg{SizeKB: 1, Assoc: 2}) // 16 lines, 8 sets
	if c.Access(0) {
		t.Error("cold miss expected")
	}
	if !c.Access(0) {
		t.Error("hit expected")
	}
	if !c.Access(32) {
		t.Error("same line (offset 32) must hit")
	}
	if c.Access(64) {
		t.Error("different line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(CacheCfg{SizeKB: 1, Assoc: 2}) // 8 sets
	// Three lines mapping to set 0: line numbers 0, 8, 16.
	a, b, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a more recent than b
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Error("a should survive")
	}
	if c.Access(b) {
		t.Error("b should have been evicted (LRU)")
	}
}

func TestCacheCapacity(t *testing.T) {
	small := NewCache(L1Cfg32k)
	big := NewCache(L1Cfg64k)
	// Touch a 48KB working set twice; the 64KB cache holds it, 32KB not.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 48*1024; a += 64 {
			small.Access(a)
			big.Access(a)
		}
	}
	if small.MissRate() <= big.MissRate() {
		t.Errorf("32KB cache must miss more on 48KB set: %.3f vs %.3f",
			small.MissRate(), big.MissRate())
	}
	if big.Misses != 48*1024/64 {
		t.Errorf("64KB cache should only cold-miss: %d", big.Misses)
	}
}

func TestUopCache(t *testing.T) {
	u := NewUopCache()
	if u.Access(0x100, 2) {
		t.Error("cold miss expected")
	}
	if !u.Access(0x110, 2) {
		t.Error("same 32B window must hit")
	}
	if u.Access(0x100, 7) {
		t.Error("window needing >6 uops cannot be cached")
	}
	// A tight loop should reach a high hit rate.
	u2 := NewUopCache()
	for i := 0; i < 1000; i++ {
		u2.Access(uint32(0x2000+(i%8)*32), 4)
	}
	if u2.HitRate() < 0.98 {
		t.Errorf("loop hit rate %.3f", u2.HitRate())
	}
}

// timing ----------------------------------------------------------------------

// loopProg builds a small register-only counted loop.
func loopProg(t *testing.T, n int64, extraALU int) *code.Program {
	instrs := []code.Instr{
		movImm(0, 0, 8),
		movImm(1, n, 8),
	}
	body := len(instrs)
	for i := 0; i < extraALU; i++ {
		instrs = append(instrs, alu(code.ADD, code.Reg(2+i%4), 0, 8))
	}
	add1 := ci(code.ADD, 8)
	add1.Dst, add1.Src1 = 0, 0
	add1.HasImm, add1.Imm = true, 1
	instrs = append(instrs, add1)
	cmp := ci(code.CMP, 8)
	cmp.Src1, cmp.Src2 = 0, 1
	instrs = append(instrs, cmp)
	jcc := ci(code.JCC, 0)
	jcc.CC = code.CCLT
	jcc.Target = int32(body)
	instrs = append(instrs, jcc)
	instrs = append(instrs, retR(0))
	return mkProg(t, isa.X8664, instrs...)
}

func baseCfg() CoreConfig {
	return CoreConfig{
		OoO: true, Width: 4, Predictor: PredTournament,
		IQ: 64, ROB: 128, PRFInt: 192, PRFFP: 160,
		IntALU: 6, IntMul: 2, FPALU: 2, LSQ: 32,
		L1I: L1Cfg32k, L1D: L1Cfg32k, L2: L2Cfg4M,
		UopCache: true, Fusion: true,
	}
}

func timed(t *testing.T, p *code.Program, cfg CoreConfig) TimingResult {
	t.Helper()
	st := NewState(mem.New())
	_, tr, err := RunTimed(p, st, cfg, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTimingWiderIsFaster(t *testing.T) {
	p := loopProg(t, 2000, 6)
	w4 := baseCfg()
	w1 := baseCfg()
	w1.Width = 1
	w1.IntALU = 1
	c4 := timed(t, p, w4).Cycles
	c1 := timed(t, p, w1).Cycles
	if c4 >= c1 {
		t.Errorf("4-wide (%d cyc) must beat 1-wide (%d cyc)", c4, c1)
	}
}

func TestTimingOoOBeatsInOrderOnILP(t *testing.T) {
	p := loopProg(t, 2000, 6)
	ooo := baseCfg()
	io := baseCfg()
	io.OoO = false
	io.Width = 2
	io.IntALU = 3
	co := timed(t, p, ooo).Cycles
	cio := timed(t, p, io).Cycles
	if co >= cio {
		t.Errorf("OoO (%d) must beat in-order (%d) on this loop", co, cio)
	}
}

func TestTimingPredictableLoopLowMPKI(t *testing.T) {
	p := loopProg(t, 4000, 2)
	tr := timed(t, p, baseCfg())
	if tr.MPKI() > 2 {
		t.Errorf("predictable loop MPKI %.2f too high", tr.MPKI())
	}
	if tr.Branches == 0 || tr.Cycles == 0 || tr.Uops == 0 {
		t.Error("timing counters empty")
	}
	if tr.IPC() <= 0.5 {
		t.Errorf("tight ALU loop IPC %.2f too low", tr.IPC())
	}
}

func TestTimingUopCacheCapturesLoop(t *testing.T) {
	p := loopProg(t, 1000, 2)
	tr := timed(t, p, baseCfg())
	hit := float64(tr.UopCacheHits) / float64(tr.UopCacheAccesses)
	if hit < 0.95 {
		t.Errorf("tiny loop should stream from the uop cache, hit=%.3f", hit)
	}
	if tr.DecodeActivations > tr.UopCacheAccesses/10 {
		t.Errorf("decode pipeline should be mostly off: %d activations", tr.DecodeActivations)
	}
}

func TestTimingCacheMissesCostCycles(t *testing.T) {
	// Strided loads over a 1MB footprint (misses in 32KB L1) vs a small
	// footprint (hits).
	mk := func(maskImm int64) *code.Program {
		and := ci(code.AND, 8)
		and.Dst, and.Src1 = 2, 2
		and.HasImm, and.Imm = true, maskImm
		ld := ci(code.LD, 8)
		ld.Dst = 3
		ld.HasMem = true
		ld.Mem = code.Mem{Base: 4, Index: 2, Scale: 1}
		add64 := ci(code.ADD, 8)
		add64.Dst, add64.Src1, add64.Src2 = 5, 5, 3
		step := ci(code.ADD, 8)
		step.Dst, step.Src1 = 2, 2
		step.HasImm, step.Imm = true, 4159 // odd-ish stride
		inc := ci(code.ADD, 8)
		inc.Dst, inc.Src1 = 0, 0
		inc.HasImm, inc.Imm = true, 1
		cmp := ci(code.CMP, 8)
		cmp.Src1, cmp.Src2 = 0, 1
		jcc := ci(code.JCC, 0)
		jcc.CC = code.CCLT
		jcc.Target = 4
		return mkProg(t, isa.X8664,
			movImm(0, 0, 8), movImm(1, 4000, 8), movImm(2, 0, 8),
			movImm(4, int64(code.DataBase), 8),
			and, ld, add64, step, inc, cmp, jcc, retR(5))
	}
	big := mk(1<<20 - 1)
	small := mk(1<<10 - 1)
	cb := timed(t, big, baseCfg())
	cs := timed(t, small, baseCfg())
	if cb.Cycles <= cs.Cycles {
		t.Errorf("1MB-footprint loop (%d cyc) must be slower than 1KB (%d cyc)", cb.Cycles, cs.Cycles)
	}
	if cb.L1DMisses <= cs.L1DMisses {
		t.Errorf("miss counts wrong: %d vs %d", cb.L1DMisses, cs.L1DMisses)
	}
}

func TestTimingMispredictsCostCycles(t *testing.T) {
	// A data-dependent branch driven by an LCG: unpredictable.
	mk := func(pattern bool) *code.Program {
		// r2 = lcg state; branch on bit; both paths rejoin.
		mul := ci(code.IMUL, 8)
		mul.Dst, mul.Src1 = 2, 2
		mul.HasImm, mul.Imm = true, 1664525
		addc := ci(code.ADD, 8)
		addc.Dst, addc.Src1 = 2, 2
		addc.HasImm, addc.Imm = true, 1013904223
		cpy := ci(code.MOV, 8)
		cpy.Dst, cpy.Src1 = 3, 2
		andp := ci(code.AND, 8)
		andp.Dst, andp.Src1 = 3, 3
		if pattern {
			andp.HasImm, andp.Imm = true, 0 // always zero: predictable
		} else {
			andp.HasImm, andp.Imm = true, 1<<16 // random bit
		}
		jz := ci(code.JCC, 0)
		jz.CC = code.CCEQ
		jz.Target = 8 // skip the add below
		skip := alu(code.ADD, 5, 2, 8)
		inc := ci(code.ADD, 8)
		inc.Dst, inc.Src1 = 0, 0
		inc.HasImm, inc.Imm = true, 1
		cmp := ci(code.CMP, 8)
		cmp.Src1, cmp.Src2 = 0, 1
		jcc := ci(code.JCC, 0)
		jcc.CC = code.CCLT
		jcc.Target = 3
		return mkProg(t, isa.X8664,
			movImm(0, 0, 8), movImm(1, 4000, 8), movImm(2, 12345, 8),
			mul, addc, cpy, andp, jz, skip, inc, cmp, jcc, retR(5))
	}
	good := timed(t, mk(true), baseCfg())
	bad := timed(t, mk(false), baseCfg())
	if bad.Mispredicts <= good.Mispredicts*2 {
		t.Errorf("random branch must mispredict more: %d vs %d", bad.Mispredicts, good.Mispredicts)
	}
	if bad.Cycles <= good.Cycles {
		t.Errorf("mispredictions must cost cycles: %d vs %d", bad.Cycles, good.Cycles)
	}
}

func TestTimingDeterministic(t *testing.T) {
	p := loopProg(t, 500, 3)
	a := timed(t, p, baseCfg())
	b := timed(t, p, baseCfg())
	if a != b {
		t.Error("timing simulation must be deterministic")
	}
}

func TestTimingLSQLimitsMemoryBursts(t *testing.T) {
	// A stream of independent loads: a 4-entry LSQ must throttle them
	// relative to a 32-entry one.
	var instrs []code.Instr
	instrs = append(instrs, movImm(0, 0, 8), movImm(1, 3000, 8),
		movImm(4, int64(code.DataBase), 8))
	body := len(instrs)
	for k := 0; k < 10; k++ {
		ld := ci(code.LD, 8)
		ld.Dst = code.Reg(5 + k%8)
		ld.HasMem = true
		// Strided misses: index scaled so consecutive iterations miss.
		ld.Mem = code.Mem{Base: 4, Index: 0, Scale: 8, Disp: int32(k * 640000)}
		instrs = append(instrs, ld)
	}
	inc := ci(code.ADD, 8)
	inc.Dst, inc.Src1 = 0, 0
	inc.HasImm, inc.Imm = true, 64
	instrs = append(instrs, inc)
	cmp := ci(code.CMP, 8)
	cmp.Src1, cmp.Src2 = 0, 1
	instrs = append(instrs, cmp)
	jcc := ci(code.JCC, 0)
	jcc.CC = code.CCLT
	jcc.Target = int32(body)
	instrs = append(instrs, jcc, retR(0))
	p := mkProg(t, isa.X8664, instrs...)

	big := baseCfg()
	big.LSQ = 32
	small := baseCfg()
	small.LSQ = 4
	cb := timed(t, p, big).Cycles
	cs := timed(t, p, small).Cycles
	if cs <= cb {
		t.Errorf("a tiny LSQ must throttle independent misses: lsq4=%d lsq32=%d", cs, cb)
	}
}

func TestTimingFusionSavesDispatchSlots(t *testing.T) {
	// CMP+JCC pairs in a tight predictable loop: fusion should not hurt
	// and typically helps when dispatch-bound.
	p := loopProg(t, 3000, 6)
	on := baseCfg()
	off := baseCfg()
	off.Fusion = false
	con := timed(t, p, on).Cycles
	coff := timed(t, p, off).Cycles
	if con > coff {
		t.Errorf("macro-op fusion must not slow the loop: on=%d off=%d", con, coff)
	}
}

func TestTimingPredicatedCodeAvoidsMispredicts(t *testing.T) {
	// Hand-build: random condition, predicated increment vs branchy
	// increment. The predicated version has no conditional branches in
	// the hot path, so its mispredict count must be ~zero.
	mk := func(predicated bool) *code.Program {
		fs := isa.MustNew(isa.FullX86, 64, 16, isa.FullPredication)
		var instrs []code.Instr
		instrs = append(instrs, movImm(0, 0, 8), movImm(1, 3000, 8), movImm(2, 12345, 8))
		body := len(instrs)
		mul := ci(code.IMUL, 8)
		mul.Dst, mul.Src1 = 2, 2
		mul.HasImm, mul.Imm = true, 6364136223846793005
		and := ci(code.MOV, 8)
		and.Dst, and.Src1 = 3, 2
		sh := ci(code.SHR, 8)
		sh.Dst, sh.Src1 = 3, 3
		sh.HasImm, sh.Imm = true, 33
		msk := ci(code.AND, 8)
		msk.Dst, msk.Src1 = 3, 3
		msk.HasImm, msk.Imm = true, 1
		instrs = append(instrs, mul, and, sh, msk)
		if predicated {
			tst := ci(code.TEST, 8)
			tst.Src1, tst.Src2 = 3, 3
			set := ci(code.SETCC, 4)
			set.Dst, set.CC = 6, code.CCNE
			add := ci(code.ADD, 8)
			add.Dst, add.Src1 = 5, 5
			add.HasImm, add.Imm = true, 1
			add.Pred, add.PredSense = 6, true
			instrs = append(instrs, tst, set, add)
		} else {
			tst := ci(code.TEST, 8)
			tst.Src1, tst.Src2 = 3, 3
			jz := ci(code.JCC, 0)
			jz.CC = code.CCEQ
			add := ci(code.ADD, 8)
			add.Dst, add.Src1 = 5, 5
			add.HasImm, add.Imm = true, 1
			jz.Target = int32(len(instrs) + 3) // skip the add
			instrs = append(instrs, tst, jz, add)
		}
		inc := ci(code.ADD, 8)
		inc.Dst, inc.Src1 = 0, 0
		inc.HasImm, inc.Imm = true, 1
		cmp := ci(code.CMP, 8)
		cmp.Src1, cmp.Src2 = 0, 1
		jcc := ci(code.JCC, 0)
		jcc.CC = code.CCLT
		jcc.Target = int32(body)
		instrs = append(instrs, inc, cmp, jcc, retR(5))
		return mkProg(t, fs, instrs...)
	}
	brt := timed(t, mk(false), baseCfg())
	prt := timed(t, mk(true), baseCfg())
	if prt.Mispredicts >= brt.Mispredicts/4 {
		t.Errorf("predicated version must avoid data-dependent mispredicts: %d vs %d",
			prt.Mispredicts, brt.Mispredicts)
	}
	if prt.PredOffUops == 0 {
		t.Error("predicated run must report predicated-off uops")
	}
}
