package cpu

// granTab is an open-addressed hash table from 8-byte memory-granule index
// to a fixed-stride block of int64 values. It replaces the map[uint64]
// dependency tracking in the profiler (stride = one slot per ILP lane) and
// the timing walk (stride 1), which profiling showed as a top allocation
// and hashing cost: per-granule map inserts dominated Consume.
//
// reset is O(1) via a generation counter, so a pooled profiler reuses the
// table across regions. Growth rehashes live entries; because a grow moves
// value blocks, callers that hold chunk slices across inserts must use the
// two-phase API: ensure() every granule of the instruction first, then
// find() (which never mutates) to fetch the chunks they write through.
type granTab struct {
	keys   []uint64
	gen    []uint32 // entry is live iff gen[i] == cur
	vals   []int64  // len(keys)*stride, block i at vals[i*stride:]
	stride int
	shift  uint   // 64 - log2(len(keys))
	mask   uint64 // len(keys) - 1
	cur    uint32
	n      int // live entries
}

// newGranTab builds a table with the given value stride. capHint is the
// expected number of distinct granules (e.g. region footprint / 8 bytes);
// the initial size is clamped to keep small regions cheap and huge hints
// from front-loading allocation that growth would amortize anyway.
func newGranTab(stride, capHint int) *granTab {
	size := 1 << 12
	for size < capHint*2 && size < 1<<16 {
		size <<= 1
	}
	t := &granTab{stride: stride, cur: 1}
	t.alloc(size)
	return t
}

func (t *granTab) alloc(size int) {
	t.keys = make([]uint64, size)
	t.gen = make([]uint32, size)
	t.vals = make([]int64, size*t.stride)
	t.mask = uint64(size - 1)
	shift := uint(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	t.shift = shift
}

// reset empties the table in O(1).
func (t *granTab) reset() {
	t.n = 0
	t.cur++
	if t.cur == 0 { // generation wrap: stale gen values could alias
		clear(t.gen)
		t.cur = 1
	}
}

func granHash(g uint64) uint64 { return g * 0x9E3779B97F4A7C15 }

// ensure makes a slot for granule g exist (zeroed on first touch) and may
// grow the table. It returns nothing on purpose: fetch the block with find
// only after every ensure of the current instruction is done.
func (t *granTab) ensure(g uint64) {
	if t.n*4 >= len(t.keys)*3 {
		t.grow()
	}
	i := granHash(g) >> t.shift
	for {
		if t.gen[i] != t.cur {
			t.keys[i] = g
			t.gen[i] = t.cur
			blk := t.vals[int(i)*t.stride : (int(i)+1)*t.stride]
			for j := range blk {
				blk[j] = 0
			}
			t.n++
			return
		}
		if t.keys[i] == g {
			return
		}
		i = (i + 1) & t.mask
	}
}

// find returns the value block for a granule previously passed to ensure.
// It never mutates the table, so the returned slice stays valid until the
// next ensure or reset.
func (t *granTab) find(g uint64) []int64 {
	i := granHash(g) >> t.shift
	for {
		if t.gen[i] == t.cur && t.keys[i] == g {
			return t.vals[int(i)*t.stride : (int(i)+1)*t.stride]
		}
		if t.gen[i] != t.cur {
			return nil
		}
		i = (i + 1) & t.mask
	}
}

// get returns the first value of g's block, or 0 when absent, without
// inserting — the read-side equivalent of a map lookup.
func (t *granTab) get(g uint64) int64 {
	i := granHash(g) >> t.shift
	for {
		if t.gen[i] == t.cur && t.keys[i] == g {
			return t.vals[int(i)*t.stride]
		}
		if t.gen[i] != t.cur {
			return 0
		}
		i = (i + 1) & t.mask
	}
}

// put sets the first value of g's block, inserting the block if needed —
// the write-side equivalent of a map assignment (stride-1 tables).
func (t *granTab) put(g uint64, v int64) {
	t.ensure(g)
	t.find(g)[0] = v
}

func (t *granTab) grow() {
	oldKeys, oldGen, oldVals := t.keys, t.gen, t.vals
	oldCur := t.cur
	t.alloc(len(oldKeys) * 2)
	t.cur = 1
	t.n = 0
	for i, g := range oldGen {
		if g != oldCur {
			continue
		}
		k := oldKeys[i]
		j := granHash(k) >> t.shift
		for t.gen[j] == t.cur {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.gen[j] = t.cur
		copy(t.vals[int(j)*t.stride:(int(j)+1)*t.stride],
			oldVals[i*t.stride:(i+1)*t.stride])
		t.n++
	}
}
