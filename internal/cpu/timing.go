package cpu

import (
	"compisa/internal/code"
)

// TimingResult is the cycle-level outcome of a timing simulation.
type TimingResult struct {
	Cycles      int64
	Instrs      int64
	Uops        int64
	Mispredicts int64
	Branches    int64

	L1IAccesses, L1IMisses int64
	L1DAccesses, L1DMisses int64
	L2Accesses, L2Misses   int64

	UopCacheAccesses  int64
	UopCacheHits      int64
	DecodeActivations int64 // legacy-decode pipeline activations (ILD on)

	UopsByClass [NumUopClasses]int64
	PredOffUops int64
}

// IPC returns retired micro-ops per cycle.
func (r TimingResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Uops) / float64(r.Cycles)
}

// MPKI returns branch mispredictions per kilo-instruction.
func (r TimingResult) MPKI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return 1000 * float64(r.Mispredicts) / float64(r.Instrs)
}

// Register-id space for dependence tracking: integer registers 0..63, FP
// 64..79, flags 80, the transient micro-op temp of a load+op pair 81.
const (
	depFPBase  = 64
	depFlags   = 80
	depMemTemp = 81
	numDeps    = 82
)

// Timing is a trace-driven cycle-approximate simulator of one core. Feed it
// the functional executor's event stream and read Result at the end. It
// models front-end supply (I-cache, micro-op cache, ILD/legacy decode
// bandwidth), branch prediction and misprediction redirect, register and
// flag dependences, structural limits (issue width, IQ, ROB, LSQ, functional
// units), and the data cache hierarchy, for both in-order and out-of-order
// cores.
type Timing struct {
	p    *code.Program
	pd   *Predecoded
	cfg  CoreConfig
	pred Predictor
	hier *Hierarchy
	uc   *UopCache
	res  TimingResult

	// legacyExpand switches micro-op decomposition to the oracle expand()
	// instead of the predecoded templates (differential tests only).
	legacyExpand bool

	// front-end state
	fetchCycle int64 // cycle the next uop can be delivered
	slotsLeft  int   // delivery slots remaining in fetchCycle
	lastLine   uint64
	redirectAt int64 // front-end blocked until this cycle after mispredict
	prevWasCmp bool  // macro-fusion window

	// backend state
	regReady   [numDeps]int64 // completion cycle of last writer
	fu         [NumUopClasses][]int64
	seq        int64
	ring       []ringEnt // recent uops, indexed by seq % len
	memRing    []int64   // issue cycles of recent mem uops (LSQ model)
	memSeq     int64
	lastRetire int64
	// memDep tracks store completion per 8-byte granule so dependent
	// loads (e.g. spill refills of a just-stored value) serialize.
	memDep *granTab
}

type ringEnt struct {
	retire int64
	issue  int64
}

// NewTiming builds a timing simulator for the program on the given core.
func NewTiming(p *code.Program, cfg CoreConfig) *Timing {
	return newTimingPre(Predecode(p), cfg)
}

// newTimingPre builds a timing simulator over an existing predecode, so
// RunTimed shares one Predecoded between executor and timing walk.
func newTimingPre(pd *Predecoded, cfg CoreConfig) *Timing {
	t := &Timing{
		p:    pd.P,
		pd:   pd,
		cfg:  cfg,
		pred: NewPredictor(cfg.Predictor),
		hier: NewHierarchy(cfg.L1I, cfg.L1D, cfg.L2),
		ring: make([]ringEnt, 1024),
	}
	if cfg.UopCache {
		t.uc = NewUopCache()
	}
	t.fu[UcInt] = make([]int64, cfg.IntALU)
	t.fu[UcMul] = make([]int64, cfg.IntMul)
	t.fu[UcFP] = make([]int64, cfg.FPALU)
	t.fu[UcFDiv] = t.fu[UcFP] // divides share the FP units
	t.fu[UcLoad] = make([]int64, 2)
	t.fu[UcStore] = make([]int64, 1)
	t.fu[UcBranch] = make([]int64, 1)
	t.memRing = make([]int64, cfg.LSQ)
	t.memDep = newGranTab(1, 0)
	return t
}

// classOf maps an op to its execution class.
func classOf(op code.Op) UopClass {
	switch op {
	case code.IMUL, code.VMULI:
		return UcMul
	case code.FADD, code.FSUB, code.FMUL, code.FCMP, code.CVTIF, code.CVTFI,
		code.VADDF, code.VSUBF, code.VMULF, code.VADDI, code.VSUBI,
		code.VSPLAT, code.VRSUM, code.FMOV:
		return UcFP
	case code.FDIV:
		return UcFDiv
	case code.LD, code.FLD, code.VLD:
		return UcLoad
	case code.ST, code.FST, code.VST:
		return UcStore
	case code.JCC, code.JMP, code.RET:
		return UcBranch
	default:
		return UcInt
	}
}

// uopSpec is one micro-op of a macro-op, described for dependence tracking.
type uopSpec struct {
	class   UopClass
	srcs    [5]int16
	nsrcs   int
	dst     int16 // -1 none
	dstFlag bool
	isLoad  bool
	isStore bool
	addr    uint64
	msz     uint8
}

func depInt(r code.Reg) int16 { return int16(r) }
func depFP(r code.Reg) int16  { return int16(depFPBase + int(r)) }

// expand decomposes the macro instruction at ev into micro-ops.
func expand(in *code.Instr, ev *Event, buf []uopSpec) []uopSpec {
	buf = buf[:0]
	addSrc := func(u *uopSpec, d int16) {
		if u.nsrcs < len(u.srcs) {
			u.srcs[u.nsrcs] = d
			u.nsrcs++
		}
	}
	fp := in.Op.IsFP()
	mainDst := int16(-1)
	if in.Dst != code.NoReg {
		switch in.Op {
		case code.ST, code.FST, code.VST, code.CMP, code.TEST, code.FCMP,
			code.JCC, code.JMP, code.RET:
		default:
			if fp {
				mainDst = depFP(in.Dst)
			} else {
				mainDst = depInt(in.Dst)
			}
		}
	}

	var main uopSpec
	main.class = classOf(in.Op)
	main.dst = mainDst

	// Memory micro-op: either the instruction itself is a load/store, or
	// a folded load feeds the compute micro-op.
	if in.MemSrcALU() {
		var ld uopSpec
		ld.class = UcLoad
		ld.isLoad = true
		ld.addr = ev.MemAddr
		ld.msz = ev.MemSz
		if in.Mem.Base != code.NoReg {
			addSrc(&ld, depInt(in.Mem.Base))
		}
		if in.Mem.Index != code.NoReg {
			addSrc(&ld, depInt(in.Mem.Index))
		}
		ld.dst = depMemTemp
		buf = append(buf, ld)
		addSrc(&main, depMemTemp)
	} else if in.HasMem {
		if in.Mem.Base != code.NoReg {
			addSrc(&main, depInt(in.Mem.Base))
		}
		if in.Mem.Index != code.NoReg {
			addSrc(&main, depInt(in.Mem.Index))
		}
		main.isLoad = ev.IsLoad
		main.isStore = ev.IsStore
		main.addr = ev.MemAddr
		main.msz = ev.MemSz
	}

	// Register sources.
	switch in.Op {
	case code.CVTIF:
		addSrc(&main, depInt(in.Src1))
	case code.FST, code.VST, code.FMOV, code.FADD, code.FSUB, code.FMUL,
		code.FDIV, code.FCMP, code.CVTFI, code.VADDF, code.VSUBF, code.VMULF,
		code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
		if in.Src1 != code.NoReg {
			addSrc(&main, depFP(in.Src1))
		}
		if in.Src2 != code.NoReg {
			addSrc(&main, depFP(in.Src2))
		}
	default:
		if in.Src1 != code.NoReg {
			addSrc(&main, depInt(in.Src1))
		}
		if in.Src2 != code.NoReg {
			addSrc(&main, depInt(in.Src2))
		}
	}
	if in.Op.ReadsFlags() {
		addSrc(&main, depFlags)
	}
	if in.Op.WritesFlags() {
		main.dstFlag = true
	}
	if in.Pred != code.NoReg {
		addSrc(&main, depInt(in.Pred))
		// Predicated merge reads the prior destination.
		if mainDst >= 0 {
			addSrc(&main, mainDst)
		}
	}
	if in.Op == code.CMOVCC && mainDst >= 0 {
		addSrc(&main, mainDst)
	}
	return append(buf, main)
}

// Consume feeds one executed macro-instruction into the timing model.
func (t *Timing) Consume(ev *Event) {
	in := &t.p.Instrs[ev.Idx]
	t.res.Instrs++

	// ---- Front end: instruction supply. ----
	line := uint64(ev.PC) / cacheLineBytes
	if line != t.lastLine {
		t.lastLine = line
		t.res.L1IAccesses++
		lat := t.hier.FetchAccess(uint64(ev.PC))
		if lat > 0 {
			t.res.L1IMisses++
			t.fetchCycle += int64(lat)
			t.slotsLeft = 0
		}
	}
	if t.redirectAt > t.fetchCycle {
		t.fetchCycle = t.redirectAt
		t.slotsLeft = 0
	}

	// Micro-op cache / legacy decode bandwidth.
	slots := int(ev.Uops)
	fromUC := false
	if t.uc != nil {
		t.res.UopCacheAccesses++
		if t.uc.Access(ev.PC, int(ev.Uops)) {
			t.res.UopCacheHits++
			fromUC = true
		} else {
			t.res.DecodeActivations++
		}
	} else {
		t.res.DecodeActivations++
	}
	if t.cfg.Fusion {
		// Micro-op fusion: a load+op pair occupies one delivery slot.
		if in.MemSrcALU() {
			slots = 1
		}
		// Macro-op fusion: CMP+JCC pairs share a slot.
		if in.Op == code.JCC && t.prevWasCmp {
			slots = 0
		}
	}
	t.prevWasCmp = in.Op == code.CMP || in.Op == code.TEST

	deliverWidth := t.cfg.Width
	if !fromUC {
		// Legacy decode path: ILD processes 16 bytes/cycle and the
		// decoders sustain at most 3 macro-ops/cycle.
		if deliverWidth > 3 {
			deliverWidth = 3
		}
		if int(ev.Len) > 8 && deliverWidth > 2 {
			deliverWidth = 2 // long (prefix-heavy) instructions decode slower
		}
	}
	deliver := t.fetchCycle
	for s := 0; s < slots; s++ {
		if t.slotsLeft <= 0 {
			t.fetchCycle++
			t.slotsLeft = deliverWidth
			deliver = t.fetchCycle
		}
		t.slotsLeft--
	}

	// ---- Branch prediction. ----
	mispredicted := false
	if in.Op == code.JCC {
		t.res.Branches++
		pred := t.pred.Predict(ev.PC)
		t.pred.Update(ev.PC, ev.Taken)
		if pred != ev.Taken {
			t.res.Mispredicts++
			mispredicted = true
		}
	}

	// ---- Back end. ----
	var buf [3]uopSpec
	var uops []uopSpec
	if t.legacyExpand {
		uops = expand(in, ev, buf[:0])
	} else {
		uops = t.pd.expand(ev, buf[:0])
	}
	var lastComp int64
	for ui := range uops {
		u := &uops[ui]
		t.res.Uops++
		t.res.UopsByClass[u.class]++
		if ev.PredOff {
			t.res.PredOffUops++
		}

		var issue, comp int64
		if t.cfg.OoO {
			issue, comp = t.oooIssue(u, deliver)
		} else {
			issue, comp = t.inorderIssue(u, deliver)
		}

		// Writeback.
		if u.dst >= 0 {
			t.regReady[u.dst] = comp
		}
		if u.dstFlag {
			t.regReady[depFlags] = comp
		}

		// Retirement (in order).
		ret := comp
		if ret < t.lastRetire {
			ret = t.lastRetire
		}
		idx := t.seq % int64(len(t.ring))
		t.ring[idx] = ringEnt{retire: ret, issue: issue}
		t.lastRetire = ret
		t.seq++

		if u.isLoad || u.isStore {
			// An LSQ entry is held until the access completes (data
			// return for loads), not merely until issue.
			t.memRing[t.memSeq%int64(len(t.memRing))] = comp
			t.memSeq++
		}
		lastComp = comp
	}

	// Mispredicted branch: the front end resumes after the branch
	// resolves (its completion) plus one redirect cycle; the refilled
	// FrontendDepth stages then add the rest of the penalty.
	if mispredicted {
		t.redirectAt = lastComp + 1
	}
}

func (t *Timing) oooIssue(u *uopSpec, deliver int64) (issue, comp int64) {
	disp := deliver + FrontendDepth
	// ROB occupancy: dispatch waits for the entry ROB positions back to
	// retire.
	if t.seq >= int64(t.cfg.ROB) {
		if r := t.ring[(t.seq-int64(t.cfg.ROB))%int64(len(t.ring))].retire; r+1 > disp {
			disp = r + 1
		}
	}
	// IQ occupancy: approximate by requiring the uop IQ positions back to
	// have issued.
	if t.seq >= int64(t.cfg.IQ) {
		if r := t.ring[(t.seq-int64(t.cfg.IQ))%int64(len(t.ring))].issue; r+1 > disp {
			disp = r + 1
		}
	}
	// LSQ occupancy.
	if (u.isLoad || u.isStore) && t.memSeq >= int64(t.cfg.LSQ) {
		if r := t.memRing[t.memSeq%int64(len(t.memRing))]; r+1 > disp {
			disp = r + 1
		}
	}
	issue = disp
	for i := 0; i < u.nsrcs; i++ {
		if r := t.regReady[u.srcs[i]]; r > issue {
			issue = r
		}
	}
	if u.isLoad {
		forEachGranule(u.addr, u.msz, func(g uint64) {
			if r := t.memDep.get(g); r > issue {
				issue = r
			}
		})
	}
	// Functional unit.
	fus := t.fu[u.class]
	best := 0
	for i := 1; i < len(fus); i++ {
		if fus[i] < fus[best] {
			best = i
		}
	}
	if fus[best] > issue {
		issue = fus[best]
	}
	occupy := int64(1)
	if u.class == UcFDiv {
		occupy = int64(latOf(UcFDiv))
	}
	fus[best] = issue + occupy

	lat := int64(latOf(u.class))
	if u.isLoad {
		lat = int64(t.hier.DataAccess(u.addr))
		t.res.L1DAccesses++
		if lat > LatL1 {
			t.res.L1DMisses++
		}
		if lat >= LatMem {
			t.res.L2Misses++
		}
	}
	if u.isStore {
		t.hier.L1D.Access(u.addr)
		t.res.L1DAccesses++
	}
	comp = issue + lat
	if u.isStore {
		c := comp
		forEachGranule(u.addr, u.msz, func(g uint64) { t.memDep.put(g, c) })
	}
	return issue, comp
}

func (t *Timing) inorderIssue(u *uopSpec, deliver int64) (issue, comp int64) {
	issue = deliver + FrontendDepth/2
	// Program order with issue width: the uop Width positions back must
	// have issued strictly earlier.
	if t.seq >= int64(t.cfg.Width) {
		if r := t.ring[(t.seq-int64(t.cfg.Width))%int64(len(t.ring))].issue; r+1 > issue {
			issue = r + 1
		}
	}
	if t.seq > 0 {
		if r := t.ring[(t.seq-1)%int64(len(t.ring))].issue; r > issue {
			issue = r // same cycle as predecessor allowed
		}
	}
	for i := 0; i < u.nsrcs; i++ {
		if r := t.regReady[u.srcs[i]]; r > issue {
			issue = r
		}
	}
	if u.isLoad {
		forEachGranule(u.addr, u.msz, func(g uint64) {
			if r := t.memDep.get(g); r > issue {
				issue = r
			}
		})
	}
	fus := t.fu[u.class]
	best := 0
	for i := 1; i < len(fus); i++ {
		if fus[i] < fus[best] {
			best = i
		}
	}
	if fus[best] > issue {
		issue = fus[best]
	}
	occupy := int64(1)
	if u.class == UcFDiv {
		occupy = int64(latOf(UcFDiv))
	}
	fus[best] = issue + occupy

	lat := int64(latOf(u.class))
	if u.isLoad {
		lat = int64(t.hier.DataAccess(u.addr))
		t.res.L1DAccesses++
		if lat > LatL1 {
			t.res.L1DMisses++
		}
		if lat >= LatMem {
			t.res.L2Misses++
		}
	}
	if u.isStore {
		t.hier.L1D.Access(u.addr)
		t.res.L1DAccesses++
	}
	comp = issue + lat
	if u.isStore {
		c := comp
		forEachGranule(u.addr, u.msz, func(g uint64) { t.memDep.put(g, c) })
	}
	return issue, comp
}

// Result finalizes and returns the simulation outcome.
func (t *Timing) Result() TimingResult {
	t.res.Cycles = t.lastRetire + 1
	t.res.L2Accesses = t.hier.L2.Accesses
	t.res.L2Misses = t.hier.L2.Misses
	return t.res
}

// RunTimed executes the program functionally while driving the timing model.
// Executor and timing walk share one predecode of the program.
func RunTimed(p *code.Program, st *State, cfg CoreConfig, maxInstrs int64) (ExecResult, TimingResult, error) {
	pd := Predecode(p)
	t := newTimingPre(pd, cfg)
	res, err := RunPredecoded(pd, st, RunOptions{MaxInstrs: maxInstrs}, t.Consume)
	if err != nil {
		return res, TimingResult{}, err
	}
	return res, t.Result(), nil
}

// forEachGranule visits the 8-byte granules covered by [addr, addr+sz).
func forEachGranule(addr uint64, sz uint8, f func(uint64)) {
	if sz == 0 {
		sz = 8
	}
	first := addr >> 3
	last := (addr + uint64(sz) - 1) >> 3
	for g := first; g <= last; g++ {
		f(g)
	}
}
