package cpu

import (
	"context"
	"errors"
	"strings"
	"testing"

	"compisa/internal/code"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// jmpSelf builds a one-instruction infinite loop.
func jmpSelf() code.Instr {
	in := ci(code.JMP, 0)
	in.Target = 0
	return in
}

// TestFaultInstrBudget: the runaway watchdog fires with a classifiable
// sentinel and a message naming the program and the budget.
func TestFaultInstrBudget(t *testing.T) {
	p := mkProg(t, isa.X8664, jmpSelf(), retR(0))
	p.Name = "runaway"
	_, err := Run(p, NewState(mem.New()), 1000, nil)
	if !errors.Is(err, ErrInstrBudget) {
		t.Fatalf("got %v, want ErrInstrBudget", err)
	}
	if !strings.Contains(err.Error(), "runaway") || !strings.Contains(err.Error(), "1000") {
		t.Errorf("message %q should name the program and the budget", err)
	}
}

// TestFaultUnimplementedOp: a corrupted opcode surfaces through the decode
// default case as ErrUnimplementedOp, not a panic.
func TestFaultUnimplementedOp(t *testing.T) {
	p := mkProg(t, isa.X8664, movImm(0, 1, 8), retR(0))
	p.Instrs[0].Op = 0xEF // corrupt after validation/layout
	_, err := Run(p, NewState(mem.New()), 1000, nil)
	if !errors.Is(err, ErrUnimplementedOp) {
		t.Fatalf("got %v, want ErrUnimplementedOp", err)
	}
}

// TestFaultInterrupt: RunOptions.Interrupt aborts execution promptly and the
// returned error matches both ErrInterrupted and the interrupt's cause (the
// contract context cancellation relies on).
func TestFaultInterrupt(t *testing.T) {
	p := mkProg(t, isa.X8664, jmpSelf(), retR(0))
	polls := 0
	res, err := RunOpts(p, NewState(mem.New()), RunOptions{
		MaxInstrs:      1 << 40,
		InterruptEvery: 64,
		Interrupt: func() error {
			polls++
			if polls >= 3 {
				return context.Canceled
			}
			return nil
		},
	}, nil)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must preserve the interrupt cause", err)
	}
	if res.Instrs > 64*4 {
		t.Errorf("executed %d instructions after cancellation; polling stride not honored", res.Instrs)
	}
}

// TestFaultPCOutOfRange: a wild control transfer is a typed error, not a
// slice panic.
func TestFaultPCOutOfRange(t *testing.T) {
	p := mkProg(t, isa.X8664, jmpSelf(), retR(0))
	p.Instrs[0].Target = 99
	_, err := Run(p, NewState(mem.New()), 1000, nil)
	if !errors.Is(err, ErrPCOutOfRange) {
		t.Fatalf("got %v, want ErrPCOutOfRange", err)
	}
}
