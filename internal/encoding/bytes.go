package encoding

import (
	"fmt"

	"compisa/internal/code"
)

// This file defines the concrete byte-level encoding of the superset ISA and
// the instruction-length decoder (ILD) that parses it — the unit the paper
// synthesized to RTL (Section V.B, after Madduri et al.'s parallel length
// decoder). The encoding follows Figure 3's format:
//
//	[REXBC 0xD6+payload] [predicate 0xF1+payload] [REX 0x4x]
//	[legacy SSE prefix 0x66/0xF2/0xF3] [0x0F escape] [opcode]
//	[ModRM] [SIB] [disp8/disp32] [imm8/imm32/imm64]
//
// Under the compact "greenfield" style the REXBC and predicate prefixes are
// single bytes (0xD7 and 0xF4), as a from-scratch superset ISA could define.
//
// The opcode byte packs an immediate-size class in its top bits so the
// length calculator can size the immediate without knowing operand values:
// non-escaped opcodes are 0x80 | immClass<<5 | op (op < 22, so no opcode
// collides with a prefix byte); escaped opcodes follow 0x0F freely.

// Prefix marker bytes.
const (
	bREXBC      = 0xD6
	bREXBCSlim  = 0xD7 // compact single-byte form
	bPred       = 0xF1
	bPredSlim   = 0xF4
	bEscape     = 0x0F
	bPrefix66   = 0x66
	bPrefixF2   = 0xF2
	bPrefixF3   = 0xF3
	rexBase     = 0x40 // 0x40-0x4F
	opcodeFlag  = 0x80
	immClassSh  = 5
	immClassMax = 3
)

// intOpIndex maps non-escaped (integer) ops to 5-bit opcode indices 0-21.
// SETCC/CMOVCC and all FP/SSE ops live in the 0x0F-escaped space, as on x86.
var intOpIndex = map[code.Op]byte{
	code.NOP: 0, code.MOV: 1, code.MOVSX: 2, code.LEA: 3, code.LD: 4,
	code.ST: 5, code.ADD: 6, code.SUB: 7, code.IMUL: 8, code.AND: 9,
	code.OR: 10, code.XOR: 11, code.SHL: 12, code.SHR: 13, code.SAR: 14,
	code.ADC: 15, code.SBB: 16, code.CMP: 17, code.TEST: 18, code.JCC: 19,
	code.JMP: 20, code.RET: 21,
}

var intOpFromIndex = func() map[byte]code.Op {
	m := map[byte]code.Op{}
	for op, i := range intOpIndex {
		m[i] = op
	}
	return m
}()

// escOpIndex maps 0x0F-escaped ops to opcode indices.
var escOpIndex = map[code.Op]byte{
	code.SETCC: 1, code.CMOVCC: 2,
	code.FMOV: 3, code.FLD: 4, code.FST: 5, code.FADD: 6, code.FSUB: 7,
	code.FMUL: 8, code.FDIV: 9, code.FCMP: 10, code.CVTIF: 11, code.CVTFI: 12,
	code.VLD: 13, code.VST: 14, code.VADDF: 15, code.VSUBF: 16, code.VMULF: 17,
	code.VADDI: 18, code.VSUBI: 19, code.VMULI: 20, code.VSPLAT: 21, code.VRSUM: 22,
	code.JCC: 23, code.JMP: 24, // rel32 long-branch forms
}

var escOpFromIndex = func() map[byte]code.Op {
	m := map[byte]code.Op{}
	for op, i := range escOpIndex {
		m[i] = op
	}
	return m
}()

// immClass returns the immediate-size class encoded in the opcode byte:
// 0 none, 1 imm8, 2 imm32, 3 imm64.
func immClass(in *code.Instr, longBranch bool) byte {
	switch in.Op {
	case code.JCC, code.JMP:
		if longBranch {
			return 2
		}
		return 1
	}
	if !in.HasImm {
		return 0
	}
	switch {
	case in.Op == code.SHL || in.Op == code.SHR || in.Op == code.SAR:
		return 1
	case in.Op == code.MOV && in.Sz == 8 && (in.Imm > 0x7fffffff || in.Imm < -0x80000000):
		return 3
	case fitsInt8(in.Imm):
		return 1
	default:
		return 2
	}
}

func immBytes(class byte) int {
	switch class {
	case 1:
		return 1
	case 2:
		return 4
	case 3:
		return 8
	}
	return 0
}

// hasModRM reports whether the op carries a ModRM byte.
func hasModRM(op code.Op) bool {
	switch op {
	case code.JMP, code.RET, code.NOP, code.JCC:
		return false
	}
	return true
}

// needsEscape reports whether the op's opcode lives behind 0x0F. JMP's long
// form keeps a single-byte opcode (x86's E9 rel32); only the long JCC pays
// the 0F 8x escape, matching the layout's byte accounting.
func needsEscape(op code.Op, longBranch bool) bool {
	if op == code.JCC {
		return longBranch
	}
	if op == code.JMP {
		return false
	}
	if _, ok := intOpIndex[op]; ok {
		return false
	}
	return true
}

// ssePrefix returns the legacy SSE prefix byte for the op, or 0.
func ssePrefix(op code.Op) byte {
	switch op {
	case code.FMOV, code.FLD, code.FST, code.FADD, code.FSUB, code.FMUL,
		code.FDIV, code.FCMP, code.CVTIF, code.CVTFI:
		return bPrefixF3
	case code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
		return bPrefix66
	}
	return 0
}

// EncodeInstr renders one laid-out instruction into bytes. length is the
// final layout length (which resolves rel8 vs rel32 branch forms).
func EncodeInstr(in *code.Instr, length int, compact bool) ([]byte, error) {
	var out []byte
	base := BaseLengthStyle(in, compact)
	longBranch := false
	if in.Op == code.JCC || in.Op == code.JMP {
		longBranch = length > base+1
	}

	// Prefixes.
	switch regClass(in) {
	case 1:
		out = append(out, rexBase|0x8) // REX with extension bits
	case 2:
		if compact {
			out = append(out, bREXBCSlim)
		} else {
			out = append(out, bREXBC, payloadRegs(in))
		}
	default:
		if in.Sz == 8 && !in.Op.IsFP() {
			out = append(out, rexBase|0x8) // REX.W
		}
	}
	if in.Predicated() {
		sense := byte(0)
		if in.PredSense {
			sense = 0x80
		}
		if compact {
			out = append(out, bPredSlim)
		} else {
			out = append(out, bPred, sense|byte(in.Pred&0x3f))
		}
	}
	if p := ssePrefix(in.Op); p != 0 {
		out = append(out, p)
	}

	// Opcode.
	ic := immClass(in, longBranch)
	if needsEscape(in.Op, longBranch) {
		idx, ok := escOpIndex[in.Op]
		if !ok {
			return nil, fmt.Errorf("encoding: op %v has no escaped opcode", in.Op)
		}
		out = append(out, bEscape, ic<<immClassSh|idx)
	} else {
		idx, ok := intOpIndex[in.Op]
		if !ok {
			return nil, fmt.Errorf("encoding: op %v has no opcode", in.Op)
		}
		if ic == 3 && in.Op != code.MOV {
			return nil, fmt.Errorf("encoding: imm64 only on MOV")
		}
		out = append(out, opcodeFlag|ic<<immClassSh|idx)
	}

	// ModRM / SIB / displacement.
	if hasModRM(in.Op) {
		if in.HasMem {
			m := in.Mem
			if m.Base == code.NoReg && m.Index != code.NoReg {
				return nil, fmt.Errorf("encoding: absolute addressing with an index register is not encodable")
			}
			var mod, rm byte
			dispLen := 0
			switch {
			case m.Base == code.NoReg:
				mod, rm, dispLen = 0, 0b101, 4 // absolute disp32
			case m.Disp == 0:
				mod, rm = 0, byte(m.Base&7)
				if rm == 0b101 {
					rm = 0b000 // mod=00 rm=101 would mean absolute disp32
				}
			case fitsInt8(int64(m.Disp)):
				mod, rm, dispLen = 0b01, byte(m.Base&7), 1
			default:
				mod, rm, dispLen = 0b10, byte(m.Base&7), 4
			}
			// rm=100 signals a SIB byte in every mod!=11 form. True register
			// numbers travel in the prefix payload in this model, so the
			// alias can simply be remapped away when no SIB is emitted.
			if m.Base != code.NoReg && rm == 0b100 {
				rm = 0b000
			}
			sib := false
			if m.Index != code.NoReg {
				rm = 0b100
				sib = true
			}
			out = append(out, mod<<6|byte(in.Dst&7)<<3|rm)
			if sib {
				out = append(out, byte(log2u(m.Scale))<<6|byte(m.Index&7)<<3|byte(m.Base&7))
			}
			for i := 0; i < dispLen; i++ {
				out = append(out, byte(uint32(m.Disp)>>(8*i)))
			}
		} else {
			out = append(out, 0b11<<6|byte(in.Dst&7)<<3|byte(in.Src2&7))
		}
	}

	// Immediate / branch displacement.
	switch in.Op {
	case code.JCC, code.JMP:
		n := 1
		if longBranch {
			n = 4
		}
		for i := 0; i < n; i++ {
			out = append(out, byte(uint32(in.Target)>>(8*i)))
		}
	default:
		for i := 0; i < immBytes(ic); i++ {
			out = append(out, byte(uint64(in.Imm)>>(8*i)))
		}
	}

	if len(out) != length {
		return nil, fmt.Errorf("encoding: %s encodes to %d bytes, layout says %d",
			code.FormatInstr(in), len(out), length)
	}
	return out, nil
}

func payloadRegs(in *code.Instr) byte {
	// REXBC payload: two extension bits each for dst/src/index (Fig. 3).
	var b byte
	if in.Dst != code.NoReg {
		b |= byte(in.Dst>>3) & 0x3
	}
	if in.Src2 != code.NoReg {
		b |= (byte(in.Src2>>3) & 0x3) << 2
	}
	if in.HasMem && in.Mem.Index != code.NoReg {
		b |= (byte(in.Mem.Index>>3) & 0x3) << 4
	}
	return b
}

func log2u(s uint8) byte {
	n := byte(0)
	for s > 1 {
		s >>= 1
		n++
	}
	return n
}

// Image encodes the whole laid-out program into its byte image under its
// target's encoding.
func Image(p *code.Program) ([]byte, error) {
	c := ForProgram(p)
	out := make([]byte, 0, p.Size)
	for i := range p.Instrs {
		b, err := c.EncodeInstr(&p.Instrs[i], Length(p, i), p.CompactEncoding)
		if err != nil {
			return nil, fmt.Errorf("%s[%d]: %w", p.Name, i, err)
		}
		out = append(out, b...)
	}
	return out, nil
}
