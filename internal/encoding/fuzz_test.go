package encoding_test

import (
	"testing"

	"compisa/internal/check"
	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/isa"
)

// FuzzEncodeDecodeVerify synthesizes one legal instruction for the most
// permissive feature set, lays it out, encodes it to bytes, and asserts the
// two invariants the rest of the stack relies on: the ILD recovers exactly
// the lengths the layout assigned (the conformance verifier's encode rule,
// driven here from arbitrary operand shapes rather than compiler output),
// and the verifier's per-instruction operand rules accept the instruction —
// any finding means the sanitizer and the rules disagree about what "legal"
// means, which is exactly the drift this fuzzer exists to catch.
func FuzzEncodeDecodeVerify(f *testing.F) {
	f.Add(byte(code.ADD), byte(1), byte(2), byte(3), byte(0xff), byte(0), byte(0), byte(1), byte(0), byte(0), int64(0), int32(0))
	f.Add(byte(code.MOV), byte(5), byte(0xff), byte(0xff), byte(0xff), byte(0), byte(0), byte(2), byte(0), byte(1), int64(1<<40), int32(0))
	f.Add(byte(code.LD), byte(9), byte(0xff), byte(0xff), byte(0xff), byte(4), byte(17), byte(1), byte(2), byte(2), int64(0), int32(-124))
	f.Add(byte(code.VADDF), byte(2), byte(4), byte(6), byte(3), byte(0xff), byte(0xff), byte(3), byte(0), byte(0), int64(0), int32(0))
	f.Add(byte(code.SHL), byte(40), byte(40), byte(0xff), byte(0xff), byte(0), byte(0), byte(2), byte(0), byte(1), int64(63), int32(0))
	f.Add(byte(code.FADD), byte(1), byte(2), byte(0xff), byte(0xff), byte(8), byte(0xff), byte(1), byte(1), byte(2), int64(0), int32(127))
	f.Fuzz(func(t *testing.T, opb, dst, src1, src2, pred, base, index, szSel, scaleSel, flags byte, imm int64, disp int32) {
		in, ok := sanitize(opb, dst, src1, src2, pred, base, index, szSel, scaleSel, flags, imm, disp)
		if !ok {
			t.Skip()
		}
		fs := isa.MustNew(isa.FullX86, 64, 64, isa.FullPredication)
		for _, compact := range []bool{false, true} {
			p := &code.Program{
				Name: "fuzz", FS: fs, CompactEncoding: compact,
				Instrs: []code.Instr{in, retInstr()},
			}
			if err := encoding.Layout(p, code.CodeBase); err != nil {
				t.Fatalf("layout rejected sanitized %s (compact=%v): %v", code.FormatInstr(&in), compact, err)
			}
			img, err := encoding.Image(p)
			if err != nil {
				t.Fatalf("image of %s (compact=%v): %v", code.FormatInstr(&in), compact, err)
			}
			if len(img) != p.Size {
				t.Fatalf("%s: image %d bytes, layout %d (compact=%v)", code.FormatInstr(&in), len(img), p.Size, compact)
			}
			ild := encoding.NewILD(compact)
			off := 0
			for i := range p.Instrs {
				want := encoding.Length(p, i)
				got, err := ild.DecodeLength(img[off:])
				if err != nil {
					t.Fatalf("ILD on %s (compact=%v): %v", code.FormatInstr(&p.Instrs[i]), compact, err)
				}
				if got != want {
					t.Fatalf("%s: ILD length %d, layout %d (compact=%v)",
						code.FormatInstr(&p.Instrs[i]), got, want, compact)
				}
				off += got
			}
			rep := check.AnalyzeOpts(p, check.Options{Rules: check.OperandRuleIDs()})
			for _, fd := range rep.Findings {
				t.Errorf("operand rule rejected sanitized instruction: %s", fd)
			}
		}
	})
}

// FuzzEncodeDecodeVerifyAlpha64 is the alpha64 leg of the round-trip fuzzer:
// arbitrary operand shapes are sanitized onto the fixed-length target's
// envelope (destructive two-address ALU forms, load/store-only base+disp12
// memory, 16-bit immediates, no predication or vectors) and pushed through
// layout, the word encoder, the one-step decoder, and the target-
// parameterized operand rules plus the encode round-trip rule. A finding
// means the sanitizer, the encoder, and the rules disagree about the
// target's envelope.
func FuzzEncodeDecodeVerifyAlpha64(f *testing.F) {
	f.Add(byte(code.ADD), byte(1), byte(2), byte(0), byte(1), byte(1), int64(-42), int32(0))
	f.Add(byte(code.MOV), byte(5), byte(0xff), byte(0), byte(2), byte(1), int64(0x7fff), int32(0))
	f.Add(byte(code.LD), byte(9), byte(4), byte(4), byte(2), byte(0), int64(0), int32(-124))
	f.Add(byte(code.SHL), byte(3), byte(3), byte(0), byte(2), byte(1), int64(63), int32(0))
	f.Add(byte(code.FCMP), byte(1), byte(2), byte(0), byte(1), byte(0), int64(0), int32(0))
	f.Add(byte(code.SETCC), byte(7), byte(0), byte(0), byte(0), byte(6), int64(0), int32(2))
	f.Fuzz(func(t *testing.T, opb, dst, srcb, base, szSel, flags byte, imm int64, disp int32) {
		in, ok := sanitizeAlpha64(opb, dst, srcb, base, szSel, flags, imm, disp)
		if !ok {
			t.Skip()
		}
		p := &code.Program{
			Name: "fuzz", FS: isa.X86izedAlpha, Target: "alpha64",
			Instrs: []code.Instr{in, retInstr()},
		}
		if err := encoding.Layout(p, code.CodeBase); err != nil {
			t.Fatalf("layout rejected sanitized %s: %v", code.FormatInstr(&in), err)
		}
		img, err := encoding.Image(p)
		if err != nil {
			t.Fatalf("image of %s: %v", code.FormatInstr(&in), err)
		}
		if len(img) != p.Size || p.Size != 4*len(p.Instrs) {
			t.Fatalf("%s: image %d bytes, layout %d, want fixed %d",
				code.FormatInstr(&in), len(img), p.Size, 4*len(p.Instrs))
		}
		rules := append(check.OperandRuleIDs(), check.RuleEncode)
		rep := check.AnalyzeOpts(p, check.Options{Rules: rules})
		for _, fd := range rep.Findings {
			t.Errorf("rule rejected sanitized alpha64 instruction %s: %s", code.FormatInstr(&in), fd)
		}
	})
}

// sanitizeAlpha64 maps arbitrary fuzz bytes onto an instruction that is
// legal for the alpha64 target under the x86-ized Alpha feature set,
// mirroring both the base operand rules and the target's encoding envelope.
// It reports false for shapes the fixed 32-bit word has no encoding for
// (branches need real targets; vectors, LEA, and folded memory operands do
// not exist on a load/store machine).
func sanitizeAlpha64(opb, dst, srcb, base, szSel, flags byte, imm int64, disp int32) (code.Instr, bool) {
	op := code.Op(opb) % (code.VRSUM + 1)
	in := code.Instr{Op: op, Dst: code.NoReg, Src1: code.NoReg, Src2: code.NoReg,
		Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
	reg := func(b byte) code.Reg { return code.Reg(b % 16) } // under FPRegs=16 and depth 32
	cc := code.CC((flags >> 1) % 10)
	hasImm := flags&1 != 0
	// clamp maps imm into [lo, hi], preserving fuzz-driven variety.
	clamp := func(lo, hi int64) int64 {
		span := hi - lo + 1
		return lo + (((imm-lo)%span)+span)%span
	}

	switch op {
	case code.NOP:
		return in, true

	case code.RET:
		in.Src1 = reg(srcb)
		return in, true

	case code.LD, code.ST, code.FLD, code.FST: // M-format: base+disp12 only
		fp := op == code.FLD || op == code.FST
		if fp {
			in.Sz = []uint8{4, 8}[szSel%2]
		} else {
			in.Sz = []uint8{1, 4, 8}[szSel%3]
		}
		in.HasMem = true
		in.Mem.Base = reg(base)
		in.Mem.Disp = ((disp%0x1000)+0x1000)%0x1000 - 0x800
		if op == code.LD || op == code.FLD {
			in.Dst = reg(dst)
		} else {
			in.Src1 = reg(dst)
		}
		return in, true

	case code.MOV:
		in.Sz = []uint8{1, 4, 8}[szSel%3]
		in.Dst = reg(dst)
		if hasImm {
			in.HasImm = true
			if in.Sz == 1 {
				in.Imm = clamp(-128, 255)
			} else {
				in.Imm = clamp(-0x8000, 0x7fff)
			}
		} else {
			in.Src1 = reg(srcb)
		}
		return in, true

	case code.MOVSX:
		in.Sz = []uint8{1, 4}[szSel%2]
		in.Dst, in.Src1 = reg(dst), reg(srcb)
		return in, true

	case code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
		code.ADC, code.SBB, code.SHL, code.SHR, code.SAR: // destructive int ALU
		in.Sz = []uint8{1, 4, 8}[szSel%3]
		in.Dst = reg(dst)
		in.Src1 = in.Dst // two-address discipline
		if hasImm {
			in.HasImm = true
			switch {
			case op == code.SHL || op == code.SHR || op == code.SAR:
				in.Imm = clamp(0, int64(in.Sz)*8-1)
			case op == code.AND || op == code.OR || op == code.XOR:
				if in.Sz == 1 {
					in.Imm = clamp(0, 255)
				} else {
					in.Imm = clamp(0, 0xffff)
				}
			case in.Sz == 1:
				in.Imm = clamp(-128, 255)
			default:
				in.Imm = clamp(-0x8000, 0x7fff)
			}
		} else {
			in.Src2 = reg(srcb)
		}
		return in, true

	case code.FADD, code.FSUB, code.FMUL, code.FDIV: // destructive FP ALU
		in.Sz = []uint8{4, 8}[szSel%2]
		in.Dst = reg(dst)
		in.Src1 = in.Dst
		in.Src2 = reg(srcb)
		return in, true

	case code.CMP, code.TEST:
		in.Sz = []uint8{1, 4, 8}[szSel%3]
		in.Src1 = reg(dst)
		if hasImm {
			in.HasImm = true
			switch {
			case op == code.TEST && in.Sz == 1:
				in.Imm = clamp(0, 255)
			case op == code.TEST:
				in.Imm = clamp(0, 0xffff)
			case in.Sz == 1:
				in.Imm = clamp(-128, 255)
			default:
				in.Imm = clamp(-0x8000, 0x7fff)
			}
		} else {
			in.Src2 = reg(srcb)
		}
		return in, true

	case code.FCMP:
		in.Sz = []uint8{4, 8}[szSel%2]
		in.Src1, in.Src2 = reg(dst), reg(srcb)
		return in, true

	case code.SETCC:
		in.Sz = 1
		in.Dst, in.CC = reg(dst), cc
		return in, true

	case code.CMOVCC:
		in.Sz = []uint8{1, 4, 8}[szSel%3]
		in.Dst, in.Src1, in.CC = reg(dst), reg(srcb), cc
		return in, true

	case code.FMOV:
		in.Sz = []uint8{4, 8}[szSel%2]
		in.Dst, in.Src1 = reg(dst), reg(srcb)
		return in, true

	case code.CVTIF, code.CVTFI:
		in.Sz = []uint8{4, 8}[szSel%2]
		in.Dst, in.Src1 = reg(dst), reg(srcb)
		return in, true
	}
	return code.Instr{}, false
}

func retInstr() code.Instr {
	return code.Instr{Op: code.RET, Src1: 0, Dst: code.NoReg, Src2: code.NoReg,
		Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
}

// sanitize maps arbitrary fuzz bytes onto an instruction that is legal for
// the permissive feature set (full x86, 64-bit, depth 64, full predication),
// mirroring the operand rules in internal/check. It reports false for the
// shapes the superset ISA has no encoding for at all (branches need real
// targets; they are covered by the compiled-program tests).
func sanitize(opb, dst, src1, src2, pred, base, index, szSel, scaleSel, flags byte, imm int64, disp int32) (code.Instr, bool) {
	op := code.Op(opb) % (code.VRSUM + 1)
	if op.IsBranch() {
		return code.Instr{}, false
	}
	in := code.Instr{Op: op, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}

	// Operand size per op class (imm rule: vectors are 16-byte, scalars not).
	switch {
	case op.IsVector():
		in.Sz = 16
	case op == code.FMOV:
		in.Sz = []uint8{4, 8, 16}[szSel%3]
	case op.IsFP() || op == code.FST || op == code.FCMP || op == code.CVTFI:
		in.Sz = []uint8{4, 8}[szSel%2]
	default:
		in.Sz = []uint8{1, 4, 8}[szSel%3]
	}

	// Registers: xmm numbers stay under FPRegs()=16, integer numbers under
	// depth 64; mod 16 satisfies both without tracking per-op classes.
	in.Dst = code.Reg(dst % 16)
	in.Src1 = code.Reg(src1 % 16)
	in.Src2 = code.Reg(src2 % 16)
	if src1 == 0xff {
		in.Src1 = code.NoReg
	}
	if src2 == 0xff {
		in.Src2 = code.NoReg
	}
	if pred != 0xff && !op.IsBranch() {
		in.Pred = code.Reg(pred % 64)
	} else {
		in.Pred = code.NoReg
	}

	hasImm := flags&1 != 0
	hasMem := flags&2 != 0 && memLegal(op)
	// Dedicated memory ops are meaningless without their memory operand.
	switch op {
	case code.LD, code.ST, code.FLD, code.FST, code.VLD, code.VST, code.LEA:
		hasMem = true
	}
	if hasMem {
		hasImm = false // the encoding carries a displacement or an immediate, not both
		in.HasMem = true
		in.Mem.Scale = []uint8{1, 2, 4, 8}[scaleSel%4]
		if base != 0xff {
			in.Mem.Base = code.Reg(base % 64)
			if index != 0xff {
				in.Mem.Index = code.Reg(index % 64)
			}
		}
		// Absolute addressing cannot carry an index (struct rule), and only
		// positive addresses are mapped; keep the spill area out of reach so
		// the synthesized access never aliases allocator slots.
		in.Mem.Disp = disp
		if in.Mem.Base == code.NoReg {
			in.Mem.Index = code.NoReg
			if in.Mem.Disp < 0 {
				in.Mem.Disp = -in.Mem.Disp
			}
			in.Mem.Disp %= code.SpillBase
		}
	}
	if hasImm {
		in.HasImm = true
		in.Src2 = code.NoReg // imm and a second register source are exclusive
		switch {
		case op == code.SHL || op == code.SHR || op == code.SAR:
			bits := int64(in.Sz) * 8
			in.Imm = ((imm % bits) + bits) % bits
		case op == code.MOV && in.Sz == 8:
			in.Imm = imm // movabs carries a full imm64
		default:
			lo, hi := int64(-1)<<31, int64(1)<<32-1
			switch in.Sz {
			case 8:
				hi = 1<<31 - 1
			case 1:
				lo, hi = -128, 255
			}
			span := hi - lo + 1
			in.Imm = lo + (((imm-lo)%span)+span)%span
		}
	}
	return in, true
}

// memLegal mirrors internal/check's list of ops the executor implements a
// memory operand for.
func memLegal(op code.Op) bool {
	switch op {
	case code.LD, code.ST, code.FLD, code.FST, code.VLD, code.VST, code.LEA,
		code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
		code.ADC, code.SBB, code.CMP, code.TEST, code.CMOVCC,
		code.FADD, code.FSUB, code.FMUL, code.FDIV,
		code.VADDF, code.VSUBF, code.VMULF, code.VADDI, code.VSUBI, code.VMULI:
		return true
	}
	return false
}
