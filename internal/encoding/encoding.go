// Package encoding implements the superset ISA's variable-length x86-style
// instruction encoding (Figure 3): legacy/REX/REXBC/predicate prefixes,
// opcode, ModRM, SIB, displacement and immediate fields. It computes
// instruction lengths, lays programs out in memory (with branch relaxation
// between rel8 and rel32 forms), and synthesizes encoded bytes. Instruction
// addresses drive the I-cache and micro-op-cache models; instruction lengths
// drive the instruction-length-decoder (ILD) model.
package encoding

import (
	"fmt"

	"compisa/internal/code"
	"compisa/internal/isa"
)

// regBits returns the REX/REXBC class (0, 1, 2) required by the instruction's
// register numbers: r8-r15 need the REX prefix, r16-r63 the 2-byte REXBC.
func regClass(in *code.Instr) int {
	cls := 0
	upd := func(r code.Reg) {
		if r == code.NoReg {
			return
		}
		c := isa.RegPrefixClass(int(r))
		if c > cls {
			cls = c
		}
	}
	upd(in.Dst)
	upd(in.Src1)
	upd(in.Src2)
	if in.HasMem {
		upd(in.Mem.Base)
		upd(in.Mem.Index)
	}
	upd(in.Pred)
	return cls
}

func fitsInt8(v int64) bool { return v >= -128 && v <= 127 }

// BaseLength returns the encoded length of the instruction excluding any
// branch displacement (branches add 1 or 4 bytes depending on reach), under
// the backward-compatible x86 encoding.
func BaseLength(in *code.Instr) int { return BaseLengthStyle(in, false) }

// BaseLengthStyle computes the encoded length under either the x86-
// compatible encoding (compact=false) or the hypothetical from-scratch
// superset encoding (compact=true), which folds the REXBC and predicate
// prefixes into single bytes.
func BaseLengthStyle(in *code.Instr, compact bool) int {
	n := 0

	// Prefixes.
	switch regClass(in) {
	case 1:
		n++ // REX
	case 2:
		if compact {
			n++ // single-byte wide-register prefix
		} else {
			n += 2 // REXBC (0xd6 marker + payload byte)
		}
	default:
		// REX.W is still required for 64-bit operand size even when
		// all registers encode without extension bits.
		if in.Sz == 8 && !in.Op.IsFP() {
			n++
		}
	}
	if in.Predicated() {
		if compact {
			n++ // single-byte predicate prefix
		} else {
			n += isa.PredicatePrefixBytes // 0xf1 marker + predicate byte
		}
	}

	// Opcode.
	switch in.Op {
	case code.SETCC, code.CMOVCC:
		n += 2 // 0F 9x / 0F 4x
	case code.JCC:
		n++ // rel8 form 7x; rel32 form 0F 8x handled by the caller
	case code.FMOV, code.FLD, code.FST, code.FADD, code.FSUB, code.FMUL,
		code.FDIV, code.FCMP, code.CVTIF, code.CVTFI:
		n += 3 // F3/F2 prefix + 0F + opcode
	case code.VLD, code.VST, code.VADDF, code.VSUBF, code.VMULF:
		n += 2 // 0F + opcode (packed single)
	case code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
		n += 3 // 66 + 0F + opcode (packed integer / shuffles)
	default:
		n++ // single-byte opcode
	}

	// ModRM for anything with register or memory operands.
	switch in.Op {
	case code.JMP, code.RET, code.NOP:
	case code.JCC:
	default:
		n++
	}

	// SIB when an index register participates.
	if in.HasMem && in.Mem.Index != code.NoReg {
		n++
	}

	// Displacement. Absolute (base-less) addressing always carries a
	// 32-bit displacement.
	if in.HasMem {
		switch {
		case in.Mem.Base == code.NoReg:
			n += 4
		case in.Mem.Disp != 0 && fitsInt8(int64(in.Mem.Disp)):
			n++
		case in.Mem.Disp != 0:
			n += 4
		}
	}

	// Immediate.
	if in.HasImm {
		switch {
		case in.Op == code.SHL || in.Op == code.SHR || in.Op == code.SAR:
			n++ // shift counts are imm8
		case in.Op == code.MOV && in.Sz == 8 && (in.Imm > 0x7fffffff || in.Imm < -0x80000000):
			n += 8 // movabs imm64
		case fitsInt8(in.Imm):
			n++ // sign-extended imm8 ALU forms
		default:
			n += 4
		}
	}
	return n
}

// MaxInstrLen bounds any encodable instruction (prefixes + opcode + modrm +
// sib + disp32 + imm64).
const MaxInstrLen = 20

// Layout assigns byte addresses to every instruction of the program under
// its target's encoding, filling p.PC, p.Size, and p.Base.
func Layout(p *code.Program, base uint32) error {
	return ForProgram(p).Layout(p, base)
}

// layoutX86 lays a program out under the variable-length x86 encoding,
// relaxing branch displacements: it starts with every branch in its short
// rel8 form and grows branches that cannot reach their targets until a fixed
// point.
func layoutX86(p *code.Program, base uint32) error {
	n := len(p.Instrs)
	long := make([]bool, n) // branch needs rel32
	lens := make([]int, n)
	p.PC = make([]uint32, n)
	for iter := 0; ; iter++ {
		if iter > n+2 {
			return fmt.Errorf("encoding: layout of %s did not converge", p.Name)
		}
		pc := base
		for i := range p.Instrs {
			in := &p.Instrs[i]
			l := BaseLengthStyle(in, p.CompactEncoding)
			switch in.Op {
			case code.JCC:
				if long[i] {
					l += 4 + 1 // rel32 + second opcode byte (0F 8x)
				} else {
					l++ // rel8
				}
			case code.JMP:
				if long[i] {
					l += 4
				} else {
					l++
				}
			}
			p.PC[i] = pc
			lens[i] = l
			pc += uint32(l)
		}
		p.Size = int(pc - base)
		grew := false
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if (in.Op != code.JCC && in.Op != code.JMP) || long[i] {
				continue
			}
			next := int64(p.PC[i]) + int64(lens[i])
			delta := int64(p.PC[in.Target]) - next
			if !fitsInt8(delta) {
				long[i] = true
				grew = true
			}
		}
		if !grew {
			p.Base = base
			return nil
		}
	}
}

// Length returns the final encoded length of instruction i of a laid-out
// program.
func Length(p *code.Program, i int) int {
	if i+1 < len(p.PC) {
		return int(p.PC[i+1] - p.PC[i])
	}
	return p.Size - int(p.PC[i]-p.Base)
}
