package encoding

import (
	"compisa/internal/code"
	"compisa/internal/isa"
)

// Coder is the byte-level backend of one guest-ISA target: layout,
// instruction encoding, and length (boundary) decoding. The x86 coder wraps
// this package's variable-length encoder and instruction-length decoder;
// the alpha64 coder implements the fixed 32-bit word format. Package-level
// Layout/Image/Length dispatch on Program.Target through ForProgram, so
// every existing call site follows the program's target automatically.
type Coder interface {
	// Target returns the descriptor of the target this coder implements.
	Target() *isa.Target
	// Layout assigns byte addresses to the program (fills PC, Size, Base).
	Layout(p *code.Program, base uint32) error
	// EncodeInstr encodes one instruction; length is its laid-out length.
	EncodeInstr(in *code.Instr, length int, compact bool) ([]byte, error)
	// DecodeLength parses the instruction at the start of buf and returns
	// its encoded length. For one-step-decode targets this only validates
	// the word — the length is known without a length-decode stage.
	DecodeLength(buf []byte, compact bool) (int, error)
	// InstrLen returns instruction i's final encoded length in a laid-out
	// program — the seam Predecode consumes.
	InstrLen(p *code.Program, i int) int
	// MaxLen bounds any encodable instruction's length.
	MaxLen() int
}

// InstrDecoder is implemented by targets whose single decode step recovers
// the full instruction, not just its length (fixed-length targets). The
// conformance verifier uses it for a full encode → decode → compare round
// trip: Normalize gives the canonical form the word format preserves
// (profile hints and implied fields zeroed), which the decoded instruction
// must match exactly.
type InstrDecoder interface {
	DecodeInstr(buf []byte) (code.Instr, error)
	Normalize(in *code.Instr) code.Instr
}

type x86Coder struct{}

func (x86Coder) Target() *isa.Target                        { return &isa.X86Target }
func (x86Coder) Layout(p *code.Program, base uint32) error  { return layoutX86(p, base) }
func (x86Coder) InstrLen(p *code.Program, i int) int        { return Length(p, i) }
func (x86Coder) MaxLen() int                                { return MaxInstrLen }
func (x86Coder) EncodeInstr(in *code.Instr, length int, compact bool) ([]byte, error) {
	return EncodeInstr(in, length, compact)
}
func (x86Coder) DecodeLength(buf []byte, compact bool) (int, error) {
	return NewILD(compact).DecodeLength(buf)
}

var (
	coderX86     Coder = x86Coder{}
	coderAlpha64 Coder = alpha64Coder{}
)

// ForTarget resolves the coder for a target name ("" and "x86" are the
// default x86 encoding).
func ForTarget(name string) (Coder, error) {
	switch name {
	case "", "x86":
		return coderX86, nil
	case "alpha64":
		return coderAlpha64, nil
	}
	_, err := isa.ResolveTarget(name) // uniform error text
	return nil, err
}

// ForProgram returns the coder for the program's target. Unknown names fall
// back to the x86 coder; Program.Validate rejects them before any layout or
// execution, so the fallback only affects diagnostics on invalid programs.
func ForProgram(p *code.Program) Coder {
	if c, err := ForTarget(p.Target); err == nil {
		return c
	}
	return coderX86
}
