package encoding

import (
	"encoding/binary"
	"fmt"

	"compisa/internal/code"
	"compisa/internal/isa"
)

// alpha64: the fixed-length 32-bit RISC encoding standing in for the Alpha
// vendor ISA (Table II). Every instruction is one little-endian word:
//
//	[31:26] op      raw code.Op number
//	[25]    I       immediate-form flag
//	[24:22] sz      operand size code (0,1,2,4,8,16)
//	[21:0]  payload format-specific
//
// Payload formats (register fields are 5 bits — 32 integer / 16 FP regs):
//
//	R  a[21:17] b[16:12] c[11:7] cc[6:3]   register ops
//	I  reg[21:17] imm16[15:0]              sign- or zero-extended immediate
//	M  reg[21:17] base[16:12] disp12[11:0] loads/stores, base+disp only
//	B  cc[21:18] target18[17:0]            branches (raw instruction index,
//	                                       matching the x86 encoder's bytes)
//
// Two-address discipline is structural: ALU forms carry no first-source
// field, so decode reconstructs Src1 = Dst. There is no predicate field, no
// index/absolute addressing, and no vector encodings; wide constants are
// built by ld-imm splitting in the compiler (MOV/SHL/OR chains).
const (
	alpha64WordLen   = 4
	alpha64MaxTarget = 1<<18 - 1
)

// alpha64SzCodes maps operand sizes to the 3-bit sz field and back.
var alpha64SzCodes = [6]uint8{0, 1, 2, 4, 8, 16}

func alpha64SzCode(sz uint8) (uint32, error) {
	for c, s := range alpha64SzCodes {
		if s == sz {
			return uint32(c), nil
		}
	}
	return 0, fmt.Errorf("alpha64: unencodable operand size %d", sz)
}

// alpha64ZeroExtImm reports whether the op's immediate field is
// zero-extended (logical ops and shift counts); all others sign-extend.
func alpha64ZeroExtImm(op code.Op) bool {
	switch op {
	case code.AND, code.OR, code.XOR, code.TEST, code.SHL, code.SHR, code.SAR:
		return true
	}
	return false
}

func alpha64ImmOK(op code.Op, imm int64) bool {
	if alpha64ZeroExtImm(op) {
		return imm >= 0 && imm <= 0xffff
	}
	return imm >= -0x8000 && imm <= 0x7fff
}

func alpha64Reg(r code.Reg, fp bool, what string) (uint32, error) {
	lim := code.Reg(isa.Alpha64Target.IntRegs)
	if fp {
		lim = code.Reg(isa.Alpha64Target.FPRegs)
	}
	if r >= lim {
		return 0, fmt.Errorf("alpha64: %s register %d exceeds the register file", what, r)
	}
	return uint32(r), nil
}

// alpha64Encode encodes one instruction into its 32-bit word.
func alpha64Encode(in *code.Instr) (uint32, error) {
	if in.Predicated() {
		return 0, fmt.Errorf("alpha64: no predicate field")
	}
	if in.Op.IsVector() {
		return 0, fmt.Errorf("alpha64: no vector encodings")
	}
	szc, err := alpha64SzCode(in.Sz)
	if err != nil {
		return 0, err
	}
	w := uint32(in.Op)<<26 | szc<<22

	reg := func(slot uint, r code.Reg, fp bool, what string) error {
		v, err := alpha64Reg(r, fp, what)
		if err != nil {
			return err
		}
		w |= v << slot
		return nil
	}
	imm16 := func() error {
		if in.Src2 != code.NoReg {
			return fmt.Errorf("alpha64: both immediate and Src2")
		}
		if !alpha64ImmOK(in.Op, in.Imm) {
			return fmt.Errorf("alpha64: immediate %d exceeds 16 bits", in.Imm)
		}
		w |= 1 << 25
		w |= uint32(uint16(in.Imm))
		return nil
	}
	cc4 := func(slot uint) error {
		if in.CC > 0xf {
			return fmt.Errorf("alpha64: condition code %d exceeds 4 bits", in.CC)
		}
		w |= uint32(in.CC) << slot
		return nil
	}

	switch op := in.Op; op {
	case code.NOP:
		return w, nil

	case code.LD, code.ST, code.FLD, code.FST: // M-format
		if !in.HasMem {
			return 0, fmt.Errorf("alpha64: %v without memory operand", op)
		}
		m := in.Mem
		if m.Base == code.NoReg {
			return 0, fmt.Errorf("alpha64: no absolute addressing")
		}
		if m.Index != code.NoReg {
			return 0, fmt.Errorf("alpha64: no indexed addressing")
		}
		if m.Disp < -0x800 || m.Disp > 0x7ff {
			return 0, fmt.Errorf("alpha64: displacement %d exceeds 12 bits", m.Disp)
		}
		r, fp := in.Dst, op == code.FLD
		if op == code.ST || op == code.FST {
			r, fp = in.Src1, op == code.FST
		}
		if err := reg(17, r, fp, "data"); err != nil {
			return 0, err
		}
		if err := reg(12, m.Base, false, "base"); err != nil {
			return 0, err
		}
		w |= uint32(m.Disp) & 0xfff
		return w, nil

	case code.JCC, code.JMP: // B-format
		if in.Target < 0 || in.Target > alpha64MaxTarget {
			return 0, fmt.Errorf("alpha64: branch target %d exceeds 18 bits", in.Target)
		}
		if op == code.JCC {
			if err := cc4(18); err != nil {
				return 0, err
			}
		}
		w |= uint32(in.Target)
		return w, nil

	case code.RET:
		if err := reg(12, in.Src1, false, "result"); err != nil {
			return 0, err
		}
		return w, nil

	case code.MOV:
		if in.HasImm {
			if err := reg(17, in.Dst, false, "dst"); err != nil {
				return 0, err
			}
			if err := imm16(); err != nil {
				return 0, err
			}
			return w, nil
		}
		if err := reg(17, in.Dst, false, "dst"); err != nil {
			return 0, err
		}
		if err := reg(12, in.Src1, false, "src"); err != nil {
			return 0, err
		}
		return w, nil

	case code.MOVSX:
		if err := reg(17, in.Dst, false, "dst"); err != nil {
			return 0, err
		}
		return w, reg(12, in.Src1, false, "src")

	case code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
		code.ADC, code.SBB, code.SHL, code.SHR, code.SAR,
		code.FADD, code.FSUB, code.FMUL, code.FDIV: // two-address ALU
		if in.HasMem {
			return 0, fmt.Errorf("alpha64: %v with memory operand (load/store only)", op)
		}
		if in.Src1 != in.Dst {
			return 0, fmt.Errorf("alpha64: %v needs destructive form (dst=%d src1=%d)", op, in.Dst, in.Src1)
		}
		fp := op.IsFP()
		if err := reg(17, in.Dst, fp, "dst"); err != nil {
			return 0, err
		}
		if in.HasImm {
			if fp {
				return 0, fmt.Errorf("alpha64: FP op with immediate")
			}
			return w, imm16()
		}
		return w, reg(7, in.Src2, fp, "src2")

	case code.CMP, code.TEST, code.FCMP: // flag producers: a=Src1 c=Src2
		fp := op == code.FCMP
		if in.HasMem {
			return 0, fmt.Errorf("alpha64: %v with memory operand (load/store only)", op)
		}
		if err := reg(17, in.Src1, fp, "src1"); err != nil {
			return 0, err
		}
		if in.HasImm {
			if fp {
				return 0, fmt.Errorf("alpha64: FP compare with immediate")
			}
			return w, imm16()
		}
		return w, reg(7, in.Src2, fp, "src2")

	case code.SETCC:
		if err := reg(17, in.Dst, false, "dst"); err != nil {
			return 0, err
		}
		return w, cc4(3)

	case code.CMOVCC:
		if in.HasMem {
			return 0, fmt.Errorf("alpha64: cmov with memory operand")
		}
		if err := reg(17, in.Dst, false, "dst"); err != nil {
			return 0, err
		}
		if err := reg(12, in.Src1, false, "src"); err != nil {
			return 0, err
		}
		return w, cc4(3)

	case code.FMOV:
		if err := reg(17, in.Dst, true, "dst"); err != nil {
			return 0, err
		}
		return w, reg(12, in.Src1, true, "src")

	case code.CVTIF:
		if err := reg(17, in.Dst, true, "dst"); err != nil {
			return 0, err
		}
		return w, reg(12, in.Src1, false, "src")

	case code.CVTFI:
		if err := reg(17, in.Dst, false, "dst"); err != nil {
			return 0, err
		}
		return w, reg(12, in.Src1, true, "src")
	}
	return 0, fmt.Errorf("alpha64: unencodable op %v", in.Op)
}

// alpha64DecodeWord decodes one word into its canonical instruction form.
func alpha64DecodeWord(w uint32) (code.Instr, error) {
	op := code.Op(w >> 26 & 0x3f)
	if op > code.VRSUM {
		return code.Instr{}, fmt.Errorf("alpha64: unknown opcode %d", op)
	}
	szc := w >> 22 & 0x7
	if int(szc) >= len(alpha64SzCodes) {
		return code.Instr{}, fmt.Errorf("alpha64: bad size code %d", szc)
	}
	in := code.Instr{
		Op: op, Sz: alpha64SzCodes[szc],
		Dst: code.NoReg, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg,
	}
	hasImm := w>>25&1 == 1
	a := code.Reg(w >> 17 & 0x1f)
	b := code.Reg(w >> 12 & 0x1f)
	c := code.Reg(w >> 7 & 0x1f)
	rcc := code.CC(w >> 3 & 0xf)
	decImm := func() {
		in.HasImm = true
		if alpha64ZeroExtImm(op) {
			in.Imm = int64(w & 0xffff)
		} else {
			in.Imm = int64(int16(w & 0xffff))
		}
	}

	switch op {
	case code.NOP:
	case code.LD, code.ST, code.FLD, code.FST:
		in.HasMem = true
		in.Mem = code.Mem{Base: b, Index: code.NoReg, Scale: 1, Disp: int32(w&0xfff) << 20 >> 20}
		if op == code.ST || op == code.FST {
			in.Src1 = a
		} else {
			in.Dst = a
		}
	case code.JCC, code.JMP:
		in.Target = int32(w & 0x3ffff)
		if op == code.JCC {
			in.CC = code.CC(w >> 18 & 0xf)
		}
	case code.RET:
		in.Src1 = b
	case code.MOV:
		in.Dst = a
		if hasImm {
			decImm()
		} else {
			in.Src1 = b
		}
	case code.MOVSX, code.FMOV, code.CVTIF, code.CVTFI:
		in.Dst, in.Src1 = a, b
	case code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
		code.ADC, code.SBB, code.SHL, code.SHR, code.SAR,
		code.FADD, code.FSUB, code.FMUL, code.FDIV:
		in.Dst, in.Src1 = a, a // two-address: first source is implied
		if hasImm {
			decImm()
		} else {
			in.Src2 = c
		}
	case code.CMP, code.TEST, code.FCMP:
		in.Src1 = a
		if hasImm {
			decImm()
		} else {
			in.Src2 = c
		}
	case code.SETCC:
		in.Dst, in.CC = a, rcc
	case code.CMOVCC:
		in.Dst, in.Src1, in.CC = a, b, rcc
	default:
		return code.Instr{}, fmt.Errorf("alpha64: undecodable op %v", op)
	}
	return in, nil
}

// Alpha64Normalize returns the canonical form the alpha64 word round-trips:
// fields the encoding does not carry (profile hints, implied first sources,
// unused slots) forced to their decoded values. Programs whose instructions
// differ from their normalization in a semantically meaningful way are
// rejected by alpha64Encode or the target legality rules instead.
func Alpha64Normalize(in *code.Instr) code.Instr {
	q := *in
	q.TakenProb = 0
	if !q.Predicated() {
		q.Pred, q.PredSense = code.NoReg, false
	}
	if q.Op != code.JCC && q.Op != code.JMP {
		q.Target = 0
	}
	if q.Op != code.JCC && q.Op != code.SETCC && q.Op != code.CMOVCC {
		q.CC = 0
	}
	if q.HasMem {
		q.Mem.Index, q.Mem.Scale = code.NoReg, 1
	} else {
		q.Mem = code.Mem{}
	}
	if !q.HasImm {
		q.Imm = 0
	}
	if q.Op.TwoAddress() {
		q.Src1 = q.Dst
	}
	if q.Op == code.MOV && q.HasImm {
		q.Src1 = code.NoReg
	}
	if q.HasImm {
		q.Src2 = code.NoReg
	}
	return q
}

type alpha64Coder struct{}

func (alpha64Coder) Target() *isa.Target { return &isa.Alpha64Target }

func (alpha64Coder) Layout(p *code.Program, base uint32) error {
	n := len(p.Instrs)
	if n > alpha64MaxTarget {
		return fmt.Errorf("alpha64: program %s has %d instructions, exceeding branch reach", p.Name, n)
	}
	p.PC = make([]uint32, n)
	for i := range p.Instrs {
		p.PC[i] = base + uint32(alpha64WordLen*i)
	}
	p.Size = alpha64WordLen * n
	p.Base = base
	return nil
}

func (alpha64Coder) EncodeInstr(in *code.Instr, length int, compact bool) ([]byte, error) {
	if length != alpha64WordLen {
		return nil, fmt.Errorf("alpha64: layout says %d bytes for a %d-byte word", length, alpha64WordLen)
	}
	w, err := alpha64Encode(in)
	if err != nil {
		return nil, err
	}
	var out [alpha64WordLen]byte
	binary.LittleEndian.PutUint32(out[:], w)
	return out[:], nil
}

// DecodeLength is the one-step decoder: a fixed-length word needs no
// length-decode stage, so this only validates that the word decodes.
func (alpha64Coder) DecodeLength(buf []byte, compact bool) (int, error) {
	if len(buf) < alpha64WordLen {
		return 0, fmt.Errorf("alpha64: truncated word (%d bytes)", len(buf))
	}
	if _, err := alpha64DecodeWord(binary.LittleEndian.Uint32(buf)); err != nil {
		return 0, err
	}
	return alpha64WordLen, nil
}

func (alpha64Coder) DecodeInstr(buf []byte) (code.Instr, error) {
	if len(buf) < alpha64WordLen {
		return code.Instr{}, fmt.Errorf("alpha64: truncated word (%d bytes)", len(buf))
	}
	return alpha64DecodeWord(binary.LittleEndian.Uint32(buf))
}

func (alpha64Coder) Normalize(in *code.Instr) code.Instr { return Alpha64Normalize(in) }

func (alpha64Coder) InstrLen(p *code.Program, i int) int { return alpha64WordLen }
func (alpha64Coder) MaxLen() int                         { return alpha64WordLen }
