package encoding

import (
	"fmt"

	"compisa/internal/code"
)

// ILD models the parallel instruction-length decoder of Section V.B
// ([109]): it parses raw bytes — prefixes, opcode, ModRM, SIB, displacement,
// immediate — and marks instruction boundaries, consuming fixed-width fetch
// chunks per cycle. The customizations the paper adds (REXBC and predicate
// prefixes) appear here as extra decode cases, exactly the "comparators that
// generate extra decode signals" of the RTL discussion.
type ILD struct {
	// ChunkBytes is the fetch-chunk width processed per cycle (8 in the
	// paper's RTL, 16 in modern parts).
	ChunkBytes int
	// Compact selects the greenfield single-byte prefix forms.
	Compact bool
}

// NewILD returns an ILD with the paper's 8-byte chunks.
func NewILD(compact bool) *ILD { return &ILD{ChunkBytes: 8, Compact: compact} }

// DecodeLength parses one instruction at the start of buf and returns its
// encoded length. It is the pure length-calculation function the eight
// decode subunits implement.
func (d *ILD) DecodeLength(buf []byte) (int, error) {
	i := 0
	escaped := false
	sawPred, sawRexbc := false, false

	// Prefix phase.
prefixes:
	for {
		if i >= len(buf) {
			return 0, fmt.Errorf("ild: ran out of bytes in prefixes")
		}
		switch b := buf[i]; {
		case b == bREXBC && !d.Compact && !sawRexbc:
			i += 2 // marker + payload
			sawRexbc = true
		case b == bREXBCSlim && d.Compact && !sawRexbc:
			i++
			sawRexbc = true
		case b == bPred && !d.Compact && !sawPred:
			i += 2
			sawPred = true
		case b == bPredSlim && d.Compact && !sawPred:
			i++
			sawPred = true
		case b >= rexBase && b < rexBase+16:
			i++
		case b == bPrefix66 || b == bPrefixF2 || b == bPrefixF3:
			i++
		case b == bEscape:
			escaped = true
			i++
			break prefixes
		default:
			break prefixes
		}
	}

	// Opcode phase.
	if i >= len(buf) {
		return 0, fmt.Errorf("ild: missing opcode")
	}
	opByte := buf[i]
	i++
	var op code.Op
	var ic byte
	if escaped {
		ic = opByte >> immClassSh & 0x3
		o, ok := escOpFromIndex[opByte&0x1f]
		if !ok {
			return 0, fmt.Errorf("ild: unknown escaped opcode %#x", opByte)
		}
		op = o
	} else {
		if opByte&opcodeFlag == 0 {
			return 0, fmt.Errorf("ild: byte %#x is not an opcode", opByte)
		}
		ic = opByte >> immClassSh & 0x3
		o, ok := intOpFromIndex[opByte&0x1f]
		if !ok {
			return 0, fmt.Errorf("ild: unknown opcode %#x", opByte)
		}
		op = o
	}

	// ModRM / SIB / displacement phase.
	if hasModRM(op) {
		if i >= len(buf) {
			return 0, fmt.Errorf("ild: missing modrm")
		}
		modrm := buf[i]
		i++
		mod := modrm >> 6
		rm := modrm & 0x7
		if mod != 0b11 {
			if rm == 0b100 {
				i++ // SIB
			}
			switch {
			case mod == 0b01:
				i++
			case mod == 0b10:
				i += 4
			case mod == 0 && rm == 0b101:
				i += 4 // absolute disp32
			}
		}
	}

	// Immediate / branch displacement phase.
	switch op {
	case code.JCC, code.JMP:
		if ic >= 2 {
			i += 4
		} else {
			i++
		}
	default:
		i += immBytes(ic)
	}
	if i > len(buf) {
		return 0, fmt.Errorf("ild: instruction overruns buffer")
	}
	return i, nil
}

// MarkResult is the outcome of scanning a code image.
type MarkResult struct {
	// Boundaries are the byte offsets where instructions begin.
	Boundaries []int
	// Cycles is the number of fetch-chunk cycles the scan consumed: one
	// per ChunkBytes, plus one extra whenever an instruction straddles
	// into the next chunk (the "overflow into the next chunk" case the
	// instruction-marker unit detects).
	Cycles int
	// Straddles counts chunk-crossing instructions.
	Straddles int
}

// Mark scans a whole code image, marking every instruction boundary — the
// instruction-marker unit of the ILD.
func (d *ILD) Mark(img []byte) (*MarkResult, error) {
	res := &MarkResult{}
	off := 0
	for off < len(img) {
		res.Boundaries = append(res.Boundaries, off)
		n, err := d.DecodeLength(img[off:])
		if err != nil {
			return nil, fmt.Errorf("at offset %d: %w", off, err)
		}
		if off/d.ChunkBytes != (off+n-1)/d.ChunkBytes {
			res.Straddles++
		}
		off += n
	}
	res.Cycles = (len(img)+d.ChunkBytes-1)/d.ChunkBytes + res.Straddles
	return res, nil
}
