package encoding

import (
	"testing"
	"testing/quick"

	"compisa/internal/code"
	"compisa/internal/isa"
)

func ilen(in code.Instr) int { return BaseLength(&in) }

func TestRegisterPrefixCosts(t *testing.T) {
	// add r1, r2 (low regs, 32-bit): opcode + modrm = 2 bytes.
	base := ilen(code.Instr{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: code.NoReg})
	if base != 2 {
		t.Errorf("low-register add = %d bytes, want 2", base)
	}
	// REX register (r9) adds one byte.
	rex := ilen(code.Instr{Op: code.ADD, Sz: 4, Dst: 9, Src1: 9, Src2: 2, Pred: code.NoReg})
	if rex != base+1 {
		t.Errorf("REX add = %d, want %d", rex, base+1)
	}
	// REXBC register (r40) adds two bytes.
	rexbc := ilen(code.Instr{Op: code.ADD, Sz: 4, Dst: 40, Src1: 40, Src2: 2, Pred: code.NoReg})
	if rexbc != base+2 {
		t.Errorf("REXBC add = %d, want %d", rexbc, base+2)
	}
	// 64-bit operand size needs REX.W even for low registers.
	w := ilen(code.Instr{Op: code.ADD, Sz: 8, Dst: 1, Src1: 1, Src2: 2, Pred: code.NoReg})
	if w != base+1 {
		t.Errorf("REX.W add = %d, want %d", w, base+1)
	}
}

func TestPredicatePrefixCost(t *testing.T) {
	plain := ilen(code.Instr{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: code.NoReg})
	pred := ilen(code.Instr{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: 3, PredSense: true})
	if pred != plain+isa.PredicatePrefixBytes {
		t.Errorf("predicated add = %d, want %d", pred, plain+isa.PredicatePrefixBytes)
	}
}

func TestImmediateSizing(t *testing.T) {
	i8 := ilen(code.Instr{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, HasImm: true, Imm: 5, Src2: code.NoReg, Pred: code.NoReg})
	i32 := ilen(code.Instr{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, HasImm: true, Imm: 500, Src2: code.NoReg, Pred: code.NoReg})
	if i32 != i8+3 {
		t.Errorf("imm32 form = %d, imm8 form = %d, want +3", i32, i8)
	}
	movabs := ilen(code.Instr{Op: code.MOV, Sz: 8, Dst: 1, HasImm: true, Imm: 1 << 40, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg})
	if movabs < 10 {
		t.Errorf("movabs imm64 = %d bytes, want >= 10", movabs)
	}
}

func TestMemOperandSizing(t *testing.T) {
	plain := ilen(code.Instr{Op: code.LD, Sz: 4, Dst: 1, HasMem: true,
		Mem: code.Mem{Base: 2, Index: code.NoReg, Scale: 1}, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg})
	sib := ilen(code.Instr{Op: code.LD, Sz: 4, Dst: 1, HasMem: true,
		Mem: code.Mem{Base: 2, Index: 3, Scale: 4}, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg})
	if sib != plain+1 {
		t.Errorf("SIB must add 1 byte: %d vs %d", sib, plain)
	}
	d8 := ilen(code.Instr{Op: code.LD, Sz: 4, Dst: 1, HasMem: true,
		Mem: code.Mem{Base: 2, Index: code.NoReg, Scale: 1, Disp: 16}, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg})
	d32 := ilen(code.Instr{Op: code.LD, Sz: 4, Dst: 1, HasMem: true,
		Mem: code.Mem{Base: 2, Index: code.NoReg, Scale: 1, Disp: 4096}, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg})
	if d8 != plain+1 || d32 != plain+4 {
		t.Errorf("disp sizing: plain=%d d8=%d d32=%d", plain, d8, d32)
	}
}

func TestLayoutShortBranch(t *testing.T) {
	p := &code.Program{Name: "b", FS: isa.X8664, Instrs: []code.Instr{
		{Op: code.CMP, Sz: 4, Dst: code.NoReg, Src1: 1, Src2: 2, Pred: code.NoReg},
		{Op: code.JCC, CC: code.CCEQ, Target: 3, Dst: code.NoReg, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg},
		{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: code.NoReg},
		{Op: code.RET, Dst: code.NoReg, Src1: 1, Src2: code.NoReg, Pred: code.NoReg},
	}}
	if err := Layout(p, 0x1000); err != nil {
		t.Fatal(err)
	}
	// jcc over one small instruction must use the 2-byte rel8 form.
	if got := Length(p, 1); got != 2 {
		t.Errorf("short jcc = %d bytes, want 2", got)
	}
	if p.PC[0] != 0x1000 {
		t.Errorf("base address not honored: %#x", p.PC[0])
	}
}

func TestLayoutLongBranchRelaxation(t *testing.T) {
	instrs := []code.Instr{
		{Op: code.JMP, Target: 201, Dst: code.NoReg, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg},
	}
	for i := 0; i < 200; i++ {
		instrs = append(instrs, code.Instr{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: code.NoReg})
	}
	instrs = append(instrs, code.Instr{Op: code.RET, Dst: code.NoReg, Src1: 1, Src2: code.NoReg, Pred: code.NoReg})
	p := &code.Program{Name: "far", FS: isa.X8664, Instrs: instrs}
	if err := Layout(p, 0); err != nil {
		t.Fatal(err)
	}
	if got := Length(p, 0); got != 5 {
		t.Errorf("far jmp = %d bytes, want 5 (rel32)", got)
	}
	// Total size: 5 + 200*2 + 1.
	if p.Size != 5+400+1 {
		t.Errorf("size = %d", p.Size)
	}
}

func TestLayoutAddressesMonotonic(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%40) + 2
		var instrs []code.Instr
		for i := 0; i < n-1; i++ {
			instrs = append(instrs, code.Instr{Op: code.ADD, Sz: 4, Dst: code.Reg(i % 60), Src1: 1, Src2: 2, Pred: code.NoReg})
		}
		instrs = append(instrs, code.Instr{Op: code.RET, Dst: code.NoReg, Src1: 1, Src2: code.NoReg, Pred: code.NoReg})
		p := &code.Program{Name: "q", FS: isa.Superset, Instrs: instrs}
		if err := Layout(p, 64); err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if p.PC[i] <= p.PC[i-1] {
				return false
			}
			if Length(p, i-1) > MaxInstrLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesMatchLayout(t *testing.T) {
	p := &code.Program{Name: "img", FS: isa.Superset, Instrs: []code.Instr{
		{Op: code.MOV, Sz: 8, Dst: 20, HasImm: true, Imm: 7, Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg},
		{Op: code.ADD, Sz: 8, Dst: 20, Src1: 20, Src2: 21, Pred: 5, PredSense: true},
		{Op: code.RET, Dst: code.NoReg, Src1: 20, Src2: code.NoReg, Pred: code.NoReg},
	}}
	if err := Layout(p, 0); err != nil {
		t.Fatal(err)
	}
	img, err := Image(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != p.Size {
		t.Fatalf("image %d bytes, layout says %d", len(img), p.Size)
	}
	// REXBC marker must lead the first instruction (register 20 >= 16).
	if img[0] != 0xd6 {
		t.Errorf("first byte %#x, want REXBC marker 0xd6", img[0])
	}
}

func TestMicroX86CodeIsSmallerThanPrefixHeavySuperset(t *testing.T) {
	// The same logical op stream encoded with low registers vs REXBC-range
	// registers: register depth costs code bytes, which is why the
	// allocator prioritizes low registers.
	mk := func(reg code.Reg) *code.Program {
		var instrs []code.Instr
		for i := 0; i < 50; i++ {
			instrs = append(instrs, code.Instr{Op: code.ADD, Sz: 4, Dst: reg, Src1: reg, Src2: reg, Pred: code.NoReg})
		}
		instrs = append(instrs, code.Instr{Op: code.RET, Dst: code.NoReg, Src1: reg, Src2: code.NoReg, Pred: code.NoReg})
		return &code.Program{Name: "m", FS: isa.Superset, Instrs: instrs}
	}
	lo, hi := mk(3), mk(45)
	if err := Layout(lo, 0); err != nil {
		t.Fatal(err)
	}
	if err := Layout(hi, 0); err != nil {
		t.Fatal(err)
	}
	if lo.Size >= hi.Size {
		t.Errorf("low-register code (%dB) must be denser than REXBC code (%dB)", lo.Size, hi.Size)
	}
}

func TestCompactEncodingShrinksPrefixes(t *testing.T) {
	// A REXBC-register, predicated instruction: 2+2 prefix bytes under
	// x86 compatibility, 1+1 under the from-scratch superset encoding.
	in := code.Instr{Op: code.ADD, Sz: 4, Dst: 40, Src1: 40, Src2: 2, Pred: 5, PredSense: true}
	x86 := BaseLengthStyle(&in, false)
	compact := BaseLengthStyle(&in, true)
	if x86-compact != 2 {
		t.Errorf("compact encoding should save 2 bytes here: %d vs %d", x86, compact)
	}
	// Low-register unpredicated code is identical under both styles.
	plain := code.Instr{Op: code.ADD, Sz: 4, Dst: 1, Src1: 1, Src2: 2, Pred: code.NoReg}
	if BaseLengthStyle(&plain, false) != BaseLengthStyle(&plain, true) {
		t.Error("compact encoding must not change base-ISA instructions")
	}
}

func TestCompactLayoutSmaller(t *testing.T) {
	mk := func(compact bool) *code.Program {
		var instrs []code.Instr
		for i := 0; i < 60; i++ {
			instrs = append(instrs, code.Instr{Op: code.ADD, Sz: 4,
				Dst: 45, Src1: 45, Src2: 50, Pred: 3, PredSense: true})
		}
		instrs = append(instrs, code.Instr{Op: code.RET, Dst: code.NoReg, Src1: 1, Src2: code.NoReg, Pred: code.NoReg})
		return &code.Program{Name: "c", FS: isa.Superset, Instrs: instrs, CompactEncoding: compact}
	}
	a, b := mk(false), mk(true)
	if err := Layout(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := Layout(b, 0); err != nil {
		t.Fatal(err)
	}
	if b.Size >= a.Size {
		t.Errorf("compact layout must shrink prefix-heavy code: %d vs %d", b.Size, a.Size)
	}
}
