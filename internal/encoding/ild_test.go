package encoding_test

import (
	"testing"

	"compisa/internal/encoding"

	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

// TestILDRecoversLayoutLengths is the byte-level cross-validation: encode
// every instruction of real compiled programs, then let the ILD parse the
// raw bytes and recover exactly the lengths the layout assigned — for every
// feature set (REXBC/predicate prefixes included) and both encoding styles.
func TestILDRecoversLayoutLengths(t *testing.T) {
	regions := map[string]bool{"hmmer.0": true, "sjeng.0": true, "lbm.0": true, "mcf.0": true}
	var sample []workload.Region
	for _, r := range workload.Regions() {
		if regions[r.Name] {
			sample = append(sample, r)
		}
	}
	for _, compact := range []bool{false, true} {
		ild := encoding.NewILD(compact)
		for _, r := range sample {
			for _, fs := range isa.Derive() {
				f, _, err := r.Build(fs.Width)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := compiler.Compile(f, fs, compiler.Options{CompactEncoding: compact})
				if err != nil {
					t.Fatalf("%s for %s: %v", r.Name, fs.ShortName(), err)
				}
				img, err := encoding.Image(prog)
				if err != nil {
					t.Fatalf("%s for %s: %v", r.Name, fs.ShortName(), err)
				}
				if len(img) != prog.Size {
					t.Fatalf("%s for %s: image %d bytes, layout %d", r.Name, fs.ShortName(), len(img), prog.Size)
				}
				off := 0
				for i := range prog.Instrs {
					want := encoding.Length(prog, i)
					got, err := ild.DecodeLength(img[off:])
					if err != nil {
						t.Fatalf("%s for %s instr %d (%s): %v", r.Name, fs.ShortName(), i,
							code.FormatInstr(&prog.Instrs[i]), err)
					}
					if got != want {
						t.Fatalf("%s for %s instr %d (%s): ILD length %d, layout %d (compact=%v)",
							r.Name, fs.ShortName(), i, code.FormatInstr(&prog.Instrs[i]), got, want, compact)
					}
					off += got
				}
				if off != len(img) {
					t.Fatalf("%s for %s: parsed %d of %d bytes", r.Name, fs.ShortName(), off, len(img))
				}
			}
		}
	}
}

func TestILDMark(t *testing.T) {
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "bzip2.0" {
			reg = r
		}
	}
	f, _, err := reg.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.Superset, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := encoding.Image(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := encoding.NewILD(false).Mark(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boundaries) != len(prog.Instrs) {
		t.Fatalf("ILD marked %d instructions, program has %d", len(res.Boundaries), len(prog.Instrs))
	}
	for i, b := range res.Boundaries {
		if uint32(b) != prog.PC[i]-prog.Base {
			t.Fatalf("boundary %d at %d, layout at %d", i, b, prog.PC[i]-prog.Base)
		}
	}
	// Variable-length code must straddle chunk boundaries sometimes, and
	// each straddle costs a cycle.
	if res.Straddles == 0 {
		t.Error("variable-length code should straddle 8-byte chunks")
	}
	minCycles := (len(img) + 7) / 8
	if res.Cycles != minCycles+res.Straddles {
		t.Errorf("cycle accounting: %d != %d + %d", res.Cycles, minCycles, res.Straddles)
	}
}

func TestILDRejectsGarbage(t *testing.T) {
	ild := encoding.NewILD(false)
	if _, err := ild.DecodeLength([]byte{0x00}); err == nil {
		t.Error("byte 0x00 is not a valid opcode")
	}
	if _, err := ild.DecodeLength([]byte{0xD6}); err == nil {
		t.Error("truncated REXBC prefix must error")
	}
}
