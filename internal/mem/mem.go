// Package mem provides the sparse, paged, little-endian memory image shared
// by the IR interpreter, the machine-code functional executor, and the
// workload data initializers.
package mem

import "encoding/binary"

const (
	pageBits = 12
	// PageSize is the allocation granule of the sparse memory.
	PageSize = 1 << pageBits
	pageMask = PageSize - 1
)

// Memory is a sparse byte-addressable memory. The zero value is ready to
// use; unwritten bytes read as zero. Accesses may straddle page boundaries.
type Memory struct {
	pages map[uint64]*[PageSize]byte
	// one-entry lookaside to avoid a map hit per access
	lastBase uint64
	lastPage *[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

// Clone returns a deep copy, so destructive workloads can be re-run from the
// same initial image.
func (m *Memory) Clone() *Memory {
	c := New()
	for base, p := range m.pages {
		np := *p
		c.pages[base] = &np
	}
	return c
}

func (m *Memory) page(addr uint64) *[PageSize]byte {
	base := addr &^ uint64(pageMask)
	if m.lastPage != nil && base == m.lastBase {
		return m.lastPage
	}
	if m.pages == nil {
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	p := m.pages[base]
	if p == nil {
		p = new([PageSize]byte)
		m.pages[base] = p
	}
	m.lastBase, m.lastPage = base, p
	return p
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint64) byte {
	return m.page(addr)[addr&pageMask]
}

// Store8 stores b at addr.
func (m *Memory) Store8(addr uint64, b byte) {
	m.page(addr)[addr&pageMask] = b
}

// Read returns size (1, 2, 4, or 8) bytes at addr as a little-endian value.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := int(addr & pageMask)
	if off+size <= PageSize {
		p := m.page(addr)
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	// Straddles a page: assemble byte-wise.
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.Load8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size (1, 2, 4, or 8) bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := int(addr & pageMask)
	if off+size <= PageSize {
		p := m.page(addr)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.Store8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Read128 returns the 16 bytes at addr as two little-endian words (lo, hi).
func (m *Memory) Read128(addr uint64) (lo, hi uint64) {
	return m.Read(addr, 8), m.Read(addr+8, 8)
}

// Write128 stores 16 bytes at addr.
func (m *Memory) Write128(addr uint64, lo, hi uint64) {
	m.Write(addr, 8, lo)
	m.Write(addr+8, 8, hi)
}

// Pages returns the number of resident pages (for tests and stats).
func (m *Memory) Pages() int { return len(m.pages) }

// Alias maps the address range [base, base+len(buf)) onto buf: every page in
// the range becomes a view into buf, so reads and writes through Memory and
// direct accesses to buf observe the same bytes. Existing page contents are
// copied into buf first, so the aliasing is semantically invisible. base and
// len(buf) must be page-aligned.
//
// This is the coherence seam for the native-code executor (internal/jit):
// the JIT addresses buf directly while deoptimized interpreter steps go
// through Memory, and neither side ever needs an explicit sync.
func (m *Memory) Alias(base uint64, buf []byte) {
	if base&pageMask != 0 || len(buf)&pageMask != 0 {
		panic("mem: Alias range not page-aligned")
	}
	if m.pages == nil {
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	for off := 0; off < len(buf); off += PageSize {
		pb := base + uint64(off)
		view := (*[PageSize]byte)(buf[off : off+PageSize])
		if old := m.pages[pb]; old != nil && old != view {
			copy(view[:], old[:])
		}
		m.pages[pb] = view
	}
	// The lookaside may point at a replaced page.
	m.lastBase, m.lastPage = 0, nil
}

// Extent returns the exclusive end of the highest resident page within
// [lo, hi), or lo when no page in the range is resident (used to size
// aliasing windows).
func (m *Memory) Extent(lo, hi uint64) uint64 {
	end := lo
	for base := range m.pages {
		if base >= lo && base < hi && base+PageSize > end {
			end = base + PageSize
		}
	}
	return end
}
