package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if got := m.Read(0x1000, 8); got != 0 {
		t.Errorf("unwritten memory read %#x, want 0", got)
	}
}

func TestRoundTripSizes(t *testing.T) {
	m := New()
	for _, sz := range []int{1, 2, 4, 8} {
		addr := uint64(0x4000 + sz*16)
		want := uint64(0x1122334455667788)
		m.Write(addr, sz, want)
		mask := uint64(1)<<(8*sz) - 1
		if sz == 8 {
			mask = ^uint64(0)
		}
		if got := m.Read(addr, sz); got != want&mask {
			t.Errorf("size %d: got %#x want %#x", sz, got, want&mask)
		}
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // 8-byte access straddling first page
	want := uint64(0xdeadbeefcafef00d)
	m.Write(addr, 8, want)
	if got := m.Read(addr, 8); got != want {
		t.Errorf("straddling read got %#x want %#x", got, want)
	}
	if m.Pages() != 2 {
		t.Errorf("expected 2 resident pages, got %d", m.Pages())
	}
}

func TestLittleEndian(t *testing.T) {
	m := New()
	m.Write(0x100, 4, 0x04030201)
	for i := uint64(0); i < 4; i++ {
		if got := m.Load8(0x100 + i); got != byte(i+1) {
			t.Errorf("byte %d: got %d want %d", i, got, i+1)
		}
	}
}

func TestRead128(t *testing.T) {
	m := New()
	m.Write128(0x200, 0x1111111111111111, 0x2222222222222222)
	lo, hi := m.Read128(0x200)
	if lo != 0x1111111111111111 || hi != 0x2222222222222222 {
		t.Errorf("got %#x %#x", lo, hi)
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Write(0x300, 8, 42)
	c := m.Clone()
	c.Write(0x300, 8, 99)
	if m.Read(0x300, 8) != 42 {
		t.Error("clone aliases original")
	}
	if c.Read(0x300, 8) != 99 {
		t.Error("clone write lost")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr %= 1 << 40
		m.Write(addr, 8, v)
		return m.Read(addr, 8) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDisjointWrites(t *testing.T) {
	// Property: writing at a and reading at a+8 are independent.
	m := New()
	f := func(addr uint64, v1, v2 uint64) bool {
		addr %= 1 << 40
		m.Write(addr, 8, v1)
		m.Write(addr+8, 8, v2)
		return m.Read(addr, 8) == v1 && m.Read(addr+8, 8) == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
