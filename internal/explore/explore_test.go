package explore

import (
	"context"
	"sync"
	"testing"

	"compisa/internal/isa"
)

var (
	sharedOnce sync.Once
	sharedDB   *DB
	sharedS    *Searcher
	sharedErr  error
)

func searcher(t *testing.T) (*DB, *Searcher) {
	t.Helper()
	sharedOnce.Do(func() {
		sharedDB = NewDB()
		sharedS, sharedErr = NewSearcher(context.Background(), sharedDB)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedDB, sharedS
}

func TestConfigsSpace(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 180 {
		t.Fatalf("config space has %d entries, paper prunes to 180", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
		if seen[c.Name()] {
			t.Errorf("duplicate config %s", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestDesignPointCount(t *testing.T) {
	n := len(CompositeChoices()) * len(Configs())
	if n != 4680 {
		t.Fatalf("design space has %d points, paper sweeps 4680", n)
	}
}

func TestPowerAreaRanges(t *testing.T) {
	minA, maxA, minP, maxP := 1e9, 0.0, 1e9, 0.0
	for _, ch := range CompositeChoices() {
		for _, cfg := range Configs() {
			dp := DesignPoint{ISA: ch, Cfg: cfg}
			a, p := dp.Area(), dp.Peak()
			if a < minA {
				minA = a
			}
			if a > maxA {
				maxA = a
			}
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
	}
	// Paper: 4.8-23.4 W per core, 9.4-28.6 mm2. Calibration targets the
	// same span (per-core peak excludes the shared L2).
	if minA < 8 || minA > 11 || maxA < 25 || maxA > 33 {
		t.Errorf("area range %.1f-%.1f mm2 off the paper's 9.4-28.6", minA, maxA)
	}
	if minP < 3.8 || minP > 5.5 || maxP < 18 || maxP > 26 {
		t.Errorf("peak range %.1f-%.1f W off the paper's 4.8-23.4", minP, maxP)
	}
}

func TestOrganizationOrderingUnlimited(t *testing.T) {
	if testing.Short() {
		t.Skip("search suite in long mode only")
	}
	if raceEnabled {
		t.Skip("full-suite search too slow under the race detector; TestFault* covers concurrency")
	}
	_, s := searcher(t)
	scores := map[Organization]float64{}
	for _, org := range Organizations() {
		cmp, err := s.Search(context.Background(), org, ObjMPThroughput, Budget{})
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		scores[org] = cmp.Score
	}
	// The paper's headline ordering: composite-full >= hetero-vendor ~
	// composite-fixed > single-ISA hetero >= homogeneous.
	if scores[OrgCompositeFull] < scores[OrgHeteroVendor] {
		t.Errorf("composite-full (%.3f) must match/beat the vendor baseline (%.3f)",
			scores[OrgCompositeFull], scores[OrgHeteroVendor])
	}
	if scores[OrgCompositeFull] < scores[OrgSingleISAHetero]*1.05 {
		t.Errorf("composite-full (%.3f) must clearly beat single-ISA heterogeneity (%.3f)",
			scores[OrgCompositeFull], scores[OrgSingleISAHetero])
	}
	if scores[OrgSingleISAHetero] < scores[OrgHomogeneous] {
		t.Errorf("hardware heterogeneity must not lose to homogeneous")
	}
	if scores[OrgCompositeFixed] < scores[OrgSingleISAHetero] {
		t.Errorf("x86-ized fixed sets (%.3f) must beat single-ISA (%.3f)",
			scores[OrgCompositeFixed], scores[OrgSingleISAHetero])
	}
}

func TestSearchRespectsBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("search suite in long mode only")
	}
	if raceEnabled {
		t.Skip("full-suite search too slow under the race detector; TestFault* covers concurrency")
	}
	_, s := searcher(t)
	cmp, err := s.Search(context.Background(), OrgCompositeFull, ObjMPThroughput, Budget{PeakW: 40})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TotalPeak() > 40 {
		t.Errorf("40W budget violated: %.1fW", cmp.TotalPeak())
	}
	cmp2, err := s.Search(context.Background(), OrgCompositeFull, ObjMPThroughput, Budget{AreaMM2: 48})
	if err != nil {
		t.Fatal(err)
	}
	if cmp2.TotalArea() > 48 {
		t.Errorf("48mm2 budget violated: %.1fmm2", cmp2.TotalArea())
	}
	// Single-thread budgets constrain the single powered core.
	st, err := s.Search(context.Background(), OrgCompositeFull, ObjSTPerf, Budget{PeakW: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range st.Cores {
		if c.PeakW > 10 {
			t.Errorf("ST 10W budget violated by core at %.1fW", c.PeakW)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("search suite in long mode only")
	}
	_, s := searcher(t)
	a, err := s.Search(context.Background(), OrgCompositeFixed, ObjMPThroughput, Budget{AreaMM2: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Search(context.Background(), OrgCompositeFixed, ObjMPThroughput, Budget{AreaMM2: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("search nondeterministic: %.6f vs %.6f", a.Score, b.Score)
	}
}

func TestSec3DeltaSigns(t *testing.T) {
	db, _ := searcher(t)
	d, err := Sec3CodegenDeltas(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if d.DepthLoadsPct <= 0 || d.DepthStoresPct <= 0 {
		t.Errorf("halving register depth must add spill traffic: loads %+.1f%% stores %+.1f%%",
			d.DepthLoadsPct, d.DepthStoresPct)
	}
	if d.PredBranchPct >= 0 {
		t.Errorf("full predication must remove branches: %+.1f%%", d.PredBranchPct)
	}
	if d.PredInstrPct <= 0 {
		t.Errorf("if-conversion must add dynamic micro-ops: %+.1f%%", d.PredInstrPct)
	}
	if d.MicroMemRefPct <= 0 || d.MicroUopPct <= 0 {
		t.Errorf("microx86-8D must expand memory refs and micro-ops: %+.1f%% / %+.1f%%",
			d.MicroMemRefPct, d.MicroUopPct)
	}
	if d.SupersetLoadsPct >= 0 {
		t.Errorf("superset must eliminate loads vs x86-64: %+.1f%%", d.SupersetLoadsPct)
	}
	if d.SupersetBranchPct >= 0 {
		t.Errorf("superset must eliminate branches vs x86-64: %+.1f%%", d.SupersetBranchPct)
	}
}

func TestFig2Shape(t *testing.T) {
	db, _ := searcher(t)
	f, err := Fig2InstructionMix(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range f.MicroX86 {
		if f.X8664[i].Uops != 1.0 {
			t.Errorf("baseline must normalize to 1.0")
		}
		if row.Uops < 1.0 {
			t.Errorf("%s: microx86-8D should not shrink the micro-op count (%.2f)", row.Benchmark, row.Uops)
		}
	}
	// hmmer is the register-pressure benchmark: its microx86-8D load
	// expansion should be visible.
	for _, row := range f.MicroX86 {
		if row.Benchmark == "hmmer" && row.Loads < 1.02 {
			t.Errorf("hmmer under depth 8 should show refill loads: %.2f", row.Loads)
		}
	}
}

func TestVendorProfilesApplyTraits(t *testing.T) {
	db, _ := searcher(t)
	thumb := VendorChoices()[2]
	if thumb.Vendor.Name != "Thumb" {
		t.Fatalf("unexpected vendor order")
	}
	tp, err := db.Profiles(context.Background(), thumb)
	if err != nil {
		t.Fatal(err)
	}
	xp, err := db.Profiles(context.Background(), ISAChoice{FS: thumb.FS})
	if err != nil {
		t.Fatal(err)
	}
	denser := 0
	for i := range tp {
		if tp[i].CodeBytes < xp[i].CodeBytes {
			denser++
		}
	}
	if denser < len(tp)*9/10 {
		t.Errorf("Thumb code density must shrink code footprints (%d/%d)", denser, len(tp))
	}
}

func TestScheduleMPInstrumentation(t *testing.T) {
	if testing.Short() {
		t.Skip("search suite in long mode only")
	}
	if raceEnabled {
		t.Skip("full-suite search too slow under the race detector; TestFault* covers concurrency")
	}
	db, s := searcher(t)
	cmp, err := s.Search(context.Background(), OrgCompositeFull, ObjMPThroughput, Budget{AreaMM2: 64})
	if err != nil {
		t.Fatal(err)
	}
	si := newSuiteIndex(db.Regions)
	st := si.scheduleMP(&cmp.Cores, db.Regions, nil)
	if st.Steps == 0 || st.Throughput <= 0 {
		t.Fatal("schedule produced no steps")
	}
	if len(st.TimeByBenchCore) != 8 {
		t.Errorf("schedule must visit all 8 benchmarks, got %d", len(st.TimeByBenchCore))
	}
	if st.Throughput > cmp.Score*1.0001 || st.Throughput < cmp.Score*0.9999 {
		t.Errorf("instrumented schedule (%.4f) must match the scoring schedule (%.4f)",
			st.Throughput, cmp.Score)
	}
}

func TestFig9ConstraintsCover(t *testing.T) {
	cs := Fig9Constraints()
	if len(cs) != 10 {
		t.Fatalf("Figure 9 has 10 constrained searches, got %d", len(cs))
	}
	// Each constraint must keep at least one feature set.
	for _, fc := range cs {
		kept := 0
		for _, fs := range isa.Derive() {
			c := &Candidate{DP: DesignPoint{ISA: ISAChoice{FS: fs}}}
			if fc.Keep(c) {
				kept++
			}
		}
		if kept == 0 {
			t.Errorf("constraint %q keeps no feature sets", fc.Name)
		}
	}
}

func TestReferenceMetrics(t *testing.T) {
	db, _ := searcher(t)
	ref, err := db.ReferenceMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 49 {
		t.Fatalf("reference metrics for %d regions", len(ref))
	}
	for i, m := range ref {
		if m.Cycles <= 0 || m.Energy <= 0 {
			t.Errorf("region %d: degenerate reference %+v", i, m)
		}
	}
}
