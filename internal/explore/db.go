package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/fault"
	"compisa/internal/perfmodel"
	"compisa/internal/power"
	"compisa/internal/workload"
)

// maxRegionInstrs bounds each region's functional execution.
const maxRegionInstrs = 40_000_000

// runawayInstrs is the tiny instruction budget applied under an injected
// runaway fault: far below any region's real dynamic count, so the
// instruction-budget watchdog fires through the ordinary execution path.
const runawayInstrs = 10_000

// Policy tunes the evaluation pipeline's fault handling. The zero value
// selects the defaults documented per field.
type Policy struct {
	// MaxAttempts bounds evaluation attempts per (region, ISA) pair
	// (default 3). Only transient faults are retried.
	MaxAttempts int
	// Backoff is the delay before the first retry, doubled on each
	// subsequent attempt (default 1ms).
	Backoff time.Duration
	// SpeedupPenalty is the speedup recorded for a quarantined (region,
	// ISA) pair (default 0.25): the pair scores as running 4x slower than
	// the reference, so searches steer away from — but survive — failures.
	SpeedupPenalty float64
	// EDPPenalty is the normalized EDP recorded for a quarantined pair
	// (default 4.0, the EDP dual of SpeedupPenalty).
	EDPPenalty float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.SpeedupPenalty <= 0 {
		p.SpeedupPenalty = 0.25
	}
	if p.EDPPenalty <= 0 {
		p.EDPPenalty = 4.0
	}
	return p
}

// DB caches per-(region, ISA) profiles and evaluates design points against
// the whole workload suite. All methods are safe for concurrent use after
// construction.
//
// Failure model: a failing (region, ISA) evaluation is retried (bounded, with
// backoff) while it looks transient, then quarantined — its profile slot
// stays nil and every design point using that ISA scores the region at the
// documented Policy penalties instead of aborting the run. The x86-64
// reference ISA is exempt from injection and strict about failures, because
// a failed reference would invalidate every normalized metric.
type DB struct {
	Regions []workload.Region

	// Inject deterministically injects faults into non-reference profile
	// evaluations (nil = no injection).
	Inject *fault.Injector
	// Policy tunes retries and degradation penalties.
	Policy Policy
	// Log, if set, receives fault-tolerance events (retries, quarantines,
	// degraded evaluations).
	Log func(format string, args ...any)

	mu         sync.Mutex
	profiles   map[string][]*cpu.Profile // ISA key -> per-region profiles (nil slot = quarantined)
	inflight   map[string]*inflightProfiles
	quarantine map[string]string // "region|isaKey" -> reason
}

// inflightProfiles is one in-progress per-ISA profile computation; duplicate
// callers wait on done instead of recomputing (per-key singleflight).
type inflightProfiles struct {
	done chan struct{}
	ps   []*cpu.Profile
	err  error
}

// NewDB builds an evaluation database over the full 49-region suite.
func NewDB() *DB {
	return &DB{
		Regions:    workload.Regions(),
		profiles:   map[string][]*cpu.Profile{},
		inflight:   map[string]*inflightProfiles{},
		quarantine: map[string]string{},
	}
}

func (db *DB) logf(format string, args ...any) {
	if db.Log != nil {
		db.Log(format, args...)
	}
}

// isReference reports whether a choice is the normalization baseline
// (plain x86-64): exempt from fault injection and strict about failures.
func isReference(c ISAChoice) bool {
	return c.Vendor == nil && c.Key() == X8664Choice().Key()
}

func pairKey(region, isaKey string) string { return region + "|" + isaKey }

// isCtxErr reports whether err stems from context cancellation or deadline
// expiry (the two failures graceful degradation must not swallow).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Profiles returns (computing on first use) the per-region profiles for an
// ISA choice. Vendor choices reuse their x86-ized feature set's compiled
// code, then apply the vendor's code-density traits. Quarantined (region,
// ISA) pairs yield nil slots; see Evaluate for how they are scored.
// Concurrent callers for the same ISA share one computation.
func (db *DB) Profiles(ctx context.Context, c ISAChoice) ([]*cpu.Profile, error) {
	key := c.Key()
	db.mu.Lock()
	if ps, ok := db.profiles[key]; ok {
		db.mu.Unlock()
		return ps, nil
	}
	if call, ok := db.inflight[key]; ok {
		db.mu.Unlock()
		select {
		case <-call.done:
			return call.ps, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &inflightProfiles{done: make(chan struct{})}
	db.inflight[key] = call
	db.mu.Unlock()

	ps, err := db.computeProfiles(ctx, c)
	db.mu.Lock()
	if err == nil {
		db.profiles[key] = ps
	}
	delete(db.inflight, key)
	db.mu.Unlock()
	call.ps, call.err = ps, err
	close(call.done)
	return ps, err
}

// computeProfiles profiles every region for one ISA in parallel, applying
// the retry/quarantine policy.
func (db *DB) computeProfiles(ctx context.Context, c ISAChoice) ([]*cpu.Profile, error) {
	ps := make([]*cpu.Profile, len(db.Regions))
	errs := make([]error, len(db.Regions))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range db.Regions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ps[i], errs[i] = db.profileWithRetry(ctx, db.Regions[i], c)
		}(i)
	}
	wg.Wait()
	strict := isReference(c)
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if strict {
			return nil, fmt.Errorf("explore: reference ISA failed (all normalized metrics depend on it): %w", err)
		}
	}
	// Quarantine only once the set is known to complete, so a canceled or
	// reference-failed computation leaves no partial quarantine entries.
	for i, err := range errs {
		if err == nil {
			continue
		}
		key := pairKey(db.Regions[i].Name, c.Key())
		db.mu.Lock()
		db.quarantine[key] = err.Error()
		db.mu.Unlock()
		db.logf("explore: quarantined %s: %v", key, err)
		ps[i] = nil
	}
	return ps, nil
}

// profileWithRetry runs one (region, ISA) evaluation with bounded retries
// for transient faults.
func (db *DB) profileWithRetry(ctx context.Context, r workload.Region, c ISAChoice) (*cpu.Profile, error) {
	pol := db.Policy.withDefaults()
	var err error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			db.logf("explore: retrying %s for %s (attempt %d): %v", r.Name, c.Key(), attempt+1, err)
			t := time.NewTimer(pol.Backoff << (attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		var p *cpu.Profile
		p, err = db.profileOnce(ctx, r, c, attempt)
		if err == nil {
			return p, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !fault.IsTransient(err) {
			return nil, err
		}
	}
	return nil, err
}

// profileOnce is one attempt at profiling (region, ISA): build, compile,
// execute, vendor-adjust. Injected faults are applied here so they exercise
// the real failure paths (compiler error return, watchdog, decode error).
// A panic anywhere in the attempt is recovered into a *fault.Error.
func (db *DB) profileOnce(ctx context.Context, r workload.Region, c ISAChoice, attempt int) (p *cpu.Profile, err error) {
	key := pairKey(r.Name, c.Key())
	defer func() {
		if rec := recover(); rec != nil {
			p = nil
			err = &fault.Error{
				Stage: fault.StageExec, Region: r.Name, ISA: c.Key(),
				Err: fmt.Errorf("recovered panic: %v", rec),
			}
		}
	}()
	var d fault.Decision
	if !isReference(c) {
		d = db.Inject.Decide(key, attempt)
	}
	// classify wraps an organic or injected failure into the taxonomy;
	// injected failures inherit the decision's transience.
	classify := func(stage fault.Stage, cause error) error {
		transient := d.Kind != fault.KindNone && d.Transient
		var fe *fault.Error
		if errors.As(cause, &fe) {
			return cause
		}
		return &fault.Error{Stage: stage, Region: r.Name, ISA: c.Key(), Transient: transient, Err: cause}
	}
	if d.Delay > 0 {
		// KindSlow delays without failing, exercising deadline handling.
		t := time.NewTimer(d.Delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	f, m, err := r.Build(c.FS.Width)
	if err != nil {
		return nil, classify(fault.StageCompile, err)
	}
	copts := compiler.Options{}
	if d.Kind == fault.KindCompile {
		copts.FaultHook = func() error { return d.Errorf() }
	}
	prog, err := compiler.Compile(f, c.FS, copts)
	if err != nil {
		return nil, classify(fault.StageCompile, err)
	}
	prog.Name = r.Name
	ropts := cpu.RunOptions{MaxInstrs: maxRegionInstrs, Interrupt: ctx.Err}
	switch d.Kind {
	case fault.KindRunaway:
		ropts.MaxInstrs = runawayInstrs
	case fault.KindCorrupt:
		// An opcode outside the ISA: decode hits ErrUnimplementedOp on the
		// first executed instruction, through the real decode path.
		prog.Instrs[0].Op = 0xEF
	}
	p, _, err = cpu.CollectProfileOpts(prog, m, ropts)
	if err != nil {
		if d.Kind == fault.KindRunaway || d.Kind == fault.KindCorrupt {
			err = fmt.Errorf("%w: %w", fault.ErrInjected, err)
		}
		return nil, classify(fault.StageExec, err)
	}
	if c.Vendor != nil {
		p = vendorAdjust(p, c)
	}
	return p, nil
}

// vendorAdjust applies a vendor ISA's encoding traits to a profile built
// from its x86-ized equivalent: code density scales the static and dynamic
// code footprint (Thumb: 0.70), which shifts I-cache misses and micro-op
// cache reach; fixed-length decode is handled by the power model.
func vendorAdjust(p *cpu.Profile, c ISAChoice) *cpu.Profile {
	v := c.Vendor
	q := *p
	q.CodeBytes = int(float64(p.CodeBytes) * v.CodeDensity)
	q.AvgInstrLen = p.AvgInstrLen * v.CodeDensity
	for i := range q.Mem {
		for d := range q.Mem[i] {
			for l := range q.Mem[i][d] {
				m := p.Mem[i][d][l]
				m.L1IMisses = int64(float64(m.L1IMisses) * v.CodeDensity)
				q.Mem[i][d][l] = m
			}
		}
	}
	// Denser code covers more of the micro-op cache's reach.
	if v.CodeDensity < 1 {
		q.UopCacheHitRate = p.UopCacheHitRate + (1-p.UopCacheHitRate)*(1-v.CodeDensity)
	}
	return &q
}

// QuarantinedPair is one excluded (region, ISA) evaluation.
type QuarantinedPair struct {
	Region, ISA, Reason string
}

// Coverage summarizes evaluation completeness over every (region, ISA) pair
// attempted so far.
type Coverage struct {
	Evaluated, Total int
	Quarantined      []QuarantinedPair
}

func (c Coverage) String() string {
	return fmt.Sprintf("%d/%d profiles evaluated, %d quarantined", c.Evaluated, c.Total, len(c.Quarantined))
}

// Coverage reports how many (region, ISA) profiles were evaluated versus
// quarantined, with the quarantine list in deterministic order.
func (db *DB) Coverage() Coverage {
	db.mu.Lock()
	defer db.mu.Unlock()
	cov := Coverage{Total: len(db.profiles) * len(db.Regions)}
	for key, reason := range db.quarantine {
		region, isaKey, _ := strings.Cut(key, "|")
		cov.Quarantined = append(cov.Quarantined, QuarantinedPair{Region: region, ISA: isaKey, Reason: reason})
	}
	sort.Slice(cov.Quarantined, func(i, j int) bool {
		a, b := cov.Quarantined[i], cov.Quarantined[j]
		if a.ISA != b.ISA {
			return a.ISA < b.ISA
		}
		return a.Region < b.Region
	})
	cov.Evaluated = cov.Total - len(cov.Quarantined)
	return cov
}

// exportState copies the profile cache and quarantine list for
// checkpointing.
func (db *DB) exportState() (map[string][]*cpu.Profile, map[string]string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ps := make(map[string][]*cpu.Profile, len(db.profiles))
	for k, v := range db.profiles {
		ps[k] = v
	}
	q := make(map[string]string, len(db.quarantine))
	for k, v := range db.quarantine {
		q[k] = v
	}
	return ps, q
}

// importState seeds the caches from a checkpoint. Existing entries win so a
// live computation is never clobbered.
func (db *DB) importState(profiles map[string][]*cpu.Profile, quarantine map[string]string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for k, v := range profiles {
		if _, ok := db.profiles[k]; !ok && len(v) == len(db.Regions) {
			db.profiles[k] = v
		}
	}
	for k, v := range quarantine {
		if _, ok := db.quarantine[k]; !ok {
			db.quarantine[k] = v
		}
	}
}

// Metric is the evaluated outcome of one region on one design point.
type Metric struct {
	Cycles float64
	Energy float64 // joules
	Perf   perfmodel.Result
}

// Candidate is a fully evaluated single-core design point.
type Candidate struct {
	DP      DesignPoint
	AreaMM2 float64
	PeakW   float64
	// Per-region metrics, indexed like DB.Regions.
	M []Metric
	// Speedup[r] = reference cycles / candidate cycles for region r.
	Speedup []float64
	// NormEDP[r] = candidate E*D / reference E*D.
	NormEDP []float64
	// Degraded[r] marks regions scored at the Policy penalties because the
	// (region, ISA) pair is quarantined (or its model evaluation failed).
	Degraded []bool
}

// MeanSpeedup is the arithmetic-mean speedup across regions (region weights
// applied by the schedulers, not here).
func (c *Candidate) MeanSpeedup() float64 {
	s := 0.0
	for _, v := range c.Speedup {
		s += v
	}
	return s / float64(len(c.Speedup))
}

// ReferenceConfig is the normalization core: the largest out-of-order
// configuration with 64KB caches and the 8MB L2.
func ReferenceConfig() cpu.CoreConfig {
	return cpu.CoreConfig{
		OoO: true, Width: 4, Predictor: cpu.PredTournament,
		IQ: 64, ROB: 128, PRFInt: 192, PRFFP: 160,
		IntALU: 6, IntMul: 2, FPALU: 4, LSQ: 32,
		L1I: cpu.L1Cfg64k, L1D: cpu.L1Cfg64k, L2: cpu.L2Cfg8M,
		UopCache: true, Fusion: true,
	}
}

// Evaluate computes a candidate for one design point, normalized against the
// reference metrics (see ReferenceMetrics). Quarantined regions degrade to
// the Policy penalties (Speedup = SpeedupPenalty, NormEDP = EDPPenalty, with
// Cycles/Energy back-derived from the reference) instead of failing; with a
// nil ref (the reference evaluation itself) any failure is an error.
func (db *DB) Evaluate(ctx context.Context, dp DesignPoint, ref []Metric) (*Candidate, error) {
	ps, err := db.Profiles(ctx, dp.ISA)
	if err != nil {
		return nil, err
	}
	pol := db.Policy.withDefaults()
	n := len(db.Regions)
	c := &Candidate{
		DP:       dp,
		AreaMM2:  dp.Area(),
		PeakW:    dp.Peak(),
		M:        make([]Metric, n),
		Speedup:  make([]float64, n),
		NormEDP:  make([]float64, n),
		Degraded: make([]bool, n),
	}
	tr := dp.ISA.Traits()
	degrade := func(r int) {
		c.Degraded[r] = true
		c.Speedup[r] = pol.SpeedupPenalty
		c.NormEDP[r] = pol.EDPPenalty
		// Back-derive placeholder metrics consistent with the penalties:
		// D = refD/SpeedupPenalty and E*D = EDPPenalty*refE*refD.
		c.M[r] = Metric{
			Cycles: ref[r].Cycles / pol.SpeedupPenalty,
			Energy: ref[r].Energy * pol.EDPPenalty * pol.SpeedupPenalty,
		}
	}
	for r := 0; r < n; r++ {
		if ps[r] == nil {
			if ref == nil {
				return nil, fmt.Errorf("explore: reference region %s unavailable", db.Regions[r].Name)
			}
			degrade(r)
			continue
		}
		perf, err := perfmodel.Cycles(ps[r], dp.Cfg)
		if err != nil {
			merr := fault.Wrap(fault.StageModel, db.Regions[r].Name, dp.ISA.Key(), err)
			if ref == nil {
				return nil, merr
			}
			db.logf("explore: degrading %s on %s: %v", db.Regions[r].Name, dp, merr)
			degrade(r)
			continue
		}
		en := power.Energy(tr, dp.Cfg, ps[r], perf)
		c.M[r] = Metric{Cycles: perf.Cycles, Energy: en.Total, Perf: perf}
		if ref != nil {
			c.Speedup[r] = ref[r].Cycles / perf.Cycles
			c.NormEDP[r] = (en.Total * perf.Cycles) / (ref[r].Energy * ref[r].Cycles)
		}
	}
	return c, nil
}

// ReferenceMetrics evaluates the normalization core (x86-64 on the reference
// configuration) over all regions. It is strict: the reference ISA is
// injection-exempt, and any failure here is fatal because every normalized
// metric depends on it.
func (db *DB) ReferenceMetrics(ctx context.Context) ([]Metric, error) {
	dp := DesignPoint{ISA: X8664Choice(), Cfg: ReferenceConfig()}
	c, err := db.Evaluate(ctx, dp, nil)
	if err != nil {
		return nil, err
	}
	return c.M, nil
}

// Candidates evaluates every (ISA choice, configuration) pair, in parallel.
func (db *DB) Candidates(ctx context.Context, choices []ISAChoice, cfgs []cpu.CoreConfig, ref []Metric) ([]*Candidate, error) {
	// Ensure profiles exist (parallel inside Profiles).
	for _, c := range choices {
		if _, err := db.Profiles(ctx, c); err != nil {
			return nil, err
		}
	}
	jobs := make([]DesignPoint, 0, len(choices)*len(cfgs))
	for _, ch := range choices {
		for _, cfg := range cfgs {
			jobs = append(jobs, DesignPoint{ISA: ch, Cfg: cfg})
		}
	}
	results := make([]*Candidate, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = db.Evaluate(ctx, jobs[i], ref)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
