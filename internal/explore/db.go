package explore

import (
	"fmt"
	"runtime"
	"sync"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/perfmodel"
	"compisa/internal/power"
	"compisa/internal/workload"
)

// maxRegionInstrs bounds each region's functional execution.
const maxRegionInstrs = 40_000_000

// DB caches per-(region, ISA) profiles and evaluates design points against
// the whole workload suite. All methods are safe for concurrent use after
// construction.
type DB struct {
	Regions []workload.Region

	mu       sync.Mutex
	profiles map[string][]*cpu.Profile // ISA key -> per-region profiles
}

// NewDB builds an evaluation database over the full 49-region suite.
func NewDB() *DB {
	return &DB{Regions: workload.Regions(), profiles: map[string][]*cpu.Profile{}}
}

// Profiles returns (computing on first use) the per-region profiles for an
// ISA choice. Vendor choices reuse their x86-ized feature set's compiled
// code, then apply the vendor's code-density traits.
func (db *DB) Profiles(c ISAChoice) ([]*cpu.Profile, error) {
	key := c.Key()
	db.mu.Lock()
	if ps, ok := db.profiles[key]; ok {
		db.mu.Unlock()
		return ps, nil
	}
	db.mu.Unlock()

	ps := make([]*cpu.Profile, len(db.Regions))
	errs := make([]error, len(db.Regions))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range db.Regions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ps[i], errs[i] = profileRegion(db.Regions[i], c)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	db.mu.Lock()
	db.profiles[key] = ps
	db.mu.Unlock()
	return ps, nil
}

func profileRegion(r workload.Region, c ISAChoice) (*cpu.Profile, error) {
	f, m := r.Build(c.FS.Width)
	prog, err := compiler.Compile(f, c.FS, compiler.Options{})
	if err != nil {
		return nil, fmt.Errorf("profile %s for %s: %v", r.Name, c.Key(), err)
	}
	prog.Name = r.Name
	p, _, err := cpu.CollectProfile(prog, m, maxRegionInstrs)
	if err != nil {
		return nil, fmt.Errorf("profile %s for %s: %v", r.Name, c.Key(), err)
	}
	if c.Vendor != nil {
		p = vendorAdjust(p, c)
	}
	return p, nil
}

// vendorAdjust applies a vendor ISA's encoding traits to a profile built
// from its x86-ized equivalent: code density scales the static and dynamic
// code footprint (Thumb: 0.70), which shifts I-cache misses and micro-op
// cache reach; fixed-length decode is handled by the power model.
func vendorAdjust(p *cpu.Profile, c ISAChoice) *cpu.Profile {
	v := c.Vendor
	q := *p
	q.CodeBytes = int(float64(p.CodeBytes) * v.CodeDensity)
	q.AvgInstrLen = p.AvgInstrLen * v.CodeDensity
	for i := range q.Mem {
		for d := range q.Mem[i] {
			for l := range q.Mem[i][d] {
				m := p.Mem[i][d][l]
				m.L1IMisses = int64(float64(m.L1IMisses) * v.CodeDensity)
				q.Mem[i][d][l] = m
			}
		}
	}
	// Denser code covers more of the micro-op cache's reach.
	if v.CodeDensity < 1 {
		q.UopCacheHitRate = p.UopCacheHitRate + (1-p.UopCacheHitRate)*(1-v.CodeDensity)
	}
	return &q
}

// Metric is the evaluated outcome of one region on one design point.
type Metric struct {
	Cycles float64
	Energy float64 // joules
	Perf   perfmodel.Result
}

// Candidate is a fully evaluated single-core design point.
type Candidate struct {
	DP      DesignPoint
	AreaMM2 float64
	PeakW   float64
	// Per-region metrics, indexed like DB.Regions.
	M []Metric
	// Speedup[r] = reference cycles / candidate cycles for region r.
	Speedup []float64
	// NormEDP[r] = candidate E*D / reference E*D.
	NormEDP []float64
}

// MeanSpeedup is the arithmetic-mean speedup across regions (region weights
// applied by the schedulers, not here).
func (c *Candidate) MeanSpeedup() float64 {
	s := 0.0
	for _, v := range c.Speedup {
		s += v
	}
	return s / float64(len(c.Speedup))
}

// ReferenceConfig is the normalization core: the largest out-of-order
// configuration with 64KB caches and the 8MB L2.
func ReferenceConfig() cpu.CoreConfig {
	return cpu.CoreConfig{
		OoO: true, Width: 4, Predictor: cpu.PredTournament,
		IQ: 64, ROB: 128, PRFInt: 192, PRFFP: 160,
		IntALU: 6, IntMul: 2, FPALU: 4, LSQ: 32,
		L1I: cpu.L1Cfg64k, L1D: cpu.L1Cfg64k, L2: cpu.L2Cfg8M,
		UopCache: true, Fusion: true,
	}
}

// Evaluate computes a candidate for one design point, normalized against the
// reference metrics (see ReferenceMetrics).
func (db *DB) Evaluate(dp DesignPoint, ref []Metric) (*Candidate, error) {
	ps, err := db.Profiles(dp.ISA)
	if err != nil {
		return nil, err
	}
	n := len(db.Regions)
	c := &Candidate{
		DP:      dp,
		AreaMM2: dp.Area(),
		PeakW:   dp.Peak(),
		M:       make([]Metric, n),
		Speedup: make([]float64, n),
		NormEDP: make([]float64, n),
	}
	tr := dp.ISA.Traits()
	for r := 0; r < n; r++ {
		perf, err := perfmodel.Cycles(ps[r], dp.Cfg)
		if err != nil {
			return nil, err
		}
		en := power.Energy(tr, dp.Cfg, ps[r], perf)
		c.M[r] = Metric{Cycles: perf.Cycles, Energy: en.Total, Perf: perf}
		if ref != nil {
			c.Speedup[r] = ref[r].Cycles / perf.Cycles
			c.NormEDP[r] = (en.Total * perf.Cycles) / (ref[r].Energy * ref[r].Cycles)
		}
	}
	return c, nil
}

// ReferenceMetrics evaluates the normalization core (x86-64 on the reference
// configuration) over all regions.
func (db *DB) ReferenceMetrics() ([]Metric, error) {
	dp := DesignPoint{ISA: X8664Choice(), Cfg: ReferenceConfig()}
	c, err := db.Evaluate(dp, nil)
	if err != nil {
		return nil, err
	}
	return c.M, nil
}

// Candidates evaluates every (ISA choice, configuration) pair, in parallel.
func (db *DB) Candidates(choices []ISAChoice, cfgs []cpu.CoreConfig, ref []Metric) ([]*Candidate, error) {
	// Ensure profiles exist (parallel inside Profiles).
	for _, c := range choices {
		if _, err := db.Profiles(c); err != nil {
			return nil, err
		}
	}
	out := make([]*Candidate, 0, len(choices)*len(cfgs))
	type job struct{ dp DesignPoint }
	jobs := make([]job, 0, len(choices)*len(cfgs))
	for _, ch := range choices {
		for _, cfg := range cfgs {
			jobs = append(jobs, job{DesignPoint{ISA: ch, Cfg: cfg}})
		}
	}
	results := make([]*Candidate, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = db.Evaluate(jobs[i].dp, ref)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out = append(out, results...)
	return out, nil
}
