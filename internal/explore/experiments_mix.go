package explore

import (
	"context"
	"fmt"
	"strings"

	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

// MixRow is one benchmark's dynamic micro-op mix under one feature set,
// normalized to the x86-64 baseline (Figure 2).
type MixRow struct {
	Benchmark string
	// Normalized dynamic counts (x86-64 = 1.0).
	Loads, Stores, Int, Branch, FP, Uops float64
}

// Fig2Result is the Figure 2 reproduction: instruction-mix rows for
// microx86-32 (depth 8), x86-64+SSE, and the superset ISA.
type Fig2Result struct {
	MicroX86 []MixRow
	X8664    []MixRow
	Superset []MixRow
}

// classCounts aggregates weighted dynamic counts per benchmark.
type classCounts struct {
	loads, stores, ints, branches, fp, uops float64
}

func mixFor(ctx context.Context, db *DB, c ISAChoice) (map[string]classCounts, error) {
	ps, err := db.Profiles(ctx, c)
	if err != nil {
		return nil, err
	}
	out := map[string]classCounts{}
	for i, r := range db.Regions {
		p := ps[i]
		if p == nil {
			continue // quarantined pair: excluded from the mix
		}
		cc := out[r.Benchmark]
		w := r.Weight
		cc.loads += w * float64(p.UopsByClass[cpu.UcLoad])
		cc.stores += w * float64(p.UopsByClass[cpu.UcStore])
		cc.ints += w * float64(p.UopsByClass[cpu.UcInt]+p.UopsByClass[cpu.UcMul])
		cc.branches += w * float64(p.UopsByClass[cpu.UcBranch])
		cc.fp += w * float64(p.UopsByClass[cpu.UcFP]+p.UopsByClass[cpu.UcFDiv])
		cc.uops += w * float64(p.Uops)
		out[r.Benchmark] = cc
	}
	return out, nil
}

func normalizeMix(num, den map[string]classCounts) []MixRow {
	var rows []MixRow
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	for _, b := range workload.Names() {
		n, d := num[b], den[b]
		rows = append(rows, MixRow{
			Benchmark: b,
			Loads:     ratio(n.loads, d.loads),
			Stores:    ratio(n.stores, d.stores),
			Int:       ratio(n.ints, d.ints),
			Branch:    ratio(n.branches, d.branches),
			FP:        ratio(n.fp, d.fp),
			Uops:      ratio(n.uops, d.uops),
		})
	}
	return rows
}

// Fig2InstructionMix reproduces Figure 2: the dynamic micro-op breakdown of
// the smallest feature set (microx86-8D-32W), x86-64+SSE, and the superset
// ISA, normalized to x86-64.
func Fig2InstructionMix(ctx context.Context, db *DB) (*Fig2Result, error) {
	base, err := mixFor(ctx, db, X8664Choice())
	if err != nil {
		return nil, err
	}
	micro, err := mixFor(ctx, db, ISAChoice{FS: isa.MicroX86Min})
	if err != nil {
		return nil, err
	}
	super, err := mixFor(ctx, db, ISAChoice{FS: isa.Superset})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		MicroX86: normalizeMix(micro, base),
		X8664:    normalizeMix(base, base),
		Superset: normalizeMix(super, base),
	}, nil
}

// Format renders the figure as text.
func (f *Fig2Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: dynamic micro-op mix, normalized to x86-64+SSE\n")
	hdr := fmt.Sprintf("%-8s %7s %7s %7s %7s %7s %7s\n", "bench", "loads", "stores", "int", "branch", "fp", "uops")
	emit := func(name string, rows []MixRow) {
		fmt.Fprintf(&sb, "-- %s --\n%s", name, hdr)
		for _, r := range rows {
			fmt.Fprintf(&sb, "%-8s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n",
				r.Benchmark, r.Loads, r.Stores, r.Int, r.Branch, r.FP, r.Uops)
		}
	}
	emit("microx86-8D-32W", f.MicroX86)
	emit("x86-64 (baseline)", f.X8664)
	emit("superset", f.Superset)
	return sb.String()
}

// Sec3Deltas reproduces the Section III code-generation statistics.
type Sec3Deltas struct {
	// Depth 32 -> 16 (microx86-32W): percentage increases.
	DepthStoresPct, DepthLoadsPct, DepthIntPct, DepthBranchPct float64
	// Full predication (microx86-32W-32D): dynamic instr increase and
	// branch reduction, in percent.
	PredInstrPct, PredBranchPct float64
	// microx86-8D-32W vs x86-64: memory-reference and micro-op expansion.
	MicroMemRefPct, MicroUopPct float64
	// Superset vs x86-64: reductions (negative = fewer).
	SupersetLoadsPct, SupersetIntPct, SupersetBranchPct float64
}

func pct(n, d float64) float64 { return 100 * (n/d - 1) }

// Sec3CodegenDeltas measures the Section III feature-impact numbers from the
// compiled suite.
func Sec3CodegenDeltas(ctx context.Context, db *DB) (*Sec3Deltas, error) {
	total := func(m map[string]classCounts) classCounts {
		var t classCounts
		for _, c := range m {
			t.loads += c.loads
			t.stores += c.stores
			t.ints += c.ints
			t.branches += c.branches
			t.fp += c.fp
			t.uops += c.uops
		}
		return t
	}
	get := func(fs isa.FeatureSet) (classCounts, error) {
		m, err := mixFor(ctx, db, ISAChoice{FS: fs})
		if err != nil {
			return classCounts{}, err
		}
		return total(m), nil
	}
	d32, err := get(isa.MustNew(isa.MicroX86, 32, 32, isa.PartialPredication))
	if err != nil {
		return nil, err
	}
	d16, err := get(isa.MustNew(isa.MicroX86, 32, 16, isa.PartialPredication))
	if err != nil {
		return nil, err
	}
	predOff, err := get(isa.MustNew(isa.MicroX86, 32, 32, isa.PartialPredication))
	if err != nil {
		return nil, err
	}
	predOn, err := get(isa.MustNew(isa.MicroX86, 32, 32, isa.FullPredication))
	if err != nil {
		return nil, err
	}
	micro, err := get(isa.MicroX86Min)
	if err != nil {
		return nil, err
	}
	base, err := get(isa.X8664)
	if err != nil {
		return nil, err
	}
	super, err := get(isa.Superset)
	if err != nil {
		return nil, err
	}
	return &Sec3Deltas{
		DepthStoresPct: pct(d16.stores, d32.stores),
		DepthLoadsPct:  pct(d16.loads, d32.loads),
		DepthIntPct:    pct(d16.ints, d32.ints),
		DepthBranchPct: pct(d16.branches, d32.branches),

		PredInstrPct:  pct(predOn.uops, predOff.uops),
		PredBranchPct: pct(predOn.branches, predOff.branches),

		MicroMemRefPct: pct(micro.loads+micro.stores, base.loads+base.stores),
		MicroUopPct:    pct(micro.uops, base.uops),

		SupersetLoadsPct:  pct(super.loads, base.loads),
		SupersetIntPct:    pct(super.ints, base.ints),
		SupersetBranchPct: pct(super.branches, base.branches),
	}, nil
}

// Format renders the deltas next to the paper's numbers.
func (d *Sec3Deltas) Format() string {
	var sb strings.Builder
	sb.WriteString("Section III code-generation deltas (measured vs paper)\n")
	row := func(name string, got, paper float64) {
		fmt.Fprintf(&sb, "  %-46s %+7.1f%%   (paper %+.1f%%)\n", name, got, paper)
	}
	row("depth 32->16: stores (spills)", d.DepthStoresPct, 3.7)
	row("depth 32->16: loads (refills)", d.DepthLoadsPct, 10.3)
	row("depth 32->16: integer instructions", d.DepthIntPct, 3.5)
	row("depth 32->16: branches (remat)", d.DepthBranchPct, 2.7)
	row("full predication: dynamic micro-ops", d.PredInstrPct, 0.6)
	row("full predication: branches", d.PredBranchPct, -6.5)
	row("microx86-8D-32W vs x86-64: memory refs", d.MicroMemRefPct, 28)
	row("microx86-8D-32W vs x86-64: micro-ops", d.MicroUopPct, 11)
	row("superset vs x86-64: loads", d.SupersetLoadsPct, -8.5)
	row("superset vs x86-64: integer instructions", d.SupersetIntPct, -6.3)
	row("superset vs x86-64: branches", d.SupersetBranchPct, -3.2)
	return sb.String()
}
