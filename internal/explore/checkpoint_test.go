// Tests for checkpoint corruption handling: corrupt files are typed
// (ErrCheckpointCorrupt), RecoverCheckpoint quarantines them and starts
// cold, and good checkpoints survive recovery untouched.

package explore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCheckpointFile plants raw bytes as a checkpoint.
func writeCheckpointFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadCheckpointCorruptTyped: truncated JSON, garbage bytes, and
// unusable versions all surface as ErrCheckpointCorrupt, while a missing
// file stays (nil, nil) and plain I/O problems stay untyped.
func TestLoadCheckpointCorruptTyped(t *testing.T) {
	good := &CheckpointState{Version: checkpointVersion}
	goodPath := filepath.Join(t.TempDir(), "good.json")
	if err := SaveCheckpoint(goodPath, good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", data[:len(data)/2]},
		{"garbage", []byte("\x00\xffnot json at all")},
		{"empty", nil},
		{"future-version", []byte(`{"version":99,"profiles":{}}`)},
		// v2 predates the struct-of-arrays profile schema (its ILP and
		// mispredict curves were JSON objects, not arrays) and must be
		// quarantined, not silently misread.
		{"stale-version", []byte(`{"version":2,"profiles":{}}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeCheckpointFile(t, tc.data)
			_, err := LoadCheckpoint(path)
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("LoadCheckpoint(%s) = %v, want ErrCheckpointCorrupt", tc.name, err)
			}
		})
	}

	if st, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json")); st != nil || err != nil {
		t.Fatalf("missing checkpoint: (%v, %v), want (nil, nil)", st, err)
	}
}

// TestRecoverCheckpointQuarantines: recovery from a corrupt checkpoint
// renames it aside to <path>.corrupt (preserving the bytes for post-mortem)
// and returns a cold-start nil state.
func TestRecoverCheckpointQuarantines(t *testing.T) {
	garbage := []byte("{\"version\": 2, \"profiles\": {tru")
	path := writeCheckpointFile(t, garbage)

	st, quarantined, err := RecoverCheckpoint(path)
	if err != nil {
		t.Fatalf("RecoverCheckpoint: %v", err)
	}
	if st != nil {
		t.Fatal("corrupt checkpoint produced a non-nil state")
	}
	if quarantined != path+".corrupt" {
		t.Fatalf("quarantined = %q, want %q", quarantined, path+".corrupt")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("original path still exists after quarantine: %v", err)
	}
	kept, err := os.ReadFile(quarantined)
	if err != nil {
		t.Fatal(err)
	}
	if string(kept) != string(garbage) {
		t.Fatal("quarantined file does not preserve the corrupt bytes")
	}

	// The quarantined name is out of the way: a fresh save to the original
	// path works and loads cleanly afterwards.
	if err := SaveCheckpoint(path, &CheckpointState{Version: checkpointVersion}); err != nil {
		t.Fatal(err)
	}
	st2, quarantined2, err := RecoverCheckpoint(path)
	if err != nil || quarantined2 != "" {
		t.Fatalf("recover after resave: (%v, %q, %v)", st2, quarantined2, err)
	}
	if st2 == nil || st2.Version != checkpointVersion {
		t.Fatalf("resaved checkpoint did not load: %+v", st2)
	}
}

// TestRecoverCheckpointPassesThrough: a healthy checkpoint and a missing
// one flow through recovery unchanged (no quarantine, no error).
func TestRecoverCheckpointPassesThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.json")
	if err := SaveCheckpoint(path, &CheckpointState{Version: checkpointVersion}); err != nil {
		t.Fatal(err)
	}
	st, q, err := RecoverCheckpoint(path)
	if err != nil || q != "" || st == nil {
		t.Fatalf("healthy: (%v, %q, %v)", st, q, err)
	}
	st, q, err = RecoverCheckpoint(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || q != "" || st != nil {
		t.Fatalf("missing: (%v, %q, %v)", st, q, err)
	}
}

// TestSaveCheckpointNoTempDebris: saves leave exactly the checkpoint file —
// the atomicfile temp never lingers, even across repeated saves.
func TestSaveCheckpointNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	for i := 0; i < 3; i++ {
		if err := SaveCheckpoint(path, &CheckpointState{Version: checkpointVersion}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}
