package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"compisa/internal/isa"
	"compisa/internal/power"
	"compisa/internal/workload"
)

// FeatureConstraint is one Figure 9 search restriction.
type FeatureConstraint struct {
	Name string
	Keep func(*Candidate) bool
}

// Fig9Constraints enumerates the feature-sensitivity searches: register
// depth caps, single-width, single-complexity, and single-predication
// restrictions (plus the unconstrained search).
func Fig9Constraints() []FeatureConstraint {
	depthCap := func(d int) FeatureConstraint {
		return FeatureConstraint{
			Name: fmt.Sprintf("depth<=%d", d),
			Keep: func(c *Candidate) bool { return c.DP.ISA.FS.Depth <= d },
		}
	}
	return []FeatureConstraint{
		depthCap(8), depthCap(16), depthCap(32), depthCap(64),
		{"microx86 only", func(c *Candidate) bool { return c.DP.ISA.FS.Complexity == isa.MicroX86 }},
		{"x86 only", func(c *Candidate) bool { return c.DP.ISA.FS.Complexity == isa.FullX86 }},
		{"32-bit only", func(c *Candidate) bool { return c.DP.ISA.FS.Width == 32 }},
		{"64-bit only", func(c *Candidate) bool { return c.DP.ISA.FS.Width == 64 }},
		{"partial pred only", func(c *Candidate) bool { return c.DP.ISA.FS.Predication == isa.PartialPredication }},
		{"full pred only", func(c *Candidate) bool { return c.DP.ISA.FS.Predication == isa.FullPredication }},
	}
}

// Fig9Row is one constrained search's outcome.
type Fig9Row struct {
	Constraint     string
	CMP            CMP
	Score          float64
	DegradationPct float64 // vs the unconstrained composite design
}

// Fig9Result reproduces Figure 9 (and feeds Figures 10/11 with the ten
// constrained-optimal designs).
type Fig9Result struct {
	Budget        Budget
	Unconstrained CMP
	Rows          []Fig9Row
}

// Fig9FeatureSensitivity searches the composite design space under each
// feature constraint at the 48mm2 budget (multi-programmed throughput).
func (s *Searcher) Fig9FeatureSensitivity(ctx context.Context) (*Fig9Result, error) {
	budget := Budget{AreaMM2: 48}
	base, err := s.Search(ctx, OrgCompositeFull, ObjMPThroughput, budget)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Budget: budget, Unconstrained: base}
	for _, fc := range Fig9Constraints() {
		cmp, err := s.SearchConstrained(ctx, ObjMPThroughput, budget, fc.Name, fc.Keep)
		row := Fig9Row{Constraint: fc.Name}
		if err != nil {
			if isCtxErr(err) {
				return nil, err
			}
			row.DegradationPct = 100
		} else {
			row.CMP = cmp
			row.Score = cmp.Score
		}
		res.Rows = append(res.Rows, row)
	}
	// Every constrained CMP is a feasible unconstrained design, so the
	// hill-climbing searches define the unconstrained optimum only up to
	// local-optima noise: adopt the best design found anywhere as the
	// baseline, which guarantees non-negative degradations up to noise.
	for _, row := range res.Rows {
		if row.CMP.Cores[0] != nil && row.Score > res.Unconstrained.Score {
			res.Unconstrained = row.CMP
		}
	}
	for i := range res.Rows {
		if res.Rows[i].CMP.Cores[0] != nil {
			res.Rows[i].DegradationPct = 100 * (1 - res.Rows[i].Score/res.Unconstrained.Score)
		}
	}
	return res, nil
}

// Format renders Figure 9.
func (r *Fig9Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9: performance degradation under feature constraints (%s, MP throughput)\n", r.Budget)
	fmt.Fprintf(&sb, "  unconstrained score: %.4f\n", r.Unconstrained.Score)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-18s %6.1f%% degradation (score %.4f)\n", row.Constraint, row.DegradationPct, row.Score)
	}
	return sb.String()
}

// StageBreakdown is a per-pipeline-stage decomposition for Figures 10/11,
// summed over the four cores (caches excluded, as in the paper's plots).
type StageBreakdown struct {
	Label      string
	Fetch      float64
	Decode     float64
	BranchPred float64
	Scheduler  float64
	RegFile    float64
	FU         float64
}

func (b StageBreakdown) Total() float64 {
	return b.Fetch + b.Decode + b.BranchPred + b.Scheduler + b.RegFile + b.FU
}

// AreaBreakdown computes the Figure 10 transistor-investment rows: combined
// core area (without caches) by stage for each design.
func AreaBreakdown(label string, cmp CMP) StageBreakdown {
	out := StageBreakdown{Label: label}
	for _, c := range cmp.Cores {
		a := power.Area(c.DP.ISA.Traits(), c.DP.Cfg)
		out.Fetch += a.Fetch
		out.Decode += a.Decode
		out.BranchPred += a.BranchPred
		out.Scheduler += a.Scheduler + a.LSQ
		out.RegFile += a.RegFile
		out.FU += a.FU
	}
	return out
}

// EnergyBreakdown computes the Figure 11 rows: runtime energy by stage,
// averaged over the workload suite (each core runs every region weighted by
// its SimPoint weight — the multiprogrammed schedule visits all of them).
// Quarantined (region, ISA) pairs contribute nothing to the breakdown.
func EnergyBreakdown(ctx context.Context, label string, cmp CMP, db *DB) (StageBreakdown, error) {
	out := StageBreakdown{Label: label}
	for _, c := range cmp.Cores {
		ps, err := db.Profiles(ctx, c.DP.ISA)
		if err != nil {
			return out, err
		}
		tr := c.DP.ISA.Traits()
		for ri, r := range db.Regions {
			if ps[ri] == nil {
				continue
			}
			en := power.Energy(tr, c.DP.Cfg, ps[ri], c.M[ri].Perf)
			w := r.Weight
			out.Fetch += w * en.Dynamic.Fetch
			out.Decode += w * en.Dynamic.Decode
			out.BranchPred += w * en.Dynamic.BranchPred
			out.Scheduler += w * (en.Dynamic.Scheduler + en.Dynamic.LSQ)
			out.RegFile += w * en.Dynamic.RegFile
			out.FU += w * en.Dynamic.FU
		}
	}
	return out, nil
}

// FormatBreakdowns renders Figures 10/11: every row normalized to the
// unconstrained design's total.
func FormatBreakdowns(title string, rows []StageBreakdown) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	base := rows[len(rows)-1].Total() // last row = unconstrained ("full diversity")
	fmt.Fprintf(&sb, "  %-18s %7s %7s %7s %7s %7s %7s %8s\n",
		"design", "fetch", "decode", "bpred", "sched", "regfile", "fu", "total")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-18s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %8.3f\n",
			r.Label, r.Fetch/base, r.Decode/base, r.BranchPred/base,
			r.Scheduler/base, r.RegFile/base, r.FU/base, r.Total()/base)
	}
	return sb.String()
}

// AffinityResult is the execution-time breakdown across feature sets
// (Figures 12/13): per benchmark, the share of time spent on each feature
// set of the chosen multicore.
type AffinityResult struct {
	Title string
	// Share[bench][fsKey] sums to 1 per benchmark.
	Share map[string]map[string]float64
	// FeatureSets lists the CMP's distinct feature sets in display order.
	FeatureSets []string
}

// Fig12AffinitySingleThread computes feature affinity on the composite CMP
// optimized for single-thread performance under a 10W peak power budget:
// each region migrates to its best core; its time lands on that core's
// feature set.
func (s *Searcher) Fig12AffinitySingleThread(ctx context.Context) (*AffinityResult, error) {
	cmp, err := s.Search(ctx, OrgCompositeFull, ObjSTPerf, Budget{PeakW: 10})
	if err != nil {
		return nil, err
	}
	res := &AffinityResult{
		Title: "Figure 12: execution-time breakdown, ST-optimal composite CMP @ 10W",
		Share: map[string]map[string]float64{},
	}
	res.FeatureSets = distinctFS(cmp)
	for ri, r := range s.DB.Regions {
		best := 0
		for k := 1; k < 4; k++ {
			if cmp.Cores[k].Speedup[ri] > cmp.Cores[best].Speedup[ri] {
				best = k
			}
		}
		t := r.Weight * cmp.Cores[best].M[ri].Cycles
		addShare(res.Share, r.Benchmark, cmp.Cores[best].DP.ISA.Key(), t)
	}
	normalizeShares(res.Share)
	return res, nil
}

// Fig13AffinityMultiprogrammed computes feature affinity on the composite
// CMP optimized for multi-programmed throughput at 48mm2: threads contend,
// so applications also execute on feature sets of second preference.
func (s *Searcher) Fig13AffinityMultiprogrammed(ctx context.Context) (*AffinityResult, error) {
	cmp, err := s.Search(ctx, OrgCompositeFull, ObjMPThroughput, Budget{AreaMM2: 48})
	if err != nil {
		return nil, err
	}
	res := &AffinityResult{
		Title: "Figure 13: execution-time breakdown, MP-optimal composite CMP @ 48mm2",
		Share: map[string]map[string]float64{},
	}
	res.FeatureSets = distinctFS(cmp)
	si := newSuiteIndex(s.DB.Regions)
	stats := si.scheduleMP(&cmp.Cores, s.DB.Regions, nil)
	for bench, byCore := range stats.TimeByBenchCore {
		for coreIdx, t := range byCore {
			addShare(res.Share, bench, cmp.Cores[coreIdx].DP.ISA.Key(), t)
		}
	}
	normalizeShares(res.Share)
	return res, nil
}

func distinctFS(cmp CMP) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cmp.Cores {
		k := c.DP.ISA.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func addShare(m map[string]map[string]float64, bench, key string, v float64) {
	if m[bench] == nil {
		m[bench] = map[string]float64{}
	}
	m[bench][key] += v
}

func normalizeShares(m map[string]map[string]float64) {
	for _, byKey := range m {
		total := 0.0
		for _, v := range byKey {
			total += v
		}
		if total == 0 {
			continue
		}
		for k := range byKey {
			byKey[k] /= total
		}
	}
}

// Format renders an affinity result.
func (a *AffinityResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", a.Title)
	fmt.Fprintf(&sb, "  %-8s", "bench")
	for _, fs := range a.FeatureSets {
		fmt.Fprintf(&sb, " %16s", fs)
	}
	sb.WriteByte('\n')
	for _, b := range workload.Names() {
		fmt.Fprintf(&sb, "  %-8s", b)
		for _, fs := range a.FeatureSets {
			fmt.Fprintf(&sb, " %15.1f%%", 100*a.Share[b][fs])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MPScheduleStats captures the instrumented multi-programmed schedule.
type MPScheduleStats struct {
	// TimeByBenchCore[bench][coreIdx] accumulates cycles.
	TimeByBenchCore map[string][4]float64
	// Migrations counts thread-to-core reassignments at phase boundaries.
	Migrations int
	Steps      int
	// Throughput is the mean per-step speedup (the scoreMP metric).
	Throughput float64
}

// stepHook lets callers adjust a thread's speedup for a (region, core)
// assignment (Figure 15 applies binary-compatibility and migration costs).
type stepHook func(thread int, region int, core int, speedup float64, migrated bool) float64

// scheduleMP runs the contention scheduler with full instrumentation.
func (si *suiteIndex) scheduleMP(cores *[4]*Candidate, regions []workload.Region, hook stepHook) *MPScheduleStats {
	st := &MPScheduleStats{TimeByBenchCore: map[string][4]float64{}}
	total := 0.0
	for _, mix := range si.mixes {
		maxLen := 0
		for _, b := range mix {
			if l := len(si.benchRegions[b]); l > maxLen {
				maxLen = l
			}
		}
		prev := [4]int{-1, -1, -1, -1} // thread -> core
		for t := 0; t < maxLen; t++ {
			var phase [4]int
			for i, b := range mix {
				rs := si.benchRegions[b]
				phase[i] = rs[t%len(rs)]
			}
			best := -1.0e18
			var bestPerm [4]int
			for _, perm := range si.perms {
				v := 0.0
				for th := 0; th < 4; th++ {
					sp := cores[perm[th]].Speedup[phase[th]]
					if hook != nil {
						sp = hook(th, phase[th], perm[th], sp, prev[th] >= 0 && prev[th] != perm[th])
					}
					v += sp
				}
				if v > best {
					best = v
					bestPerm = perm
				}
			}
			for th := 0; th < 4; th++ {
				core := bestPerm[th]
				if prev[th] >= 0 && prev[th] != core {
					st.Migrations++
				}
				prev[th] = core
				bench := regions[phase[th]].Benchmark
				arr := st.TimeByBenchCore[bench]
				arr[core] += cores[core].M[phase[th]].Cycles
				st.TimeByBenchCore[bench] = arr
			}
			total += best / 4
			st.Steps++
		}
	}
	st.Throughput = total / float64(st.Steps)
	return st
}
