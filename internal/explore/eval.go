// Facade over the evaluation layer: type aliases and forwarding
// constructors keep explore's public API stable (cmd/compose-explore, the
// benchmarks, and the examples all speak explore.DB) while the pipeline's
// profiling and scoring stages live in internal/eval.

package explore

import (
	"context"
	"errors"

	"compisa/internal/cpu"
	"compisa/internal/eval"
)

// Aliases into the evaluation layer. These are aliases, not definitions:
// an explore.DB is an eval.DB, so the two layers share one identity and
// checkpoints restore across them without conversion.
type (
	DB              = eval.DB
	Evaluator       = eval.Evaluator
	Policy          = eval.Policy
	Stats           = eval.Stats
	StatsSnapshot   = eval.StatsSnapshot
	ISAChoice       = eval.ISAChoice
	DesignPoint     = eval.DesignPoint
	Candidate       = eval.Candidate
	Metric          = eval.Metric
	Coverage        = eval.Coverage
	QuarantinedPair = eval.QuarantinedPair
)

// NewDB builds an evaluation database over the full 49-region suite.
func NewDB() *DB { return eval.NewDB() }

// ReferenceConfig is the normalization core: the largest out-of-order
// configuration with 64KB caches and the 8MB L2.
func ReferenceConfig() cpu.CoreConfig { return eval.ReferenceConfig() }

// CompositeChoices returns the 26 composite feature sets as ISA choices.
func CompositeChoices() []ISAChoice { return eval.CompositeChoices() }

// XIzedChoices returns the three x86-ized fixed feature sets (limited-
// diversity composite baseline).
func XIzedChoices() []ISAChoice { return eval.XIzedChoices() }

// VendorChoices returns the heterogeneous-ISA baseline's vendor ISAs.
func VendorChoices() []ISAChoice { return eval.VendorChoices() }

// X8664Choice is the single-ISA baseline.
func X8664Choice() ISAChoice { return eval.X8664Choice() }

// isCtxErr reports whether err stems from context cancellation or deadline
// expiry (the two failures graceful degradation must not swallow).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
