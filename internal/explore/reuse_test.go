// Tests for cross-search candidate reuse (the candidate cache tier) and
// checkpoint format versioning.

package explore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCandidateReuseAcrossSearchers: back-to-back experiments in one process
// share the DB's candidate cache — a second Searcher running a different
// objective over the same organization performs zero new model evaluations.
func TestCandidateReuseAcrossSearchers(t *testing.T) {
	db := smallDB(3, nil)
	ctx := context.Background()
	s1, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Search(ctx, OrgCompositeFixed, ObjMPThroughput, Budget{AreaMM2: 64}); err != nil {
		t.Fatal(err)
	}
	evals := db.Stats.ModelEvals.Load()
	if evals == 0 {
		t.Fatal("first search performed no model evaluations; counter not wired")
	}

	// A fresh Searcher simulates a second experiment driver in the same
	// process: different objective, same underlying design points.
	s2, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Search(ctx, OrgCompositeFixed, ObjMPEDP, Budget{AreaMM2: 64}); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats.ModelEvals.Load(); got != evals {
		t.Errorf("second searcher re-ran the model stage: ModelEvals %d -> %d", evals, got)
	}
	if db.Stats.CandidateHits.Load() == 0 {
		t.Error("second searcher recorded no candidate-cache hits")
	}
}

// TestCheckpointStaleVersions: pre-v3 checkpoints carry the old map-shaped
// profile schema (made incompatible by the SoA profile arrays), and v3
// checkpoints carry vendor design points scaled by the analytic CodeDensity
// traits that the measured target backends replaced — all are rejected as
// corrupt (and so quarantined by RecoverCheckpoint, starting the run cold)
// rather than half-migrated. Unknown future versions are rejected the same
// way.
func TestCheckpointLegacyV1(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"v1", `{"version":1,"profiles":{}}`},
		{"v2", `{"version":2,"profiles":{}}`},
		{"v3", `{"version":3,"profiles":{}}`},
		{"future", `{"version":99,"profiles":{}}`},
	} {
		path := filepath.Join(t.TempDir(), tc.name+".ckpt")
		if err := os.WriteFile(path, []byte(tc.data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path); err == nil ||
			!strings.Contains(err.Error(), "version") || !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("%s checkpoint must be rejected as corrupt with a version error, got %v", tc.name, err)
		}
		st, quarantined, err := RecoverCheckpoint(path)
		if err != nil || st != nil {
			t.Fatalf("%s: recover = (%v, %v), want cold start", tc.name, st, err)
		}
		if quarantined != path+".corrupt" {
			t.Fatalf("%s: quarantined to %q, want %q", tc.name, quarantined, path+".corrupt")
		}
	}
}
