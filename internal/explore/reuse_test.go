// Tests for cross-search candidate reuse (the candidate cache tier) and
// checkpoint format versioning.

package explore

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCandidateReuseAcrossSearchers: back-to-back experiments in one process
// share the DB's candidate cache — a second Searcher running a different
// objective over the same organization performs zero new model evaluations.
func TestCandidateReuseAcrossSearchers(t *testing.T) {
	db := smallDB(3, nil)
	ctx := context.Background()
	s1, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Search(ctx, OrgCompositeFixed, ObjMPThroughput, Budget{AreaMM2: 64}); err != nil {
		t.Fatal(err)
	}
	evals := db.Stats.ModelEvals.Load()
	if evals == 0 {
		t.Fatal("first search performed no model evaluations; counter not wired")
	}

	// A fresh Searcher simulates a second experiment driver in the same
	// process: different objective, same underlying design points.
	s2, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Search(ctx, OrgCompositeFixed, ObjMPEDP, Budget{AreaMM2: 64}); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats.ModelEvals.Load(); got != evals {
		t.Errorf("second searcher re-ran the model stage: ModelEvals %d -> %d", evals, got)
	}
	if db.Stats.CandidateHits.Load() == 0 {
		t.Error("second searcher recorded no candidate-cache hits")
	}
}

// TestCheckpointLegacyV1: a version-1 checkpoint (profiles + quarantine +
// frontier, no candidate tier or stats) still loads and restores; an unknown
// future version is rejected.
func TestCheckpointLegacyV1(t *testing.T) {
	db1 := smallDB(3, nil)
	ctx := context.Background()
	s1, err := NewSearcher(ctx, db1)
	if err != nil {
		t.Fatal(err)
	}
	budget := Budget{AreaMM2: 64}
	cmp1, err := s1.Search(ctx, OrgCompositeFixed, ObjMPThroughput, budget)
	if err != nil {
		t.Fatal(err)
	}
	full := Snapshot(db1, s1)
	// Strip the checkpoint down to what a v1 writer produced.
	legacy := &CheckpointState{
		Version:    1,
		Profiles:   full.Profiles,
		Quarantine: full.Quarantine,
		Frontier:   full.Frontier,
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	if err := SaveCheckpoint(path, legacy); err != nil {
		t.Fatal(err)
	}

	st, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("legacy v1 checkpoint must load: %v", err)
	}
	db2 := smallDB(3, nil)
	st.RestoreDB(db2)
	s2, err := NewSearcher(ctx, db2)
	if err != nil {
		t.Fatal(err)
	}
	st.RestoreSearcher(s2)
	cmp2, err := s2.Search(ctx, OrgCompositeFixed, ObjMPThroughput, budget)
	if err != nil {
		t.Fatal(err)
	}
	if cmp1.Score != cmp2.Score {
		t.Errorf("legacy resume score %v != original %v", cmp2.Score, cmp1.Score)
	}

	future := filepath.Join(t.TempDir(), "future.ckpt")
	if err := os.WriteFile(future, []byte(`{"version":3,"profiles":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version must be rejected with a version error, got %v", err)
	}
}
