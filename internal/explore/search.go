package explore

import (
	"context"
	"fmt"
	"math"
	"sort"

	"compisa/internal/par"
	"compisa/internal/workload"
)

// Budget constrains a 4-core CMP. Zero fields are unlimited. For
// single-thread objectives the power budget applies to one core at a time
// (dynamic multicore topology: only one core is powered on).
type Budget struct {
	PeakW   float64
	AreaMM2 float64
}

func (b Budget) String() string {
	switch {
	case b.PeakW > 0:
		return fmt.Sprintf("%gW", b.PeakW)
	case b.AreaMM2 > 0:
		return fmt.Sprintf("%gmm2", b.AreaMM2)
	default:
		return "unlimited"
	}
}

// Objective selects what the search optimizes.
type Objective uint8

const (
	// ObjMPThroughput maximizes multi-programmed workload throughput.
	ObjMPThroughput Objective = iota
	// ObjMPEDP minimizes multi-programmed energy-delay product.
	ObjMPEDP
	// ObjSTPerf maximizes single-thread performance with free migration
	// across the four cores.
	ObjSTPerf
	// ObjSTEDP minimizes single-thread EDP with free migration.
	ObjSTEDP
)

// SingleThread reports whether the objective powers one core at a time.
func (o Objective) SingleThread() bool { return o == ObjSTPerf || o == ObjSTEDP }

// CMP is a four-core multicore design.
type CMP struct {
	Cores [4]*Candidate
	// Score is the objective value (higher is better; EDP objectives
	// store the negated normalized EDP).
	Score float64
}

// TotalPeak and TotalArea sum the cores.
func (c CMP) TotalPeak() float64 {
	s := 0.0
	for _, core := range c.Cores {
		s += core.PeakW
	}
	return s
}

func (c CMP) TotalArea() float64 {
	s := 0.0
	for _, core := range c.Cores {
		s += core.AreaMM2
	}
	return s
}

// suiteIndex caches the benchmark/region structure used by the schedulers.
type suiteIndex struct {
	benchRegions [][]int     // per benchmark: flattened region indices
	weights      [][]float64 // per benchmark: region weights
	mixes        [][4]int    // all 4-benchmark combinations
	perms        [][4]int    // all assignments of 4 threads to 4 cores
}

func newSuiteIndex(regions []workload.Region) *suiteIndex {
	si := &suiteIndex{}
	byBench := map[string]int{}
	for i, r := range regions {
		bi, ok := byBench[r.Benchmark]
		if !ok {
			bi = len(si.benchRegions)
			byBench[r.Benchmark] = bi
			si.benchRegions = append(si.benchRegions, nil)
			si.weights = append(si.weights, nil)
		}
		si.benchRegions[bi] = append(si.benchRegions[bi], i)
		si.weights[bi] = append(si.weights[bi], r.Weight)
	}
	nb := len(si.benchRegions)
	for a := 0; a < nb; a++ {
		for b := a + 1; b < nb; b++ {
			for c := b + 1; c < nb; c++ {
				for d := c + 1; d < nb; d++ {
					si.mixes = append(si.mixes, [4]int{a, b, c, d})
				}
			}
		}
	}
	// A suite with fewer than four benchmarks (shrunk suites in tests,
	// partial workloads) has no 4-distinct mixes; fall back to mixes with
	// repetition so multi-programmed scores stay defined instead of 0/0.
	if len(si.mixes) == 0 && nb > 0 {
		for a := 0; a < nb; a++ {
			for b := a; b < nb; b++ {
				for c := b; c < nb; c++ {
					for d := c; d < nb; d++ {
						si.mixes = append(si.mixes, [4]int{a, b, c, d})
					}
				}
			}
		}
	}
	var permute func(rest []int, cur []int)
	permute = func(rest, cur []int) {
		if len(rest) == 0 {
			var p [4]int
			copy(p[:], cur)
			si.perms = append(si.perms, p)
			return
		}
		for i := range rest {
			nr := append(append([]int{}, rest[:i]...), rest[i+1:]...)
			permute(nr, append(cur, rest[i]))
		}
	}
	permute([]int{0, 1, 2, 3}, nil)
	return si
}

// scoreMP evaluates a 4-core CMP on the multi-programmed scheduler: every
// 4-benchmark mix runs with per-phase-step optimal thread-to-core
// assignment (24 permutations), exactly the contention model of Section VI.
func (si *suiteIndex) scoreMP(cores *[4]*Candidate, edp bool) float64 {
	total := 0.0
	steps := 0
	for _, mix := range si.mixes {
		maxLen := 0
		for _, b := range mix {
			if l := len(si.benchRegions[b]); l > maxLen {
				maxLen = l
			}
		}
		for t := 0; t < maxLen; t++ {
			var phase [4]int
			for i, b := range mix {
				rs := si.benchRegions[b]
				phase[i] = rs[t%len(rs)]
			}
			best := math.Inf(-1)
			for _, perm := range si.perms {
				v := 0.0
				for th := 0; th < 4; th++ {
					core := cores[perm[th]]
					if edp {
						v -= core.NormEDP[phase[th]]
					} else {
						v += core.Speedup[phase[th]]
					}
				}
				if v > best {
					best = v
				}
			}
			total += best / 4
			steps++
		}
	}
	return total / float64(steps)
}

// scoreST evaluates single-thread objectives: each benchmark migrates every
// region to its best core (SimPoint weights applied).
func (si *suiteIndex) scoreST(cores *[4]*Candidate, edp bool) float64 {
	total := 0.0
	for b := range si.benchRegions {
		bs := 0.0
		for k, r := range si.benchRegions[b] {
			best := math.Inf(-1)
			for _, core := range cores {
				var v float64
				if edp {
					v = -core.NormEDP[r]
				} else {
					v = core.Speedup[r]
				}
				if v > best {
					best = v
				}
			}
			bs += si.weights[b][k] * best
		}
		total += bs
	}
	return total / float64(len(si.benchRegions))
}

func (si *suiteIndex) score(cores *[4]*Candidate, obj Objective) float64 {
	switch obj {
	case ObjMPThroughput:
		return si.scoreMP(cores, false)
	case ObjMPEDP:
		return si.scoreMP(cores, true)
	case ObjSTPerf:
		return si.scoreST(cores, false)
	default:
		return si.scoreST(cores, true)
	}
}

// feasible checks a full CMP against the budget.
func feasible(cores *[4]*Candidate, b Budget, st bool) bool {
	peak, area := 0.0, 0.0
	for _, c := range cores {
		if st {
			if b.PeakW > 0 && c.PeakW > b.PeakW {
				return false
			}
		} else {
			peak += c.PeakW
		}
		area += c.AreaMM2
	}
	if !st && b.PeakW > 0 && peak > b.PeakW {
		return false
	}
	if b.AreaMM2 > 0 && area > b.AreaMM2 {
		return false
	}
	return true
}

// SearchSpec describes one multicore search.
type SearchSpec struct {
	Candidates  []*Candidate
	Budget      Budget
	Objective   Objective
	Homogeneous bool // all four cores must be identical
	// MaxCandidates caps the pruned candidate set fed to hill climbing.
	MaxCandidates int
	// Constraint optionally rejects candidates (Figure 9's
	// feature-constrained searches).
	Constraint func(*Candidate) bool
}

// prune reduces the candidate set: budget-infeasible and constraint-failing
// candidates are dropped; the survivors are ranked by objective-relevant
// utility and capped, always keeping each region's top specialists so
// heterogeneity stays discoverable.
func prune(spec SearchSpec, si *suiteIndex) []*Candidate {
	var ok []*Candidate
	st := spec.Objective.SingleThread()
	for _, c := range spec.Candidates {
		if spec.Constraint != nil && !spec.Constraint(c) {
			continue
		}
		if st {
			if spec.Budget.PeakW > 0 && c.PeakW > spec.Budget.PeakW {
				continue
			}
		} else if spec.Budget.PeakW > 0 && c.PeakW > spec.Budget.PeakW {
			continue
		}
		if spec.Budget.AreaMM2 > 0 && c.AreaMM2 > spec.Budget.AreaMM2 {
			continue
		}
		ok = append(ok, c)
	}
	if len(ok) == 0 {
		return nil
	}
	max := spec.MaxCandidates
	if max <= 0 {
		max = 300
	}
	utility := func(c *Candidate) float64 {
		if spec.Objective == ObjMPEDP || spec.Objective == ObjSTEDP {
			s := 0.0
			for _, v := range c.NormEDP {
				s += v
			}
			return -s
		}
		return c.MeanSpeedup()
	}
	sort.Slice(ok, func(i, j int) bool { return utility(ok[i]) > utility(ok[j]) })
	keep := map[*Candidate]bool{}
	for i := 0; i < len(ok) && i < max*3/4; i++ {
		keep[ok[i]] = true
	}
	// Per-ISA heads: every feature set keeps its best configurations so a
	// globally mediocre ISA can still contribute its specialist cores.
	perISA := map[string]int{}
	for _, c := range ok {
		k := c.DP.ISA.Key()
		if perISA[k] < 8 {
			keep[c] = true
			perISA[k]++
		}
	}
	// Keep the smallest/coolest cores so tight budgets always have a
	// feasible homogeneous seed and cheap filler cores.
	keepSortedBy := func(less func(a, b *Candidate) bool, n int) {
		s := append([]*Candidate{}, ok...)
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		for i := 0; i < len(s) && i < n; i++ {
			keep[s[i]] = true
		}
	}
	keepSortedBy(func(a, b *Candidate) bool { return a.AreaMM2 < b.AreaMM2 }, 25)
	keepSortedBy(func(a, b *Candidate) bool { return a.PeakW < b.PeakW }, 25)
	// Efficiency ranks: under power/area budgets the best building blocks
	// maximize value per watt / per mm², not raw value. For speedup
	// objectives that is utility/cost; for (negative-valued) EDP
	// objectives it is utility*cost, which prefers low EDP at low cost.
	isEDP := spec.Objective == ObjMPEDP || spec.Objective == ObjSTEDP
	eff := func(c *Candidate, cost float64) float64 {
		if isEDP {
			return utility(c) * cost
		}
		return utility(c) / cost
	}
	keepSortedBy(func(a, b *Candidate) bool {
		return eff(a, a.PeakW) > eff(b, b.PeakW)
	}, 80)
	keepSortedBy(func(a, b *Candidate) bool {
		return eff(a, a.AreaMM2) > eff(b, b.AreaMM2)
	}, 80)
	// Per-ISA efficiency heads, mirroring the per-ISA utility heads.
	perISAEff := map[string]int{}
	byEff := append([]*Candidate{}, ok...)
	sort.Slice(byEff, func(i, j int) bool { return eff(byEff[i], byEff[i].PeakW) > eff(byEff[j], byEff[j].PeakW) })
	for _, c := range byEff {
		k := c.DP.ISA.Key()
		if perISAEff[k] < 6 {
			keep[c] = true
			perISAEff[k]++
		}
	}
	// Region specialists: best 3 per region per criterion.
	nRegions := len(ok[0].Speedup)
	for r := 0; r < nRegions; r++ {
		type rc struct {
			c *Candidate
			v float64
		}
		var per []rc
		for _, c := range ok {
			v := c.Speedup[r]
			if spec.Objective == ObjMPEDP || spec.Objective == ObjSTEDP {
				v = -c.NormEDP[r]
			}
			per = append(per, rc{c, v})
		}
		sort.Slice(per, func(i, j int) bool { return per[i].v > per[j].v })
		for i := 0; i < 3 && i < len(per); i++ {
			keep[per[i].c] = true
		}
	}
	// The union of the utility head, the specialists, and the small cores
	// is the search set; specialists must survive, so no further cap.
	var out []*Candidate
	for _, c := range ok {
		if keep[c] {
			out = append(out, c)
		}
	}
	return out
}

// Search finds a (locally) optimal 4-core CMP by steepest-ascent hill
// climbing over single-core replacements — the paper likewise reports local
// optima to keep its 102.5-trillion-combination search tractable.
// Cancellation of ctx aborts the climb promptly (the check sits inside the
// per-candidate scoring loops) and returns ctx.Err().
func Search(ctx context.Context, spec SearchSpec, regions []workload.Region) (CMP, error) {
	si := newSuiteIndex(regions)
	cands := prune(spec, si)
	if len(cands) == 0 {
		return CMP{}, fmt.Errorf("explore: no feasible candidates under %s", spec.Budget)
	}
	st := spec.Objective.SingleThread()

	// Seeds: the best feasible homogeneous CMP at the full budget and at
	// reduced budgets. A full-budget homogeneous seed saturates the
	// constraint, leaving hill climbing no slack to upgrade any single
	// core; seeds with headroom escape that local optimum.
	bestHomogeneous := func(b Budget) (CMP, bool) {
		var best CMP
		found := false
		for _, c := range cands {
			if ctx.Err() != nil {
				return best, found
			}
			cores := [4]*Candidate{c, c, c, c}
			if !feasible(&cores, b, st) {
				continue
			}
			s := si.score(&cores, spec.Objective)
			if !found || s > best.Score {
				best = CMP{Cores: cores, Score: s}
				found = true
			}
		}
		return best, found
	}
	seedBudgets := []float64{1.0, 0.85, 0.7, 0.55}
	var seeds []CMP
	for _, frac := range seedBudgets {
		b := spec.Budget
		b.PeakW *= frac
		b.AreaMM2 *= frac
		if s, ok := bestHomogeneous(b); ok {
			seeds = append(seeds, s)
		}
	}
	// Maximum-slack seed: four copies of the cheapest core, so the climb
	// can grow a heterogeneous design bottom-up even when the budget
	// admits no slack around the best homogeneous design.
	cheapest := cands[0]
	for _, c := range cands[1:] {
		if c.PeakW+c.AreaMM2/10 < cheapest.PeakW+cheapest.AreaMM2/10 {
			cheapest = c
		}
	}
	cheapCores := [4]*Candidate{cheapest, cheapest, cheapest, cheapest}
	if feasible(&cheapCores, spec.Budget, st) {
		seeds = append(seeds, CMP{Cores: cheapCores, Score: si.score(&cheapCores, spec.Objective)})
	}
	// Per-ISA homogeneous seeds: the best feasible 4x design of each of
	// the strongest ISA choices, so pairwise ISA mixes are reachable.
	{
		type isaSeed struct {
			cmp   CMP
			score float64
		}
		bestPer := map[string]isaSeed{}
		for _, c := range cands {
			if ctx.Err() != nil {
				break
			}
			cores := [4]*Candidate{c, c, c, c}
			if !feasible(&cores, spec.Budget, st) {
				continue
			}
			s := si.score(&cores, spec.Objective)
			k := c.DP.ISA.Key()
			if cur, ok := bestPer[k]; !ok || s > cur.score {
				bestPer[k] = isaSeed{CMP{Cores: cores, Score: s}, s}
			}
		}
		var list []isaSeed
		for _, v := range bestPer {
			list = append(list, v)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].score > list[j].score })
		for i := 0; i < len(list) && i < 6; i++ {
			seeds = append(seeds, list[i].cmp)
		}
		// 2+2 ISA-pair seeds among the strongest per-ISA designs, so
		// two-ISA mixes are directly reachable under tight budgets.
		top := len(list)
		if top > 5 {
			top = 5
		}
		for i := 0; i < top; i++ {
			for j := i + 1; j < top; j++ {
				cores := [4]*Candidate{list[i].cmp.Cores[0], list[i].cmp.Cores[0],
					list[j].cmp.Cores[0], list[j].cmp.Cores[0]}
				if feasible(&cores, spec.Budget, st) {
					seeds = append(seeds, CMP{Cores: cores, Score: si.score(&cores, spec.Objective)})
				}
			}
		}
	}
	if len(seeds) == 0 {
		return CMP{}, fmt.Errorf("explore: no feasible homogeneous seed under %s", spec.Budget)
	}
	if spec.Homogeneous {
		// Homogeneous organizations take the full-budget seed.
		best, _ := bestHomogeneous(spec.Budget)
		if err := ctx.Err(); err != nil {
			return CMP{}, err
		}
		return best, nil
	}

	// climb hill-climbs one seed over an explicit candidate pool; the pool
	// is a parameter (not a captured variable) so the polish pass below can
	// widen it for one call without mutating shared state.
	climb := func(seed CMP, pool []*Candidate) CMP {
		best := seed
		// Re-score against the true budget (seed scores already match).
		for iter := 0; iter < 12; iter++ {
			improved := false
			for slot := 0; slot < 4; slot++ {
				cur := best
				for _, c := range pool {
					if ctx.Err() != nil {
						return best
					}
					trial := cur.Cores
					trial[slot] = c
					if !feasible(&trial, spec.Budget, st) {
						continue
					}
					s := si.score(&trial, spec.Objective)
					if s > best.Score+1e-12 {
						best = CMP{Cores: trial, Score: s}
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		return best
	}
	results, err := par.Map(ctx, len(seeds), 0, func(i int) (CMP, error) {
		return climb(seeds[i], cands), nil
	})
	if err != nil {
		return CMP{}, err
	}
	if err := ctx.Err(); err != nil {
		return CMP{}, err
	}
	var best CMP
	for i, r := range results {
		if i == 0 || r.Score > best.Score {
			best = r
		}
	}
	// Polish pass: re-climb with every configuration of the winning ISAs
	// available, so the final microarchitectures are exactly tuned (the
	// pruned set only carries each ISA's highlights).
	inBest := map[string]bool{}
	for _, c := range best.Cores {
		inBest[c.DP.ISA.Key()] = true
	}
	extended := append([]*Candidate{}, cands...)
	seen := map[*Candidate]bool{}
	for _, c := range cands {
		seen[c] = true
	}
	for _, c := range spec.Candidates {
		if inBest[c.DP.ISA.Key()] && !seen[c] {
			if spec.Constraint == nil || spec.Constraint(c) {
				extended = append(extended, c)
			}
		}
	}
	best = climb(best, extended)
	if err := ctx.Err(); err != nil {
		return CMP{}, err
	}

	// Canonical core order for stable output.
	sort.Slice(best.Cores[:], func(i, j int) bool {
		return best.Cores[i].PeakW < best.Cores[j].PeakW
	})
	return best, nil
}
