package explore

import (
	"context"
	"fmt"
	"strings"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/eval"
	"compisa/internal/isa"
	"compisa/internal/migrate"
	"compisa/internal/perfmodel"
	"compisa/internal/workload"
)

// DowngradeCase is one Figure 14 category: code compiled for From running,
// after binary translation, on a core implementing To.
type DowngradeCase struct {
	Name string
	From isa.FeatureSet
	To   isa.FeatureSet
}

// Fig14Cases enumerates the downgrade categories of Figure 14.
func Fig14Cases() []DowngradeCase {
	u := func(w, d int, p isa.Predication) isa.FeatureSet {
		return isa.MustNew(isa.MicroX86, w, d, p)
	}
	return []DowngradeCase{
		{"x86-64 to x86-32 (width)", u(64, 32, isa.PartialPredication), u(32, 32, isa.PartialPredication)},
		{"64 to 32 registers", u(32, 64, isa.PartialPredication), u(32, 32, isa.PartialPredication)},
		{"64 to 16 registers", u(32, 64, isa.PartialPredication), u(32, 16, isa.PartialPredication)},
		{"64 to 8 registers", u(32, 64, isa.PartialPredication), u(32, 8, isa.PartialPredication)},
		{"32 to 16 registers", u(32, 32, isa.PartialPredication), u(32, 16, isa.PartialPredication)},
		{"32 to 8 registers", u(32, 32, isa.PartialPredication), u(32, 8, isa.PartialPredication)},
		{"x86 to microx86", isa.MustNew(isa.FullX86, 64, 16, isa.PartialPredication), u(64, 16, isa.PartialPredication)},
		{"full to partial predication", u(32, 32, isa.FullPredication), u(32, 32, isa.PartialPredication)},
	}
}

// Fig14Result holds per-(benchmark, case) downgrade costs as slowdown
// percentages (negative = speedup).
type Fig14Result struct {
	Cases   []DowngradeCase
	CostPct map[string]map[string]float64 // bench -> case name -> %
	// Skipped counts regions excluded from a case (vector code is never
	// scheduled onto SIMD-less cores, matching the paper's scheduler).
	Skipped map[string]int
}

// downgradeEvalConfig is the core every Figure 14 measurement runs on: a
// mid-range out-of-order configuration.
func downgradeEvalConfig() cpu.CoreConfig {
	return cpu.CoreConfig{
		OoO: true, Width: 2, Predictor: cpu.PredTournament,
		IQ: 32, ROB: 64, PRFInt: 96, PRFFP: 64,
		IntALU: 3, IntMul: 1, FPALU: 2, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: true, Fusion: true,
	}
}

// Fig14DowngradeCost measures feature-downgrade emulation cost: each region
// is compiled for the case's source feature set, binary-translated to the
// target, and both versions are profiled on the same core configuration.
func Fig14DowngradeCost(ctx context.Context, regions []workload.Region) (*Fig14Result, error) {
	res := &Fig14Result{
		Cases:   Fig14Cases(),
		CostPct: map[string]map[string]float64{},
		Skipped: map[string]int{},
	}
	cfg := downgradeEvalConfig()
	type agg struct{ native, translated float64 }
	acc := map[string]map[string]*agg{}
	ropts := cpu.RunOptions{MaxInstrs: eval.MaxRegionInstrs, Interrupt: ctx.Err}
	for _, dc := range res.Cases {
		for _, r := range regions {
			f, m, err := r.Build(dc.From.Width)
			if err != nil {
				return nil, err
			}
			prog, err := compiler.Compile(f, dc.From, compiler.Options{})
			if err != nil {
				return nil, err
			}
			prog.Name = r.Name
			trans, err := migrate.Translate(prog, dc.To)
			if err != nil {
				// Vector code on SIMD-less targets: scheduler avoidance.
				res.Skipped[dc.Name]++
				continue
			}
			natProf, _, err := cpu.CollectProfileOpts(prog, m.Clone(), ropts)
			if err != nil {
				return nil, err
			}
			trProf, _, err := cpu.CollectProfileOpts(trans, m, ropts)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", dc.Name, r.Name, err)
			}
			nat, err := perfmodel.Cycles(natProf, cfg)
			if err != nil {
				return nil, err
			}
			tr, err := perfmodel.Cycles(trProf, cfg)
			if err != nil {
				return nil, err
			}
			if acc[r.Benchmark] == nil {
				acc[r.Benchmark] = map[string]*agg{}
			}
			if acc[r.Benchmark][dc.Name] == nil {
				acc[r.Benchmark][dc.Name] = &agg{}
			}
			a := acc[r.Benchmark][dc.Name]
			a.native += r.Weight * nat.Cycles
			a.translated += r.Weight * tr.Cycles
		}
	}
	for bench, byCase := range acc {
		res.CostPct[bench] = map[string]float64{}
		for name, a := range byCase {
			res.CostPct[bench][name] = 100 * (a.translated/a.native - 1)
		}
	}
	return res, nil
}

// MeanCostPct returns the across-benchmark mean cost of a case.
func (r *Fig14Result) MeanCostPct(caseName string) float64 {
	s, n := 0.0, 0
	for _, byCase := range r.CostPct {
		if v, ok := byCase[caseName]; ok {
			s += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Format renders Figure 14.
func (r *Fig14Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 14: feature downgrade cost (slowdown %, negative = speedup)\n")
	fmt.Fprintf(&sb, "  %-28s", "case")
	for _, b := range workload.Names() {
		fmt.Fprintf(&sb, " %7s", b)
	}
	fmt.Fprintf(&sb, " %7s\n", "mean")
	for _, dc := range r.Cases {
		fmt.Fprintf(&sb, "  %-28s", dc.Name)
		for _, b := range workload.Names() {
			if v, ok := r.CostPct[b][dc.Name]; ok {
				fmt.Fprintf(&sb, " %+6.1f%%", v)
			} else {
				fmt.Fprintf(&sb, " %7s", "-")
			}
		}
		fmt.Fprintf(&sb, " %+6.1f%%\n", r.MeanCostPct(dc.Name))
	}
	return sb.String()
}

// Fig15Result compares multi-programmed throughput with and without
// migration/downgrade costs (Figure 15), including the migration census.
type Fig15Result struct {
	Budget Budget
	// Scores relative to the no-cost composite design.
	WithoutCost      float64
	WithCost         float64
	DegradationPct   float64
	Migrations       int
	DowngradeSteps   int
	DowngradesByKind map[string]int
	Steps            int
}

// migrationPenaltyCycles is the fixed per-migration cost (state transfer +
// cache warmup), amortized over a SimPoint-scale interval; it is tiny by
// construction, matching the paper's overlapping-feature-set design goal.
const migrationPenaltyFrac = 0.002

// Fig15MigrationOverhead runs the contention schedule on the composite
// MP-throughput design with each application pinned to one compiled binary
// (its most-preferred feature set on that CMP), charging binary-translation
// downgrade costs (from Figure 14) and per-migration costs.
func (s *Searcher) Fig15MigrationOverhead(ctx context.Context, budget Budget, costs *Fig14Result) (*Fig15Result, error) {
	cmp, err := s.Search(ctx, OrgCompositeFull, ObjMPThroughput, budget)
	if err != nil {
		return nil, err
	}
	si := newSuiteIndex(s.DB.Regions)
	regions := s.DB.Regions

	// Per-benchmark binary feature set: the CMP feature set the benchmark
	// prefers most often (by weighted best-core selection).
	binFS := map[string]isa.FeatureSet{}
	{
		votes := map[string]map[string]float64{}
		fsByKey := map[string]isa.FeatureSet{}
		for ri, r := range regions {
			best := 0
			for k := 1; k < 4; k++ {
				if cmp.Cores[k].Speedup[ri] > cmp.Cores[best].Speedup[ri] {
					best = k
				}
			}
			key := cmp.Cores[best].DP.ISA.Key()
			fsByKey[key] = cmp.Cores[best].DP.ISA.FS
			if votes[r.Benchmark] == nil {
				votes[r.Benchmark] = map[string]float64{}
			}
			votes[r.Benchmark][key] += r.Weight
		}
		for bench, v := range votes {
			bestKey, bestW := "", -1.0
			for k, w := range v {
				if w > bestW {
					bestKey, bestW = k, w
				}
			}
			binFS[bench] = fsByKey[bestKey]
		}
	}

	// Downgrade penalty per (benchmark, from, to): product over downgrade
	// kinds of (1 + kind cost) using the per-benchmark Figure 14 costs.
	kindCase := map[isa.DowngradeKind]string{
		isa.DowngradeWidth:       "x86-64 to x86-32 (width)",
		isa.DowngradeComplexity:  "x86 to microx86",
		isa.DowngradePredication: "full to partial predication",
	}
	depthCase := func(from, to int) string {
		switch {
		case from == 64 && to >= 32:
			return "64 to 32 registers"
		case from == 64 && to >= 16:
			return "64 to 16 registers"
		case from == 64:
			return "64 to 8 registers"
		case to >= 16:
			return "32 to 16 registers"
		default:
			return "32 to 8 registers"
		}
	}
	res := &Fig15Result{Budget: budget, DowngradesByKind: map[string]int{}}
	penalty := func(bench string, from, to isa.FeatureSet) (float64, []isa.DowngradeKind) {
		kinds := isa.Downgrades(from, to)
		f := 1.0
		for _, k := range kinds {
			var name string
			if k == isa.DowngradeDepth {
				name = depthCase(from.Depth, to.Depth)
			} else if k == isa.DowngradeSIMD {
				// Vector regions run their precompiled scalar version;
				// the candidate's own profile already is that version.
				continue
			} else {
				name = kindCase[k]
			}
			c := costs.CostPct[bench][name] / 100
			if c < 0 {
				c = 0
			}
			f *= 1 + c
		}
		return f, kinds
	}

	// Baseline: contention schedule without costs.
	base := si.scheduleMP(&cmp.Cores, regions, nil)

	// With costs: each thread's performance on a core is its binary's
	// profile on that core's microarchitecture, scaled by downgrade
	// penalties; migrations charge a fixed fraction.
	// Precompute per-region, per-core adjusted speedups.
	adj := make([][4]float64, len(regions))
	ref := s.Reference()
	pol := s.DB.Policy.WithDefaults()
	for ri, r := range regions {
		bFS := binFS[r.Benchmark]
		bProfiles, err := s.DB.Profiles(ctx, ISAChoice{FS: bFS})
		if err != nil {
			return nil, err
		}
		for k := 0; k < 4; k++ {
			if bProfiles[ri] == nil {
				// Quarantined binary profile: score at the penalty.
				adj[ri][k] = pol.SpeedupPenalty
				continue
			}
			coreFS := cmp.Cores[k].DP.ISA.FS
			perf, err := perfmodel.Cycles(bProfiles[ri], cmp.Cores[k].DP.Cfg)
			if err != nil {
				return nil, err
			}
			sp := ref[ri].Cycles / perf.Cycles
			if !coreFS.Subsumes(bFS) {
				p, _ := penalty(r.Benchmark, bFS, coreFS)
				sp /= p
			}
			adj[ri][k] = sp
		}
	}
	// NOTE: the hook is evaluated for every permutation trial; the census
	// must only count committed assignments, so it is taken in a second
	// pass over the committed schedule (TimeByBenchCore tracks commits).
	withCost := si.scheduleMP(&cmp.Cores, regions, func(th, region, core int, _ float64, migrated bool) float64 {
		sp := adj[region][core]
		if migrated {
			sp *= 1 - migrationPenaltyFrac
		}
		return sp
	})
	downgradeSteps := 0
	kindCount := map[string]int{}
	for bench, byCore := range withCost.TimeByBenchCore {
		for core, t := range byCore {
			if t == 0 {
				continue
			}
			if !cmp.Cores[core].DP.ISA.FS.Subsumes(binFS[bench]) {
				downgradeSteps++
				for _, k := range isa.Downgrades(binFS[bench], cmp.Cores[core].DP.ISA.FS) {
					kindCount[k.String()]++
				}
			}
		}
	}
	res.WithoutCost = base.Throughput
	res.WithCost = withCost.Throughput
	res.DegradationPct = 100 * (1 - withCost.Throughput/base.Throughput)
	res.Migrations = withCost.Migrations
	res.Steps = withCost.Steps
	res.DowngradeSteps = downgradeSteps
	res.DowngradesByKind = kindCount
	return res, nil
}

// Format renders Figure 15's summary.
func (r *Fig15Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 15: multi-programmed throughput with migration cost (%s)\n", r.Budget)
	fmt.Fprintf(&sb, "  composite (idealized compilation): %.4f\n", r.WithoutCost)
	fmt.Fprintf(&sb, "  composite with migration cost:     %.4f (%.2f%% degradation; paper: 0.42%% avg)\n",
		r.WithCost, r.DegradationPct)
	fmt.Fprintf(&sb, "  schedule: %d steps, %d migrations, %d downgraded intervals\n",
		r.Steps, r.Migrations, r.DowngradeSteps)
	for k, n := range r.DowngradesByKind {
		fmt.Fprintf(&sb, "    downgrade %-24s %d\n", k, n)
	}
	return sb.String()
}
