//go:build race

package explore

// raceEnabled reports that the race detector is active: full-suite search
// tests skip themselves (5-20x slowdown puts them past any sane timeout)
// while the concurrency-focused TestFault* suite still runs instrumented.
const raceEnabled = true
