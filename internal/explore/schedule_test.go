package explore

import (
	"testing"

	"compisa/internal/workload"
)

func TestSuiteIndexShape(t *testing.T) {
	si := newSuiteIndex(workload.Regions())
	if len(si.benchRegions) != 8 {
		t.Fatalf("expected 8 benchmarks, got %d", len(si.benchRegions))
	}
	if len(si.mixes) != 70 {
		t.Errorf("C(8,4) = 70 mixes, got %d", len(si.mixes))
	}
	if len(si.perms) != 24 {
		t.Errorf("4! = 24 permutations, got %d", len(si.perms))
	}
	total := 0
	for _, rs := range si.benchRegions {
		total += len(rs)
	}
	if total != 49 {
		t.Errorf("suite index covers %d regions, want 49", total)
	}
	// Weights normalized per benchmark.
	for bi, ws := range si.weights {
		sum := 0.0
		for _, w := range ws {
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("benchmark %d weights sum to %f", bi, sum)
		}
	}
}

// fakeCandidate builds a candidate with uniform speedup/EDP values.
func fakeCandidate(n int, speedup, edp, peak, area float64) *Candidate {
	c := &Candidate{PeakW: peak, AreaMM2: area,
		Speedup: make([]float64, n), NormEDP: make([]float64, n), M: make([]Metric, n)}
	for i := 0; i < n; i++ {
		c.Speedup[i] = speedup
		c.NormEDP[i] = edp
		c.M[i] = Metric{Cycles: 1000 / speedup, Energy: edp}
	}
	return c
}

func TestScoreMPUniformCores(t *testing.T) {
	regions := workload.Regions()
	si := newSuiteIndex(regions)
	c := fakeCandidate(len(regions), 2.0, 0.5, 10, 12)
	cores := [4]*Candidate{c, c, c, c}
	if got := si.scoreMP(&cores, false); got < 1.999 || got > 2.001 {
		t.Errorf("uniform speedup 2.0 must score 2.0, got %f", got)
	}
	if got := si.scoreMP(&cores, true); got < -0.501 || got > -0.499 {
		t.Errorf("uniform EDP 0.5 must score -0.5, got %f", got)
	}
}

func TestScoreMPOptimalAssignment(t *testing.T) {
	regions := workload.Regions()
	n := len(regions)
	si := newSuiteIndex(regions)
	// One specialist core that is 10x on exactly one region per step and
	// 1x elsewhere; three 2x generalists. The scheduler must route the
	// matching thread to the specialist whenever it helps.
	gen := fakeCandidate(n, 2.0, 0.5, 10, 12)
	spec := fakeCandidate(n, 1.0, 1.0, 10, 12)
	for i := 0; i < n; i += 7 {
		spec.Speedup[i] = 10
	}
	cores := [4]*Candidate{spec, gen, gen, gen}
	got := si.scoreMP(&cores, false)
	// Lower bound: generalists alone would give (3*2+1)/4 = 1.75; the
	// specialist must add value above that.
	if got <= 1.75 {
		t.Errorf("optimal assignment must exploit the specialist: %f", got)
	}
}

func TestScoreSTPicksBestCore(t *testing.T) {
	regions := workload.Regions()
	n := len(regions)
	si := newSuiteIndex(regions)
	slow := fakeCandidate(n, 1.0, 1.0, 10, 12)
	fast := fakeCandidate(n, 3.0, 0.2, 10, 12)
	cores := [4]*Candidate{slow, slow, slow, fast}
	if got := si.scoreST(&cores, false); got < 2.999 || got > 3.001 {
		t.Errorf("ST must migrate every phase to the fast core: %f", got)
	}
	if got := si.scoreST(&cores, true); got < -0.201 || got > -0.199 {
		t.Errorf("ST EDP must pick the efficient core: %f", got)
	}
}

func TestFeasibleBudgets(t *testing.T) {
	regions := workload.Regions()
	n := len(regions)
	c := fakeCandidate(n, 1, 1, 6, 12)
	cores := [4]*Candidate{c, c, c, c}
	if !feasible(&cores, Budget{}, false) {
		t.Error("unlimited budget must accept everything")
	}
	if feasible(&cores, Budget{PeakW: 20}, false) {
		t.Error("4x6W exceeds a 20W MP budget")
	}
	if !feasible(&cores, Budget{PeakW: 20}, true) {
		t.Error("6W per core fits a 20W ST budget (one core on)")
	}
	if feasible(&cores, Budget{AreaMM2: 40}, false) {
		t.Error("48mm2 exceeds a 40mm2 budget")
	}
	if !feasible(&cores, Budget{AreaMM2: 48}, false) {
		t.Error("48mm2 fits exactly")
	}
}

func TestBudgetString(t *testing.T) {
	if (Budget{PeakW: 40}).String() != "40W" {
		t.Error("power budget format")
	}
	if (Budget{AreaMM2: 48}).String() != "48mm2" {
		t.Error("area budget format")
	}
	if (Budget{}).String() != "unlimited" {
		t.Error("unlimited budget format")
	}
}

func TestObjectiveKinds(t *testing.T) {
	if ObjMPThroughput.SingleThread() || ObjMPEDP.SingleThread() {
		t.Error("MP objectives are not single-thread")
	}
	if !ObjSTPerf.SingleThread() || !ObjSTEDP.SingleThread() {
		t.Error("ST objectives power one core at a time")
	}
}

func TestScheduleMPCountsMigrations(t *testing.T) {
	regions := workload.Regions()
	n := len(regions)
	si := newSuiteIndex(regions)
	// Alternating specialists force reassignments between steps.
	a := fakeCandidate(n, 1, 1, 10, 12)
	b := fakeCandidate(n, 1, 1, 10, 12)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a.Speedup[i] = 5
		} else {
			b.Speedup[i] = 5
		}
	}
	g := fakeCandidate(n, 1, 1, 10, 12)
	cores := [4]*Candidate{a, b, g, g}
	st := si.scheduleMP(&cores, regions, nil)
	if st.Migrations == 0 {
		t.Error("alternating specialists must trigger migrations")
	}
	if st.Steps == 0 || st.Throughput <= 0 {
		t.Error("schedule must produce steps and positive throughput")
	}
}
