// Integration-level fault-tolerance tests: search, checkpoint, and
// cancellation behavior under injection. The pipeline-level fault tests
// (retry, quarantine, degradation, singleflight) live with the evaluation
// layer in internal/eval.

package explore

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"compisa/internal/fault"
)

// injector builds a deterministic fault injector or fails the test.
func injector(t *testing.T, cfg fault.Config) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// smallDB shrinks the suite to its first n regions so fault-path tests stay
// fast; the fault machinery is region-count agnostic.
func smallDB(n int, in *fault.Injector) *DB {
	db := NewDB()
	db.Regions = db.Regions[:n]
	db.Inject = in
	return db
}

// TestFaultCancelMidSearch: canceling the context mid-search returns
// context.Canceled promptly instead of finishing the sweep.
func TestFaultCancelMidSearch(t *testing.T) {
	db := smallDB(3, nil)
	ctx := context.Background()
	s, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Search(cctx, OrgCompositeFull, ObjMPThroughput, Budget{AreaMM2: 64})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; must abort promptly", elapsed)
	}
}

// TestFaultCheckpointRoundtrip: a faulty run checkpointed to disk restores
// into a fresh DB/Searcher (with no injector at all) and reproduces the same
// search result and coverage without recomputation.
func TestFaultCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dse.ckpt")
	in := injector(t, fault.Config{Seed: 9, Rate: 0.4, Kinds: []fault.Kind{fault.KindCompile}})
	db1 := smallDB(3, in)
	ctx := context.Background()
	s1, err := NewSearcher(ctx, db1)
	if err != nil {
		t.Fatal(err)
	}
	budget := Budget{AreaMM2: 64}
	cmp1, err := s1.Search(ctx, OrgCompositeFixed, ObjMPThroughput, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, Snapshot(db1, s1)); err != nil {
		t.Fatal(err)
	}

	st, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("saved checkpoint reported missing")
	}
	if st.Version != checkpointVersion {
		t.Fatalf("checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	if len(st.Candidates) == 0 {
		t.Fatal("checkpoint should carry the candidate cache tier")
	}
	if st.Stats.IsZero() {
		t.Fatal("checkpoint should carry pipeline stats")
	}
	// The resumed run injects nothing: only the restored state can reproduce
	// the faulty run's quarantines and scores.
	db2 := smallDB(3, nil)
	st.RestoreDB(db2)
	s2, err := NewSearcher(ctx, db2)
	if err != nil {
		t.Fatal(err)
	}
	st.RestoreSearcher(s2)
	// Restored candidates satisfy the resumed search without re-scoring.
	evalsAfterRestore := db2.Stats.ModelEvals.Load()
	cmp2, err := s2.Search(ctx, OrgCompositeFixed, ObjMPThroughput, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats.ModelEvals.Load(); got != evalsAfterRestore {
		t.Errorf("resumed search re-scored design points: ModelEvals %d -> %d", evalsAfterRestore, got)
	}
	if cmp1.Score != cmp2.Score {
		t.Errorf("resumed score %v != original %v", cmp2.Score, cmp1.Score)
	}
	for i := range cmp1.Cores {
		if cmp1.Cores[i].DP.String() != cmp2.Cores[i].DP.String() {
			t.Errorf("core %d: resumed %s != original %s", i, cmp2.Cores[i].DP, cmp1.Cores[i].DP)
		}
	}
	if a, b := db1.Coverage().String(), db2.Coverage().String(); a != b {
		t.Errorf("resumed coverage %s != original %s", b, a)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt")); err != nil {
		t.Errorf("missing checkpoint should be a silent empty state, got %v", err)
	}
}

// TestFaultSearchCompletesUnderInjection: a full composite search at a
// realistic fault rate still completes, reports partial coverage, and keeps
// every core's score finite.
func TestFaultSearchCompletesUnderInjection(t *testing.T) {
	in := injector(t, fault.Config{Seed: 5, Rate: 0.15, TransientFrac: 0.3})
	db := smallDB(3, in)
	ctx := context.Background()
	s, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := s.Search(ctx, OrgCompositeFull, ObjMPThroughput, Budget{AreaMM2: 96})
	if err != nil {
		t.Fatalf("search must survive injection: %v", err)
	}
	if math.IsNaN(cmp.Score) || cmp.Score <= 0 {
		t.Fatalf("score %v must stay finite and positive under degradation", cmp.Score)
	}
	cov := db.Coverage()
	if cov.Total == 0 || cov.Evaluated+len(cov.Quarantined) != cov.Total {
		t.Fatalf("inconsistent coverage %s", cov)
	}
	t.Logf("coverage under 15%% injection: %s", cov)
}
