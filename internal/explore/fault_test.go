package explore

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"compisa/internal/cpu"
	"compisa/internal/fault"
)

// injector builds a deterministic fault injector or fails the test.
func injector(t *testing.T, cfg fault.Config) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// smallDB shrinks the suite to its first n regions so fault-path tests stay
// fast; the fault machinery is region-count agnostic.
func smallDB(n int, in *fault.Injector) *DB {
	db := NewDB()
	db.Regions = db.Regions[:n]
	db.Inject = in
	return db
}

// injectable returns a non-reference composite choice (subject to injection).
func injectable(t *testing.T) ISAChoice {
	t.Helper()
	for _, c := range CompositeChoices() {
		if !isReference(c) {
			return c
		}
	}
	t.Fatal("no injectable composite choice")
	return ISAChoice{}
}

// TestFaultCompileQuarantine: persistent compile faults quarantine every
// (region, ISA) pair instead of failing Profiles, and each quarantine reason
// names the region and the ISA.
func TestFaultCompileQuarantine(t *testing.T) {
	in := injector(t, fault.Config{Seed: 7, Rate: 1, Kinds: []fault.Kind{fault.KindCompile}})
	db := smallDB(3, in)
	c := injectable(t)
	ps, err := db.Profiles(context.Background(), c)
	if err != nil {
		t.Fatalf("Profiles must degrade, not fail: %v", err)
	}
	for i, p := range ps {
		if p != nil {
			t.Errorf("region %d: expected quarantined nil slot", i)
		}
	}
	cov := db.Coverage()
	if len(cov.Quarantined) != 3 || cov.Evaluated != 0 {
		t.Fatalf("coverage %s, want 0/3 with 3 quarantined", cov)
	}
	for _, q := range cov.Quarantined {
		if !strings.Contains(q.Reason, q.Region) || !strings.Contains(q.Reason, c.Key()) {
			t.Errorf("reason %q should name region %q and ISA %q", q.Reason, q.Region, c.Key())
		}
		if !strings.Contains(q.Reason, "compile") {
			t.Errorf("reason %q should identify the compile stage", q.Reason)
		}
	}
}

// TestFaultReferenceExempt: the x86-64 reference ISA ignores the injector —
// a 100% fault rate still yields a complete reference profile set.
func TestFaultReferenceExempt(t *testing.T) {
	in := injector(t, fault.Config{Seed: 7, Rate: 1})
	db := smallDB(3, in)
	ps, err := db.Profiles(context.Background(), X8664Choice())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if p == nil {
			t.Fatalf("reference region %d quarantined despite exemption", i)
		}
	}
	if cov := db.Coverage(); len(cov.Quarantined) != 0 {
		t.Fatalf("reference run quarantined pairs: %s", cov)
	}
}

// TestFaultTransientRetry: faults marked transient clear on retry, so a 100%
// injection rate with TransientFrac=1 still completes with zero quarantines.
func TestFaultTransientRetry(t *testing.T) {
	in := injector(t, fault.Config{Seed: 11, Rate: 1, TransientFrac: 1,
		Kinds: []fault.Kind{fault.KindCompile, fault.KindRunaway, fault.KindCorrupt}})
	db := smallDB(3, in)
	retries := 0
	var mu sync.Mutex
	db.Log = func(format string, args ...any) {
		mu.Lock()
		if strings.Contains(format, "retrying") {
			retries++
		}
		mu.Unlock()
	}
	ps, err := db.Profiles(context.Background(), injectable(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if p == nil {
			t.Errorf("region %d quarantined; transient faults must clear on retry", i)
		}
	}
	if retries == 0 {
		t.Error("expected at least one logged retry under 100% injection")
	}
}

// TestFaultKindsExerciseRealPaths: runaway and corruption faults surface
// through the CPU's genuine watchdog and decode errors, tagged as injected.
func TestFaultKindsExerciseRealPaths(t *testing.T) {
	cases := []struct {
		kind fault.Kind
		want error
	}{
		{fault.KindRunaway, cpu.ErrInstrBudget},
		{fault.KindCorrupt, cpu.ErrUnimplementedOp},
	}
	for _, tc := range cases {
		in := injector(t, fault.Config{Seed: 3, Rate: 1, Kinds: []fault.Kind{tc.kind}})
		db := smallDB(1, in)
		_, err := db.profileWithRetry(context.Background(), db.Regions[0], injectable(t))
		if err == nil {
			t.Fatalf("%v: expected an error", tc.kind)
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%v: error %v should wrap %v", tc.kind, err, tc.want)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("%v: error %v should be tagged injected", tc.kind, err)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) || fe.Stage != fault.StageExec {
			t.Errorf("%v: error %v should classify as an exec-stage fault", tc.kind, err)
		}
	}
}

// TestFaultDegradedScoring: quarantined pairs score at exactly the documented
// Policy penalties rather than aborting Evaluate.
func TestFaultDegradedScoring(t *testing.T) {
	in := injector(t, fault.Config{Seed: 7, Rate: 1, Kinds: []fault.Kind{fault.KindCompile}})
	db := smallDB(3, in)
	ctx := context.Background()
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := DesignPoint{ISA: injectable(t), Cfg: ReferenceConfig()}
	c, err := db.Evaluate(ctx, dp, ref)
	if err != nil {
		t.Fatalf("Evaluate must degrade, not fail: %v", err)
	}
	pol := db.Policy.withDefaults()
	for r := range db.Regions {
		if !c.Degraded[r] {
			t.Fatalf("region %d: expected degraded evaluation", r)
		}
		if c.Speedup[r] != pol.SpeedupPenalty || c.NormEDP[r] != pol.EDPPenalty {
			t.Errorf("region %d: speedup %v edp %v, want penalties %v / %v",
				r, c.Speedup[r], c.NormEDP[r], pol.SpeedupPenalty, pol.EDPPenalty)
		}
	}
}

// TestFaultSeedDeterminism: the same seed yields identical quarantine lists
// and identical degraded scores across independent runs.
func TestFaultSeedDeterminism(t *testing.T) {
	cfg := fault.Config{Seed: 42, Rate: 0.5}
	run := func() (Coverage, []float64) {
		db := smallDB(4, injector(t, cfg))
		ctx := context.Background()
		ref, err := db.ReferenceMetrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var speedups []float64
		for _, ch := range XIzedChoices() {
			c, err := db.Evaluate(ctx, DesignPoint{ISA: ch, Cfg: ReferenceConfig()}, ref)
			if err != nil {
				t.Fatal(err)
			}
			speedups = append(speedups, c.Speedup...)
		}
		return db.Coverage(), speedups
	}
	cov1, sp1 := run()
	cov2, sp2 := run()
	if cov1.String() != cov2.String() {
		t.Fatalf("coverage differs across runs: %s vs %s", cov1, cov2)
	}
	for i := range cov1.Quarantined {
		if cov1.Quarantined[i] != cov2.Quarantined[i] {
			t.Errorf("quarantine entry %d differs: %+v vs %+v", i, cov1.Quarantined[i], cov2.Quarantined[i])
		}
	}
	for i := range sp1 {
		if sp1[i] != sp2[i] {
			t.Errorf("speedup %d differs: %v vs %v", i, sp1[i], sp2[i])
		}
	}
	// A different seed must not reproduce the same fault pattern (with 4
	// regions x 3 ISAs at 50% rate, identical lists are vanishingly unlikely).
	db3 := smallDB(4, injector(t, fault.Config{Seed: 43, Rate: 0.5}))
	ctx := context.Background()
	if _, err := db3.ReferenceMetrics(ctx); err != nil {
		t.Fatal(err)
	}
	for _, ch := range XIzedChoices() {
		if _, err := db3.Profiles(ctx, ch); err != nil {
			t.Fatal(err)
		}
	}
	same := len(db3.Coverage().Quarantined) == len(cov1.Quarantined)
	if same {
		for i, q := range db3.Coverage().Quarantined {
			if q != cov1.Quarantined[i] {
				same = false
				break
			}
		}
	}
	if same && len(cov1.Quarantined) > 0 {
		t.Error("different seeds produced identical quarantine lists")
	}
}

// TestFaultProfilesSingleflight: concurrent Profiles calls for one ISA share
// a single computation (no cache stampede).
func TestFaultProfilesSingleflight(t *testing.T) {
	db := smallDB(3, nil)
	c := injectable(t)
	const callers = 16
	results := make([][]*cpu.Profile, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps, err := db.Profiles(context.Background(), c)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = ps
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if len(results[i]) == 0 || results[i][0] != results[0][0] {
			t.Fatalf("caller %d received a distinct computation; stampede not deduplicated", i)
		}
	}
}

// TestFaultCancelMidSearch: canceling the context mid-search returns
// context.Canceled promptly instead of finishing the sweep.
func TestFaultCancelMidSearch(t *testing.T) {
	db := smallDB(3, nil)
	ctx := context.Background()
	s, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Search(cctx, OrgCompositeFull, ObjMPThroughput, Budget{AreaMM2: 64})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; must abort promptly", elapsed)
	}
}

// TestFaultCheckpointRoundtrip: a faulty run checkpointed to disk restores
// into a fresh DB/Searcher (with no injector at all) and reproduces the same
// search result and coverage without recomputation.
func TestFaultCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dse.ckpt")
	in := injector(t, fault.Config{Seed: 9, Rate: 0.4, Kinds: []fault.Kind{fault.KindCompile}})
	db1 := smallDB(3, in)
	ctx := context.Background()
	s1, err := NewSearcher(ctx, db1)
	if err != nil {
		t.Fatal(err)
	}
	budget := Budget{AreaMM2: 64}
	cmp1, err := s1.Search(ctx, OrgCompositeFixed, ObjMPThroughput, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, Snapshot(db1, s1)); err != nil {
		t.Fatal(err)
	}

	st, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("saved checkpoint reported missing")
	}
	// The resumed run injects nothing: only the restored state can reproduce
	// the faulty run's quarantines and scores.
	db2 := smallDB(3, nil)
	st.RestoreDB(db2)
	s2, err := NewSearcher(ctx, db2)
	if err != nil {
		t.Fatal(err)
	}
	st.RestoreSearcher(s2)
	cmp2, err := s2.Search(ctx, OrgCompositeFixed, ObjMPThroughput, budget)
	if err != nil {
		t.Fatal(err)
	}
	if cmp1.Score != cmp2.Score {
		t.Errorf("resumed score %v != original %v", cmp2.Score, cmp1.Score)
	}
	for i := range cmp1.Cores {
		if cmp1.Cores[i].DP.String() != cmp2.Cores[i].DP.String() {
			t.Errorf("core %d: resumed %s != original %s", i, cmp2.Cores[i].DP, cmp1.Cores[i].DP)
		}
	}
	if a, b := db1.Coverage().String(), db2.Coverage().String(); a != b {
		t.Errorf("resumed coverage %s != original %s", b, a)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt")); err != nil {
		t.Errorf("missing checkpoint should be a silent empty state, got %v", err)
	}
}

// TestFaultSearchCompletesUnderInjection: a full composite search at a
// realistic fault rate still completes, reports partial coverage, and keeps
// every core's score finite.
func TestFaultSearchCompletesUnderInjection(t *testing.T) {
	in := injector(t, fault.Config{Seed: 5, Rate: 0.15, TransientFrac: 0.3})
	db := smallDB(3, in)
	ctx := context.Background()
	s, err := NewSearcher(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := s.Search(ctx, OrgCompositeFull, ObjMPThroughput, Budget{AreaMM2: 96})
	if err != nil {
		t.Fatalf("search must survive injection: %v", err)
	}
	if math.IsNaN(cmp.Score) || cmp.Score <= 0 {
		t.Fatalf("score %v must stay finite and positive under degradation", cmp.Score)
	}
	cov := db.Coverage()
	if cov.Total == 0 || cov.Evaluated+len(cov.Quarantined) != cov.Total {
		t.Fatalf("inconsistent coverage %s", cov)
	}
	t.Logf("coverage under 15%% injection: %s", cov)
}
