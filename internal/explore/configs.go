// Package explore is the domain layer of the design-space-exploration
// pipeline (par → eval → explore; see DESIGN.md, "Pipeline layering"): the
// pruned microarchitectural configuration space (Table I), the multicore
// searches, and the experiment drivers behind every figure and table of the
// paper's evaluation. The expensive work — profiling the 26 ISA choices and
// scoring the 26x180 = 4680 single-core design points — lives in
// internal/eval; this package re-exports that layer's types (see eval.go in
// this directory) so consumers keep a single import.
package explore

import (
	"compisa/internal/cpu"
)

// wau couples the viable (width, int ALU, FP/SIMD ALU) combinations; Table I
// prunes combinations like 4-issue cores with a single ALU.
type wau struct{ width, alu, fp int }

var inorderWAU = []wau{
	{1, 1, 1}, {2, 1, 1}, {2, 3, 1}, {4, 3, 2}, {4, 6, 2},
}

var oooWAU = []wau{
	{1, 1, 1}, {2, 3, 1}, {2, 3, 2}, {4, 6, 2}, {4, 6, 4},
}

var predictors = []cpu.PredictorKind{cpu.PredLocal, cpu.PredGShare, cpu.PredTournament}

// iqRob couples instruction-queue and reorder-buffer sizes (and the physical
// register files that feed them, as in Tables III/IV).
type iqRob struct{ iq, rob, prfInt, prfFP int }

var oooIQROB = []iqRob{
	{32, 64, 96, 64},
	{64, 128, 192, 160},
}

// Configs generates the pruned microarchitectural configuration space: 180
// distinct configurations (60 in-order + 120 out-of-order).
func Configs() []cpu.CoreConfig {
	var out []cpu.CoreConfig
	caches := []struct{ l1, l2 cpu.CacheCfg }{
		{cpu.L1Cfg32k, cpu.L2Cfg4M},
		{cpu.L1Cfg32k, cpu.L2Cfg8M},
		{cpu.L1Cfg64k, cpu.L2Cfg4M},
		{cpu.L1Cfg64k, cpu.L2Cfg8M},
	}
	lsqFor := func(width int) int {
		if width >= 4 {
			return 32
		}
		return 16
	}
	for _, w := range inorderWAU {
		for _, bp := range predictors {
			for _, c := range caches {
				out = append(out, cpu.CoreConfig{
					OoO: false, Width: w.width, Predictor: bp,
					IQ: 32, ROB: 64, PRFInt: 64, PRFFP: 16,
					IntALU: w.alu, IntMul: 1, FPALU: w.fp,
					LSQ: lsqFor(w.width),
					L1I: c.l1, L1D: c.l1, L2: c.l2,
					// The narrowest in-order cores decode directly
					// and carry no micro-op cache.
					UopCache: w.width > 1, Fusion: true,
				})
			}
		}
	}
	for _, w := range oooWAU {
		for _, qr := range oooIQROB {
			for _, bp := range predictors {
				for _, c := range caches {
					out = append(out, cpu.CoreConfig{
						OoO: true, Width: w.width, Predictor: bp,
						IQ: qr.iq, ROB: qr.rob, PRFInt: qr.prfInt, PRFFP: qr.prfFP,
						IntALU: w.alu, IntMul: func() int {
							if w.width >= 4 {
								return 2
							}
							return 1
						}(), FPALU: w.fp,
						LSQ: lsqFor(w.width),
						L1I: c.l1, L1D: c.l1, L2: c.l2,
						UopCache: true, Fusion: true,
					})
				}
			}
		}
	}
	return out
}
