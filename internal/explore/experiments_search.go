package explore

import (
	"context"
	"fmt"
	"strings"

	"compisa/internal/isa"
)

// PowerBudgets and AreaBudgets are the evaluation's budget axes.
var (
	MPPowerBudgets = []Budget{{PeakW: 20}, {PeakW: 40}, {PeakW: 60}, {}}
	STPowerBudgets = []Budget{{PeakW: 5}, {PeakW: 10}, {PeakW: 15}, {}}
	AreaBudgets    = []Budget{{AreaMM2: 48}, {AreaMM2: 64}, {AreaMM2: 80}, {}}
)

// OrgResult is one organization's result at one budget.
type OrgResult struct {
	Org    Organization
	Budget Budget
	CMP    CMP
	// Score is the raw objective; Relative is normalized to the
	// homogeneous organization at the same budget.
	Score    float64
	Relative float64
	Err      error
}

// SweepResult is a (budget x organization) sweep for one objective.
type SweepResult struct {
	Objective Objective
	Budgets   []Budget
	Rows      [][]OrgResult // [budget][organization]
}

// Sweep runs all five organizations across the given budgets. Infeasible
// searches become infeasible rows; cancellation aborts the sweep.
func (s *Searcher) Sweep(ctx context.Context, obj Objective, budgets []Budget) (*SweepResult, error) {
	res := &SweepResult{Objective: obj, Budgets: budgets}
	for _, b := range budgets {
		var row []OrgResult
		var homScore float64
		for _, org := range Organizations() {
			r := OrgResult{Org: org, Budget: b}
			cmp, err := s.Search(ctx, org, obj, b)
			if err != nil {
				if isCtxErr(err) {
					return nil, err
				}
				r.Err = err
			} else {
				r.CMP = cmp
				r.Score = cmp.Score
			}
			if org == OrgHomogeneous && err == nil {
				homScore = cmp.Score
			}
			row = append(row, r)
		}
		// For speedup objectives Relative > 1 beats homogeneous; for EDP
		// objectives the scores are negated EDP means, so the ratio is
		// the relative EDP (< 1 beats homogeneous).
		for i := range row {
			if row[i].Err == nil && homScore != 0 {
				row[i].Relative = row[i].Score / homScore
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the sweep like the paper's bar charts (one row per budget).
func (r *SweepResult) Format(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s", "budget")
	for _, org := range Organizations() {
		fmt.Fprintf(&sb, " %22s", shortOrg(org))
	}
	sb.WriteByte('\n')
	for bi, b := range r.Budgets {
		fmt.Fprintf(&sb, "%-10s", b.String())
		for _, cell := range r.Rows[bi] {
			if cell.Err != nil {
				fmt.Fprintf(&sb, " %22s", "infeasible")
				continue
			}
			fmt.Fprintf(&sb, " %22.3f", cell.Relative)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func shortOrg(o Organization) string {
	switch o {
	case OrgHomogeneous:
		return "homogeneous"
	case OrgSingleISAHetero:
		return "single-ISA-hetero"
	case OrgCompositeFixed:
		return "composite-x86ized"
	case OrgHeteroVendor:
		return "hetero-ISA-vendor"
	default:
		return "composite-full"
	}
}

// TableRow renders one core of a composite CMP in the style of Tables III/IV.
func TableRow(i int, c *Candidate) string {
	fs := c.DP.ISA.FS
	cfg := c.DP.Cfg
	cplx := "x86"
	if fs.Complexity == isa.MicroX86 {
		cplx = "ux86"
	}
	pred := "P"
	if fs.Predication == isa.FullPredication {
		pred = "F"
	}
	exe := "I"
	if cfg.OoO {
		exe = "O"
	}
	return fmt.Sprintf("%d  %-4s %2d %2d %s %s %d %s  %3dI/%3dF rob%-3d iq%-2d alu%d mul%d fp%d lsq%-2d %2dkB/%d %dMB/%d",
		i, cplx, fs.Width, fs.Depth, pred, exe, cfg.Width, cfg.Predictor.ShortString(),
		cfg.PRFInt, cfg.PRFFP, cfg.ROB, cfg.IQ, cfg.IntALU, cfg.IntMul, cfg.FPALU, cfg.LSQ,
		cfg.L1I.SizeKB, cfg.L1I.Assoc, cfg.L2.PerCoreKB()/1024, cfg.L2.Assoc)
}

// OptimalDesignTable runs the composite-full search per budget and renders
// the architectural composition (Tables III and IV).
func (s *Searcher) OptimalDesignTable(ctx context.Context, obj Objective, budgets []Budget) (string, error) {
	var sb strings.Builder
	name := "Table III: composite-ISA multicores optimized for multi-programmed throughput"
	if obj == ObjMPEDP {
		name = "Table IV: composite-ISA multicores optimized for multi-programmed efficiency (EDP)"
	}
	fmt.Fprintf(&sb, "%s\n", name)
	for _, b := range budgets {
		cmp, err := s.Search(ctx, OrgCompositeFull, obj, b)
		if err != nil {
			if isCtxErr(err) {
				return "", err
			}
			fmt.Fprintf(&sb, "-- budget %s: infeasible (%v)\n", b, err)
			continue
		}
		fmt.Fprintf(&sb, "-- budget %s (score %.3f, %.1fW, %.1fmm2)\n", b, cmp.Score, cmp.TotalPeak(), cmp.TotalArea())
		for i, c := range cmp.Cores {
			fmt.Fprintf(&sb, "   %s\n", TableRow(i, c))
		}
	}
	return sb.String(), nil
}
