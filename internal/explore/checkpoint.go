// Checkpoint/resume for the exploration pipeline: the profile cache (the
// expensive functional executions), the quarantine list, and the search
// frontier (completed multicore searches) serialize to one JSON file, so a
// killed run resumes instead of recomputing. Saves are atomic (tmp+rename);
// a missing file is an empty checkpoint, and a version-mismatched or corrupt
// file is an error rather than a silent partial restore.

package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"compisa/internal/cpu"
)

// checkpointVersion gates restores: bump it whenever the profile or design
// point schema changes incompatibly.
const checkpointVersion = 1

// SavedSearch records one completed multicore search as its four design
// points; resume re-evaluates the points against the restored profile cache,
// which reproduces the exact cores (evaluation is deterministic).
type SavedSearch struct {
	Score  float64        `json:"score"`
	Points [4]DesignPoint `json:"points"`
}

// CheckpointState is the serialized resume state.
type CheckpointState struct {
	Version    int                       `json:"version"`
	Profiles   map[string][]*cpu.Profile `json:"profiles"`
	Quarantine map[string]string         `json:"quarantine,omitempty"`
	Frontier   map[string]SavedSearch    `json:"frontier,omitempty"`
}

// Snapshot captures the DB's caches and (if s is non-nil) the Searcher's
// frontier into a checkpoint state.
func Snapshot(db *DB, s *Searcher) *CheckpointState {
	st := &CheckpointState{Version: checkpointVersion}
	st.Profiles, st.Quarantine = db.exportState()
	if s != nil {
		st.Frontier = s.exportFrontier()
	}
	return st
}

// RestoreDB seeds the profile cache and quarantine list. Call it before
// NewSearcher so the reference metrics reuse the restored profiles.
func (st *CheckpointState) RestoreDB(db *DB) {
	if st == nil {
		return
	}
	db.importState(st.Profiles, st.Quarantine)
}

// RestoreSearcher seeds the search frontier.
func (st *CheckpointState) RestoreSearcher(s *Searcher) {
	if st == nil {
		return
	}
	s.importFrontier(st.Frontier)
}

// LoadCheckpoint reads a checkpoint file; a missing file yields (nil, nil).
func LoadCheckpoint(path string) (*CheckpointState, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("explore: load checkpoint: %w", err)
	}
	var st CheckpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("explore: checkpoint %s: version %d, want %d", path, st.Version, checkpointVersion)
	}
	return &st, nil
}

// SaveCheckpoint writes the state atomically (tmp file + rename), so a crash
// mid-save never leaves a truncated checkpoint behind.
func SaveCheckpoint(path string, st *CheckpointState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("explore: save checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("explore: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("explore: save checkpoint: %w", err)
	}
	return nil
}
