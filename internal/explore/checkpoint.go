// Checkpoint/resume for the exploration pipeline: both evaluation cache
// tiers (profiles — the expensive functional executions — and evaluated
// candidates), the quarantine list, the accumulated pipeline stats, and the
// search frontier (completed multicore searches) serialize to one JSON
// file, so a killed run resumes instead of recomputing. Saves are atomic
// and durable (atomicfile: temp + fsync + rename + dir fsync); a missing
// file is an empty checkpoint, and a corrupt or future-versioned file is an
// ErrCheckpointCorrupt error rather than a silent partial restore —
// RecoverCheckpoint turns that into a quarantine-and-start-cold path.

package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"compisa/internal/atomicfile"
	"compisa/internal/cpu"
	"compisa/internal/eval"
)

// ErrCheckpointCorrupt wraps every checkpoint failure that a retry cannot
// fix: undecodable JSON (truncated or garbage file) and unusable versions.
// Callers distinguish it from I/O errors to decide between degrading (start
// cold, quarantine the file — see RecoverCheckpoint) and failing loudly.
var ErrCheckpointCorrupt = errors.New("checkpoint corrupt")

// checkpointVersion gates restores: bump it whenever the profile or design
// point schema changes incompatibly. Version 3 switched the profile's ILP
// and mispredict curves from JSON maps to fixed arrays (the struct-of-arrays
// profile layout); earlier versions serialized those fields as objects and
// cannot be decoded into the current schema, so they are rejected as corrupt
// and quarantined by RecoverCheckpoint rather than silently misread.
// Version 4 switched vendor ISAs with a real encoding backend (x86-64,
// Alpha) from analytic CodeDensity scaling to measured target profiles;
// vendor design points cached by earlier versions carry scaled metrics the
// current pipeline would never produce.
const checkpointVersion = 4

// SavedSearch records one completed multicore search as its four design
// points; resume re-evaluates the points against the restored caches,
// which reproduces the exact cores (evaluation is deterministic).
type SavedSearch struct {
	Score  float64        `json:"score"`
	Points [4]DesignPoint `json:"points"`
}

// CheckpointState is the serialized resume state.
type CheckpointState struct {
	Version    int                       `json:"version"`
	Profiles   map[string][]*cpu.Profile `json:"profiles"`
	Quarantine map[string]string         `json:"quarantine,omitempty"`
	// Candidates and Stats are the v2 additions; absent in legacy files.
	Candidates []*Candidate  `json:"candidates,omitempty"`
	Stats      StatsSnapshot `json:"stats,omitzero"`
	// Ref is the memoized normalization basis (optional within v2): with it
	// restored, a warm-started process serves cached candidates without
	// re-running the reference's model stage first.
	Ref      []Metric               `json:"ref,omitempty"`
	Frontier map[string]SavedSearch `json:"frontier,omitempty"`
}

// Snapshot captures the DB's caches and (if s is non-nil) the Searcher's
// frontier into a checkpoint state.
func Snapshot(db *DB, s *Searcher) *CheckpointState {
	st := &CheckpointState{Version: checkpointVersion}
	dbState := db.Export()
	st.Profiles = dbState.Profiles
	st.Quarantine = dbState.Quarantine
	st.Candidates = dbState.Candidates
	st.Ref = dbState.Ref
	st.Stats = dbState.Stats
	if s != nil {
		st.Frontier = s.exportFrontier()
	}
	return st
}

// RestoreDB seeds both cache tiers and merges the checkpoint's stats into
// the live counters. Call it before NewSearcher so the reference metrics
// reuse the restored profiles.
func (st *CheckpointState) RestoreDB(db *DB) {
	if st == nil {
		return
	}
	db.Import(eval.State{
		Profiles:   st.Profiles,
		Quarantine: st.Quarantine,
		Candidates: st.Candidates,
		Ref:        st.Ref,
		Stats:      st.Stats,
	})
}

// RestoreSearcher seeds the search frontier.
func (st *CheckpointState) RestoreSearcher(s *Searcher) {
	if st == nil {
		return
	}
	s.importFrontier(st.Frontier)
}

// LoadCheckpoint reads a checkpoint file; a missing file yields (nil, nil).
// Only the current version loads: older files predate the struct-of-arrays
// profile schema and decode incorrectly, so they are reported as
// ErrCheckpointCorrupt (RecoverCheckpoint quarantines them and starts cold).
func LoadCheckpoint(path string) (*CheckpointState, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("explore: load checkpoint: %w", err)
	}
	var st CheckpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("explore: checkpoint %s: %w: %w", path, ErrCheckpointCorrupt, err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("explore: checkpoint %s: %w: version %d, want %d",
			path, ErrCheckpointCorrupt, st.Version, checkpointVersion)
	}
	return &st, nil
}

// RecoverCheckpoint loads a checkpoint, degrading gracefully on corruption:
// an unusable file (ErrCheckpointCorrupt) is renamed aside to
// <path>.corrupt for post-mortem and the run starts cold with a nil state.
// quarantined reports the rename target when that happened. Genuine I/O
// errors (permissions, transient filesystem faults) still fail — retrying
// those can succeed, and silently discarding a readable checkpoint would
// throw away real work.
func RecoverCheckpoint(path string) (st *CheckpointState, quarantined string, err error) {
	st, err = LoadCheckpoint(path)
	if err == nil {
		return st, "", nil
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		return nil, "", err
	}
	dst := path + ".corrupt"
	if rerr := os.Rename(path, dst); rerr != nil {
		return nil, "", fmt.Errorf("explore: quarantine corrupt checkpoint: %w (load error: %w)", rerr, err)
	}
	return nil, dst, nil
}

// SaveCheckpoint writes the state atomically and durably (see atomicfile),
// so a crash mid-save never leaves a truncated or missing checkpoint.
func SaveCheckpoint(path string, st *CheckpointState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("explore: save checkpoint: %w", err)
	}
	if err := atomicfile.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("explore: save checkpoint: %w", err)
	}
	return nil
}
