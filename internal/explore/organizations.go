package explore

import (
	"context"
	"fmt"
	"sync"

	"compisa/internal/workload"
)

// Organization is one of the five CMP organizations compared throughout the
// evaluation (Section VII.A).
type Organization uint8

const (
	// OrgHomogeneous: four identical x86-64 cores.
	OrgHomogeneous Organization = iota
	// OrgSingleISAHetero: x86-64 everywhere, heterogeneous hardware.
	OrgSingleISAHetero
	// OrgCompositeFixed: hardware heterogeneity plus the three x86-ized
	// fixed feature sets resembling Thumb/Alpha/x86-64 (Table II).
	OrgCompositeFixed
	// OrgHeteroVendor: the multi-vendor heterogeneous-ISA CMP
	// (x86-64, Alpha, Thumb) — the "goal" baseline.
	OrgHeteroVendor
	// OrgCompositeFull: hardware heterogeneity plus full ISA feature
	// diversity over all 26 composite feature sets.
	OrgCompositeFull
)

func (o Organization) String() string {
	switch o {
	case OrgHomogeneous:
		return "Homogeneous (x86-64)"
	case OrgSingleISAHetero:
		return "Single-ISA Heterogeneous (x86-64 + HW heterogeneity)"
	case OrgCompositeFixed:
		return "Composite-ISA, fixed x86-ized feature sets"
	case OrgHeteroVendor:
		return "Heterogeneous-ISA (x86-64 + Alpha + Thumb)"
	case OrgCompositeFull:
		return "Composite-ISA, full feature diversity"
	}
	return "unknown"
}

// Organizations lists all five in presentation order.
func Organizations() []Organization {
	return []Organization{OrgHomogeneous, OrgSingleISAHetero, OrgHeteroVendor,
		OrgCompositeFixed, OrgCompositeFull}
}

// Choices returns the ISA choices an organization may assign to cores.
func (o Organization) Choices() []ISAChoice {
	switch o {
	case OrgHomogeneous, OrgSingleISAHetero:
		return []ISAChoice{X8664Choice()}
	case OrgCompositeFixed:
		return XIzedChoices()
	case OrgHeteroVendor:
		return VendorChoices()
	default:
		return CompositeChoices()
	}
}

// Searcher runs organization-level searches with candidate caching and a
// checkpointable frontier of completed searches.
type Searcher struct {
	DB  *DB
	ref []Metric
	// MaxCandidates tunes search effort (0 = default).
	MaxCandidates int
	// OnSearchDone, if set, runs after every newly completed (not resumed)
	// search — the driver hooks checkpoint autosave here.
	OnSearchDone func()

	mu sync.Mutex
	// cands caches evaluated candidates per organization choice-set key.
	cands map[Organization][]*Candidate
	// frontier records completed searches for checkpoint/resume.
	frontier map[string]SavedSearch
}

// NewSearcher builds a Searcher over the full suite.
func NewSearcher(ctx context.Context, db *DB) (*Searcher, error) {
	ref, err := db.ReferenceMetrics(ctx)
	if err != nil {
		return nil, err
	}
	return &Searcher{
		DB: db, ref: ref,
		cands:    map[Organization][]*Candidate{},
		frontier: map[string]SavedSearch{},
	}, nil
}

// Candidates returns (and caches) the evaluated candidate set of an
// organization.
func (s *Searcher) Candidates(ctx context.Context, org Organization) ([]*Candidate, error) {
	s.mu.Lock()
	cs, ok := s.cands[org]
	s.mu.Unlock()
	if ok {
		return cs, nil
	}
	cs, err := s.DB.Candidates(ctx, org.Choices(), Configs(), s.ref)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cands[org] = cs
	s.mu.Unlock()
	return cs, nil
}

// searchKey is the frontier key: organization, objective, budget, and (for
// constrained searches) the constraint name.
func searchKey(org Organization, obj Objective, b Budget, constraint string) string {
	key := fmt.Sprintf("%d|%d|%s", org, obj, b)
	if constraint != "" {
		key += "|" + constraint
	}
	return key
}

// Search finds the organization's (locally) optimal CMP for an objective
// under a budget. A search already in the frontier (restored from a
// checkpoint or completed earlier this run) is rebuilt from its saved design
// points instead of re-searched.
func (s *Searcher) Search(ctx context.Context, org Organization, obj Objective, b Budget) (CMP, error) {
	return s.search(ctx, org, obj, b, "", nil)
}

// SearchConstrained runs a composite-full search restricted by a candidate
// constraint (Figure 9's feature-sensitivity analysis). The name identifies
// the constraint in the checkpoint frontier; an empty name disables frontier
// caching for the search (anonymous constraints are not resumable).
func (s *Searcher) SearchConstrained(ctx context.Context, obj Objective, b Budget, name string, constraint func(*Candidate) bool) (CMP, error) {
	return s.search(ctx, OrgCompositeFull, obj, b, name, constraint)
}

func (s *Searcher) search(ctx context.Context, org Organization, obj Objective, b Budget, cname string, constraint func(*Candidate) bool) (CMP, error) {
	key := ""
	if constraint == nil || cname != "" {
		key = searchKey(org, obj, b, cname)
		if cmp, ok, err := s.resume(ctx, key, obj); err != nil {
			return CMP{}, err
		} else if ok {
			return cmp, nil
		}
	}
	cs, err := s.Candidates(ctx, org)
	if err != nil {
		return CMP{}, err
	}
	spec := SearchSpec{
		Candidates:    cs,
		Budget:        b,
		Objective:     obj,
		Homogeneous:   org == OrgHomogeneous,
		Constraint:    constraint,
		MaxCandidates: s.MaxCandidates,
	}
	cmp, err := Search(ctx, spec, s.DB.Regions)
	if err != nil {
		return CMP{}, fmt.Errorf("%v under %s: %w", org, b, err)
	}
	if key != "" {
		s.record(key, cmp)
	}
	return cmp, nil
}

// resume rebuilds a frontier entry: the saved design points are re-evaluated
// against the (restored) profile cache and re-scored, which reproduces the
// original CMP exactly because evaluation and scoring are deterministic.
func (s *Searcher) resume(ctx context.Context, key string, obj Objective) (CMP, bool, error) {
	s.mu.Lock()
	sv, ok := s.frontier[key]
	s.mu.Unlock()
	if !ok {
		return CMP{}, false, nil
	}
	var cores [4]*Candidate
	for i, dp := range sv.Points {
		c, err := s.DB.Evaluate(ctx, dp, s.ref)
		if err != nil {
			return CMP{}, false, fmt.Errorf("explore: resume %q: %w", key, err)
		}
		cores[i] = c
	}
	si := newSuiteIndex(s.DB.Regions)
	cmp := CMP{Cores: cores, Score: si.score(&cores, obj)}
	return cmp, true, nil
}

func (s *Searcher) record(key string, cmp CMP) {
	var pts [4]DesignPoint
	for i, c := range cmp.Cores {
		pts[i] = c.DP
	}
	s.mu.Lock()
	s.frontier[key] = SavedSearch{Score: cmp.Score, Points: pts}
	done := s.OnSearchDone
	s.mu.Unlock()
	if done != nil {
		done()
	}
}

// exportFrontier copies the frontier for checkpointing.
func (s *Searcher) exportFrontier() map[string]SavedSearch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SavedSearch, len(s.frontier))
	for k, v := range s.frontier {
		out[k] = v
	}
	return out
}

// importFrontier seeds the frontier from a checkpoint; existing entries win.
func (s *Searcher) importFrontier(frontier map[string]SavedSearch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range frontier {
		if _, ok := s.frontier[k]; !ok {
			s.frontier[k] = v
		}
	}
}

// Regions exposes the suite the searcher evaluates over.
func (s *Searcher) Regions() []workload.Region { return s.DB.Regions }

// Reference exposes the normalization metrics.
func (s *Searcher) Reference() []Metric { return s.ref }
