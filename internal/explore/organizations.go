package explore

import (
	"fmt"

	"compisa/internal/workload"
)

// Organization is one of the five CMP organizations compared throughout the
// evaluation (Section VII.A).
type Organization uint8

const (
	// OrgHomogeneous: four identical x86-64 cores.
	OrgHomogeneous Organization = iota
	// OrgSingleISAHetero: x86-64 everywhere, heterogeneous hardware.
	OrgSingleISAHetero
	// OrgCompositeFixed: hardware heterogeneity plus the three x86-ized
	// fixed feature sets resembling Thumb/Alpha/x86-64 (Table II).
	OrgCompositeFixed
	// OrgHeteroVendor: the multi-vendor heterogeneous-ISA CMP
	// (x86-64, Alpha, Thumb) — the "goal" baseline.
	OrgHeteroVendor
	// OrgCompositeFull: hardware heterogeneity plus full ISA feature
	// diversity over all 26 composite feature sets.
	OrgCompositeFull
)

func (o Organization) String() string {
	switch o {
	case OrgHomogeneous:
		return "Homogeneous (x86-64)"
	case OrgSingleISAHetero:
		return "Single-ISA Heterogeneous (x86-64 + HW heterogeneity)"
	case OrgCompositeFixed:
		return "Composite-ISA, fixed x86-ized feature sets"
	case OrgHeteroVendor:
		return "Heterogeneous-ISA (x86-64 + Alpha + Thumb)"
	case OrgCompositeFull:
		return "Composite-ISA, full feature diversity"
	}
	return "unknown"
}

// Organizations lists all five in presentation order.
func Organizations() []Organization {
	return []Organization{OrgHomogeneous, OrgSingleISAHetero, OrgHeteroVendor,
		OrgCompositeFixed, OrgCompositeFull}
}

// Choices returns the ISA choices an organization may assign to cores.
func (o Organization) Choices() []ISAChoice {
	switch o {
	case OrgHomogeneous, OrgSingleISAHetero:
		return []ISAChoice{X8664Choice()}
	case OrgCompositeFixed:
		return XIzedChoices()
	case OrgHeteroVendor:
		return VendorChoices()
	default:
		return CompositeChoices()
	}
}

// Searcher runs organization-level searches with candidate caching.
type Searcher struct {
	DB  *DB
	ref []Metric
	// cands caches evaluated candidates per organization choice-set key.
	cands map[Organization][]*Candidate
	// MaxCandidates tunes search effort (0 = default).
	MaxCandidates int
}

// NewSearcher builds a Searcher over the full suite.
func NewSearcher(db *DB) (*Searcher, error) {
	ref, err := db.ReferenceMetrics()
	if err != nil {
		return nil, err
	}
	return &Searcher{DB: db, ref: ref, cands: map[Organization][]*Candidate{}}, nil
}

// Candidates returns (and caches) the evaluated candidate set of an
// organization.
func (s *Searcher) Candidates(org Organization) ([]*Candidate, error) {
	if cs, ok := s.cands[org]; ok {
		return cs, nil
	}
	cs, err := s.DB.Candidates(org.Choices(), Configs(), s.ref)
	if err != nil {
		return nil, err
	}
	s.cands[org] = cs
	return cs, nil
}

// Search finds the organization's (locally) optimal CMP for an objective
// under a budget.
func (s *Searcher) Search(org Organization, obj Objective, b Budget) (CMP, error) {
	cs, err := s.Candidates(org)
	if err != nil {
		return CMP{}, err
	}
	spec := SearchSpec{
		Candidates:    cs,
		Budget:        b,
		Objective:     obj,
		Homogeneous:   org == OrgHomogeneous,
		MaxCandidates: s.MaxCandidates,
	}
	cmp, err := Search(spec, s.DB.Regions)
	if err != nil {
		return CMP{}, fmt.Errorf("%v under %s: %v", org, b, err)
	}
	return cmp, nil
}

// SearchConstrained runs a composite-full search restricted by a candidate
// constraint (Figure 9's feature-sensitivity analysis).
func (s *Searcher) SearchConstrained(obj Objective, b Budget, constraint func(*Candidate) bool) (CMP, error) {
	cs, err := s.Candidates(OrgCompositeFull)
	if err != nil {
		return CMP{}, err
	}
	spec := SearchSpec{
		Candidates:    cs,
		Budget:        b,
		Objective:     obj,
		Constraint:    constraint,
		MaxCandidates: s.MaxCandidates,
	}
	return Search(spec, s.DB.Regions)
}

// Regions exposes the suite the searcher evaluates over.
func (s *Searcher) Regions() []workload.Region { return s.DB.Regions }

// Reference exposes the normalization metrics.
func (s *Searcher) Reference() []Metric { return s.ref }
