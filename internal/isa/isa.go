// Package isa defines the superset ISA of the composite-ISA architecture and
// the derivation of custom feature sets from it.
//
// The superset ISA resembles x86 augmented with extensions that make five
// dimensions customizable: register depth (8/16/32/64 programmable registers),
// register width (32/64 bits), instruction complexity (the load-compute-store
// "microx86" micro-op subset versus the full CISC x86 with memory operands),
// predication (partial CMOV-style versus full predication on any GPR), and
// data-parallel execution (scalar versus 128-bit SSE vectors). Pruning the
// permutations that are not viable yields the paper's 26 composite feature
// sets (Figure 1).
package isa

import "fmt"

// Complexity selects the opcode/addressing-mode richness of a feature set.
type Complexity uint8

const (
	// MicroX86 restricts the instruction set to opcodes and addressing
	// modes that decode into exactly one micro-op, following the
	// load-compute-store discipline of RISC architectures (but keeping
	// x86's variable-length encoding).
	MicroX86 Complexity = iota
	// FullX86 is the full CISC instruction set: memory operands, complex
	// addressing modes, and 1:n macro-op to micro-op decoding. FullX86
	// feature sets always include the SSE2 vector extension.
	FullX86
)

func (c Complexity) String() string {
	if c == MicroX86 {
		return "microx86"
	}
	return "x86"
}

// Predication selects the predication model of a feature set.
type Predication uint8

const (
	// PartialPredication is x86's existing CMOVxx support: only moves may
	// be predicated, on condition codes.
	PartialPredication Predication = iota
	// FullPredication allows any instruction to be predicated on any
	// general-purpose register via the predicate prefix (Figure 3).
	FullPredication
)

func (p Predication) String() string {
	if p == FullPredication {
		return "full"
	}
	return "partial"
}

// FeatureSet is one composite ISA carved out of the superset ISA. The zero
// value is not meaningful; use New or one of the predefined sets.
type FeatureSet struct {
	// Complexity is microx86 (1:1 decode) or full x86 (1:n decode).
	Complexity Complexity
	// Width is the general-purpose register width in bits: 32 or 64.
	Width int
	// Depth is the number of programmable general-purpose registers
	// exposed to the compiler: 8, 16, 32, or 64.
	Depth int
	// Predication is partial (CMOV) or full.
	Predication Predication
}

// ValidDepths are the register depths the superset ISA can expose.
var ValidDepths = [4]int{8, 16, 32, 64}

// ValidWidths are the register widths the superset ISA can expose.
var ValidWidths = [2]int{32, 64}

// New validates and returns a feature set. It enforces the derivation rules
// of Section III: 64-bit feature sets require a register depth of at least
// 16, and 32-bit feature sets with only 8 registers cannot enable full
// predication (register pressure makes it unprofitable).
func New(c Complexity, width, depth int, p Predication) (FeatureSet, error) {
	fs := FeatureSet{Complexity: c, Width: width, Depth: depth, Predication: p}
	if err := fs.Validate(); err != nil {
		return FeatureSet{}, err
	}
	return fs, nil
}

// InvariantError is the typed panic value raised by MustNew when a
// known-good literal turns out to be invalid. It exists so recovery layers
// (the exploration pipeline recovers per-evaluation panics) can classify
// the failure with errors.As instead of matching panic strings.
type InvariantError struct {
	FS  FeatureSet
	Err error
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("isa: invalid feature-set literal %+v: %v", e.FS, e.Err)
}

func (e *InvariantError) Unwrap() error { return e.Err }

// MustNew is New for known-good literals. Passing an invalid combination is
// a programming error (the literal itself is wrong), so it is a documented
// invariant check: it panics with a typed *InvariantError rather than
// returning. Code paths with runtime-derived feature sets must use New.
func MustNew(c Complexity, width, depth int, p Predication) FeatureSet {
	fs, err := New(c, width, depth, p)
	if err != nil {
		panic(&InvariantError{FS: FeatureSet{Complexity: c, Width: width, Depth: depth, Predication: p}, Err: err})
	}
	return fs
}

// Validate reports whether the feature set is one of the viable combinations.
func (f FeatureSet) Validate() error {
	switch f.Width {
	case 32, 64:
	default:
		return fmt.Errorf("isa: invalid register width %d", f.Width)
	}
	switch f.Depth {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("isa: invalid register depth %d", f.Depth)
	}
	if f.Width == 64 && f.Depth < 16 {
		return fmt.Errorf("isa: 64-bit feature sets require register depth >= 16 (got %d)", f.Depth)
	}
	if f.Width == 32 && f.Depth == 8 && f.Predication == FullPredication {
		return fmt.Errorf("isa: full predication is excluded from 32-bit feature sets with 8 registers")
	}
	return nil
}

// HasSIMD reports whether the feature set implements SSE2. SIMD rides on
// instruction complexity: more than half of SIMD operations rely on 1:n
// macro-op to micro-op decoding, so microx86 feature sets exclude SSE2.
func (f FeatureSet) HasSIMD() bool { return f.Complexity == FullX86 }

// FPRegs is the number of architectural FP/SIMD (xmm) registers. The narrow
// 8-register feature sets expose 8 xmm registers; all others expose 16.
func (f FeatureSet) FPRegs() int {
	if f.Depth == 8 {
		return 8
	}
	return 16
}

// Name returns the paper-style name, e.g. "microx86-8D-32W (partial)".
func (f FeatureSet) Name() string {
	return fmt.Sprintf("%s-%dD-%dW (%s)", f.Complexity, f.Depth, f.Width, f.Predication)
}

// ShortName returns a compact identifier usable in tables, e.g. "ux86-8D-32W-P".
func (f FeatureSet) ShortName() string {
	c := "x86"
	if f.Complexity == MicroX86 {
		c = "ux86"
	}
	p := "P"
	if f.Predication == FullPredication {
		p = "F"
	}
	return fmt.Sprintf("%s-%dD-%dW-%s", c, f.Depth, f.Width, p)
}

func (f FeatureSet) String() string { return f.Name() }

// Superset is the full superset ISA: every customizable feature enabled.
var Superset = FeatureSet{Complexity: FullX86, Width: 64, Depth: 64, Predication: FullPredication}

// X8664 is the unmodified x86-64 + SSE baseline ISA (16 registers, 64-bit,
// partial predication, full CISC complexity).
var X8664 = FeatureSet{Complexity: FullX86, Width: 64, Depth: 16, Predication: PartialPredication}

// MicroX86Min is the smallest feature set in the exploration:
// the 32-bit microx86 with a register depth of 8 and no additional features.
var MicroX86Min = FeatureSet{Complexity: MicroX86, Width: 32, Depth: 8, Predication: PartialPredication}

// X86izedThumb is the x86-ized version of ARM Thumb from Table II:
// a load/store architecture with 8 registers, 32-bit width, no SIMD.
var X86izedThumb = MicroX86Min

// X86izedAlpha is the x86-ized version of Alpha from Table II: a load/store
// architecture with 32 registers, 64-bit width, no SIMD.
var X86izedAlpha = FeatureSet{Complexity: MicroX86, Width: 64, Depth: 32, Predication: PartialPredication}

// XIzedFixedSets are the three x86-based fixed feature sets that resemble the
// vendor-specific ISAs (Table II); the limited-diversity composite-ISA CMP
// chooses among exactly these.
func XIzedFixedSets() []FeatureSet {
	return []FeatureSet{X86izedThumb, X86izedAlpha, X8664}
}

// Derive enumerates all viable composite feature sets in deterministic order.
// With the pruning rules of Section III this yields exactly 26 sets.
func Derive() []FeatureSet {
	var out []FeatureSet
	for _, c := range []Complexity{MicroX86, FullX86} {
		for _, w := range ValidWidths {
			for _, d := range ValidDepths {
				for _, p := range []Predication{PartialPredication, FullPredication} {
					fs := FeatureSet{Complexity: c, Width: w, Depth: d, Predication: p}
					if fs.Validate() == nil {
						out = append(out, fs)
					}
				}
			}
		}
	}
	return out
}

// Subsumes reports whether code compiled for target set b can execute
// natively on a core implementing feature set f (an "upgrade" migration:
// zero binary-translation or state-transformation cost). f subsumes b when
// f offers at least b's capability along every dimension.
func (f FeatureSet) Subsumes(b FeatureSet) bool {
	if f.Complexity == MicroX86 && b.Complexity == FullX86 {
		return false
	}
	if f.Width < b.Width {
		return false
	}
	if f.Depth < b.Depth {
		return false
	}
	if f.Predication == PartialPredication && b.Predication == FullPredication {
		return false
	}
	if !f.HasSIMD() && b.HasSIMD() {
		return false
	}
	return true
}

// DowngradeKind identifies one category of feature downgrade that requires
// binary translation when migrating code to a core missing that feature.
type DowngradeKind uint8

const (
	// DowngradeWidth: 64-bit code on a 32-bit core (long-mode emulation
	// with fat pointers held in xmm registers).
	DowngradeWidth DowngradeKind = iota
	// DowngradeDepth: code using more registers than the core implements
	// (higher registers become memory operands in a register context block).
	DowngradeDepth
	// DowngradeComplexity: x86 code on a microx86 core (addressing-mode
	// transformation into ld-compute-st sequences).
	DowngradeComplexity
	// DowngradePredication: fully predicated code on a partial-predication
	// core (reverse if-conversion back to control dependences).
	DowngradePredication
	// DowngradeSIMD: vector code on a core without SIMD units (execute the
	// precompiled scalarized version; a scheduler avoids this).
	DowngradeSIMD
)

func (k DowngradeKind) String() string {
	switch k {
	case DowngradeWidth:
		return "width"
	case DowngradeDepth:
		return "register depth"
	case DowngradeComplexity:
		return "instruction complexity"
	case DowngradePredication:
		return "predication"
	case DowngradeSIMD:
		return "simd"
	}
	return "unknown"
}

// Downgrades lists the feature downgrades required to migrate code compiled
// for feature set from onto a core implementing feature set to. An empty
// slice means the migration is an upgrade (native execution).
func Downgrades(from, to FeatureSet) []DowngradeKind {
	var ks []DowngradeKind
	if from.Width == 64 && to.Width == 32 {
		ks = append(ks, DowngradeWidth)
	}
	if from.Depth > to.Depth {
		ks = append(ks, DowngradeDepth)
	}
	if from.Complexity == FullX86 && to.Complexity == MicroX86 {
		ks = append(ks, DowngradeComplexity)
	}
	if from.Predication == FullPredication && to.Predication == PartialPredication {
		ks = append(ks, DowngradePredication)
	}
	if from.HasSIMD() && !to.HasSIMD() {
		ks = append(ks, DowngradeSIMD)
	}
	return ks
}
