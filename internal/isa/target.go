package isa

import "fmt"

// Target describes a guest-ISA encoding family: the machine-code container a
// feature set's programs are encoded into. Where FeatureSet captures the
// paper's composite dimensions (complexity, width, depth, predication), a
// Target captures the *vendor* encoding properties that used to be analytic
// fudge factors on VendorISA: instruction length discipline, register-file
// geometry, addressing and operand legality, and immediate widths.
//
// Target is a data-only descriptor so it can live in this package without
// importing the code or encoding packages (which import isa). The byte-level
// encoder/decoder for each target is registered in internal/encoding; the
// compiler's lowering, the checker's legality rules, and the power model all
// key off the fields here.
type Target struct {
	// Name identifies the target. The empty name and "x86" both denote the
	// default variable-length x86 superset encoding.
	Name string

	// FixedLen is the instruction length in bytes for fixed-length targets;
	// 0 means variable-length.
	FixedLen int
	// OneStepDecode reports that instruction boundaries are known without a
	// length-decode pipeline stage, so the instruction-length decoder (and
	// its power/area term) disappears.
	OneStepDecode bool

	// Register-file geometry the encoding can name.
	IntRegs int
	FPRegs  int

	// TwoAddress requires destructive ALU forms (Dst == Src1); the encoding
	// carries no separate first-source field for ALU operations.
	TwoAddress bool
	// MemOperands permits ALU instructions with memory source operands
	// (x86 folding). Without it the target is load/store only.
	MemOperands bool
	// MemIndex permits base+index*scale addressing.
	MemIndex bool
	// MemAbsolute permits base-less absolute-displacement addressing.
	MemAbsolute bool
	// Vector permits packed-SSE encodings.
	Vector bool
	// Predication permits the full-predication prefix.
	Predication bool

	// ImmBits is the widest inline immediate (signed for arithmetic,
	// zero-extended for logical ops on narrow targets). DispBits is the
	// widest signed memory displacement.
	ImmBits  int
	DispBits int

	// DensityVsX86 is the analytic code-density ratio versus the x86
	// encoding, retained ONLY as a documented fallback for vendor ISAs that
	// have no real backend yet (Thumb); targets with a backend get measured
	// code bytes instead.
	DensityVsX86 float64
}

// X86Target is the default variable-length x86 superset encoding
// (internal/encoding's byte encoder and instruction-length decoder).
var X86Target = Target{
	Name:          "x86",
	FixedLen:      0,
	OneStepDecode: false,
	IntRegs:       64,
	FPRegs:        16,
	TwoAddress:    true,
	MemOperands:   true,
	MemIndex:      true,
	MemAbsolute:   true,
	Vector:        true,
	Predication:   true,
	ImmBits:       32,
	DispBits:      32,
	DensityVsX86:  1.0,
}

// Alpha64Target is the fixed-length 32-bit RISC encoding standing in for the
// Alpha vendor ISA of the paper's multi-vendor baseline (Table II): two-
// address register operations, load/store-only memory access with
// base+displacement addressing, 16-bit immediates built up by ld-imm
// splitting, and one-step decode (no ILD).
var Alpha64Target = Target{
	Name:          "alpha64",
	FixedLen:      4,
	OneStepDecode: true,
	IntRegs:       32,
	FPRegs:        16,
	TwoAddress:    true,
	MemOperands:   false,
	MemIndex:      false,
	MemAbsolute:   false,
	Vector:        false,
	Predication:   false,
	ImmBits:       16,
	DispBits:      12,
	DensityVsX86:  1.05,
}

var targets = []*Target{&X86Target, &Alpha64Target}

// Targets returns the registered targets.
func Targets() []*Target { return targets }

// TargetByName resolves a target name; "" and "x86" both resolve to the
// default x86 target.
func TargetByName(name string) (*Target, bool) {
	if name == "" {
		return &X86Target, true
	}
	for _, t := range targets {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// ResolveTarget is TargetByName with an error for unknown names.
func ResolveTarget(name string) (*Target, error) {
	t, ok := TargetByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown target %q (have x86, alpha64)", name)
	}
	return t, nil
}

// Default reports whether t is the default x86 encoding, for which the
// feature-set rules alone govern legality.
func (t *Target) Default() bool { return t == nil || t.Name == "" || t.Name == "x86" }

// ProgTarget returns the value stored in a program's Target field: the empty
// string for the default x86 encoding, the target name otherwise.
func (t *Target) ProgTarget() string {
	if t.Default() {
		return ""
	}
	return t.Name
}

// SupportsFS reports whether the target can encode programs compiled for the
// feature set. The alpha64 target encodes the "x86-ized Alpha" point of
// Table II and its neighbors: microx86 complexity (load/store only), 64-bit
// width (no 64-on-32 carry pairs, whose flag chains the ld-imm splitter
// cannot preserve), register depth within the 5-bit register fields, and no
// full predication (a fixed 32-bit word has no predicate field).
func (t *Target) SupportsFS(fs FeatureSet) error {
	if t.Default() {
		return nil
	}
	if !t.MemOperands && fs.Complexity == FullX86 {
		return fmt.Errorf("target %s: full-x86 complexity needs memory operands", t.Name)
	}
	if !t.Vector && fs.HasSIMD() {
		return fmt.Errorf("target %s: feature set has SIMD but target has no vector encodings", t.Name)
	}
	if !t.Predication && fs.Predication == FullPredication {
		return fmt.Errorf("target %s: full predication is not encodable", t.Name)
	}
	if fs.Depth > t.IntRegs {
		return fmt.Errorf("target %s: register depth %d exceeds the %d-register file", t.Name, fs.Depth, t.IntRegs)
	}
	if fs.FPRegs() > t.FPRegs {
		return fmt.Errorf("target %s: %d FP registers exceed the %d-register file", t.Name, fs.FPRegs(), t.FPRegs)
	}
	if t.ImmBits < 32 && fs.Width != 64 {
		return fmt.Errorf("target %s: width %d needs carry pairs with wide immediates", t.Name, fs.Width)
	}
	return nil
}
