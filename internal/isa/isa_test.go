package isa

import (
	"testing"
	"testing/quick"
)

func TestDeriveCount(t *testing.T) {
	sets := Derive()
	if len(sets) != 26 {
		t.Fatalf("Derive() produced %d feature sets, paper derives 26", len(sets))
	}
}

func TestDeriveAllValid(t *testing.T) {
	for _, fs := range Derive() {
		if err := fs.Validate(); err != nil {
			t.Errorf("%s: %v", fs.Name(), err)
		}
	}
}

func TestDeriveUnique(t *testing.T) {
	seen := map[FeatureSet]bool{}
	for _, fs := range Derive() {
		if seen[fs] {
			t.Errorf("duplicate feature set %s", fs.Name())
		}
		seen[fs] = true
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a, b := Derive(), Derive()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Derive not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDeriveContainsNamedSets(t *testing.T) {
	want := []FeatureSet{Superset, X8664, MicroX86Min, X86izedAlpha}
	sets := Derive()
	for _, w := range want {
		found := false
		for _, fs := range sets {
			if fs == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Derive() missing %s", w.Name())
		}
	}
}

func TestPruningRules(t *testing.T) {
	if _, err := New(FullX86, 64, 8, PartialPredication); err == nil {
		t.Error("64-bit with depth 8 should be invalid")
	}
	if _, err := New(MicroX86, 32, 8, FullPredication); err == nil {
		t.Error("32-bit depth-8 full predication should be invalid")
	}
	if _, err := New(FullX86, 32, 8, PartialPredication); err != nil {
		t.Errorf("32-bit depth-8 partial should be valid: %v", err)
	}
	if _, err := New(FullX86, 16, 16, PartialPredication); err == nil {
		t.Error("width 16 should be invalid")
	}
	if _, err := New(FullX86, 64, 24, PartialPredication); err == nil {
		t.Error("depth 24 should be invalid")
	}
}

func TestSIMDRidesOnComplexity(t *testing.T) {
	for _, fs := range Derive() {
		if fs.HasSIMD() != (fs.Complexity == FullX86) {
			t.Errorf("%s: SIMD must be present exactly on full-x86 sets", fs.Name())
		}
	}
}

func TestSupersetSubsumesAll(t *testing.T) {
	for _, fs := range Derive() {
		if !Superset.Subsumes(fs) {
			t.Errorf("superset must subsume %s", fs.Name())
		}
	}
}

func TestSubsumesReflexive(t *testing.T) {
	for _, fs := range Derive() {
		if !fs.Subsumes(fs) {
			t.Errorf("%s must subsume itself", fs.Name())
		}
	}
}

func TestSubsumesAntisymmetricUnlessEqual(t *testing.T) {
	sets := Derive()
	for _, a := range sets {
		for _, b := range sets {
			if a != b && a.Subsumes(b) && b.Subsumes(a) {
				t.Errorf("distinct sets mutually subsume: %s and %s", a.Name(), b.Name())
			}
		}
	}
}

func TestSubsumesMatchesEmptyDowngrades(t *testing.T) {
	sets := Derive()
	for _, from := range sets {
		for _, to := range sets {
			native := to.Subsumes(from)
			downs := Downgrades(from, to)
			if native && len(downs) != 0 {
				t.Errorf("%s -> %s: native migration but downgrades %v", from.ShortName(), to.ShortName(), downs)
			}
			if !native && len(downs) == 0 {
				t.Errorf("%s -> %s: not native but no downgrades reported", from.ShortName(), to.ShortName())
			}
		}
	}
}

func TestDowngradeKinds(t *testing.T) {
	from := Superset
	to := MicroX86Min
	ks := Downgrades(from, to)
	want := map[DowngradeKind]bool{
		DowngradeWidth: true, DowngradeDepth: true, DowngradeComplexity: true,
		DowngradePredication: true, DowngradeSIMD: true,
	}
	if len(ks) != len(want) {
		t.Fatalf("superset -> minimal should need every downgrade, got %v", ks)
	}
	for _, k := range ks {
		if !want[k] {
			t.Errorf("unexpected downgrade %v", k)
		}
	}
}

func TestSubsumesTransitive(t *testing.T) {
	sets := Derive()
	for _, a := range sets {
		for _, b := range sets {
			if !a.Subsumes(b) {
				continue
			}
			for _, c := range sets {
				if b.Subsumes(c) && !a.Subsumes(c) {
					t.Errorf("subsumption not transitive: %s ⊇ %s ⊇ %s", a.ShortName(), b.ShortName(), c.ShortName())
				}
			}
		}
	}
}

func TestFPRegs(t *testing.T) {
	if got := MicroX86Min.FPRegs(); got != 8 {
		t.Errorf("depth-8 set should expose 8 xmm registers, got %d", got)
	}
	if got := X8664.FPRegs(); got != 16 {
		t.Errorf("x86-64 should expose 16 xmm registers, got %d", got)
	}
}

func TestNames(t *testing.T) {
	if MicroX86Min.Name() != "microx86-8D-32W (partial)" {
		t.Errorf("unexpected name %q", MicroX86Min.Name())
	}
	if Superset.ShortName() != "x86-64D-64W-F" {
		t.Errorf("unexpected short name %q", Superset.ShortName())
	}
	names := map[string]bool{}
	for _, fs := range Derive() {
		if names[fs.ShortName()] {
			t.Errorf("duplicate short name %q", fs.ShortName())
		}
		names[fs.ShortName()] = true
	}
}

func TestRegPrefixBytes(t *testing.T) {
	cases := []struct {
		regs []int
		want int
	}{
		{[]int{0}, 0},
		{[]int{7}, 0},
		{[]int{8}, 1},
		{[]int{15}, 1},
		{[]int{16}, 2},
		{[]int{63}, 2},
		{[]int{3, 9}, 1},
		{[]int{3, 9, 40}, 2},
		{[]int{0, 1, 2}, 0},
	}
	for _, c := range cases {
		if got := RegPrefixBytes(c.regs...); got != c.want {
			t.Errorf("RegPrefixBytes(%v) = %d, want %d", c.regs, got, c.want)
		}
	}
}

func TestRegPrefixMonotonic(t *testing.T) {
	// Property: adding a register operand never shrinks the prefix cost.
	f := func(a, b uint8) bool {
		ra, rb := int(a%64), int(b%64)
		return RegPrefixBytes(ra, rb) >= RegPrefixBytes(ra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVendorISAs(t *testing.T) {
	vs := VendorISAs()
	if len(vs) != 3 {
		t.Fatalf("expected 3 vendor ISAs, got %d", len(vs))
	}
	if !VendorThumb.CrossISA || !VendorAlpha.CrossISA {
		t.Error("Thumb and Alpha migrations must be cross-ISA")
	}
	if VendorThumb.CodeDensity >= 1.0 {
		t.Error("Thumb must model code compression (density < 1)")
	}
	if !VendorThumb.FixedLength || !VendorAlpha.FixedLength {
		t.Error("Thumb and Alpha are fixed-length ISAs")
	}
	if VendorX8664.FixedLength {
		t.Error("x86-64 is variable-length")
	}
	if VendorAlpha.FPRegs <= VendorX8664.FPRegs {
		t.Error("Alpha models more FP registers than x86 (Table II)")
	}
}

func TestXIzedFixedSets(t *testing.T) {
	sets := XIzedFixedSets()
	if len(sets) != 3 {
		t.Fatalf("expected 3 x86-ized fixed sets, got %d", len(sets))
	}
	derived := Derive()
	for _, fs := range sets {
		found := false
		for _, d := range derived {
			if d == fs {
				found = true
			}
		}
		if !found {
			t.Errorf("x86-ized set %s must be one of the 26 derived sets", fs.Name())
		}
	}
}
