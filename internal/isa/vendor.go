package isa

// VendorISA describes a fixed, vendor-specific commercial ISA used by the
// fully heterogeneous-ISA CMP baseline (x86-64, Alpha, Thumb). Each vendor
// ISA is modeled as its closest composite feature set plus the
// vendor-specific traits from Table II that a single superset ISA cannot
// recreate (Thumb's code compression, fixed-length one-step decoding, ...).
type VendorISA struct {
	// Name is the commercial name, e.g. "Thumb".
	Name string
	// Features is the x86-ized equivalent feature set (Table II).
	Features FeatureSet
	// CodeDensity scales static and dynamic code footprint relative to
	// the variable-length x86 encoding (<1 means denser code, as for
	// Thumb's 16-bit compressed encoding).
	CodeDensity float64
	// FixedLength indicates a fixed-length encoding with one-step
	// decoding: no instruction-length decoder (ILD) is needed, saving its
	// power and area.
	FixedLength bool
	// FPRegs is the number of architectural FP registers (Alpha exposes
	// more FP registers than x86's 16 xmm registers).
	FPRegs int
	// HasFP reports whether the ISA includes scalar floating point
	// (Thumb-1 famously offloads FP; Table II lists FP support as a
	// Thumb-exclusive feature relative to microx86-8D-32W, so the vendor
	// Thumb model keeps it).
	HasFP bool
	// CrossISA indicates migrations to/from this ISA require full binary
	// translation and state transformation (disjoint encodings and ABI),
	// unlike the overlapping composite feature sets.
	CrossISA bool
	// Target names the real encoding backend (see Target/TargetByName) the
	// vendor's programs are compiled, encoded, and executed with. Vendors
	// with a backend are profiled mechanistically — measured code bytes,
	// L1I and micro-op-cache behavior — and the analytic CodeDensity /
	// FixedLength traits above apply only to vendors whose Target is empty
	// (Thumb, until a compressed target exists).
	Target string
}

// HasBackend reports whether the vendor has a real encoding backend, i.e.
// its design points are profiled from compiled + encoded programs rather
// than scaled by the analytic CodeDensity traits.
func (v *VendorISA) HasBackend() bool { return v.Target != "" }

// VendorThumb models ARM Thumb: Thumb-like features of microx86-8D-32W plus
// code compression and fixed-length decoding.
var VendorThumb = VendorISA{
	Name:        "Thumb",
	Features:    X86izedThumb,
	CodeDensity: 0.70,
	FixedLength: true,
	FPRegs:      8,
	HasFP:       true,
	CrossISA:    true,
}

// VendorAlpha models DEC Alpha: Alpha-like features of microx86-32D-64W plus
// fixed-length decoding, 2-address instructions, and a deeper FP file.
var VendorAlpha = VendorISA{
	Name:        "Alpha",
	Features:    X86izedAlpha,
	CodeDensity: 1.05, // superseded by the alpha64 backend; kept for reference
	FixedLength: true,
	FPRegs:      32,
	HasFP:       true,
	CrossISA:    true,
	Target:      "alpha64",
}

// VendorX8664 models commercial x86-64 + SSE.
var VendorX8664 = VendorISA{
	Name:        "x86-64",
	Features:    X8664,
	CodeDensity: 1.0,
	FixedLength: false,
	FPRegs:      16,
	HasFP:       true,
	CrossISA:    false, // same ISA as the composite substrate's baseline
	Target:      "x86",
}

// VendorISAs returns the three vendor ISAs of the heterogeneous-ISA CMP
// baseline in deterministic order.
func VendorISAs() []VendorISA {
	return []VendorISA{VendorX8664, VendorAlpha, VendorThumb}
}
