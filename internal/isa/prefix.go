package isa

// Register-number encoding costs (Figure 3). x86's ModRM/SIB fields encode
// registers 0-7 directly. The REX prefix contributes one extra bit per
// operand, reaching registers 8-15 at the cost of one prefix byte. The new
// REXBC prefix (opcode 0xd6 + payload byte) contributes two further bits per
// operand, reaching registers 16-63 at the cost of two prefix bytes. The
// register allocator uses these costs to prioritize registers that encode
// compactly.

// RegPrefixClass classifies a register number by the prefix machinery its
// encoding requires: 0 for r0-r7 (none), 1 for r8-r15 (REX), 2 for r16-r63
// (REXBC).
func RegPrefixClass(reg int) int {
	switch {
	case reg < 8:
		return 0
	case reg < 16:
		return 1
	default:
		return 2
	}
}

// RegPrefixBytes returns the number of prefix bytes an instruction needs to
// address the given set of register operands (the maximum class wins: REXBC
// carries the REX payload bits, and one REXBC prefix covers all three
// register operand fields).
func RegPrefixBytes(regs ...int) int {
	cls := 0
	for _, r := range regs {
		if c := RegPrefixClass(r); c > cls {
			cls = c
		}
	}
	switch cls {
	case 0:
		return 0
	case 1:
		return 1 // REX
	default:
		return 2 // REXBC (0xd6 marker + payload)
	}
}

// PredicatePrefixBytes is the encoding cost of the predicate prefix: the
// unused opcode 0xf1 marking the prefix plus one byte encoding the predicate
// register (bits 0-6) and sense (bit 7).
const PredicatePrefixBytes = 2
