package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestFaultInjectorDeterministic(t *testing.T) {
	a, err := NewInjector(Config{Seed: 42, Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(Config{Seed: 42, Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("region.%d|isa-%d", i%49, i%26)
		for attempt := 0; attempt < 3; attempt++ {
			if a.Decide(key, attempt) != b.Decide(key, attempt) {
				t.Fatalf("same seed diverged on %q attempt %d", key, attempt)
			}
		}
	}
	c, err := NewInjector(Config{Seed: 43, Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("region.%d|isa-%d", i%49, i%26)
		if a.Decide(key, 0) != c.Decide(key, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical decisions across 200 keys")
	}
}

func TestFaultInjectorRate(t *testing.T) {
	in, err := NewInjector(Config{Seed: 7, Rate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if in.Decide(fmt.Sprintf("key-%d", i), 0).Kind != KindNone {
			hit++
		}
	}
	frac := float64(hit) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("rate 0.25 produced fault fraction %.3f", frac)
	}
	// A nil injector and a zero rate inject nothing.
	var nilInj *Injector
	if nilInj.Decide("k", 0).Kind != KindNone {
		t.Error("nil injector injected")
	}
	zero, _ := NewInjector(Config{Rate: 0})
	if zero.Decide("k", 0).Kind != KindNone {
		t.Error("zero-rate injector injected")
	}
}

func TestFaultInjectorTransientClearsOnRetry(t *testing.T) {
	in, err := NewInjector(Config{Seed: 3, Rate: 1, TransientFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := in.Decide("some-key", 0)
	if d.Kind == KindNone || !d.Transient {
		t.Fatalf("expected transient fault on attempt 0, got %+v", d)
	}
	if r := in.Decide("some-key", 1); r.Kind != KindNone {
		t.Fatalf("transient fault must clear on retry, got %+v", r)
	}
}

func TestFaultErrorWrapping(t *testing.T) {
	base := errors.New("boom")
	err := Wrap(StageExec, "hmmer.0", "x86-64", base)
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatal("Wrap must produce a *fault.Error")
	}
	if fe.Stage != StageExec || fe.Region != "hmmer.0" || fe.ISA != "x86-64" {
		t.Errorf("bad classification: %+v", fe)
	}
	if !errors.Is(err, base) {
		t.Error("wrapped cause must remain reachable via errors.Is")
	}
	// Double-wrapping preserves the first classification.
	again := Wrap(StageModel, "other", "other", err)
	var fe2 *Error
	if !errors.As(again, &fe2) || fe2.Stage != StageExec {
		t.Error("re-wrap must keep the original stage")
	}
	if Wrap(StageExec, "r", "i", nil) != nil {
		t.Error("Wrap(nil) must be nil")
	}
	inj, _ := NewInjector(Config{Seed: 1, Rate: 1})
	if !errors.Is(inj.Decide("k", 0).Errorf(), ErrInjected) {
		t.Error("injected errors must match ErrInjected")
	}
}

func TestFaultParseKinds(t *testing.T) {
	ks, err := ParseKinds("compile, slow")
	if err != nil || len(ks) != 2 || ks[0] != KindCompile || ks[1] != KindSlow {
		t.Fatalf("ParseKinds: %v %v", ks, err)
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Error("unknown kind must error")
	}
	all, err := ParseKinds("")
	if err != nil || len(all) != 4 {
		t.Fatalf("empty list must enable all kinds: %v %v", all, err)
	}
}
