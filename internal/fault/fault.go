// Package fault provides the typed failure taxonomy and the deterministic
// fault injector used by the design-space-exploration pipeline.
//
// A production-scale exploration evaluates hundreds of (region, ISA)
// profiles and thousands of design points; individual evaluation failures
// must be isolated, classified, and accounted for rather than aborting the
// whole run. This package supplies the vocabulary for that: every failure
// on the evaluate path is wrapped in a *fault.Error carrying the pipeline
// stage it arose in, the (region, ISA) pair it belongs to, and whether a
// retry may succeed. The injector makes those failure paths testable by
// forcing them deterministically at a configured rate.
package fault

import (
	"errors"
	"fmt"
)

// Stage identifies where in the evaluate pipeline a failure occurred.
type Stage uint8

const (
	// StageCompile covers failures lowering IR to machine code.
	StageCompile Stage = iota
	// StageExec covers functional-execution failures: unimplemented
	// opcodes, PC out of range, the instruction-budget watchdog, and
	// recovered panics.
	StageExec
	// StageModel covers timing/power model failures on a valid profile.
	StageModel
	// StageVerify covers static-conformance failures: the compiled region
	// carries machine code illegal for its composite feature set
	// (internal/check found violations before execution).
	StageVerify
	// StageStore covers durable-tier failures: the content-addressed
	// design-point store (internal/store) could not append, sync, or
	// compact. Store faults never invalidate an in-memory evaluation —
	// they degrade durability, so they are typically marked Transient
	// (the disk may come back) and a serving layer answers from memory.
	StageStore
)

func (s Stage) String() string {
	switch s {
	case StageCompile:
		return "compile"
	case StageExec:
		return "exec"
	case StageModel:
		return "model"
	case StageVerify:
		return "verify"
	case StageStore:
		return "store"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// ErrInjected is the sentinel every injected fault wraps, so tests and
// callers can distinguish injected failures from organic ones with
// errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("injected fault")

// Error is the typed evaluation failure for one (region, ISA) pair.
// It wraps the underlying cause, so errors.Is/errors.As reach sentinel
// errors like cpu.ErrInstrBudget through it.
type Error struct {
	Stage  Stage
	Region string // region name, e.g. "hmmer.0"
	ISA    string // ISA choice key, e.g. "x86-32D-Full"
	// Transient marks failures a bounded retry may clear (injected
	// transient faults, timeouts on a loaded machine).
	Transient bool
	Err       error
}

func (e *Error) Error() string {
	if e.Region == "" && e.ISA == "" {
		// Store faults are not tied to a (region, ISA) pair.
		return fmt.Sprintf("%s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("%s %s for %s: %v", e.Stage, e.Region, e.ISA, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Is makes errors.Is(err, &fault.Error{Stage: s}) match on stage alone,
// and supports matching any *fault.Error via a zero value with stage
// comparison; the common path is errors.As.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return t.Stage == e.Stage &&
		(t.Region == "" || t.Region == e.Region) &&
		(t.ISA == "" || t.ISA == e.ISA)
}

// Wrap builds a stage-classified error for a (region, ISA) pair. It returns
// nil for a nil cause. If the cause is already a *fault.Error it is
// returned unchanged (the first classification wins).
func Wrap(stage Stage, region, isaKey string, err error) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		return err
	}
	return &Error{Stage: stage, Region: region, ISA: isaKey, Err: err}
}

// IsTransient reports whether err (or any error it wraps) is a transient
// fault worth retrying.
func IsTransient(err error) bool {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Transient
	}
	return false
}
