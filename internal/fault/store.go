package fault

import (
	"fmt"
	"os"
	"sync/atomic"
)

// StoreOp identifies one mutating filesystem operation of the durable
// design-point store. The StoreInjector decides per operation, so a crash
// point is "the Nth mutating operation since open" — a coordinate that is
// stable across runs and lets the chaos harness sweep every phase of an
// append or compaction deterministically.
type StoreOp uint8

const (
	// OpWrite is one append of record bytes to the log.
	OpWrite StoreOp = iota
	// OpSync is one fsync of the log file (the durability boundary).
	OpSync
	// OpRename is the atomic swap installing a compacted log.
	OpRename
	// OpSyncDir is the directory fsync making a rename durable.
	OpSyncDir
)

func (op StoreOp) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// StoreConfig configures a StoreInjector. Two modes compose:
//
//   - CrashAt > 0 plants one deterministic crash: the Nth mutating store
//     operation (1-based, counted across all ops) calls Exit mid-operation.
//     The subprocess chaos harness sweeps N to cover every phase of the
//     append and compaction paths.
//   - Rate > 0 injects recoverable operation errors (short write, write
//     error, fsync error) pseudo-randomly per operation, derived only from
//     (Seed, op sequence number) so runs with equal seeds fail identically.
type StoreConfig struct {
	// Seed drives the per-operation error draw (Rate mode).
	Seed uint64
	// Rate is the probability in [0, 1] that a mutating operation fails.
	Rate float64
	// Kinds are the enabled error kinds for Rate mode (default: short
	// write, write error, fsync error). KindCrash is never drawn randomly;
	// it only fires via CrashAt.
	Kinds []Kind
	// CrashAt, when positive, crashes the process during the Nth mutating
	// operation.
	CrashAt int64
	// Exit is invoked to crash (default os.Exit(170), the chaos harness's
	// sentinel exit code). Tests may substitute panic or a recorder.
	Exit func()
}

// StoreCrashExitCode is the exit status the default Exit uses, so a chaos
// parent can distinguish an injected crash from an organic child failure.
const StoreCrashExitCode = 170

// StoreInjector deterministically decides, per mutating store operation,
// whether and how to inject a fault. Safe for concurrent use; the only
// state is the operation counter.
type StoreInjector struct {
	cfg   StoreConfig
	kinds []Kind
	ops   atomic.Int64
}

// NewStoreInjector validates the configuration and builds an injector.
// A nil *StoreInjector is valid and injects nothing.
func NewStoreInjector(cfg StoreConfig) (*StoreInjector, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("fault: store rate %g outside [0, 1]", cfg.Rate)
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindShortWrite, KindWriteErr, KindSyncErr}
	}
	for _, k := range kinds {
		switch k {
		case KindShortWrite, KindWriteErr, KindSyncErr:
		default:
			return nil, fmt.Errorf("fault: kind %s is not a store error kind", k)
		}
	}
	if cfg.Exit == nil {
		cfg.Exit = func() { os.Exit(StoreCrashExitCode) }
	}
	return &StoreInjector{cfg: cfg, kinds: kinds}, nil
}

// Ops reports how many mutating operations the injector has seen (for
// tests and for sizing chaos sweeps: a crash point beyond this count means
// the workload completed crash-free).
func (si *StoreInjector) Ops() int64 {
	if si == nil {
		return 0
	}
	return si.ops.Load()
}

// Decide returns the verdict for the next mutating store operation. For a
// KindCrash decision the caller is expected to persist the decided torn
// prefix (writes) and then call Crash; error kinds map onto the operation:
// KindShortWrite/KindWriteErr only fire on OpWrite, KindSyncErr on
// OpSync/OpSyncDir. A nil injector never injects.
func (si *StoreInjector) Decide(op StoreOp) Decision {
	if si == nil {
		return Decision{}
	}
	seq := si.ops.Add(1)
	if si.cfg.CrashAt > 0 && seq == si.cfg.CrashAt {
		return Decision{Kind: KindCrash}
	}
	if si.cfg.Rate == 0 {
		return Decision{}
	}
	h := mix64(si.cfg.Seed ^ uint64(seq)*0x9e3779b97f4a7c15)
	if float64(uint32(h))/float64(1<<32) >= si.cfg.Rate {
		return Decision{}
	}
	kind := si.kinds[int((h>>32)&0xffff)%len(si.kinds)]
	switch op {
	case OpWrite:
		if kind == KindSyncErr {
			kind = KindWriteErr
		}
	case OpSync, OpSyncDir:
		kind = KindSyncErr
	default:
		// Rename stays atomic under error injection; only crashes tear it.
		return Decision{}
	}
	// Injected store faults are transient by taxonomy: the operation may
	// succeed when retried (and the serving layer degrades, not fails).
	return Decision{Kind: kind, Transient: true}
}

// Crash invokes the configured exit. Callers persist the decided torn
// state first, so the on-disk image matches a real kill mid-operation.
func (si *StoreInjector) Crash() { si.cfg.Exit() }

// mix64 is the splitmix64 finalizer: a full-avalanche mix so consecutive
// sequence numbers draw independent verdicts.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}
