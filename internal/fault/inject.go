package fault

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"
)

// Kind enumerates the injectable fault classes. Each exercises a distinct
// recovery path in the evaluate pipeline.
type Kind uint8

const (
	// KindNone means no fault.
	KindNone Kind = iota
	// KindCompile forces the compiler to fail for the pair.
	KindCompile
	// KindRunaway forces runaway execution so the instruction-budget
	// watchdog fires.
	KindRunaway
	// KindCorrupt corrupts the compiled encoding so functional execution
	// hits an unimplemented opcode or an out-of-range PC.
	KindCorrupt
	// KindSlow delays the evaluation (without failing it) to exercise
	// deadline/cancellation handling.
	KindSlow
	// KindBadCode mutates the compiled program into one that is illegal for
	// its feature set, so the static verification stage (not the executor)
	// must catch it. Opt-in only: it is excluded from the default kind list
	// because enabling it would reshuffle the deterministic kind assignment
	// (hash % len(kinds)) existing seeds rely on, and because it only
	// produces a failure when verification is enabled.
	KindBadCode
	// The Kind*Write/Sync/Crash kinds are store-operation faults consumed
	// by a StoreInjector (see store.go), not by the evaluation pipeline's
	// Injector: they fire per filesystem operation of the durable
	// design-point store rather than per (region, ISA) evaluation.
	//
	// KindShortWrite makes a write persist only a prefix of its buffer and
	// report an error — the torn-write shape a crash leaves on disk.
	KindShortWrite
	// KindWriteErr fails a write outright with no bytes persisted.
	KindWriteErr
	// KindSyncErr fails an fsync (the data may or may not reach disk; the
	// store must treat it as not durable).
	KindSyncErr
	// KindCrash kills the process mid-operation (after persisting a torn
	// prefix for writes), driving the subprocess chaos harness.
	KindCrash
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindCompile:
		return "compile"
	case KindRunaway:
		return "runaway"
	case KindCorrupt:
		return "corrupt"
	case KindSlow:
		return "slow"
	case KindBadCode:
		return "badcode"
	case KindShortWrite:
		return "shortwrite"
	case KindWriteErr:
		return "writeerr"
	case KindSyncErr:
		return "syncerr"
	case KindCrash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKinds parses a comma-separated kind list ("compile,runaway,corrupt,
// slow,badcode"). An empty string selects every default error-producing
// kind; "badcode" is opt-in (see KindBadCode) and must be named explicitly.
func ParseKinds(s string) ([]Kind, error) {
	if strings.TrimSpace(s) == "" {
		return []Kind{KindCompile, KindRunaway, KindCorrupt, KindSlow}, nil
	}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "compile":
			out = append(out, KindCompile)
		case "runaway":
			out = append(out, KindRunaway)
		case "corrupt":
			out = append(out, KindCorrupt)
		case "slow":
			out = append(out, KindSlow)
		case "badcode":
			out = append(out, KindBadCode)
		case "":
		default:
			return nil, fmt.Errorf("fault: unknown kind %q", strings.TrimSpace(part))
		}
	}
	return out, nil
}

// Config configures an Injector.
type Config struct {
	// Seed makes every decision reproducible: the same (seed, key,
	// attempt) always yields the same fault.
	Seed uint64
	// Rate is the probability in [0, 1] that an evaluation keyed by a
	// given string receives a fault.
	Rate float64
	// Kinds are the enabled fault classes; empty enables all of them.
	Kinds []Kind
	// TransientFrac is the fraction of injected error faults that clear
	// on the first retry (default 0: all injected faults are persistent,
	// which keeps quarantine lists maximal and deterministic).
	TransientFrac float64
	// SlowDelay is the delay applied by KindSlow faults (default 2ms).
	SlowDelay time.Duration
}

// Decision is one injector verdict for an evaluation attempt.
type Decision struct {
	Kind      Kind
	Transient bool
	// Delay is non-zero for KindSlow.
	Delay time.Duration
}

// Injector deterministically decides, per evaluation key, whether and how
// to inject a fault. It is stateless after construction and safe for
// concurrent use: decisions depend only on (seed, key, attempt), never on
// evaluation order, so concurrent explorations remain reproducible.
type Injector struct {
	cfg   Config
	kinds []Kind
}

// NewInjector validates the configuration and builds an injector.
// A nil *Injector is valid and injects nothing.
func NewInjector(cfg Config) (*Injector, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("fault: rate %g outside [0, 1]", cfg.Rate)
	}
	if cfg.TransientFrac < 0 || cfg.TransientFrac > 1 {
		return nil, fmt.Errorf("fault: transient fraction %g outside [0, 1]", cfg.TransientFrac)
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindCompile, KindRunaway, KindCorrupt, KindSlow}
	}
	sorted := append([]Kind{}, kinds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if cfg.SlowDelay == 0 {
		cfg.SlowDelay = 2 * time.Millisecond
	}
	return &Injector{cfg: cfg, kinds: sorted}, nil
}

// Seed returns the configured seed (0 for a nil injector), so downstream
// stages can derive deterministic per-run values from the same source.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.cfg.Seed
}

// hash mixes the seed and key with FNV-1a.
func (in *Injector) hash(key string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(in.cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(key))
	// FNV's low bits are biased for short, similar keys; finalize with a
	// murmur3-style avalanche so every bit is usable for rate gating.
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Decide returns the fault (if any) for the evaluation identified by key on
// the given retry attempt (0 = first try). Transient faults clear from
// attempt 1 onward; persistent faults fire on every attempt. A nil
// injector never injects.
func (in *Injector) Decide(key string, attempt int) Decision {
	if in == nil || in.cfg.Rate == 0 {
		return Decision{}
	}
	h := in.hash(key)
	// Split the hash: low 32 bits gate the rate, the next bits pick the
	// kind and transience. All derived from the same draw so a pair is
	// either always faulty or never faulty under a given seed.
	u := float64(uint32(h)) / float64(1<<32)
	if u >= in.cfg.Rate {
		return Decision{}
	}
	kind := in.kinds[int((h>>32)&0xffff)%len(in.kinds)]
	transient := float64(uint16(h>>48))/float64(1<<16) < in.cfg.TransientFrac
	if transient && attempt > 0 {
		return Decision{}
	}
	d := Decision{Kind: kind, Transient: transient}
	if kind == KindSlow {
		d.Delay = in.cfg.SlowDelay
	}
	return d
}

// Errorf builds the injected-fault error for a decision, wrapping
// ErrInjected so errors.Is(err, fault.ErrInjected) holds.
func (d Decision) Errorf() error {
	return fmt.Errorf("%w: %s", ErrInjected, d.Kind)
}
