package fault

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// allStages enumerates every Stage; extend it when the taxonomy grows (the
// totality test below fails if a stage is added here without a String()
// case, and the String() test's sentinel catches the reverse drift).
var allStages = []Stage{StageCompile, StageExec, StageModel, StageVerify, StageStore}

// TestStageStringTotal: every stage renders a real name — the taxonomy has
// no stage that falls through to the "stage(N)" fallback.
func TestStageStringTotal(t *testing.T) {
	seen := map[string]Stage{}
	for _, st := range allStages {
		s := st.String()
		if s == "" || strings.HasPrefix(s, "stage(") {
			t.Errorf("Stage %d has no real String(): %q", st, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("stages %d and %d share the name %q", prev, st, s)
		}
		seen[s] = st
	}
	// Guard the enumeration itself: a brand-new stage defined after the
	// last known one would not be in allStages.
	if next := allStages[len(allStages)-1] + 1; !strings.HasPrefix(next.String(), "stage(") {
		t.Errorf("stage %d exists but is missing from allStages; extend the table", next)
	}
}

// TestHTTPStatusTotal: the taxonomy→status mapping is total over every
// (stage, transient) pair, and each status is one the serving layer
// documents: transient faults are always 503, deterministic compile/verify
// are 422, the rest 500.
func TestHTTPStatusTotal(t *testing.T) {
	for _, st := range allStages {
		for _, transient := range []bool{false, true} {
			err := &Error{Stage: st, Region: "r", ISA: "isa", Transient: transient, Err: errors.New("x")}
			got := HTTPStatus(err)
			want := http.StatusInternalServerError
			switch {
			case transient:
				want = http.StatusServiceUnavailable
			case st == StageCompile || st == StageVerify:
				want = http.StatusUnprocessableEntity
			}
			if got != want {
				t.Errorf("HTTPStatus(%s, transient=%v) = %d, want %d", st, transient, got, want)
			}
			if got < 400 || got > 599 {
				t.Errorf("HTTPStatus(%s, transient=%v) = %d: not an error status", st, transient, got)
			}
		}
	}
}

// TestHTTPStatusWrapped: the mapping sees through fmt.Errorf("%w") chains
// and errors.Join — a fault wrapped by arbitrary context layers keeps its
// status.
func TestHTTPStatusWrapped(t *testing.T) {
	base := &Error{Stage: StageStore, Transient: true, Err: errors.New("disk gone")}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"bare", base, http.StatusServiceUnavailable},
		{"wrapped once", fmt.Errorf("put key: %w", base), http.StatusServiceUnavailable},
		{"wrapped twice", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", base)), http.StatusServiceUnavailable},
		{"joined with plain", errors.Join(errors.New("unrelated"), base), http.StatusServiceUnavailable},
		{"joined deterministic", errors.Join(
			fmt.Errorf("ctx: %w", &Error{Stage: StageCompile, Err: errors.New("bad encoding")}),
		), http.StatusUnprocessableEntity},
		{"wrapped deadline", fmt.Errorf("evaluate: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"wrapped cancel", fmt.Errorf("evaluate: %w", context.Canceled), StatusClientClosedRequest},
		{"plain error", errors.New("mystery"), http.StatusInternalServerError},
		{"nil", nil, http.StatusOK},
	}
	for _, tc := range cases {
		if got := HTTPStatus(tc.err); got != tc.want {
			t.Errorf("HTTPStatus(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestRetryAfter: only transient faults and deadline expiry earn a retry
// hint, and the hint survives wrapping and joining like the status does.
func TestRetryAfter(t *testing.T) {
	transient := &Error{Stage: StageStore, Transient: true, Err: errors.New("io")}
	deterministic := &Error{Stage: StageModel, Err: errors.New("nan")}
	cases := []struct {
		name      string
		err       error
		retryable bool
		min       time.Duration
	}{
		{"transient bare", transient, true, time.Second},
		{"transient wrapped", fmt.Errorf("put: %w", transient), true, time.Second},
		{"transient joined", errors.Join(errors.New("noise"), transient), true, time.Second},
		{"deadline", fmt.Errorf("eval: %w", context.DeadlineExceeded), true, 2 * time.Second},
		{"deterministic", deterministic, false, 0},
		{"deterministic wrapped", fmt.Errorf("x: %w", deterministic), false, 0},
		{"plain", errors.New("plain"), false, 0},
		{"nil", nil, false, 0},
	}
	for _, tc := range cases {
		d, ok := RetryAfter(tc.err)
		if ok != tc.retryable {
			t.Errorf("RetryAfter(%s) retryable = %v, want %v", tc.name, ok, tc.retryable)
			continue
		}
		if ok && d < tc.min {
			t.Errorf("RetryAfter(%s) = %v, want >= %v", tc.name, d, tc.min)
		}
		if !ok && d != 0 {
			t.Errorf("RetryAfter(%s) = %v with ok=false, want 0", tc.name, d)
		}
	}
}

// TestErrorMessageShapes: store faults (no region/ISA) render without the
// dangling "for" that the (region, ISA) format would produce.
func TestErrorMessageShapes(t *testing.T) {
	withPair := &Error{Stage: StageCompile, Region: "gcc", ISA: "x86", Err: errors.New("boom")}
	if msg := withPair.Error(); !strings.Contains(msg, "gcc") || !strings.Contains(msg, "x86") {
		t.Errorf("pair fault message lost its coordinates: %q", msg)
	}
	storeFault := &Error{Stage: StageStore, Transient: true, Err: errors.New("fsync failed")}
	msg := storeFault.Error()
	if strings.Contains(msg, " for ") || strings.Contains(msg, "  ") {
		t.Errorf("store fault message has pair-format debris: %q", msg)
	}
	if !strings.HasPrefix(msg, "store: ") {
		t.Errorf("store fault message = %q, want 'store: ...' prefix", msg)
	}
}
