package fault

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose client went away before the response was ready; net/http has no
// name for it.
const StatusClientClosedRequest = 499

// HTTPStatus maps an evaluation-pipeline error onto the HTTP status code a
// serving layer should answer with. The mapping follows the taxonomy's
// retry semantics: transient faults are 503 (the caller should retry,
// after the hint from RetryAfter), deterministic compile/verify faults are
// 422 (the design point itself produces illegal or uncompilable code — no
// retry will change that), deadline expiry is 504, and anything else
// deterministic is a plain 500. A nil error maps to 200.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	}
	var fe *Error
	if errors.As(err, &fe) {
		if fe.Transient {
			return http.StatusServiceUnavailable
		}
		switch fe.Stage {
		case StageCompile, StageVerify:
			return http.StatusUnprocessableEntity
		}
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// RetryAfter returns the retry hint for an error: how long a client should
// wait before retrying, and whether retrying is worthwhile at all. Only
// transient faults (and deadline expiry, which clears when load does) are
// retryable; the hint matches the pipeline's own first-retry backoff scale.
func RetryAfter(err error) (time.Duration, bool) {
	if errors.Is(err, context.DeadlineExceeded) {
		return 2 * time.Second, true
	}
	if IsTransient(err) {
		return time.Second, true
	}
	return 0, false
}
