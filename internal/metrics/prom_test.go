package metrics

import (
	"strings"
	"testing"
	"time"
)

// TestPromExpositionGolden pins the exact exposition-format output for a
// representative mix of counters, gauges, and histograms: the format is an
// external contract (Prometheus scrapes it), so any drift is a breaking
// change and must show up as a test diff.
func TestPromExpositionGolden(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond)  // below the floor -> bucket 0
	h.Observe(3 * time.Microsecond)   // [2µs,4µs) -> bucket 1
	h.Observe(3500 * time.Nanosecond) // same bucket
	h.Observe(100 * time.Millisecond) // far up the range

	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("compisa_requests_total", "HTTP requests received.", 42)
	p.Counter("compisa_evals_total", "Evaluations by outcome.", 7, "outcome", "hit")
	p.Gauge("compisa_uptime_seconds", "Seconds since boot.", 1.5)
	p.Histogram("compisa_eval_duration_seconds", "Evaluation latency.", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	want := `# HELP compisa_requests_total HTTP requests received.
# TYPE compisa_requests_total counter
compisa_requests_total 42
# HELP compisa_evals_total Evaluations by outcome.
# TYPE compisa_evals_total counter
compisa_evals_total{outcome="hit"} 7
# HELP compisa_uptime_seconds Seconds since boot.
# TYPE compisa_uptime_seconds gauge
compisa_uptime_seconds 1.5
# HELP compisa_eval_duration_seconds Evaluation latency.
# TYPE compisa_eval_duration_seconds histogram
compisa_eval_duration_seconds_bucket{le="2e-06"} 1
compisa_eval_duration_seconds_bucket{le="4e-06"} 3
compisa_eval_duration_seconds_bucket{le="8e-06"} 3
compisa_eval_duration_seconds_bucket{le="1.6e-05"} 3
compisa_eval_duration_seconds_bucket{le="3.2e-05"} 3
compisa_eval_duration_seconds_bucket{le="6.4e-05"} 3
compisa_eval_duration_seconds_bucket{le="0.000128"} 3
compisa_eval_duration_seconds_bucket{le="0.000256"} 3
compisa_eval_duration_seconds_bucket{le="0.000512"} 3
compisa_eval_duration_seconds_bucket{le="0.001024"} 3
compisa_eval_duration_seconds_bucket{le="0.002048"} 3
compisa_eval_duration_seconds_bucket{le="0.004096"} 3
compisa_eval_duration_seconds_bucket{le="0.008192"} 3
compisa_eval_duration_seconds_bucket{le="0.016384"} 3
compisa_eval_duration_seconds_bucket{le="0.032768"} 3
compisa_eval_duration_seconds_bucket{le="0.065536"} 3
compisa_eval_duration_seconds_bucket{le="0.131072"} 4
compisa_eval_duration_seconds_bucket{le="+Inf"} 4
compisa_eval_duration_seconds_sum 0.100007
compisa_eval_duration_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromHistogramWithLabels: the le label composes with caller labels and
// labels are key-sorted regardless of argument order.
func TestPromHistogramWithLabels(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Histogram("d_seconds", "x", h.Snapshot(), "stage", "model")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`d_seconds_bucket{stage="model",le="4e-06"} 1`,
		`d_seconds_bucket{stage="model",le="+Inf"} 1`,
		`d_seconds_sum{stage="model"} 3e-06`,
		`d_seconds_count{stage="model"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	var sb2 strings.Builder
	p2 := NewPromWriter(&sb2)
	p2.Counter("c_total", "x", 1, "z", "1", "a", "2")
	if want := `c_total{a="2",z="1"} 1`; !strings.Contains(sb2.String(), want) {
		t.Errorf("labels not key-sorted: %s", sb2.String())
	}
}

// TestPromFamilyHeaderOnce: a family emitted as several labeled series
// carries a single HELP/TYPE header — repeating it between samples is
// invalid exposition format.
func TestPromFamilyHeaderOnce(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("cache_total", "Cache outcomes.", 3, "outcome", "hit")
	p.Counter("cache_total", "Cache outcomes.", 1, "outcome", "miss")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if n := strings.Count(got, "# HELP cache_total"); n != 1 {
		t.Errorf("HELP emitted %d times, want 1:\n%s", n, got)
	}
	if n := strings.Count(got, "# TYPE cache_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1:\n%s", n, got)
	}
	for _, want := range []string{`cache_total{outcome="hit"} 3`, `cache_total{outcome="miss"} 1`} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
