package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 50; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 50*105 {
		t.Fatalf("Load = %d, want %d", got, 50*105)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2*time.Microsecond - 1, 0},
		{2 * time.Microsecond, 1},
		{time.Millisecond, 9},
		{time.Second, 19},
		{time.Hour, numBuckets - 1}, // overflow lands in the last bucket
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	for i := 0; i < numBuckets-1; i++ {
		// Every bucket's upper bound is exclusive: it belongs to bucket i+1.
		if got := bucketOf(BucketUpper(i)); got != i+1 {
			t.Errorf("bucketOf(BucketUpper(%d)) = %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramObserveAndStats(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(-time.Second) // clamped to 0
	s := h.Snapshot()
	if s.Count != 11 {
		t.Fatalf("Count = %d, want 11", s.Count)
	}
	if want := 10 * time.Millisecond; s.Sum() != want {
		t.Fatalf("Sum = %v, want %v", s.Sum(), want)
	}
	if mean := s.Mean(); mean != 10*time.Millisecond/11 {
		t.Fatalf("Mean = %v", mean)
	}
	// p99 sits in the 1ms bucket; the estimate is that bucket's upper bound.
	if q := s.Quantile(0.99); q != BucketUpper(bucketOf(time.Millisecond)) {
		t.Fatalf("Quantile(0.99) = %v", q)
	}
	if s.Quantile(0) != 0 {
		t.Fatal("Quantile(0) should be 0")
	}
	if (HistogramSnapshot{}).Mean() != 0 || (HistogramSnapshot{}).String() != "count=0" {
		t.Fatal("empty snapshot should report zero values")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Observe(time.Microsecond << uint(i%12))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 20*200 {
		t.Fatalf("Count = %d, want %d", s.Count, 20*200)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestHistogramMergeAndJSON(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Second)
	b.Observe(time.Millisecond)

	// Snapshot → JSON → snapshot → merge must preserve counts (the
	// checkpoint roundtrip path).
	data, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var restored HistogramSnapshot
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	b.Merge(restored)
	s := b.Snapshot()
	if s.Count != 3 {
		t.Fatalf("merged Count = %d, want 3", s.Count)
	}
	if want := time.Second + time.Millisecond + time.Microsecond; s.Sum() != want {
		t.Fatalf("merged Sum = %v, want %v", s.Sum(), want)
	}
	// Over-long bucket slices (a future format with more buckets) must not
	// panic; extra buckets are dropped.
	var c Histogram
	c.Merge(HistogramSnapshot{Count: 1, SumNS: 1, Buckets: make([]int64, numBuckets+8)})
	if c.Snapshot().Count != 1 {
		t.Fatal("merge with oversized bucket slice lost the count")
	}
}

func TestSince(t *testing.T) {
	var h Histogram
	h.Since(time.Now().Add(-time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Sum() < time.Millisecond {
		t.Fatalf("Since recorded %v over %d observations", s.Sum(), s.Count)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(0, 0); got != "-" {
		t.Errorf("Rate(0,0) = %q, want -", got)
	}
	if got := Rate(3, 1); got != "75.0%" {
		t.Errorf("Rate(3,1) = %q, want 75.0%%", got)
	}
	if got := Rate(0, 5); got != "0.0%" {
		t.Errorf("Rate(0,5) = %q, want 0.0%%", got)
	}
}
