package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits metrics in the Prometheus text exposition format
// (version 0.0.4), the lingua franca of scrape-based monitoring. It is
// deliberately minimal — counters, gauges, and histograms over the
// package's own snapshot types — so the serving layer can expose the
// pipeline's instrumentation without importing a client library.
//
// Output is deterministic for a given call sequence: metrics appear in
// emission order, and label pairs are sorted by key. The first write error
// sticks and short-circuits subsequent emissions; check Err once at the end.
type PromWriter struct {
	w      io.Writer
	err    error
	headed map[string]bool // families whose HELP/TYPE header is already out
}

// NewPromWriter wraps w for exposition-format output.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, headed: map[string]bool{}}
}

// Err returns the first error encountered while writing.
func (p *PromWriter) Err() error { return p.err }

// header emits the HELP/TYPE preamble once per metric family: the format
// allows a family's samples to differ only in labels, never to repeat the
// header between them.
func (p *PromWriter) header(name, help, kind string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// formatLabels renders {k="v",...} with keys sorted, or "" when empty.
// labels are alternating key, value pairs.
func formatLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, kv := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", kv.k, kv.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// representation that round-trips, "+Inf"/"-Inf" spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one cumulative counter sample. By convention the name
// should end in "_total". labels are alternating key, value pairs.
func (p *PromWriter) Counter(name, help string, v int64, labels ...string) {
	p.header(name, help, "counter")
	p.printf("%s%s %d\n", name, formatLabels(labels), v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	p.printf("%s%s %s\n", name, formatLabels(labels), formatFloat(v))
}

// Histogram emits a duration histogram snapshot as a Prometheus histogram
// in seconds: cumulative `_bucket{le="..."}` samples over the package's
// exponential bucket bounds (trailing empty buckets collapse into +Inf),
// plus `_sum` and `_count`.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot, labels ...string) {
	p.header(name, help, "histogram")
	base := formatLabels(labels)
	// Re-open the label set to append le; "{a="b"}" -> "{a="b",le="x"}".
	open := func(le string) string {
		if base == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return base[:len(base)-1] + fmt.Sprintf(",le=%q}", le)
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		p.printf("%s_bucket%s %d\n", name, open(formatFloat(BucketUpper(i).Seconds())), cum)
	}
	p.printf("%s_bucket%s %d\n", name, open("+Inf"), s.Count)
	p.printf("%s_sum%s %s\n", name, base, formatFloat(float64(s.SumNS)/1e9))
	p.printf("%s_count%s %d\n", name, base, s.Count)
}
