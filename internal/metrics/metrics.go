// Package metrics provides the lock-free instrumentation primitives of the
// evaluation pipeline: atomic counters and exponential-bucket duration
// histograms. Both are safe for concurrent use, cheap enough to sit on hot
// paths (one atomic add per event), and snapshot into plain serializable
// values so pipeline statistics can be printed (`compose-explore -stats`)
// and carried across checkpoint/resume.
package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use. Counters must not be copied after first use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters are monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// numBuckets spans 1µs..~8.6s in powers of two, plus an overflow bucket.
const numBuckets = 24

// bucketFloor is the lower bound of the histogram's first bucket.
const bucketFloor = time.Microsecond

// Histogram is a lock-free duration histogram with exponential buckets:
// bucket i counts observations in [1µs<<i, 1µs<<(i+1)), with everything
// below 1µs in bucket 0 and everything past the last bound in the overflow
// bucket. The zero value is ready to use; must not be copied after first use.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < bucketFloor {
		return 0
	}
	i := 0
	for b := bucketFloor; b <= d && i < numBuckets; b <<= 1 {
		i++
	}
	return i - 1
}

// BucketUpper returns the exclusive upper bound of bucket i (the last
// bucket is unbounded and reports the largest finite bound).
func BucketUpper(i int) time.Duration {
	if i >= numBuckets-1 {
		i = numBuckets - 1
	}
	return bucketFloor << uint(i+1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// Since records the time elapsed from start; `defer h.Since(time.Now())`
// times a whole function body.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// HistogramSnapshot is a point-in-time copy of a histogram, serializable
// for -stats output and checkpoint files.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	// Buckets holds per-bucket counts, trailing zeros trimmed.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sumNS.Load()}
	last := -1
	var b [numBuckets]int64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		if b[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append(s.Buckets, b[:last+1]...)
	}
	return s
}

// Merge adds a snapshot's counts into the histogram (checkpoint resume
// accumulates the prior run's statistics this way).
func (h *Histogram) Merge(s HistogramSnapshot) {
	h.count.Add(s.Count)
	h.sumNS.Add(s.SumNS)
	for i, n := range s.Buckets {
		if i >= numBuckets {
			break
		}
		h.buckets[i].Add(n)
	}
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Sum returns the total observed duration.
func (s HistogramSnapshot) Sum() time.Duration { return time.Duration(s.SumNS) }

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket containing it — an upper estimate, which is the conservative
// direction for latency reporting.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(numBuckets - 1)
}

// String renders "count=N mean=... p50=... p99=... total=...".
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "count=0"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "count=%d mean=%v p50=%v p99=%v total=%v",
		s.Count, s.Mean().Round(time.Microsecond),
		s.Quantile(0.50), s.Quantile(0.99), s.Sum().Round(time.Millisecond))
	return sb.String()
}

// Rate renders hits/(hits+misses) as a percentage string, "-" when no
// lookups happened. Shared by every cache tier's -stats line.
func Rate(hits, misses int64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
}
