package ir

import (
	"math"
	"strings"
	"testing"

	"compisa/internal/mem"
)

// buildSumLoop builds: sum = 0; for i = 0..n-1 { sum += arr[i] }; ret sum
// over an i32 array at base addr.
func buildSumLoop(base uint64, n int64) *Func {
	b := NewBuilder("sumloop")
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")

	basep := b.Const(Ptr, int64(base))
	i := b.Const(I64, 0)
	sum := b.Const(I64, 0)
	limit := b.Const(I64, n)
	b.Br(header)

	b.SetBlock(header)
	c := b.Cmp(LT, I64, i, limit)
	b.CondBr(c, body, exit, 0.95)

	b.SetBlock(body)
	v := b.Load(I32, basep, i, 4, 0)
	v64 := b.Unary(Ext, I64, v)
	b.Assign(sum, Add, I64, sum, v64)
	b.AddImm(i, i, I64, 1)
	b.Br(header)

	b.SetBlock(exit)
	b.Ret(sum)
	return b.F
}

func TestBuilderVerify(t *testing.T) {
	f := buildSumLoop(0x10000, 10)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInterpSumLoop(t *testing.T) {
	f := buildSumLoop(0x10000, 10)
	m := mem.New()
	want := uint64(0)
	for i := 0; i < 10; i++ {
		m.Write(0x10000+uint64(i)*4, 4, uint64(i*i))
		want += uint64(i * i)
	}
	for _, ptrBytes := range []int{4, 8} {
		res, err := Interp(f, m.Clone(), ptrBytes, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != want {
			t.Errorf("ptr%d: got %d want %d", ptrBytes*8, res.Ret, want)
		}
		if res.Loads != 10 {
			t.Errorf("ptr%d: loads = %d want 10", ptrBytes*8, res.Loads)
		}
		if res.Branches != 11 {
			t.Errorf("ptr%d: branches = %d want 11", ptrBytes*8, res.Branches)
		}
	}
}

func TestInterpStepLimit(t *testing.T) {
	b := NewBuilder("inf")
	loop := b.Block("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	if _, err := Interp(b.F, mem.New(), 8, 100); err == nil {
		t.Fatal("infinite loop must hit the step limit")
	}
}

func TestInterpSelectAndCmp(t *testing.T) {
	b := NewBuilder("sel")
	x := b.Const(I32, 7)
	y := b.Const(I32, 9)
	c := b.Cmp(GT, I32, x, y) // false
	r := b.Select(I32, c, x, y)
	b.Ret(r)
	res, err := Interp(b.F, mem.New(), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 9 {
		t.Errorf("select picked %d, want 9", res.Ret)
	}
}

func TestInterpSignedCompare32(t *testing.T) {
	b := NewBuilder("scmp")
	x := b.Const(I32, -5) // stored as 0xfffffffb
	y := b.Const(I32, 3)
	c := b.Cmp(LT, I32, x, y)
	b.Ret(c)
	res, err := Interp(b.F, mem.New(), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 1 {
		t.Error("-5 < 3 must hold under signed i32 compare")
	}
}

func TestInterpFloat(t *testing.T) {
	b := NewBuilder("fp")
	x := b.FConst(F32, 1.5)
	y := b.FConst(F32, 2.25)
	s := b.Bin(FMul, F32, x, y)
	i := b.Unary(FPToSI, I32, s) // 3.375 -> 3
	b.Ret(i)
	res, err := Interp(b.F, mem.New(), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 3 {
		t.Errorf("got %d want 3", res.Ret)
	}
}

func TestInterpVector(t *testing.T) {
	b := NewBuilder("vec")
	m := mem.New()
	for i := 0; i < 4; i++ {
		f := float32(i + 1)
		m.Write(0x2000+uint64(i)*4, 4, uint64(floatBits(f)))
		m.Write(0x3000+uint64(i)*4, 4, uint64(floatBits(10*f)))
	}
	pa := b.Const(Ptr, 0x2000)
	pb := b.Const(Ptr, 0x3000)
	pc := b.Const(Ptr, 0x4000)
	va := b.Load(V4F32, pa, NoReg, 1, 0)
	vb := b.Load(V4F32, pb, NoReg, 1, 0)
	vc := b.Bin(FAdd, V4F32, va, vb)
	b.Store(V4F32, vc, pc, NoReg, 1, 0)
	// load back lane 2 (index 2 -> 3+30 = 33)
	l2 := b.Load(F32, pc, NoReg, 1, 8)
	i := b.Unary(FPToSI, I32, l2)
	b.Ret(i)
	res, err := Interp(b.F, m, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 33 {
		t.Errorf("vector lane 2 sum = %d, want 33", res.Ret)
	}
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func TestInterpByteAccess(t *testing.T) {
	b := NewBuilder("bytes")
	m := mem.New()
	m.Write(0x100, 4, 0xfefdfcfb)
	p := b.Const(Ptr, 0x100)
	v := b.LoadByte(p, NoReg, 1, 2) // byte 2 = 0xfd, zero-extended
	b.StoreByte(v, p, NoReg, 1, 8)
	r := b.Load(I32, p, NoReg, 1, 8)
	b.Ret(r)
	res, err := Interp(b.F, m, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0xfd {
		t.Errorf("got %#x want 0xfd", res.Ret)
	}
}

func TestInterpPtr32Wraps(t *testing.T) {
	// A pointer with bit 32 set must be masked on a 32-bit target.
	b := NewBuilder("wrap")
	m := mem.New()
	m.Write(0x500, 4, 77)
	p := b.Const(Ptr, 0x1_0000_0500)
	v := b.Load(I32, p, NoReg, 1, 0)
	b.Ret(v)
	res, err := Interp(b.F, m, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 77 {
		t.Errorf("32-bit pointer not masked: got %d", res.Ret)
	}
}

func TestVerifyCatchesEmptyBlock(t *testing.T) {
	f := NewFunc("bad")
	f.NewBlock("entry")
	if err := f.Verify(); err == nil {
		t.Fatal("verifier must reject empty blocks")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	b := NewBuilder("bad")
	b.Const(I32, 1)
	if err := b.F.Verify(); err == nil {
		t.Fatal("verifier must reject block without terminator")
	}
}

func TestVerifyCatchesUndefinedUse(t *testing.T) {
	f := NewFunc("bad")
	blk := f.NewBlock("entry")
	v := f.NewVReg(I32)
	w := f.NewVReg(I32)
	blk.Instrs = append(blk.Instrs,
		Instr{Op: Copy, Type: I32, Dst: v, A: w, B: NoReg, C: NoReg, Mem: MemRef{Base: NoReg, Index: NoReg}},
		Instr{Op: Ret, A: v, B: NoReg, C: NoReg, Dst: NoReg, Mem: MemRef{Base: NoReg, Index: NoReg}},
	)
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "never defined") {
		t.Fatalf("verifier must catch undefined use, got %v", err)
	}
}

// TestVerifyCatchesUnreachableDef covers the hole the global used/defined
// pass leaves open: a use in the entry block whose only definition sits in
// a block no path from the use can supply. The definition exists somewhere
// in f.Blocks, so the global pass accepts it; the reaching-defs pass must
// not.
func TestVerifyCatchesUnreachableDef(t *testing.T) {
	b := NewBuilder("bad")
	later := b.Block("later")
	v := b.F.NewVReg(I64)
	b.Ret(v) // used here, but nothing reaches the entry block
	b.SetBlock(later)
	c := b.Const(I64, 1)
	b.Assign(v, Add, I64, c, c)
	b.Ret(v)
	if err := b.F.Verify(); err == nil || !strings.Contains(err.Error(), "no definition reaches") {
		t.Fatalf("verifier must catch use with no reaching definition, got %v", err)
	}
}

// TestVerifyAcceptsDefReachingAcrossBlockOrder pins the converse: a
// definition that appears *later* in f.Blocks order but reaches the use
// through the CFG is legal, so the reaching-defs pass must not regress into
// a linear-order check.
func TestVerifyAcceptsDefReachingAcrossBlockOrder(t *testing.T) {
	b := NewBuilder("order")
	useblk := b.Block("use")
	defblk := b.Block("def")
	v := b.F.NewVReg(I64)
	b.Br(defblk)
	b.SetBlock(defblk)
	c := b.Const(I64, 21)
	b.Assign(v, Add, I64, c, c)
	b.Br(useblk)
	b.SetBlock(useblk)
	b.Ret(v)
	if err := b.F.Verify(); err != nil {
		t.Fatalf("def reaches use via CFG despite later block order: %v", err)
	}
}

// TestVerifyAcceptsPartialJoinDef pins the may-analysis semantics: a value
// defined on only one side of a diamond is still legal at the join (the
// interpreter zero-initializes registers), so Verify must not reject it.
func TestVerifyAcceptsPartialJoinDef(t *testing.T) {
	b := NewBuilder("diamond")
	then := b.Block("then")
	join := b.Block("join")
	v := b.F.NewVReg(I64)
	one := b.Const(I64, 1)
	cond := b.Cmp(LT, I64, one, one)
	b.CondBr(cond, then, join, 0.5)
	b.SetBlock(then)
	b.Assign(v, Add, I64, one, one)
	b.Br(join)
	b.SetBlock(join)
	b.Ret(v)
	if err := b.F.Verify(); err != nil {
		t.Fatalf("def on one join path must be accepted: %v", err)
	}
}

func TestCFGAndRPO(t *testing.T) {
	f := buildSumLoop(0x1000, 4)
	f.ComputeCFG()
	var header *Block
	for _, b := range f.Blocks {
		if b.Name == "header" {
			header = b
		}
	}
	if len(header.Preds()) != 2 {
		t.Errorf("loop header should have 2 preds, got %d", len(header.Preds()))
	}
	rpo := f.RPO()
	if len(rpo) != 4 {
		t.Fatalf("expected 4 reachable blocks, got %d", len(rpo))
	}
	if rpo[0] != f.Entry {
		t.Error("RPO must start at entry")
	}
}

func TestLiveness(t *testing.T) {
	f := buildSumLoop(0x1000, 4)
	lv := f.ComputeLiveness()
	var header, body *Block
	for _, b := range f.Blocks {
		switch b.Name {
		case "header":
			header = b
		case "body":
			body = b
		}
	}
	// sum (v2), i (v1), limit (v3), base (v0) must be live into the header.
	for _, v := range []VReg{0, 1, 2, 3} {
		if !lv.In[header.ID].Has(v) {
			t.Errorf("v%d must be live into header", v)
		}
		if !lv.In[body.ID].Has(v) {
			t.Errorf("v%d must be live into body", v)
		}
	}
}

func TestMaxLivePressure(t *testing.T) {
	// A chain of n live values must report pressure >= n.
	b := NewBuilder("pressure")
	var vs []VReg
	for i := 0; i < 20; i++ {
		vs = append(vs, b.Const(I64, int64(i)))
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = b.Bin(Add, I64, acc, v)
	}
	b.Ret(acc)
	if p := b.F.MaxLivePressure(false); p < 20 {
		t.Errorf("pressure %d, want >= 20", p)
	}
	if p := b.F.MaxLivePressure(true); p != 0 {
		t.Errorf("fp pressure %d, want 0", p)
	}
}

func TestPrinterMentionsBlocks(t *testing.T) {
	s := buildSumLoop(0x1000, 4).String()
	for _, want := range []string{"func sumloop", "header:", "body:", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestCondNegate(t *testing.T) {
	all := []Cond{EQ, NE, LT, LE, GT, GE, ULT, ULE, UGT, UGE}
	for _, c := range all {
		if c.Negate().Negate() != c {
			t.Errorf("double negation of %v is %v", c, c.Negate().Negate())
		}
		if c.Negate() == c {
			t.Errorf("%v negates to itself", c)
		}
	}
}

func TestBitSet(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
	var got []VReg
	s.ForEach(func(v VReg) { got = append(got, v) })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Errorf("ForEach order: %v", got)
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("clear failed")
	}
}
