package ir

// BitSet is a fixed-capacity bit set over virtual register numbers.
type BitSet []uint64

// NewBitSet returns a bit set able to hold n registers.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set marks register v.
func (s BitSet) Set(v VReg) { s[v/64] |= 1 << (uint(v) % 64) }

// Clear unmarks register v.
func (s BitSet) Clear(v VReg) { s[v/64] &^= 1 << (uint(v) % 64) }

// Has reports whether register v is marked.
func (s BitSet) Has(v VReg) bool { return s[v/64]&(1<<(uint(v)%64)) != 0 }

// OrInto ors o into s and reports whether s changed.
func (s BitSet) OrInto(o BitSet) bool {
	changed := false
	for i, w := range o {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// Copy overwrites s with o.
func (s BitSet) Copy(o BitSet) { copy(s, o) }

// Count returns the number of marked registers.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ForEach calls fn for every marked register in increasing order.
func (s BitSet) ForEach(fn func(VReg)) {
	for i, w := range s {
		for w != 0 {
			b := w & -w
			bit := 0
			for m := b; m > 1; m >>= 1 {
				bit++
			}
			fn(VReg(i*64 + bit))
			w &^= b
		}
	}
}

// Liveness holds per-block live-in and live-out sets.
type Liveness struct {
	In  []BitSet // indexed by block ID
	Out []BitSet
}

// ComputeLiveness runs iterative backward dataflow and returns per-block
// live-in/live-out virtual register sets.
func (f *Func) ComputeLiveness() *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{In: make([]BitSet, n), Out: make([]BitSet, n)}
	gen := make([]BitSet, n)  // upward-exposed uses
	kill := make([]BitSet, n) // definitions
	for _, b := range f.Blocks {
		g, k := NewBitSet(f.nvregs), NewBitSet(f.nvregs)
		var uses []VReg
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if !k.Has(u) {
					g.Set(u)
				}
			}
			if d := in.Def(); d != NoReg {
				k.Set(d)
			}
		}
		gen[b.ID], kill[b.ID] = g, k
		lv.In[b.ID] = NewBitSet(f.nvregs)
		lv.Out[b.ID] = NewBitSet(f.nvregs)
	}
	// Iterate to fixpoint over reverse postorder reversed (postorder) for
	// faster convergence on reducible CFGs.
	rpo := f.RPO()
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.Out[b.ID]
			for _, s := range b.Succs() {
				if out.OrInto(lv.In[s.ID]) {
					changed = true
				}
			}
			// in = gen ∪ (out − kill)
			in := lv.In[b.ID]
			tmp := NewBitSet(f.nvregs)
			tmp.Copy(out)
			for j := range tmp {
				tmp[j] &^= kill[b.ID][j]
				tmp[j] |= gen[b.ID][j]
			}
			if in.OrInto(tmp) {
				changed = true
			}
		}
	}
	return lv
}

// MaxLivePressure returns the maximum number of simultaneously live virtual
// registers of the given register class (integer or FP) at any instruction
// boundary. It is the paper's "register pressure" of a code region.
func (f *Func) MaxLivePressure(float bool) int {
	lv := f.ComputeLiveness()
	max := 0
	live := NewBitSet(f.nvregs)
	classOK := func(v VReg) bool { return f.TypeOf(v).IsFloat() == float }
	var uses []VReg
	for _, b := range f.Blocks {
		live.Copy(lv.Out[b.ID])
		count := 0
		live.ForEach(func(v VReg) {
			if classOK(v) {
				count++
			}
		})
		if count > max {
			max = count
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if d := in.Def(); d != NoReg {
				if live.Has(d) && classOK(d) {
					count--
				}
				live.Clear(d)
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if !live.Has(u) {
					live.Set(u)
					if classOK(u) {
						count++
					}
				}
			}
			if count > max {
				max = count
			}
		}
	}
	return max
}
