// Package ir defines the compiler's intermediate representation: a typed
// three-address code over an unbounded set of virtual registers, organized
// into basic blocks with explicit control flow. The workload generators build
// IR; the backend in internal/compiler lowers it to machine code for a chosen
// composite feature set. The IR deliberately mirrors what the paper's LLVM MC
// pipeline consumes: branch probabilities for if-conversion profitability,
// loop annotations for vectorization, and virtual registers whose demand
// exceeds any architectural register depth so that register pressure is real.
package ir

import "fmt"

// Type is the value type of a virtual register or memory access.
type Type uint8

const (
	Void  Type = iota
	I32        // 32-bit integer
	I64        // 64-bit integer
	Ptr        // pointer; 32 or 64 bits depending on the target's register width
	F32        // scalar single-precision float
	F64        // scalar double-precision float
	V4F32      // 128-bit vector of 4 floats (SSE)
	V4I32      // 128-bit vector of 4 int32 (SSE2)
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case Ptr:
		return "ptr"
	case F32:
		return "f32"
	case F64:
		return "f64"
	case V4F32:
		return "v4f32"
	case V4I32:
		return "v4i32"
	}
	return "?"
}

// IsFloat reports whether the type lives in the FP/SIMD register file.
func (t Type) IsFloat() bool { return t >= F32 }

// IsVector reports whether the type is a 128-bit SSE vector.
func (t Type) IsVector() bool { return t == V4F32 || t == V4I32 }

// Size returns the in-memory size in bytes given the target pointer size.
func (t Type) Size(ptrBytes int) int {
	switch t {
	case I32, F32:
		return 4
	case I64, F64:
		return 8
	case Ptr:
		return ptrBytes
	case V4F32, V4I32:
		return 16
	}
	return 0
}

// VReg names a virtual register. Valid virtual registers are >= 0; NoReg
// marks an absent operand.
type VReg int32

// NoReg is the absent-operand marker.
const NoReg VReg = -1

func (v VReg) String() string {
	if v == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(v))
}

// Cond is a comparison condition code.
type Cond uint8

const (
	EQ Cond = iota
	NE
	LT // signed <
	LE
	GT
	GE
	ULT // unsigned <
	ULE
	UGT
	UGE
)

func (c Cond) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge", "ult", "ule", "ugt", "uge"}[c]
}

// Negate returns the condition testing the opposite outcome.
func (c Cond) Negate() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	case ULT:
		return UGE
	case ULE:
		return UGT
	case UGT:
		return ULE
	case UGE:
		return ULT
	}
	return c
}

// Op enumerates IR operations.
type Op uint8

const (
	Nop Op = iota

	// Data movement and constants.
	Const  // Dst = Imm (integer/pointer constant, including global addresses)
	FConst // Dst = FImm
	Copy   // Dst = A

	// Integer arithmetic (operate at the width of the result type).
	Add
	Sub
	Mul
	And
	Or
	Xor
	Shl // Dst = A << Imm (immediate shift)
	Shr // logical right shift by Imm
	Sar // arithmetic right shift by Imm

	// Floating-point arithmetic (scalar or vector depending on type).
	FAdd
	FSub
	FMul
	FDiv

	// Conversions.
	SIToFP // Dst(F32/F64) = signed A
	FPToSI // Dst(I32/I64) = truncated A
	Trunc  // Dst(I32) = low 32 bits of A(I64)
	Ext    // Dst(I64) = sign-extended A(I32)

	// Memory. The effective address is Mem.Base + Mem.Index*Mem.Scale +
	// Mem.Disp; Base and Index are virtual registers (Index may be NoReg).
	Load  // Dst = mem[ea]; MemSize may narrow the access (zero-extended)
	Store // mem[ea] = A

	// Vector support ops introduced by the loop vectorizer.
	Splat   // Dst(V4F32/V4I32) = broadcast of scalar A
	VReduce // Dst(F32) = horizontal sum of A(V4F32)

	// Comparison and selection.
	Cmp    // Dst(I32: 0/1) = A <CC> B (integer compare)
	FCmp   // Dst(I32: 0/1) = A <CC> B (float compare)
	Select // Dst = C != 0 ? A : B (lowered to CMOV — partial predication)

	// Terminators.
	Br     // unconditional jump to Succs[0]
	CondBr // if C != 0 goto Succs[0] else Succs[1]; Prob = P(taken)
	Ret    // return A (NoReg for void); ends the region
)

var opNames = [...]string{
	Nop: "nop", Const: "const", FConst: "fconst", Copy: "copy",
	Add: "add", Sub: "sub", Mul: "mul", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Sar: "sar",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	SIToFP: "sitofp", FPToSI: "fptosi", Trunc: "trunc", Ext: "ext",
	Splat: "splat", VReduce: "vreduce",
	Load: "load", Store: "store",
	Cmp: "cmp", FCmp: "fcmp", Select: "select",
	Br: "br", CondBr: "condbr", Ret: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == Br || o == CondBr || o == Ret }

// MemRef is a base+index*scale+disp memory reference.
type MemRef struct {
	Base  VReg
	Index VReg // NoReg when absent
	Scale int32
	Disp  int64
}

// Instr is one IR instruction. Fields are used according to Op; unused
// register fields hold NoReg.
type Instr struct {
	Op      Op
	Type    Type // result type (or stored-value type for Store)
	Dst     VReg
	A, B, C VReg
	Imm     int64
	FImm    float64
	CC      Cond
	Mem     MemRef
	MemSize uint8   // 0 = natural size of Type; 1 narrows to a byte access
	Prob    float64 // CondBr: profile probability the branch is taken
	// Succs are the successor blocks for terminators (CondBr: [taken,
	// fallthrough]; Br: [target]).
	Succs [2]*Block
}

// Uses appends the virtual registers the instruction reads to dst and
// returns the extended slice.
func (in *Instr) Uses(dst []VReg) []VReg {
	for _, r := range [3]VReg{in.A, in.B, in.C} {
		if r != NoReg {
			dst = append(dst, r)
		}
	}
	if in.Op == Load || in.Op == Store {
		if in.Mem.Base != NoReg {
			dst = append(dst, in.Mem.Base)
		}
		if in.Mem.Index != NoReg {
			dst = append(dst, in.Mem.Index)
		}
	}
	return dst
}

// Def returns the virtual register the instruction writes, or NoReg.
func (in *Instr) Def() VReg {
	switch in.Op {
	case Store, Br, CondBr, Ret, Nop:
		return NoReg
	}
	return in.Dst
}

// Block is a basic block: straight-line instructions ended by a terminator.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr

	// VecLoop marks the header of a vectorizable counted loop and carries
	// the information the loop vectorizer verifies and uses.
	VecLoop *VecLoopInfo

	preds []*Block // maintained by Func.ComputeCFG
}

// VecLoopInfo annotates a canonical counted loop eligible for vectorization:
// for (i = start; i < limitReg; i += 1) { elementwise body }.
type VecLoopInfo struct {
	IndVar VReg // induction variable, stepped by +1 in the body
	Limit  VReg // loop bound register compared against by the latch
	// Lanes the loop may be widened to (4 for SSE). The generator
	// guarantees the trip count divides Lanes evenly.
	Lanes int
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := &b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the block's successors.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case Br:
		return t.Succs[:1]
	case CondBr:
		return t.Succs[:2]
	}
	return nil
}

// Preds returns the block's predecessors (valid after Func.ComputeCFG).
func (b *Block) Preds() []*Block { return b.preds }

// Func is one compilable region: a single-entry CFG over virtual registers.
type Func struct {
	Name   string
	Blocks []*Block
	Entry  *Block

	nvregs int
	types  []Type
}

// NewFunc returns an empty function.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewBlock appends a new empty block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	if f.Entry == nil {
		f.Entry = b
	}
	return b
}

// NewVReg allocates a fresh virtual register of the given type.
func (f *Func) NewVReg(t Type) VReg {
	v := VReg(f.nvregs)
	f.nvregs++
	f.types = append(f.types, t)
	return v
}

// NumVRegs returns the number of virtual registers allocated so far.
func (f *Func) NumVRegs() int { return f.nvregs }

// TypeOf returns the declared type of a virtual register.
func (f *Func) TypeOf(v VReg) Type {
	if v == NoReg || int(v) >= len(f.types) {
		return Void
	}
	return f.types[v]
}

// SetTypeOf overrides a virtual register's type (used by lowering passes
// such as the vectorizer when widening scalar values to vectors).
func (f *Func) SetTypeOf(v VReg, t Type) { f.types[v] = t }

// ComputeCFG (re)builds predecessor lists. Call after any CFG mutation.
func (f *Func) ComputeCFG() {
	for _, b := range f.Blocks {
		b.preds = b.preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.preds = append(s.preds, b)
		}
	}
}

// RPO returns the blocks reachable from the entry in reverse postorder.
func (f *Func) RPO() []*Block {
	seen := make([]bool, len(f.Blocks))
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs() {
			if !seen[s.ID] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	if f.Entry != nil {
		walk(f.Entry)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
