package ir

// Builder provides a fluent interface for emitting IR into a function.
// Workload generators use it to keep kernel construction readable.
type Builder struct {
	F   *Func
	Cur *Block
}

// NewBuilder returns a builder positioned at a fresh entry block.
func NewBuilder(name string) *Builder {
	f := NewFunc(name)
	b := f.NewBlock("entry")
	return &Builder{F: f, Cur: b}
}

// Block creates a new block without switching to it.
func (b *Builder) Block(name string) *Block { return b.F.NewBlock(name) }

// SetBlock positions the builder at the given block.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

func (b *Builder) emit(in Instr) VReg {
	b.Cur.Instrs = append(b.Cur.Instrs, in)
	return in.Dst
}

// Const emits an integer/pointer constant.
func (b *Builder) Const(t Type, v int64) VReg {
	d := b.F.NewVReg(t)
	b.emit(Instr{Op: Const, Type: t, Dst: d, Imm: v, A: NoReg, B: NoReg, C: NoReg, Mem: noMem()})
	return d
}

// FConst emits a floating-point constant.
func (b *Builder) FConst(t Type, v float64) VReg {
	d := b.F.NewVReg(t)
	b.emit(Instr{Op: FConst, Type: t, Dst: d, FImm: v, A: NoReg, B: NoReg, C: NoReg, Mem: noMem()})
	return d
}

// Bin emits a two-operand arithmetic instruction.
func (b *Builder) Bin(op Op, t Type, x, y VReg) VReg {
	d := b.F.NewVReg(t)
	b.emit(Instr{Op: op, Type: t, Dst: d, A: x, B: y, C: NoReg, Mem: noMem()})
	return d
}

// Shift emits an immediate-count shift.
func (b *Builder) Shift(op Op, t Type, x VReg, count int64) VReg {
	d := b.F.NewVReg(t)
	b.emit(Instr{Op: op, Type: t, Dst: d, A: x, B: NoReg, C: NoReg, Imm: count, Mem: noMem()})
	return d
}

// Unary emits a one-operand instruction (Copy, Trunc, Ext, SIToFP, FPToSI).
func (b *Builder) Unary(op Op, t Type, x VReg) VReg {
	d := b.F.NewVReg(t)
	b.emit(Instr{Op: op, Type: t, Dst: d, A: x, B: NoReg, C: NoReg, Mem: noMem()})
	return d
}

// Load emits dst = mem[base + index*scale + disp] of the given type.
func (b *Builder) Load(t Type, base, index VReg, scale int32, disp int64) VReg {
	d := b.F.NewVReg(t)
	b.emit(Instr{Op: Load, Type: t, Dst: d, A: NoReg, B: NoReg, C: NoReg,
		Mem: MemRef{Base: base, Index: index, Scale: scale, Disp: disp}})
	return d
}

// LoadByte emits a byte load zero-extended into an I32 register.
func (b *Builder) LoadByte(base, index VReg, scale int32, disp int64) VReg {
	d := b.F.NewVReg(I32)
	b.emit(Instr{Op: Load, Type: I32, Dst: d, MemSize: 1, A: NoReg, B: NoReg, C: NoReg,
		Mem: MemRef{Base: base, Index: index, Scale: scale, Disp: disp}})
	return d
}

// Store emits mem[base + index*scale + disp] = v.
func (b *Builder) Store(t Type, v, base, index VReg, scale int32, disp int64) {
	b.emit(Instr{Op: Store, Type: t, Dst: NoReg, A: v, B: NoReg, C: NoReg,
		Mem: MemRef{Base: base, Index: index, Scale: scale, Disp: disp}})
}

// StoreByte emits a byte store of v's low 8 bits.
func (b *Builder) StoreByte(v, base, index VReg, scale int32, disp int64) {
	b.emit(Instr{Op: Store, Type: I32, Dst: NoReg, MemSize: 1, A: v, B: NoReg, C: NoReg,
		Mem: MemRef{Base: base, Index: index, Scale: scale, Disp: disp}})
}

// Cmp emits an integer comparison producing a 0/1 value.
func (b *Builder) Cmp(cc Cond, t Type, x, y VReg) VReg {
	d := b.F.NewVReg(I32)
	b.emit(Instr{Op: Cmp, Type: t, Dst: d, A: x, B: y, C: NoReg, CC: cc, Mem: noMem()})
	return d
}

// FCmp emits a floating-point comparison producing a 0/1 value.
func (b *Builder) FCmp(cc Cond, t Type, x, y VReg) VReg {
	d := b.F.NewVReg(I32)
	b.emit(Instr{Op: FCmp, Type: t, Dst: d, A: x, B: y, C: NoReg, CC: cc, Mem: noMem()})
	return d
}

// Select emits dst = cond != 0 ? x : y.
func (b *Builder) Select(t Type, cond, x, y VReg) VReg {
	d := b.F.NewVReg(t)
	b.emit(Instr{Op: Select, Type: t, Dst: d, A: x, B: y, C: cond, Mem: noMem()})
	return d
}

// Br ends the current block with an unconditional jump.
func (b *Builder) Br(target *Block) {
	b.emit(Instr{Op: Br, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Succs: [2]*Block{target, nil}, Mem: noMem()})
}

// CondBr ends the current block with a conditional branch. prob is the
// profile probability that the branch is taken (flows to taken).
func (b *Builder) CondBr(cond VReg, taken, fallthrough_ *Block, prob float64) {
	b.emit(Instr{Op: CondBr, Dst: NoReg, A: NoReg, B: NoReg, C: cond, Prob: prob,
		Succs: [2]*Block{taken, fallthrough_}, Mem: noMem()})
}

// Ret ends the current block returning v (NoReg for void).
func (b *Builder) Ret(v VReg) {
	b.emit(Instr{Op: Ret, Dst: NoReg, A: v, B: NoReg, C: NoReg, Mem: noMem()})
}

// Copy emits an explicit register copy into dst (dst must already exist).
// It is the only builder operation that redefines an existing register,
// which is how generators express loop-carried values in this non-SSA IR.
func (b *Builder) Copy(dst, src VReg) {
	b.emit(Instr{Op: Copy, Type: b.F.TypeOf(dst), Dst: dst, A: src, B: NoReg, C: NoReg, Mem: noMem()})
}

// Assign emits an arbitrary instruction redefining an existing register dst.
func (b *Builder) Assign(dst VReg, op Op, t Type, x, y VReg) {
	b.emit(Instr{Op: op, Type: t, Dst: dst, A: x, B: y, C: NoReg, Mem: noMem()})
}

// AssignImm redefines dst with dst = x op imm expressed via a Const-free
// immediate form where supported (shifts) — for Add with immediates the
// generator should materialize constants; this helper covers induction
// updates dst = x + imm via a Const in the current block.
func (b *Builder) AddImm(dst, x VReg, t Type, imm int64) {
	c := b.Const(t, imm)
	b.Assign(dst, Add, t, x, c)
}

func noMem() MemRef { return MemRef{Base: NoReg, Index: NoReg} }
