package ir

import "fmt"

// Verify checks structural invariants of the function: every block ends in
// exactly one terminator, CFG targets are blocks of this function, operand
// registers are allocated and used type-consistently, every used virtual
// register has at least one definition, and (for reachable blocks) at least
// one definition reaches each use along some CFG path. It returns the first
// violation found.
func (f *Func) Verify() error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	defined := make([]bool, f.nvregs)
	used := make([]bool, f.nvregs)
	var uses []VReg
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s/%s: empty block", f.Name, b.Name)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			last := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("%s/%s[%d]: terminator placement (%s)", f.Name, b.Name, i, in.Op)
			}
			if d := in.Def(); d != NoReg {
				if int(d) >= f.nvregs {
					return fmt.Errorf("%s/%s[%d]: def of unallocated %v", f.Name, b.Name, i, d)
				}
				defined[d] = true
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if int(u) >= f.nvregs {
					return fmt.Errorf("%s/%s[%d]: use of unallocated %v", f.Name, b.Name, i, u)
				}
				used[u] = true
			}
			switch in.Op {
			case Br:
				if !blockSet[in.Succs[0]] {
					return fmt.Errorf("%s/%s: br to foreign block", f.Name, b.Name)
				}
			case CondBr:
				if !blockSet[in.Succs[0]] || !blockSet[in.Succs[1]] {
					return fmt.Errorf("%s/%s: condbr to foreign block", f.Name, b.Name)
				}
				if in.C == NoReg {
					return fmt.Errorf("%s/%s: condbr without condition", f.Name, b.Name)
				}
				if in.Prob < 0 || in.Prob > 1 {
					return fmt.Errorf("%s/%s: condbr probability %v out of range", f.Name, b.Name, in.Prob)
				}
			case Load, Store:
				if in.Mem.Base == NoReg {
					return fmt.Errorf("%s/%s[%d]: memory access without base", f.Name, b.Name, i)
				}
			case Select:
				if in.C == NoReg {
					return fmt.Errorf("%s/%s[%d]: select without condition", f.Name, b.Name, i)
				}
			}
		}
	}
	for v := 0; v < f.nvregs; v++ {
		if used[v] && !defined[v] {
			return fmt.Errorf("%s: v%d used but never defined", f.Name, v)
		}
	}
	return f.verifyReachingDefs(uses)
}

// verifyReachingDefs rejects any use in a reachable block that no definition
// can reach along any CFG path. The global used/defined pass above only
// proves a definition exists *somewhere* in the function, so it accepts a
// use that appears before its only definition in f.Blocks order even when
// no path delivers the value (e.g. a use in the entry block whose sole
// definition sits in a successor). A union (may) fixpoint keeps legitimate
// partially-defined joins legal: a definition on any incoming path suffices,
// matching the interpreter's zero-initialized registers.
func (f *Func) verifyReachingDefs(uses []VReg) error {
	nb := len(f.Blocks)
	idx := make(map[*Block]int, nb)
	for i, b := range f.Blocks {
		idx[b] = i
	}
	words := (f.nvregs + 63) / 64
	gen := make([][]uint64, nb)  // defs within the block
	rin := make([][]uint64, nb)  // defs reaching block entry (union over preds)
	for i, b := range f.Blocks {
		gen[i] = make([]uint64, words)
		rin[i] = make([]uint64, words)
		for j := range b.Instrs {
			if d := b.Instrs[j].Def(); d != NoReg {
				gen[i][d/64] |= 1 << (d % 64)
			}
		}
	}
	reachable := make([]bool, nb)
	reachable[idx[f.Entry]] = true
	stack := []*Block{f.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if j := idx[s]; !reachable[j] {
				reachable[j] = true
				stack = append(stack, s)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i, b := range f.Blocks {
			if !reachable[i] {
				continue
			}
			for _, s := range b.Succs() {
				j := idx[s]
				for w := 0; w < words; w++ {
					out := rin[i][w] | gen[i][w]
					if out&^rin[j][w] != 0 {
						rin[j][w] |= out
						changed = true
					}
				}
			}
		}
	}
	for i, b := range f.Blocks {
		if !reachable[i] {
			continue
		}
		have := append([]uint64(nil), rin[i]...)
		for j := range b.Instrs {
			in := &b.Instrs[j]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if have[u/64]&(1<<(u%64)) == 0 {
					return fmt.Errorf("%s/%s[%d]: %v used but no definition reaches it", f.Name, b.Name, j, u)
				}
			}
			if d := in.Def(); d != NoReg {
				have[d/64] |= 1 << (d % 64)
			}
		}
	}
	return nil
}
