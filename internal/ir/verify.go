package ir

import "fmt"

// Verify checks structural invariants of the function: every block ends in
// exactly one terminator, CFG targets are blocks of this function, operand
// registers are allocated and used type-consistently, and every used virtual
// register has at least one definition. It returns the first violation found.
func (f *Func) Verify() error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	defined := make([]bool, f.nvregs)
	used := make([]bool, f.nvregs)
	var uses []VReg
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s/%s: empty block", f.Name, b.Name)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			last := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("%s/%s[%d]: terminator placement (%s)", f.Name, b.Name, i, in.Op)
			}
			if d := in.Def(); d != NoReg {
				if int(d) >= f.nvregs {
					return fmt.Errorf("%s/%s[%d]: def of unallocated %v", f.Name, b.Name, i, d)
				}
				defined[d] = true
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if int(u) >= f.nvregs {
					return fmt.Errorf("%s/%s[%d]: use of unallocated %v", f.Name, b.Name, i, u)
				}
				used[u] = true
			}
			switch in.Op {
			case Br:
				if !blockSet[in.Succs[0]] {
					return fmt.Errorf("%s/%s: br to foreign block", f.Name, b.Name)
				}
			case CondBr:
				if !blockSet[in.Succs[0]] || !blockSet[in.Succs[1]] {
					return fmt.Errorf("%s/%s: condbr to foreign block", f.Name, b.Name)
				}
				if in.C == NoReg {
					return fmt.Errorf("%s/%s: condbr without condition", f.Name, b.Name)
				}
				if in.Prob < 0 || in.Prob > 1 {
					return fmt.Errorf("%s/%s: condbr probability %v out of range", f.Name, b.Name, in.Prob)
				}
			case Load, Store:
				if in.Mem.Base == NoReg {
					return fmt.Errorf("%s/%s[%d]: memory access without base", f.Name, b.Name, i)
				}
			case Select:
				if in.C == NoReg {
					return fmt.Errorf("%s/%s[%d]: select without condition", f.Name, b.Name, i)
				}
			}
		}
	}
	for v := 0; v < f.nvregs; v++ {
		if used[v] && !defined[v] {
			return fmt.Errorf("%s: v%d used but never defined", f.Name, v)
		}
	}
	return nil
}
