package ir

import (
	"fmt"
	"strings"
)

// String renders the function as readable text for debugging and golden
// tests.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s {\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s: ; b%d\n", b.Name, b.ID)
		for i := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(formatInstr(&b.Instrs[i]))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func formatMem(m MemRef) string {
	s := fmt.Sprintf("[%v", m.Base)
	if m.Index != NoReg {
		s += fmt.Sprintf(" + %v*%d", m.Index, m.Scale)
	}
	if m.Disp != 0 {
		s += fmt.Sprintf(" %+d", m.Disp)
	}
	return s + "]"
}

func formatInstr(in *Instr) string {
	switch in.Op {
	case Const:
		return fmt.Sprintf("%v = const.%v %d", in.Dst, in.Type, in.Imm)
	case FConst:
		return fmt.Sprintf("%v = fconst.%v %g", in.Dst, in.Type, in.FImm)
	case Copy:
		return fmt.Sprintf("%v = copy.%v %v", in.Dst, in.Type, in.A)
	case Shl, Shr, Sar:
		return fmt.Sprintf("%v = %v.%v %v, %d", in.Dst, in.Op, in.Type, in.A, in.Imm)
	case Load:
		sz := ""
		if in.MemSize == 1 {
			sz = ".b"
		}
		return fmt.Sprintf("%v = load.%v%s %s", in.Dst, in.Type, sz, formatMem(in.Mem))
	case Store:
		sz := ""
		if in.MemSize == 1 {
			sz = ".b"
		}
		return fmt.Sprintf("store.%v%s %v, %s", in.Type, sz, in.A, formatMem(in.Mem))
	case Cmp, FCmp:
		return fmt.Sprintf("%v = %v.%v.%v %v, %v", in.Dst, in.Op, in.CC, in.Type, in.A, in.B)
	case Select:
		return fmt.Sprintf("%v = select.%v %v ? %v : %v", in.Dst, in.Type, in.C, in.A, in.B)
	case Br:
		return fmt.Sprintf("br %s", in.Succs[0].Name)
	case CondBr:
		return fmt.Sprintf("condbr %v -> %s (p=%.2f) else %s", in.C, in.Succs[0].Name, in.Prob, in.Succs[1].Name)
	case Ret:
		return fmt.Sprintf("ret %v", in.A)
	case Nop:
		return "nop"
	default:
		return fmt.Sprintf("%v = %v.%v %v, %v", in.Dst, in.Op, in.Type, in.A, in.B)
	}
}
