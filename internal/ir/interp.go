package ir

import (
	"fmt"
	"math"

	"compisa/internal/mem"
)

// InterpResult reports the outcome of a reference interpretation.
type InterpResult struct {
	// Ret is the value returned by the region (the workload checksum).
	Ret uint64
	// Steps is the number of IR instructions executed.
	Steps int64
	// Loads, Stores, Branches, Taken count dynamic events.
	Loads, Stores, Branches, Taken int64
}

// Interp executes the function against the given memory image with the given
// pointer size (4 or 8 bytes) and returns the region's result. It is the
// reference semantics the compiled machine code must reproduce exactly; the
// differential tests in internal/compiler rely on it.
func Interp(f *Func, m *mem.Memory, ptrBytes int, maxSteps int64) (InterpResult, error) {
	var res InterpResult
	regs := make([][2]uint64, f.nvregs)
	ptrMask := uint64(math.MaxUint64)
	if ptrBytes == 4 {
		ptrMask = math.MaxUint32
	}

	width := func(t Type) int {
		switch t {
		case I32, F32:
			return 4
		case Ptr:
			return ptrBytes
		case V4F32, V4I32:
			return 16
		default:
			return 8
		}
	}
	// get returns the scalar value of a register, truncated to its type.
	get := func(v VReg) uint64 {
		val := regs[v][0]
		switch f.TypeOf(v) {
		case I32, F32:
			return val & math.MaxUint32
		case Ptr:
			return val & ptrMask
		}
		return val
	}
	sext := func(v uint64, t Type) int64 {
		if t == I32 || (t == Ptr && ptrBytes == 4) {
			return int64(int32(uint32(v)))
		}
		return int64(v)
	}
	ea := func(mr MemRef) uint64 {
		a := get(mr.Base)
		if mr.Index != NoReg {
			a += get(mr.Index) * uint64(mr.Scale)
		}
		return (a + uint64(mr.Disp)) & ptrMask
	}

	b := f.Entry
	idx := 0
	for {
		if res.Steps >= maxSteps {
			return res, fmt.Errorf("ir: %s exceeded %d steps", f.Name, maxSteps)
		}
		if idx >= len(b.Instrs) {
			return res, fmt.Errorf("ir: %s/%s fell off block end", f.Name, b.Name)
		}
		in := &b.Instrs[idx]
		res.Steps++
		idx++
		switch in.Op {
		case Nop:
		case Const:
			regs[in.Dst][0] = uint64(in.Imm)
		case FConst:
			if in.Type == F32 {
				regs[in.Dst][0] = uint64(math.Float32bits(float32(in.FImm)))
			} else {
				regs[in.Dst][0] = math.Float64bits(in.FImm)
			}
		case Copy:
			regs[in.Dst] = regs[in.A]
		case Add, Sub, Mul, And, Or, Xor:
			a, c := get(in.A), get(in.B)
			var r uint64
			switch in.Op {
			case Add:
				r = a + c
			case Sub:
				r = a - c
			case Mul:
				r = a * c
			case And:
				r = a & c
			case Or:
				r = a | c
			case Xor:
				r = a ^ c
			}
			if in.Type.IsVector() {
				// lane-wise 32-bit integer ops for V4I32
				var lanes [4]uint32
				for l := 0; l < 4; l++ {
					al := lane32(regs[in.A], l)
					bl := lane32(regs[in.B], l)
					switch in.Op {
					case Add:
						lanes[l] = al + bl
					case Sub:
						lanes[l] = al - bl
					case Mul:
						lanes[l] = al * bl
					case And:
						lanes[l] = al & bl
					case Or:
						lanes[l] = al | bl
					case Xor:
						lanes[l] = al ^ bl
					}
				}
				regs[in.Dst] = pack32(lanes)
			} else {
				regs[in.Dst][0] = r
			}
		case Shl:
			regs[in.Dst][0] = get(in.A) << uint(in.Imm)
		case Shr:
			regs[in.Dst][0] = get(in.A) >> uint(in.Imm)
		case Sar:
			regs[in.Dst][0] = uint64(sext(get(in.A), f.TypeOf(in.A)) >> uint(in.Imm))
		case FAdd, FSub, FMul, FDiv:
			regs[in.Dst] = fpArith(in.Op, in.Type, regs[in.A], regs[in.B])
		case SIToFP:
			s := sext(get(in.A), f.TypeOf(in.A))
			if in.Type == F32 {
				regs[in.Dst][0] = uint64(math.Float32bits(float32(s)))
			} else {
				regs[in.Dst][0] = math.Float64bits(float64(s))
			}
		case FPToSI:
			var fv float64
			if f.TypeOf(in.A) == F32 {
				fv = float64(math.Float32frombits(uint32(regs[in.A][0])))
			} else {
				fv = math.Float64frombits(regs[in.A][0])
			}
			regs[in.Dst][0] = uint64(int64(fv))
		case Splat:
			var lanes [4]uint32
			var bitsv uint32
			if f.TypeOf(in.A) == F32 {
				bitsv = uint32(regs[in.A][0])
			} else {
				bitsv = uint32(get(in.A))
			}
			for l := range lanes {
				lanes[l] = bitsv
			}
			regs[in.Dst] = pack32(lanes)
		case VReduce:
			var s float32
			for l := 0; l < 4; l++ {
				s += math.Float32frombits(lane32(regs[in.A], l))
			}
			regs[in.Dst][0] = uint64(math.Float32bits(s))
		case Trunc:
			regs[in.Dst][0] = get(in.A) & math.MaxUint32
		case Ext:
			regs[in.Dst][0] = uint64(int64(int32(uint32(get(in.A)))))
		case Load:
			res.Loads++
			a := ea(in.Mem)
			if in.Type.IsVector() {
				lo, hi := m.Read128(a)
				regs[in.Dst] = [2]uint64{lo, hi}
			} else {
				sz := width(in.Type)
				if in.MemSize != 0 {
					sz = int(in.MemSize)
				}
				regs[in.Dst][0] = m.Read(a, sz)
			}
		case Store:
			res.Stores++
			a := ea(in.Mem)
			if in.Type.IsVector() {
				m.Write128(a, regs[in.A][0], regs[in.A][1])
			} else {
				sz := width(in.Type)
				if in.MemSize != 0 {
					sz = int(in.MemSize)
				}
				m.Write(a, sz, get(in.A))
			}
		case Cmp:
			regs[in.Dst][0] = boolVal(intCompare(in.CC, get(in.A), get(in.B), in.Type, ptrBytes))
		case FCmp:
			var av, bv float64
			if in.Type == F32 {
				av = float64(math.Float32frombits(uint32(regs[in.A][0])))
				bv = float64(math.Float32frombits(uint32(regs[in.B][0])))
			} else {
				av = math.Float64frombits(regs[in.A][0])
				bv = math.Float64frombits(regs[in.B][0])
			}
			regs[in.Dst][0] = boolVal(floatCompare(in.CC, av, bv))
		case Select:
			if get(in.C) != 0 {
				regs[in.Dst] = regs[in.A]
			} else {
				regs[in.Dst] = regs[in.B]
			}
		case Br:
			b, idx = in.Succs[0], 0
		case CondBr:
			res.Branches++
			if get(in.C) != 0 {
				res.Taken++
				b, idx = in.Succs[0], 0
			} else {
				b, idx = in.Succs[1], 0
			}
		case Ret:
			if in.A != NoReg {
				res.Ret = get(in.A)
			}
			return res, nil
		default:
			return res, fmt.Errorf("ir: %s: unhandled op %v", f.Name, in.Op)
		}
	}
}

func lane32(r [2]uint64, l int) uint32 {
	w := r[l/2]
	if l%2 == 1 {
		w >>= 32
	}
	return uint32(w)
}

func pack32(lanes [4]uint32) [2]uint64 {
	return [2]uint64{
		uint64(lanes[0]) | uint64(lanes[1])<<32,
		uint64(lanes[2]) | uint64(lanes[3])<<32,
	}
}

func fpArith(op Op, t Type, a, b [2]uint64) [2]uint64 {
	f32op := func(x, y float32) float32 {
		switch op {
		case FAdd:
			return x + y
		case FSub:
			return x - y
		case FMul:
			return x * y
		default:
			return x / y
		}
	}
	switch t {
	case F32:
		r := f32op(math.Float32frombits(uint32(a[0])), math.Float32frombits(uint32(b[0])))
		return [2]uint64{uint64(math.Float32bits(r)), 0}
	case F64:
		x := math.Float64frombits(a[0])
		y := math.Float64frombits(b[0])
		var r float64
		switch op {
		case FAdd:
			r = x + y
		case FSub:
			r = x - y
		case FMul:
			r = x * y
		default:
			r = x / y
		}
		return [2]uint64{math.Float64bits(r), 0}
	case V4F32:
		var lanes [4]uint32
		for l := 0; l < 4; l++ {
			r := f32op(math.Float32frombits(lane32(a, l)), math.Float32frombits(lane32(b, l)))
			lanes[l] = math.Float32bits(r)
		}
		return pack32(lanes)
	}
	return [2]uint64{}
}

func intCompare(cc Cond, a, b uint64, t Type, ptrBytes int) bool {
	var sa, sb int64
	if t == I32 || (t == Ptr && ptrBytes == 4) {
		sa, sb = int64(int32(uint32(a))), int64(int32(uint32(b)))
	} else {
		sa, sb = int64(a), int64(b)
	}
	switch cc {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return sa < sb
	case LE:
		return sa <= sb
	case GT:
		return sa > sb
	case GE:
		return sa >= sb
	case ULT:
		return a < b
	case ULE:
		return a <= b
	case UGT:
		return a > b
	case UGE:
		return a >= b
	}
	return false
}

func floatCompare(cc Cond, a, b float64) bool {
	switch cc {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT, ULT:
		return a < b
	case LE, ULE:
		return a <= b
	case GT, UGT:
		return a > b
	case GE, UGE:
		return a >= b
	}
	return false
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
