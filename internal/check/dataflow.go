package check

// This file is the generic dataflow machinery: a dense bitset fact domain
// and an iterative gen/kill solver that runs forward or backward over the
// recovered CFG with union meet. The conformance rules instantiate it for
// reaching definitions of machine resources (use-before-def), spill-slot
// reaching stores (stack discipline), and backward liveness (cross-checked
// against the forward results in tests).

// BitSet is a fixed-universe bit vector.
type BitSet []uint64

// NewBitSet returns an empty set over a universe of n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds bit i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (i % 64) }

// Has reports whether bit i is present.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

// Clear removes bit i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (i % 64) }

// Copy returns an independent copy.
func (s BitSet) Copy() BitSet {
	t := make(BitSet, len(s))
	copy(t, s)
	return t
}

// UnionWith adds every bit of t to s and reports whether s changed.
func (s BitSet) UnionWith(t BitSet) bool {
	changed := false
	for i := range s {
		n := s[i] | t[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Members returns the set's elements in ascending order.
func (s BitSet) Members() []int {
	var out []int
	for w, word := range s {
		for b := 0; word != 0; b++ {
			if word&1 != 0 {
				out = append(out, w*64+b)
			}
			word >>= 1
		}
	}
	return out
}

// Direction selects the dataflow orientation.
type Direction uint8

const (
	// Forward propagates facts along CFG edges (reaching definitions).
	Forward Direction = iota
	// Backward propagates facts against CFG edges (liveness).
	Backward
)

// GenKill is one block's transfer function in gen/kill form: the block's
// output is gen ∪ (input − kill).
type GenKill struct {
	Gen, Kill BitSet
}

// Solve runs iterative union-meet dataflow to a fixed point and returns the
// per-block input and output facts. For Forward problems, in[b] is the meet
// over predecessors and out[b] = transfer(in[b]); for Backward problems the
// roles of in/out and preds/succs swap: out[b] is the meet over successors
// and in[b] = transfer(out[b]). The boundary fact (entry for forward, every
// exit block for backward) starts empty; unreachable blocks keep empty
// facts. With a monotone union meet over a finite domain the iteration
// always terminates.
func Solve(g *CFG, nbits int, dir Direction, tf []GenKill) (in, out []BitSet) {
	nb := len(g.Blocks)
	in = make([]BitSet, nb)
	out = make([]BitSet, nb)
	for i := 0; i < nb; i++ {
		in[i] = NewBitSet(nbits)
		out[i] = NewBitSet(nbits)
	}
	apply := func(dst, src BitSet, t GenKill) bool {
		tmp := src.Copy()
		for i := range tmp {
			tmp[i] = t.Gen[i] | (tmp[i] &^ t.Kill[i])
		}
		return dst.UnionWith(tmp)
	}
	changed := true
	for changed {
		changed = false
		for bi := 0; bi < nb; bi++ {
			if !g.Blocks[bi].Reachable {
				continue
			}
			if dir == Forward {
				for _, p := range g.Blocks[bi].Preds {
					in[bi].UnionWith(out[p])
				}
				if apply(out[bi], in[bi], tf[bi]) {
					changed = true
				}
			} else {
				for _, s := range g.Blocks[bi].Succs {
					out[bi].UnionWith(in[s])
				}
				if apply(in[bi], out[bi], tf[bi]) {
					changed = true
				}
			}
		}
	}
	return in, out
}

// reachingDefsIn computes, per block, the set of machine resources that
// have at least one write on some path from the entry to the block's first
// instruction (forward, union meet, no kills: a write reaches forever).
func (a *analysis) reachingDefsIn() []BitSet {
	if a.defsIn != nil {
		return a.defsIn
	}
	g := a.cfg
	tf := make([]GenKill, len(g.Blocks))
	var defs []int
	for bi := range g.Blocks {
		gen := NewBitSet(numRes)
		for i := g.Blocks[bi].Start; i < g.Blocks[bi].End; i++ {
			defs = instrDefs(&a.p.Instrs[i], defs[:0])
			for _, d := range defs {
				gen.Set(d)
			}
		}
		tf[bi] = GenKill{Gen: gen, Kill: NewBitSet(numRes)}
	}
	a.defsIn, _ = Solve(g, numRes, Forward, tf)
	return a.defsIn
}

// liveIn runs the backward liveness analysis over the recovered CFG: a
// resource is live-in when some path from the block's first instruction
// reaches a use with no intervening write. The check_test suite
// cross-checks entry liveness against the forward use-before-def results.
func (a *analysis) liveIn() []BitSet {
	if a.liveInSets != nil {
		return a.liveInSets
	}
	g := a.cfg
	tf := make([]GenKill, len(g.Blocks))
	var uses, defs []int
	for bi := range g.Blocks {
		gen := NewBitSet(numRes)  // used before any write in the block
		kill := NewBitSet(numRes) // written in the block
		for i := g.Blocks[bi].Start; i < g.Blocks[bi].End; i++ {
			in := &a.p.Instrs[i]
			uses = instrUses(in, uses[:0])
			for _, u := range uses {
				if !kill.Has(u) {
					gen.Set(u)
				}
			}
			defs = instrDefs(in, defs[:0])
			for _, d := range defs {
				kill.Set(d)
			}
		}
		tf[bi] = GenKill{Gen: gen, Kill: kill}
	}
	a.liveInSets, _ = Solve(g, numRes, Backward, tf)
	return a.liveInSets
}
