package check_test

import (
	"fmt"
	"strings"
	"testing"

	"compisa/internal/check"
	"compisa/internal/compiler"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

// TestCleanCompilerOutput is the acceptance criterion: the verifier reports
// zero findings for every (feature set, region) pair the compiler can
// produce. In -short mode it samples one region per benchmark.
func TestCleanCompilerOutput(t *testing.T) {
	regions := workload.Regions()
	if testing.Short() {
		var sample []workload.Region
		seen := map[string]bool{}
		for _, r := range regions {
			if !seen[r.Benchmark] {
				seen[r.Benchmark] = true
				sample = append(sample, r)
			}
		}
		regions = sample
	}
	for _, fs := range isa.Derive() {
		fs := fs
		t.Run(fs.ShortName(), func(t *testing.T) {
			t.Parallel()
			for _, r := range regions {
				f, _, err := r.Build(fs.Width)
				if err != nil {
					t.Fatalf("%s: build: %v", r.Name, err)
				}
				prog, err := compiler.Compile(f, fs, compiler.Options{})
				if err != nil {
					t.Fatalf("%s: compile: %v", r.Name, err)
				}
				prog.Name = r.Name
				rep := check.Analyze(prog)
				if len(rep.Findings) != 0 {
					t.Errorf("%s: %d finding(s) on clean output:\n%s", r.Name, len(rep.Findings), rep.String())
				}
			}
		})
	}
}

// TestCleanCompilerOutputAlpha64 extends the conformance matrix to the
// alpha64 target: for every derived feature set within the alpha64 encoding
// envelope, every region must compile to a program with zero findings —
// including the target-parameterized imm/struct rules and the fixed-length
// encode → one-step-decode → compare round trip.
func TestCleanCompilerOutputAlpha64(t *testing.T) {
	regions := workload.Regions()
	if testing.Short() {
		var sample []workload.Region
		seen := map[string]bool{}
		for _, r := range regions {
			if !seen[r.Benchmark] {
				seen[r.Benchmark] = true
				sample = append(sample, r)
			}
		}
		regions = sample
	}
	covered := 0
	for _, fs := range isa.Derive() {
		if isa.Alpha64Target.SupportsFS(fs) != nil {
			continue
		}
		covered++
		fs := fs
		t.Run(fs.ShortName(), func(t *testing.T) {
			t.Parallel()
			for _, r := range regions {
				f, _, err := r.Build(fs.Width)
				if err != nil {
					t.Fatalf("%s: build: %v", r.Name, err)
				}
				prog, err := compiler.Compile(f, fs, compiler.Options{Target: "alpha64"})
				if err != nil {
					t.Fatalf("%s: compile: %v", r.Name, err)
				}
				prog.Name = r.Name
				rep := check.Analyze(prog)
				if len(rep.Findings) != 0 {
					t.Errorf("%s: %d finding(s) on clean alpha64 output:\n%s", r.Name, len(rep.Findings), rep.String())
				}
			}
		})
	}
	if covered == 0 {
		t.Fatal("no derived feature set fits the alpha64 envelope — matrix not extended")
	}
}

// TestMutationDetectionAlpha64 runs the mutation sweep on an alpha64-encoded
// program: every applicable class must still be caught through the
// target-parameterized rules, and the encode and imm classes must apply.
func TestMutationDetectionAlpha64(t *testing.T) {
	fs := isa.X86izedAlpha
	bench, err := workload.ByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Regions[0]
	f, _, err := r.Build(fs.Width)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{Target: "alpha64"})
	if err != nil {
		t.Fatal(err)
	}
	prog.Name = r.Name
	for seed := uint64(1); seed <= 3; seed++ {
		applied := map[string]bool{}
		for _, d := range check.MutationSweep(prog, seed) {
			applied[d.Class] = d.Applied
			if d.Applied && !d.Caught {
				t.Errorf("seed %d: class %s not caught (%s); rules: %v", seed, d.Class, d.Desc, d.Rules)
			}
		}
		for _, class := range []string{check.RuleImm, check.RuleEncode, check.RuleDepth} {
			if !applied[class] {
				t.Errorf("seed %d: class %s should apply to an alpha64 program", seed, class)
			}
		}
	}
	if rep := check.Analyze(prog); len(rep.Findings) != 0 {
		t.Errorf("sweep mutated the original program:\n%s", rep.String())
	}
}

// TestMutationDetection asserts the verifier's detection power: every
// violation class the harness can seed into a program is caught by the rule
// that owns it. The microx86/32-bit/depth-8/partial feature set makes all
// nine classes applicable (given a region that spills, which hmmer's
// register pressure guarantees).
func TestMutationDetection(t *testing.T) {
	fs := isa.MustNew(isa.MicroX86, 32, 8, isa.PartialPredication)
	bench, err := workload.ByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Regions[0]
	f, _, err := r.Build(fs.Width)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog.Name = r.Name

	const seed = 1
	dets := check.MutationSweep(prog, seed)
	if len(dets) != len(check.MutationClasses()) {
		t.Fatalf("sweep covered %d classes, want %d", len(dets), len(check.MutationClasses()))
	}
	for _, d := range dets {
		if !d.Applied {
			t.Errorf("class %s should be applicable on %s/%s", d.Class, r.Name, fs.ShortName())
			continue
		}
		if !d.Caught {
			t.Errorf("class %s NOT caught (%s); findings by rule: %v", d.Class, d.Desc, d.Rules)
		}
	}

	// The original program must be untouched by the sweep.
	if rep := check.Analyze(prog); len(rep.Findings) != 0 {
		t.Errorf("sweep mutated the original program:\n%s", rep.String())
	}
}

// TestMutationDetectionAcrossFeatureSets runs the sweep for one region under
// every feature set: whatever classes apply must be caught, and several
// seeds shuffle the mutation sites.
func TestMutationDetectionAcrossFeatureSets(t *testing.T) {
	bench, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Regions[0]
	for _, fs := range isa.Derive() {
		fs := fs
		t.Run(fs.ShortName(), func(t *testing.T) {
			t.Parallel()
			f, _, err := r.Build(fs.Width)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := compiler.Compile(f, fs, compiler.Options{})
			if err != nil {
				t.Fatal(err)
			}
			prog.Name = r.Name
			for seed := uint64(1); seed <= 3; seed++ {
				for _, d := range check.MutationSweep(prog, seed) {
					if d.Applied && !d.Caught {
						t.Errorf("seed %d: class %s not caught (%s); rules: %v",
							seed, d.Class, d.Desc, d.Rules)
					}
				}
			}
		})
	}
}

// TestVerifyMatchesAnalyze pins the gate to the report: Verify errors
// exactly when Analyze has an error-severity finding.
func TestVerifyMatchesAnalyze(t *testing.T) {
	fs := isa.MustNew(isa.FullX86, 64, 64, isa.FullPredication)
	r := workload.Regions()[0]
	f, _, err := r.Build(fs.Width)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog.Name = r.Name
	if err := check.Verify(prog); err != nil {
		t.Fatalf("clean program rejected: %v", err)
	}
	mut := check.Clone(prog)
	if _, ok := check.Mutate(mut, check.RuleUDef, 1); !ok {
		t.Fatal("udef mutation should always apply")
	}
	err = check.Verify(mut)
	if err == nil {
		t.Fatal("mutant accepted")
	}
	if want := fmt.Sprintf("%s for %s", r.Name, fs.ShortName()); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q should identify %q", err, want)
	}
}
