// Package check is the machine-code conformance verifier: a static-analysis
// layer that proves a compiled region legal for the composite feature set it
// was compiled for.
//
// The design-space exploration rests on the claim that each composite
// feature set is a strict subset of the superset ISA — a region compiled for
// {microx86, 32-bit, depth-8, partial-pred} must never touch r8+, fold
// memory operands, or emit full predication, or its simulated cycles and
// energy are fiction. The compiler's own Program.Validate is part of the
// pipeline being verified; this package is the independent gate, in the
// spirit of translation validation: it recovers the control-flow graph from
// branch targets and layout PCs, runs forward/backward dataflow (reaching
// definitions and spill-slot reaching stores) over it, and applies a
// registry of per-feature-set conformance rules, including an
// encode→decode round trip through the real encoder and
// instruction-length decoder.
//
// Diagnostics are structured (Finding{Rule, PC, Instr, Severity, Detail})
// so tests and the compose-lint CLI can assert on exact rule hits. The
// seeded mutation harness in mutate.go flips legal programs into illegal
// ones and asserts each violation class is caught, measuring the verifier's
// detection power rather than just its false-negative rate on clean code.
package check

import (
	"fmt"
	"sort"
	"strings"

	"compisa/internal/code"
)

// Severity grades a finding.
type Severity uint8

const (
	// SevError marks a conformance violation: the program is illegal for
	// its feature set (or structurally broken) and its simulation results
	// cannot be trusted.
	SevError Severity = iota
	// SevWarn marks a suspicious construct that does not invalidate the
	// simulation (none of the built-in rules emit warnings on clean
	// compiler output; the level exists for downstream policy).
	SevWarn
)

func (s Severity) String() string {
	if s == SevWarn {
		return "warn"
	}
	return "error"
}

// Finding is one structured diagnostic.
type Finding struct {
	// Rule is the stable rule identifier (one of the Rule* constants).
	Rule string
	// PC is the byte address of the offending instruction (0 when the
	// finding is not tied to one instruction or the program has no layout).
	PC uint32
	// Index is the instruction index, -1 when program-level.
	Index int
	// Instr is the disassembled instruction for context.
	Instr string
	// Severity grades the finding.
	Severity Severity
	// Detail is the human-readable explanation.
	Detail string
}

func (f Finding) String() string {
	loc := ""
	if f.Index >= 0 {
		loc = fmt.Sprintf("%#x [%d] %s: ", f.PC, f.Index, f.Instr)
	}
	return fmt.Sprintf("%s(%s): %s%s", f.Rule, f.Severity, loc, f.Detail)
}

// Report is the result of analyzing one program.
type Report struct {
	Program  string
	FS       string
	Findings []Finding
}

// Errors counts SevError findings.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// ByRule groups finding counts by rule ID.
func (r *Report) ByRule() map[string]int {
	m := map[string]int{}
	for _, f := range r.Findings {
		m[f.Rule]++
	}
	return m
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s for %s: %d finding(s)\n", r.Program, r.FS, len(r.Findings))
	for _, f := range r.Findings {
		sb.WriteString("  ")
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Options selects which rules run.
type Options struct {
	// Rules restricts the analysis to the listed rule IDs; nil runs all
	// registered rules.
	Rules []string
}

// Analyze runs every registered conformance rule over the program and
// returns the structured report. The program must be laid out
// (encoding.Layout filled PC/Size); Analyze reports a structural finding
// and skips layout-dependent rules otherwise.
func Analyze(p *code.Program) *Report { return AnalyzeOpts(p, Options{}) }

// AnalyzeOpts is Analyze with rule selection.
func AnalyzeOpts(p *code.Program, opts Options) *Report {
	rep := &Report{Program: p.Name, FS: p.FS.ShortName()}
	a := newAnalysis(p)
	selected := map[string]bool{}
	for _, id := range opts.Rules {
		selected[id] = true
	}
	for _, r := range Rules() {
		if opts.Rules != nil && !selected[r.ID] {
			continue
		}
		if r.NeedsCFG && a.cfgErr != nil {
			// CFG recovery failed; the cfg rule itself reports why.
			continue
		}
		rep.Findings = append(rep.Findings, r.Check(a)...)
	}
	sortFindings(rep.Findings)
	return rep
}

// sortFindings orders findings by instruction index then rule ID, so
// reports are deterministic regardless of rule registration order.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Index != fs[j].Index {
			return fs[i].Index < fs[j].Index
		}
		return fs[i].Rule < fs[j].Rule
	})
}

// Verify analyzes the program and returns an error summarizing the first
// few violations when any SevError finding exists. It is the boolean gate
// the compiler and the evaluation pipeline wire in.
func Verify(p *code.Program) error { return Analyze(p).Err() }

// Err summarizes the report's error-severity findings as a single error,
// nil when there are none.
func (r *Report) Err() error {
	if r.Errors() == 0 {
		return nil
	}
	const maxShown = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "check: %s for %s: %d conformance violation(s)", r.Program, r.FS, r.Errors())
	shown := 0
	for _, f := range r.Findings {
		if f.Severity != SevError {
			continue
		}
		if shown == maxShown {
			sb.WriteString("; ...")
			break
		}
		sb.WriteString("; ")
		sb.WriteString(f.String())
		shown++
	}
	return fmt.Errorf("%s", sb.String())
}
