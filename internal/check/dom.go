package check

// This file is the control-flow half of the analysis engine: dominator
// trees (Cooper–Harvey–Kennedy iterative algorithm), dominance frontiers,
// and natural-loop detection with nesting depth. Everything operates on the
// reachable subgraph only — unreachable blocks (BB.Reachable == false) get
// Idom -1, depth 0, and never contribute edges, so dead code cannot perturb
// join-point facts (see the dead-block rule, which owns reporting them).

import "sort"

// DomTree is the dominator tree of a CFG's reachable subgraph.
type DomTree struct {
	// Idom maps a block to its immediate dominator. The entry block is its
	// own idom; unreachable blocks have Idom -1.
	Idom []int
	// Depth is the dominator-tree depth (entry = 0; unreachable = -1).
	Depth []int
	// Frontier is the dominance frontier of each block, ascending.
	Frontier [][]int

	// rpo lists reachable blocks in reverse postorder; rpoNum is the
	// inverse (-1 for unreachable blocks).
	rpo    []int
	rpoNum []int
}

// Dominates reports whether block a dominates block b (every block
// dominates itself). Unreachable blocks dominate nothing and are dominated
// by nothing.
func (d *DomTree) Dominates(a, b int) bool {
	if a < 0 || b < 0 || d.Idom[a] < 0 || d.Idom[b] < 0 {
		return false
	}
	for d.Depth[b] > d.Depth[a] {
		b = d.Idom[b]
	}
	return a == b
}

// postorder computes a postorder numbering of the reachable subgraph with
// an iterative DFS (explicit stack: no recursion, so kilo-block chains are
// fine).
func (g *CFG) postorder() []int {
	if len(g.Blocks) == 0 {
		return nil
	}
	type frame struct {
		b    int
		next int // next successor index to visit
	}
	seen := make([]bool, len(g.Blocks))
	order := make([]int, 0, len(g.Blocks))
	stack := []frame{{b: 0}}
	seen[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Blocks[f.b].Succs) {
			s := g.Blocks[f.b].Succs[f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Dominators builds the dominator tree with the Cooper–Harvey–Kennedy
// iterative algorithm: process blocks in reverse postorder, intersecting
// the idoms of already-processed predecessors, until a fixed point. On
// reducible graphs this converges in two passes; each intersection walks
// idom chains by finger comparison on postorder numbers.
func (g *CFG) Dominators() *DomTree {
	nb := len(g.Blocks)
	d := &DomTree{
		Idom:   make([]int, nb),
		Depth:  make([]int, nb),
		rpoNum: make([]int, nb),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.Depth[i] = -1
		d.rpoNum[i] = -1
	}
	if nb == 0 {
		d.Frontier = [][]int{}
		return d
	}
	post := g.postorder()
	poNum := make([]int, nb)
	for i := range poNum {
		poNum[i] = -1
	}
	for i, b := range post {
		poNum[b] = i
	}
	d.rpo = make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		d.rpoNum[post[i]] = len(d.rpo)
		d.rpo = append(d.rpo, post[i])
	}

	intersect := func(idom []int, a, b int) int {
		for a != b {
			for poNum[a] < poNum[b] {
				a = idom[a]
			}
			for poNum[b] < poNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	d.Idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if d.Idom[p] < 0 {
					continue // unprocessed or unreachable predecessor
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(d.Idom, newIdom, p)
				}
			}
			if newIdom >= 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}

	// Depths, in reverse postorder so parents are ready first.
	d.Depth[0] = 0
	for _, b := range d.rpo {
		if b != 0 && d.Idom[b] >= 0 {
			d.Depth[b] = d.Depth[d.Idom[b]] + 1
		}
	}

	// Dominance frontiers (the standard CHK formulation: for each join
	// block, walk each predecessor's idom chain up to the join's idom).
	fr := make([]map[int]struct{}, nb)
	for _, b := range d.rpo {
		if len(g.Blocks[b].Preds) < 2 {
			continue
		}
		for _, p := range g.Blocks[b].Preds {
			if d.Idom[p] < 0 {
				continue
			}
			for runner := p; runner != d.Idom[b]; runner = d.Idom[runner] {
				if fr[runner] == nil {
					fr[runner] = map[int]struct{}{}
				}
				fr[runner][b] = struct{}{}
			}
		}
	}
	d.Frontier = make([][]int, nb)
	for b, m := range fr {
		if len(m) == 0 {
			continue
		}
		for x := range m {
			d.Frontier[b] = append(d.Frontier[b], x)
		}
		sort.Ints(d.Frontier[b])
	}
	return d
}

// Loop is one natural loop (back edges merged per header).
type Loop struct {
	// Header is the loop-header block index.
	Header int
	// Blocks lists the loop's member blocks, ascending (includes Header).
	Blocks []int
	// Latches lists the back-edge source blocks, ascending.
	Latches []int
	// Depth is the nesting depth: 1 for an outermost loop.
	Depth int
	// Parent indexes the innermost enclosing loop in LoopInfo.Loops, -1
	// when outermost.
	Parent int
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// LoopInfo is the natural-loop decomposition of a CFG.
type LoopInfo struct {
	// Loops is sorted by (nesting depth, header), so enclosing loops come
	// before the loops they contain.
	Loops []Loop
	// Depth is the per-block loop-nesting depth (0 = not in any loop).
	Depth []int
	// LoopOf indexes the innermost loop containing each block (-1 = none).
	LoopOf []int
	// Irreducible reports that some retreating edge is not a back edge:
	// the graph has a multi-entry cycle that natural-loop analysis cannot
	// name. IrreducibleEdges lists the offending (tail, head) edges.
	Irreducible      bool
	IrreducibleEdges [][2]int
}

// Loops detects natural loops: a back edge t→h (h dominates t) defines the
// loop of all blocks that reach t without passing through h. Back edges
// sharing a header are merged into one loop. Retreating edges whose head
// does not dominate their tail mark the region irreducible and define no
// loop.
func (g *CFG) Loops(d *DomTree) *LoopInfo {
	nb := len(g.Blocks)
	li := &LoopInfo{Depth: make([]int, nb), LoopOf: make([]int, nb)}
	for i := range li.LoopOf {
		li.LoopOf[i] = -1
	}
	// Classify edges: a retreating edge goes against reverse postorder.
	backEdges := map[int][]int{} // header -> latches
	var headers []int
	for _, t := range d.rpo {
		for _, h := range g.Blocks[t].Succs {
			if d.rpoNum[h] < 0 || d.rpoNum[h] > d.rpoNum[t] {
				continue // forward/cross edge or unreachable head
			}
			// Retreating. A true back edge requires h to dominate t
			// (self-loops satisfy this trivially).
			if !d.Dominates(h, t) {
				li.Irreducible = true
				li.IrreducibleEdges = append(li.IrreducibleEdges, [2]int{t, h})
				continue
			}
			if _, ok := backEdges[h]; !ok {
				headers = append(headers, h)
			}
			backEdges[h] = append(backEdges[h], t)
		}
	}
	sort.Ints(headers)
	sort.Slice(li.IrreducibleEdges, func(i, j int) bool {
		a, b := li.IrreducibleEdges[i], li.IrreducibleEdges[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})

	// Collect each loop's body: reverse reachability from the latches,
	// stopping at the header.
	inLoop := make([]bool, nb)
	for _, h := range headers {
		for i := range inLoop {
			inLoop[i] = false
		}
		inLoop[h] = true
		stack := []int{}
		latches := backEdges[h]
		sort.Ints(latches)
		for _, t := range latches {
			if !inLoop[t] {
				inLoop[t] = true
				stack = append(stack, t)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Blocks[b].Preds {
				if d.Idom[p] < 0 || inLoop[p] {
					continue // unreachable preds never join a loop body
				}
				inLoop[p] = true
				stack = append(stack, p)
			}
		}
		l := Loop{Header: h, Latches: latches, Parent: -1}
		for b := 0; b < nb; b++ {
			if inLoop[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		li.Loops = append(li.Loops, l)
	}

	// Nesting: loop A encloses loop B when A contains B's header (and they
	// differ). Depth = number of enclosing loops + 1.
	for i := range li.Loops {
		for j := range li.Loops {
			if i == j {
				continue
			}
			if li.Loops[j].Contains(li.Loops[i].Header) {
				li.Loops[i].Depth++
			}
		}
		li.Loops[i].Depth++
	}
	// Order loops outermost-first so parent resolution and facts output
	// are deterministic.
	sort.Slice(li.Loops, func(i, j int) bool {
		if li.Loops[i].Depth != li.Loops[j].Depth {
			return li.Loops[i].Depth < li.Loops[j].Depth
		}
		return li.Loops[i].Header < li.Loops[j].Header
	})
	for i := range li.Loops {
		// Parent = the deepest loop (before i in the sorted order) that
		// contains this header.
		for j := i - 1; j >= 0; j-- {
			if li.Loops[j].Contains(li.Loops[i].Header) {
				li.Loops[i].Parent = j
				break
			}
		}
		for _, b := range li.Loops[i].Blocks {
			if li.Loops[i].Depth > li.Depth[b] {
				li.Depth[b] = li.Loops[i].Depth
				li.LoopOf[b] = i
			}
		}
	}
	return li
}
