package check

import "compisa/internal/code"

// The dataflow analyses track abstract machine resources: the 64 integer
// registers, the 16 FP/SIMD registers, and the condition flags, each mapped
// to one bit position. The use/def model below is derived independently
// from the executor's semantics (internal/cpu.step), NOT from the
// code.Instr helper methods — the verifier cross-checks the representation
// rather than trusting it.
const (
	resIntBase = 0  // r0..r63
	resFPBase  = 64 // x0..x15
	resFlags   = 80
	numRes     = 81
)

func resInt(r code.Reg) int { return resIntBase + int(r) }
func resFP(r code.Reg) int  { return resFPBase + int(r) }

// resName renders a resource index for diagnostics.
func resName(res int) string {
	switch {
	case res == resFlags:
		return "flags"
	case res >= resFPBase:
		return "x" + itoa(res-resFPBase)
	default:
		return "r" + itoa(res-resIntBase)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// fpSrcOps lists ops whose Src1/Src2 registers live in the FP file.
func fpSrc(op code.Op) bool {
	switch op {
	case code.FMOV, code.FST, code.VST, code.FADD, code.FSUB, code.FMUL,
		code.FDIV, code.FCMP, code.CVTFI,
		code.VADDF, code.VSUBF, code.VMULF, code.VADDI, code.VSUBI,
		code.VMULI, code.VSPLAT, code.VRSUM:
		return true
	}
	return false
}

// instrUses appends the resources the instruction reads (per the executor's
// semantics) to dst. Address registers, the predicate register, flag reads,
// and CMOV's read of its old destination are all included. Uses of a
// predicated instruction are counted unconditionally: the analyses are
// may-analyses and the predicate may hold.
func instrUses(in *code.Instr, dst []int) []int {
	addInt := func(r code.Reg) {
		if r != code.NoReg {
			dst = append(dst, resInt(r))
		}
	}
	addFP := func(r code.Reg) {
		if r != code.NoReg {
			dst = append(dst, resFP(r))
		}
	}
	addSrc := func(r code.Reg) {
		if fpSrc(in.Op) {
			addFP(r)
		} else {
			addInt(r)
		}
	}
	if in.HasMem {
		addInt(in.Mem.Base)
		addInt(in.Mem.Index)
	}
	if in.Pred != code.NoReg {
		addInt(in.Pred)
	}
	switch in.Op {
	case code.NOP, code.JMP:
	case code.MOV:
		if !in.HasImm {
			addInt(in.Src1)
		}
	case code.MOVSX, code.SHL, code.SHR, code.SAR:
		addInt(in.Src1)
	case code.LEA, code.LD, code.FLD, code.VLD:
		// Only the address registers, added above.
	case code.ST:
		addInt(in.Src1)
	case code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
		code.CMP, code.TEST:
		addInt(in.Src1)
		if !in.HasImm && !in.MemSrcALU() {
			addInt(in.Src2)
		}
	case code.ADC, code.SBB:
		addInt(in.Src1)
		if !in.HasImm && !in.MemSrcALU() {
			addInt(in.Src2)
		}
		dst = append(dst, resFlags)
	case code.SETCC:
		dst = append(dst, resFlags)
	case code.CMOVCC:
		dst = append(dst, resFlags)
		// CMOV keeps the old destination when the condition fails: the
		// destination is a read-modify-write operand.
		addInt(in.Dst)
		if !in.HasMem {
			addInt(in.Src1)
		}
	case code.JCC:
		dst = append(dst, resFlags)
	case code.RET:
		addInt(in.Src1)
	case code.FMOV, code.FST, code.VST, code.VSPLAT, code.VRSUM, code.CVTFI:
		addSrc(in.Src1)
	case code.FADD, code.FSUB, code.FMUL, code.FDIV,
		code.VADDF, code.VSUBF, code.VMULF,
		code.VADDI, code.VSUBI, code.VMULI:
		addSrc(in.Src1)
		if !in.MemSrcALU() {
			addSrc(in.Src2)
		}
	case code.FCMP:
		addSrc(in.Src1)
		addSrc(in.Src2)
	case code.CVTIF:
		addInt(in.Src1)
	}
	return dst
}

// instrDefs appends the resources the instruction writes to dst. A
// predicated write still counts as a definition (the may-analyses ask
// whether any write can reach, not whether one must).
func instrDefs(in *code.Instr, dst []int) []int {
	switch in.Op {
	case code.MOV, code.MOVSX, code.LEA, code.LD, code.SETCC, code.CMOVCC, code.CVTFI:
		if in.Dst != code.NoReg {
			dst = append(dst, resInt(in.Dst))
		}
	case code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
		code.SHL, code.SHR, code.SAR, code.ADC, code.SBB:
		if in.Dst != code.NoReg {
			dst = append(dst, resInt(in.Dst))
		}
		dst = append(dst, resFlags)
	case code.CMP, code.TEST, code.FCMP:
		dst = append(dst, resFlags)
	case code.FMOV, code.FLD, code.FADD, code.FSUB, code.FMUL, code.FDIV,
		code.CVTIF, code.VLD, code.VADDF, code.VSUBF, code.VMULF,
		code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
		if in.Dst != code.NoReg {
			dst = append(dst, resFP(in.Dst))
		}
	}
	return dst
}
