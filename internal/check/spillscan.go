package check

// Redundant spill/reload detection, shared between the verifier's spillpair
// rule and the compiler's post-emission peephole. Keeping one scanner on
// both sides makes the contract structural: the compiler deletes exactly
// the reloads the verifier would flag, so clean output stays finding-free
// and any reload the rule reports was provably not the compiler's doing.
//
// A reload `ld R <- slot` is redundant when an earlier store `st R -> slot`
// in the same straight-line window stored R, nothing touched R or the slot
// in between, and reloading cannot change R's value. The last condition is
// where width semantics bite: integer loads zero-extend, so a 4-byte
// store/reload pair only preserves a register that provably fits in 32
// bits, and a scalar FP reload clears the upper vector lane, which is only
// a no-op if that lane was already zero. The scanner tracks both properties
// per register from the defs it can see inside the window and stays silent
// whenever it cannot prove the reload is value-preserving.

import "compisa/internal/code"

// ElideRedundantReloads deletes every redundant spill reload (as defined by
// RedundantSpillReloads, over the same recovered CFG the spillpair rule
// scans) from p's instruction stream, retargeting branches. The caller is
// responsible for (re)running layout afterwards. Returns the number of
// instructions removed.
func ElideRedundantReloads(p *code.Program) int {
	g := recoverCFG(p)
	isDrop := make([]bool, len(p.Instrs))
	total := 0
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		for _, k := range RedundantSpillReloads(p.Instrs[b.Start:b.End]) {
			isDrop[b.Start+k] = true
			total++
		}
	}
	if total == 0 {
		return 0
	}
	// A dropped reload always follows a store in its own block, so it is
	// never a block leader and no branch can target it: every Target maps
	// cleanly through the index shift.
	newIdx := make([]int32, len(p.Instrs))
	n := int32(0)
	for i := range p.Instrs {
		newIdx[i] = n
		if !isDrop[i] {
			n++
		}
	}
	out := p.Instrs[:0]
	for i := range p.Instrs {
		if isDrop[i] {
			continue
		}
		in := p.Instrs[i]
		if in.Op == code.JMP || in.Op == code.JCC {
			in.Target = newIdx[in.Target]
		}
		out = append(out, in)
	}
	p.Instrs = out
	return total
}

// spillReloadOf maps each spill-store opcode to its matching reload.
var spillReloadOf = map[code.Op]code.Op{
	code.ST:  code.LD,
	code.FST: code.FLD,
	code.VST: code.VLD,
}

// intWidthBound is the static upper bound, in bits, of an integer register
// after an unpredicated def by in (the executor's writeInt masks 1- and
// 4-byte writes; loads zero-extend by access size).
func intWidthBound(in *code.Instr) int {
	szBits := func(sz uint8) int {
		switch sz {
		case 1:
			return 8
		case 4:
			return 32
		}
		return 64
	}
	switch in.Op {
	case code.LD:
		switch in.Sz {
		case 1:
			return 8
		case 2:
			return 16
		case 4:
			return 32
		}
		return 64
	case code.SETCC:
		return 1
	case code.MOVSX:
		return 64
	case code.CVTFI:
		return 32
	default:
		return szBits(in.Sz)
	}
}

// intDefReg returns the integer register in defines, or NoReg.
func intDefReg(in *code.Instr) code.Reg {
	switch in.Op {
	case code.MOV, code.MOVSX, code.LEA, code.LD, code.ADD, code.ADC,
		code.SUB, code.SBB, code.IMUL, code.AND, code.OR, code.XOR,
		code.SHL, code.SHR, code.SAR, code.SETCC, code.CMOVCC, code.CVTFI:
		return in.Dst
	}
	return code.NoReg
}

// fpDefReg returns the FP register in defines, or NoReg.
func fpDefReg(in *code.Instr) code.Reg {
	switch in.Op {
	case code.FMOV, code.FADD, code.FSUB, code.FMUL, code.FDIV, code.CVTIF,
		code.FLD, code.VLD, code.VADDF, code.VSUBF, code.VMULF, code.VADDI,
		code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
		return in.Dst
	}
	return code.NoReg
}

// fpLane1Zero reports whether an unpredicated def by in leaves the upper
// vector lane zero (scalar FP results are written as {value, 0}); FMOV
// copies both lanes, so it propagates the source's property.
func fpLane1Zero(in *code.Instr, srcZero, srcKnown bool) (zero, known bool) {
	switch in.Op {
	case code.FLD, code.FADD, code.FSUB, code.FMUL, code.FDIV, code.CVTIF, code.VRSUM:
		return true, true
	case code.FMOV:
		return srcZero, srcKnown
	}
	return false, true // vector ops fill both lanes
}

// RedundantSpillReloads scans one straight-line window (a basic block) and
// returns the indices, relative to win, of reloads that provably reproduce
// the value already in their destination register.
func RedundantSpillReloads(win []code.Instr) []int {
	type rec struct {
		reg code.Reg
		op  code.Op
		sz  uint8
	}
	var out []int
	recs := map[int32]rec{}
	// Width facts for integer regs / lane facts for FP regs, known only
	// once a def is seen inside the window.
	type widthFact struct {
		known bool
		bits  int // int regs: value < 2^bits
		lane0 bool // FP regs: upper lane is zero
	}
	var intW, fpW [256]widthFact

	dropReg := func(r code.Reg) {
		for a, rc := range recs {
			if rc.reg == r {
				delete(recs, a)
			}
		}
	}

	for i := range win {
		in := &win[i]
		addr, isSpillRef := spillSlotRef(in)

		// Redundant-reload match first: a hit changes nothing (that is
		// the point), so state carries through untouched.
		if isSpillRef && isSpillLoad(in.Op) && !in.Predicated() {
			if rc, ok := recs[addr]; ok && spillReloadOf[rc.op] == in.Op &&
				rc.sz == in.Sz && rc.reg == in.Dst {
				out = append(out, i)
				continue
			}
		}

		switch {
		case isSpillRef && isSpillStore(in.Op):
			if in.Predicated() {
				delete(recs, addr) // slot may change underneath the pair
				break
			}
			ok := false
			switch in.Op {
			case code.ST:
				w := intW[in.Src1]
				ok = in.Sz == 8 || (w.known && w.bits <= 8*int(in.Sz))
			case code.FST:
				w := fpW[in.Src1]
				ok = w.known && w.lane0
			case code.VST:
				ok = true // 16-byte pairs move the whole register
			}
			if ok {
				recs[addr] = rec{reg: in.Src1, op: in.Op, sz: in.Sz}
			} else {
				delete(recs, addr)
			}
		case isSpillStore(in.Op) && in.HasMem:
			// A store outside the spill area could alias any slot.
			for a := range recs {
				delete(recs, a)
			}
		}

		if r := intDefReg(in); r != code.NoReg {
			dropReg(r)
			b := intWidthBound(in)
			if in.Op == code.MOV && !in.Predicated() && !in.HasImm && intW[in.Src1].known && intW[in.Src1].bits < b {
				b = intW[in.Src1].bits
			}
			merges := in.Predicated() || in.Op == code.CMOVCC
			if merges {
				if intW[r].known && intW[r].bits > b {
					b = intW[r].bits
				}
				intW[r] = widthFact{known: intW[r].known, bits: b}
			} else {
				intW[r] = widthFact{known: true, bits: b}
			}
		}
		if r := fpDefReg(in); r != code.NoReg {
			dropReg(r)
			src := fpW[in.Src1]
			zero, known := fpLane1Zero(in, src.lane0, src.known)
			if in.Predicated() {
				known = known && fpW[r].known
				zero = zero && fpW[r].lane0
			}
			fpW[r] = widthFact{known: known, lane0: zero}
		}
	}
	return out
}
