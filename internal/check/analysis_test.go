package check

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"compisa/internal/code"
)

// Adversarial CFG shapes for the analysis engine: irreducible two-entry
// cycles, self-loops, empty programs, RET-shadowed blocks, and a kilo-block
// chain as a linearity canary.

func TestDominatorsDiamond(t *testing.T) {
	g := recoverCFG(diamond(t))
	if len(g.Blocks) != 3 {
		t.Fatalf("diamond recovered %d blocks, want 3", len(g.Blocks))
	}
	d := g.Dominators()
	if d.Idom[0] != 0 || d.Idom[1] != 0 || d.Idom[2] != 0 {
		t.Errorf("idoms = %v, want entry dominating both arms and the join", d.Idom)
	}
	if d.Depth[0] != 0 || d.Depth[1] != 1 || d.Depth[2] != 1 {
		t.Errorf("dom depths = %v, want [0 1 1]", d.Depth)
	}
	// The taken arm's frontier is the join; the join has none.
	if len(d.Frontier[1]) != 1 || d.Frontier[1][0] != 2 {
		t.Errorf("frontier of arm = %v, want [2]", d.Frontier[1])
	}
	if len(d.Frontier[2]) != 0 {
		t.Errorf("frontier of join = %v, want empty", d.Frontier[2])
	}
	if !d.Dominates(0, 2) || d.Dominates(1, 2) || !d.Dominates(1, 1) {
		t.Error("Dominates: want entry ≫ join, arm not ≫ join, arm ≫ itself")
	}
	if li := g.Loops(d); len(li.Loops) != 0 || li.Irreducible {
		t.Errorf("diamond has no loops, got %+v", li)
	}
}

// twoEntryCycle builds the canonical irreducible region: the entry branches
// into the middle of a cycle A⇄B, so neither cycle block dominates the
// other and no natural loop exists.
func twoEntryCycle(t *testing.T) *code.Program {
	return build(t, permissive,
		ldData(1),
		ins(code.CMP, func(in *code.Instr) { in.Src1 = 1; in.HasImm = true; in.Imm = 0 }),
		ins(code.JCC, func(in *code.Instr) { in.CC = code.CCEQ; in.Target = 5 }),
		// A:
		ins(code.ADD, func(in *code.Instr) { in.Dst = 2; in.Src1 = 2; in.HasImm = true; in.Imm = 1 }),
		ins(code.JMP, func(in *code.Instr) { in.Target = 5 }),
		// B:
		ins(code.ADD, func(in *code.Instr) { in.Dst = 3; in.Src1 = 3; in.HasImm = true; in.Imm = 1 }),
		ins(code.CMP, func(in *code.Instr) { in.Src1 = 1; in.HasImm = true; in.Imm = 1 }),
		ins(code.JCC, func(in *code.Instr) { in.CC = code.CCNE; in.Target = 3 }),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }),
	)
}

func TestIrreducibleTwoEntryCycle(t *testing.T) {
	p := twoEntryCycle(t)
	g := recoverCFG(p)
	d := g.Dominators()
	li := g.Loops(d)
	if !li.Irreducible {
		t.Fatal("two-entry cycle not flagged irreducible")
	}
	if len(li.Loops) != 0 {
		t.Errorf("irreducible cycle produced %d natural loops, want 0", len(li.Loops))
	}
	if len(li.IrreducibleEdges) == 0 {
		t.Fatal("no irreducible edges recorded")
	}
	for _, e := range li.IrreducibleEdges {
		if d.Dominates(e[1], e[0]) {
			t.Errorf("edge %v recorded irreducible but head dominates tail", e)
		}
	}
	f, err := ComputeFacts(p)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Irreducible || len(f.Loops) != 0 {
		t.Errorf("Facts: Irreducible=%v Loops=%d, want true/0", f.Irreducible, len(f.Loops))
	}
}

// selfLoop is the canonical counted loop collapsed to one block:
// r1 = 0; L: r1++; CMP r1,$10; JL L; RET — exactly 10 trips.
func selfLoop(t *testing.T) *code.Program {
	return build(t, permissive,
		movImm(1, 0),
		ins(code.ADD, func(in *code.Instr) { in.Dst = 1; in.Src1 = 1; in.HasImm = true; in.Imm = 1 }),
		ins(code.CMP, func(in *code.Instr) { in.Src1 = 1; in.HasImm = true; in.Imm = 10 }),
		ins(code.JCC, func(in *code.Instr) { in.CC = code.CCLT; in.Target = 1 }),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }),
	)
}

func TestSelfLoopTripCount(t *testing.T) {
	p := selfLoop(t)
	g := recoverCFG(p)
	d := g.Dominators()
	li := g.Loops(d)
	if li.Irreducible {
		t.Fatal("self-loop flagged irreducible")
	}
	if len(li.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if len(l.Blocks) != 1 || l.Header != l.Latches[0] || l.Depth != 1 {
		t.Errorf("self-loop shape = %+v, want single block == header == latch at depth 1", l)
	}
	f, err := ComputeFacts(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Loops) != 1 || f.Loops[0].TripCount != 10 {
		t.Fatalf("Facts loops = %+v, want one loop with TripCount 10", f.Loops)
	}
	if rep := Analyze(p); len(rep.Findings) != 0 {
		t.Errorf("clean counted loop produced findings: %v", rep.Findings)
	}
}

func TestEmptyProgram(t *testing.T) {
	p := &code.Program{Name: "empty", FS: permissive}
	if _, err := ComputeFacts(p); err == nil {
		t.Error("ComputeFacts on empty program: want error, got nil")
	}
	rep := Analyze(p) // must classify, not panic
	if len(rep.Findings) == 0 {
		t.Error("Analyze on empty program: want structural finding")
	}
}

// TestRETShadowedBlock: code shadowed by an unconditional RET is reported
// by the dead-block rule and ONLY the dead-block rule — the shadowed
// block's illegal memory access must not leak through any value- or
// join-point analysis (it is pruned from their domains).
func TestRETShadowedBlock(t *testing.T) {
	p := build(t, permissive,
		ldData(1),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }),
		// Shadowed: an out-of-window load that memrange would reject.
		ins(code.LD, func(in *code.Instr) { in.Dst = 2; in.HasMem = true; in.Mem.Disp = 0x10 }),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 2 }),
	)
	rep := Analyze(p)
	if len(rep.Findings) == 0 {
		t.Fatal("RET-shadowed block produced no findings, want deadblock")
	}
	for _, f := range rep.Findings {
		if f.Rule != RuleDeadBlock {
			t.Errorf("unexpected rule %q fired on shadowed code: %s", f.Rule, f.Detail)
		}
	}
	fx, err := ComputeFacts(p)
	if err != nil {
		t.Fatal(err)
	}
	shadowed := false
	for _, b := range fx.Blocks {
		if b.Start == 2 {
			shadowed = true
			if b.Reachable || b.Idom != -1 {
				t.Errorf("shadowed block facts = %+v, want unreachable with Idom -1", b)
			}
		}
	}
	if !shadowed {
		t.Error("no block starting at the shadowed instruction")
	}
}

// chain builds n-1 single-JMP blocks ending in RET: the linearity canary.
func chain(t *testing.T, n int) *code.Program {
	t.Helper()
	instrs := make([]code.Instr, 0, n)
	for i := 0; i < n-1; i++ {
		tgt := int32(i + 1)
		instrs = append(instrs, ins(code.JMP, func(in *code.Instr) { in.Target = tgt }))
	}
	instrs = append(instrs, ins(code.RET, nil))
	return build(t, permissive, instrs...)
}

func TestKiloBlockChain(t *testing.T) {
	const n = 1000
	start := time.Now()
	g := recoverCFG(chain(t, n))
	d := g.Dominators()
	li := g.Loops(d)
	elapsed := time.Since(start)
	if len(g.Blocks) != n {
		t.Fatalf("chain recovered %d blocks, want %d", len(g.Blocks), n)
	}
	for i := 1; i < n; i++ {
		if d.Idom[i] != i-1 || d.Depth[i] != i {
			t.Fatalf("block %d: idom=%d depth=%d, want %d/%d", i, d.Idom[i], d.Depth[i], i-1, i)
		}
	}
	if len(li.Loops) != 0 || li.Irreducible {
		t.Errorf("chain loop info = %+v, want none", li)
	}
	// A linear pass clears 1000 blocks in well under a millisecond; this
	// bound only trips if someone regresses to a quadratic-or-worse
	// algorithm (the CHK iteration converging per-block, say).
	if elapsed > 3*time.Second {
		t.Errorf("1000-block chain took %v — analysis is no longer linear-ish", elapsed)
	}
	if testing.Short() {
		return
	}
	// Long mode: 20x the blocks with the same generous budget, so even a
	// mildly super-linear implementation surfaces before users feel it.
	start = time.Now()
	g = recoverCFG(chain(t, 20*n))
	g.Loops(g.Dominators())
	if elapsed = time.Since(start); elapsed > 5*time.Second {
		t.Errorf("20k-block chain took %v — analysis is super-linear", elapsed)
	}
}

// TestFactsJSONDeterminismUnit: two independent analyses of the same
// program must marshal to identical bytes (the eval-layer test covers
// compiled regions; this pins the hand-built corner shapes too).
func TestFactsJSONDeterminismUnit(t *testing.T) {
	for _, mk := range []func(*testing.T) *code.Program{diamond, twoEntryCycle, selfLoop} {
		p1, p2 := mk(t), mk(t)
		f1, err := ComputeFacts(p1)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := ComputeFacts(p2)
		if err != nil {
			t.Fatal(err)
		}
		j1, err := json.Marshal(f1)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(f2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Errorf("%s: Facts JSON differs across runs:\n%s\n%s", p1.Name, j1, j2)
		}
	}
}
