package check

// Abstract interpretation over the recovered CFG. The framework is a small
// worklist fixpoint engine parameterized by a lattice; it is instantiated
// twice in this package: constant/value-range propagation (constDomain,
// feeding the branch/memrange/deadblock rules and the Facts artifact) and
// must-reaching spill stores (spillMustDomain, feeding the stackjoin rule).
//
// Termination argument: states are joined monotonically (JoinInto only
// moves up the lattice and reports whether anything changed), every chain
// in each domain is finite (registers go const → interval → top; flag state
// goes known → unknown; spill-slot bits only clear), and after widenAfter
// visits to a block the join widens unstable facts straight to top. The
// sweep revisits blocks only while something changed, so the fixpoint is
// reached in at most O(height × blocks) block visits.
//
// Unreachable blocks are excluded entirely: they are never visited and
// contribute no state at joins, so dead code cannot produce spurious
// join-point facts (the deadblock rule owns reporting them).

import (
	"math"

	"compisa/internal/code"
)

// widenAfter is the number of in-state changes a block tolerates before
// joins start widening unstable facts to top.
const widenAfter = 4

// lattice is one abstract domain over program states of type S (a pointer
// type in both instantiations; Transfer and JoinInto mutate in place).
type lattice[S any] interface {
	// Entry is the state at program entry.
	Entry() S
	// Clone returns an independent copy of s.
	Clone(s S) S
	// JoinInto merges src into dst (moving dst up the lattice only) and
	// reports whether dst changed. With widen set, unstable facts jump to
	// top instead of climbing one step at a time.
	JoinInto(dst, src S, widen bool) bool
	// Transfer applies instruction idx to s in place.
	Transfer(s S, idx int, in *code.Instr)
}

// interpret runs the worklist fixpoint and returns the per-block in-states
// plus a has-state mask (false for blocks never reached: unreachable
// blocks, or everything when the program is empty). Out-states are not
// retained; rules re-run Transfer from a clone of the in-state when they
// need mid-block facts.
func interpret[S any](p *code.Program, g *CFG, d *DomTree, lat lattice[S]) ([]S, []bool) {
	nb := len(g.Blocks)
	ins := make([]S, nb)
	hasIn := make([]bool, nb)
	outs := make([]S, nb)
	hasOut := make([]bool, nb)
	if nb == 0 {
		return ins, hasIn
	}
	visits := make([]int, nb)
	flow := func(b int) {
		st := lat.Clone(ins[b])
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			lat.Transfer(st, i, &p.Instrs[i])
		}
		outs[b], hasOut[b] = st, true
	}
	ins[0], hasIn[0] = lat.Entry(), true
	flow(0)
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo {
			if b == 0 && len(g.Blocks[0].Preds) == 0 {
				continue // entry state is fixed when nothing loops back
			}
			widen := visits[b] >= widenAfter
			inChanged := false
			for _, pb := range g.Blocks[b].Preds {
				if !hasOut[pb] {
					continue // not yet flowed (or unreachable): no contribution
				}
				if !hasIn[b] {
					ins[b], hasIn[b] = lat.Clone(outs[pb]), true
					inChanged = true
					continue
				}
				if lat.JoinInto(ins[b], outs[pb], widen) {
					inChanged = true
				}
			}
			if !hasIn[b] || (!inChanged && hasOut[b]) {
				continue
			}
			visits[b]++
			flow(b)
			changed = true
		}
	}
	return ins, hasIn
}

// ---------------------------------------------------------------------------
// Constant / value-range domain.
// ---------------------------------------------------------------------------

// ival is an unsigned, non-wrapping interval over the 64-bit register value
// space. Registers always hold their full zero-extended contents (the
// executor's writeInt zero-extends narrow writes), so unsigned intervals
// are exact for the facts the rules consume.
type ival struct{ Lo, Hi uint64 }

var topIval = ival{0, math.MaxUint64}

func (v ival) isConst() bool { return v.Lo == v.Hi }
func (v ival) isTop() bool   { return v.Lo == 0 && v.Hi == math.MaxUint64 }

func constIval(c uint64) ival { return ival{c, c} }

// sizedTop is the interval of every value representable at operand size sz
// (what a masked write can produce).
func sizedTop(sz uint8) ival { return ival{0, szMask(sz)} }

// szMask mirrors cpu.szMask.
func szMask(sz uint8) uint64 {
	switch sz {
	case 1:
		return 0xff
	case 4:
		return math.MaxUint32
	default:
		return math.MaxUint64
	}
}

func signBit(v uint64, sz uint8) bool {
	switch sz {
	case 1:
		return v&0x80 != 0
	case 4:
		return v&0x8000_0000 != 0
	default:
		return v&(1<<63) != 0
	}
}

// maskIval is the abstract counterpart of v & szMask(sz): exact when the
// whole interval fits under the mask, the full masked range otherwise
// (masking wraps, so a straddling interval loses its ordering).
func maskIval(v ival, sz uint8) ival {
	if m := szMask(sz); v.Hi > m {
		return ival{0, m}
	}
	return v
}

func addIval(a, b ival) ival {
	hi := a.Hi + b.Hi
	if hi < a.Hi {
		return topIval // unsigned overflow: ordering lost
	}
	return ival{a.Lo + b.Lo, hi}
}

func subIval(a, b ival) ival {
	if a.Lo < b.Hi {
		return topIval // could wrap below zero
	}
	return ival{a.Lo - b.Hi, a.Hi - b.Lo}
}

func mulIvalConst(v ival, c uint64) ival {
	if c == 0 {
		return ival{}
	}
	if v.Hi > math.MaxUint64/c {
		return topIval
	}
	return ival{v.Lo * c, v.Hi * c}
}

func joinIval(a, b ival) ival {
	if b.Lo < a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > a.Hi {
		a.Hi = b.Hi
	}
	return a
}

// absFlags is the abstract condition-code state: either fully known (the
// four booleans) or unknown. Flags become known only when a flag-writing
// instruction runs unpredicated with fully constant operands.
type absFlags struct {
	known          bool
	zf, sf, of, cf bool
}

// The three flag formulas replicate cpu.State.setAddFlags / setSubFlags /
// setLogicFlags exactly; the rules' claims about branch outcomes are only
// as good as this mirror.
func addFlags(a, b, r uint64, carryIn bool, sz uint8) absFlags {
	m := szMask(sz)
	a, b, r = a&m, b&m, r&m
	f := absFlags{known: true, zf: r == 0, sf: signBit(r, sz)}
	cin := uint64(0)
	if carryIn {
		cin = 1
	}
	if sz == 8 {
		s1 := a + b
		f.cf = s1 < a || s1+cin < s1
	} else {
		f.cf = (a+b+cin)&^m != 0
	}
	f.of = signBit(^(a^b)&(a^r), sz)
	return f
}

func subFlags(a, b, r uint64, borrowIn bool, sz uint8) absFlags {
	m := szMask(sz)
	a, b, r = a&m, b&m, r&m
	f := absFlags{known: true, zf: r == 0, sf: signBit(r, sz)}
	if borrowIn {
		f.cf = a <= b
	} else {
		f.cf = a < b
	}
	f.of = signBit((a^b)&(a^r), sz)
	return f
}

func logicFlags(r uint64, sz uint8) absFlags {
	r &= szMask(sz)
	return absFlags{known: true, zf: r == 0, sf: signBit(r, sz)}
}

// condFlags mirrors cpu.State.cond over known flags.
func condFlags(f absFlags, cc code.CC) bool {
	switch cc {
	case code.CCEQ:
		return f.zf
	case code.CCNE:
		return !f.zf
	case code.CCLT:
		return f.sf != f.of
	case code.CCGE:
		return f.sf == f.of
	case code.CCLE:
		return f.zf || f.sf != f.of
	case code.CCGT:
		return !f.zf && f.sf == f.of
	case code.CCB:
		return f.cf
	case code.CCAE:
		return !f.cf
	case code.CCBE:
		return f.cf || f.zf
	case code.CCA:
		return !f.cf && !f.zf
	}
	return false
}

// constState is the constant/value-range abstract state: one interval per
// integer register plus the flags. FP/SIMD registers are not tracked (no
// rule or fact consumes them).
type constState struct {
	reg   [64]ival
	flags absFlags
}

type constDomain struct {
	addrMask uint64 // MaxUint32 on 32-bit feature sets, like the executor
}

func newConstDomain(p *code.Program) *constDomain {
	d := &constDomain{addrMask: math.MaxUint64}
	if p.FS.Width == 32 {
		d.addrMask = math.MaxUint32
	}
	return d
}

// Entry: all registers hold zero (cpu.NewState zeroes the file; region
// inputs arrive via loads), flags unknown (nothing has set them — reading
// them first is udef's business, not ours).
func (d *constDomain) Entry() *constState {
	return &constState{}
}

func (d *constDomain) Clone(s *constState) *constState {
	c := *s
	return &c
}

func (d *constDomain) JoinInto(dst, src *constState, widen bool) bool {
	changed := false
	for r := range dst.reg {
		j := joinIval(dst.reg[r], src.reg[r])
		if widen && j != dst.reg[r] {
			j = topIval
		}
		if j != dst.reg[r] {
			dst.reg[r] = j
			changed = true
		}
	}
	if dst.flags.known && dst.flags != src.flags {
		dst.flags = absFlags{}
		changed = true
	}
	return changed
}

// getReg reads a register's abstract value, tolerating malformed operands
// (NoReg or registers past the 64-entry file — the struct/depth rules
// report those; the domain just refuses to claim anything about them).
func (s *constState) getReg(r code.Reg) ival {
	if int(r) >= len(s.reg) {
		return topIval
	}
	return s.reg[r]
}

func (s *constState) setReg(r code.Reg, v ival) {
	if int(r) < len(s.reg) {
		s.reg[r] = v
	}
}

// absEA is the abstract effective address of a memory operand (mirrors
// cpu.State.ea, including the address mask).
func (d *constDomain) absEA(s *constState, m code.Mem) ival {
	acc := ival{}
	if m.Base != code.NoReg {
		acc = addIval(acc, s.getReg(m.Base))
	}
	if m.Index != code.NoReg {
		acc = addIval(acc, mulIvalConst(s.getReg(m.Index), uint64(m.Scale)))
	}
	if disp := int64(m.Disp); disp >= 0 {
		acc = addIval(acc, constIval(uint64(disp)))
	} else {
		acc = subIval(acc, constIval(uint64(-disp)))
	}
	if acc.Hi > d.addrMask {
		return ival{0, d.addrMask}
	}
	return acc
}

// intOp2 resolves the abstract second integer operand, mirroring the
// executor's intOp2 closure: immediate (masked), memory source (any value
// of the access size — loads are opaque), or register (masked).
func (d *constDomain) intOp2(s *constState, in *code.Instr) ival {
	switch {
	case in.HasImm:
		return constIval(uint64(in.Imm) & szMask(in.Sz))
	case in.MemSrcALU():
		return sizedTop(in.Sz)
	default:
		return maskIval(s.getReg(in.Src2), in.Sz)
	}
}

func (d *constDomain) Transfer(s *constState, idx int, in *code.Instr) {
	// A predicated instruction may or may not commit: everything it could
	// write goes to top (sound: top covers join(old, new)).
	if in.Predicated() {
		var defs []int
		for _, def := range instrDefs(in, defs) {
			switch {
			case def == resFlags:
				s.flags = absFlags{}
			case def < resFPBase:
				s.reg[def-resIntBase] = topIval
			}
		}
		return
	}
	sz := in.Sz
	switch in.Op {
	case code.MOV:
		if in.HasImm {
			s.setReg(in.Dst, constIval(uint64(in.Imm)&szMask(sz)))
		} else {
			s.setReg(in.Dst, maskIval(s.getReg(in.Src1), sz))
		}

	case code.MOVSX:
		// uint64(int64(int32(uint32(v)))): exact on constants; an interval
		// survives only when every value has bit 31 clear and no high bits.
		if v := s.getReg(in.Src1); v.isConst() {
			s.setReg(in.Dst, constIval(uint64(int64(int32(uint32(v.Lo))))))
		} else if v.Hi <= 0x7fff_ffff {
			s.setReg(in.Dst, v)
		} else {
			s.setReg(in.Dst, topIval)
		}

	case code.LEA:
		s.setReg(in.Dst, maskIval(d.absEA(s, in.Mem), sz))

	case code.LD:
		// Loads are opaque but zero-extend: the result is bounded by the
		// access size (the executor writes with width 8 after Mem.Read).
		s.setReg(in.Dst, sizedTop(sz))

	case code.ST, code.NOP, code.JMP, code.RET, code.JCC:
		// No integer-register or flag effects (JCC reads flags only).

	case code.ADD, code.ADC:
		a := maskIval(s.getReg(in.Src1), sz)
		b := d.intOp2(s, in)
		if in.Op == code.ADD && a.isConst() && b.isConst() {
			r := a.Lo + b.Lo
			s.flags = addFlags(a.Lo, b.Lo, r, false, sz)
			s.setReg(in.Dst, constIval(r&szMask(sz)))
		} else if in.Op == code.ADC && a.isConst() && b.isConst() && s.flags.known {
			cin := s.flags.cf
			r := a.Lo + b.Lo
			if cin {
				r++
			}
			s.flags = addFlags(a.Lo, b.Lo, r, cin, sz)
			s.setReg(in.Dst, constIval(r&szMask(sz)))
		} else {
			s.setReg(in.Dst, maskIval(addIval(a, b), sz))
			s.flags = absFlags{}
		}

	case code.SUB, code.SBB:
		a := maskIval(s.getReg(in.Src1), sz)
		b := d.intOp2(s, in)
		if in.Op == code.SUB && a.isConst() && b.isConst() {
			r := a.Lo - b.Lo
			s.flags = subFlags(a.Lo, b.Lo, r, false, sz)
			s.setReg(in.Dst, constIval(r&szMask(sz)))
		} else if in.Op == code.SBB && a.isConst() && b.isConst() && s.flags.known {
			bin := s.flags.cf
			r := a.Lo - b.Lo
			if bin {
				r--
			}
			s.flags = subFlags(a.Lo, b.Lo, r, bin, sz)
			s.setReg(in.Dst, constIval(r&szMask(sz)))
		} else {
			s.setReg(in.Dst, maskIval(subIval(a, b), sz))
			s.flags = absFlags{}
		}

	case code.IMUL:
		a := maskIval(s.getReg(in.Src1), sz)
		b := d.intOp2(s, in)
		if a.isConst() && b.isConst() {
			r := (a.Lo * b.Lo) & szMask(sz)
			s.flags = logicFlags(r, sz) // the executor models IMUL this way
			s.setReg(in.Dst, constIval(r))
		} else {
			s.setReg(in.Dst, sizedTop(sz))
			s.flags = absFlags{}
		}

	case code.AND, code.OR, code.XOR:
		a := maskIval(s.getReg(in.Src1), sz)
		b := d.intOp2(s, in)
		if a.isConst() && b.isConst() {
			var r uint64
			switch in.Op {
			case code.AND:
				r = a.Lo & b.Lo
			case code.OR:
				r = a.Lo | b.Lo
			default:
				r = a.Lo ^ b.Lo
			}
			r &= szMask(sz)
			s.flags = logicFlags(r, sz)
			s.setReg(in.Dst, constIval(r))
		} else {
			if in.Op == code.AND {
				// AND never exceeds either operand.
				hi := a.Hi
				if b.Hi < hi {
					hi = b.Hi
				}
				s.setReg(in.Dst, ival{0, hi})
			} else {
				s.setReg(in.Dst, sizedTop(sz))
			}
			s.flags = absFlags{}
		}

	case code.SHL, code.SHR, code.SAR:
		a := maskIval(s.getReg(in.Src1), sz)
		k := uint(in.Imm)
		switch {
		case a.isConst():
			var r uint64
			switch in.Op {
			case code.SHL:
				r = a.Lo << k
			case code.SHR:
				r = a.Lo >> k
			default:
				if sz == 4 {
					r = uint64(uint32(int32(uint32(a.Lo)) >> k))
				} else {
					r = uint64(int64(a.Lo) >> k)
				}
			}
			r &= szMask(sz)
			s.flags = logicFlags(r, sz)
			s.setReg(in.Dst, constIval(r))
		case in.Op == code.SHR:
			s.setReg(in.Dst, ival{a.Lo >> k, a.Hi >> k})
			s.flags = absFlags{}
		default:
			s.setReg(in.Dst, sizedTop(sz))
			s.flags = absFlags{}
		}

	case code.CMP:
		a := maskIval(s.getReg(in.Src1), sz)
		b := d.intOp2(s, in)
		if a.isConst() && b.isConst() {
			s.flags = subFlags(a.Lo, b.Lo, a.Lo-b.Lo, false, sz)
		} else {
			s.flags = absFlags{}
		}

	case code.TEST:
		a := maskIval(s.getReg(in.Src1), sz)
		b := d.intOp2(s, in)
		if a.isConst() && b.isConst() {
			s.flags = logicFlags(a.Lo&b.Lo, sz)
		} else {
			s.flags = absFlags{}
		}

	case code.SETCC:
		if s.flags.known {
			var v uint64
			if condFlags(s.flags, in.CC) {
				v = 1
			}
			s.setReg(in.Dst, constIval(v))
		} else {
			s.setReg(in.Dst, ival{0, 1})
		}

	case code.CMOVCC:
		var v ival
		if in.HasMem {
			v = sizedTop(sz) // the load always happens; the value is opaque
		} else {
			v = maskIval(s.getReg(in.Src1), sz)
		}
		if s.flags.known {
			if condFlags(s.flags, in.CC) {
				s.setReg(in.Dst, v)
			}
		} else {
			s.setReg(in.Dst, joinIval(s.getReg(in.Dst), v))
		}

	case code.FCMP:
		s.flags = absFlags{} // FP values are not tracked

	case code.CVTFI:
		s.setReg(in.Dst, sizedTop(4)) // writeInt(..., 4) of an opaque int32

	default:
		// FP/SIMD ops touch only the untracked FP file.
	}
}

// ---------------------------------------------------------------------------
// Must-reaching spill stores (the stack-height domain).
// ---------------------------------------------------------------------------

// spillMustState tracks which spill slots are definitely initialized on
// every path reaching this point.
type spillMustState struct {
	stored BitSet
}

type spillMustDomain struct {
	slots map[int32]int
}

// Entry: no slot is initialized.
func (d *spillMustDomain) Entry() *spillMustState {
	return &spillMustState{stored: NewBitSet(len(d.slots))}
}

func (d *spillMustDomain) Clone(s *spillMustState) *spillMustState {
	return &spillMustState{stored: s.stored.Copy()}
}

// JoinInto intersects: a slot survives the join only when every incoming
// path stored it. Bits only clear, so the chain is finite and no widening
// is needed.
func (d *spillMustDomain) JoinInto(dst, src *spillMustState, widen bool) bool {
	changed := false
	for i := range dst.stored {
		n := dst.stored[i] & src.stored[i]
		if n != dst.stored[i] {
			dst.stored[i] = n
			changed = true
		}
	}
	return changed
}

// Transfer: a spill store initializes its slot. A predicated store counts
// too — if-converted code stores under a predicate and reloads under the
// same predicate, and treating the store as conditional would flag every
// such pair; the discipline verified here is "the compiler planned an
// initialization on this path", not a dynamic-execution proof.
func (d *spillMustDomain) Transfer(s *spillMustState, idx int, in *code.Instr) {
	if in.Op != code.ST && in.Op != code.FST && in.Op != code.VST {
		return
	}
	if addr, ok := spillSlotRef(in); ok {
		s.stored.Set(d.slots[addr])
	}
}
