package check

import (
	"fmt"

	"compisa/internal/code"
	"compisa/internal/encoding"
)

// checkEncode is the translation-validation rule: every instruction must
// encode (via the real encoder) into exactly the bytes the layout claims,
// and the instruction-length decoder must parse those bytes back to the
// same boundary. The whole image is then re-scanned with the ILD's
// instruction-marker unit and its boundaries compared against the layout
// PCs — disagreement means the fetch/decode models are simulating a
// different program than the one that executes.
func checkEncode(a *analysis) []Finding {
	p := a.p
	if len(p.PC) != len(p.Instrs) {
		return []Finding{{Rule: RuleEncode, Index: -1, Severity: SevError,
			Detail: fmt.Sprintf("program has no layout (%d PCs for %d instructions)", len(p.PC), len(p.Instrs))}}
	}
	if p.Target != "" {
		return checkEncodeTarget(a)
	}
	var out []Finding
	ild := encoding.NewILD(p.CompactEncoding)
	img := make([]byte, 0, p.Size)
	imgOK := true
	for i := range p.Instrs {
		in := &p.Instrs[i]
		want := encoding.Length(p, i)
		b, err := encoding.EncodeInstr(in, want, p.CompactEncoding)
		if err != nil {
			out = append(out, a.finding(RuleEncode, i, fmt.Sprintf("encode: %v", err)))
			imgOK = false
			continue
		}
		n, err := ild.DecodeLength(b)
		if err != nil {
			out = append(out, a.finding(RuleEncode, i, fmt.Sprintf("ILD decode: %v", err)))
			imgOK = false
			continue
		}
		if n != len(b) {
			out = append(out, a.finding(RuleEncode, i,
				fmt.Sprintf("ILD decodes %d bytes where the encoder emitted %d", n, len(b))))
			imgOK = false
			continue
		}
		img = append(img, b...)
	}
	if !imgOK {
		return out
	}
	if len(img) != p.Size {
		out = append(out, Finding{Rule: RuleEncode, Index: -1, Severity: SevError,
			Detail: fmt.Sprintf("image is %d bytes but layout claims %d", len(img), p.Size)})
		return out
	}
	mark, err := ild.Mark(img)
	if err != nil {
		out = append(out, Finding{Rule: RuleEncode, Index: -1, Severity: SevError,
			Detail: fmt.Sprintf("instruction-marker scan failed: %v", err)})
		return out
	}
	if len(mark.Boundaries) != len(p.Instrs) {
		out = append(out, Finding{Rule: RuleEncode, Index: -1, Severity: SevError,
			Detail: fmt.Sprintf("marker found %d instructions, layout has %d", len(mark.Boundaries), len(p.Instrs))})
		return out
	}
	for i, off := range mark.Boundaries {
		if uint32(off) != p.PC[i]-p.Base {
			out = append(out, a.finding(RuleEncode, i,
				fmt.Sprintf("marker boundary %#x disagrees with layout PC offset %#x", off, p.PC[i]-p.Base)))
		}
	}
	return out
}

// checkEncodeTarget is the non-x86 variant of the round-trip rule: every
// instruction must encode through the target's coder into the bytes the
// layout claims, the one-step length decode must agree, and — for targets
// whose single decode step recovers the whole instruction — the decoded
// instruction must equal the canonical normalization of the original. For
// fixed-length targets the layout itself is also checked against the fixed
// stride, which is what the paper's one-step-decode fetch model assumes.
func checkEncodeTarget(a *analysis) []Finding {
	p := a.p
	c := encoding.ForProgram(p)
	dec, _ := c.(encoding.InstrDecoder)
	stride := c.Target().FixedLen
	var out []Finding
	total := 0
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if stride != 0 && p.PC[i]-p.Base != uint32(stride*i) {
			out = append(out, a.finding(RuleEncode, i,
				fmt.Sprintf("layout PC offset %#x off the fixed %d-byte stride", p.PC[i]-p.Base, stride)))
		}
		want := encoding.Length(p, i)
		b, err := c.EncodeInstr(in, want, p.CompactEncoding)
		if err != nil {
			out = append(out, a.finding(RuleEncode, i, fmt.Sprintf("encode: %v", err)))
			continue
		}
		total += len(b)
		n, err := c.DecodeLength(b, p.CompactEncoding)
		if err != nil {
			out = append(out, a.finding(RuleEncode, i, fmt.Sprintf("decode: %v", err)))
			continue
		}
		if n != len(b) {
			out = append(out, a.finding(RuleEncode, i,
				fmt.Sprintf("decoder claims %d bytes where the encoder emitted %d", n, len(b))))
			continue
		}
		if dec != nil {
			got, err := dec.DecodeInstr(b)
			if err != nil {
				out = append(out, a.finding(RuleEncode, i, fmt.Sprintf("instruction decode: %v", err)))
				continue
			}
			if want := dec.Normalize(in); got != want {
				out = append(out, a.finding(RuleEncode, i,
					fmt.Sprintf("decode round trip disagrees: got %s want %s",
						code.FormatInstr(&got), code.FormatInstr(&want))))
			}
		}
	}
	if total > 0 && total != p.Size {
		out = append(out, Finding{Rule: RuleEncode, Index: -1, Severity: SevError,
			Detail: fmt.Sprintf("image is %d bytes but layout claims %d", total, p.Size)})
	}
	return out
}

// clone deep-copies a program so the mutation harness can derive illegal
// variants without touching the original.
func Clone(p *code.Program) *code.Program {
	q := *p
	q.Instrs = append([]code.Instr(nil), p.Instrs...)
	q.PC = append([]uint32(nil), p.PC...)
	q.Pool = append([]code.PoolConst(nil), p.Pool...)
	return &q
}
