package check

// Facts is the exported per-region analysis artifact: everything a
// template JIT's region selector needs that is provable without running
// the interpreter — loop headers with trip-count bounds where derivable,
// dominance structure, guardable branch sites, and per-block constant
// facts. The encoding is deliberately map-free (slices ordered by block /
// instruction index) so the JSON serialization is byte-identical across
// runs and processes.

import (
	"fmt"

	"compisa/internal/code"
)

// Facts is the analysis summary of one compiled region.
type Facts struct {
	Program     string       `json:"program"`
	FS          string       `json:"feature_set"`
	NumInstrs   int          `json:"num_instrs"`
	Irreducible bool         `json:"irreducible,omitempty"`
	Blocks      []BlockFacts `json:"blocks"`
	Loops       []LoopFacts  `json:"loops,omitempty"`
	Guards      []GuardFacts `json:"guards,omitempty"`
}

// BlockFacts describes one basic block.
type BlockFacts struct {
	Index     int    `json:"index"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
	StartPC   uint32 `json:"start_pc,omitempty"`
	Reachable bool   `json:"reachable"`
	// Idom is the immediate dominator's block index (-1 for unreachable
	// blocks; the entry is its own idom).
	Idom int `json:"idom"`
	// Frontier is the dominance frontier, ascending.
	Frontier []int `json:"frontier,omitempty"`
	// LoopDepth is the loop-nesting depth (0 outside any loop).
	LoopDepth int `json:"loop_depth,omitempty"`
	// Consts lists registers with a provably constant value at block
	// entry, ascending by register number (only registers the program
	// references; the untouched rest of the file is trivially zero).
	Consts []RegFact `json:"consts,omitempty"`
}

// RegFact is one provably constant register at a block entry.
type RegFact struct {
	Reg   string `json:"reg"`
	Value uint64 `json:"value"`
}

// LoopFacts describes one natural loop.
type LoopFacts struct {
	Header  int   `json:"header"`
	Blocks  []int `json:"blocks"`
	Latches []int `json:"latches"`
	Depth   int   `json:"depth"`
	// TripCount is the exact iteration count when the loop matches the
	// canonical counted form and its bound is derivable; 0 when unknown.
	TripCount int64 `json:"trip_count,omitempty"`
}

// GuardFacts is one guardable branch site: a conditional branch whose
// outcome is not statically constant, i.e. where a JIT trace would place a
// side exit.
type GuardFacts struct {
	Index     int     `json:"index"`
	PC        uint32  `json:"pc,omitempty"`
	CC        string  `json:"cc"`
	Target    int32   `json:"target"`
	LoopDepth int     `json:"loop_depth"`
	TakenProb float32 `json:"taken_prob,omitempty"`
}

// ComputeFacts runs the analysis engine over a laid-out program and
// returns its Facts. It fails only when the program is structurally broken
// (empty, or branch targets out of range) so no CFG can be recovered.
func ComputeFacts(p *code.Program) (*Facts, error) {
	if err := structural(p); err != nil {
		return nil, fmt.Errorf("check: facts for %s: %w", p.Name, err)
	}
	a := newAnalysis(p)
	return a.facts(), nil
}

func (a *analysis) facts() *Facts {
	p := a.p
	g := a.cfg
	d := a.domTree()
	li := a.loopInfo()
	ins := a.constStates()
	kinds := a.branchFacts()
	hasPC := len(p.PC) == len(p.Instrs)

	// Only registers the program references produce constant facts; the
	// rest of the file sits at its entry value and would bloat the output.
	var refInt [64]bool
	var scratch []code.Reg
	for i := range p.Instrs {
		scratch = p.Instrs[i].IntRegs(scratch[:0])
		for _, r := range scratch {
			if int(r) < len(refInt) {
				refInt[r] = true
			}
		}
	}

	f := &Facts{
		Program:     p.Name,
		FS:          p.FS.ShortName(),
		NumInstrs:   len(p.Instrs),
		Irreducible: li.Irreducible,
		Blocks:      make([]BlockFacts, len(g.Blocks)),
	}
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		bf := BlockFacts{
			Index:     bi,
			Start:     b.Start,
			End:       b.End,
			Reachable: b.Reachable,
			Idom:      d.Idom[bi],
			Frontier:  d.Frontier[bi],
			LoopDepth: li.Depth[bi],
		}
		if hasPC {
			bf.StartPC = p.PC[b.Start]
		}
		if st := ins[bi]; st != nil {
			for r := 0; r < 64; r++ {
				if refInt[r] && st.reg[r].isConst() {
					bf.Consts = append(bf.Consts, RegFact{Reg: "r" + itoa(r), Value: st.reg[r].Lo})
				}
			}
		}
		f.Blocks[bi] = bf
	}
	for i := range li.Loops {
		l := &li.Loops[i]
		f.Loops = append(f.Loops, LoopFacts{
			Header:    l.Header,
			Blocks:    l.Blocks,
			Latches:   l.Latches,
			Depth:     l.Depth,
			TripCount: a.deriveTripCount(i),
		})
	}
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		if !b.Reachable || kinds[bi] != branchUnknown {
			continue
		}
		last := &p.Instrs[b.End-1]
		if last.Op != code.JCC {
			continue
		}
		gf := GuardFacts{
			Index:     b.End - 1,
			CC:        last.CC.String(),
			Target:    last.Target,
			LoopDepth: li.Depth[bi],
			TakenProb: last.TakenProb,
		}
		if hasPC {
			gf.PC = p.PC[b.End-1]
		}
		f.Guards = append(f.Guards, gf)
	}
	return f
}

// tripCap bounds the trip-count recurrence simulation; loops longer than
// this simply get no static bound.
const tripCap = 1 << 20

// deriveTripCount recognizes the canonical rotated counted loop —
//
//	header: ...            ; induction register rI defined nowhere else
//	   ...
//	exit:   ...
//	        ADD rI, $step  ; step > 0, unpredicated
//	        CMP rI, $bound
//	        JCC cc         ; one edge continues the loop, one leaves it
//
// — with a constant initial value flowing in from every non-loop
// predecessor of the header, and computes the exact iteration count by
// running the recurrence under the executor's masking and flag semantics.
// Any deviation from the pattern yields 0 (unknown).
func (a *analysis) deriveTripCount(loopIdx int) int64 {
	p := a.p
	g := a.cfg
	d := a.domTree()
	li := a.loopInfo()
	l := &li.Loops[loopIdx]

	// Exactly one exiting block, ending in an unpredicated JCC with one
	// successor inside the loop and one outside.
	exit := -1
	for _, b := range l.Blocks {
		for _, s := range g.Blocks[b].Succs {
			if !l.Contains(s) {
				if exit >= 0 && exit != b {
					return 0
				}
				exit = b
			}
		}
	}
	if exit < 0 || li.LoopOf[exit] != loopIdx {
		return 0
	}
	eb := &g.Blocks[exit]
	jcc := &p.Instrs[eb.End-1]
	if jcc.Op != code.JCC || jcc.Predicated() || len(eb.Succs) != 2 {
		return 0
	}
	takenLeaves := !l.Contains(eb.Succs[0])
	fallLeaves := !l.Contains(eb.Succs[1])
	if takenLeaves == fallLeaves {
		return 0
	}
	// The exit test must run exactly once per iteration.
	for _, t := range l.Latches {
		if !d.Dominates(exit, t) {
			return 0
		}
	}

	// The flag state at the JCC must come from CMP rI, $bound with nothing
	// clobbering the flags or rI in between.
	cmpIdx := -1
	for i := eb.End - 2; i >= eb.Start; i-- {
		if p.Instrs[i].Op.WritesFlags() {
			cmpIdx = i
			break
		}
	}
	if cmpIdx < 0 {
		return 0
	}
	cmp := &p.Instrs[cmpIdx]
	if cmp.Op != code.CMP || !cmp.HasImm || cmp.Predicated() {
		return 0
	}
	ind := cmp.Src1
	var defs []int
	for i := cmpIdx + 1; i < eb.End-1; i++ {
		for _, def := range instrDefs(&p.Instrs[i], defs[:0]) {
			if def == resInt(ind) {
				return 0
			}
		}
	}

	// rI has exactly one definition in the loop: ADD rI, $step before the
	// CMP in the exit block.
	addIdx := -1
	for _, b := range l.Blocks {
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			for _, def := range instrDefs(&p.Instrs[i], defs[:0]) {
				if def == resInt(ind) {
					if addIdx >= 0 {
						return 0
					}
					addIdx = i
				}
			}
		}
	}
	if addIdx < 0 || g.blockOf[addIdx] != exit || addIdx >= cmpIdx {
		return 0
	}
	add := &p.Instrs[addIdx]
	if add.Op != code.ADD || add.Dst != ind || add.Src1 != ind ||
		!add.HasImm || add.Imm <= 0 || add.Predicated() {
		return 0
	}

	// Constant initial value from every non-loop predecessor of the header.
	ins := a.constStates()
	haveInit := false
	var init uint64
	for _, pb := range g.Blocks[l.Header].Preds {
		if l.Contains(pb) {
			continue
		}
		if ins[pb] == nil {
			return 0
		}
		st := a.constDom.Clone(ins[pb])
		for i := g.Blocks[pb].Start; i < g.Blocks[pb].End; i++ {
			a.constDom.Transfer(st, i, &p.Instrs[i])
		}
		v := st.getReg(ind)
		if !v.isConst() || (haveInit && v.Lo != init) {
			return 0
		}
		init, haveInit = v.Lo, true
	}
	if !haveInit {
		return 0
	}

	// Run the recurrence under executor semantics.
	v := init
	step := uint64(add.Imm) & szMask(add.Sz)
	bound := uint64(cmp.Imm) & szMask(cmp.Sz)
	for trips := int64(1); trips <= tripCap; trips++ {
		v = (v + step) & szMask(add.Sz)
		cv := v & szMask(cmp.Sz)
		taken := condFlags(subFlags(cv, bound, cv-bound, false, cmp.Sz), jcc.CC)
		if taken == takenLeaves {
			return trips
		}
	}
	return 0
}
