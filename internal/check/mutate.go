package check

import (
	"fmt"
	"math/rand"

	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/isa"
)

// The mutation harness measures the verifier's detection power: it flips a
// legal program into an illegal one along a single dimension and asserts
// the matching rule catches it. A verifier that merely reports zero
// findings on clean code could be vacuously weak; seeded mutations prove
// each rule actually fires on the violation class it owns.

// MutationClass describes one seeded violation class. Class doubles as the
// rule ID that must appear in the mutant's findings for the class to count
// as detected.
type MutationClass struct {
	Class string
	Desc  string
}

// MutationClasses lists the seeded violation classes in deterministic order.
func MutationClasses() []MutationClass {
	return []MutationClass{
		{RuleDepth, "raise a register number above the feature set's register depth"},
		{RuleWidth, "widen an integer op to 64 bits on a 32-bit feature set"},
		{RulePred, "attach a predicate prefix under partial predication"},
		{RuleSIMD, "insert a packed-SSE op on a SIMD-less feature set"},
		{RuleComplexity, "fold a memory operand into an ALU op under microx86"},
		{RuleStack, "retarget a spill refill at a slot no store reaches"},
		{RuleUDef, "insert a read of a register no write reaches"},
		{RuleImm, "grow an immediate past the sign-extended imm32 form"},
		{RuleEncode, "shift the layout PCs off the encoded bytes"},
		{RuleDeadBlock, "append an unreachable block after the final control transfer"},
		{RuleBranch, "insert a conditional branch whose flags are provably constant"},
		{RuleMemRange, "insert a load from a provably out-of-range address"},
		{RuleSpillPair, "reload a just-stored spill slot back into its source register"},
		{RuleStackJoin, "branch around a spill store so a refill joins half-initialized"},
	}
}

// Mutate applies the named class's mutation to p in place, re-laying the
// program out when the edit changes instruction bytes. It returns a
// description of the edit and whether the class applies to this program and
// feature set (a depth-64 program, for instance, has no register above the
// depth to name). Mutations are deterministic in (program, class, seed).
func Mutate(p *code.Program, class string, seed uint64) (string, bool) {
	rng := rand.New(rand.NewSource(int64(seed) ^ int64(len(p.Instrs))<<32 ^ int64(hashClass(class))))
	switch class {
	case RuleDepth:
		return mutateDepth(p, rng)
	case RuleWidth:
		return mutateWidth(p, rng)
	case RulePred:
		return mutatePred(p, rng)
	case RuleSIMD:
		return mutateSIMD(p)
	case RuleComplexity:
		return mutateComplexity(p, rng)
	case RuleStack:
		return mutateStack(p, rng)
	case RuleUDef:
		return mutateUDef(p)
	case RuleImm:
		return mutateImm(p, rng)
	case RuleEncode:
		return mutateEncode(p, rng)
	case RuleDeadBlock:
		return mutateDeadBlock(p)
	case RuleBranch:
		return mutateBranch(p)
	case RuleMemRange:
		return mutateMemRange(p)
	case RuleSpillPair:
		return mutateSpillPair(p, rng)
	case RuleStackJoin:
		return mutateStackJoin(p)
	}
	return "", false
}

func hashClass(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func relayout(p *code.Program) {
	base := p.Base
	if base == 0 {
		base = code.CodeBase
	}
	// Layout of an in-range program cannot fail; a mutation that somehow
	// breaks it still leaves PC/Size inconsistent, which the encode rule
	// reports.
	_ = encoding.Layout(p, base)
}

func pick(rng *rand.Rand, cands []int) int { return cands[rng.Intn(len(cands))] }

func mutateDepth(p *code.Program, rng *rand.Rand) (string, bool) {
	if p.FS.Depth >= 64 {
		return "", false // every integer register is architectural
	}
	var cands []int
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Dst != code.NoReg && !in.Op.IsFP() && !in.Op.IsBranch() {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	i := pick(rng, cands)
	bad := code.Reg(p.FS.Depth)
	p.Instrs[i].Dst = bad
	relayout(p)
	return fmt.Sprintf("instr %d destination renamed to r%d (depth %d)", i, bad, p.FS.Depth), true
}

func mutateWidth(p *code.Program, rng *rand.Rand) (string, bool) {
	if p.FS.Width != 32 {
		return "", false
	}
	var cands []int
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case code.MOV, code.ADD, code.SUB, code.AND, code.OR, code.XOR, code.CMP, code.TEST:
			if in.Sz == 4 {
				cands = append(cands, i)
			}
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	i := pick(rng, cands)
	p.Instrs[i].Sz = 8
	relayout(p)
	return fmt.Sprintf("instr %d widened to a 64-bit operation", i), true
}

func mutatePred(p *code.Program, rng *rand.Rand) (string, bool) {
	if p.FS.Predication == isa.FullPredication {
		return "", false
	}
	var cands []int
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if !in.Op.IsBranch() && !in.Predicated() {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	i := pick(rng, cands)
	p.Instrs[i].Pred, p.Instrs[i].PredSense = 0, true
	relayout(p)
	return fmt.Sprintf("instr %d predicated on r0 under partial predication", i), true
}

// insertAt splices instructions in at index k, retargeting the original
// branches that pointed at or past k so the original control structure is
// preserved (inserted branch targets are given in post-insertion indices
// and left alone).
func insertAt(p *code.Program, k int, instrs ...code.Instr) {
	n := int32(len(instrs))
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case code.JCC, code.JMP:
			if int(p.Instrs[i].Target) >= k {
				p.Instrs[i].Target += n
			}
		}
	}
	out := make([]code.Instr, 0, len(p.Instrs)+len(instrs))
	out = append(out, p.Instrs[:k]...)
	out = append(out, instrs...)
	out = append(out, p.Instrs[k:]...)
	p.Instrs = out
	relayout(p)
}

// insertAt0 prepends an instruction, fixing up branch targets and layout.
func insertAt0(p *code.Program, in code.Instr) { insertAt(p, 0, in) }

func mutateSIMD(p *code.Program) (string, bool) {
	if p.FS.HasSIMD() {
		return "", false
	}
	in := code.Instr{Op: code.VADDF, Sz: 16, Dst: 0, Src1: 0, Src2: 0,
		Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
	insertAt0(p, in)
	return "packed vaddf inserted at entry on a SIMD-less feature set", true
}

func mutateComplexity(p *code.Program, rng *rand.Rand) (string, bool) {
	if p.FS.Complexity != isa.MicroX86 {
		return "", false
	}
	var cands []int
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
			code.ADC, code.SBB, code.CMP, code.TEST:
			if !in.HasMem && in.Src1 != code.NoReg {
				cands = append(cands, i)
			}
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	i := pick(rng, cands)
	in := &p.Instrs[i]
	in.HasImm = false
	in.Src2 = code.NoReg
	in.HasMem = true
	in.Mem = code.Mem{Base: in.Src1, Index: code.NoReg, Scale: 1, Disp: 0}
	relayout(p)
	return fmt.Sprintf("instr %d given a folded memory source under microx86", i), true
}

func mutateStack(p *code.Program, rng *rand.Rand) (string, bool) {
	var cands []int
	maxDisp := int32(code.SpillBase)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if !in.HasMem || in.Mem.Base != code.NoReg || in.Mem.Index != code.NoReg {
			continue
		}
		if in.Mem.Disp < code.SpillBase || int64(in.Mem.Disp) >= int64(code.ContextBase) {
			continue
		}
		if in.Mem.Disp > maxDisp {
			maxDisp = in.Mem.Disp
		}
		if in.Op == code.LD || in.Op == code.FLD || in.Op == code.VLD {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return "", false // the region spills nothing under this feature set
	}
	i := pick(rng, cands)
	fresh := maxDisp + 16 // one slot past every slot the program touches
	p.Instrs[i].Mem.Disp = fresh
	relayout(p)
	return fmt.Sprintf("instr %d refills from untouched spill slot %#x", i, fresh), true
}

func mutateUDef(p *code.Program) (string, bool) {
	in := code.Instr{Op: code.TEST, Sz: 4, Dst: code.NoReg, Src1: 0, Src2: 0,
		Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
	insertAt0(p, in)
	return "read of r0 inserted at entry before any write", true
}

func mutateImm(p *code.Program, rng *rand.Rand) (string, bool) {
	var cands []int
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.HasImm && !(in.Op == code.MOV && in.Sz == 8) {
			switch in.Op {
			case code.SHL, code.SHR, code.SAR:
				// Shift counts get their own out-of-range value below.
				cands = append(cands, i)
			default:
				cands = append(cands, i)
			}
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	i := pick(rng, cands)
	in := &p.Instrs[i]
	switch in.Op {
	case code.SHL, code.SHR, code.SAR:
		in.Imm = 99 // past any operand width
	default:
		in.Imm = 1 << 40 // past the sign-extended imm32 form
	}
	relayout(p)
	return fmt.Sprintf("instr %d immediate grown past its encodable range", i), true
}

func mutateEncode(p *code.Program, rng *rand.Rand) (string, bool) {
	if len(p.Instrs) < 2 || len(p.PC) != len(p.Instrs) {
		return "", false
	}
	i := 1 + rng.Intn(len(p.Instrs)-1)
	for j := i; j < len(p.PC); j++ {
		p.PC[j]++
	}
	p.Size++
	return fmt.Sprintf("layout PCs shifted by one byte from instr %d", i), true
}

// noMem is the absent memory operand of inserted instructions.
func noMem() code.Mem { return code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1} }

func mutateDeadBlock(p *code.Program) (string, bool) {
	if len(p.Instrs) == 0 {
		return "", false
	}
	p.Instrs = append(p.Instrs, code.Instr{Op: code.JMP, Sz: 4, Dst: code.NoReg,
		Src1: code.NoReg, Src2: code.NoReg, Target: 0, Pred: code.NoReg, Mem: noMem()})
	relayout(p)
	return "unreachable jmp appended after the final control transfer", true
}

func mutateBranch(p *code.Program) (string, bool) {
	insertAt(p, 0,
		code.Instr{Op: code.MOV, Sz: 4, Dst: 0, Src1: code.NoReg, Src2: code.NoReg,
			Imm: 1, HasImm: true, Pred: code.NoReg, Mem: noMem()},
		code.Instr{Op: code.CMP, Sz: 4, Dst: code.NoReg, Src1: 0, Src2: code.NoReg,
			Imm: 1, HasImm: true, Pred: code.NoReg, Mem: noMem()},
		// Both edges land on the original entry, so the branch is provably
		// always taken without creating a dead block.
		code.Instr{Op: code.JCC, Sz: 4, CC: code.CCEQ, Target: 3, Dst: code.NoReg,
			Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg, Mem: noMem()})
	return "always-taken jcc (r0=1; cmp r0,1; jcc.e) inserted at entry", true
}

func mutateMemRange(p *code.Program) (string, bool) {
	m := noMem()
	m.Disp = 0x100 // below DataBase and every other legal window
	insertAt(p, 0, code.Instr{Op: code.LD, Sz: 4, Dst: 0, Src1: code.NoReg,
		Src2: code.NoReg, HasMem: true, Mem: m, Pred: code.NoReg})
	return "load from absolute address 0x100 (outside every data window) inserted at entry", true
}

func mutateSpillPair(p *code.Program, rng *rand.Rand) (string, bool) {
	loadOf := map[code.Op]code.Op{code.ST: code.LD, code.FST: code.FLD, code.VST: code.VLD}
	var cands []int
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if _, ok := loadOf[in.Op]; !ok || in.Predicated() {
			continue
		}
		if !in.HasMem || in.Mem.Base != code.NoReg || in.Mem.Index != code.NoReg {
			continue
		}
		if in.Mem.Disp >= code.SpillBase && int64(in.Mem.Disp) < int64(code.ContextBase) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return "", false // the region spills nothing under this feature set
	}
	i := pick(rng, cands)
	st := p.Instrs[i]
	insertAt(p, i+1, code.Instr{Op: loadOf[st.Op], Sz: st.Sz, Dst: st.Src1,
		Src1: code.NoReg, Src2: code.NoReg, HasMem: true, Mem: st.Mem, Pred: code.NoReg})
	return fmt.Sprintf("redundant reload of spill slot %#x inserted right after its store at instr %d", st.Mem.Disp, i), true
}

func mutateStackJoin(p *code.Program) (string, bool) {
	if len(p.Instrs) == 0 {
		return "", false
	}
	// A fresh slot past every slot the program touches, stored on only one
	// side of a fresh diamond and reloaded after the join.
	slot := int32(code.SpillBase)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.HasMem && in.Mem.Base == code.NoReg && in.Mem.Index == code.NoReg &&
			in.Mem.Disp >= code.SpillBase && int64(in.Mem.Disp) < int64(code.ContextBase) &&
			in.Mem.Disp+16 > slot {
			slot = in.Mem.Disp + 16
		}
	}
	m := noMem()
	m.Disp = slot
	insertAt(p, 0,
		code.Instr{Op: code.CMP, Sz: 4, Dst: code.NoReg, Src1: 0, Src2: code.NoReg,
			Imm: 0, HasImm: true, Pred: code.NoReg, Mem: noMem()},
		code.Instr{Op: code.JCC, Sz: 4, CC: code.CCEQ, Target: 3, Dst: code.NoReg,
			Src1: code.NoReg, Src2: code.NoReg, Pred: code.NoReg, Mem: noMem()},
		code.Instr{Op: code.ST, Sz: 4, Dst: code.NoReg, Src1: 0, Src2: code.NoReg,
			HasMem: true, Mem: m, Pred: code.NoReg},
		code.Instr{Op: code.LD, Sz: 4, Dst: 0, Src1: code.NoReg, Src2: code.NoReg,
			HasMem: true, Mem: m, Pred: code.NoReg})
	return fmt.Sprintf("spill slot %#x stored on only one path into the refill at instr 3", slot), true
}

// Detection is the outcome of one mutation class on one program.
type Detection struct {
	Class   string
	Applied bool
	Desc    string
	// Caught reports whether the mutant's findings include the class's
	// rule ID (only meaningful when Applied).
	Caught bool
	// Rules are the mutant's finding counts by rule ID.
	Rules map[string]int
}

// MutationSweep applies every mutation class to fresh clones of p and
// reports, per class, whether the expected rule detected the mutant. The
// original program is left untouched.
func MutationSweep(p *code.Program, seed uint64) []Detection {
	var out []Detection
	for _, mc := range MutationClasses() {
		d := Detection{Class: mc.Class}
		q := Clone(p)
		desc, ok := Mutate(q, mc.Class, seed)
		d.Applied, d.Desc = ok, desc
		if ok {
			rep := Analyze(q)
			d.Rules = rep.ByRule()
			d.Caught = d.Rules[mc.Class] > 0
		}
		out = append(out, d)
	}
	return out
}
