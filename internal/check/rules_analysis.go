package check

// The rules in this file are powered by the analysis engine (dominators in
// dom.go, abstract interpretation in absint.go) rather than by per-
// instruction shape checks: dead blocks, provably constant branches,
// statically out-of-range memory accesses, redundant spill/reload pairs,
// and stack-height mismatches at join points. They only report facts that
// are provable in the abstract semantics, which mirrors the executor
// exactly, so clean compiler output stays finding-free.

import (
	"fmt"
	"math"

	"compisa/internal/code"
)

// Constant-branch verdicts per block (branchFacts).
const (
	branchUnknown int8 = iota
	branchAlways
	branchNever
)

// branchFacts classifies each reachable block ending in an unpredicated
// JCC: always taken, never taken, or unknown, by flowing the constant
// domain from the block's entry state to the branch and checking whether
// the flags are fully known there.
func (a *analysis) branchFacts() []int8 {
	if a.branchKind != nil {
		return a.branchKind
	}
	g := a.cfg
	kinds := make([]int8, len(g.Blocks))
	ins := a.constStates()
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		if !b.Reachable || ins[bi] == nil {
			continue
		}
		last := &a.p.Instrs[b.End-1]
		if last.Op != code.JCC || last.Predicated() {
			continue
		}
		st := a.constDom.Clone(ins[bi])
		for i := b.Start; i < b.End-1; i++ {
			a.constDom.Transfer(st, i, &a.p.Instrs[i])
		}
		if !st.flags.known {
			continue
		}
		if condFlags(st.flags, last.CC) {
			kinds[bi] = branchAlways
		} else {
			kinds[bi] = branchNever
		}
	}
	a.branchKind = kinds
	return kinds
}

// prunedReachable recomputes reachability after deleting the CFG edges a
// provably constant branch can never follow. Blocks that are structurally
// reachable but unreachable in the pruned graph are dead in every
// execution.
func (a *analysis) prunedReachable() []bool {
	g := a.cfg
	kinds := a.branchFacts()
	live := make([]bool, len(g.Blocks))
	if len(g.Blocks) == 0 {
		return live
	}
	stack := []int{0}
	live[0] = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succs := g.Blocks[bi].Succs
		// A constant JCC block follows exactly one of its two edges: the
		// target (Succs[0]) when always taken, the fallthrough otherwise.
		if kinds[bi] == branchAlways {
			succs = succs[:1]
		} else if kinds[bi] == branchNever && len(succs) == 2 {
			succs = succs[1:]
		}
		for _, s := range succs {
			if !live[s] {
				live[s] = true
				stack = append(stack, s)
			}
		}
	}
	return live
}

// checkDeadBlock reports blocks no execution can reach: structurally
// unreachable ones (no path of CFG edges from the entry — a SevError,
// since the encoder paid for bytes the region cannot use and upstream
// passes clearly miscompiled) and blocks reachable only through provably
// never-taken branch edges (SevWarn: the code is live in the CFG but dead
// in the abstract semantics).
func checkDeadBlock(a *analysis) []Finding {
	g := a.cfg
	var out []Finding
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		if !b.Reachable {
			out = append(out, a.finding(RuleDeadBlock, b.Start,
				fmt.Sprintf("unreachable code (block of %d instruction(s))", b.End-b.Start)))
		}
	}
	live := a.prunedReachable()
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		if b.Reachable && !live[bi] {
			f := a.finding(RuleDeadBlock, b.Start,
				fmt.Sprintf("dead code: block of %d instruction(s) reachable only through provably never-taken branches", b.End-b.Start))
			f.Severity = SevWarn
			out = append(out, f)
		}
	}
	return out
}

// checkBranch flags conditional branches whose outcome is statically
// certain: the flags at the JCC are fully known in the constant domain.
// Such a branch wastes a predictor slot and encodes a control decision
// that is not one; on compiler output it means a guard was not folded.
func checkBranch(a *analysis) []Finding {
	g := a.cfg
	kinds := a.branchFacts()
	var out []Finding
	for bi := range g.Blocks {
		if kinds[bi] == branchUnknown {
			continue
		}
		b := &g.Blocks[bi]
		way := "always"
		if kinds[bi] == branchNever {
			way = "never"
		}
		f := a.finding(RuleBranch, b.End-1,
			fmt.Sprintf("conditional branch is provably %s taken (flags constant at this point)", way))
		f.Severity = SevWarn
		out = append(out, f)
	}
	return out
}

// Legal data-access windows for checkMemRange: the workload data region
// and the pool/spill/context region (contiguous: pool at PoolBase, spills
// at SpillBase, saved context at ContextBase). ctxWindow is deliberately
// generous — the rule only ever claims an access is *provably outside*
// every window.
const ctxWindow = 1 << 20

// checkMemRange flags memory accesses whose abstract effective address
// interval is provably disjoint from every legal data window. LEA is
// exempt (it computes an address without accessing memory), as is any
// access whose address is not statically bounded.
func checkMemRange(a *analysis) []Finding {
	g := a.cfg
	ins := a.constStates()
	var out []Finding
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		if !b.Reachable || ins[bi] == nil {
			continue
		}
		st := a.constDom.Clone(ins[bi])
		for i := b.Start; i < b.End; i++ {
			in := &a.p.Instrs[i]
			if in.HasMem && in.Op != code.LEA {
				ea := a.constDom.absEA(st, in.Mem)
				size := uint64(in.Sz)
				if size == 0 {
					size = 1
				}
				if ea.Hi <= math.MaxUint64-(size-1) {
					end := ea.Hi + size - 1
					disjoint := func(lo, hi uint64) bool { return end < lo || ea.Lo >= hi }
					if disjoint(code.DataBase, code.DataLimit) &&
						disjoint(code.PoolBase, code.ContextBase+ctxWindow) {
						out = append(out, a.finding(RuleMemRange, i,
							fmt.Sprintf("memory access at [%#x, %#x] is provably outside the data and pool/spill windows", ea.Lo, end)))
					}
				}
			}
			a.constDom.Transfer(st, i, in)
		}
	}
	return out
}

// checkSpillPair flags redundant spill/reload pairs inside a block: a
// reload from a spill slot whose value was stored from the same register
// earlier in the block, with neither the register nor the slot touched in
// between — the reload can only reproduce what the register already
// holds. Predicated stores or loads are exempt (the pair is conditional),
// and any store outside the spill area conservatively invalidates all
// tracked pairs (it could alias a slot through a pointer).
func checkSpillPair(a *analysis) []Finding {
	g := a.cfg
	var out []Finding
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		if !b.Reachable {
			continue
		}
		for _, k := range RedundantSpillReloads(a.p.Instrs[b.Start:b.End]) {
			i := b.Start + k
			addr, _ := spillSlotRef(&a.p.Instrs[i])
			f := a.finding(RuleSpillPair, i,
				fmt.Sprintf("redundant reload: spill slot %#x still holds the value of its destination register (the compiler's peephole removes these)", addr))
			f.Severity = SevWarn
			out = append(out, f)
		}
	}
	return out
}

// spillStoreOf maps each spill-reload opcode to its matching store.
var spillStoreOf = map[code.Op]code.Op{
	code.LD:  code.ST,
	code.FLD: code.FST,
	code.VLD: code.VST,
}

// mergeLegReload reports whether the reload at index i is the old-value leg
// of a predicated-merge spill sequence: every subsequent touch of the
// reloaded register up to the store back into the same slot is a predicated
// (or CMOV) def. That is the compiler's read-modify-write discipline for
// spilled registers defined under a predicate — the slot legitimately may
// be uninitialized on first execution, because every real consumer of the
// merged value is guarded by the same predicate.
func (a *analysis) mergeLegReload(end, i, res int, addr int32) bool {
	reg := a.p.Instrs[i].Dst
	wantStore := spillStoreOf[a.p.Instrs[i].Op]
	var scratch []int
	for j := i + 1; j < end; j++ {
		in := &a.p.Instrs[j]
		if a2, ok := spillSlotRef(in); ok && in.Op == wantStore && !in.Predicated() &&
			a2 == addr && in.Src1 == reg {
			return true
		}
		defsR := false
		for _, d := range instrDefs(in, scratch[:0]) {
			if d == res {
				defsR = true
			}
		}
		if defsR && (in.Predicated() || in.Op == code.CMOVCC) {
			continue // the merge itself may read and write the register
		}
		usesR := false
		for _, u := range instrUses(in, scratch[:0]) {
			if u == res {
				usesR = true
			}
		}
		if defsR || usesR {
			return false
		}
	}
	return false
}

// checkStackJoin flags the stack-height mismatches the may-analysis in
// checkStack cannot see: a spill refill whose slot is initialized on some
// path from the entry (so the stack rule is silent) but provably not on
// all of them. On the uninitialized path, the reload reads garbage — the
// classic diverging-spill-height-at-join miscompilation. Reloads that only
// feed a predicated merge stored back to the same slot are exempt (see
// mergeLegReload).
func checkStackJoin(a *analysis) []Finding {
	slots := a.spillSlots()
	if len(slots) == 0 {
		return nil
	}
	g := a.cfg
	mayIn := a.spillMayStoredIn()
	mustIn := a.spillMustStoredIn()
	dom := &spillMustDomain{slots: slots}
	var out []Finding
	for bi := range g.Blocks {
		if !g.Blocks[bi].Reachable || mustIn[bi] == nil {
			continue
		}
		may := mayIn[bi].Copy()
		must := dom.Clone(mustIn[bi])
		for i := g.Blocks[bi].Start; i < g.Blocks[bi].End; i++ {
			in := &a.p.Instrs[i]
			if addr, ok := spillSlotRef(in); ok && isSpillLoad(in.Op) {
				s := slots[addr]
				if may.Has(s) && !must.stored.Has(s) {
					res := resInt(in.Dst)
					if in.Op != code.LD {
						res = resFP(in.Dst)
					}
					if !a.mergeLegReload(g.Blocks[bi].End, i, res, addr) {
						out = append(out, a.finding(RuleStackJoin, i,
							fmt.Sprintf("refill from spill slot %#x initialized on only some paths to this point (stack-height mismatch at a join)", addr)))
					}
				}
			}
			if addr, ok := spillSlotRef(in); ok && isSpillStore(in.Op) {
				may.Set(slots[addr])
			}
			dom.Transfer(must, i, in)
		}
	}
	return out
}
