package check

import (
	"strings"
	"testing"

	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/isa"
)

// ins builds an instruction with sane defaults (NoReg everywhere, Sz 4) so
// handcrafted programs don't accidentally reference r0 through zero values.
func ins(op code.Op, mod func(*code.Instr)) code.Instr {
	in := code.Instr{Op: op, Sz: 4, Dst: code.NoReg, Src1: code.NoReg, Src2: code.NoReg,
		Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
	if mod != nil {
		mod(&in)
	}
	return in
}

func movImm(dst code.Reg, imm int64) code.Instr {
	return ins(code.MOV, func(in *code.Instr) { in.Dst = dst; in.HasImm = true; in.Imm = imm })
}

// ldData loads dst from the data window: a defined but statically unknown
// value, so branches fed by it stay genuinely two-way under the constant-
// propagation rules.
func ldData(dst code.Reg) code.Instr {
	return ins(code.LD, func(in *code.Instr) {
		in.Dst = dst
		in.HasMem = true
		in.Mem.Disp = code.DataBase
	})
}

func build(t *testing.T, fs isa.FeatureSet, instrs ...code.Instr) *code.Program {
	t.Helper()
	p := &code.Program{Name: "hand", FS: fs, Instrs: instrs}
	if err := encoding.Layout(p, code.CodeBase); err != nil {
		t.Fatalf("layout: %v", err)
	}
	return p
}

// permissive is the feature set under which everything is legal.
var permissive = isa.MustNew(isa.FullX86, 64, 64, isa.FullPredication)

// diamond is a clean if-diamond where r2 is written on only one arm and read
// at the join: legal code that a must-analysis would falsely reject.
func diamond(t *testing.T) *code.Program {
	return build(t, permissive,
		ldData(1),
		ins(code.CMP, func(in *code.Instr) { in.Src1 = 1; in.HasImm = true; in.Imm = 0 }),
		ins(code.JCC, func(in *code.Instr) { in.CC = code.CCEQ; in.Target = 5 }),
		movImm(2, 7),
		ins(code.JMP, func(in *code.Instr) { in.Target = 5 }),
		ins(code.TEST, func(in *code.Instr) { in.Src1 = 2; in.Src2 = 2 }),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }),
	)
}

func TestCFGRecovery(t *testing.T) {
	p := diamond(t)
	g := recoverCFG(p)
	// Leaders: 0 (entry), 3 (fallthrough of JCC), 5 (branch target).
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(g.Blocks), g.Blocks)
	}
	want := []BB{
		{Start: 0, End: 3, Succs: []int{2, 1}},
		{Start: 3, End: 5, Succs: []int{2}},
		{Start: 5, End: 7, Succs: nil},
	}
	for i, w := range want {
		b := g.Blocks[i]
		if b.Start != w.Start || b.End != w.End {
			t.Errorf("block %d spans [%d,%d), want [%d,%d)", i, b.Start, b.End, w.Start, w.End)
		}
		if len(b.Succs) != len(w.Succs) {
			t.Errorf("block %d succs %v, want %v", i, b.Succs, w.Succs)
		}
		if !b.Reachable {
			t.Errorf("block %d unreachable", i)
		}
	}
	if got := g.BlockOf(4); got != 1 {
		t.Errorf("BlockOf(4) = %d, want 1", got)
	}
	if len(g.Blocks[2].Preds) != 2 {
		t.Errorf("join block preds %v, want two", g.Blocks[2].Preds)
	}
}

func TestBitSet(t *testing.T) {
	s := NewBitSet(81)
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(80)
	for _, i := range []int{0, 63, 64, 80} {
		if !s.Has(i) {
			t.Errorf("bit %d missing", i)
		}
	}
	if s.Has(1) || s.Has(79) {
		t.Error("spurious bits set")
	}
	s.Clear(63)
	if s.Has(63) {
		t.Error("Clear(63) did not clear")
	}
	o := NewBitSet(81)
	o.Set(5)
	if !o.UnionWith(s) {
		t.Error("UnionWith should report change")
	}
	if o.UnionWith(s) {
		t.Error("second UnionWith should be a no-op")
	}
	got := o.Members()
	want := []int{0, 5, 64, 80}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

// TestSolveLoop checks the solver reaches the fixpoint of a cyclic CFG: a
// def inside a loop body must reach the loop header via the back edge.
func TestSolveLoop(t *testing.T) {
	p := build(t, permissive,
		movImm(1, 10),
		// loop header: uses r1 and (after first iteration) r2
		ins(code.CMP, func(in *code.Instr) { in.Src1 = 1; in.HasImm = true; in.Imm = 0 }),
		ins(code.JCC, func(in *code.Instr) { in.CC = code.CCEQ; in.Target = 6 }),
		movImm(2, 3), // def in loop body
		ins(code.SUB, func(in *code.Instr) { in.Dst = 1; in.Src1 = 1; in.HasImm = true; in.Imm = 1 }),
		ins(code.JMP, func(in *code.Instr) { in.Target = 1 }),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }),
	)
	a := newAnalysis(p)
	if a.cfgErr != nil {
		t.Fatalf("cfg: %v", a.cfgErr)
	}
	defsIn := a.reachingDefsIn()
	header := a.cfg.BlockOf(1)
	if !defsIn[header].Has(resInt(2)) {
		t.Error("def of r2 in the loop body must reach the header via the back edge")
	}
	if !defsIn[header].Has(resInt(1)) {
		t.Error("def of r1 before the loop must reach the header")
	}
}

func TestUDefDiamondAccepted(t *testing.T) {
	rep := Analyze(diamond(t))
	if n := len(rep.Findings); n != 0 {
		t.Fatalf("clean diamond produced %d findings:\n%s", n, rep.String())
	}
}

func TestUDefNoWriteOnAnyPath(t *testing.T) {
	// Same diamond but the one def of r2 is gone: no path writes r2.
	p := build(t, permissive,
		ldData(1),
		ins(code.CMP, func(in *code.Instr) { in.Src1 = 1; in.HasImm = true; in.Imm = 0 }),
		ins(code.JCC, func(in *code.Instr) { in.CC = code.CCEQ; in.Target = 5 }),
		ins(code.NOP, nil),
		ins(code.JMP, func(in *code.Instr) { in.Target = 5 }),
		ins(code.TEST, func(in *code.Instr) { in.Src1 = 2; in.Src2 = 2 }),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }),
	)
	rep := Analyze(p)
	if got := rep.ByRule()[RuleUDef]; got != 1 {
		t.Fatalf("want exactly one udef finding, got %d:\n%s", got, rep.String())
	}
	f := rep.Findings[0]
	if f.Index != 5 || !strings.Contains(f.Detail, "r2") {
		t.Errorf("finding should name r2 at instr 5: %s", f)
	}
}

// TestLivenessCrossCheck ties the backward analysis to the forward one:
// every resource the forward pass flags as used-before-def must be live-in
// at the entry block, and the clean diamond's partial def keeps r2 live-in
// at entry without tripping the forward may-analysis.
func TestLivenessCrossCheck(t *testing.T) {
	p := diamond(t)
	a := newAnalysis(p)
	if a.cfgErr != nil {
		t.Fatalf("cfg: %v", a.cfgErr)
	}
	live := a.liveIn()
	if !live[0].Has(resInt(2)) {
		t.Error("r2 is read on the fallthrough-free path: must be live-in at entry")
	}
	if fs := checkUDef(a); len(fs) != 0 {
		t.Errorf("may-analysis must accept the partial def: %v", fs)
	}

	// Any resource udef flags is, by construction, live-in at entry.
	q := build(t, permissive,
		ins(code.TEST, func(in *code.Instr) { in.Src1 = 3; in.Src2 = 3 }),
		movImm(1, 0),
		ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }),
	)
	aq := newAnalysis(q)
	fs := checkUDef(aq)
	if len(fs) == 0 {
		t.Fatal("use of never-written r3 must be flagged")
	}
	liveq := aq.liveIn()
	if !liveq[0].Has(resInt(3)) {
		t.Error("udef-flagged r3 must appear live-in at entry (forward/backward disagreement)")
	}
}

func TestCFGRuleFindings(t *testing.T) {
	t.Run("unreachable", func(t *testing.T) {
		p := build(t, permissive,
			ins(code.JMP, func(in *code.Instr) { in.Target = 2 }),
			movImm(1, 1), // dead
			ins(code.RET, func(in *code.Instr) { in.Src1 = 0 }),
		)
		// r0 is never written, so silence udef by restricting to the
		// deadblock rule, which owns unreachable-code findings.
		rep := AnalyzeOpts(p, Options{Rules: []string{RuleDeadBlock}})
		found := false
		for _, f := range rep.Findings {
			if strings.Contains(f.Detail, "unreachable") && f.Index == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("dead instr 1 not reported:\n%s", rep.String())
		}
	})
	t.Run("fall-off-end", func(t *testing.T) {
		p := build(t, permissive, movImm(1, 1))
		rep := AnalyzeOpts(p, Options{Rules: []string{RuleCFG}})
		if rep.Errors() < 2 { // no RET + falls off the end
			t.Errorf("want no-RET and fall-off findings:\n%s", rep.String())
		}
	})
	t.Run("target-out-of-range", func(t *testing.T) {
		p := &code.Program{Name: "bad", FS: permissive, Instrs: []code.Instr{
			ins(code.JMP, func(in *code.Instr) { in.Target = 99 }),
		}}
		rep := Analyze(p)
		if rep.ByRule()[RuleCFG] == 0 {
			t.Errorf("out-of-range target not reported:\n%s", rep.String())
		}
	})
}

func TestStackRule(t *testing.T) {
	slot := func(n int32) int32 { return code.SpillBase + n*16 }
	st := func(s int32) code.Instr {
		return ins(code.ST, func(in *code.Instr) {
			in.Src1 = 1
			in.HasMem = true
			in.Mem = code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: s}
		})
	}
	ld := func(dst code.Reg, s int32) code.Instr {
		return ins(code.LD, func(in *code.Instr) {
			in.Dst = dst
			in.HasMem = true
			in.Mem = code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: s}
		})
	}
	t.Run("balanced", func(t *testing.T) {
		p := build(t, permissive,
			movImm(1, 42), st(slot(0)), ld(2, slot(0)),
			ins(code.RET, func(in *code.Instr) { in.Src1 = 2 }),
		)
		if rep := Analyze(p); len(rep.Findings) != 0 {
			t.Errorf("balanced spill flagged:\n%s", rep.String())
		}
	})
	t.Run("unwritten-slot", func(t *testing.T) {
		p := build(t, permissive,
			movImm(1, 42), st(slot(0)), ld(2, slot(1)),
			ins(code.RET, func(in *code.Instr) { in.Src1 = 2 }),
		)
		rep := Analyze(p)
		if rep.ByRule()[RuleStack] != 1 {
			t.Errorf("refill from unwritten slot not flagged:\n%s", rep.String())
		}
	})
	t.Run("store-after-load", func(t *testing.T) {
		p := build(t, permissive,
			movImm(1, 42), ld(2, slot(0)), st(slot(0)),
			ins(code.RET, func(in *code.Instr) { in.Src1 = 2 }),
		)
		rep := Analyze(p)
		if rep.ByRule()[RuleStack] != 1 {
			t.Errorf("refill before the only store must be flagged:\n%s", rep.String())
		}
	})
}

func TestOperandRules(t *testing.T) {
	fs8 := isa.MustNew(isa.MicroX86, 32, 8, isa.PartialPredication)
	cases := []struct {
		name string
		rule string
		in   code.Instr
	}{
		{"depth", RuleDepth, movImm(9, 1)},
		{"width", RuleWidth, ins(code.ADD, func(in *code.Instr) { in.Sz = 8; in.Dst = 1; in.Src1 = 1; in.HasImm = true; in.Imm = 1 })},
		{"pred", RulePred, ins(code.MOV, func(in *code.Instr) { in.Dst = 1; in.HasImm = true; in.Imm = 1; in.Pred = 2; in.PredSense = true })},
		{"simd", RuleSIMD, ins(code.VADDF, func(in *code.Instr) { in.Sz = 16; in.Dst = 0; in.Src1 = 0; in.Src2 = 0 })},
		{"complexity", RuleComplexity, ins(code.ADD, func(in *code.Instr) {
			in.Dst = 1
			in.Src1 = 1
			in.HasMem = true
			in.Mem = code.Mem{Base: 2, Index: code.NoReg, Scale: 1}
		})},
		{"imm-range", RuleImm, ins(code.ADD, func(in *code.Instr) { in.Dst = 1; in.Src1 = 1; in.HasImm = true; in.Imm = 1 << 40 })},
		{"imm-shift", RuleImm, ins(code.SHL, func(in *code.Instr) { in.Dst = 1; in.Src1 = 1; in.HasImm = true; in.Imm = 40 })},
		{"struct-imm-src2", RuleStruct, ins(code.ADD, func(in *code.Instr) { in.Dst = 1; in.Src1 = 1; in.Src2 = 2; in.HasImm = true; in.Imm = 1 })},
		{"struct-mem-op", RuleStruct, ins(code.SHL, func(in *code.Instr) {
			in.Dst = 1
			in.Src1 = 1
			in.HasImm = true
			in.Imm = 1
			in.HasMem = true
			in.Mem = code.Mem{Base: 2, Index: code.NoReg, Scale: 1}
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Define every register the case reads so udef stays quiet, then
			// run only the rule under test plus the operand prelude defs.
			prelude := []code.Instr{movImm(1, 0), movImm(2, 0)}
			instrs := append(append([]code.Instr{}, prelude...), tc.in,
				ins(code.RET, func(in *code.Instr) { in.Src1 = 1 }))
			p := &code.Program{Name: tc.name, FS: fs8, Instrs: instrs}
			_ = encoding.Layout(p, code.CodeBase)
			rep := AnalyzeOpts(p, Options{Rules: []string{tc.rule}})
			if rep.ByRule()[tc.rule] == 0 {
				t.Errorf("rule %s did not fire:\n%s", tc.rule, rep.String())
			}
		})
	}
}

func TestEncodeRule(t *testing.T) {
	p := diamond(t)
	// Desynchronize layout from the bytes: stretch every PC after instr 2.
	for i := 3; i < len(p.PC); i++ {
		p.PC[i]++
	}
	p.Size++
	rep := AnalyzeOpts(p, Options{Rules: []string{RuleEncode}})
	if rep.ByRule()[RuleEncode] == 0 {
		t.Fatalf("stretched layout not detected:\n%s", rep.String())
	}
	t.Run("no-layout", func(t *testing.T) {
		q := diamond(t)
		q.PC = nil
		rep := AnalyzeOpts(q, Options{Rules: []string{RuleEncode}})
		if rep.ByRule()[RuleEncode] == 0 {
			t.Error("missing layout not reported")
		}
	})
}

func TestVerifyGate(t *testing.T) {
	if err := Verify(diamond(t)); err != nil {
		t.Fatalf("clean program rejected: %v", err)
	}
	p := diamond(t)
	p.Instrs[0].Dst = 70 // past the 64-register file
	if err := Verify(p); err == nil {
		t.Fatal("r70 accepted")
	} else if !strings.Contains(err.Error(), RuleDepth) {
		t.Errorf("error should carry the rule ID: %v", err)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: RuleDepth, PC: 0x100_0010, Index: 3, Instr: "mov r9, 1", Severity: SevError, Detail: "r9 exceeds depth 8"}
	s := f.String()
	for _, want := range []string{"depth", "0x1000010", "[3]", "mov r9, 1", "r9 exceeds depth 8"} {
		if !strings.Contains(s, want) {
			t.Errorf("finding string %q missing %q", s, want)
		}
	}
}

func TestRuleRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range Rules() {
		if r.ID == "" || r.Desc == "" || r.Check == nil {
			t.Errorf("rule %+v incomplete", r)
		}
		if ids[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		ids[r.ID] = true
	}
	for _, id := range OperandRuleIDs() {
		if !ids[id] {
			t.Errorf("operand rule %s not registered", id)
		}
	}
	for _, mc := range MutationClasses() {
		if !ids[mc.Class] {
			t.Errorf("mutation class %s has no matching rule", mc.Class)
		}
	}
}
