package check

import (
	"fmt"

	"compisa/internal/code"
	"compisa/internal/isa"
)

// Stable rule identifiers. Tests and the mutation harness assert on these.
const (
	RuleCFG        = "cfg"        // CFG shape: targets, termination, reachability
	RuleDepth      = "depth"      // register numbers within the feature set's depth
	RuleWidth      = "width"      // operand sizes within the register width
	RulePred       = "pred"       // predication legality
	RuleSIMD       = "simd"       // vector-op legality
	RuleComplexity = "complexity" // memory-operand folding under microx86
	RuleImm        = "imm"        // immediate and operand-size ranges
	RuleStruct     = "struct"     // operand-shape invariants of the encoding/executor
	RuleStack      = "stack"      // spill-slot discipline (stores balance refills)
	RuleUDef       = "udef"       // use of a never-written machine resource
	RuleEncode     = "encode"     // encode → ILD-decode round-trip agreement

	// Rules powered by the analysis engine (dominators + abstract
	// interpretation; see dom.go and absint.go).
	RuleDeadBlock = "deadblock" // unreachable or provably-dead blocks
	RuleBranch    = "branch"    // provably always- or never-taken conditional branches
	RuleMemRange  = "memrange"  // statically out-of-range memory accesses
	RuleSpillPair = "spillpair" // redundant spill/reload pairs
	RuleStackJoin = "stackjoin" // spill slots initialized on only some paths to a refill
)

// Rule is one registered conformance check.
type Rule struct {
	ID   string
	Desc string
	// NeedsCFG marks rules that require successful CFG recovery (they are
	// skipped, with the cfg rule reporting why, when recovery fails).
	NeedsCFG bool
	Check    func(a *analysis) []Finding
}

// Rules returns the rule registry in registration order.
func Rules() []Rule { return ruleRegistry }

// RuleIDs lists every registered rule ID.
func RuleIDs() []string {
	ids := make([]string, len(ruleRegistry))
	for i, r := range ruleRegistry {
		ids[i] = r.ID
	}
	return ids
}

// OperandRuleIDs lists the stateless per-instruction rules — the subset the
// encoding fuzzer applies to single synthesized instructions, where
// whole-program dataflow facts are meaningless.
func OperandRuleIDs() []string {
	return []string{RuleDepth, RuleWidth, RulePred, RuleSIMD, RuleComplexity, RuleImm, RuleStruct}
}

var ruleRegistry = []Rule{
	{ID: RuleCFG, Desc: "branch targets in range, no fall-off, no unreachable code", Check: checkCFGRule},
	{ID: RuleDepth, Desc: "register numbers within the register depth", Check: checkDepth},
	{ID: RuleWidth, Desc: "operand sizes within the register width", Check: checkWidth},
	{ID: RulePred, Desc: "predication legality for the feature set", Check: checkPred},
	{ID: RuleSIMD, Desc: "packed-SSE legality for the feature set", Check: checkSIMD},
	{ID: RuleComplexity, Desc: "memory-operand folding only under full x86", Check: checkComplexity},
	{ID: RuleImm, Desc: "immediate and operand-size ranges", Check: checkImm},
	{ID: RuleStruct, Desc: "operand-shape invariants", Check: checkStruct},
	{ID: RuleStack, Desc: "spill refills dominated by spill stores", NeedsCFG: true, Check: checkStack},
	{ID: RuleUDef, Desc: "no use of a never-written register or flag", NeedsCFG: true, Check: checkUDef},
	{ID: RuleEncode, Desc: "encode → ILD-decode round trip agrees with layout", Check: checkEncode},
	{ID: RuleDeadBlock, Desc: "no unreachable or provably dead blocks", NeedsCFG: true, Check: checkDeadBlock},
	{ID: RuleBranch, Desc: "no provably constant conditional branches", NeedsCFG: true, Check: checkBranch},
	{ID: RuleMemRange, Desc: "memory accesses stay inside the legal address windows", NeedsCFG: true, Check: checkMemRange},
	{ID: RuleSpillPair, Desc: "no redundant spill store/reload pairs", NeedsCFG: true, Check: checkSpillPair},
	{ID: RuleStackJoin, Desc: "spill refills initialized on every path, not just some", NeedsCFG: true, Check: checkStackJoin},
}

// analysis carries the program plus lazily computed artifacts shared by the
// rules.
type analysis struct {
	p      *code.Program
	cfg    *CFG
	cfgErr error

	defsIn     []BitSet
	liveInSets []BitSet

	dom   *DomTree
	loops *LoopInfo

	constDom *constDomain
	constIn  []*constState
	// branchKind caches the per-block constant-branch verdict (see
	// branchFacts).
	branchKind []int8

	// slotIDs numbers the distinct spill addresses in first-appearance
	// order; slotsReady distinguishes "not computed" from "no slots".
	slotIDs    map[int32]int
	slotsReady bool
	spillMayIn []BitSet
	mustIn     []*spillMustState
}

// domTree lazily builds the dominator tree (CFG recovery must have
// succeeded; callers are NeedsCFG rules or facts).
func (a *analysis) domTree() *DomTree {
	if a.dom == nil {
		a.dom = a.cfg.Dominators()
	}
	return a.dom
}

// loopInfo lazily builds the natural-loop decomposition.
func (a *analysis) loopInfo() *LoopInfo {
	if a.loops == nil {
		a.loops = a.cfg.Loops(a.domTree())
	}
	return a.loops
}

// constStates lazily runs the constant/value-range interpretation and
// returns per-block entry states (nil for unreachable blocks).
func (a *analysis) constStates() []*constState {
	if a.constDom == nil {
		a.constDom = newConstDomain(a.p)
		a.constIn, _ = interpret(a.p, a.cfg, a.domTree(), a.constDom)
	}
	return a.constIn
}

// spillSlotRef reports whether the instruction addresses the register
// allocator's spill area (absolute addressing inside [SpillBase,
// ContextBase)) and at which address.
func spillSlotRef(in *code.Instr) (int32, bool) {
	if !in.HasMem || in.Mem.Base != code.NoReg || in.Mem.Index != code.NoReg {
		return 0, false
	}
	if in.Mem.Disp < code.SpillBase || int64(in.Mem.Disp) >= int64(code.ContextBase) {
		return 0, false
	}
	return in.Mem.Disp, true
}

func isSpillStore(op code.Op) bool { return op == code.ST || op == code.FST || op == code.VST }
func isSpillLoad(op code.Op) bool  { return op == code.LD || op == code.FLD || op == code.VLD }

// spillSlots numbers the distinct spill addresses the program touches, in
// first-appearance order (deterministic).
func (a *analysis) spillSlots() map[int32]int {
	if !a.slotsReady {
		a.slotIDs = map[int32]int{}
		for i := range a.p.Instrs {
			if addr, ok := spillSlotRef(&a.p.Instrs[i]); ok {
				if _, seen := a.slotIDs[addr]; !seen {
					a.slotIDs[addr] = len(a.slotIDs)
				}
			}
		}
		a.slotsReady = true
	}
	return a.slotIDs
}

// spillMayStoredIn lazily runs the forward may-reaching spill-store
// analysis (union meet) and returns per-block entry facts.
func (a *analysis) spillMayStoredIn() []BitSet {
	if a.spillMayIn != nil {
		return a.spillMayIn
	}
	slots := a.spillSlots()
	g := a.cfg
	tf := make([]GenKill, len(g.Blocks))
	for bi := range g.Blocks {
		gen := NewBitSet(len(slots))
		for i := g.Blocks[bi].Start; i < g.Blocks[bi].End; i++ {
			in := &a.p.Instrs[i]
			if addr, ok := spillSlotRef(in); ok && isSpillStore(in.Op) {
				gen.Set(slots[addr])
			}
		}
		tf[bi] = GenKill{Gen: gen, Kill: NewBitSet(len(slots))}
	}
	a.spillMayIn, _ = Solve(g, len(slots), Forward, tf)
	return a.spillMayIn
}

// spillMustStoredIn lazily runs the must-reaching spill-store abstract
// interpretation (intersection meet) and returns per-block entry states
// (nil for unreachable blocks).
func (a *analysis) spillMustStoredIn() []*spillMustState {
	if a.mustIn == nil {
		dom := &spillMustDomain{slots: a.spillSlots()}
		a.mustIn, _ = interpret(a.p, a.cfg, a.domTree(), dom)
	}
	return a.mustIn
}

// target resolves the program's non-default encoding target, or nil when the
// program uses the default x86 encoding (whose legality the feature-set
// rules already govern) or names an unknown target (rejected by Validate).
func (a *analysis) target() *isa.Target {
	tgt, ok := isa.TargetByName(a.p.Target)
	if !ok || tgt.Default() {
		return nil
	}
	return tgt
}

func newAnalysis(p *code.Program) *analysis {
	a := &analysis{p: p}
	if err := structural(p); err != nil {
		a.cfgErr = err
		return a
	}
	a.cfg = recoverCFG(p)
	return a
}

// structural reports the program-shape problems that make CFG recovery
// impossible (the cfg rule re-derives them as findings).
func structural(p *code.Program) error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("empty program")
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == code.JCC || in.Op == code.JMP {
			if in.Target < 0 || int(in.Target) >= len(p.Instrs) {
				return fmt.Errorf("branch target out of range")
			}
		}
	}
	return nil
}

func (a *analysis) finding(rule string, idx int, detail string) Finding {
	f := Finding{Rule: rule, Index: idx, Severity: SevError, Detail: detail}
	if idx >= 0 {
		in := &a.p.Instrs[idx]
		f.Instr = code.FormatInstr(in)
		if len(a.p.PC) == len(a.p.Instrs) {
			f.PC = a.p.PC[idx]
		}
	}
	return f
}

func checkCFGRule(a *analysis) []Finding {
	p := a.p
	var out []Finding
	if len(p.Instrs) == 0 {
		return []Finding{{Rule: RuleCFG, Index: -1, Severity: SevError, Detail: "empty program"}}
	}
	hasRet := false
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == code.RET {
			hasRet = true
		}
		if in.Op == code.JCC || in.Op == code.JMP {
			if in.Target < 0 || int(in.Target) >= len(p.Instrs) {
				out = append(out, a.finding(RuleCFG, i,
					fmt.Sprintf("branch target %d outside [0, %d)", in.Target, len(p.Instrs))))
			}
		}
	}
	if !hasRet {
		out = append(out, Finding{Rule: RuleCFG, Index: -1, Severity: SevError, Detail: "program has no RET"})
	}
	if last := p.Instrs[len(p.Instrs)-1].Op; last != code.RET && last != code.JMP {
		out = append(out, a.finding(RuleCFG, len(p.Instrs)-1,
			fmt.Sprintf("execution can fall off the end (last op %v)", last)))
	}
	// Unreachable blocks are the deadblock rule's findings now that
	// reachability feeds the analysis engine.
	return out
}

func checkDepth(a *analysis) []Finding {
	fs := a.p.FS
	var out []Finding
	var iregs, fregs []code.Reg
	for i := range a.p.Instrs {
		in := &a.p.Instrs[i]
		iregs = in.IntRegs(iregs[:0])
		for _, r := range iregs {
			if int(r) >= fs.Depth {
				out = append(out, a.finding(RuleDepth, i,
					fmt.Sprintf("integer register r%d exceeds register depth %d", r, fs.Depth)))
			}
		}
		fregs = in.FPRegs(fregs[:0])
		for _, r := range fregs {
			if int(r) >= fs.FPRegs() {
				out = append(out, a.finding(RuleDepth, i,
					fmt.Sprintf("fp register x%d exceeds the %d xmm registers", r, fs.FPRegs())))
			}
		}
	}
	return out
}

func checkWidth(a *analysis) []Finding {
	fs := a.p.FS
	if fs.Width != 32 {
		return nil
	}
	var out []Finding
	for i := range a.p.Instrs {
		in := &a.p.Instrs[i]
		if in.Sz != 8 || in.Op.IsFP() {
			continue
		}
		switch in.Op {
		case code.FST, code.FCMP, code.CVTFI:
			// 8-byte scalar FP data is legal on 32-bit cores (SSE).
		default:
			out = append(out, a.finding(RuleWidth, i, "64-bit integer operation on a 32-bit feature set"))
		}
	}
	return out
}

func checkPred(a *analysis) []Finding {
	fs := a.p.FS
	var out []Finding
	for i := range a.p.Instrs {
		in := &a.p.Instrs[i]
		if !in.Predicated() {
			continue
		}
		if fs.Predication != isa.FullPredication {
			out = append(out, a.finding(RulePred, i,
				"predicate prefix on a partial-predication feature set (only CMOV may predicate)"))
		}
		if in.Op.IsBranch() {
			out = append(out, a.finding(RulePred, i, "branches cannot carry a predicate prefix"))
		}
	}
	return out
}

func checkSIMD(a *analysis) []Finding {
	if a.p.FS.HasSIMD() {
		return nil
	}
	var out []Finding
	for i := range a.p.Instrs {
		in := &a.p.Instrs[i]
		if in.Op.IsVector() {
			out = append(out, a.finding(RuleSIMD, i, "packed-SSE op on a feature set without SIMD"))
		} else if in.Sz == 16 {
			// A 16-byte move (fmov.16) still needs the 128-bit datapath.
			out = append(out, a.finding(RuleSIMD, i, "16-byte operand on a feature set without SIMD"))
		}
	}
	return out
}

func checkComplexity(a *analysis) []Finding {
	if a.p.FS.Complexity != isa.MicroX86 {
		return nil
	}
	var out []Finding
	for i := range a.p.Instrs {
		if a.p.Instrs[i].MemSrcALU() {
			out = append(out, a.finding(RuleComplexity, i,
				"memory-operand ALU folding under microx86 (1:1 decode discipline)"))
		}
	}
	return out
}

func checkImm(a *analysis) []Finding {
	var out []Finding
	tgt := a.target()
	for i := range a.p.Instrs {
		in := &a.p.Instrs[i]
		if tgt != nil {
			if in.HasImm && !code.ImmOK(in.Op, in.Imm, tgt) {
				out = append(out, a.finding(RuleImm, i,
					fmt.Sprintf("immediate %d exceeds the %s target's %d-bit field", in.Imm, tgt.Name, tgt.ImmBits)))
			}
			if in.HasMem && !code.DispOK(in.Mem.Disp, tgt) {
				out = append(out, a.finding(RuleImm, i,
					fmt.Sprintf("displacement %d exceeds the %s target's %d-bit field", in.Mem.Disp, tgt.Name, tgt.DispBits)))
			}
		}
		if in.HasImm {
			if in.Op == code.SHL || in.Op == code.SHR || in.Op == code.SAR {
				bits := int64(in.Sz) * 8
				if in.Imm < 0 || in.Imm >= bits {
					out = append(out, a.finding(RuleImm, i,
						fmt.Sprintf("shift count %d outside [0, %d)", in.Imm, bits)))
				}
			} else if !(in.Op == code.MOV && in.Sz == 8) {
				// Only MOV has an imm64 (movabs) form; everything else
				// encodes at most an imm32 and would silently truncate.
				// The executor masks immediates to the operand size, so a
				// 4-byte op accepts the full signed-or-unsigned 32-bit
				// range; an 8-byte op sign-extends the imm32, so values
				// past 2^31-1 would flip sign.
				lo, hi := int64(-1)<<31, int64(1)<<32-1
				switch in.Sz {
				case 8:
					hi = 1<<31 - 1
				case 1:
					lo, hi = -128, 255
				}
				if in.Imm < lo || in.Imm > hi {
					out = append(out, a.finding(RuleImm, i,
						fmt.Sprintf("immediate %d is not representable in a %d-byte operation's imm32", in.Imm, in.Sz)))
				}
			}
		}
		if sz := in.Sz; sz != 0 {
			ok := sz == 1 || sz == 4 || sz == 8 || sz == 16
			if !ok {
				out = append(out, a.finding(RuleImm, i, fmt.Sprintf("invalid operand size %d", sz)))
			}
			if sz == 16 && !in.Op.IsVector() && in.Op != code.FMOV {
				// FMOV.16 is the whole-xmm register move the compiler uses
				// to shuffle packed values; everything else is scalar.
				out = append(out, a.finding(RuleImm, i, "16-byte operand size on a non-vector op"))
			}
			if in.Op.IsVector() && sz != 16 {
				out = append(out, a.finding(RuleImm, i,
					fmt.Sprintf("vector op with %d-byte operand size (must be 16)", sz)))
			}
		}
	}
	return out
}

// memOps lists the ops for which the executor implements a memory operand
// (dedicated memory ops plus the ALU folding cases of cpu.step's
// intOp2/fpOp2 and CMOV's unconditional load).
func memLegal(op code.Op) bool {
	switch op {
	case code.LD, code.ST, code.FLD, code.FST, code.VLD, code.VST, code.LEA,
		code.ADD, code.SUB, code.IMUL, code.AND, code.OR, code.XOR,
		code.ADC, code.SBB, code.CMP, code.TEST, code.CMOVCC,
		code.FADD, code.FSUB, code.FMUL, code.FDIV,
		code.VADDF, code.VSUBF, code.VMULF, code.VADDI, code.VSUBI, code.VMULI:
		return true
	}
	return false
}

func checkStruct(a *analysis) []Finding {
	var out []Finding
	tgt := a.target()
	for i := range a.p.Instrs {
		in := &a.p.Instrs[i]
		if tgt != nil {
			if err := code.TargetShapeOK(in, tgt); err != nil {
				out = append(out, a.finding(RuleStruct, i, err.Error()))
			}
		}
		if in.HasImm && in.Src2 != code.NoReg {
			out = append(out, a.finding(RuleStruct, i, "both an immediate and a second register source"))
		}
		if in.HasMem {
			if !memLegal(in.Op) {
				out = append(out, a.finding(RuleStruct, i,
					fmt.Sprintf("%v does not support a memory operand", in.Op)))
			}
			switch in.Mem.Scale {
			case 1, 2, 4, 8:
			default:
				out = append(out, a.finding(RuleStruct, i,
					fmt.Sprintf("invalid index scale %d", in.Mem.Scale)))
			}
			if in.Mem.Base == code.NoReg && in.Mem.Index != code.NoReg {
				out = append(out, a.finding(RuleStruct, i,
					"absolute addressing with an index register is not encodable"))
			}
		}
	}
	return out
}

// checkStack enforces the spill-area discipline: every refill load from the
// register allocator's spill area must be reachable from at least one spill
// store to the same slot. It runs forward reaching-stores dataflow over the
// recovered CFG with one bit per distinct spill address.
func checkStack(a *analysis) []Finding {
	p := a.p
	slots := a.spillSlots()
	if len(slots) == 0 {
		return nil
	}
	g := a.cfg
	storedIn := a.spillMayStoredIn()
	var out []Finding
	for bi := range g.Blocks {
		if !g.Blocks[bi].Reachable {
			continue
		}
		stored := storedIn[bi].Copy()
		for i := g.Blocks[bi].Start; i < g.Blocks[bi].End; i++ {
			in := &p.Instrs[i]
			addr, ok := spillSlotRef(in)
			if !ok {
				continue
			}
			if isSpillLoad(in.Op) && !stored.Has(slots[addr]) {
				out = append(out, a.finding(RuleStack, i,
					fmt.Sprintf("refill from spill slot %#x with no reaching spill store", addr)))
			}
			if isSpillStore(in.Op) {
				stored.Set(slots[addr])
			}
		}
	}
	return out
}

// checkUDef flags uses of machine resources (registers, flags) that no
// write can reach: on every path from the entry the resource is read before
// anything defines it. This is a may-analysis — a resource written on only
// some paths is accepted — so clean if-converted and predicated code does
// not trip it.
func checkUDef(a *analysis) []Finding {
	g := a.cfg
	defsIn := a.reachingDefsIn()
	var out []Finding
	var uses, defs []int
	for bi := range g.Blocks {
		if !g.Blocks[bi].Reachable {
			continue
		}
		defined := defsIn[bi].Copy()
		for i := g.Blocks[bi].Start; i < g.Blocks[bi].End; i++ {
			in := &a.p.Instrs[i]
			uses = instrUses(in, uses[:0])
			for _, u := range uses {
				if !defined.Has(u) {
					out = append(out, a.finding(RuleUDef, i,
						fmt.Sprintf("%s is read but never written on any path from entry", resName(u))))
					defined.Set(u) // report each resource once per block
				}
			}
			defs = instrDefs(in, defs[:0])
			for _, d := range defs {
				defined.Set(d)
			}
		}
	}
	return out
}
